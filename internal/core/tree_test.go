package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/box"
	"repro/internal/fabric"
	"repro/internal/occam"
	"repro/internal/workload"
)

// treeSystem builds src plus n viewers v00..vNN on one fabric.
func treeSystem(t *testing.T, n int) (*System, []string) {
	t.Helper()
	s := NewSystem()
	s.AddBox(box.Config{Name: "src", Mic: workload.NewTone(440, 9000)})
	s.AddFabric("fab", fabric.Config{})
	s.AttachFabric("fab", "src")
	var viewers []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("v%02d", i)
		viewers = append(viewers, name)
		s.AddBox(box.Config{Name: name})
		s.AttachFabric("fab", name)
	}
	return s, viewers
}

// TestTreePlanInvariants pins the placement algebra: every box holds
// at most k children, destinations stripe round-robin over the trees,
// and the source feeds exactly one root per tree.
func TestTreePlanInvariants(t *testing.T) {
	s, viewers := treeSystem(t, 20)
	defer s.Shutdown()
	var st *Stream
	s.Control(func(p *occam.Proc) {
		st = s.SendAudioTree(p, TreeConfig{Fanout: 3, Trees: 2}, "src", viewers...)
	})
	if err := s.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	plan := st.Tree
	if got := plan.SourceCopies(); got != 2 {
		t.Fatalf("source sends %d copies, want one per tree (2)", got)
	}
	if got := plan.MaxInteriorCopies(); got > 3 {
		t.Fatalf("a box forwards %d copies, k=3", got)
	}
	if got := len(plan.Members()); got != 20 {
		t.Fatalf("%d members, want 20", got)
	}
	if plan.Depth() < 3 {
		t.Fatalf("depth %d — 10 viewers per tree at fanout 3 need interior relays", plan.Depth())
	}
	for _, v := range viewers {
		if got := s.Box(v).Mixer().Stats(st.VCIs[v]); got.Segments < 80 {
			t.Fatalf("%s got %d segments", v, got.Segments)
		}
	}
	// The box layer's watermark agrees with the planner.
	for _, v := range viewers {
		if c := s.Box(v).MaxNetCopies(); c > 3 {
			t.Fatalf("%s forwarded %d simultaneous copies, k=3", v, c)
		}
	}
}

// TestTreeFlatMatchesSendAudio: a zero-fanout tree is the old tannoy —
// same VCI allocation order, same circuits, byte-identical delivery.
func TestTreeFlatMatchesSendAudio(t *testing.T) {
	run := func(viaTree bool) map[string]uint64 {
		s, viewers := treeSystem(t, 4)
		defer s.Shutdown()
		var st *Stream
		s.Control(func(p *occam.Proc) {
			if viaTree {
				st = s.SendAudioTree(p, TreeConfig{}, "src", viewers...)
			} else {
				st = s.SendAudio(p, "src", viewers...)
			}
		})
		if err := s.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]uint64)
		for _, v := range viewers {
			m := s.Box(v).Mixer().Stats(st.VCIs[v])
			if m.Segments == 0 {
				t.Fatalf("%s silent", v)
			}
			out[v] = m.Digest
		}
		if st.Tree.Depth() != 1 || st.Tree.SourceCopies() != 4 {
			t.Fatalf("flat plan is not flat: depth %d, source copies %d",
				st.Tree.Depth(), st.Tree.SourceCopies())
		}
		return out
	}
	flat, tannoy := run(true), run(false)
	for v, d := range tannoy {
		if flat[v] != d {
			t.Fatalf("%s differs between flat tree and SendAudio: %016x vs %016x", v, flat[v], d)
		}
	}
}

// TestTreePullGraft: late joiners pull from an existing member, never
// costing the source another copy while capacity remains.
func TestTreePullGraft(t *testing.T) {
	s, viewers := treeSystem(t, 6)
	defer s.Shutdown()
	var st *Stream
	s.Control(func(p *occam.Proc) {
		st = s.SendAudioTree(p, TreeConfig{Fanout: 4}, "src", viewers[:3]...)
	})
	if err := s.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Control(func(p *occam.Proc) { s.Pull(p, st, viewers[3:]...) })
	if err := s.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := st.Tree.SourceCopies(); got != 1 {
		t.Fatalf("source sends %d copies after pulls, want 1", got)
	}
	for _, v := range viewers[3:] {
		if got := s.Box(v).Mixer().Stats(st.VCIs[v]); got.Segments < 30 {
			t.Fatalf("late joiner %s got %d segments", v, got.Segments)
		}
		if st.Tree.Parent(v) == "" {
			t.Fatalf("late joiner %s fed by the source, should pull from a member", v)
		}
	}
}

// TestTreeRepairRehomes: failing an interior box re-parents its
// subtree onto survivors mid-stream, EverUnder remembers the history,
// and the re-homed viewers keep receiving.
func TestTreeRepairRehomes(t *testing.T) {
	s, viewers := treeSystem(t, 12)
	defer s.Shutdown()
	var st *Stream
	s.Control(func(p *occam.Proc) {
		st = s.SendAudioTree(p, TreeConfig{Fanout: 2}, "src", viewers...)
	})
	if err := s.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// v00 is the root; fail it and every other viewer re-homes.
	root := viewers[0]
	if st.Tree.Parent(root) != "" {
		t.Fatalf("%s is not the root", root)
	}
	var rehomed int
	s.Control(func(p *occam.Proc) { rehomed = s.RepairTree(p, st, root) })
	if err := s.RunFor(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rehomed == 0 {
		t.Fatal("repair re-homed nothing")
	}
	if st.Tree.Repairs() != 1 {
		t.Fatalf("repairs counter %d, want 1", st.Tree.Repairs())
	}
	if got := st.Tree.RehomedFrom(root); len(got) != rehomed {
		t.Fatalf("RehomedFrom lists %d members, repair moved %d", len(got), rehomed)
	}
	for _, v := range viewers[1:] {
		if st.Tree.Parent(v) == root {
			t.Fatalf("%s still fed by the failed root", v)
		}
		segsBefore := s.Box(v).Mixer().Stats(st.VCIs[v]).Segments
		if segsBefore == 0 {
			t.Fatalf("%s silent after repair", v)
		}
	}
	// History: direct orphans record the failed box as a former parent.
	for _, v := range st.Tree.RehomedFrom(root) {
		if !st.Tree.EverUnder(v, root) {
			t.Fatalf("EverUnder(%s, %s) lost the repair history", v, root)
		}
	}
	// Audio still flows to a re-homed viewer after the repair.
	moved := st.Tree.RehomedFrom(root)[0]
	before := s.Box(moved).Mixer().Stats(st.VCIs[moved]).Segments
	if err := s.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if after := s.Box(moved).Mixer().Stats(st.VCIs[moved]).Segments; after <= before {
		t.Fatalf("re-homed %s stalled: %d → %d segments", moved, before, after)
	}
}

// TestTreeChurnRepairRace interleaves pulls, a repair and an interior
// removal from two concurrent control procs while audio flows — the
// tree counterpart of the fabric churn test, written to run under
// `go test -race`: every mid-stream VCI reroute the repair machinery
// issues must stay inside the runtime's scheduling discipline.
func TestTreeChurnRepairRace(t *testing.T) {
	s, viewers := treeSystem(t, 16)
	defer s.Shutdown()
	var st *Stream
	s.Control(func(p *occam.Proc) {
		st = s.SendAudioTree(p, TreeConfig{Fanout: 2, Trees: 2}, "src", viewers[:10]...)
	})
	if err := s.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Control(func(p *occam.Proc) {
		for _, v := range viewers[10:] {
			p.Sleep(20 * time.Millisecond)
			s.Pull(p, st, v)
		}
	})
	s.Control(func(p *occam.Proc) {
		p.Sleep(30 * time.Millisecond)
		s.RepairTree(p, st, viewers[0])
		p.Sleep(45 * time.Millisecond)
		s.RemoveDestination(p, st, viewers[1])
	})
	if err := s.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := len(st.Tree.Members()); got != 15 {
		t.Fatalf("%d members after churn, want 15", got)
	}
	for v, vci := range st.VCIs {
		if got := s.Box(v).Mixer().Stats(vci); got.Segments == 0 {
			t.Fatalf("%s silent after churn", v)
		}
	}
}

// TestTreeCloseDrains: closing a tree stream returns every wire to its
// pool on every box.
func TestTreeCloseDrains(t *testing.T) {
	s, viewers := treeSystem(t, 8)
	defer s.Shutdown()
	var st *Stream
	s.Control(func(p *occam.Proc) {
		st = s.SendAudioTree(p, TreeConfig{Fanout: 2, Trees: 2}, "src", viewers...)
	})
	if err := s.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Control(func(p *occam.Proc) { s.Close(p, st) })
	if err := s.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, n := range append([]string{"src"}, viewers...) {
		if leaked := s.Box(n).WirePoolLeaked(); leaked != 0 {
			t.Fatalf("%s leaked %d wires after close", n, leaked)
		}
	}
}

// TestTreeRemoveInteriorDestination: dropping an interior member first
// repairs its subtree, so the remaining viewers keep playing.
func TestTreeRemoveInteriorDestination(t *testing.T) {
	s, viewers := treeSystem(t, 10)
	defer s.Shutdown()
	var st *Stream
	s.Control(func(p *occam.Proc) {
		st = s.SendAudioTree(p, TreeConfig{Fanout: 2}, "src", viewers...)
	})
	if err := s.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	root := viewers[0]
	s.Control(func(p *occam.Proc) { s.RemoveDestination(p, st, root) })
	if err := s.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, open := st.VCIs[root]; open {
		t.Fatalf("%s still has a circuit after removal", root)
	}
	if got := len(st.Tree.Members()); got != 9 {
		t.Fatalf("%d members after removal, want 9", got)
	}
	for _, v := range viewers[1:] {
		before := s.Box(v).Mixer().Stats(st.VCIs[v]).Segments
		if before == 0 {
			t.Fatalf("%s silent after interior removal", v)
		}
	}
}
