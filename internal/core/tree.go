package core

import (
	"fmt"

	"repro/internal/box"
	"repro/internal/obs"
	"repro/internal/occam"
)

// This file is the distribution-tree planner: instead of the source
// box opening one circuit per viewer (the tannoy of §4.1, whose
// fan-out is capped by the source port's bandwidth), the first box to
// carry a stream becomes its *origin* and every further box pulls one
// copy from a box that already has it, re-splitting locally at its own
// switch (principle 5 makes the local split safe, principle 6 lets the
// fan-out change mid-stream). A multiple-tree push variant stripes the
// destinations over T interior-disjoint trees, so a faulted interior
// box degrades only its own subtree of its own tree, and RepairTree
// re-parents the orphans onto surviving boxes between segments.

// TreeConfig parameterises a distribution tree.
type TreeConfig struct {
	// Fanout (K) bounds how many copies any single box forwards for
	// the stream. 0 selects the flat plan: the source unicasts to
	// every destination, exactly the pre-tree tannoy.
	Fanout int
	// Trees (T) stripes the destinations over T interior-disjoint
	// trees (default 1). The source sends one copy per tree; the
	// trees share no interior box, so one faulted interior box can
	// disrupt at most 1/T of the viewers.
	Trees int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.Trees <= 0 {
		c.Trees = 1
	}
	return c
}

// treeNode is one destination's place in a distribution tree.
type treeNode struct {
	name     string
	vci      uint32
	tree     int
	parent   *treeNode // nil: fed directly by the source
	children []*treeNode
	// former records every parent this node was re-homed away from by
	// RepairTree — the "was this delivery ever routed through box X"
	// history that byte-identity checks exclude.
	former []*treeNode
}

// TreePlan is the planner's record of one stream's distribution
// tree(s): who feeds whom, over which VCIs, and what repairs have
// reshaped it. Streams opened flat (TreeConfig zero value) carry a
// plan too — one where every destination is a direct child of the
// source.
type TreePlan struct {
	cfg  TreeConfig
	from string
	// order is global placement order — also VCI-allocation order, so
	// replays are deterministic.
	order []*treeNode
	// placed holds each tree's members in placement order; attachment
	// scans it front to back, which keeps trees near-balanced and
	// deterministic.
	placed  [][]*treeNode
	nodes   map[string]*treeNode
	nextIdx int // round-robin tree striping cursor (survives pulls)
	repairs uint64
}

func newTreePlan(from string, cfg TreeConfig) *TreePlan {
	cfg = cfg.withDefaults()
	return &TreePlan{
		cfg:    cfg,
		from:   from,
		placed: make([][]*treeNode, cfg.Trees),
		nodes:  make(map[string]*treeNode),
	}
}

// Config returns the plan's tree parameters (defaults applied).
func (t *TreePlan) Config() TreeConfig { return t.cfg }

// Members returns every destination in placement order.
func (t *TreePlan) Members() []string {
	out := make([]string, len(t.order))
	for i, n := range t.order {
		out[i] = n.name
	}
	return out
}

// Parent returns who currently feeds dst ("" when the source does, or
// when dst is not a member).
func (t *TreePlan) Parent(dst string) string {
	n := t.nodes[dst]
	if n == nil || n.parent == nil {
		return ""
	}
	return n.parent.name
}

// Depth returns the longest source→leaf hop count (1 = every
// destination fed directly by the source).
func (t *TreePlan) Depth() int {
	max := 0
	for _, n := range t.order {
		d := 1
		for c := n; c.parent != nil; c = c.parent {
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}

// MaxInteriorCopies returns the largest forwarded-copy count any
// destination box currently carries — the per-hop copy invariant says
// this never exceeds the configured fanout.
func (t *TreePlan) MaxInteriorCopies() int {
	max := 0
	for _, n := range t.order {
		if len(n.children) > max {
			max = len(n.children)
		}
	}
	return max
}

// SourceCopies returns how many copies the source itself sends — the
// origin-pull headline: one per tree, however many viewers.
func (t *TreePlan) SourceCopies() int {
	n := 0
	for _, c := range t.order {
		if c.parent == nil {
			n++
		}
	}
	return n
}

// Repairs returns how many RepairTree invocations reshaped the plan.
func (t *TreePlan) Repairs() uint64 { return t.repairs }

// Relays returns how many forwarded copies box currently carries for
// this plan — 0 means box is a leaf (or not a member). The balancer's
// migration loop uses it to find streams relayed through a hot box.
func (t *TreePlan) Relays(box string) int {
	n := t.nodes[box]
	if n == nil {
		return 0
	}
	return len(n.children)
}

// FeederBoxes returns how many distinct boxes (the source included)
// currently feed at least one member — the placement spread the
// scenario layer's `spread` assert measures.
func (t *TreePlan) FeederBoxes() int {
	feeders := map[string]bool{}
	for _, n := range t.order {
		feeders[t.feederName(n)] = true
	}
	return len(feeders)
}

// RehomedFrom returns the members RepairTree ever re-parented away
// from box, in placement order.
func (t *TreePlan) RehomedFrom(box string) []string {
	var out []string
	for _, n := range t.order {
		for _, f := range n.former {
			if f.name == box {
				out = append(out, n.name)
				break
			}
		}
	}
	return out
}

// EverUnder reports whether dst's delivery path ever passed through
// box — through its current parent chain or, after repairs, through
// any former parent at any point in the run. Byte-identity assertions
// use it to exclude deliveries a crashed relay could have disturbed.
func (t *TreePlan) EverUnder(dst, box string) bool {
	n := t.nodes[dst]
	if n == nil {
		return false
	}
	seen := map[*treeNode]bool{}
	stack := []*treeNode{n}
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ups := m.former
		if m.parent != nil {
			ups = append(append([]*treeNode(nil), ups...), m.parent)
		}
		for _, u := range ups {
			if seen[u] {
				continue
			}
			seen[u] = true
			if u.name == box {
				return true
			}
			stack = append(stack, u)
		}
	}
	return false
}

// under reports whether n sits in root's (current) subtree, root
// included.
func under(n, root *treeNode) bool {
	for c := n; c != nil; c = c.parent {
		if c == root {
			return true
		}
	}
	return false
}

// connectable reports whether openCircuit(a→b) would succeed: the two
// share a fabric, or a directional link path is declared.
func (s *System) connectable(a, b string) bool {
	if s.sameFabric(a, b) {
		return true
	}
	_, ok := s.paths[a+"->"+b]
	return ok
}

// pickCandidate chooses among the eligible candidate parents: the
// installed placer's best-ranked box, or — with no placer — the first
// in placement order (first-fit). elig holds distinct box names (tree
// members are unique), so the ranked name maps back to one node.
func (s *System) pickCandidate(elig []*treeNode) *treeNode {
	if len(elig) == 0 {
		return nil
	}
	if s.placer == nil {
		return elig[0]
	}
	names := make([]string, len(elig))
	for i, c := range elig {
		names[i] = c.name
	}
	best := s.placer.RankBoxes(names)[0]
	for _, c := range elig {
		if c.name == best {
			return c
		}
	}
	return elig[0]
}

// planAttach places one more destination: round-robin onto the next
// tree, then under an already-placed box in that tree with spare
// fanout that can reach it (same fabric or a declared link — bridge
// links between fabrics are found the same way). Without a placer the
// first such box in placement order wins; with one, the least-loaded.
// When nothing placed can host it, the destination pulls straight
// from the source.
func (s *System) planAttach(plan *TreePlan, dst string) *treeNode {
	t := plan.nextIdx % plan.cfg.Trees
	plan.nextIdx++
	n := &treeNode{name: dst, tree: t}
	var elig []*treeNode
	for _, cand := range plan.placed[t] {
		// Only boxes re-split; a repository member is always a leaf.
		if _, isBox := s.boxes[cand.name]; !isBox {
			continue
		}
		if len(cand.children) < plan.cfg.Fanout && s.connectable(cand.name, dst) {
			elig = append(elig, cand)
			if s.placer == nil {
				break // first-fit needs no further scanning
			}
		}
	}
	if cand := s.pickCandidate(elig); cand != nil {
		n.parent = cand
		cand.children = append(cand.children, n)
	}
	if n.parent == nil && !s.connectable(plan.from, dst) {
		panic(fmt.Sprintf("core: tree: no box can reach %s from %s's tree %d (declare a link or shared fabric)",
			dst, plan.from, t))
	}
	plan.placed[t] = append(plan.placed[t], n)
	plan.order = append(plan.order, n)
	plan.nodes[dst] = n
	return n
}

// feederName returns who opens the circuit to n.
func (t *TreePlan) feederName(n *treeNode) string {
	if n.parent == nil {
		return t.from
	}
	return n.parent.name
}

// installNode installs (or re-installs) a destination box's switch
// route to match its place in the tree: local playout plus, when it
// has children, one forwarded copy per child VCI — the local re-split
// of principle 5. reinstall keeps the route's original age
// (principle 3), exactly like reRoute.
func (s *System) installNode(p *occam.Proc, st *Stream, n *treeNode, reinstall bool) {
	db, ok := s.boxes[n.name]
	if !ok {
		return // repositories take delivery straight off the circuit
	}
	local := box.OutSpeaker
	if st.Video {
		local = box.OutDisplay
	}
	r := box.Route{Stream: n.vci, Outputs: []box.Output{local}, Video: st.Video}
	if len(n.children) > 0 {
		r.Outputs = append(r.Outputs, box.OutNetwork)
		r.Relay = true
		for _, c := range n.children {
			r.NetVCIs = append(r.NetVCIs, c.vci)
		}
	}
	if reinstall {
		r.Opened = occam.Time(1)
	}
	db.SetRoute(p, r)
	if len(n.children) == 0 && reinstall {
		// SetRoute only replaces the fan-out list when it is non-empty;
		// a node whose last child was taken away must stop copying.
		db.SetNetCopies(p, n.vci, nil)
	}
}

// reRouteSource re-installs the source route to one copy per tree
// root, in placement order, keeping the original age (principle 3).
func (s *System) reRouteSource(p *occam.Proc, st *Stream) {
	plan := st.Tree
	var vcis []uint32
	for _, n := range plan.order {
		if n.parent == nil {
			vcis = append(vcis, n.vci)
		}
	}
	src := s.boxes[plan.from]
	src.SetRoute(p, box.Route{
		Stream:  st.Local,
		Outputs: []box.Output{box.OutNetwork},
		NetVCIs: vcis,
		Opened:  occam.Time(1),
		Video:   st.Video,
	})
	if len(vcis) == 0 {
		src.SetNetCopies(p, st.Local, nil)
	}
}

// SendAudioTree opens a one-way audio stream distributed over
// replication trees instead of per-viewer circuits from the source.
// cfg.Fanout 0 degenerates to the flat tannoy of SendAudio.
func (s *System) SendAudioTree(p *occam.Proc, cfg TreeConfig, from string, to ...string) *Stream {
	return s.sendTree(p, cfg, from, box.CameraStream{}, false, to)
}

// sendTree is the shared planner apply for audio and video streams:
// plan every destination, allocate VCIs and open parent→child circuits
// in destination order, install destination routes (interior boxes
// re-split), then the source route — one copy per tree — and start the
// media source last, so every relay is routed before data flows.
func (s *System) sendTree(p *occam.Proc, cfg TreeConfig, from string, cs box.CameraStream, video bool, to []string) *Stream {
	src := s.boxes[from]
	st := &Stream{From: from, Local: s.allocStream(from), Video: video, VCIs: make(map[string]uint32)}
	plan := newTreePlan(from, cfg)
	st.Tree = plan
	if plan.cfg.Fanout <= 0 {
		// Flat plan: every destination a direct child of the source, with
		// the exact VCI-allocation and route-install sequence of the
		// original per-viewer tannoy.
		for _, dst := range to {
			n := &treeNode{name: dst, vci: s.allocVCI()}
			plan.placed[0] = append(plan.placed[0], n)
			plan.order = append(plan.order, n)
			plan.nodes[dst] = n
			plan.nextIdx++
			st.VCIs[dst] = n.vci
			s.openCircuit(p, n.vci, from, dst, video)
			s.installNode(p, st, n, false)
		}
	} else {
		for _, dst := range to {
			n := s.planAttach(plan, dst)
			n.vci = s.allocVCI()
			st.VCIs[dst] = n.vci
			s.openCircuit(p, n.vci, plan.feederName(n), dst, video)
		}
		// Routes go in after every child VCI exists, destination order.
		for _, n := range plan.order {
			s.installNode(p, st, n, false)
		}
		s.observeTree(st)
	}
	var rootVCIs []uint32
	for _, n := range plan.order {
		if n.parent == nil {
			rootVCIs = append(rootVCIs, n.vci)
		}
	}
	route := box.Route{Stream: st.Local, Outputs: []box.Output{box.OutNetwork}, NetVCIs: rootVCIs, Video: video}
	src.SetRoute(p, route)
	if video {
		cs.Stream = st.Local
		src.StartCamera(p, cs)
	} else {
		src.StartMic(p, st.Local)
	}
	return st
}

// observeTree registers the per-tree gauges for planned (non-flat)
// trees: depth, the interior copy high-water, and repairs.
func (s *System) observeTree(st *Stream) {
	plan := st.Tree
	lb := obs.L("tree", fmt.Sprintf("%s.%d", st.From, st.Local))
	s.Obs.GaugeFunc("tree_depth", func() float64 { return float64(plan.Depth()) }, lb)
	s.Obs.GaugeFunc("tree_copies_max", func() float64 { return float64(plan.MaxInteriorCopies()) }, lb)
	s.Obs.CounterFunc("tree_repairs_total", func() uint64 { return plan.repairs }, lb)
}

// Pull grafts late joiners onto an open tree stream: each destination
// pulls one copy from the best already-carrying box (spare fanout,
// reachable, scanned in placement order) — the source's own port never
// gains another circuit unless nothing else can reach the joiner.
func (s *System) Pull(p *occam.Proc, st *Stream, dsts ...string) {
	plan := st.Tree
	for _, dst := range dsts {
		n := s.planAttach(plan, dst)
		n.vci = s.allocVCI()
		st.VCIs[dst] = n.vci
		s.openCircuit(p, n.vci, plan.feederName(n), dst, st.Video)
		s.installNode(p, st, n, false)
		if n.parent == nil {
			s.reRouteSource(p, st)
		} else {
			s.installNode(p, st, n.parent, true)
		}
	}
}

// RepairTree re-homes the orphaned children of a failed interior box:
// each orphan (its whole subtree intact) is re-parented onto the first
// surviving box in its own tree with spare fanout that can reach it
// (the least-loaded such box when a placer is installed), falling
// back to the source. The balancer's migration loop calls this too —
// a migration is a repair minus the fault: the "failed" box is merely
// hot, keeps its own playout, and only stops relaying. Circuits are rewired mid-stream — on a
// shared fabric the VCI already routes to the orphan's port, so the
// new parent simply starts sending on it (principle 6: the change
// applies between segments); across a bridge the old circuit closes
// and a new one opens. Returns how many orphans were re-homed.
func (s *System) RepairTree(p *occam.Proc, st *Stream, failed string) int {
	plan := st.Tree
	if plan == nil {
		return 0
	}
	fn := plan.nodes[failed]
	if fn == nil || len(fn.children) == 0 {
		return 0
	}
	orphans := fn.children
	fn.children = nil
	s.installNode(p, st, fn, true) // stop the failed box's forwarded copies
	for _, o := range orphans {
		var elig []*treeNode
		for _, cand := range plan.placed[o.tree] {
			if cand == fn || under(cand, o) {
				continue // never adopt into the orphan's own subtree
			}
			if _, isBox := s.boxes[cand.name]; !isBox {
				continue
			}
			if len(cand.children) < plan.cfg.Fanout && s.connectable(cand.name, o.name) {
				elig = append(elig, cand)
				if s.placer == nil {
					break
				}
			}
		}
		parent := s.pickCandidate(elig)
		feeder := plan.from
		if parent != nil {
			feeder = parent.name
		} else if !s.connectable(plan.from, o.name) {
			panic(fmt.Sprintf("core: tree repair: no surviving box reaches %s (was under %s)", o.name, failed))
		}
		// The fabric routes a VCI by value, not by sender: when both the
		// failed and the new feeder reach the orphan over the same
		// fabric, the installed route is already right. Any other edge
		// change closes the old circuit and opens the new.
		if !(s.sameFabric(failed, o.name) && s.sameFabric(feeder, o.name)) {
			s.closeCircuit(o.vci, failed, o.name)
			s.openCircuit(p, o.vci, feeder, o.name, st.Video)
		}
		o.former = append(o.former, fn)
		o.parent = parent
		if parent == nil {
			s.reRouteSource(p, st)
		} else {
			parent.children = append(parent.children, o)
			s.installNode(p, st, parent, true)
		}
	}
	plan.repairs++
	s.Obs.Tracer().Emit(obs.EvRepair, "core.tree", st.Local,
		fmt.Sprintf("re-homed %d subtrees around failed %s", len(orphans), failed))
	return len(orphans)
}

// closeTree tears a tree stream down: stop the media source, remove
// the source route, then every destination's route and its feeding
// circuit, in placement order.
func (s *System) closeTree(p *occam.Proc, st *Stream) {
	src := s.boxes[st.From]
	if st.Video {
		src.StopCamera(p, st.Local)
	} else {
		src.StopMic(p)
	}
	src.CloseRoute(p, st.Local)
	plan := st.Tree
	for _, n := range plan.order {
		if db, ok := s.boxes[n.name]; ok {
			db.CloseRoute(p, n.vci)
		}
		s.closeCircuit(n.vci, plan.feederName(n), n.name)
	}
}

// removeTreeDestination detaches one destination. A leaf just
// disconnects; an interior box first has its children re-homed (the
// repair machinery, minus the fault) so its subtree keeps playing.
func (s *System) removeTreeDestination(p *occam.Proc, st *Stream, dst string) {
	plan := st.Tree
	n := plan.nodes[dst]
	if n == nil {
		return
	}
	if len(n.children) > 0 {
		s.RepairTree(p, st, dst)
	}
	feeder := plan.feederName(n)
	if n.parent == nil {
		// Remove from the roots and re-route the source.
		delete(plan.nodes, dst)
		plan.drop(n)
		s.reRouteSource(p, st)
	} else {
		parent := n.parent
		for i, c := range parent.children {
			if c == n {
				parent.children = append(parent.children[:i], parent.children[i+1:]...)
				break
			}
		}
		delete(plan.nodes, dst)
		plan.drop(n)
		s.installNode(p, st, parent, true)
	}
	delete(st.VCIs, dst)
	if db, ok := s.boxes[dst]; ok {
		db.CloseRoute(p, n.vci)
	}
	s.closeCircuit(n.vci, feeder, dst)
}

// drop removes n from the placement lists.
func (t *TreePlan) drop(n *treeNode) {
	for i, m := range t.order {
		if m == n {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	for i, m := range t.placed[n.tree] {
		if m == n {
			t.placed[n.tree] = append(t.placed[n.tree][:i], t.placed[n.tree][i+1:]...)
			break
		}
	}
}
