package core

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/box"
	"repro/internal/occam"
	"repro/internal/video"
	"repro/internal/workload"
)

func fastLink() atm.LinkConfig {
	return atm.LinkConfig{Bandwidth: 100_000_000, Propagation: 100 * time.Microsecond}
}

func TestAudioCallBothDirections(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "a", Mic: workload.NewTone(400, 10000)})
	s.AddBox(box.Config{Name: "b", Mic: workload.NewTone(500, 10000)})
	s.Connect("a", "b", fastLink())
	var ab, ba *Stream
	s.Control(func(p *occam.Proc) { ab, ba = s.AudioCall(p, "a", "b") })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.Box("b").Mixer().Stats(ab.VCIs["b"]); got.Segments < 200 {
		t.Fatalf("a→b delivered %d segments", got.Segments)
	}
	if got := s.Box("a").Mixer().Stats(ba.VCIs["a"]); got.Segments < 200 {
		t.Fatalf("b→a delivered %d segments", got.Segments)
	}
}

func TestConferenceMixesAll(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	names := []string{"a", "b", "c"}
	for i, n := range names {
		s.AddBox(box.Config{Name: n, Mic: workload.NewTone(300+i*100, 8000)})
	}
	s.Connect("a", "b", fastLink())
	s.Connect("a", "c", fastLink())
	s.Connect("b", "c", fastLink())
	s.Control(func(p *occam.Proc) { s.Conference(p, names...) })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	// Every box mixes the two other streams.
	for _, n := range names {
		if got := s.Box(n).Mixer().ActiveStreams(); got != 2 {
			t.Fatalf("box %s mixing %d streams, want 2", n, got)
		}
	}
}

func TestTannoySplit(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "src", Mic: workload.NewTone(440, 9000)})
	for _, n := range []string{"d1", "d2", "d3"} {
		s.AddBox(box.Config{Name: n})
		s.Connect("src", n, fastLink())
	}
	var st *Stream
	s.Control(func(p *occam.Proc) { st = s.SendAudio(p, "src", "d1", "d2", "d3") })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"d1", "d2", "d3"} {
		if got := s.Box(n).Mixer().Stats(st.VCIs[n]); got.Segments < 200 {
			t.Fatalf("%s got %d segments", n, got.Segments)
		}
	}
}

func TestVideoPhone(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "a", Mic: workload.NewTone(400, 10000)})
	s.AddBox(box.Config{Name: "b"})
	s.Connect("a", "b", fastLink())
	s.Control(func(p *occam.Proc) {
		s.SendAudio(p, "a", "b")
		s.SendVideo(p, "a", box.CameraStream{
			Rect: video.Rect{W: 128, H: 64},
			Rate: video.Rate{Num: 2, Den: 5},
		}, "b")
	})
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f := s.Box("b").DisplayStats().Frames; f < 15 {
		t.Fatalf("video phone displayed %d frames", f)
	}
}

func TestSplitAndRemoveDestinationContinuity(t *testing.T) {
	// Principle 6 at system level: add then remove a destination; the
	// original copy never sees a sequence gap.
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "src", Mic: workload.NewTone(440, 9000)})
	s.AddBox(box.Config{Name: "keep"})
	s.AddBox(box.Config{Name: "extra"})
	s.Connect("src", "keep", fastLink())
	s.Connect("src", "extra", fastLink())
	var st *Stream
	s.Control(func(p *occam.Proc) {
		st = s.SendAudio(p, "src", "keep")
		p.Sleep(300 * time.Millisecond)
		s.AddAudioDestination(p, st, "extra")
		p.Sleep(300 * time.Millisecond)
		s.RemoveDestination(p, st, "extra")
	})
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	keep := s.Box("keep").Mixer().Stats(st.VCIs["keep"])
	if keep.LostSegments != 0 {
		t.Fatalf("reconfiguration cost the kept copy %d segments", keep.LostSegments)
	}
	if keep.Segments < 200 {
		t.Fatalf("kept copy got %d segments", keep.Segments)
	}
}

func TestCloseStopsFlow(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "a", Mic: workload.NewTone(440, 9000)})
	s.AddBox(box.Config{Name: "b"})
	s.Connect("a", "b", fastLink())
	var st *Stream
	s.Control(func(p *occam.Proc) {
		st = s.SendAudio(p, "a", "b")
		p.Sleep(300 * time.Millisecond)
		s.Close(p, st)
	})
	if err := s.RunFor(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	after := s.Box("b").Mixer().Stats(st.VCIs["b"]).Segments
	if err := s.RunFor(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	later := s.Box("b").Mixer().Stats(st.VCIs["b"]).Segments
	if later > after+2 {
		t.Fatalf("segments still flowing after Close: %d -> %d", after, later)
	}
}

func TestRecordAndPlayback(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "a", Mic: workload.NewTone(440, 9000)})
	s.AddBox(box.Config{Name: "b"})
	s.AddRepository("repo")
	s.Connect("a", "repo", fastLink())
	s.Connect("repo", "b", fastLink())
	var st *Stream
	s.Control(func(p *occam.Proc) { st = s.RecordAudio(p, "a", "repo") })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	rec := s.Repository("repo").Recording(st.VCIs["repo"])
	if rec == nil || rec.Duration() < 900*time.Millisecond {
		t.Fatalf("recording %v", rec)
	}
	merged := rec.Resegment()
	want := merged.Blocks() // the mic keeps recording during playback
	var vci uint32
	s.Control(func(p *occam.Proc) { vci = s.PlayTo(p, "repo", merged, "b") })
	if err := s.RunFor(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got := s.Box("b").Mixer().Stats(vci)
	if got.Blocks < uint64(want*9/10) {
		t.Fatalf("playback delivered %d of %d blocks", got.Blocks, want)
	}
}

func TestMultiHopPathWorks(t *testing.T) {
	// The SuperJanet shape: several hops, still a working call.
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "cam", Mic: workload.NewTone(440, 9000)})
	s.AddBox(box.Config{Name: "lon"})
	s.ConnectPath("cam", "lon", []atm.LinkConfig{
		{Bandwidth: 100_000_000, Propagation: time.Millisecond},
		{Bandwidth: 34_000_000, Propagation: 2 * time.Millisecond},
		{Bandwidth: 100_000_000, Propagation: time.Millisecond},
	})
	var st *Stream
	s.Control(func(p *occam.Proc) { st = s.SendAudio(p, "cam", "lon") })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.Box("lon").Mixer().Stats(st.VCIs["lon"]); got.Segments < 200 {
		t.Fatalf("multi-hop delivered %d segments", got.Segments)
	}
}
