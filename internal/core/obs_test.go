package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/box"
	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/workload"
)

// TestObservabilityEndToEnd runs the quickstart topology and checks
// that every layer of the system reported into the shared registry:
// the network, the jitter buffers, the mixer, the decoupling buffers,
// the segment allocator and the box boards all show activity.
func TestObservabilityEndToEnd(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "alice", Mic: workload.NewSpeech(1, 12000),
		Features: box.Features{JitterCorrection: true}})
	s.AddBox(box.Config{Name: "bob", Mic: workload.NewSpeech(2, 12000),
		Features: box.Features{JitterCorrection: true}})
	s.Connect("alice", "bob", fastLink())
	var ab *Stream
	s.Control(func(p *occam.Proc) { ab, _ = s.AudioCall(p, "alice", "bob") })
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	snap := s.Obs.Snapshot()
	if snap.At != occam.Time(2*time.Second) {
		t.Fatalf("snapshot at %v", snap.At)
	}

	// Each counter family must exist and have accumulated real
	// traffic: a missed wiring point shows up as a zero total here.
	for _, family := range []string{
		"atm_link_forwarded_total",
		"atm_link_bytes_total",
		"clawback_pushed_total",
		"clawback_accepted_total",
		"clawback_popped_total",
		"mixer_segments_total",
		"mixer_blocks_total",
		"mixer_ticks_total",
		"decouple_pushed_total",
		"decouple_popped_total",
		"allocator_grants_total",
		"switch_switched_total",
		"audio_ticks_total",
		"audio_mic_blocks_total",
		"audio_mic_segments_total",
	} {
		if len(snap.Family(family)) == 0 {
			t.Errorf("family %s not registered", family)
			continue
		}
		if snap.Total(family) == 0 {
			t.Errorf("family %s registered but never incremented", family)
		}
	}

	// Per-instance checks: both directions of the call show up with
	// their own labels.
	if _, ok := snap.Get("atm_link_forwarded_total", obs.L("link", "alice-bob.0")); !ok {
		t.Error("no per-link counter for alice-bob.0")
	}
	if sam, ok := snap.Get("mixer_segments_total",
		obs.L("box", "bob"), obs.L("stream", "1001")); !ok || sam.Value < 200 {
		t.Errorf("bob's mixer stream counter: %+v (ok=%v)", sam, ok)
	}

	// The playout latency histogram observed both speakers.
	for _, name := range []string{"alice", "bob"} {
		sam, ok := snap.Get("audio_playout_latency_ms", obs.L("box", name))
		if !ok || sam.Count == 0 {
			t.Errorf("%s: playout histogram empty", name)
		} else if mean := sam.Sum / float64(sam.Count); mean < 2 || mean > 50 {
			t.Errorf("%s: playout mean %.2fms implausible", name, mean)
		}
	}

	// Registry counters agree with the legacy accessors they back.
	st := s.Path("alice", "bob")[0].Stats()
	if sam, _ := snap.Get("atm_link_forwarded_total", obs.L("link", "alice-bob.0")); uint64(sam.Value) != st.Forwarded {
		t.Errorf("link stats %d diverge from registry %v", st.Forwarded, sam.Value)
	}
	m := s.Box("bob").Mixer().Stats(ab.VCIs["bob"])
	if sam, _ := snap.Get("mixer_segments_total",
		obs.L("box", "bob"), obs.L("stream", "1001")); uint64(sam.Value) != m.Segments {
		t.Errorf("mixer stats %d diverge from registry %v", m.Segments, sam.Value)
	}

	// Stream lifecycle landed in the trace.
	var opens int
	for _, e := range s.Obs.Tracer().Events() {
		if e.Kind == obs.EvStreamOpen {
			opens++
		}
	}
	if opens < 4 { // 2 circuits + 2 mics at least
		t.Errorf("only %d stream-open events traced", opens)
	}

	// Both exporters include the active families.
	table, promText := snap.Table(), snap.Prometheus()
	for _, want := range []string{"atm_link_forwarded_total", "mixer_segments_total"} {
		if !strings.Contains(table, want) {
			t.Errorf("table export missing %s", want)
		}
		if !strings.Contains(promText, "# TYPE "+want+" counter") {
			t.Errorf("prometheus export missing TYPE line for %s", want)
		}
	}
}

// TestObservabilityDelta checks that interval deltas work over a live
// system: the second second of a call forwards roughly as many
// segments as the first, and the delta sees only that interval.
func TestObservabilityDelta(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	s.AddBox(box.Config{Name: "a", Mic: workload.NewTone(400, 10000)})
	s.AddBox(box.Config{Name: "b", Mic: workload.NewTone(500, 10000)})
	s.Connect("a", "b", fastLink())
	s.Control(func(p *occam.Proc) { s.AudioCall(p, "a", "b") })
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	first := s.Obs.Snapshot()
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	delta := s.Obs.Snapshot().Delta(first)
	if delta.Since != first.At {
		t.Fatalf("delta Since = %v", delta.Since)
	}
	total, interval := s.Obs.Snapshot().Total("atm_link_forwarded_total"),
		delta.Total("atm_link_forwarded_total")
	if interval <= 0 || interval >= total {
		t.Fatalf("interval forwarded %v of %v total", interval, total)
	}
	// Steady state: the two halves are within 20% of each other.
	if ratio := interval / (total - interval); ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("second-second rate ratio %.2f", ratio)
	}
}
