// Package core is the top-level API of the Pandora reproduction: it
// assembles boxes, repositories and the ATM network on one
// virtual-time runtime and exposes the operations the paper's
// applications used (§4.1) — video phone calls, multi-way
// conferences, shout/tannoy one-way streams, and recording/playback —
// while the eight design principles (§2) do their work underneath.
//
// Typical use:
//
//	sys := core.NewSystem()
//	a := sys.AddBox(box.Config{Name: "a", Mic: workload.NewSpeech(1, 12000)})
//	b := sys.AddBox(box.Config{Name: "b"})
//	sys.Connect("a", "b", atm.LinkConfig{Bandwidth: 100_000_000})
//	sys.Control(func(p *occam.Proc) { sys.AudioCall(p, "a", "b") })
//	sys.RunFor(10 * time.Second)
//
// Ownership: core itself never touches segment wires — it plumbs
// boxes, fabrics and links together and installs routes. The
// invariant it preserves by construction is that every box (and
// repository) keeps its own segment.WirePool: circuits and fabric
// ports move wire *references* from a sender's pool to a receiver,
// and the receiver's single copy-in at its pool boundary is the only
// byte copy on the path (see internal/segment and internal/atm for
// the refcount rules core's wiring relies on).
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/atm"
	"repro/internal/box"
	"repro/internal/degrade"
	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/repository"
)

// Stream identifies one open stream: the source-local stream number
// and the VCI used at each destination.
type Stream struct {
	From  string
	Local uint32            // stream number at the source box
	VCIs  map[string]uint32 // destination name → VCI (= stream number there)
	Video bool
	// Tree is the stream's distribution plan: who feeds whom. Streams
	// opened by SendAudio/SendVideo carry the flat plan (every
	// destination fed by the source); SendAudioTree carries real
	// replication trees. Repository streams (RecordAudio) have none.
	Tree *TreePlan
}

// System is a collection of boxes and repositories on one network.
type System struct {
	RT  *occam.Runtime
	Net *atm.Network
	// Obs is the system-wide observability registry: every box, link
	// and buffer registers its counters here, stamped with the
	// runtime's virtual clock.
	Obs *obs.Registry

	boxes map[string]*box.Box
	repos map[string]*repository.Repository
	paths map[string][]*atm.Link // directional: "a->b"

	fabrics  map[string]*fabric.Fabric
	fabPorts map[string]*fabric.Port   // node name → its fabric port
	fabOf    map[string]*fabric.Fabric // node name → its fabric
	fabMux   map[string]*bridgeMux     // node name → bridge transport mux

	nextVCI    uint32
	nextStream map[string]uint32

	placer Placer
}

// Placer is the placement seam the balancer control plane installs
// (internal/balancer implements it; core never imports the balancer).
// When a placer is set, the tree planner and RepairTree pick the
// best-ranked eligible candidate instead of the first in placement
// order. A placer must be deterministic: given the same candidate
// slice at the same virtual time it must return the same ranking, or
// replays stop being byte-identical.
type Placer interface {
	// RankBoxes orders cands best-first (least loaded first). The
	// result must be a permutation of cands; the caller adopts
	// element 0. Candidates arrive in placement order, so a placer
	// that ranks stably degenerates to first-fit on score ties.
	RankBoxes(cands []string) []string
}

// SetPlacer installs (or, with nil, removes) the placement policy.
func (s *System) SetPlacer(pl Placer) { s.placer = pl }

// Connectable reports whether openCircuit(a→b) would succeed — the
// balancer uses it to restrict call placement to reachable boxes.
func (s *System) Connectable(a, b string) bool { return s.connectable(a, b) }

// BoxNames returns every box name (repositories excluded), sorted.
func (s *System) BoxNames() []string {
	out := make([]string, 0, len(s.boxes))
	for n := range s.boxes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewSystem returns an empty system.
func NewSystem() *System {
	rt := occam.NewRuntime()
	s := &System{
		RT:         rt,
		Net:        atm.New(rt),
		Obs:        obs.New(rt),
		boxes:      make(map[string]*box.Box),
		repos:      make(map[string]*repository.Repository),
		paths:      make(map[string][]*atm.Link),
		fabrics:    make(map[string]*fabric.Fabric),
		fabPorts:   make(map[string]*fabric.Port),
		fabOf:      make(map[string]*fabric.Fabric),
		fabMux:     make(map[string]*bridgeMux),
		nextVCI:    1000,
		nextStream: make(map[string]uint32),
	}
	s.Net.Observe(s.Obs)
	return s
}

// AddBox creates a Pandora box. cfg.Name must be unique and non-empty.
func (s *System) AddBox(cfg box.Config) *box.Box {
	if cfg.Name == "" {
		panic("core: box needs a name")
	}
	if _, dup := s.boxes[cfg.Name]; dup {
		panic("core: duplicate box " + cfg.Name)
	}
	if cfg.Obs == nil {
		cfg.Obs = s.Obs
	}
	b := box.New(s.RT, s.Net, cfg)
	s.boxes[cfg.Name] = b
	return b
}

// AddRepository creates a repository node.
func (s *System) AddRepository(name string) *repository.Repository {
	r := repository.New(s.RT, s.Net, name)
	s.repos[name] = r
	return r
}

// Box returns a box by name.
func (s *System) Box(name string) *box.Box { return s.boxes[name] }

// Repository returns a repository by name.
func (s *System) Repository(name string) *repository.Repository { return s.repos[name] }

func (s *System) hostOf(name string) *atm.Host {
	if b, ok := s.boxes[name]; ok {
		return b.Host()
	}
	if r, ok := s.repos[name]; ok {
		return r.Host()
	}
	panic("core: unknown node " + name)
}

// Connect joins two nodes with a symmetric pair of links.
func (s *System) Connect(a, b string, cfg atm.LinkConfig) {
	s.ConnectPath(a, b, []atm.LinkConfig{cfg})
}

// ConnectPath joins two nodes through a chain of links in each
// direction — the bridged multi-network paths of the SuperJanet
// trials (§3.7.2). Each config becomes one hop.
func (s *System) ConnectPath(a, b string, cfgs []atm.LinkConfig) {
	var fwd, rev []*atm.Link
	for i, cfg := range cfgs {
		fwd = append(fwd, s.Net.AddLink(fmt.Sprintf("%s-%s.%d", a, b, i), cfg))
		rev = append(rev, s.Net.AddLink(fmt.Sprintf("%s-%s.%d", b, a, i), cfg))
	}
	s.paths[a+"->"+b] = fwd
	s.paths[b+"->"+a] = rev
}

// Path returns the links from a to b (nil if not connected).
func (s *System) Path(a, b string) []*atm.Link { return s.paths[a+"->"+b] }

// AddFabric creates a named switching fabric. Nodes join it with
// AttachFabric; circuits between two attached nodes are then routed
// through the fabric instead of point-to-point links.
func (s *System) AddFabric(name string, cfg fabric.Config) *fabric.Fabric {
	if _, dup := s.fabrics[name]; dup {
		panic("core: duplicate fabric " + name)
	}
	f := fabric.New(s.RT, name, cfg)
	f.Observe(s.Obs)
	s.fabrics[name] = f
	return f
}

// AttachFabric connects an existing node to a fabric: the node's host
// sends through its own fabric port from now on. A node attaches to at
// most one fabric. Circuits opened over declared links (ConnectPath) —
// the bridges that stitch fabrics together — keep working: a bridge
// mux in front of the port steers bridge VCIs onto the links and
// everything else into the fabric. Returns the node's port.
func (s *System) AttachFabric(fabricName, node string) *fabric.Port {
	f, ok := s.fabrics[fabricName]
	if !ok {
		panic("core: unknown fabric " + fabricName)
	}
	if _, dup := s.fabOf[node]; dup {
		panic("core: node " + node + " already fabric-attached")
	}
	h := s.hostOf(node)
	prev := h.Transport()
	pt := f.Attach(h)
	mux := &bridgeMux{port: pt, links: prev, bridge: make(map[uint32]bool)}
	h.SetTransport(mux)
	s.fabMux[node] = mux
	s.fabPorts[node] = pt
	s.fabOf[node] = f
	return pt
}

// bridgeMux lets a fabric-attached node also drive point-to-point
// bridge links toward other fabrics: VCIs registered as bridges go out
// over the network's circuit table, everything else through the
// fabric port. Registration happens in openCircuit/closeCircuit, on
// the control plane; the data path is one map lookup.
type bridgeMux struct {
	port   atm.Transport
	links  atm.Transport
	bridge map[uint32]bool
}

func (m *bridgeMux) TransportName() string { return "bridge+" + m.port.TransportName() }

func (m *bridgeMux) Send(p *occam.Proc, msg atm.Message) error {
	if m.bridge[msg.VCI] {
		return m.links.Send(p, msg)
	}
	return m.port.Send(p, msg)
}

// sameFabric reports whether both nodes hang off one fabric.
func (s *System) sameFabric(a, b string) bool {
	fa, oka := s.fabOf[a]
	fb, okb := s.fabOf[b]
	return oka && okb && fa == fb
}

// FabricPort returns node's fabric port (nil if not attached).
func (s *System) FabricPort(node string) *fabric.Port { return s.fabPorts[node] }

// Fabric returns a fabric by name (nil if unknown).
func (s *System) Fabric(name string) *fabric.Fabric { return s.fabrics[name] }

// Control runs fn as a high-priority control process (the host
// workstation's interface code). Call before or between Run calls.
func (s *System) Control(fn func(p *occam.Proc)) {
	s.RT.Go("control", nil, occam.High, fn)
}

// RunFor advances the whole system by d of virtual time.
func (s *System) RunFor(d time.Duration) error { return s.RT.RunFor(d) }

// Shutdown terminates every process.
func (s *System) Shutdown() { s.RT.Shutdown() }

func (s *System) allocVCI() uint32 {
	s.nextVCI++
	return s.nextVCI
}

func (s *System) allocStream(boxName string) uint32 {
	s.nextStream[boxName]++
	return s.nextStream[boxName]
}

// SendAudio opens a one-way audio stream (the "shout" of §4.1) from
// one box's microphone to each named destination's speaker (several
// destinations make it a "tannoy"). It routes through the tree
// planner's flat plan — every destination fed by one circuit from the
// source, the paper's original configuration. SendAudioTree replaces
// the flat plan with replication trees when the fan-out outgrows the
// source port. Returns the stream handle.
func (s *System) SendAudio(p *occam.Proc, from string, to ...string) *Stream {
	return s.sendTree(p, TreeConfig{}, from, box.CameraStream{}, false, to)
}

// SendVideo opens a one-way video stream to each destination's
// display (flat plan, as SendAudio).
func (s *System) SendVideo(p *occam.Proc, from string, cs box.CameraStream, to ...string) *Stream {
	return s.sendTree(p, TreeConfig{}, from, cs, true, to)
}

// SendVideoTree opens a one-way video stream distributed over
// replication trees (see SendAudioTree).
func (s *System) SendVideoTree(p *occam.Proc, cfg TreeConfig, from string, cs box.CameraStream, to ...string) *Stream {
	return s.sendTree(p, cfg, from, cs, true, to)
}

// AudioCall opens audio in both directions — the video phone's audio
// path (§4.1).
func (s *System) AudioCall(p *occam.Proc, a, b string) (ab, ba *Stream) {
	return s.SendAudio(p, a, b), s.SendAudio(p, b, a)
}

// Conference opens a full mesh of audio streams between the members;
// every box mixes the other members' streams (§2.0: "Their
// accompanying audio streams are mixed by software in real-time on
// the destination transputer").
func (s *System) Conference(p *occam.Proc, members ...string) []*Stream {
	var streams []*Stream
	for _, from := range members {
		var to []string
		for _, other := range members {
			if other != from {
				to = append(to, other)
			}
		}
		streams = append(streams, s.SendAudio(p, from, to...))
	}
	return streams
}

// AddAudioDestination splits an open stream to one more destination
// without disturbing the existing copies (principle 6). Tree-planned
// streams graft the newcomer via Pull; plan-less repository streams
// keep the historical source-side split.
func (s *System) AddAudioDestination(p *occam.Proc, st *Stream, dst string) {
	if st.Tree != nil {
		s.Pull(p, st, dst)
		return
	}
	vci := s.allocVCI()
	st.VCIs[dst] = vci
	s.openCircuit(p, vci, st.From, dst, st.Video)
	if db, ok := s.boxes[dst]; ok {
		out := box.OutSpeaker
		if st.Video {
			out = box.OutDisplay
		}
		db.SetRoute(p, box.Route{Stream: vci, Outputs: []box.Output{out}})
	}
	s.reRoute(p, st)
}

// RemoveDestination drops one destination from a stream; the other
// copies are unaffected (principle 6). On a tree plan an interior
// box's subtree is re-homed first, so its descendants keep playing.
func (s *System) RemoveDestination(p *occam.Proc, st *Stream, dst string) {
	vci, ok := st.VCIs[dst]
	if !ok {
		return
	}
	if st.Tree != nil {
		s.removeTreeDestination(p, st, dst)
		return
	}
	delete(st.VCIs, dst)
	s.reRoute(p, st)
	s.closeCircuit(vci, st.From, dst)
}

// reRoute re-installs the source route to match st.VCIs. The switch
// applies it between segments, so the data flows undisturbed.
func (s *System) reRoute(p *occam.Proc, st *Stream) {
	var vcis []uint32
	for _, v := range st.VCIs {
		vcis = append(vcis, v)
	}
	src := s.boxes[st.From]
	out := box.OutNetwork
	src.SetRoute(p, box.Route{
		Stream:  st.Local,
		Outputs: []box.Output{out},
		NetVCIs: vcis,
		Opened:  occam.Time(1), // keep the original age (principle 3)
		Video:   st.Video,
	})
}

// Close shuts a stream down entirely.
func (s *System) Close(p *occam.Proc, st *Stream) {
	if st.Tree != nil {
		s.closeTree(p, st)
		return
	}
	src := s.boxes[st.From]
	if st.Video {
		src.StopCamera(p, st.Local)
	} else {
		src.StopMic(p)
	}
	src.CloseRoute(p, st.Local)
	for dst, vci := range st.VCIs {
		if db, ok := s.boxes[dst]; ok {
			db.CloseRoute(p, vci)
		}
		s.closeCircuit(vci, st.From, dst)
	}
}

// RecordAudio opens a one-way audio stream from a box's microphone to
// a repository.
func (s *System) RecordAudio(p *occam.Proc, from, repo string) *Stream {
	src := s.boxes[from]
	st := &Stream{From: from, Local: s.allocStream(from), VCIs: make(map[string]uint32)}
	vci := s.allocVCI()
	st.VCIs[repo] = vci
	s.openCircuit(p, vci, from, repo, false)
	src.SetRoute(p, box.Route{Stream: st.Local, Outputs: []box.Output{box.OutNetwork}, NetVCIs: []uint32{vci}})
	src.StartMic(p, st.Local)
	return st
}

// PlayTo plays a repository recording to a box's speaker and returns
// the VCI used (the stream number at the destination).
func (s *System) PlayTo(p *occam.Proc, repoName string, rec *repository.Recording, to string) uint32 {
	vci := s.allocVCI()
	s.openCircuit(p, vci, repoName, to, false)
	s.boxes[to].SetRoute(p, box.Route{Stream: vci, Outputs: []box.Output{box.OutSpeaker}})
	s.repos[repoName].Playback(rec, vci)
	return vci
}

// InjectLinkFaults attaches spec's link-fault schedule to every
// network link and every fabric port, each with a seed derived from
// the link's or port's name so schedules are independent but
// reproducible. Call before RunFor. Port names (e.g. "fab.p03") work
// in spec target patterns exactly like link names, so a spec can
// fault one port of a fabric and leave the rest alone.
func (s *System) InjectLinkFaults(spec faultinject.Spec) {
	for _, l := range s.Net.Links() {
		if f := spec.LinkFault(l.Name()); f != nil {
			l.SetFault(f)
		}
	}
	names := make([]string, 0, len(s.fabrics))
	for name := range s.fabrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, pt := range s.fabrics[name].Ports() {
			if f := spec.LinkFault(pt.Name()); f != nil {
				pt.SetFault(f)
			}
		}
	}
}

// EnableDegradation starts one overload controller per box (principle
// 8: each box adapts to its own conditions; there is no global
// coordinator). Each controller watches its box's decoupling buffers
// plus the outgoing links of every path leaving the box, and applies
// cfg with those links filled in. Fabric-attached systems additionally
// get one controller per fabric port, watching that port's egress
// queue and shedding only streams routed to it (principle 5 across the
// fabric); those appear in the result keyed by port name. Returns the
// controllers by box or port name.
func (s *System) EnableDegradation(cfg degrade.Config) map[string]*degrade.Controller {
	names := make([]string, 0, len(s.boxes))
	for name := range s.boxes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]*degrade.Controller, len(names))
	for _, name := range names {
		bcfg := cfg
		var links []string
		for key, ls := range s.paths {
			if strings.HasPrefix(key, name+"->") {
				for _, l := range ls {
					links = append(links, l.Name())
				}
			}
		}
		sort.Strings(links)
		bcfg.Links = links
		out[name] = degrade.New(s.RT, s.boxes[name], bcfg, s.Obs)
	}
	fabNames := make([]string, 0, len(s.fabrics))
	for name := range s.fabrics {
		fabNames = append(fabNames, name)
	}
	sort.Strings(fabNames)
	for _, name := range fabNames {
		for port, c := range s.fabrics[name].EnableDegradation(cfg, s.Obs) {
			out[port] = c
		}
	}
	return out
}

// openCircuit installs the data path for one VCI. If both endpoints
// hang off the same fabric the VCI goes into the fabric routing table
// (toward the destination's port); otherwise it becomes a classic
// point-to-point circuit over the configured link path — including
// bridge links between two fabric-attached nodes on different
// fabrics, which register the VCI in the sender's bridge mux.
func (s *System) openCircuit(p *occam.Proc, vci uint32, from, to string, video bool) {
	if s.sameFabric(from, to) {
		s.fabOf[from].Route(p.Now(), vci, s.fabPorts[to], video)
		return
	}
	links, ok := s.paths[from+"->"+to]
	if !ok {
		if ff, okf := s.fabOf[from]; okf {
			panic(fmt.Sprintf("core: %s is on fabric %s but %s is not (and no bridge link is declared)", from, ff.Name(), to))
		}
		if ft, okt := s.fabOf[to]; okt {
			panic(fmt.Sprintf("core: %s is on fabric %s but %s is not (and no bridge link is declared)", to, ft.Name(), from))
		}
		panic(fmt.Sprintf("core: no path %s -> %s", from, to))
	}
	if mux, ok := s.fabMux[from]; ok {
		mux.bridge[vci] = true
	}
	s.Net.OpenCircuit(vci, s.hostOf(from), s.hostOf(to), links...)
}

// closeCircuit tears down what openCircuit installed.
func (s *System) closeCircuit(vci uint32, from, to string) {
	if s.sameFabric(from, to) {
		s.fabOf[from].Unroute(vci)
		return
	}
	if mux, ok := s.fabMux[from]; ok {
		delete(mux.bridge, vci)
	}
	s.Net.CloseCircuit(vci, s.hostOf(from), s.paths[from+"->"+to]...)
}
