package repository

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/occam"
	"repro/internal/segment"
)

func toneSegments(n, blocksPer int) []*segment.Audio {
	var segs []*segment.Audio
	for i := 0; i < n; i++ {
		blocks := make([][]byte, blocksPer)
		for j := range blocks {
			b := make([]byte, segment.BlockSamples)
			for k := range b {
				b[k] = byte(i*blocksPer + j)
			}
			blocks[j] = b
		}
		at := occam.Time(int64(i*blocksPer) * int64(segment.BlockDuration))
		segs = append(segs, segment.NewAudio(uint32(i), at, blocks))
	}
	return segs
}

func TestRecordOverNetwork(t *testing.T) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	src := net.AddHost("src")
	repo := New(rt, net, "repo")
	l := net.AddLink("sr", atm.LinkConfig{Bandwidth: 100_000_000})
	net.OpenCircuit(7, src, repo.Host(), l)

	segs := toneSegments(50, 2)
	pool := segment.NewWirePool()
	rt.Go("send", nil, occam.Low, func(p *occam.Proc) {
		for _, s := range segs {
			p.Sleep(4 * time.Millisecond)
			w := pool.Encode(s)
			if src.Send(p, atm.Message{VCI: 7, Size: w.Len(), W: w}) != nil {
				w.Release()
			}
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rec := repo.Recording(7)
	if rec == nil || len(rec.Segments) != 50 {
		t.Fatalf("recorded %v", rec)
	}
	if rec.Blocks() != 100 || rec.Duration() != 200*time.Millisecond {
		t.Fatalf("blocks=%d duration=%v", rec.Blocks(), rec.Duration())
	}
	if rec.LostSegments != 0 {
		t.Fatalf("lost %d on clean path", rec.LostSegments)
	}
}

func TestRecorderDetectsLoss(t *testing.T) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	src := net.AddHost("src")
	repo := New(rt, net, "repo")
	net.OpenCircuit(7, src, repo.Host())
	segs := toneSegments(10, 2)
	pool := segment.NewWirePool()
	rt.Go("send", nil, occam.Low, func(p *occam.Proc) {
		for i, s := range segs {
			if i == 4 || i == 5 {
				continue // lose two segments
			}
			p.Sleep(4 * time.Millisecond)
			w := pool.Encode(s)
			if src.Send(p, atm.Message{VCI: 7, Size: w.Len(), W: w}) != nil {
				w.Release()
			}
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := repo.Recording(7).LostSegments; got != 2 {
		t.Fatalf("LostSegments = %d, want 2", got)
	}
}

func TestResegmentTo40ms(t *testing.T) {
	rec := &Recording{Stream: 1, Segments: toneSegments(100, 2)} // 200 blocks
	merged := rec.Resegment()
	// 200 blocks / 20 per segment = 10 segments of 40 ms each.
	if len(merged.Segments) != 10 {
		t.Fatalf("%d merged segments, want 10", len(merged.Segments))
	}
	for i, s := range merged.Segments {
		if s.Blocks() != segment.RepositoryBlocksPerSegment {
			t.Fatalf("segment %d has %d blocks", i, s.Blocks())
		}
		if len(s.Data) != 320 {
			t.Fatalf("segment %d carries %d bytes, want 320", i, len(s.Data))
		}
		if s.WireSize() != 320+36 {
			t.Fatalf("segment %d wire size %d, want 356", i, s.WireSize())
		}
		if s.Seq != uint32(i) {
			t.Fatalf("segment %d renumbered as %d", i, s.Seq)
		}
	}
	if merged.Blocks() != rec.Blocks() {
		t.Fatal("re-segmentation lost audio")
	}
	// Every byte survives in order.
	want, got := 0, 0
	for _, s := range rec.Segments {
		want += len(s.Data)
	}
	for _, s := range merged.Segments {
		got += len(s.Data)
	}
	if want != got {
		t.Fatalf("bytes %d -> %d", want, got)
	}
	if merged.Segments[0].Data[0] != rec.Segments[0].Data[0] {
		t.Fatal("data reordered")
	}
}

func TestResegmentPartialTail(t *testing.T) {
	rec := &Recording{Stream: 1, Segments: toneSegments(11, 2)} // 22 blocks
	merged := rec.Resegment()
	if len(merged.Segments) != 2 {
		t.Fatalf("%d segments", len(merged.Segments))
	}
	if merged.Segments[1].Blocks() != 2 {
		t.Fatalf("tail has %d blocks, want 2", merged.Segments[1].Blocks())
	}
	if merged.Blocks() != 22 {
		t.Fatal("audio lost at the tail")
	}
}

func TestResegmentCutsHeaderOverhead(t *testing.T) {
	// §3.2: the point of the merge is "to reduce the disk space taken
	// up by headers". Live 2-block segments: 36 header per 32 data
	// (53%); merged: 36 per 320 (10%).
	rec := &Recording{Stream: 1, Segments: toneSegments(200, 2)}
	merged := rec.Resegment()
	liveOv := rec.HeaderOverhead()
	mergedOv := merged.HeaderOverhead()
	if liveOv < 0.5 {
		t.Fatalf("live overhead %.2f, want ≈0.53", liveOv)
	}
	if mergedOv > 0.11 {
		t.Fatalf("merged overhead %.2f, want ≈0.10", mergedOv)
	}
	if rec.StoredBytes() <= merged.StoredBytes() {
		t.Fatal("re-segmentation did not shrink storage")
	}
}

func TestPlaybackAtOriginalCadence(t *testing.T) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	repo := New(rt, net, "repo")
	sink := net.AddHost("sink")
	net.OpenCircuit(9, repo.Host(), sink)

	rec := (&Recording{Stream: 1, Segments: toneSegments(50, 2)}).Resegment()
	var arrivals []occam.Time
	rt.Go("rx", nil, occam.High, func(p *occam.Proc) {
		for {
			m := sink.Rx.Recv(p)
			m.W.Release()
			arrivals = append(arrivals, p.Now())
		}
	})
	repo.Playback(rec, 9)
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != len(rec.Segments) {
		t.Fatalf("played %d of %d segments", len(arrivals), len(rec.Segments))
	}
	// 40 ms cadence between segments.
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i].Sub(arrivals[i-1]); gap != 40*time.Millisecond {
			t.Fatalf("gap %v between segments %d and %d", gap, i-1, i)
		}
	}
}

func TestTimestampOffsetPreserved(t *testing.T) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	src := net.AddHost("src")
	repo := New(rt, net, "repo")
	net.OpenCircuit(1, src, repo.Host())
	net.OpenCircuit(2, src, repo.Host())
	pool := segment.NewWirePool()
	rt.Go("send", nil, occam.Low, func(p *occam.Proc) {
		a := toneSegments(3, 2)
		// Stream 2 started 102.4 ms (1600 timestamp ticks) later.
		b := toneSegments(3, 2)
		for _, s := range b {
			s.Timestamp += 1600
		}
		send := func(vci uint32, s *segment.Audio) {
			w := pool.Encode(s)
			if src.Send(p, atm.Message{VCI: vci, Size: w.Len(), W: w}) != nil {
				w.Release()
			}
		}
		for i := range a {
			send(1, a[i])
			send(2, b[i])
			p.Sleep(4 * time.Millisecond)
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	r1, r2 := repo.Recording(1), repo.Recording(2)
	offset := segment.TimestampTime(r2.FirstTimestamp).Sub(segment.TimestampTime(r1.FirstTimestamp))
	if offset != 1600*segment.TimestampTick {
		t.Fatalf("timestamp offset %v, want 102.4ms", offset)
	}
	// The offset survives re-segmentation.
	if r2.Resegment().FirstTimestamp != r2.FirstTimestamp {
		t.Fatal("re-segmentation lost the timestamp offset")
	}
}
