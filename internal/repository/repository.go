// Package repository implements the Pandora repository: a network
// node that records live streams and plays them back (§3.2, §4.1 —
// "stored audio streams are used for video recording, playback, and
// videomail applications").
//
// Two paper-specific behaviours:
//
//   - Priority reversal (§2.1): "incoming data streams should be
//     recorded as accurately as possible, even if that means degrading
//     streams that are currently being played out. It is a simple
//     matter to play a stream again, but recording one again could
//     present greater difficulties."
//   - Off-line re-segmentation (§3.2): live 2 ms-block segments are
//     split and merged "to form 40ms long segments containing 320
//     bytes of data plus a new 36 byte header", cutting the disk space
//     taken by headers. "These can be played back directly to any
//     Pandora box."
//
// Timestamp offsets between streams recorded together are kept so
// they can be resynchronised at playback (§3.2: "streams to be
// synchronised during playback must have been recorded on the same
// repository, where their timestamp offsets are recorded").
package repository

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/occam"
	"repro/internal/segment"
)

// Recording is one stored stream.
type Recording struct {
	Stream   uint32
	Segments []*segment.Audio
	// FirstTimestamp is the stream's timestamp offset, recorded so
	// streams captured together can be resynchronised at playback.
	FirstTimestamp uint32
	// LostSegments counts sequence gaps observed while recording.
	LostSegments uint64
}

// Blocks returns the total number of 2 ms blocks stored.
func (r *Recording) Blocks() int {
	n := 0
	for _, s := range r.Segments {
		n += s.Blocks()
	}
	return n
}

// Duration returns the audio time stored.
func (r *Recording) Duration() time.Duration {
	return time.Duration(r.Blocks()) * segment.BlockDuration
}

// StoredBytes returns the wire bytes the recording occupies,
// including every segment header — what the re-segmentation reduces.
func (r *Recording) StoredBytes() int {
	n := 0
	for _, s := range r.Segments {
		n += s.WireSize()
	}
	return n
}

// HeaderOverhead returns header bytes as a fraction of stored bytes.
func (r *Recording) HeaderOverhead() float64 {
	total := r.StoredBytes()
	if total == 0 {
		return 0
	}
	headers := len(r.Segments) * segment.AudioHeaderSize
	return float64(headers) / float64(total)
}

// Resegment performs the off-line merge: 2 ms blocks are split out
// and re-grouped into 40 ms segments (320 data bytes + 36 byte
// header), renumbered from zero with timestamps rebased onto the
// original first block. A trailing partial group keeps its shorter
// length, so no audio is lost.
func (r *Recording) Resegment() *Recording {
	var blocks [][]byte
	for _, s := range r.Segments {
		for i := 0; i < s.Blocks(); i++ {
			blocks = append(blocks, s.Block(i))
		}
	}
	out := &Recording{
		Stream:         r.Stream,
		FirstTimestamp: r.FirstTimestamp,
		LostSegments:   r.LostSegments,
	}
	base := segment.TimestampTime(r.FirstTimestamp)
	for i, seq := 0, uint32(0); i < len(blocks); seq++ {
		end := i + segment.RepositoryBlocksPerSegment
		if end > len(blocks) {
			end = len(blocks)
		}
		at := base.Add(time.Duration(i) * segment.BlockDuration)
		out.Segments = append(out.Segments, segment.NewAudio(seq, at, blocks[i:end]))
		i = end
	}
	return out
}

// Repository is the network node. It records every circuit addressed
// to it and can play recordings back over outgoing circuits.
type Repository struct {
	rt   *occam.Runtime
	host *atm.Host
	pool *segment.WirePool // playback wires
	recs map[uint32]*Recording
	next map[uint32]uint32 // per-stream expected sequence number
	seen map[uint32]bool
}

// New creates a repository as network host name and starts its
// recorder process. The recorder runs at High priority — the §2.1
// reversal: recording is never starved by playback.
func New(rt *occam.Runtime, net *atm.Network, name string) *Repository {
	r := &Repository{
		rt:   rt,
		host: net.AddHost(name),
		pool: segment.NewWirePool(),
		recs: make(map[uint32]*Recording),
		next: make(map[uint32]uint32),
		seen: make(map[uint32]bool),
	}
	rt.Go(name+".recorder", nil, occam.High, r.runRecorder)
	return r
}

// Host returns the repository's network endpoint.
func (r *Repository) Host() *atm.Host { return r.host }

// Recording returns the recording for a VCI (nil if nothing arrived).
func (r *Repository) Recording(vci uint32) *Recording { return r.recs[vci] }

func (r *Repository) runRecorder(p *occam.Proc) {
	for {
		m := r.host.Rx.Recv(p)
		if m.W.IsZero() {
			continue
		}
		// Decoding copies the sample data out of the wire — the
		// repository's single copy as a sink (§3.4) — so the recording
		// owns its bytes after the wire is released.
		seg, err := m.W.DecodeAudio()
		m.W.Release()
		if err != nil {
			continue // video recording stores segments opaquely; audio only here
		}
		rec, ok := r.recs[m.VCI]
		if !ok {
			rec = &Recording{Stream: m.VCI, FirstTimestamp: seg.Timestamp}
			r.recs[m.VCI] = rec
		}
		if r.seen[m.VCI] && seg.Seq != r.next[m.VCI] {
			if gap := int(int32(seg.Seq - r.next[m.VCI])); gap > 0 {
				rec.LostSegments += uint64(gap)
			}
		}
		r.next[m.VCI] = seg.Seq + 1
		r.seen[m.VCI] = true
		rec.Segments = append(rec.Segments, seg)
	}
}

// Playback replays a recording over an outgoing circuit at its
// original cadence, from a new process. Segments keep their stored
// headers — re-segmented 40 ms segments "can be played back directly
// to any Pandora box", whose mixer accepts any mixture of sizes.
// Playback runs at Low priority (recording wins under overload).
func (r *Repository) Playback(rec *Recording, vci uint32) {
	r.rt.Go(fmt.Sprintf("playback.%d", vci), nil, occam.Low, func(p *occam.Proc) {
		start := p.Now()
		elapsed := time.Duration(0)
		for _, s := range rec.Segments {
			p.SleepUntil(start.Add(elapsed))
			// Encode into a pooled wire and re-stamp in place so the
			// destination clawback measures real network delay, not
			// archive age.
			w := r.pool.Encode(s)
			w.SetTimestamp(segment.Timestamp(p.Now()))
			if err := r.host.Send(p, atm.Message{VCI: vci, Size: w.Len(), W: w}); err != nil {
				w.Release()
				return
			}
			elapsed += s.Duration()
		}
	})
}
