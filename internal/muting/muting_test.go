package muting

import (
	"testing"
	"time"

	"repro/internal/mulaw"
)

const blk = int64(2 * time.Millisecond)

func loud() []byte {
	b := make([]byte, 16)
	for i := range b {
		b[i] = mulaw.Encode(20000)
	}
	return b
}

func quiet() []byte {
	b := make([]byte, 16)
	for i := range b {
		b[i] = mulaw.Encode(100)
	}
	return b
}

func TestFullVolumeByDefault(t *testing.T) {
	m := New(Config{})
	if m.StageAt(0) != Full || m.FactorAt(0) != 1.0 {
		t.Fatal("muting active with no speaker signal")
	}
}

func TestQuietSpeakerNeverMutes(t *testing.T) {
	m := New(Config{})
	for i := int64(0); i < 100; i++ {
		m.ObserveSpeaker(i*blk, quiet())
		if m.StageAt(i*blk) != Full {
			t.Fatalf("muted at block %d with quiet speaker", i)
		}
	}
	if m.Crossings() != 0 {
		t.Fatalf("crossings = %d", m.Crossings())
	}
}

func TestLoudSpeakerTriggersDeepStageViaMid(t *testing.T) {
	m := New(Config{})
	m.ObserveSpeaker(0, loud())
	// Entry step: first block at the mid stage (no click), then deep.
	if st := m.StageAt(0); st != Mid {
		t.Fatalf("entry stage %v, want Mid", st)
	}
	if st := m.StageAt(blk); st != Deep {
		t.Fatalf("stage after entry %v, want Deep", st)
	}
}

func TestFigure41Timeline(t *testing.T) {
	// Figure 4.1: after the last threshold crossing, 22 ms at 20 %,
	// then 22 ms at 50 %, then back to 100 %.
	m := New(Config{})
	m.ObserveSpeaker(0, loud()) // single crossing at t=0
	type point struct {
		at   int64
		want Stage
	}
	pts := []point{
		{blk, Deep},                          // 2 ms
		{int64(20 * time.Millisecond), Deep}, // still inside 22 ms
		{int64(22 * time.Millisecond), Mid},  // deep hold expired
		{int64(42 * time.Millisecond), Mid},  // inside the 50 % stage
		{int64(44 * time.Millisecond), Full}, // fully recovered
		{int64(10 * time.Second), Full},      // stays recovered
	}
	for _, pt := range pts {
		if st := m.StageAt(pt.at); st != pt.want {
			t.Fatalf("stage at %v = %v, want %v", time.Duration(pt.at), st, pt.want)
		}
	}
}

func TestContinuedSpeechHoldsDeepStage(t *testing.T) {
	// While the speaker keeps crossing the threshold, the deep stage
	// persists — return "only occurs after the loudspeaker output has
	// remained below the threshold for sufficient time".
	m := New(Config{})
	var now int64
	for i := 0; i < 50; i++ { // 100 ms of continuous loud speech
		m.ObserveSpeaker(now, loud())
		now += blk
	}
	if st := m.StageAt(now); st != Deep {
		t.Fatalf("stage %v during continuous speech, want Deep", st)
	}
	// 22 ms after the last crossing the mid stage begins.
	last := now - blk
	if st := m.StageAt(last + int64(DefaultDeepHold)); st != Mid {
		t.Fatal("deep stage did not expire 22ms after last crossing")
	}
}

func TestRetriggerDuringRecovery(t *testing.T) {
	// A new crossing during the mid stage drops straight back to deep
	// (already attenuated, no click risk) and restarts the clock.
	m := New(Config{})
	m.ObserveSpeaker(0, loud())
	reAt := int64(30 * time.Millisecond) // mid stage
	if m.StageAt(reAt) != Mid {
		t.Fatal("test setup: not in mid stage")
	}
	m.ObserveSpeaker(reAt, loud())
	if st := m.StageAt(reAt + blk); st != Deep {
		t.Fatalf("stage %v after retrigger, want Deep", st)
	}
	if m.Crossings() != 1 {
		t.Fatalf("crossings = %d; retrigger during episode is not a new episode", m.Crossings())
	}
}

func TestApplyMicAttenuates(t *testing.T) {
	m := New(Config{})
	m.ObserveSpeaker(0, loud())
	at := int64(10 * time.Millisecond) // deep stage
	mic := loud()
	orig := mulaw.Peak(mic)
	st := m.ApplyMic(at, mic)
	if st != Deep {
		t.Fatalf("applied stage %v", st)
	}
	got := mulaw.Peak(mic)
	want := float64(orig) * DefaultDeepFactor
	if float64(got) < want*0.7 || float64(got) > want*1.3 {
		t.Fatalf("deep-muted peak %d, want ≈%.0f", got, want)
	}
	if m.MutedBlocks() != 1 {
		t.Fatalf("MutedBlocks = %d", m.MutedBlocks())
	}
}

func TestApplyMicAtFullVolumeIsIdentityish(t *testing.T) {
	m := New(Config{})
	mic := loud()
	before := append([]byte(nil), mic...)
	if st := m.ApplyMic(0, mic); st != Full {
		t.Fatalf("stage %v", st)
	}
	for i := range mic {
		if mic[i] != before[i] {
			t.Fatal("full-volume apply modified samples")
		}
	}
}

func TestStepRatiosAvoidClicks(t *testing.T) {
	// "The two-stage muting was chosen because the steps are not so
	// high that audible clicks are heard": every transition in the
	// default schedule changes gain by at most a factor of 2.5.
	seq := []float64{1.0, DefaultMidFactor, DefaultDeepFactor, DefaultMidFactor, 1.0}
	for i := 1; i < len(seq); i++ {
		ratio := seq[i] / seq[i-1]
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > 2.6 {
			t.Fatalf("step %d changes gain by %.1fx", i, ratio)
		}
	}
}

func TestConfigurable(t *testing.T) {
	m := New(Config{
		Threshold:  100,
		DeepFactor: 0.1,
		MidFactor:  0.4,
		DeepHold:   10 * time.Millisecond,
		MidHold:    6 * time.Millisecond,
	})
	m.ObserveSpeaker(0, quiet()) // quiet() peaks near 100... use loud
	m.ObserveSpeaker(0, loud())
	if m.StageAt(blk) != Deep {
		t.Fatal("custom config: no deep stage")
	}
	if m.FactorAt(blk) != 0.1 {
		t.Fatalf("FactorAt = %v", m.FactorAt(blk))
	}
	if m.StageAt(int64(12*time.Millisecond)) != Mid {
		t.Fatal("custom deep hold not honoured")
	}
	if m.StageAt(int64(17*time.Millisecond)) != Full {
		t.Fatal("custom mid hold not honoured")
	}
}

func TestReactionMargin(t *testing.T) {
	// "we have at least 4ms in which to react": a crossing observed
	// at t affects mic blocks applied at t and later; it must not
	// retroactively affect earlier times.
	m := New(Config{})
	m.ObserveSpeaker(int64(10*time.Millisecond), loud())
	if m.StageAt(int64(8*time.Millisecond)) != Full {
		t.Fatal("muting applied before the crossing")
	}
	if m.StageAt(int64(11*time.Millisecond)) == Full {
		t.Fatal("muting not applied after the crossing")
	}
}

func TestStageString(t *testing.T) {
	if Full.String() != "100%" || Mid.String() != "50%" || Deep.String() != "20%" || Stage(9).String() != "?" {
		t.Fatal("Stage.String broken")
	}
}
