// Package muting implements the echo-suppression muting scheme of
// paper §4.3: the data stream to the loudspeaker is monitored for
// samples exceeding a threshold; while the threshold is being
// exceeded, the microphone stream is muted in two stages and returned
// to full volume only after the loudspeaker output has stayed below
// the threshold long enough for room reverberations to die away.
//
// Defaults follow figure 4.1: a deep stage at 20 % lasting 22 ms
// after the last threshold crossing ("the sounds from the speaker
// will have travelled about 22 feet before we return to the 50%
// factor"), then 50 % for a further 22 ms, then 100 %. Stage changes
// happen at 2 ms block granularity ("the smallest unit of data that
// we move around in the audio code"), and the two-stage shape keeps
// each step small enough that no audible click is heard. The factors
// are applied by µ-law lookup tables (mulaw.ScaleTable) as blocks are
// copied between fifos, giving at least 4 ms of reaction margin.
package muting

import (
	"time"

	"repro/internal/mulaw"
)

// Defaults from figure 4.1.
const (
	// DefaultThreshold is the linear speaker level that triggers
	// muting. The paper leaves the value configurable; a quarter of
	// full scale suits normal speech levels.
	DefaultThreshold = 8000
	// DefaultDeepFactor is the first muting stage.
	DefaultDeepFactor = 0.20
	// DefaultMidFactor is the second muting stage.
	DefaultMidFactor = 0.50
	// DefaultDeepHold is how long the deep stage lasts after the last
	// threshold crossing.
	DefaultDeepHold = 22 * time.Millisecond
	// DefaultMidHold is how long the mid stage lasts after that.
	DefaultMidHold = 22 * time.Millisecond
)

// Config parameterises a Muter; "the threshold, muting factors and
// delay times are all dynamically alterable". Zero values select the
// paper's defaults.
type Config struct {
	Threshold  int32
	DeepFactor float64
	MidFactor  float64
	DeepHold   time.Duration
	MidHold    time.Duration
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.DeepFactor <= 0 {
		c.DeepFactor = DefaultDeepFactor
	}
	if c.MidFactor <= 0 {
		c.MidFactor = DefaultMidFactor
	}
	if c.DeepHold <= 0 {
		c.DeepHold = DefaultDeepHold
	}
	if c.MidHold <= 0 {
		c.MidHold = DefaultMidHold
	}
	return c
}

// Stage identifies the current muting level.
type Stage int

const (
	// Full volume: no recent threshold crossing.
	Full Stage = iota
	// Mid is the 50 % stage.
	Mid
	// Deep is the 20 % stage.
	Deep
)

func (s Stage) String() string {
	switch s {
	case Full:
		return "100%"
	case Mid:
		return "50%"
	case Deep:
		return "20%"
	}
	return "?"
}

// Muter is the muting state machine plus its µ-law scale tables. It
// is driven by time values (nanoseconds of stream time); the caller
// observes the loudspeaker stream and applies the muter to the
// microphone stream. Not safe for concurrent use.
type Muter struct {
	cfg Config

	deepTable *mulaw.ScaleTable
	midTable  *mulaw.ScaleTable

	lastExceed    int64 // stream time of last threshold crossing (ns)
	everExceed    bool
	entryMidUntil int64 // entry step: mid stage until this time
	crossings     uint64
	mutedBlocks   uint64
}

// New returns a Muter with the given configuration.
func New(cfg Config) *Muter {
	c := cfg.withDefaults()
	return &Muter{
		cfg:       c,
		deepTable: mulaw.NewScaleTable(c.DeepFactor),
		midTable:  mulaw.NewScaleTable(c.MidFactor),
	}
}

// Config returns the effective configuration.
func (m *Muter) Config() Config { return m.cfg }

// Crossings returns how many threshold crossings have been observed.
func (m *Muter) Crossings() uint64 { return m.crossings }

// MutedBlocks returns how many microphone blocks were attenuated.
func (m *Muter) MutedBlocks() uint64 { return m.mutedBlocks }

// ObserveSpeaker inspects one outgoing loudspeaker block at stream
// time now (in nanoseconds). The threshold detector runs before the
// samples reach the codec input fifo, giving the 4 ms reaction
// margin.
func (m *Muter) ObserveSpeaker(now int64, block []byte) {
	if mulaw.Peak(block) > m.cfg.Threshold {
		if !m.everExceed || m.StageAt(now) == Full {
			// A new mute episode: enter via the mid stage for one
			// block so no single step is too large.
			m.entryMidUntil = now + int64(2*time.Millisecond)
			m.crossings++
		}
		m.lastExceed = now
		m.everExceed = true
	}
}

// StageAt returns the muting stage in force at stream time now.
// On entry to a mute episode the first block passes through the mid
// (50 %) stage so neither step exceeds a factor of about 2.5 — "the
// steps are not so high that audible clicks are heard".
func (m *Muter) StageAt(now int64) Stage {
	if !m.everExceed {
		return Full
	}
	since := now - m.lastExceed
	if since < 0 {
		return Full
	}
	if now < m.entryMidUntil {
		return Mid
	}
	switch {
	case since < int64(m.cfg.DeepHold):
		return Deep
	case since < int64(m.cfg.DeepHold+m.cfg.MidHold):
		return Mid
	default:
		return Full
	}
}

// FactorAt returns the gain factor for stream time now.
func (m *Muter) FactorAt(now int64) float64 {
	switch m.StageAt(now) {
	case Deep:
		return m.cfg.DeepFactor
	case Mid:
		return m.cfg.MidFactor
	}
	return 1.0
}

// ApplyMic attenuates one microphone block in place according to the
// stage in force at stream time now, and returns the stage applied.
func (m *Muter) ApplyMic(now int64, block []byte) Stage {
	st := m.StageAt(now)
	switch st {
	case Deep:
		m.deepTable.Apply(block)
		m.mutedBlocks++
	case Mid:
		m.midTable.Apply(block)
		m.mutedBlocks++
	}
	return st
}
