package occam

// altState is the shared state of one alternation: the first guard to
// fire claims it and wakes the process. Each Proc owns one altState,
// reused across Alt calls — a process runs at most one alternation at
// a time and every registration is removed before Alt returns.
type altState struct {
	p      *Proc
	fired  bool
	chosen int
}

// Guard is one alternative of a PRI ALT. Construct guards with Recv,
// After, Timeout, Skip, When and NewCond.
type Guard interface {
	// poll attempts to fire the guard immediately (mu held).
	poll(p *Proc) bool
	// enable registers the guard to fire later (mu held).
	enable(a *altState, idx int)
	// disable removes the registration after the alt completes
	// (mu held).
	disable()
}

// Alt performs a prioritised alternation (Occam PRI ALT) over the
// guards and returns the index of the one that fired. Guards are
// polled in order, so earlier guards win when several are ready — the
// property Pandora relies on to keep command channels ahead of data
// channels (principle 4). With no ready guard the process blocks until
// one fires.
//
// Guards are reusable: a hot loop may build its guard slice once and
// pass the same slice (and guard values) to every Alt. Conditional
// guards that change per iteration should use NewCond and Set rather
// than reconstructing When wrappers.
func (p *Proc) Alt(guards ...Guard) int {
	if len(guards) == 0 {
		panic("occam: Alt with no guards")
	}
	rt := p.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, g := range guards {
		if g.poll(p) {
			return i
		}
	}
	a := &p.alt
	a.p, a.fired, a.chosen = p, false, -1
	for i, g := range guards {
		g.enable(a, i)
	}
	p.stN = len(guards)
	rt.park(p, stAlt, "")
	for _, g := range guards {
		g.disable()
	}
	if a.chosen < 0 {
		panic("occam: alt woke without a fired guard")
	}
	return a.chosen
}

// recvGuard fires when ch has a sender; the value lands in *dst.
type recvGuard[T any] struct {
	ch  *Chan[T]
	dst *T
	a   *altState
}

// Recv returns a guard that fires when a value can be received from
// ch, storing it in *dst.
func Recv[T any](ch *Chan[T], dst *T) Guard {
	return &recvGuard[T]{ch: ch, dst: dst}
}

func (g *recvGuard[T]) poll(p *Proc) bool {
	c := g.ch
	if len(c.sendq) == 0 {
		return false
	}
	w := c.popSend()
	*g.dst = w.v
	c.rt.ready(w.p)
	c.putSend(w)
	return true
}

func (g *recvGuard[T]) enable(a *altState, idx int) {
	g.a = a
	g.ch.alts = append(g.ch.alts, g.ch.getReg(a, idx, g.dst))
}

func (g *recvGuard[T]) disable() {
	if g.a != nil {
		g.ch.removeAlt(g.a)
		g.a = nil
	}
}

// timeGuard fires at an absolute virtual time (Occam "tim ? AFTER t").
type timeGuard struct {
	at Time
	ev *timerEv
}

// After returns a guard that fires once the virtual clock reaches t.
func After(at Time) Guard { return &timeGuard{at: at} }

func (g *timeGuard) poll(p *Proc) bool { return p.rt.now >= g.at }

func (g *timeGuard) enable(a *altState, idx int) {
	rt := a.p.rt
	g.ev = rt.addTimer(g.at, nil, func() {
		if !a.fired {
			a.fired = true
			a.chosen = idx
			rt.ready(a.p)
		}
	})
	// The guard keeps the event pointer past the fire, so the
	// runtime must not recycle it.
	g.ev.pinned = true
}

func (g *timeGuard) disable() {
	if g.ev != nil {
		g.ev.cancelled = true
		g.ev = nil
	}
}

// timeoutGuard fires a duration after the Alt begins.
type timeoutGuard struct {
	d  Time
	ev *timerEv
}

// Timeout returns a guard that fires d after the alternation starts
// waiting.
func Timeout(d Time) Guard { return &timeoutGuard{d: d} }

func (g *timeoutGuard) poll(p *Proc) bool { return g.d <= 0 }

func (g *timeoutGuard) enable(a *altState, idx int) {
	rt := a.p.rt
	g.ev = rt.addTimer(rt.now+g.d, nil, func() {
		if !a.fired {
			a.fired = true
			a.chosen = idx
			rt.ready(a.p)
		}
	})
	g.ev.pinned = true
}

func (g *timeoutGuard) disable() {
	if g.ev != nil {
		g.ev.cancelled = true
		g.ev = nil
	}
}

// skipGuard always fires (Occam SKIP): as the last guard it makes the
// alternation non-blocking.
type skipGuard struct{}

// Skip returns a guard that is always ready. Place it last to poll the
// other guards without blocking.
func Skip() Guard { return skipGuard{} }

func (skipGuard) poll(*Proc) bool { return true }
func (skipGuard) enable(a *altState, i int) {
	// A reachable enabled SKIP fires at once; Alt polls guards first,
	// so enable is only reached if an earlier guard also fired — which
	// cannot happen. Guard against misuse anyway.
	panic("occam: Skip guard enabled; place Skip last")
}
func (skipGuard) disable() {}

// whenGuard conditions another guard (Occam boolean guard).
type whenGuard struct {
	cond bool
	g    Guard
}

// When returns g if cond is true, otherwise an inert guard that never
// fires (the Occam "cond & guard" form). The condition is fixed at
// construction; loops whose condition changes per iteration should
// hoist a NewCond guard instead.
func When(cond bool, g Guard) Guard { return &whenGuard{cond: cond, g: g} }

func (w *whenGuard) poll(p *Proc) bool {
	return w.cond && w.g.poll(p)
}

func (w *whenGuard) enable(a *altState, idx int) {
	if w.cond {
		w.g.enable(a, idx)
	}
}

func (w *whenGuard) disable() {
	if w.cond {
		w.g.disable()
	}
}

// Cond is a conditional guard whose condition can be updated between
// Alt calls — the reusable form of When for hot loops that hoist their
// guard slice out of the loop and flip conditions each iteration.
type Cond struct {
	cond bool
	g    Guard
}

// NewCond returns a conditional wrapper around g, initially false.
func NewCond(g Guard) *Cond { return &Cond{g: g} }

// Set updates the condition checked by the next Alt.
func (c *Cond) Set(cond bool) { c.cond = cond }

func (c *Cond) poll(p *Proc) bool {
	return c.cond && c.g.poll(p)
}

func (c *Cond) enable(a *altState, idx int) {
	if c.cond {
		c.g.enable(a, idx)
	}
}

func (c *Cond) disable() {
	if c.cond {
		c.g.disable()
	}
}
