package occam

import "container/heap"

// Scheduler-context primitives: the machinery that lets a subsystem be
// *passive* — driven by timer callbacks and woken processes instead of
// by dedicated processes of its own. A message pipeline built from
// processes pays one park/wake cycle per rendezvous; built from a
// Timer chain it pays one heap operation per paced step and nothing at
// all for the zero-time bookkeeping in between. The fabric's crossbar
// and the ATM link transmitters use these to keep their virtual-time
// behaviour while shedding almost all of their scheduling cost.
//
// Two execution contexts exist and must not be confused:
//
//   - process context: ordinary user code, running without the
//     scheduler lock. It may call every blocking primitive, and arms
//     Timers with Timer.Schedule and raises Signals with Signal.Raise.
//   - scheduler context: a Timer callback, running *inside* the
//     scheduler with the runtime lock held. It must not block and must
//     not call anything that re-enters the runtime (Proc methods,
//     channel operations, Runtime.Now). It receives a Sched capability
//     and goes through that for everything: Sched.Now, Sched.Schedule,
//     Sched.Raise.
//
// Both contexts are serialised with all process code by the runtime
// lock, so callback code may touch the same plain data structures
// processes touch, with no extra locking.

// Sched is the capability handle passed to Timer callbacks. It proves
// the caller is in scheduler context (runtime lock held) and exposes
// the only operations legal there.
type Sched struct{ rt *Runtime }

// Now returns the current virtual time.
func (s Sched) Now() Time { return s.rt.now }

// Schedule arms tm to fire at time t (clamped to now). Panics if tm is
// already armed.
func (s Sched) Schedule(tm *Timer, t Time) { tm.scheduleLocked(t) }

// Raise raises sig from scheduler context.
func (s Sched) Raise(sig *Signal) { sig.raiseLocked() }

// Timer is a reusable scheduler-context callback: when armed, its
// function runs at the scheduled virtual instant, interleaved with
// process wake-ups in (time, arming-order) sequence. A Timer owns its
// heap event, so re-arming allocates nothing. One Timer is one pending
// event: it must not be armed again until it has fired (the callback
// itself may re-arm, which is how paced chains self-perpetuate).
type Timer struct {
	rt     *Runtime
	ev     timerEv
	active bool
}

// NewTimer returns an unarmed timer whose callback is fn. fn runs in
// scheduler context — see the package rules above.
func NewTimer(rt *Runtime, fn func(s Sched)) *Timer {
	tm := &Timer{rt: rt}
	tm.ev.pinned = true // owned here; never recycled onto the free list
	tm.ev.fn = func() {
		tm.active = false
		fn(Sched{rt})
	}
	return tm
}

// Schedule arms the timer to fire at time t (clamped to now). Call
// from process context; callbacks use Sched.Schedule. Panics if the
// timer is already armed.
func (tm *Timer) Schedule(t Time) {
	rt := tm.rt
	rt.mu.Lock()
	tm.scheduleLocked(t)
	rt.mu.Unlock()
}

// Active reports whether the timer is armed. Call from process
// context, or on scheduler-context state the caller already owns.
func (tm *Timer) Active() bool { return tm.active }

func (tm *Timer) scheduleLocked(t Time) {
	rt := tm.rt
	if tm.active {
		panic("occam: Timer scheduled while already armed")
	}
	if t < rt.now {
		t = rt.now
	}
	rt.seq++
	tm.ev.at, tm.ev.seq = t, rt.seq
	tm.ev.cancelled = false
	tm.active = true
	heap.Push(&rt.timers, &tm.ev)
}

// Signal is a single-waiter level-triggered wakeup: the bridge from
// scheduler context back to a blocked process. Raise while a process
// waits makes it runnable; Raise with no waiter is remembered, so the
// next Wait returns immediately (raises do not accumulate past one).
// Exactly one process may wait at a time.
type Signal struct {
	rt   *Runtime
	nm   string
	p    *Proc
	set  bool
}

// NewSignal returns a signal. The name shows up in deadlock dumps as
// what the waiting process is blocked on.
func NewSignal(rt *Runtime, name string) *Signal {
	return &Signal{rt: rt, nm: name}
}

// Wait blocks the process until the signal is raised, consuming the
// raise. Returns immediately if a raise is already pending.
func (s *Signal) Wait(p *Proc) {
	rt := s.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s.set {
		s.set = false
		return
	}
	if s.p != nil {
		panic("occam: Signal already has a waiter: " + s.nm)
	}
	s.p = p
	rt.park(p, stRecv, s.nm)
}

// Raise wakes the waiting process, or latches if none is waiting. Call
// from process context; callbacks use Sched.Raise.
func (s *Signal) Raise() {
	s.rt.mu.Lock()
	s.raiseLocked()
	s.rt.mu.Unlock()
}

func (s *Signal) raiseLocked() {
	if p := s.p; p != nil {
		s.p = nil
		s.rt.ready(p)
		return
	}
	s.set = true
}
