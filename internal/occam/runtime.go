package occam

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Priority is a process priority level. The transputer hardware
// scheduler had exactly two: high-priority processes run whenever
// runnable, ahead of any low-priority process.
type Priority int

const (
	// Low is the default priority.
	Low Priority = iota
	// High priority processes are always scheduled before Low ones.
	High
)

func (p Priority) String() string {
	if p == High {
		return "high"
	}
	return "low"
}

// errKilled unwinds process goroutines during Runtime.Shutdown.
var errKilled = errors.New("occam: runtime shut down")

// ErrDeadlock is returned (wrapped in a DeadlockError) by Run when no
// process is runnable and no timer is pending but processes remain.
var ErrDeadlock = errors.New("occam: deadlock")

// DeadlockError reports the blocked processes when a simulation can
// make no further progress.
type DeadlockError struct {
	Now   Time
	Procs []string // "name [pri] state"
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("occam: deadlock at %v with %d blocked processes:\n  %s",
		e.Now, len(e.Procs), strings.Join(e.Procs, "\n  "))
}

func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// statusKind classifies what a process is blocked on. The textual
// status shown in deadlock dumps is composed lazily from these fields
// (statusText); building the string eagerly on every park was a top
// allocation source on the data path.
type statusKind uint8

const (
	stRunning statusKind = iota
	stRunnable
	stYield
	stSend
	stRecv
	stSleep
	stAlt
	stCPU
)

// Proc is an Occam process: a goroutine scheduled by the virtual-time
// Runtime. All blocking primitives take the Proc as receiver and may
// only be called from the process's own goroutine while it is the
// currently scheduled process.
type Proc struct {
	rt   *Runtime
	node *Node
	name string
	pri  Priority
	wake chan struct{}
	seq  uint64

	// Blocked-state diagnostics (see statusText).
	stKind statusKind
	stName string        // channel or node name (send/recv/cpu)
	stTime Time          // sleep deadline
	stDur  time.Duration // cpu grant duration
	stN    int           // alt guard count

	// alt is the per-process alternation state, reused across Alt
	// calls: a process runs at most one alternation at a time and
	// every registration is removed before Alt returns.
	alt altState
}

// statusText composes the diagnostic description of what the process
// is blocked on, for deadlock dumps and scheduler traces.
func (p *Proc) statusText() string {
	switch p.stKind {
	case stRunning:
		return "running"
	case stRunnable:
		return "runnable"
	case stYield:
		return "yield"
	case stSend:
		return "send " + p.stName
	case stRecv:
		return "recv " + p.stName
	case stSleep:
		return fmt.Sprintf("sleep until %v", p.stTime)
	case stAlt:
		return fmt.Sprintf("alt over %d guards", p.stN)
	case stCPU:
		return fmt.Sprintf("cpu %s for %v", p.stName, p.stDur)
	}
	return "?"
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Node returns the transputer this process runs on (nil if none).
func (p *Proc) Node() *Node { return p.node }

// Priority returns the process priority.
func (p *Proc) Priority() Priority { return p.pri }

// Runtime returns the runtime the process belongs to.
func (p *Proc) Runtime() *Runtime { return p.rt }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.rt.Now() }

// timerEv is a pending timer: it wakes a process, completes a CPU
// grant, or runs fn in scheduler context (fn must only touch
// runtime-internal state). Events not referenced from outside the heap
// (pinned == false) are recycled on a free list after firing.
type timerEv struct {
	at        Time
	seq       uint64
	p         *Proc
	fn        func()
	grant     *Node // non-nil: a CPU grant for p completes on this node
	pinned    bool  // an Alt guard holds a pointer; never recycle
	cancelled bool
	index     int
}

type timerHeap []*timerEv

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	ev := x.(*timerEv)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Runtime is a deterministic virtual-time scheduler for Occam
// processes. Exactly one process executes user code at a time; when
// every process is blocked the clock jumps to the next timer event.
// Create with NewRuntime, start processes with Go, then drive the
// simulation with Run or RunUntil.
type Runtime struct {
	mu       sync.Mutex
	now      Time
	seq      uint64
	runqHigh []*Proc
	runqLow  []*Proc
	timers   timerHeap
	evFree   []*timerEv // recycled timer events
	limit    Time
	procs    map[*Proc]struct{}
	killed   bool
	rootCh   chan struct{}
	rootWait bool
	running  bool // inside Run
	wg       sync.WaitGroup

	// Trace, if non-nil, receives a line for every scheduling event.
	// For debugging; nil in normal use.
	Trace func(string)

	switches uint64 // context switches performed (experiment E17)
}

// NewRuntime returns an empty runtime at time zero.
func NewRuntime() *Runtime {
	return &Runtime{
		procs:  make(map[*Proc]struct{}),
		rootCh: make(chan struct{}, 1),
		limit:  Forever,
	}
}

// Now returns the current virtual time.
func (rt *Runtime) Now() Time {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.now
}

// Switches returns the number of context switches performed so far.
func (rt *Runtime) Switches() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.switches
}

// NumProcs returns the number of live (started, not yet exited)
// processes.
func (rt *Runtime) NumProcs() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.procs)
}

// Go starts a new process named name at priority pri on node (which
// may be nil for a process with no CPU accounting). The process body
// fn runs when the runtime next schedules it. Go may be called before
// Run or from inside another process.
func (rt *Runtime) Go(name string, node *Node, pri Priority, fn func(p *Proc)) *Proc {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.killed {
		panic("occam: Go after Shutdown")
	}
	rt.seq++
	p := &Proc{
		rt:   rt,
		node: node,
		name: name,
		pri:  pri,
		wake: make(chan struct{}, 1),
		seq:  rt.seq,
	}
	rt.procs[p] = struct{}{}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if r == errKilled {
					// Clean shutdown unwind: deregister the process.
					rt.mu.Lock()
					delete(rt.procs, p)
					rt.mu.Unlock()
					return
				}
				panic(fmt.Sprintf("occam: process %q panicked: %v", p.name, r))
			}
		}()
		<-p.wake // wait to be scheduled for the first time
		rt.mu.Lock()
		if rt.killed {
			rt.mu.Unlock()
			panic(errKilled)
		}
		rt.mu.Unlock()
		fn(p)
		rt.exit(p)
	}()
	rt.ready(p)
	return p
}

// exit removes a finished process and hands the CPU to the scheduler.
func (rt *Runtime) exit(p *Proc) {
	rt.mu.Lock()
	delete(rt.procs, p)
	if rt.Trace != nil {
		rt.trace("exit %s", p.name)
	}
	rt.schedule()
	rt.mu.Unlock()
}

// ready appends p to the run queue for its priority. Caller holds mu.
func (rt *Runtime) ready(p *Proc) {
	p.stKind = stRunnable
	if p.pri == High {
		rt.runqHigh = append(rt.runqHigh, p)
	} else {
		rt.runqLow = append(rt.runqLow, p)
	}
}

// popRunnable removes and returns the next process to run, or nil.
// Caller holds mu.
func (rt *Runtime) popRunnable() *Proc {
	if len(rt.runqHigh) > 0 {
		p := rt.runqHigh[0]
		copy(rt.runqHigh, rt.runqHigh[1:])
		rt.runqHigh = rt.runqHigh[:len(rt.runqHigh)-1]
		return p
	}
	if len(rt.runqLow) > 0 {
		p := rt.runqLow[0]
		copy(rt.runqLow, rt.runqLow[1:])
		rt.runqLow = rt.runqLow[:len(rt.runqLow)-1]
		return p
	}
	return nil
}

// schedule hands the CPU to the next runnable process, advancing the
// clock through timer events as needed. If nothing can run before the
// limit it wakes the root (Run). Caller holds mu and is giving up the
// CPU (it is blocked, exiting, or is the root).
func (rt *Runtime) schedule() {
	for {
		if p := rt.popRunnable(); p != nil {
			rt.switches++
			p.stKind = stRunning
			if rt.Trace != nil {
				rt.trace("run %s", p.name)
			}
			p.wake <- struct{}{}
			return
		}
		if !rt.advanceClock() {
			return
		}
	}
}

// advanceClock is schedule's nothing-runnable step: it discards
// cancelled timers, advances the clock to the next event and fires
// everything due at that instant. It returns false when there is
// nothing left to run before the limit (the root has been woken) and
// true when timers fired, so the caller should re-check the run queue.
// Caller holds mu.
func (rt *Runtime) advanceClock() bool {
	for rt.timers.Len() > 0 && rt.timers[0].cancelled {
		rt.freeTimerEv(heap.Pop(&rt.timers).(*timerEv))
	}
	if rt.timers.Len() == 0 {
		// Quiescent with no future event: completion, or the end
		// of a bounded run, or deadlock.
		if rt.limit != Forever && rt.limit > rt.now {
			rt.now = rt.limit
		}
		rt.wakeRoot()
		return false
	}
	next := rt.timers[0]
	if next.at > rt.limit {
		rt.now = rt.limit
		rt.wakeRoot()
		return false
	}
	if next.at > rt.now {
		rt.now = next.at
	}
	// Fire every timer due at this instant, in insertion order.
	for rt.timers.Len() > 0 && rt.timers[0].at <= rt.now {
		ev := heap.Pop(&rt.timers).(*timerEv)
		if ev.cancelled {
			rt.freeTimerEv(ev)
			continue
		}
		switch {
		case ev.grant != nil:
			n := ev.grant
			n.busy = false
			rt.ready(ev.p)
			n.grantNext()
		case ev.fn != nil:
			ev.fn()
		case ev.p != nil:
			if rt.Trace != nil {
				rt.trace("timer wakes %s", ev.p.name)
			}
			rt.ready(ev.p)
		}
		rt.freeTimerEv(ev)
	}
	return true
}

func (rt *Runtime) wakeRoot() {
	if rt.rootWait {
		rt.rootWait = false
		rt.rootCh <- struct{}{}
	}
}

func (rt *Runtime) trace(format string, args ...any) {
	if rt.Trace != nil {
		rt.Trace(fmt.Sprintf("[%v] ", rt.now) + fmt.Sprintf(format, args...))
	}
}

// addTimer inserts a timer event. Caller holds mu.
func (rt *Runtime) addTimer(at Time, p *Proc, fn func()) *timerEv {
	if at < rt.now {
		at = rt.now
	}
	rt.seq++
	var ev *timerEv
	if n := len(rt.evFree); n > 0 {
		ev = rt.evFree[n-1]
		rt.evFree = rt.evFree[:n-1]
		*ev = timerEv{at: at, seq: rt.seq, p: p, fn: fn}
	} else {
		ev = &timerEv{at: at, seq: rt.seq, p: p, fn: fn}
	}
	heap.Push(&rt.timers, ev)
	return ev
}

// freeTimerEv recycles a popped event unless an Alt guard may still
// hold a pointer to it (pinned). Caller holds mu.
func (rt *Runtime) freeTimerEv(ev *timerEv) {
	if ev.pinned {
		return
	}
	ev.p, ev.fn, ev.grant = nil, nil, nil
	rt.evFree = append(rt.evFree, ev)
}

// park blocks the calling process until another process or a timer
// makes it ready again. Caller holds mu; park returns with mu held.
// On Shutdown, park panics with errKilled while still holding mu, so
// every caller must release mu with defer.
// kind and name describe what the process is waiting for
// (diagnostics); callers set the auxiliary stTime/stDur/stN fields
// for the kinds that use them before calling.
func (rt *Runtime) park(p *Proc, kind statusKind, name string) {
	p.stKind, p.stName = kind, name
	if rt.Trace != nil {
		rt.trace("park %s: %s", p.name, p.statusText())
	}
	// Inline schedule() with a self-handoff fast path: when the next
	// process to run is the one parking (its own timer fired during the
	// clock advance, or it was readied before parking), skip the wake
	// channel round-trip entirely — the paced-loop case (sleep, wake,
	// sleep...) costs two heap operations and no channel traffic.
	for {
		next := rt.popRunnable()
		if next == nil {
			if rt.advanceClock() {
				continue
			}
			break // nothing to run before the limit; root woken
		}
		rt.switches++
		next.stKind = stRunning
		if rt.Trace != nil {
			rt.trace("run %s", next.name)
		}
		if next == p {
			if rt.killed {
				panic(errKilled)
			}
			return
		}
		next.wake <- struct{}{}
		break
	}
	rt.mu.Unlock()
	<-p.wake
	rt.mu.Lock()
	if rt.killed {
		panic(errKilled)
	}
	p.stKind = stRunning
}

// Run drives the simulation until every process has exited or the
// system deadlocks. Equivalent to RunUntil(Forever).
func (rt *Runtime) Run() error { return rt.RunUntil(Forever) }

// RunFor drives the simulation for d of virtual time past the current
// instant.
func (rt *Runtime) RunFor(d time.Duration) error {
	return rt.RunUntil(rt.Now().Add(d))
}

// RunUntil drives the simulation until virtual time t. It returns when
// the system is quiescent with no event before t (clock set to t),
// when every process has exited (nil), or on deadlock (a
// *DeadlockError). It may be called repeatedly with increasing t.
func (rt *Runtime) RunUntil(t Time) error {
	rt.mu.Lock()
	if rt.running {
		rt.mu.Unlock()
		panic("occam: RunUntil re-entered")
	}
	if rt.killed {
		rt.mu.Unlock()
		return errors.New("occam: runtime has been shut down")
	}
	rt.running = true
	rt.limit = t
	rt.rootWait = true
	rt.schedule()
	rt.mu.Unlock()
	<-rt.rootCh
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.running = false
	rt.limit = Forever
	// A deadlock is only an error for an unbounded run: a bounded run
	// that goes quiescent early (server processes parked waiting for
	// input that will arrive in a later RunUntil) is a normal outcome.
	if t == Forever && len(rt.procs) > 0 && rt.timers.Len() == 0 &&
		len(rt.runqHigh) == 0 && len(rt.runqLow) == 0 {
		return &DeadlockError{Now: rt.now, Procs: rt.procDump()}
	}
	return nil
}

// procDump returns one diagnostic line per live process, sorted for
// stable output. Caller holds mu.
func (rt *Runtime) procDump() []string {
	lines := make([]string, 0, len(rt.procs))
	for p := range rt.procs {
		lines = append(lines, fmt.Sprintf("%s [%v] %s", p.name, p.pri, p.statusText()))
	}
	sort.Strings(lines)
	return lines
}

// Done reports whether every process has exited.
func (rt *Runtime) Done() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.procs) == 0
}

// Shutdown terminates all processes (unwinding their goroutines) and
// waits for them to exit. The runtime cannot be used afterwards. It is
// safe to call from the root goroutine after Run returns.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	if rt.killed {
		rt.mu.Unlock()
		return
	}
	rt.killed = true
	for p := range rt.procs {
		select {
		case p.wake <- struct{}{}:
		default: // already has a pending wake
		}
	}
	rt.mu.Unlock()
	rt.wg.Wait()
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	p.SleepUntil(p.rt.clock().Add(d))
}

// SleepUntil blocks the process until virtual time t (the Occam
// "timer ? AFTER t"). Returns immediately if t is in the past.
func (p *Proc) SleepUntil(t Time) {
	rt := p.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if t <= rt.now {
		return
	}
	rt.addTimer(t, p, nil)
	p.stTime = t
	rt.park(p, stSleep, "")
}

// Yield gives up the CPU, letting every other runnable process of the
// same or higher priority run before this one continues.
func (p *Proc) Yield() {
	rt := p.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.ready(p)
	rt.park(p, stYield, "")
}

// clock returns rt.now without external locking races (helper for
// call sites that immediately pass the value back under mu).
func (rt *Runtime) clock() Time {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.now
}
