package occam

import (
	"testing"
	"time"
)

func TestLinkTransferTime(t *testing.T) {
	rt := NewRuntime()
	l := NewLink[int](rt, "l", 20_000_000) // 20 Mbit/s, the Pandora server link
	// 1000 bytes = 8000 bits at 20 Mbit/s = 400 µs.
	if got := l.TransferTime(1000); got != 400*time.Microsecond {
		t.Fatalf("TransferTime(1000) = %v, want 400µs", got)
	}
}

func TestLinkDelaysDelivery(t *testing.T) {
	rt := NewRuntime()
	l := NewLink[int](rt, "l", 20_000_000)
	var arrived Time
	rt.Go("tx", nil, Low, func(p *Proc) { l.Send(p, 1, 1000) })
	rt.Go("rx", nil, Low, func(p *Proc) {
		l.Recv(p)
		arrived = p.Now()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != Time(400*time.Microsecond) {
		t.Fatalf("arrived at %v, want 400µs", arrived)
	}
	if l.BytesSent() != 1000 {
		t.Fatalf("BytesSent = %d", l.BytesSent())
	}
}

func TestLinkSerialisesTransfers(t *testing.T) {
	// A large (video) message must delay a following small (audio)
	// message — the §4.2 head-of-line effect.
	rt := NewRuntime()
	l := NewLink[string](rt, "l", 20_000_000)
	var audioArrive Time
	rt.Go("video", nil, Low, func(p *Proc) { l.Send(p, "video", 50_000) }) // 20ms
	rt.Go("audio", nil, Low, func(p *Proc) {
		p.Sleep(time.Microsecond) // definitely queued behind the video
		l.Send(p, "audio", 100)   // 40µs alone
	})
	rt.Go("rx", nil, Low, func(p *Proc) {
		for i := 0; i < 2; i++ {
			if l.Recv(p) == "audio" {
				audioArrive = p.Now()
			}
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	wantMin := Time(20 * time.Millisecond)
	if audioArrive < wantMin {
		t.Fatalf("audio arrived at %v, want after the 20ms video transfer", audioArrive)
	}
}

func TestLinkAltGuard(t *testing.T) {
	rt := NewRuntime()
	l := NewLink[int](rt, "l", 20_000_000)
	other := NewChan[int](rt, "other")
	var idx, got int
	rt.Go("tx", nil, Low, func(p *Proc) { l.Send(p, 33, 10) })
	rt.Go("rx", nil, Low, func(p *Proc) {
		var v, w int
		idx = p.Alt(Recv(other, &w), l.In(&v))
		got = v
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 || got != 33 {
		t.Fatalf("idx=%d got=%d", idx, got)
	}
}

func TestLinkZeroSizeIsImmediate(t *testing.T) {
	rt := NewRuntime()
	l := NewLink[int](rt, "l", 20_000_000)
	rt.Go("tx", nil, Low, func(p *Proc) { l.Send(p, 1, 0) })
	rt.Go("rx", nil, Low, func(p *Proc) {
		l.Recv(p)
		if p.Now() != 0 {
			t.Errorf("zero-size transfer took %v", p.Now())
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkBusy(t *testing.T) {
	rt := NewRuntime()
	l := NewLink[int](rt, "l", 1_000_000) // slow: 1 Mbit/s
	rt.Go("tx", nil, Low, func(p *Proc) { l.Send(p, 1, 1000) })
	rt.Go("probe", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		if !l.Busy() {
			t.Error("link not busy mid-transfer")
		}
	})
	rt.Go("rx", nil, Low, func(p *Proc) { l.Recv(p) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}
