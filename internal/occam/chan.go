package occam

import "fmt"

// Chan is an Occam rendezvous channel carrying values of type T.
// Send blocks until a receiver takes the value; Recv blocks until a
// sender offers one. Channels are unbuffered: communication is the
// synchronisation, exactly as on the transputer.
//
// Unlike Occam, any number of processes may wait to send or receive on
// the same channel; waiters are served in FIFO order. This is used by
// Pandora-style fan-in (many producers into a switch input).
type Chan[T any] struct {
	rt    *Runtime
	name  string
	sendq []*sendWaiter[T]
	recvq []*recvWaiter[T]
	alts  []*altReg[T]
}

type sendWaiter[T any] struct {
	p *Proc
	v T
}

type recvWaiter[T any] struct {
	p *Proc
	v T
}

type altReg[T any] struct {
	a   *altState
	idx int
	dst *T
}

// NewChan returns a new rendezvous channel on rt with a diagnostic
// name.
func NewChan[T any](rt *Runtime, name string) *Chan[T] {
	return &Chan[T]{rt: rt, name: name}
}

// Name returns the channel's diagnostic name.
func (c *Chan[T]) Name() string { return c.name }

// Send offers v on the channel, blocking until a receiver (direct or
// via Alt) takes it.
func (c *Chan[T]) Send(p *Proc, v T) {
	rt := c.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// A receiver already waiting?
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		copy(c.recvq, c.recvq[1:])
		c.recvq = c.recvq[:len(c.recvq)-1]
		w.v = v
		rt.ready(w.p)
		return
	}
	// An alternation waiting on this channel?
	if reg := c.takeAlt(); reg != nil {
		*reg.dst = v
		reg.a.chosen = reg.idx
		rt.ready(reg.a.p)
		return
	}
	w := &sendWaiter[T]{p: p, v: v}
	c.sendq = append(c.sendq, w)
	rt.park(p, fmt.Sprintf("send %s", c.name))
}

// takeAlt removes and returns the first live (unfired) alternation
// registration, marking it fired. Caller holds mu.
func (c *Chan[T]) takeAlt() *altReg[T] {
	for len(c.alts) > 0 {
		reg := c.alts[0]
		copy(c.alts, c.alts[1:])
		c.alts = c.alts[:len(c.alts)-1]
		if !reg.a.fired {
			reg.a.fired = true
			return reg
		}
	}
	return nil
}

// Recv receives a value from the channel, blocking until a sender
// offers one.
func (c *Chan[T]) Recv(p *Proc) T {
	rt := c.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(c.sendq) > 0 {
		w := c.sendq[0]
		copy(c.sendq, c.sendq[1:])
		c.sendq = c.sendq[:len(c.sendq)-1]
		rt.ready(w.p)
		return w.v
	}
	w := &recvWaiter[T]{p: p}
	c.recvq = append(c.recvq, w)
	rt.park(p, fmt.Sprintf("recv %s", c.name))
	return w.v
}

// TrySend offers v without blocking; it reports whether a waiting
// receiver took the value. (Not an Occam primitive, but the natural
// dual of a SKIP-guarded alternation; used where the paper's processes
// "do not send a segment if the next process down the line is not
// ready", §2.2 principle 5.)
func (c *Chan[T]) TrySend(p *Proc, v T) bool {
	rt := c.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		copy(c.recvq, c.recvq[1:])
		c.recvq = c.recvq[:len(c.recvq)-1]
		w.v = v
		rt.ready(w.p)
		return true
	}
	if reg := c.takeAlt(); reg != nil {
		*reg.dst = v
		reg.a.chosen = reg.idx
		rt.ready(reg.a.p)
		return true
	}
	return false
}

// pending reports whether a sender is waiting. Caller holds mu.
func (c *Chan[T]) pending() bool { return len(c.sendq) > 0 }

// removeAlt deletes every registration belonging to a. Caller holds mu.
func (c *Chan[T]) removeAlt(a *altState) {
	out := c.alts[:0]
	for _, reg := range c.alts {
		if reg.a != a {
			out = append(out, reg)
		}
	}
	for i := len(out); i < len(c.alts); i++ {
		c.alts[i] = nil
	}
	c.alts = out
}
