package occam

// Chan is an Occam rendezvous channel carrying values of type T.
// Send blocks until a receiver takes the value; Recv blocks until a
// sender offers one. Channels are unbuffered: communication is the
// synchronisation, exactly as on the transputer.
//
// Unlike Occam, any number of processes may wait to send or receive on
// the same channel; waiters are served in FIFO order. This is used by
// Pandora-style fan-in (many producers into a switch input).
//
// Waiter and alternation-registration records are recycled on
// per-channel free lists: the runtime serialises all user code under
// one lock, so the lists need no further synchronisation, and a data
// channel at steady state allocates nothing per transfer.
type Chan[T any] struct {
	rt    *Runtime
	name  string
	sendq []*sendWaiter[T]
	recvq []*recvWaiter[T]
	alts  []*altReg[T]

	sendFree []*sendWaiter[T]
	recvFree []*recvWaiter[T]
	regFree  []*altReg[T]
}

type sendWaiter[T any] struct {
	p *Proc
	v T
}

type recvWaiter[T any] struct {
	p *Proc
	v T
}

type altReg[T any] struct {
	a   *altState
	idx int
	dst *T
}

// NewChan returns a new rendezvous channel on rt with a diagnostic
// name.
func NewChan[T any](rt *Runtime, name string) *Chan[T] {
	return &Chan[T]{rt: rt, name: name}
}

// Name returns the channel's diagnostic name.
func (c *Chan[T]) Name() string { return c.name }

// getSend / putSend recycle send waiters. Callers hold mu. A waiter is
// freed by whoever pops it from sendq (the popper reads v before the
// sender resumes, and the sender never touches the record again).
func (c *Chan[T]) getSend(p *Proc, v T) *sendWaiter[T] {
	if n := len(c.sendFree); n > 0 {
		w := c.sendFree[n-1]
		c.sendFree = c.sendFree[:n-1]
		w.p, w.v = p, v
		return w
	}
	return &sendWaiter[T]{p: p, v: v}
}

func (c *Chan[T]) putSend(w *sendWaiter[T]) {
	var zero T
	w.p, w.v = nil, zero
	c.sendFree = append(c.sendFree, w)
}

// getRecv / putRecv recycle receive waiters. A receive waiter is freed
// by the receiver itself after it wakes and reads v (the sender wrote
// v before making the receiver ready).
func (c *Chan[T]) getRecv(p *Proc) *recvWaiter[T] {
	if n := len(c.recvFree); n > 0 {
		w := c.recvFree[n-1]
		c.recvFree = c.recvFree[:n-1]
		w.p = p
		return w
	}
	return &recvWaiter[T]{p: p}
}

func (c *Chan[T]) putRecv(w *recvWaiter[T]) {
	var zero T
	w.p, w.v = nil, zero
	c.recvFree = append(c.recvFree, w)
}

// getReg / putReg recycle alternation registrations. A registration is
// freed either when a sender pops it (takeAlt) or when the owning Alt
// disables its guards (removeAlt); the two are mutually exclusive for
// any one record because takeAlt removes it from alts.
func (c *Chan[T]) getReg(a *altState, idx int, dst *T) *altReg[T] {
	if n := len(c.regFree); n > 0 {
		r := c.regFree[n-1]
		c.regFree = c.regFree[:n-1]
		r.a, r.idx, r.dst = a, idx, dst
		return r
	}
	return &altReg[T]{a: a, idx: idx, dst: dst}
}

func (c *Chan[T]) putReg(r *altReg[T]) {
	r.a, r.dst = nil, nil
	c.regFree = append(c.regFree, r)
}

// popSend removes and returns the first queued sender. Caller holds mu
// and owns the returned waiter (must putSend it after reading v).
func (c *Chan[T]) popSend() *sendWaiter[T] {
	w := c.sendq[0]
	copy(c.sendq, c.sendq[1:])
	c.sendq[len(c.sendq)-1] = nil
	c.sendq = c.sendq[:len(c.sendq)-1]
	return w
}

// Send offers v on the channel, blocking until a receiver (direct or
// via Alt) takes it.
func (c *Chan[T]) Send(p *Proc, v T) {
	rt := c.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// A receiver already waiting?
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		copy(c.recvq, c.recvq[1:])
		c.recvq[len(c.recvq)-1] = nil
		c.recvq = c.recvq[:len(c.recvq)-1]
		w.v = v
		rt.ready(w.p)
		return
	}
	// An alternation waiting on this channel?
	if a, idx, dst := c.takeAlt(); a != nil {
		*dst = v
		a.chosen = idx
		rt.ready(a.p)
		return
	}
	c.sendq = append(c.sendq, c.getSend(p, v))
	rt.park(p, stSend, c.name)
}

// takeAlt removes the first live (unfired) alternation registration,
// marking it fired, and returns its state, guard index and destination.
// Dead registrations encountered on the way are recycled. Caller holds
// mu.
func (c *Chan[T]) takeAlt() (a *altState, idx int, dst *T) {
	for len(c.alts) > 0 {
		reg := c.alts[0]
		copy(c.alts, c.alts[1:])
		c.alts[len(c.alts)-1] = nil
		c.alts = c.alts[:len(c.alts)-1]
		a, idx, dst = reg.a, reg.idx, reg.dst
		fired := a.fired
		c.putReg(reg)
		if !fired {
			a.fired = true
			return a, idx, dst
		}
	}
	return nil, 0, nil
}

// Recv receives a value from the channel, blocking until a sender
// offers one.
func (c *Chan[T]) Recv(p *Proc) T {
	rt := c.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(c.sendq) > 0 {
		w := c.popSend()
		rt.ready(w.p)
		v := w.v
		c.putSend(w)
		return v
	}
	w := c.getRecv(p)
	c.recvq = append(c.recvq, w)
	rt.park(p, stRecv, c.name)
	v := w.v
	c.putRecv(w)
	return v
}

// TrySend offers v without blocking; it reports whether a waiting
// receiver took the value. (Not an Occam primitive, but the natural
// dual of a SKIP-guarded alternation; used where the paper's processes
// "do not send a segment if the next process down the line is not
// ready", §2.2 principle 5.)
func (c *Chan[T]) TrySend(p *Proc, v T) bool {
	rt := c.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		copy(c.recvq, c.recvq[1:])
		c.recvq[len(c.recvq)-1] = nil
		c.recvq = c.recvq[:len(c.recvq)-1]
		w.v = v
		rt.ready(w.p)
		return true
	}
	if a, idx, dst := c.takeAlt(); a != nil {
		*dst = v
		a.chosen = idx
		rt.ready(a.p)
		return true
	}
	return false
}

// pending reports whether a sender is waiting. Caller holds mu.
func (c *Chan[T]) pending() bool { return len(c.sendq) > 0 }

// removeAlt deletes every registration belonging to a, recycling the
// records. Caller holds mu.
func (c *Chan[T]) removeAlt(a *altState) {
	out := c.alts[:0]
	for _, reg := range c.alts {
		if reg.a != a {
			out = append(out, reg)
		} else {
			c.putReg(reg)
		}
	}
	for i := len(out); i < len(c.alts); i++ {
		c.alts[i] = nil
	}
	c.alts = out
}
