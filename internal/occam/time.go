// Package occam is a deterministic, virtual-time simulation of the
// Inmos transputer / Occam 2 execution environment that the Pandora
// system was built on (paper §3.1).
//
// Processes are goroutines scheduled one at a time by a virtual-time
// scheduler, so every run is exactly reproducible and experiments that
// span minutes of stream time complete in milliseconds of wall time.
// The primitives mirror Occam:
//
//   - rendezvous channels (Chan) with blocking Send/Recv,
//   - prioritised alternation (Proc.Alt, the PRI ALT construct),
//   - microsecond-resolution timers (Proc.Sleep, After/Timeout guards),
//   - two process priorities (High preempts Low in the run queue),
//   - per-transputer CPU accounting (Node, Proc.Consume),
//   - inter-transputer links with transmission delay (Link).
//
// A Runtime detects deadlock (no runnable process and no pending
// timer) and reports the blocked processes by name and state.
package occam

import (
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the box was
// booted. The transputer timer had a resolution of one microsecond;
// nanoseconds are used internally so that derived quantities (link
// transmission times, CPU costs) do not accumulate rounding error.
type Time int64

// Handy instants/durations.
const (
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second

	// Forever is a time later than any event in a simulation.
	Forever Time = 1<<63 - 1
)

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Micros returns t in whole microseconds (the transputer timer value).
func (t Time) Micros() int64 { return int64(t) / 1e3 }

// Millis returns t in (possibly fractional) milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Seconds returns t in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return fmt.Sprintf("t+%s", time.Duration(t))
}
