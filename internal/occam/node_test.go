package occam

import (
	"testing"
	"time"
)

func TestConsumeAdvancesTime(t *testing.T) {
	rt := NewRuntime()
	n := NewNode(rt, "cpu")
	var done Time
	rt.Go("worker", n, Low, func(p *Proc) {
		p.Consume(3 * time.Millisecond)
		done = p.Now()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if done != Time(3*time.Millisecond) {
		t.Fatalf("done at %v, want 3ms", done)
	}
	if n.BusyTime() != 3*time.Millisecond {
		t.Fatalf("BusyTime = %v", n.BusyTime())
	}
}

func TestConsumeSerialisesOnOneNode(t *testing.T) {
	rt := NewRuntime()
	n := NewNode(rt, "cpu")
	var ends []Time
	for i := 0; i < 3; i++ {
		rt.Go("worker", n, Low, func(p *Proc) {
			p.Consume(2 * time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(2 * time.Millisecond), Time(4 * time.Millisecond), Time(6 * time.Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
}

func TestConsumeParallelAcrossNodes(t *testing.T) {
	rt := NewRuntime()
	a := NewNode(rt, "a")
	b := NewNode(rt, "b")
	var endA, endB Time
	rt.Go("wa", a, Low, func(p *Proc) {
		p.Consume(5 * time.Millisecond)
		endA = p.Now()
	})
	rt.Go("wb", b, Low, func(p *Proc) {
		p.Consume(5 * time.Millisecond)
		endB = p.Now()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if endA != Time(5*time.Millisecond) || endB != Time(5*time.Millisecond) {
		t.Fatalf("different nodes serialised: a=%v b=%v", endA, endB)
	}
}

func TestConsumeHighPriorityJumpsQueue(t *testing.T) {
	rt := NewRuntime()
	n := NewNode(rt, "cpu")
	var order []string
	// One low request holds the CPU; two more queue; a high request
	// arriving last must be granted next.
	rt.Go("low0", n, Low, func(p *Proc) {
		p.Consume(2 * time.Millisecond)
		order = append(order, "low0")
	})
	rt.Go("low1", n, Low, func(p *Proc) {
		p.Consume(2 * time.Millisecond)
		order = append(order, "low1")
	})
	rt.Go("high", n, High, func(p *Proc) {
		p.Sleep(time.Millisecond) // arrives after low0 granted, low1 queued
		p.Consume(time.Millisecond)
		order = append(order, "high")
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"low0", "high", "low1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestConsumeZeroIsFree(t *testing.T) {
	rt := NewRuntime()
	n := NewNode(rt, "cpu")
	rt.Go("w", n, Low, func(p *Proc) {
		p.Consume(0)
		p.Consume(-time.Millisecond)
		if p.Now() != 0 {
			t.Errorf("zero consume advanced time to %v", p.Now())
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConsumeWithoutNodeSleeps(t *testing.T) {
	rt := NewRuntime()
	rt.Go("w", nil, Low, func(p *Proc) {
		p.Consume(time.Millisecond)
		if p.Now() != Time(time.Millisecond) {
			t.Errorf("nodeless consume at %v", p.Now())
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilisation(t *testing.T) {
	rt := NewRuntime()
	n := NewNode(rt, "cpu")
	rt.Go("w", n, Low, func(p *Proc) {
		p.Consume(time.Millisecond)
		p.Sleep(time.Millisecond)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if u := n.Utilisation(); u < 0.49 || u > 0.51 {
		t.Fatalf("Utilisation = %v, want ~0.5", u)
	}
}
