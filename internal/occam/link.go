package occam

import (
	"fmt"
	"time"
)

// Link models an Inmos transputer link: a unidirectional point-to-point
// channel with a serial bandwidth (5, 10 or 20 Mbit/s on real
// hardware; Pandora used 20 Mbit/s links and 100 Mbit/s FIFOs, §1.1).
//
// A transfer occupies the link for size×8/bandwidth of virtual time;
// transfers are serialised, so a large video message delays a
// following audio message — exactly the effect the paper measures in
// §4.2 ("video segments can hold up following audio segments,
// introducing up to 20ms of jitter").
//
// The receive side is an ordinary rendezvous channel, so a receiver
// may include the link in an alternation via In().
type Link[T any] struct {
	rt        *Runtime
	name      string
	bandwidth int64 // bits per second
	ch        *Chan[T]
	busyUntil Time
	bytesSent uint64
	transfers uint64
}

// NewLink returns a link with the given bandwidth in bits per second.
func NewLink[T any](rt *Runtime, name string, bitsPerSecond int64) *Link[T] {
	if bitsPerSecond <= 0 {
		panic("occam: link bandwidth must be positive")
	}
	return &Link[T]{
		rt:        rt,
		name:      name,
		bandwidth: bitsPerSecond,
		ch:        NewChan[T](rt, name),
	}
}

// Name returns the link's diagnostic name.
func (l *Link[T]) Name() string { return l.name }

// BytesSent returns the total payload bytes transferred.
func (l *Link[T]) BytesSent() uint64 {
	l.rt.mu.Lock()
	defer l.rt.mu.Unlock()
	return l.bytesSent
}

// TransferTime returns how long a message of size bytes occupies the
// link.
func (l *Link[T]) TransferTime(size int) time.Duration {
	return time.Duration(int64(size) * 8 * int64(time.Second) / l.bandwidth)
}

// Send transmits v, which is accounted as size bytes on the wire. The
// sender is blocked while the link is busy with earlier transfers,
// then for the transfer time, then until the receiver accepts the
// value (link DMA plus rendezvous).
func (l *Link[T]) Send(p *Proc, v T, size int) {
	if size < 0 {
		panic("occam: negative link transfer size")
	}
	rt := l.rt
	rt.mu.Lock()
	start := rt.now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	done := start.Add(l.TransferTime(size))
	l.busyUntil = done
	l.bytesSent += uint64(size)
	l.transfers++
	rt.mu.Unlock()
	p.SleepUntil(done)
	l.ch.Send(p, v)
}

// Recv receives the next message from the link, blocking until one
// arrives.
func (l *Link[T]) Recv(p *Proc) T { return l.ch.Recv(p) }

// In returns a guard that fires when a message can be received from
// the link, for use in an alternation.
func (l *Link[T]) In(dst *T) Guard { return Recv(l.ch, dst) }

// Busy reports whether a transfer is in progress at the current
// instant (diagnostics).
func (l *Link[T]) Busy() bool {
	l.rt.mu.Lock()
	defer l.rt.mu.Unlock()
	return l.busyUntil > l.rt.now
}

func (l *Link[T]) String() string {
	return fmt.Sprintf("link %s @%d bit/s", l.name, l.bandwidth)
}
