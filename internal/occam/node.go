package occam

import (
	"time"
)

// Node models one transputer's CPU. Processes account for computation
// by calling Proc.Consume, which occupies the node exclusively for a
// duration of virtual time; concurrent requests queue, high priority
// first (the transputer's two-level scheduler). Code outside Consume
// is free, so costs are attached explicitly where they matter — see
// the calibrated constants in internal/box.
type Node struct {
	rt      *Runtime
	name    string
	busy    bool
	waiting []cpuReq
	busyFor time.Duration // accumulated busy time (utilisation metric)
	grants  uint64
}

type cpuReq struct {
	p   *Proc
	d   time.Duration
	pri Priority
	seq uint64
}

// NewNode returns a new CPU resource named name.
func NewNode(rt *Runtime, name string) *Node {
	return &Node{rt: rt, name: name}
}

// Name returns the node's diagnostic name.
func (n *Node) Name() string { return n.name }

// BusyTime returns the total virtual time the CPU has spent granted.
func (n *Node) BusyTime() time.Duration {
	n.rt.mu.Lock()
	defer n.rt.mu.Unlock()
	return n.busyFor
}

// Utilisation returns BusyTime divided by elapsed virtual time.
func (n *Node) Utilisation() float64 {
	n.rt.mu.Lock()
	defer n.rt.mu.Unlock()
	if n.rt.now == 0 {
		return 0
	}
	return float64(n.busyFor) / float64(n.rt.now)
}

// Consume occupies the process's node for d of virtual time, blocking
// the process until its grant completes. If the node is busy the
// request queues behind earlier requests; higher-priority processes
// are granted first. Consume on a process with no node just sleeps.
func (p *Proc) Consume(d time.Duration) {
	if d <= 0 {
		return
	}
	n := p.node
	if n == nil {
		p.Sleep(d)
		return
	}
	rt := n.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.seq++
	n.insert(cpuReq{p: p, d: d, pri: p.pri, seq: rt.seq})
	if !n.busy {
		n.grantNext()
	}
	p.stDur = d
	rt.park(p, stCPU, n.name)
}

// insert queues req, high priority ahead of low, FIFO within a
// priority. Caller holds mu.
func (n *Node) insert(req cpuReq) {
	if req.pri == High {
		// Insert after the last queued High request.
		i := 0
		for i < len(n.waiting) && n.waiting[i].pri == High {
			i++
		}
		n.waiting = append(n.waiting, cpuReq{})
		copy(n.waiting[i+1:], n.waiting[i:])
		n.waiting[i] = req
		return
	}
	n.waiting = append(n.waiting, req)
}

// grantNext starts the next queued request, scheduling its completion
// as a grant event the scheduler completes inline (no closure).
// Caller holds mu; node must be idle.
func (n *Node) grantNext() {
	if len(n.waiting) == 0 {
		return
	}
	req := n.waiting[0]
	copy(n.waiting, n.waiting[1:])
	n.waiting[len(n.waiting)-1] = cpuReq{}
	n.waiting = n.waiting[:len(n.waiting)-1]
	n.busy = true
	n.busyFor += req.d
	n.grants++
	rt := n.rt
	ev := rt.addTimer(rt.now.Add(req.d), req.p, nil)
	ev.grant = n
}
