package occam

import (
	"testing"
	"time"
)

func TestRendezvousTransfersValue(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var got int
	rt.Go("sender", nil, Low, func(p *Proc) { ch.Send(p, 42) })
	rt.Go("recv", nil, Low, func(p *Proc) { got = ch.Recv(p) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("received %d, want 42", got)
	}
}

func TestSenderBlocksUntilReceiver(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var sendDone, recvAt Time
	rt.Go("sender", nil, Low, func(p *Proc) {
		ch.Send(p, 1)
		sendDone = p.Now()
	})
	rt.Go("recv", nil, Low, func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		ch.Recv(p)
		recvAt = p.Now()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != recvAt || sendDone != Time(7*time.Millisecond) {
		t.Fatalf("send completed at %v, recv at %v, want both 7ms", sendDone, recvAt)
	}
}

func TestReceiverBlocksUntilSender(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var recvDone Time
	rt.Go("recv", nil, Low, func(p *Proc) {
		ch.Recv(p)
		recvDone = p.Now()
	})
	rt.Go("sender", nil, Low, func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		ch.Send(p, 1)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if recvDone != Time(3*time.Millisecond) {
		t.Fatalf("recv completed at %v, want 3ms", recvDone)
	}
}

func TestMultipleSendersFIFO(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		rt.Go("sender", nil, Low, func(p *Proc) { ch.Send(p, i) })
	}
	rt.Go("recv", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond) // let every sender queue
		for i := 0; i < 5; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("receive order %v, want FIFO", got)
		}
	}
}

func TestMultipleReceiversFIFO(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var got [3]int
	for i := 0; i < 3; i++ {
		i := i
		rt.Go("recv", nil, Low, func(p *Proc) { got[i] = ch.Recv(p) })
	}
	rt.Go("sender", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			ch.Send(p, 100+i)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 100+i {
			t.Fatalf("got %v, want receivers served FIFO", got)
		}
	}
}

func TestTrySendWithWaitingReceiver(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[string](rt, "c")
	var got string
	var ok bool
	rt.Go("recv", nil, Low, func(p *Proc) { got = ch.Recv(p) })
	rt.Go("sender", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		ok = ch.TrySend(p, "hello")
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != "hello" {
		t.Fatalf("TrySend ok=%v got=%q", ok, got)
	}
}

func TestTrySendWithNoReceiver(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[string](rt, "c")
	var ok bool
	rt.Go("sender", nil, Low, func(p *Proc) {
		ok = ch.TrySend(p, "dropped")
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("TrySend succeeded with no receiver")
	}
}

func TestTrySendFiresAlt(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var got, idx int
	var ok bool
	rt.Go("alter", nil, Low, func(p *Proc) {
		idx = p.Alt(Recv(ch, &got))
	})
	rt.Go("sender", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		ok = ch.TrySend(p, 9)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || idx != 0 || got != 9 {
		t.Fatalf("ok=%v idx=%d got=%d", ok, idx, got)
	}
}

func TestPingPongLatency(t *testing.T) {
	// Two processes exchanging values round-trip in zero virtual time.
	rt := NewRuntime()
	ab := NewChan[int](rt, "ab")
	ba := NewChan[int](rt, "ba")
	rounds := 0
	rt.Go("a", nil, Low, func(p *Proc) {
		for i := 0; i < 100; i++ {
			ab.Send(p, i)
			ba.Recv(p)
			rounds++
		}
	})
	rt.Go("b", nil, Low, func(p *Proc) {
		for i := 0; i < 100; i++ {
			v := ab.Recv(p)
			ba.Send(p, v)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 100 {
		t.Fatalf("rounds = %d", rounds)
	}
	if rt.Now() != 0 {
		t.Fatalf("pure rendezvous advanced clock to %v", rt.Now())
	}
}
