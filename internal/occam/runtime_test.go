package occam

import (
	"errors"
	"testing"
	"time"
)

func TestRunEmpty(t *testing.T) {
	rt := NewRuntime()
	if err := rt.Run(); err != nil {
		t.Fatalf("Run() on empty runtime: %v", err)
	}
	if !rt.Done() {
		t.Fatal("empty runtime not Done")
	}
}

func TestSingleProcRuns(t *testing.T) {
	rt := NewRuntime()
	ran := false
	rt.Go("p", nil, Low, func(p *Proc) { ran = true })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("process body did not run")
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	rt := NewRuntime()
	var woke Time
	rt.Go("sleeper", nil, Low, func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	start := time.Now()
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
}

func TestSleepUntilPastReturnsImmediately(t *testing.T) {
	rt := NewRuntime()
	rt.Go("p", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		before := p.Now()
		p.SleepUntil(0)
		if p.Now() != before {
			t.Errorf("SleepUntil(past) advanced time from %v to %v", before, p.Now())
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimersFireInOrder(t *testing.T) {
	rt := NewRuntime()
	var order []int
	for i, d := range []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond} {
		i, d := i, d
		rt.Go("p", nil, Low, func(p *Proc) {
			p.Sleep(d)
			order = append(order, i)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestSameInstantTimersFIFO(t *testing.T) {
	rt := NewRuntime()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		rt.Go("p", nil, Low, func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant wake order %v, want ascending", order)
		}
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	rt := NewRuntime()
	var wokeAt Time = -1
	rt.Go("p", nil, Low, func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		wokeAt = p.Now()
	})
	if err := rt.RunUntil(Time(4 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if wokeAt != -1 {
		t.Fatalf("process woke before limit, at %v", wokeAt)
	}
	if rt.Now() != Time(4*time.Millisecond) {
		t.Fatalf("clock at %v after RunUntil(4ms)", rt.Now())
	}
	if err := rt.RunUntil(Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if wokeAt != Time(10*time.Millisecond) {
		t.Fatalf("woke at %v, want 10ms", wokeAt)
	}
}

func TestRunForIsRelative(t *testing.T) {
	rt := NewRuntime()
	rt.Go("ticker", nil, Low, func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
		}
	})
	if err := rt.RunFor(3 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(3 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rt.Now() != Time(6*time.Millisecond) {
		t.Fatalf("clock at %v, want 6ms", rt.Now())
	}
	rt.Shutdown()
}

func TestDeadlockDetected(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "never")
	rt.Go("stuck", nil, Low, func(p *Proc) {
		ch.Recv(p)
	})
	err := rt.Run()
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %T, want *DeadlockError", err)
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatal("DeadlockError does not unwrap to ErrDeadlock")
	}
	if len(de.Procs) != 1 {
		t.Fatalf("deadlock reports %d procs, want 1", len(de.Procs))
	}
	rt.Shutdown()
}

func TestShutdownUnwindsBlockedProcs(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "never")
	for i := 0; i < 10; i++ {
		rt.Go("stuck", nil, Low, func(p *Proc) { ch.Recv(p) })
	}
	if err := rt.RunUntil(Time(time.Millisecond)); err != nil {
		// Blocked-on-channel-only is a deadlock; either outcome is
		// fine here, we only care that Shutdown reclaims goroutines.
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatal(err)
		}
	}
	rt.Shutdown() // must not hang
	if rt.NumProcs() != 0 {
		t.Fatalf("%d procs alive after Shutdown", rt.NumProcs())
	}
}

func TestHighPriorityRunsFirst(t *testing.T) {
	rt := NewRuntime()
	var order []string
	// Both become runnable at the same instant; High must run first
	// even though it was queued second.
	rt.Go("low", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, "low")
	})
	rt.Go("high", nil, High, func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, "high")
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("order %v, want high first", order)
	}
}

func TestGoFromInsideProc(t *testing.T) {
	rt := NewRuntime()
	ran := false
	rt.Go("parent", nil, Low, func(p *Proc) {
		rt.Go("child", nil, Low, func(p *Proc) { ran = true })
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("dynamically created process did not run")
	}
}

func TestYieldRoundRobins(t *testing.T) {
	rt := NewRuntime()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		rt.Go("p", nil, Low, func(p *Proc) {
			for round := 0; round < 2; round++ {
				order = append(order, i)
				p.Yield()
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestContextSwitchCounter(t *testing.T) {
	rt := NewRuntime()
	rt.Go("p", nil, Low, func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Yield()
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Switches() < 10 {
		t.Fatalf("Switches() = %d, want >= 10", rt.Switches())
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The same program must produce the identical event order twice.
	run := func() []string {
		rt := NewRuntime()
		var log []string
		ch := NewChan[int](rt, "c")
		for i := 0; i < 4; i++ {
			i := i
			rt.Go("sender", nil, Low, func(p *Proc) {
				p.Sleep(time.Duration(i%2) * time.Millisecond)
				ch.Send(p, i)
			})
		}
		rt.Go("recv", nil, Low, func(p *Proc) {
			for i := 0; i < 4; i++ {
				v := ch.Recv(p)
				log = append(log, string(rune('a'+v)))
			}
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(1500)
	if tt.Micros() != 1 {
		t.Errorf("Micros() = %d", tt.Micros())
	}
	if Time(2*time.Millisecond).Millis() != 2.0 {
		t.Error("Millis() wrong")
	}
	if Time(time.Second).Seconds() != 1.0 {
		t.Error("Seconds() wrong")
	}
	if Time(0).Add(time.Millisecond) != Time(time.Millisecond) {
		t.Error("Add wrong")
	}
	if Time(time.Second).Sub(Time(time.Millisecond)) != 999*time.Millisecond {
		t.Error("Sub wrong")
	}
	if Forever.String() != "forever" {
		t.Error("Forever.String() wrong")
	}
	if Time(0).String() == "" {
		t.Error("empty String()")
	}
}
