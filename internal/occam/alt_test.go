package occam

import (
	"testing"
	"time"
)

func TestAltPicksReadyGuard(t *testing.T) {
	rt := NewRuntime()
	a := NewChan[int](rt, "a")
	b := NewChan[int](rt, "b")
	var idx, got int
	rt.Go("sender", nil, Low, func(p *Proc) { b.Send(p, 7) })
	rt.Go("alter", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond) // let the sender queue on b
		var va, vb int
		idx = p.Alt(Recv(a, &va), Recv(b, &vb))
		got = vb
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 || got != 7 {
		t.Fatalf("idx=%d got=%d, want guard 1 value 7", idx, got)
	}
}

func TestAltPriorityOrder(t *testing.T) {
	// PRI ALT: with both guards ready, the first one listed wins.
	// This is principle 4's mechanism: command channels listed first.
	rt := NewRuntime()
	cmd := NewChan[int](rt, "cmd")
	data := NewChan[int](rt, "data")
	var idx int
	rt.Go("cmdSender", nil, Low, func(p *Proc) { cmd.Send(p, 1) })
	rt.Go("dataSender", nil, Low, func(p *Proc) { data.Send(p, 2) })
	rt.Go("alter", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond) // both senders now queued
		var vc, vd int
		idx = p.Alt(Recv(cmd, &vc), Recv(data, &vd))
	})
	if err := rt.RunUntil(Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("alt chose guard %d, want the command guard (0)", idx)
	}
	rt.Shutdown()
}

func TestAltBlocksUntilGuardFires(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var fireAt Time
	rt.Go("alter", nil, Low, func(p *Proc) {
		var v int
		p.Alt(Recv(ch, &v))
		fireAt = p.Now()
	})
	rt.Go("sender", nil, Low, func(p *Proc) {
		p.Sleep(4 * time.Millisecond)
		ch.Send(p, 1)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if fireAt != Time(4*time.Millisecond) {
		t.Fatalf("alt fired at %v, want 4ms", fireAt)
	}
}

func TestAltTimeout(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "quiet")
	var idx int
	var at Time
	rt.Go("alter", nil, Low, func(p *Proc) {
		var v int
		idx = p.Alt(Recv(ch, &v), Timeout(Time(2*time.Millisecond)))
		at = p.Now()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 || at != Time(2*time.Millisecond) {
		t.Fatalf("idx=%d at=%v, want timeout at 2ms", idx, at)
	}
}

func TestAltAfterAbsolute(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "quiet")
	var at Time
	rt.Go("alter", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		var v int
		p.Alt(Recv(ch, &v), After(Time(5*time.Millisecond)))
		at = p.Now()
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*time.Millisecond) {
		t.Fatalf("After guard fired at %v, want 5ms", at)
	}
}

func TestAltAfterAlreadyPast(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "quiet")
	var idx int
	rt.Go("alter", nil, Low, func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		var v int
		idx = p.Alt(Recv(ch, &v), After(Time(time.Millisecond)))
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("idx=%d, want past After guard ready immediately", idx)
	}
}

func TestAltSkipMakesNonBlocking(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "quiet")
	var idx int
	rt.Go("alter", nil, Low, func(p *Proc) {
		var v int
		idx = p.Alt(Recv(ch, &v), Skip())
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("idx=%d, want Skip (1)", idx)
	}
	if rt.Now() != 0 {
		t.Fatalf("non-blocking alt advanced the clock to %v", rt.Now())
	}
}

func TestAltSkipPrefersReadyChannel(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var idx, got int
	rt.Go("sender", nil, Low, func(p *Proc) { ch.Send(p, 5) })
	rt.Go("alter", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		var v int
		idx = p.Alt(Recv(ch, &v), Skip())
		got = v
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 0 || got != 5 {
		t.Fatalf("idx=%d got=%d, want channel guard", idx, got)
	}
}

func TestWhenFalseDisablesGuard(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var idx int
	rt.Go("sender", nil, Low, func(p *Proc) { ch.Send(p, 1) })
	rt.Go("alter", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		var v int
		idx = p.Alt(When(false, Recv(ch, &v)), Timeout(Time(time.Millisecond)))
	})
	if err := rt.RunUntil(Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("idx=%d, want disabled guard skipped", idx)
	}
	rt.Shutdown()
}

func TestWhenTrueEnablesGuard(t *testing.T) {
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var idx, got int
	rt.Go("sender", nil, Low, func(p *Proc) { ch.Send(p, 11) })
	rt.Go("alter", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		var v int
		idx = p.Alt(When(true, Recv(ch, &v)), Timeout(Time(time.Millisecond)))
		got = v
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 0 || got != 11 {
		t.Fatalf("idx=%d got=%d", idx, got)
	}
}

func TestAltCancelsLosingTimer(t *testing.T) {
	// After an alt resolves via a channel, its timeout must not fire
	// later and corrupt anything.
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	count := 0
	rt.Go("sender", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Send(p, 1)
	})
	rt.Go("alter", nil, Low, func(p *Proc) {
		var v int
		p.Alt(Recv(ch, &v), Timeout(Time(5*time.Millisecond)))
		count++
		p.Sleep(20 * time.Millisecond) // outlive the cancelled timer
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("alt body ran %d times", count)
	}
}

func TestAltRepeatedOnSameChannel(t *testing.T) {
	// A server looping on Alt over the same channels must receive
	// every message exactly once.
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	var got []int
	rt.Go("server", nil, Low, func(p *Proc) {
		for i := 0; i < 10; i++ {
			var v int
			p.Alt(Recv(ch, &v))
			got = append(got, v)
		}
	})
	rt.Go("client", nil, Low, func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Millisecond)
			ch.Send(p, i)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("received %d values, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestTwoAltsOneSender(t *testing.T) {
	// Two processes alting on the same channel: one sender satisfies
	// exactly one of them.
	rt := NewRuntime()
	ch := NewChan[int](rt, "c")
	other := NewChan[int](rt, "other")
	served := 0
	for i := 0; i < 2; i++ {
		rt.Go("alter", nil, Low, func(p *Proc) {
			var v int
			if p.Alt(Recv(ch, &v), Recv(other, &v)) == 0 {
				served++
			}
			// Release the second alter via `other`.
			other.TrySend(p, 0)
		})
	}
	rt.Go("sender", nil, Low, func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Send(p, 1)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 1 {
		t.Fatalf("one send served %d alts", served)
	}
}
