package atm

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/occam"
	"repro/internal/segment"
)

// audioWire encodes a one-block audio segment with the given sequence
// number into pl.
func audioWire(pl *segment.WirePool, seq uint32) segment.Wire {
	return pl.Encode(segment.NewAudio(seq, 0, [][]byte{make([]byte, segment.BlockSamples)}))
}

// drain starts a process that records arrival latencies on a host.
func drain(rt *occam.Runtime, h *Host, lat *metrics.Tracker, count *int) {
	rt.Go(h.nm+".drain", nil, occam.High, func(p *occam.Proc) {
		for {
			m := h.Rx.Recv(p)
			if lat != nil {
				lat.Add(p.Now().Sub(m.Sent))
			}
			if count != nil {
				*count++
			}
		}
	})
}

func TestDirectCircuitDelivers(t *testing.T) {
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	b := net.AddHost("b")
	l := net.AddLink("ab", LinkConfig{Bandwidth: 100_000_000})
	net.OpenCircuit(7, a, b, l)

	pool := segment.NewWirePool()
	var got []Message
	rt.Go("rx", nil, occam.High, func(p *occam.Proc) {
		for {
			got = append(got, b.Rx.Recv(p))
		}
	})
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			w := audioWire(pool, uint32(i))
			if err := a.Send(p, Message{VCI: 7, Size: 100, W: w}); err != nil {
				w.Release()
				t.Error(err)
			}
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5", len(got))
	}
	for i, m := range got {
		if m.W.Seq() != uint32(i) {
			t.Fatalf("reordered: %v", got)
		}
		if m.VCI != 7 {
			t.Fatalf("VCI %d", m.VCI)
		}
		m.W.Release()
	}
	if l.Stats().Forwarded != 5 || l.Stats().Bytes != 500 {
		t.Fatalf("link stats %+v", l.Stats())
	}
	if pool.FreeLen() != 5 {
		t.Fatalf("%d of 5 wires returned to the pool", pool.FreeLen())
	}
}

func TestTransmissionAndPropagationDelay(t *testing.T) {
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	b := net.AddHost("b")
	// 1000 bytes at 8 Mbit/s = 1 ms, plus 500 µs propagation.
	l := net.AddLink("ab", LinkConfig{Bandwidth: 8_000_000, Propagation: 500 * time.Microsecond})
	net.OpenCircuit(1, a, b, l)
	lat := metrics.NewTracker("lat")
	drain(rt, b, lat, nil)
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		a.Send(p, Message{VCI: 1, Size: 1000})
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if lat.Count() != 1 || lat.Min() != 1500*time.Microsecond {
		t.Fatalf("latency %v, want 1.5ms", lat.Min())
	}
}

func TestCrossTrafficCausesJitter(t *testing.T) {
	// The §4.2 effect, at network level: audio sharing a link with
	// bursty video sees queueing jitter; audio alone does not.
	run := func(withVideo bool) time.Duration {
		rt := occam.NewRuntime()
		net := New(rt)
		a := net.AddHost("a")
		b := net.AddHost("b")
		l := net.AddLink("shared", LinkConfig{Bandwidth: 10_000_000})
		net.OpenCircuit(1, a, b, l)
		net.OpenCircuit(2, a, b, l)
		lat := metrics.NewTracker("audio")
		rt.Go("rx", nil, occam.High, func(p *occam.Proc) {
			for {
				m := b.Rx.Recv(p)
				if m.VCI == 1 {
					lat.Add(p.Now().Sub(m.Sent))
				}
			}
		})
		rt.Go("audio", nil, occam.Low, func(p *occam.Proc) {
			for i := 0; i < 200; i++ {
				p.Sleep(4 * time.Millisecond)
				a.Send(p, Message{VCI: 1, Size: 68})
			}
		})
		if withVideo {
			rt.Go("video", nil, occam.Low, func(p *occam.Proc) {
				for i := 0; i < 20; i++ {
					p.Sleep(40 * time.Millisecond)
					a.Send(p, Message{VCI: 2, Size: 16000}) // 12.8 ms at 10 Mbit/s
				}
			})
		}
		if err := rt.RunUntil(occam.Time(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		rt.Shutdown()
		return lat.Jitter()
	}
	quiet := run(false)
	busy := run(true)
	if quiet > time.Millisecond {
		t.Fatalf("audio-only jitter %v", quiet)
	}
	if busy < 5*time.Millisecond {
		t.Fatalf("cross-traffic jitter %v, want ≥ 5ms (one video transmission ≈ 12.8ms)", busy)
	}
}

func TestMultiHopPath(t *testing.T) {
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	b := net.AddHost("b")
	var hops []*Link
	for _, nm := range []string{"h1", "h2", "h3"} {
		hops = append(hops, net.AddLink(nm, LinkConfig{
			Bandwidth:   10_000_000,
			Propagation: time.Millisecond,
		}))
	}
	net.OpenCircuit(5, a, b, hops...)
	lat := metrics.NewTracker("lat")
	drain(rt, b, lat, nil)
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		a.Send(p, Message{VCI: 5, Size: 1000}) // 0.8 ms per hop
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	want := 3 * (800*time.Microsecond + time.Millisecond)
	if lat.Min() != want {
		t.Fatalf("3-hop latency %v, want %v", lat.Min(), want)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	b := net.AddHost("b")
	// Slow link, tiny queue: a burst must overflow.
	l := net.AddLink("slow", LinkConfig{Bandwidth: 1_000_000, QueueLimit: 4})
	net.OpenCircuit(1, a, b, l)
	received := 0
	drain(rt, b, nil, &received)
	rt.Go("burst", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 50; i++ {
			a.Send(p, Message{VCI: 1, Size: 1000}) // 8 ms each; burst at t=0
		}
	})
	if err := rt.RunUntil(occam.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	st := l.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("no queue drops under burst overload")
	}
	if received+int(st.QueueDrops) != 50 {
		t.Fatalf("received %d + dropped %d != 50", received, st.QueueDrops)
	}
}

func TestDropPathsReleaseWires(t *testing.T) {
	// Every message carries one wire reference; whether a message is
	// delivered (receiver releases) or dropped at the queue (link
	// releases), all storage must come back to the pool.
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	b := net.AddHost("b")
	l := net.AddLink("slow", LinkConfig{Bandwidth: 1_000_000, QueueLimit: 4})
	net.OpenCircuit(1, a, b, l)
	pool := segment.NewWirePool()
	rt.Go("rx", nil, occam.High, func(p *occam.Proc) {
		for {
			m := b.Rx.Recv(p)
			m.W.Release()
		}
	})
	rt.Go("burst", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 50; i++ {
			a.Send(p, Message{VCI: 1, Size: 1000, W: audioWire(pool, uint32(i))})
		}
	})
	if err := rt.RunUntil(occam.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if l.Stats().QueueDrops == 0 {
		t.Fatal("no queue drops under burst overload")
	}
	// Every distinct storage record the pool ever allocated must be
	// back on the free list: a leak on either path would strand one.
	if pool.FreeLen() != int(pool.News) {
		t.Fatalf("%d of %d wire records returned to the pool", pool.FreeLen(), pool.News)
	}
}

func TestLossInjectionDeterministic(t *testing.T) {
	run := func() uint64 {
		rt := occam.NewRuntime()
		net := New(rt)
		a := net.AddHost("a")
		b := net.AddHost("b")
		l := net.AddLink("lossy", LinkConfig{Bandwidth: 100_000_000, LossRate: 0.1, Seed: 99})
		net.OpenCircuit(1, a, b, l)
		drain(rt, b, nil, nil)
		rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
			for i := 0; i < 1000; i++ {
				p.Sleep(100 * time.Microsecond)
				a.Send(p, Message{VCI: 1, Size: 68})
			}
		})
		if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		rt.Shutdown()
		return l.Stats().LossDrops
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("loss not deterministic: %d vs %d", d1, d2)
	}
	if d1 < 60 || d1 > 140 {
		t.Fatalf("loss drops %d of 1000 at 10%%", d1)
	}
}

func TestSendWithoutCircuitErrors(t *testing.T) {
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	var err error
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		err = a.Send(p, Message{VCI: 42, Size: 10})
	})
	if e := rt.RunUntil(occam.Time(time.Millisecond)); e != nil {
		t.Fatal(e)
	}
	rt.Shutdown()
	if err == nil {
		t.Fatal("send on unopened circuit succeeded")
	}
}

func TestCloseCircuitStopsDelivery(t *testing.T) {
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	b := net.AddHost("b")
	l := net.AddLink("ab", LinkConfig{Bandwidth: 100_000_000})
	net.OpenCircuit(1, a, b, l)
	received := 0
	drain(rt, b, nil, &received)
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		a.Send(p, Message{VCI: 1, Size: 100})
		p.Sleep(10 * time.Millisecond)
		net.CloseCircuit(1, a, l)
		if err := a.Send(p, Message{VCI: 1, Size: 100}); err == nil {
			t.Error("send on closed circuit succeeded")
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if received != 1 {
		t.Fatalf("received %d", received)
	}
}

func TestDirectHostToHostCircuit(t *testing.T) {
	// Zero-link circuit: degenerate but legal (loopback).
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.OpenCircuit(1, a, b)
	received := 0
	drain(rt, b, nil, &received)
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		a.Send(p, Message{VCI: 1, Size: 10})
	})
	if err := rt.RunUntil(occam.Time(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if received != 1 {
		t.Fatal("loopback circuit failed")
	}
}

func TestConflictingVCIRoutePanics(t *testing.T) {
	// Opening a second circuit with the same VCI through the same link
	// to a different next hop would silently cross-wire the first
	// stream's cells; it must fail loudly instead.
	rt := occam.NewRuntime()
	net := New(rt)
	a := net.AddHost("a")
	b := net.AddHost("b")
	c := net.AddHost("c")
	l := net.AddLink("shared", LinkConfig{Bandwidth: 10_000_000})
	net.OpenCircuit(7, a, b, l)
	defer rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting VCI route accepted")
		}
	}()
	net.OpenCircuit(7, a, c, l)
}

func TestSharedHopSameNextHopAllowed(t *testing.T) {
	// Two circuits from different sources may share a downstream hop
	// with the same VCI as long as the next hop agrees — installing
	// the identical route twice is harmless.
	rt := occam.NewRuntime()
	net := New(rt)
	a1 := net.AddHost("a1")
	a2 := net.AddHost("a2")
	b := net.AddHost("b")
	shared := net.AddLink("shared", LinkConfig{Bandwidth: 10_000_000})
	net.OpenCircuit(7, a1, b, shared)
	net.OpenCircuit(7, a2, b, shared)
	received := 0
	drain(rt, b, nil, &received)
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		a1.Send(p, Message{VCI: 7, Size: 100})
		a2.Send(p, Message{VCI: 7, Size: 100})
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if received != 2 {
		t.Fatalf("received %d", received)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	rt := occam.NewRuntime()
	net := New(rt)
	net.AddHost("a")
	defer rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate host accepted")
		}
	}()
	net.AddHost("a")
}
