package udptrans

import (
	"strings"
	"testing"
	"time"

	"repro/internal/atm"
)

// arenaOf encodes messages for the given seqs back to back, the way
// Batcher.Add lays out its arena.
func arenaOf(t *testing.T, seqs ...uint32) ([]byte, []int) {
	t.Helper()
	var arena []byte
	var ends []int
	for _, seq := range seqs {
		w := testWire(t, seq)
		out, err := Encode(arena, atm.Message{VCI: 100 + seq, Size: len(w.Bytes()), W: w})
		if err != nil {
			t.Fatal(err)
		}
		arena = out
		ends = append(ends, len(arena))
	}
	return arena, ends
}

// TestSendLoopDelivery exercises the portable batch submission — the
// path every non-linux platform takes through batch_generic.go — over
// a real loopback socket: one Write per datagram, every datagram
// delivered intact and in order.
func TestSendLoopDelivery(t *testing.T) {
	rx, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer rx.Close()
	tr, err := Dial(rx.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	arena, ends := arenaOf(t, 1, 2, 3, 4, 5)
	if err := sendLoop(tr, arena, ends); err != nil {
		t.Fatal(err)
	}
	var got []atm.Message
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < len(ends) && time.Now().Before(deadline) {
		got = append(got, rx.Drain()...)
		time.Sleep(5 * time.Millisecond)
	}
	if len(got) != len(ends) {
		t.Fatalf("delivered %d of %d datagrams", len(got), len(ends))
	}
	for i, m := range got {
		if m.W.Seq() != uint32(i+1) || m.VCI != uint32(101+i) {
			t.Fatalf("datagram %d out of order: seq %d vci %d", i, m.W.Seq(), m.VCI)
		}
	}
	if n := rx.DecodeErrs(); n != 0 {
		t.Fatalf("%d decode errors", n)
	}
}

// TestSendLoopEmptyAndSlicing: an empty batch writes nothing, and the
// loop slices the arena strictly by the ends offsets — a stale offset
// list must not smear datagrams together.
func TestSendLoopEmptyAndSlicing(t *testing.T) {
	rx, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer rx.Close()
	tr, err := Dial(rx.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if err := sendLoop(tr, nil, nil); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	// Two datagrams in the arena, but ends lists only the first: the
	// second must not be sent.
	arena, ends := arenaOf(t, 8, 9)
	if err := sendLoop(tr, arena, ends[:1]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	got := rx.Drain()
	if len(got) != 1 || got[0].W.Seq() != 8 {
		t.Fatalf("expected exactly the first datagram, got %d messages", len(got))
	}
}

// TestSendLoopErrorStops: a dead socket fails the loop with the peer
// address in the error, matching Flush's loss-reporting contract.
func TestSendLoopErrorStops(t *testing.T) {
	rx, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	addr := rx.Addr()
	rx.Close()
	tr, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close() // closed socket: every Write fails
	arena, ends := arenaOf(t, 1, 2)
	err = sendLoop(tr, arena, ends)
	if err == nil {
		t.Fatal("sendLoop on a closed socket succeeded")
	}
	if !strings.Contains(err.Error(), addr) {
		t.Fatalf("error does not name the peer: %v", err)
	}
}

// TestBatchSenderUsesLoopSemantics pins that a Batcher flush and a
// direct sendLoop over the same arena deliver identical datagrams —
// the linux sendmmsg path and the portable loop must be
// interchangeable.
func TestBatchSenderUsesLoopSemantics(t *testing.T) {
	run := func(via string) [][]byte {
		rx, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Skipf("no loopback UDP: %v", err)
		}
		defer rx.Close()
		tr, err := Dial(rx.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		arena, ends := arenaOf(t, 21, 22, 23)
		switch via {
		case "loop":
			err = sendLoop(tr, arena, ends)
		case "batcher":
			b := NewBatcher(tr, 8)
			start := 0
			for _, end := range ends {
				if err := b.AddRaw(arena[start:end]); err != nil {
					t.Fatal(err)
				}
				start = end
			}
			err = b.Flush()
		}
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		deadline := time.Now().Add(2 * time.Second)
		for len(out) < len(ends) && time.Now().Before(deadline) {
			for _, m := range rx.Drain() {
				out = append(out, append([]byte{}, m.W.Bytes()...))
			}
			time.Sleep(5 * time.Millisecond)
		}
		if len(out) != len(ends) {
			t.Fatalf("%s delivered %d of %d", via, len(out), len(ends))
		}
		return out
	}
	loop, batched := run("loop"), run("batcher")
	for i := range loop {
		if string(loop[i]) != string(batched[i]) {
			t.Fatalf("datagram %d differs between sendLoop and Batcher flush", i)
		}
	}
}
