//go:build linux && (amd64 || arm64)

package udptrans

import (
	"fmt"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux: the
// per-datagram msghdr plus the kernel-filled byte count, padded to
// 8-byte alignment.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// batchSender submits a whole batch with one sendmmsg(2) call: one
// iovec per datagram pointing into the shared arena, one mmsghdr per
// iovec. The header and iovec slices are reused across flushes, so a
// steady stream allocates nothing.
type batchSender struct {
	iovs []syscall.Iovec
	hdrs []mmsghdr
}

func (s *batchSender) send(t *Transport, arena []byte, ends []int) error {
	n := len(ends)
	if cap(s.iovs) < n {
		s.iovs = make([]syscall.Iovec, n)
		s.hdrs = make([]mmsghdr, n)
	}
	s.iovs = s.iovs[:n]
	s.hdrs = s.hdrs[:n]
	start := 0
	for i, end := range ends {
		s.iovs[i] = syscall.Iovec{Base: &arena[start], Len: uint64(end - start)}
		s.hdrs[i] = mmsghdr{}
		s.hdrs[i].Hdr.Iov = &s.iovs[i]
		s.hdrs[i].Hdr.Iovlen = 1
		start = end
	}
	rc, rcErr := t.conn.SyscallConn()
	if rcErr != nil {
		return sendLoop(t, arena, ends)
	}
	sent := 0
	var sysErr error
	werr := rc.Write(func(fd uintptr) bool {
		for sent < n {
			r, _, errno := syscall.Syscall6(sysSendmmsg,
				fd, uintptr(unsafe.Pointer(&s.hdrs[sent])), uintptr(n-sent), 0, 0, 0)
			if errno == syscall.EAGAIN {
				return false // socket buffer full: wait for writability
			}
			if errno != 0 {
				sysErr = errno
				return true
			}
			sent += int(r)
		}
		return true
	})
	if werr != nil {
		return fmt.Errorf("udptrans: %s: %w", t.peer, werr)
	}
	if sysErr != nil {
		return fmt.Errorf("udptrans: %s: sendmmsg: %w", t.peer, sysErr)
	}
	return nil
}
