// Package udptrans carries atm.Messages between Pandora boxes running
// as separate OS processes, one datagram per message over UDP — the
// pluggable socket backend of the atm.Transport seam (cmd/pandora-node
// uses it to run a conference as real processes). UDP is a fair stand
// in for an ATM virtual circuit: unreliable, unordered, message
// oriented, with the VCI riding in the datagram header the way it
// rides in the cell header.
//
// Ownership at this boundary follows the atm.Transport contract: Send
// serialises the message into a datagram (the one copy a process
// boundary forces), then releases the message's wire reference — the
// bytes have left the process. On error the reference stays with the
// caller. Received datagrams decode into unmanaged wires
// (segment.ParseWire) over the datagram's own storage: Retain/Release
// are no-ops on them, and the receiving box's single copy-in at its
// pool boundary works exactly as it does for in-process delivery.
// Wire pools are never shared across the socket — they are not
// thread-safe, and each process owns its own.
//
// The Receiver is the one place in the tree where a real OS thread
// runs alongside the virtual-time runtime: a goroutine blocks on the
// socket and queues raw datagrams under a mutex, and the host process
// drains the queue between runtime quanta (see cmd/pandora-node),
// keeping the runtime itself single-threaded and deterministic given
// the same arrival batches.
package udptrans

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/atm"
	"repro/internal/occam"
	"repro/internal/segment"
)

// Datagram header: magic, version, flags, VCI, chunk index/total,
// payload length. Size on the simulated network is carried so the
// receiver sees the same accounting a chunked in-process message has.
const (
	magic      = 0x504e4455 // "PNDU"
	codecVer   = 1
	headerSize = 4 + 1 + 1 + 4 + 4 + 2 + 2 + 4

	flagCorrupt = 1 << 0
)

// MaxPayload bounds the encodable wire size: one segment must fit a
// single datagram under the usual 64 KB UDP limit.
const MaxPayload = 60_000

// Encode serialises m (header fields plus the full wire bytes) into a
// datagram, appending to dst. The wire reference is untouched.
func Encode(dst []byte, m atm.Message) ([]byte, error) {
	b := m.W.Bytes()
	if len(b) > MaxPayload {
		return dst, fmt.Errorf("udptrans: segment of %d bytes exceeds %d-byte datagram bound", len(b), MaxPayload)
	}
	var flags byte
	if m.Corrupt {
		flags |= flagCorrupt
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], magic)
	hdr[4] = codecVer
	hdr[5] = flags
	binary.BigEndian.PutUint32(hdr[6:], m.VCI)
	binary.BigEndian.PutUint32(hdr[10:], uint32(m.Size))
	binary.BigEndian.PutUint16(hdr[14:], uint16(m.ChunkIndex))
	binary.BigEndian.PutUint16(hdr[16:], uint16(m.ChunkTotal))
	binary.BigEndian.PutUint32(hdr[18:], uint32(len(b)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, b...)
	return dst, nil
}

// Decode parses one datagram into a message whose wire is an
// unmanaged view over buf (buf must stay untouched while the message
// lives; Retain/Release on it are no-ops).
func Decode(buf []byte) (atm.Message, error) {
	var m atm.Message
	if len(buf) < headerSize {
		return m, fmt.Errorf("udptrans: datagram of %d bytes shorter than header", len(buf))
	}
	if got := binary.BigEndian.Uint32(buf[0:]); got != magic {
		return m, fmt.Errorf("udptrans: bad magic %08x", got)
	}
	if buf[4] != codecVer {
		return m, fmt.Errorf("udptrans: version %d, want %d", buf[4], codecVer)
	}
	m.Corrupt = buf[5]&flagCorrupt != 0
	m.VCI = binary.BigEndian.Uint32(buf[6:])
	m.Size = int(binary.BigEndian.Uint32(buf[10:]))
	m.ChunkIndex = int(binary.BigEndian.Uint16(buf[14:]))
	m.ChunkTotal = int(binary.BigEndian.Uint16(buf[16:]))
	n := binary.BigEndian.Uint32(buf[18:])
	body := buf[headerSize:]
	if uint32(len(body)) != n {
		return m, fmt.Errorf("udptrans: payload %d bytes, header says %d", len(body), n)
	}
	w, err := segment.ParseWire(body)
	if err != nil {
		return m, fmt.Errorf("udptrans: %w", err)
	}
	m.W = w
	return m, nil
}

// Transport sends every message to one peer address over UDP. It
// implements atm.Transport; use one Transport per peer and multiplex
// by VCI above it (cmd/pandora-node's vciMux).
type Transport struct {
	conn *net.UDPConn
	peer string
	buf  []byte
}

// Dial binds an ephemeral local UDP socket connected to addr.
func Dial(addr string) (*Transport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return &Transport{conn: conn, peer: addr}, nil
}

// TransportName implements atm.Transport.
func (t *Transport) TransportName() string { return "udp:" + t.peer }

// Send implements atm.Transport: one datagram per message. On success
// the message's wire reference is released — the bytes have crossed
// the process boundary; on error it stays with the caller.
func (t *Transport) Send(p *occam.Proc, m atm.Message) error {
	out, err := Encode(t.buf[:0], m)
	if err != nil {
		return err
	}
	t.buf = out[:0] // keep the grown buffer for reuse
	if _, err := t.conn.Write(out); err != nil {
		return fmt.Errorf("udptrans: %s: %w", t.peer, err)
	}
	m.W.Release()
	return nil
}

// Write sends one already-encoded datagram — the raw half of Send,
// for muxes that encode once and fan the same datagram out to several
// peers (cmd/pandora-node).
func (t *Transport) Write(datagram []byte) error {
	if _, err := t.conn.Write(datagram); err != nil {
		return fmt.Errorf("udptrans: %s: %w", t.peer, err)
	}
	return nil
}

// Close releases the socket.
func (t *Transport) Close() error { return t.conn.Close() }

// DefaultBatch is a Batcher's default maximum datagrams per flush.
const DefaultBatch = 16

// Batcher coalesces outgoing datagrams for one peer socket and sends
// each batch with a single syscall (sendmmsg on Linux, a write loop
// elsewhere). Datagrams are encoded back to back into one reused
// arena, so a steady stream costs zero allocations and one syscall per
// batch instead of one per message. Latency is bounded by the caller:
// Add flushes when the batch is full, and the owner flushes on its own
// deadline (cmd/pandora-node flushes every run quantum and whenever
// the configured flush interval of virtual time has passed).
type Batcher struct {
	t     *Transport
	max   int
	arena []byte // encoded datagrams, back to back
	ends  []int  // end offset of each datagram in arena
	sys   batchSender

	batches uint64
	msgs    uint64
}

// NewBatcher wraps t with batching; maxBatch <= 0 selects
// DefaultBatch.
func NewBatcher(t *Transport, maxBatch int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultBatch
	}
	return &Batcher{t: t, max: maxBatch}
}

// Len returns the number of datagrams waiting in the batch.
func (b *Batcher) Len() int { return len(b.ends) }

// Stats returns how many batches were flushed and how many datagrams
// they carried (the syscall amortisation ratio).
func (b *Batcher) Stats() (batches, datagrams uint64) { return b.batches, b.msgs }

// Add encodes m into the batch arena, flushing first if the batch is
// full. The message's wire reference is untouched (callers that own it
// release it after fanning out, per the Send contract).
func (b *Batcher) Add(m atm.Message) error {
	if len(b.ends) >= b.max {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	out, err := Encode(b.arena, m)
	if err != nil {
		return err
	}
	b.arena = out
	b.ends = append(b.ends, len(out))
	return nil
}

// AddRaw appends one already-encoded datagram (the fan-out path: the
// mux encodes once and hands the same bytes to every peer's batcher,
// which must copy because each batch arena has its own lifetime).
func (b *Batcher) AddRaw(datagram []byte) error {
	if len(b.ends) >= b.max {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	b.arena = append(b.arena, datagram...)
	b.ends = append(b.ends, len(b.arena))
	return nil
}

// Flush sends every queued datagram in one syscall where the platform
// allows and resets the batch. A no-op when the batch is empty. The
// batch is discarded even when the send fails — UDP datagrams that
// could not leave are lost, exactly like datagrams lost in flight —
// and the error reports the loss to the caller.
func (b *Batcher) Flush() error {
	if len(b.ends) == 0 {
		return nil
	}
	err := b.sys.send(b.t, b.arena, b.ends)
	if err == nil {
		b.batches++
		b.msgs += uint64(len(b.ends))
	}
	b.arena = b.arena[:0]
	b.ends = b.ends[:0]
	return err
}

// sendLoop is the portable batch submission: one Write per datagram.
// Used directly on platforms without sendmmsg and as the fallback when
// the raw connection is unavailable.
func sendLoop(t *Transport, arena []byte, ends []int) error {
	start := 0
	for _, end := range ends {
		if err := t.Write(arena[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Receiver owns a listening UDP socket and a goroutine that queues
// arriving datagrams; the virtual-time side drains them between run
// quanta with Drain.
type Receiver struct {
	conn *net.UDPConn

	mu     sync.Mutex
	queue  [][]byte
	errs   uint64
	closed bool
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts the reader
// goroutine. Addr() reports the bound address.
func Listen(addr string) (*Receiver, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	r := &Receiver{conn: conn}
	go r.run()
	return r, nil
}

// Addr returns the bound listen address.
func (r *Receiver) Addr() string { return r.conn.LocalAddr().String() }

func (r *Receiver) run() {
	buf := make([]byte, MaxPayload+headerSize+1)
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			r.mu.Lock()
			r.errs++
			r.mu.Unlock()
			continue
		}
		datagram := make([]byte, n)
		copy(datagram, buf[:n])
		r.mu.Lock()
		r.queue = append(r.queue, datagram)
		r.mu.Unlock()
	}
}

// Drain decodes and returns every queued datagram. Undecodable
// datagrams are dropped and counted (DecodeErrs) — the AAL checksum
// discard of §3.8, at the process boundary.
func (r *Receiver) Drain() []atm.Message {
	r.mu.Lock()
	pending := r.queue
	r.queue = nil
	r.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	out := make([]atm.Message, 0, len(pending))
	for _, d := range pending {
		m, err := Decode(d)
		if err != nil {
			r.mu.Lock()
			r.errs++
			r.mu.Unlock()
			continue
		}
		out = append(out, m)
	}
	return out
}

// DecodeErrs returns the count of datagrams dropped as undecodable
// plus transient socket read errors.
func (r *Receiver) DecodeErrs() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errs
}

// Close stops the reader goroutine and releases the socket.
func (r *Receiver) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.conn.Close()
}
