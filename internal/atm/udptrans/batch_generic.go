//go:build !(linux && (amd64 || arm64))

package udptrans

// batchSender on platforms without sendmmsg: one write per datagram.
// The batch still amortises encode work and flush bookkeeping.
type batchSender struct{}

func (s *batchSender) send(t *Transport, arena []byte, ends []int) error {
	return sendLoop(t, arena, ends)
}
