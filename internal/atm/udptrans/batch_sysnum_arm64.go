//go:build linux && arm64

package udptrans

// sendmmsg(2) syscall number on arm64.
const sysSendmmsg uintptr = 269
