package udptrans

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/segment"
)

func testWire(t *testing.T, seq uint32) segment.Wire {
	t.Helper()
	blk := make([]byte, segment.BlockSamples)
	for i := range blk {
		blk[i] = byte(seq + uint32(i))
	}
	return segment.WireOver(segment.NewAudio(seq, 0, [][]byte{blk}).Encode(nil))
}

func TestCodecRoundTrip(t *testing.T) {
	w := testWire(t, 7)
	in := atm.Message{VCI: 42, Size: len(w.Bytes()), W: w, ChunkIndex: 1, ChunkTotal: 3, Corrupt: true}
	d, err := Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.VCI != in.VCI || out.Size != in.Size || out.ChunkIndex != 1 ||
		out.ChunkTotal != 3 || !out.Corrupt {
		t.Fatalf("header mismatch: %+v", out)
	}
	if string(out.W.Bytes()) != string(w.Bytes()) {
		t.Fatal("payload mismatch")
	}
	if out.W.Seq() != 7 {
		t.Fatalf("decoded segment seq %d", out.W.Seq())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("short datagram accepted")
	}
	w := testWire(t, 1)
	d, err := Encode(nil, atm.Message{VCI: 1, Size: 10, W: w})
	if err != nil {
		t.Fatal(err)
	}
	d[0] ^= 0xff
	if _, err := Decode(d); err == nil {
		t.Fatal("bad magic accepted")
	}
	d[0] ^= 0xff
	d[len(d)-1] = 0xff // corrupt the segment body length consistency
	d = d[:len(d)-1]
	if _, err := Decode(d); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestBatcherRoundTrip drives a Batcher over a loopback socket pair:
// mixed Add/AddRaw traffic, a forced mid-stream flush, and the
// batch/datagram counters. Skipped where sockets are unavailable.
func TestBatcherRoundTrip(t *testing.T) {
	rx, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	defer rx.Close()
	tx, err := Dial(rx.Addr())
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	defer tx.Close()

	b := NewBatcher(tx, 4)
	const n = 10
	var raw []byte
	for i := uint32(0); i < n; i++ {
		w := testWire(t, i)
		m := atm.Message{VCI: 200 + i, Size: len(w.Bytes()), W: w}
		if i%2 == 0 {
			if err := b.Add(m); err != nil {
				t.Fatalf("add %d: %v", i, err)
			}
		} else {
			raw, err = Encode(raw[:0], m)
			if err != nil {
				t.Fatalf("encode %d: %v", i, err)
			}
			if err := b.AddRaw(raw); err != nil {
				t.Fatalf("addraw %d: %v", i, err)
			}
		}
		if i == 5 {
			if err := b.Flush(); err != nil {
				t.Fatalf("mid-stream flush: %v", err)
			}
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("batch not empty after flush: %d", b.Len())
	}
	batches, msgs := b.Stats()
	if msgs != n {
		t.Fatalf("batcher counted %d datagrams, sent %d", msgs, n)
	}
	if batches == 0 || batches > n {
		t.Fatalf("implausible batch count %d", batches)
	}

	var got []atm.Message
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < n && time.Now().Before(deadline) {
		got = append(got, rx.Drain()...)
		if len(got) < n {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if len(got) < n {
		t.Skipf("only %d of %d datagrams arrived — lossy loopback, not a batcher failure", len(got), n)
	}
	seen := make(map[uint32]uint32)
	for _, m := range got {
		seen[m.VCI] = m.W.Seq()
	}
	for i := uint32(0); i < n; i++ {
		if seq, ok := seen[200+i]; !ok || seq != i {
			t.Fatalf("VCI %d: got seq %d (present %v); all %v", 200+i, seq, ok, seen)
		}
	}
	if rx.DecodeErrs() != 0 {
		t.Fatalf("%d decode errors on clean batched traffic", rx.DecodeErrs())
	}
}

// TestLoopbackRoundTrip sends messages through a real UDP socket pair
// on the loopback interface. Skipped where sockets are unavailable
// (sandboxed builders).
func TestLoopbackRoundTrip(t *testing.T) {
	rx, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	defer rx.Close()
	tx, err := Dial(rx.Addr())
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	defer tx.Close()

	const n = 5
	for i := uint32(0); i < n; i++ {
		w := testWire(t, i)
		if err := tx.Send(nil, atm.Message{VCI: 100 + i, Size: len(w.Bytes()), W: w}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	var got []atm.Message
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < n && time.Now().Before(deadline) {
		got = append(got, rx.Drain()...)
		if len(got) < n {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if len(got) < n {
		t.Skipf("only %d of %d datagrams arrived — lossy loopback, not a codec failure", len(got), n)
	}
	seen := make(map[uint32]uint32)
	for _, m := range got {
		seen[m.VCI] = m.W.Seq()
	}
	for i := uint32(0); i < n; i++ {
		if seq, ok := seen[100+i]; !ok || seq != i {
			t.Fatalf("VCI %d: got seq %d (present %v); all %v", 100+i, seq, ok, seen)
		}
	}
	if rx.DecodeErrs() != 0 {
		t.Fatalf("%d decode errors on clean traffic", rx.DecodeErrs())
	}
}
