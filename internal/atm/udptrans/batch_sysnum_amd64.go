//go:build linux && amd64

package udptrans

// sendmmsg(2) syscall number; the amd64 syscall package predates the
// call and does not export it.
const sysSendmmsg uintptr = 307
