// Package atm simulates the ATM network environment Pandora ran over
// (paper §1.1): virtual circuits identified by VCIs, carried over
// store-and-forward links with finite bandwidth, propagation delay
// and bounded queues. Jitter arises the way it did in real life —
// from queueing behind cross traffic (large video segments sharing a
// link with audio) — and loss from queue overflow or an injected loss
// process. Multi-hop circuits through several links model the bridged
// and wide-area paths of the SuperJanet trials (§3.7.2).
//
// "Incoming streams from the network carry the stream number
// allocated by the destination box in their VCIs" — a Message's VCI
// is exactly that stream number.
//
// Ownership: a Message carries one reference to its segment.Wire.
// Host.Send (and any Transport behind it) consumes that reference on
// success — delivery hands it to the destination host, and every drop
// point (queue overflow, injected loss, unrouted VCI) releases it; on
// error the reference stays with the caller. A host that receives a
// Message owns its reference and must Release after copying into its
// own pool — wire references never cross from one box's pool to
// another's; the copy at the receiver IS the paper's one copy in.
package atm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/segment"
	"repro/internal/workload"
)

// Message is one Pandora segment in flight on the network.
type Message struct {
	// VCI identifies the virtual circuit (the destination's stream
	// number).
	VCI uint32
	// Size is the wire size in bytes, which determines transmission
	// time on each link.
	Size int
	// W is the segment's wire buffer. Hops move this descriptor by
	// value and never touch the bytes; each message carries one wire
	// reference, released by the network on any drop and transferred
	// to the receiving host on delivery.
	W segment.Wire
	// ChunkIndex/ChunkTotal describe network interleaving (§3.7.1
	// A4): when ChunkTotal > 1 the message is one of ChunkTotal chunks
	// of the same segment — Size is the chunk's share of the bytes,
	// while W references the whole segment's wire.
	ChunkIndex int
	ChunkTotal int
	// Sent is when the message entered the network (for latency
	// measurement).
	Sent occam.Time
	// Corrupt marks an injected payload corruption (faultinject). The
	// message still consumes queue space and transmission time, but the
	// receiving host must discard the segment — the AAL checksum
	// failure of §3.8 ("the current segment is thrown away"). The wire
	// bytes themselves are never touched: the storage may be shared by
	// fan-out circuits whose copies arrived intact.
	Corrupt bool
	// FaultDelay is extra per-message delay injected by a link fault
	// (jitter), added to the transmission and propagation times.
	FaultDelay time.Duration
}

// FaultAction is a fault hook's verdict on one message arriving at a
// link queue. The zero value passes the message through untouched.
type FaultAction struct {
	// Drop discards the message (burst cell loss); Reason labels the
	// trace event.
	Drop   bool
	Reason string
	// Corrupt flags the message so the receiver discards it on
	// delivery (it still consumes network resources on the way).
	Corrupt bool
	// Duplicate enqueues a second copy of the message (misbehaving
	// switch fabric), subject to the normal queue bound.
	Duplicate bool
	// Delay is extra transmission delay for this message (jitter).
	Delay time.Duration
}

// FaultHook is a deterministic fault process attached to a link with
// SetFault. OnMessage is consulted once per arriving message;
// StallUntil is consulted before each transmission and returns the
// virtual time until which the transmitter is stuck (zero or a past
// time means no stall). Implementations live in internal/faultinject;
// they make decisions only, so the same seed always yields the same
// schedule — the link owns the counters and trace events.
type FaultHook interface {
	OnMessage(now occam.Time, vci uint32, size int) FaultAction
	StallUntil(now occam.Time) occam.Time
}

// port is anything that can accept a Message: the next link on the
// path or the destination host.
type port interface {
	accept(p *occam.Proc, m Message)
	name() string
}

// Transport is the pluggable backend that carries a host's outgoing
// messages toward their destinations. Host.Send stamps the message and
// hands it to the host's transport; what happens next depends on the
// backend:
//
//   - the default in-process channel transport looks the VCI up in the
//     network's circuit table and walks the message down the circuit's
//     links (the single-process simulation everything else uses);
//   - a fabric port (internal/fabric) routes the message through a
//     cell-switched fabric shared by many boxes;
//   - a UDP transport (internal/atm/udptrans) serialises the message
//     onto a socket so the peer box can run as a separate OS process.
//
// Ownership: Send takes the message's wire reference. On success the
// reference travels downstream (eventually to the receiving host or a
// drop point inside the network, which releases it); on error the
// reference stays with the caller, exactly as with the historical
// circuit-miss error path.
type Transport interface {
	// Send conveys m toward its destination. m.Sent is already stamped.
	Send(p *occam.Proc, m Message) error
	// TransportName identifies the backend in diagnostics.
	TransportName() string
}

// chanTransport is the default in-process backend: the network's
// circuit table plus store-and-forward links, all on one runtime.
type chanTransport struct{ h *Host }

func (t chanTransport) TransportName() string { return "chan" }

func (t chanTransport) Send(p *occam.Proc, m Message) error {
	c, ok := t.h.net.circuits[circuitKey{t.h.nm, m.VCI}]
	if !ok {
		return fmt.Errorf("atm: no circuit for VCI %d from host %s", m.VCI, t.h.nm)
	}
	c.first.accept(p, m)
	return nil
}

// LinkConfig describes one link's characteristics.
type LinkConfig struct {
	// Bandwidth in bits per second (Pandora's ATM connections ran at
	// ring speed; Medusa upgraded boxes to 100 Mbit/s).
	Bandwidth int64
	// Propagation delay added to every message.
	Propagation time.Duration
	// QueueLimit bounds the output queue in messages; the default 64
	// drops tail under congestion.
	QueueLimit int
	// LossRate, if non-zero, drops messages at random (corruption or
	// cell loss on the path), deterministically seeded.
	LossRate float64
	// Seed seeds the loss process.
	Seed uint64
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.Bandwidth <= 0 {
		c.Bandwidth = 100_000_000
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LinkStats reports a link's traffic history.
type LinkStats struct {
	Forwarded  uint64
	QueueDrops uint64
	LossDrops  uint64
	Bytes      uint64
}

// Link is a store-and-forward network link: messages queue at the
// input, transmit serially at the configured bandwidth, and are
// handed to the next port on their circuit after the propagation
// delay.
//
// The link is passive: admission (fault hook, loss process, queue
// bound) runs inline in the arriving message's process or callback,
// each transmission is one occam.Timer event, and link-to-link
// forwarding happens directly in the transmission-end callback. Only
// delivery to a host — which must be able to block on the host's Rx —
// runs in a process, one per link, woken by a Signal when a
// transmission ends at a host hop.
type Link struct {
	rt   *occam.Runtime
	nm   string
	cfg  LinkConfig
	rng  *workload.RNG
	next map[uint32]port // route per VCI

	forwarded  *obs.Counter
	queueDrops *obs.Counter
	lossDrops  *obs.Counter
	bytes      *obs.Counter
	trace      *obs.Tracer
	reg        *obs.Registry

	fault       FaultHook
	faultDrops  *obs.Counter
	faultCorr   *obs.Counter
	faultDups   *obs.Counter
	faultDelays *obs.Counter
	faultStalls *obs.Counter

	queue   []Message
	txm     Message // message in transmission
	txBusy  bool
	txTimer *occam.Timer

	dlvm    Message // message awaiting host delivery
	dlvHost *Host
	dlvSig  *occam.Signal
}

// NewLink creates a link and starts its delivery process.
func NewLink(rt *occam.Runtime, name string, cfg LinkConfig) *Link {
	l := &Link{
		rt:          rt,
		nm:          name,
		cfg:         cfg.withDefaults(),
		rng:         workload.NewRNG(cfg.Seed),
		next:        make(map[uint32]port),
		forwarded:   obs.NewCounter(),
		queueDrops:  obs.NewCounter(),
		lossDrops:   obs.NewCounter(),
		bytes:       obs.NewCounter(),
		faultDrops:  obs.NewCounter(),
		faultCorr:   obs.NewCounter(),
		faultDups:   obs.NewCounter(),
		faultDelays: obs.NewCounter(),
		faultStalls: obs.NewCounter(),
	}
	l.txTimer = occam.NewTimer(rt, l.txDone)
	l.dlvSig = occam.NewSignal(rt, name+".deliver")
	rt.Go(name+".tx", nil, occam.High, l.runDeliver)
	return l
}

// Name returns the link's name.
func (l *Link) Name() string { return l.nm }

func (l *Link) name() string { return l.nm }

// Stats returns a copy of the traffic counters.
func (l *Link) Stats() LinkStats {
	return LinkStats{
		Forwarded:  l.forwarded.Value(),
		QueueDrops: l.queueDrops.Value(),
		LossDrops:  l.lossDrops.Value(),
		Bytes:      l.bytes.Value(),
	}
}

// observe adopts the link's counters into reg and attaches the tracer.
func (l *Link) observe(reg *obs.Registry) {
	lb := obs.L("link", l.nm)
	reg.RegisterCounter("atm_link_forwarded_total", l.forwarded, lb)
	reg.RegisterCounter("atm_link_queue_drops_total", l.queueDrops, lb)
	reg.RegisterCounter("atm_link_loss_drops_total", l.lossDrops, lb)
	reg.RegisterCounter("atm_link_bytes_total", l.bytes, lb)
	reg.GaugeFunc("atm_link_queue_depth", func() float64 { return float64(len(l.queue)) }, lb)
	reg.GaugeFunc("atm_link_queue_limit", func() float64 { return float64(l.cfg.QueueLimit) }, lb)
	l.trace = reg.Tracer()
	l.reg = reg
	if l.fault != nil {
		l.observeFault()
	}
}

// observeFault registers the fault counters. They appear in snapshots
// only once a hook is attached, so fault-free runs keep clean output.
func (l *Link) observeFault() {
	lb := obs.L("link", l.nm)
	l.reg.RegisterCounter("atm_link_fault_drops_total", l.faultDrops, lb)
	l.reg.RegisterCounter("atm_link_fault_corruptions_total", l.faultCorr, lb)
	l.reg.RegisterCounter("atm_link_fault_duplicates_total", l.faultDups, lb)
	l.reg.RegisterCounter("atm_link_fault_delays_total", l.faultDelays, lb)
	l.reg.RegisterCounter("atm_link_fault_stalls_total", l.faultStalls, lb)
}

// SetFault attaches a fault process to the link (nil detaches). Every
// subsequent message consults the hook on arrival, and the transmitter
// consults StallUntil before each send. Each injected fault increments
// an atm_link_fault_* counter and — except per-message jitter, which
// would flood the ring — emits an EvFault trace event.
func (l *Link) SetFault(h FaultHook) {
	l.fault = h
	if l.reg != nil && h != nil {
		l.observeFault()
	}
}

// FaultStats reports the injected-fault counters.
type FaultStats struct {
	Drops       uint64
	Corruptions uint64
	Duplicates  uint64
	Delays      uint64
	Stalls      uint64
}

// FaultStats returns a copy of the injected-fault counters.
func (l *Link) FaultStats() FaultStats {
	return FaultStats{
		Drops:       l.faultDrops.Value(),
		Corruptions: l.faultCorr.Value(),
		Duplicates:  l.faultDups.Value(),
		Delays:      l.faultDelays.Value(),
		Stalls:      l.faultStalls.Value(),
	}
}

// route sets the next hop for a VCI. Re-routing the same VCI to a
// different port would cross-wire one circuit's traffic into another's
// destination, so a conflicting route is a programming error
// (OpenCircuit documents per-(link, VCI) uniqueness); setting the same
// next hop again is an idempotent no-op.
func (l *Link) route(vci uint32, to port) {
	if old, ok := l.next[vci]; ok && old != to {
		panic(fmt.Sprintf("atm: link %s: VCI %d already routed to %s (conflicting route to %s)",
			l.nm, vci, old.name(), to.name()))
	}
	l.next[vci] = to
}

// accept runs the link's admission pipeline inline in the arriving
// message's process: the queue always accepts (drop-tail on overflow),
// so upstream never blocks. If the transmitter is idle the message
// starts transmitting immediately.
func (l *Link) accept(p *occam.Proc, m Message) {
	if end, start := l.admit(p.Now(), m); start {
		l.txTimer.Schedule(end)
	}
}

// acceptSched is accept for scheduler context — an upstream link's
// transmission-end callback forwarding into this link.
func (l *Link) acceptSched(s occam.Sched, m Message) {
	if end, start := l.admit(s.Now(), m); start {
		s.Schedule(l.txTimer, end)
	}
}

// admit applies the arrival pipeline (fault hook, loss process, queue
// bound, duplicate) and, when the transmitter is idle, pops the head
// into transmission. It returns (transmission end, true) when the
// caller must arm the transmit timer in its own context.
func (l *Link) admit(now occam.Time, m Message) (occam.Time, bool) {
	dup := false
	if l.fault != nil {
		act := l.fault.OnMessage(now, m.VCI, m.Size)
		if act.Drop {
			reason := act.Reason
			if reason == "" {
				reason = "injected-loss"
			}
			l.faultDrops.Inc()
			l.trace.EmitAt(now, obs.EvFault, "atm."+l.nm, m.VCI, reason)
			m.W.Release()
			return 0, false
		}
		if act.Corrupt {
			m.Corrupt = true
			l.faultCorr.Inc()
			l.trace.EmitAt(now, obs.EvFault, "atm."+l.nm, m.VCI, "injected-corruption")
		}
		if act.Delay > 0 {
			m.FaultDelay += act.Delay
			l.faultDelays.Inc()
		}
		dup = act.Duplicate
	}
	if l.cfg.LossRate > 0 && l.rng.Bool(l.cfg.LossRate) {
		l.lossDrops.Inc()
		l.trace.EmitAt(now, obs.EvDrop, "atm."+l.nm, m.VCI, "loss")
		m.W.Release()
		return 0, false
	}
	if len(l.queue) >= l.cfg.QueueLimit {
		l.queueDrops.Inc()
		l.trace.EmitAt(now, obs.EvDrop, "atm."+l.nm, m.VCI, "queue-overflow")
		m.W.Release()
		return 0, false
	}
	l.queue = append(l.queue, m)
	if dup && len(l.queue) < l.cfg.QueueLimit {
		// The duplicate is a second full message: it carries its
		// own wire reference and respects the queue bound.
		m.W.Retain(1)
		l.queue = append(l.queue, m)
		l.faultDups.Inc()
		l.trace.EmitAt(now, obs.EvFault, "atm."+l.nm, m.VCI, "injected-duplicate")
	}
	if l.txBusy {
		return 0, false
	}
	return l.popTx(now), true
}

// popTx moves the queue head into transmission and returns when the
// transmission ends: the stall window, if the fault hook has the
// transmitter wedged (messages already queued wait out the outage),
// then the serialisation time at link bandwidth plus propagation and
// any injected per-message delay.
func (l *Link) popTx(now occam.Time) occam.Time {
	m := l.queue[0]
	copy(l.queue, l.queue[1:])
	l.queue[len(l.queue)-1] = Message{}
	l.queue = l.queue[:len(l.queue)-1]
	l.txm = m
	l.txBusy = true
	if l.fault != nil {
		if until := l.fault.StallUntil(now); until > now {
			l.faultStalls.Inc()
			l.trace.EmitAt(now, obs.EvFault, "atm."+l.nm, m.VCI, "link-stall")
			now = until
		}
	}
	tx := time.Duration(int64(m.Size) * 8 * int64(time.Second) / l.cfg.Bandwidth)
	return now + occam.Time(tx+l.cfg.Propagation+m.FaultDelay)
}

// txDone is the transmission-end callback (scheduler context): it
// routes the transmitted message — a link hop forwards inline, a host
// hop hands off to the delivery process, which alone may block — and
// starts the next transmission unless a host delivery is pending (the
// transmitter serialises behind its own deliveries, as a real
// interface does behind a slow receiver).
func (l *Link) txDone(s occam.Sched) {
	m := l.txm
	l.txm = Message{}
	nxt, ok := l.next[m.VCI]
	if !ok {
		// Unrouted VCI: the circuit was torn down mid-flight.
		l.lossDrops.Inc()
		l.trace.EmitAt(s.Now(), obs.EvDrop, "atm."+l.nm, m.VCI, "unrouted")
		m.W.Release()
	} else {
		l.forwarded.Inc()
		l.bytes.Add(uint64(m.Size))
		switch hop := nxt.(type) {
		case *Link:
			hop.acceptSched(s, m)
		case *Host:
			l.dlvm = m
			l.dlvHost = hop
			s.Raise(l.dlvSig)
			return // runDeliver restarts the transmitter
		default:
			panic("atm: unknown port type at " + l.nm)
		}
	}
	if len(l.queue) > 0 {
		s.Schedule(l.txTimer, l.popTx(s.Now()))
	} else {
		l.txBusy = false
	}
}

// runDeliver is the link's one process: it hands messages to their
// destination host — the only hop that may block, on the host's Rx —
// and restarts the transmitter when the delivery completes.
func (l *Link) runDeliver(p *occam.Proc) {
	for {
		l.dlvSig.Wait(p)
		m, h := l.dlvm, l.dlvHost
		l.dlvm, l.dlvHost = Message{}, nil
		h.Deliver(p, m)
		if len(l.queue) > 0 {
			l.txTimer.Schedule(l.popTx(p.Now()))
		} else {
			l.txBusy = false
		}
	}
}

// Host is a network endpoint — one Pandora box's network connection.
// The box's network input process must service Rx continuously
// ("the input processes run without data loss as far as the
// decoupling buffers").
type Host struct {
	nm string
	// Rx delivers arriving messages to the host.
	Rx    *occam.Chan[Message]
	net   *Network
	trans Transport
}

// Name returns the host name.
func (h *Host) Name() string { return h.nm }

func (h *Host) name() string { return h.nm }

func (h *Host) accept(p *occam.Proc, m Message) { h.Rx.Send(p, m) }

// Deliver hands an arriving message to the host, transferring the
// message's wire reference. Transport backends (the fabric's egress
// transmitters, the pandora-node UDP bridge) call this at the end of
// their delivery path; in-process circuits arrive the same way.
func (h *Host) Deliver(p *occam.Proc, m Message) { h.Rx.Send(p, m) }

// SetTransport replaces the host's outgoing backend (the default is
// the in-process channel transport over the network's circuits).
// Attaching a box to a fabric port or to a UDP socket goes through
// here; incoming traffic keeps arriving on Rx regardless of backend.
func (h *Host) SetTransport(t Transport) {
	if t == nil {
		t = chanTransport{h}
	}
	h.trans = t
}

// Transport returns the host's current outgoing backend.
func (h *Host) Transport() Transport { return h.trans }

// Send transmits a message from this host. It stamps the send time
// and hands the message to the transport backend — for the default
// backend, the first link of a circuit previously opened from this
// host (which always accepts; congestion shows up as queueing or
// drops inside the network, never as upstream blocking).
func (h *Host) Send(p *occam.Proc, m Message) error {
	m.Sent = p.Now()
	return h.trans.Send(p, m)
}

// Network is a collection of hosts, links and circuits.
type Network struct {
	rt       *occam.Runtime
	obs      *obs.Registry
	hosts    map[string]*Host
	links    map[string]*Link
	circuits map[circuitKey]*circuit
}

type circuitKey struct {
	from string
	vci  uint32
}

type circuit struct {
	first port
}

// New returns an empty network on rt.
func New(rt *occam.Runtime) *Network {
	return &Network{
		rt:       rt,
		hosts:    make(map[string]*Host),
		links:    make(map[string]*Link),
		circuits: make(map[circuitKey]*circuit),
	}
}

// Observe attaches an observability registry: every link (existing
// and future) registers its per-link counters and queue-depth gauge,
// and circuit changes and drops are traced.
func (n *Network) Observe(reg *obs.Registry) {
	n.obs = reg
	for _, l := range n.links {
		l.observe(reg)
	}
}

// Links returns every link sorted by name — the deterministic
// iteration order fault injection and reporting need (the internal map
// would leak Go's map ordering into fault schedules).
func (n *Network) Links() []*Link {
	names := make([]string, 0, len(n.links))
	for nm := range n.links {
		names = append(names, nm)
	}
	sort.Strings(names)
	out := make([]*Link, len(names))
	for i, nm := range names {
		out[i] = n.links[nm]
	}
	return out
}

// AddHost registers an endpoint.
func (n *Network) AddHost(name string) *Host {
	if _, dup := n.hosts[name]; dup {
		panic("atm: duplicate host " + name)
	}
	h := &Host{
		nm:  name,
		Rx:  occam.NewChan[Message](n.rt, name+".rx"),
		net: n,
	}
	h.trans = chanTransport{h}
	n.hosts[name] = h
	return h
}

// AddLink registers a link. Links are shared: circuits routed through
// the same link queue behind each other, which is where jitter comes
// from.
func (n *Network) AddLink(name string, cfg LinkConfig) *Link {
	if _, dup := n.links[name]; dup {
		panic("atm: duplicate link " + name)
	}
	l := NewLink(n.rt, name, cfg)
	if n.obs != nil {
		l.observe(n.obs)
	}
	n.links[name] = l
	return l
}

// OpenCircuit routes VCI vci from host from, through the given links
// in order, to host to. The VCI is the *destination's* stream number,
// so it must be unique per (source, VCI) pair and per (link, VCI)
// pair along the path.
func (n *Network) OpenCircuit(vci uint32, from, to *Host, links ...*Link) {
	key := circuitKey{from.nm, vci}
	if _, dup := n.circuits[key]; dup {
		panic(fmt.Sprintf("atm: duplicate circuit VCI %d from %s", vci, from.nm))
	}
	var first port = to
	if len(links) > 0 {
		first = links[0]
		for i, l := range links {
			if i+1 < len(links) {
				l.route(vci, links[i+1])
			} else {
				l.route(vci, to)
			}
		}
	}
	n.circuits[key] = &circuit{first: first}
	n.obs.Tracer().Emit(obs.EvStreamOpen, "atm."+from.nm, vci, "circuit to "+to.nm)
}

// CloseCircuit tears down a circuit (messages in flight on unrouted
// links are dropped, as on the real network).
func (n *Network) CloseCircuit(vci uint32, from *Host, links ...*Link) {
	delete(n.circuits, circuitKey{from.nm, vci})
	for _, l := range links {
		delete(l.next, vci)
	}
	n.obs.Tracer().Emit(obs.EvStreamClose, "atm."+from.nm, vci, "circuit closed")
}
