package fabric

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/segment"
)

// rig is a fabric with n attached hosts, each with a draining receiver
// that releases every delivered wire and counts arrivals per VCI.
type rig struct {
	rt    *occam.Runtime
	net   *atm.Network
	fab   *Fabric
	hosts []*atm.Host
	pool  *segment.WirePool
	got   []map[uint32]int
}

func newRig(t *testing.T, n int, cfg Config) *rig {
	t.Helper()
	rt := occam.NewRuntime()
	r := &rig{
		rt:   rt,
		net:  atm.New(rt),
		fab:  New(rt, "fab", cfg),
		pool: segment.NewWirePool(),
		got:  make([]map[uint32]int, n),
	}
	r.fab.Observe(obs.New(rt))
	for i := 0; i < n; i++ {
		h := r.net.AddHost(string(rune('a' + i)))
		r.fab.Attach(h)
		r.hosts = append(r.hosts, h)
		counts := make(map[uint32]int)
		r.got[i] = counts
		rt.Go(h.Name()+".drain", nil, occam.High, func(p *occam.Proc) {
			for {
				m := h.Rx.Recv(p)
				counts[m.VCI]++
				m.W.Release()
			}
		})
	}
	return r
}

// checkNoWireLeak asserts every wire ref was released. All test wires
// are the same size, so the pool's News counter is exactly the number
// of distinct storage records — and all of them must be back on the
// free list.
func (r *rig) checkNoWireLeak(t *testing.T) {
	t.Helper()
	if free, alloc := r.pool.FreeLen(), int(r.pool.News); free != alloc {
		t.Fatalf("wire leak: %d of %d storage records returned", free, alloc)
	}
}

// send starts a Low-priority sender pushing count segments on vci from
// host src, one per period.
func (r *rig) send(t *testing.T, src int, vci uint32, count int, period time.Duration) {
	t.Helper()
	h := r.hosts[src]
	r.rt.Go(h.Name()+".tx", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < count; i++ {
			p.Sleep(period)
			w := r.pool.Encode(segment.NewAudio(uint32(i), 0, [][]byte{make([]byte, segment.BlockSamples)}))
			if err := h.Send(p, atm.Message{VCI: vci, Size: len(w.Bytes()), W: w}); err != nil {
				w.Release()
				t.Error(err)
			}
		}
	})
}

func TestFabricDeliversAndAccounts(t *testing.T) {
	r := newRig(t, 3, Config{})
	now := occam.Time(0)
	r.fab.Route(now, 10, r.fab.Port(1), false)
	r.fab.Route(now, 11, r.fab.Port(2), false)
	r.send(t, 0, 10, 20, time.Millisecond)
	r.send(t, 0, 11, 20, time.Millisecond)
	if err := r.rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	r.rt.Shutdown()
	if r.got[1][10] != 20 || r.got[2][11] != 20 {
		t.Fatalf("deliveries: host1=%v host2=%v", r.got[1], r.got[2])
	}
	if s := r.fab.Port(1).Stats(); s.Forwarded != 20 {
		t.Fatalf("port 1 stats %+v", s)
	}
	r.checkNoWireLeak(t)
	if d, n := r.fab.Port(1).DeliveryDigest(); n != 20 || d == fnvOffset {
		t.Fatalf("port 1 digest (%#x, %d)", d, n)
	}
}

// TestFabricRouteUpdateMidStream is principle 6: adding and removing a
// destination of a multi-copy stream mid-flight must leave the other
// copy byte-identical to a run where nothing changed.
func TestFabricRouteUpdateMidStream(t *testing.T) {
	run := func(update bool) (digest uint64, delivered uint64, unrouted uint64, lateCount int) {
		r := newRig(t, 4, Config{})
		r.fab.Route(0, 20, r.fab.Port(1), false) // steady copy
		r.fab.Route(0, 21, r.fab.Port(2), false) // copy to be torn down
		r.send(t, 0, 20, 50, time.Millisecond)
		r.send(t, 0, 21, 50, time.Millisecond)
		if update {
			r.rt.Go("reconfig", nil, occam.Low, func(p *occam.Proc) {
				p.Sleep(25 * time.Millisecond)
				r.fab.Unroute(21)
				r.fab.Route(p.Now(), 22, r.fab.Port(3), false) // late-joining destination
				r.send(t, 0, 22, 10, time.Millisecond)
			})
		}
		if err := r.rt.RunUntil(occam.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		r.rt.Shutdown()
		r.checkNoWireLeak(t)
		d, n := r.fab.Port(1).DeliveryDigest()
		return d, n, r.fab.Stats().Unrouted, r.got[3][22]
	}
	baseD, baseN, _, _ := run(false)
	updD, updN, unrouted, late := run(true)
	if updD != baseD || updN != baseN {
		t.Fatalf("steady copy disturbed by reconfiguration: (%#x,%d) vs (%#x,%d)",
			updD, updN, baseD, baseN)
	}
	if unrouted == 0 {
		t.Fatal("expected post-teardown segments on VCI 21 to drop as unrouted")
	}
	if late != 10 {
		t.Fatalf("late-added destination got %d of 10", late)
	}
}

// faultEvery drops every nth message and can stall the port.
type faultEvery struct {
	n     int
	seen  int
	stall occam.Time
}

func (f *faultEvery) OnMessage(now occam.Time, vci uint32, size int) atm.FaultAction {
	f.seen++
	if f.n > 0 && f.seen%f.n == 0 {
		return atm.FaultAction{Drop: true, Reason: "test-loss"}
	}
	return atm.FaultAction{}
}

func (f *faultEvery) StallUntil(now occam.Time) occam.Time { return f.stall }

// TestFabricPortFaultIsolation is principle 5 across the fabric: a
// faulted (lossy and stalled) port must leave delivery on every other
// port byte-identical to a fault-free run.
func TestFabricPortFaultIsolation(t *testing.T) {
	run := func(faulted bool) (clean uint64, cleanN uint64, faultDrops uint64) {
		r := newRig(t, 3, Config{})
		r.fab.Route(0, 30, r.fab.Port(1), true)
		r.fab.Route(0, 31, r.fab.Port(2), true)
		if faulted {
			r.fab.Port(2).SetFault(&faultEvery{n: 3, stall: occam.Time(100 * time.Millisecond)})
		}
		r.send(t, 0, 30, 40, time.Millisecond)
		r.send(t, 0, 31, 40, time.Millisecond)
		if err := r.rt.RunUntil(occam.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		r.rt.Shutdown()
		r.checkNoWireLeak(t)
		d, n := r.fab.Port(1).DeliveryDigest()
		return d, n, r.fab.Port(2).Stats().FaultDrops
	}
	baseD, baseN, _ := run(false)
	gotD, gotN, drops := run(true)
	if gotD != baseD || gotN != baseN {
		t.Fatalf("fault on port 2 disturbed port 1: (%#x,%d) vs (%#x,%d)",
			gotD, gotN, baseD, baseN)
	}
	if drops == 0 {
		t.Fatal("fault hook never fired on port 2")
	}
}

// TestFabricEgressOverflow drives a port past its cell bound and checks
// drop-tail accounting plus full wire recovery.
func TestFabricEgressOverflow(t *testing.T) {
	r := newRig(t, 2, Config{
		PortBandwidth:   1_000_000, // slow port: backlog builds
		EgressCellLimit: 64,
		BatchCells:      16,
	})
	r.fab.Route(0, 40, r.fab.Port(1), true)
	r.send(t, 0, 40, 200, 100*time.Microsecond)
	if err := r.rt.RunUntil(occam.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	r.rt.Shutdown()
	s := r.fab.Port(1).Stats()
	if s.EgressDrops == 0 {
		t.Fatalf("expected egress drops, stats %+v", s)
	}
	if s.Forwarded == 0 || s.Forwarded+s.EgressDrops+s.IngressDrops != 200 {
		t.Fatalf("message conservation violated: %+v", s)
	}
	r.checkNoWireLeak(t)
}

// TestFabricDeterministicReplay: identical runs produce identical
// per-port digests.
func TestFabricDeterministicReplay(t *testing.T) {
	run := func() [2]uint64 {
		r := newRig(t, 3, Config{})
		r.fab.Route(0, 50, r.fab.Port(1), false)
		r.fab.Route(0, 51, r.fab.Port(2), true)
		r.send(t, 0, 50, 30, time.Millisecond)
		r.send(t, 0, 51, 30, 700*time.Microsecond)
		if err := r.rt.RunUntil(occam.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		r.rt.Shutdown()
		d1, _ := r.fab.Port(1).DeliveryDigest()
		d2, _ := r.fab.Port(2).DeliveryDigest()
		return [2]uint64{d1, d2}
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %#x vs %#x", a, b)
	}
}
