package fabric

import (
	"testing"
	"time"

	"repro/internal/occam"
)

// TestRerouteMidStream retargets a live VCI with Reroute while cells
// are in flight — the tree-repair primitive. Route lookup happens at
// crossing end (principle 6), so every sent cell lands on exactly one
// of the two ports: none are lost or duplicated across the switch, and
// the sender's ingress accounting sees every copy.
func TestRerouteMidStream(t *testing.T) {
	r := newRig(t, 3, Config{EgressCellLimit: 256, BatchCells: 8})
	const cells = 400
	r.fab.Route(0, 50, r.fab.Port(1), false)
	r.send(t, 0, 50, cells, 500*time.Microsecond)
	r.rt.Go("reroute", nil, occam.Low, func(p *occam.Proc) {
		p.Sleep(100 * time.Millisecond)
		r.fab.Reroute(p.Now(), 50, r.fab.Port(2), false)
	})
	if err := r.rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	r.rt.Shutdown()
	before, after := r.got[1][50], r.got[2][50]
	if before == 0 || after == 0 {
		t.Fatalf("reroute did not split delivery: %d before, %d after", before, after)
	}
	if before+after != cells {
		t.Fatalf("cells lost or duplicated across the reroute: %d+%d of %d", before, after, cells)
	}
	if got := r.fab.Port(0).IngressCopies()[50]; got != cells {
		t.Fatalf("ingress accounting saw %d cells, sender pushed %d", got, cells)
	}
	r.checkNoWireLeak(t)
}

// TestRerouteInstallsUnrouted: Reroute of a VCI with no existing route
// is a plain install, not a panic — repair may race teardown.
func TestRerouteInstallsUnrouted(t *testing.T) {
	r := newRig(t, 2, Config{})
	r.rt.Go("install", nil, occam.Low, func(p *occam.Proc) {
		r.fab.Reroute(p.Now(), 60, r.fab.Port(1), false)
	})
	r.send(t, 0, 60, 20, time.Millisecond)
	if err := r.rt.RunUntil(occam.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	r.rt.Shutdown()
	if got := r.got[1][60]; got != 20 {
		t.Fatalf("delivered %d of 20 after install-by-reroute", got)
	}
	r.checkNoWireLeak(t)
}
