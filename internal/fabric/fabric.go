// Package fabric is the scale-out ATM switching fabric: an N-port
// cell switch connecting arbitrarily many Pandora boxes, where the
// single shared `internal/atm` link set of the small simulations
// becomes a real contended switch. The paper's boxes hung off
// 20 Mbit/s-per-link ATM switches and the whole design (principles
// 1–8) assumes many boxes contending for shared capacity; the fabric
// is where that contention lives.
//
// Topology: each attached host owns one Port. A message sent by the
// host enters its port's bounded *ingress* queue, crosses the
// crossbar (paced at a configurable speed-up of the port rate, with
// per-VCI routing looked up at crossing time), and lands in the
// destination port's bounded *egress* queue, which a batching
// transmitter drains onto the destination host at the port line rate.
// All queues are drop-tail: upstream never blocks, congestion shows
// up as queue depth and then drops — exactly the atm.Link contract,
// but per port, so a slow or faulted output degrades only its own
// port (principle 5 across the fabric).
//
// The hot path is cell-aware but not cell-granular: a message's 48-byte
// payload cells are accounted (queue bounds and transmission times are
// in cells, including the 5-byte header tax) while the unit moved is
// still one wire descriptor, and the egress transmitter drains whole
// *batches* of queued messages per timer event so a deep backlog costs
// one scheduler wake-up per cell train, not per segment.
//
// Ownership: a message's wire reference rides the descriptor through
// both queues; every drop point (ingress overflow, unrouted VCI, shed
// VCI, injected fault, egress overflow) releases it, and delivery
// transfers it to the receiving host, which releases after its single
// copy-in. The fabric never touches payload bytes except to fold
// delivered bytes into the per-port delivery digest.
//
// Per-port observability (fabric_port_* counters, queue-depth gauges)
// registers into internal/obs; each port implements degrade.Target so
// one overload controller per port sheds the port's own video streams
// oldest-first without disturbing any other port.
package fabric

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/atm"
	"repro/internal/degrade"
	"repro/internal/obs"
	"repro/internal/occam"
)

// ATM cell geometry: 48 payload bytes carried in 53 wire bytes.
const (
	cellPayload = 48
	cellWire    = 53
)

// cells returns the number of ATM cells a message of size bytes
// occupies.
func cells(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + cellPayload - 1) / cellPayload
}

// Config parameterises a Fabric. Zero values select defaults.
type Config struct {
	// PortBandwidth is each port's egress line rate in bits per second
	// (default 100 Mbit/s, the Medusa-era upgrade; the paper's original
	// switches ran 20 Mbit/s per link).
	PortBandwidth int64
	// Propagation is the egress propagation delay per cell train.
	Propagation time.Duration
	// IngressLimit bounds a port's ingress queue in messages
	// (default 64).
	IngressLimit int
	// EgressCellLimit bounds a port's egress queue in cells
	// (default 8192 ≈ 384 KB of payload).
	EgressCellLimit int
	// BatchCells is the egress transmitter's maximum cell train per
	// timer event (default 256 cells ≈ 12 KB). Larger trains cost
	// fewer scheduler wake-ups under backlog but coarsen delivery
	// timing by one train's transmission time.
	BatchCells int
	// XbarSpeedup is the crossbar's service rate as a multiple of
	// PortBandwidth (default 8): the shared backplane is faster than
	// any one port, so sustained congestion collects at egress queues,
	// as in a real output-queued switch.
	XbarSpeedup int
}

func (c Config) withDefaults() Config {
	if c.PortBandwidth <= 0 {
		c.PortBandwidth = 100_000_000
	}
	if c.IngressLimit <= 0 {
		c.IngressLimit = 64
	}
	if c.EgressCellLimit <= 0 {
		c.EgressCellLimit = 8192
	}
	if c.BatchCells <= 0 {
		c.BatchCells = 256
	}
	if c.XbarSpeedup <= 0 {
		c.XbarSpeedup = 8
	}
	return c
}

// route is one VCI's entry in the fabric routing table.
type route struct {
	out    *Port
	video  bool
	opened occam.Time
}

// Fabric is an N-port cell-switched ATM fabric on one runtime.
type Fabric struct {
	rt     *occam.Runtime
	nm     string
	cfg    Config
	ports  []*Port
	routes map[uint32]*route
	reg    *obs.Registry
	trace  *obs.Tracer
}

// New returns an empty fabric named name. Attach ports, install
// routes, then drive the runtime.
func New(rt *occam.Runtime, name string, cfg Config) *Fabric {
	return &Fabric{
		rt:     rt,
		nm:     name,
		cfg:    cfg.withDefaults(),
		routes: make(map[uint32]*route),
	}
}

// Name returns the fabric's name.
func (f *Fabric) Name() string { return f.nm }

// Observe attaches an observability registry: every port (existing and
// future) registers its counters and queue-depth gauges, and routing
// changes and drops are traced.
func (f *Fabric) Observe(reg *obs.Registry) {
	f.reg = reg
	f.trace = reg.Tracer()
	for _, pt := range f.ports {
		pt.observe(reg)
	}
}

// Attach creates the next port, connects h to it (the port becomes the
// host's outgoing transport; deliveries arrive on the host's Rx), and
// returns it.
func (f *Fabric) Attach(h *atm.Host) *Port {
	id := len(f.ports)
	pt := &Port{
		fab:       f,
		id:        id,
		nm:        fmt.Sprintf("%s.p%02d", f.nm, id),
		host:      h,
		in:        occam.NewChan[atm.Message](f.rt, fmt.Sprintf("%s.p%02d.in", f.nm, id)),
		xbarReq:   occam.NewChan[struct{}](f.rt, fmt.Sprintf("%s.p%02d.xreq", f.nm, id)),
		xbarItem:  occam.NewChan[atm.Message](f.rt, fmt.Sprintf("%s.p%02d.xitem", f.nm, id)),
		egIn:      occam.NewChan[atm.Message](f.rt, fmt.Sprintf("%s.p%02d.egin", f.nm, id)),
		txReq:     occam.NewChan[struct{}](f.rt, fmt.Sprintf("%s.p%02d.txreq", f.nm, id)),
		txItem:    occam.NewChan[[]atm.Message](f.rt, fmt.Sprintf("%s.p%02d.txitem", f.nm, id)),
		shed:      make(map[uint32]bool),
		perVCI:    make(map[uint32]*vciDigest),
		forwarded: obs.NewCounter(),
		bytes:     obs.NewCounter(),
		cellsTx:   obs.NewCounter(),
		inDrops:   obs.NewCounter(),
		egDrops:   obs.NewCounter(),
		unrouted:  obs.NewCounter(),
		shedDrops: obs.NewCounter(),
		faultDrop: obs.NewCounter(),
		faultCorr: obs.NewCounter(),
		faultDup:  obs.NewCounter(),
		faultDel:  obs.NewCounter(),
		faultStal: obs.NewCounter(),
	}
	f.ports = append(f.ports, pt)
	if f.reg != nil {
		pt.observe(f.reg)
	}
	h.SetTransport(pt)
	f.rt.Go(pt.nm+".ingress", nil, occam.High, pt.runIngress)
	f.rt.Go(pt.nm+".xbar", nil, occam.High, pt.runXbar)
	f.rt.Go(pt.nm+".egress", nil, occam.High, pt.runEgress)
	f.rt.Go(pt.nm+".tx", nil, occam.High, pt.runTx)
	return pt
}

// Port returns port i.
func (f *Fabric) Port(i int) *Port { return f.ports[i] }

// Ports returns the ports in attach order (already deterministic).
func (f *Fabric) Ports() []*Port { return append([]*Port(nil), f.ports...) }

// Route installs VCI vci toward port to. The video flag and open time
// feed the per-port overload controllers' shed ranking (video before
// audio, oldest first). Installing a VCI that is already routed to a
// *different* port is a programming error, exactly as on atm links;
// re-installing the same mapping is an idempotent no-op. The table is
// consulted per message at crossbar time, so an installation takes
// effect between segments without disturbing any other VCI
// (principle 6).
func (f *Fabric) Route(now occam.Time, vci uint32, to *Port, video bool) {
	if old, ok := f.routes[vci]; ok {
		if old.out != to {
			panic(fmt.Sprintf("fabric: %s: VCI %d already routed to %s (conflicting route to %s)",
				f.nm, vci, old.out.nm, to.nm))
		}
		return
	}
	f.routes[vci] = &route{out: to, video: video, opened: now}
	f.trace.Emit(obs.EvStreamOpen, f.nm, vci, "routed to "+to.nm)
}

// Unroute removes a VCI. Messages already crossing for it are dropped
// at the crossbar ("unrouted", as on a torn-down circuit); every other
// VCI is untouched (principle 6).
func (f *Fabric) Unroute(vci uint32) {
	r, ok := f.routes[vci]
	if !ok {
		return
	}
	delete(f.routes, vci)
	delete(r.out.shed, vci)
	f.trace.Emit(obs.EvStreamClose, f.nm, vci, "unrouted from "+r.out.nm)
}

// EnableDegradation starts one overload controller per port
// (principle 8: each port adapts to its own conditions; there is no
// fabric-wide coordinator). Each controller watches only its own
// port's egress queue gauge and sheds only streams routed to that
// port, so a congested port degrades without disturbing any other
// (principle 5). Returns the controllers keyed by port name.
func (f *Fabric) EnableDegradation(cfg degrade.Config, reg *obs.Registry) map[string]*degrade.Controller {
	out := make(map[string]*degrade.Controller, len(f.ports))
	for _, pt := range f.ports {
		pcfg := cfg
		pcfg.Ports = []string{pt.nm}
		out[pt.nm] = degrade.New(f.rt, pt, pcfg, reg)
	}
	return out
}

// PortStats is one port's traffic history.
type PortStats struct {
	Forwarded    uint64 // messages delivered to the host
	Bytes        uint64 // payload bytes delivered
	Cells        uint64 // cells transmitted
	IngressDrops uint64 // ingress queue overflow
	EgressDrops  uint64 // egress queue overflow
	Unrouted     uint64 // dropped at the crossbar: no route
	ShedDrops    uint64 // dropped by the port's overload controller
	FaultDrops   uint64
	FaultCorrupt uint64
	FaultDups    uint64
	FaultDelays  uint64
	FaultStalls  uint64
}

// Stats sums every port's counters.
func (f *Fabric) Stats() PortStats {
	var t PortStats
	for _, pt := range f.ports {
		s := pt.Stats()
		t.Forwarded += s.Forwarded
		t.Bytes += s.Bytes
		t.Cells += s.Cells
		t.IngressDrops += s.IngressDrops
		t.EgressDrops += s.EgressDrops
		t.Unrouted += s.Unrouted
		t.ShedDrops += s.ShedDrops
		t.FaultDrops += s.FaultDrops
		t.FaultCorrupt += s.FaultCorrupt
		t.FaultDups += s.FaultDups
		t.FaultDelays += s.FaultDelays
		t.FaultStalls += s.FaultStalls
	}
	return t
}

// Port is one fabric port: the attachment point of one host, with its
// own bounded ingress and egress queues, crossbar process, batching
// egress transmitter, optional fault hook and overload controller.
type Port struct {
	fab  *Fabric
	id   int
	nm   string
	host *atm.Host

	in       *occam.Chan[atm.Message]
	xbarReq  *occam.Chan[struct{}]
	xbarItem *occam.Chan[atm.Message]
	egIn     *occam.Chan[atm.Message]
	txReq    *occam.Chan[struct{}]
	txItem   *occam.Chan[[]atm.Message]

	inq     []atm.Message
	egq     []atm.Message
	egCells int
	batch   []atm.Message // reusable egress batch buffer

	shed  map[uint32]bool
	fault atm.FaultHook

	// perVCI folds each stream's delivered (corrupt flag, chunk ids,
	// payload bytes) in delivery order — the per-port evidence the
	// isolation experiments compare across runs. The digest is kept per
	// stream because the cross-stream interleave at a port is timing,
	// not data: a busy receiving box legitimately shifts when its own
	// transmissions land elsewhere, without changing any byte of any
	// stream.
	perVCI    map[uint32]*vciDigest
	delivered uint64

	forwarded *obs.Counter
	bytes     *obs.Counter
	cellsTx   *obs.Counter
	inDrops   *obs.Counter
	egDrops   *obs.Counter
	unrouted  *obs.Counter
	shedDrops *obs.Counter
	faultDrop *obs.Counter
	faultCorr *obs.Counter
	faultDup  *obs.Counter
	faultDel  *obs.Counter
	faultStal *obs.Counter
}

// Name returns the port name (the obs "port" label value).
func (pt *Port) Name() string { return pt.nm }

// HostName returns the attached host's name.
func (pt *Port) HostName() string { return pt.host.Name() }

// Stats returns a copy of the port's counters.
func (pt *Port) Stats() PortStats {
	return PortStats{
		Forwarded:    pt.forwarded.Value(),
		Bytes:        pt.bytes.Value(),
		Cells:        pt.cellsTx.Value(),
		IngressDrops: pt.inDrops.Value(),
		EgressDrops:  pt.egDrops.Value(),
		Unrouted:     pt.unrouted.Value(),
		ShedDrops:    pt.shedDrops.Value(),
		FaultDrops:   pt.faultDrop.Value(),
		FaultCorrupt: pt.faultCorr.Value(),
		FaultDups:    pt.faultDup.Value(),
		FaultDelays:  pt.faultDel.Value(),
		FaultStalls:  pt.faultStal.Value(),
	}
}

// DeliveryDigest returns an FNV-1a digest over everything the port has
// delivered, plus the delivery count. Each stream is digested in its
// own delivery order and the per-stream digests are combined in VCI
// order, so the digest pins every delivered byte of every stream while
// staying indifferent to how the streams happened to interleave. Two
// runs in which this port's streams each saw identical traffic produce
// identical digests regardless of what happened on other ports.
func (pt *Port) DeliveryDigest() (digest uint64, delivered uint64) {
	vcis := make([]uint32, 0, len(pt.perVCI))
	for vci := range pt.perVCI {
		vcis = append(vcis, vci)
	}
	sort.Slice(vcis, func(i, j int) bool { return vcis[i] < vcis[j] })
	h := uint64(fnvOffset)
	for _, vci := range vcis {
		d := pt.perVCI[vci]
		h ^= uint64(vci)
		h *= fnvPrime
		h ^= d.digest
		h *= fnvPrime
		h ^= d.count
		h *= fnvPrime
	}
	return h, pt.delivered
}

// StreamDigests returns each delivered stream's (digest, count) at
// this port — DeliveryDigest broken out per VCI.
func (pt *Port) StreamDigests() map[uint32][2]uint64 {
	out := make(map[uint32][2]uint64, len(pt.perVCI))
	for vci, d := range pt.perVCI {
		out[vci] = [2]uint64{d.digest, d.count}
	}
	return out
}

// SetFault attaches a fault process to the port's egress (nil
// detaches): every message routed *to* this port consults the hook on
// egress arrival, and the transmitter consults StallUntil before each
// cell train — so an injected fault, like real port trouble, stays on
// its own port.
func (pt *Port) SetFault(h atm.FaultHook) { pt.fault = h }

// observe registers the port's instruments under the obs "port" label.
func (pt *Port) observe(reg *obs.Registry) {
	lb := obs.L("port", pt.nm)
	reg.RegisterCounter("fabric_port_forwarded_total", pt.forwarded, lb)
	reg.RegisterCounter("fabric_port_bytes_total", pt.bytes, lb)
	reg.RegisterCounter("fabric_port_cells_total", pt.cellsTx, lb)
	reg.RegisterCounter("fabric_port_ingress_drops_total", pt.inDrops, lb)
	reg.RegisterCounter("fabric_port_egress_drops_total", pt.egDrops, lb)
	reg.RegisterCounter("fabric_port_unrouted_total", pt.unrouted, lb)
	reg.RegisterCounter("fabric_port_shed_drops_total", pt.shedDrops, lb)
	reg.RegisterCounter("fabric_port_fault_drops_total", pt.faultDrop, lb)
	reg.RegisterCounter("fabric_port_fault_corruptions_total", pt.faultCorr, lb)
	reg.RegisterCounter("fabric_port_fault_duplicates_total", pt.faultDup, lb)
	reg.RegisterCounter("fabric_port_fault_delays_total", pt.faultDel, lb)
	reg.RegisterCounter("fabric_port_fault_stalls_total", pt.faultStal, lb)
	reg.GaugeFunc("fabric_port_ingress_depth", func() float64 { return float64(len(pt.inq)) }, lb)
	reg.GaugeFunc("fabric_port_ingress_limit", func() float64 { return float64(pt.fab.cfg.IngressLimit) }, lb)
	reg.GaugeFunc("fabric_port_queue_depth", func() float64 { return float64(pt.egCells) }, lb)
	reg.GaugeFunc("fabric_port_queue_limit", func() float64 { return float64(pt.fab.cfg.EgressCellLimit) }, lb)
}

// TransportName implements atm.Transport.
func (pt *Port) TransportName() string { return "fabric:" + pt.nm }

// Send implements atm.Transport: the attached host's outgoing messages
// enter this port's ingress queue (which always accepts and drops on
// overflow, so the sender never blocks on fabric congestion).
func (pt *Port) Send(p *occam.Proc, m atm.Message) error {
	pt.in.Send(p, m)
	return nil
}

// runIngress owns the bounded ingress queue: it always accepts from
// the host side (drop-tail on overflow) and feeds the crossbar.
func (pt *Port) runIngress(p *occam.Proc) {
	var (
		m   atm.Message
		req struct{}
	)
	xbarReady := occam.NewCond(occam.Recv(pt.xbarReq, &req))
	guards := []occam.Guard{xbarReady, occam.Recv(pt.in, &m)}
	for {
		xbarReady.Set(len(pt.inq) > 0)
		switch p.Alt(guards...) {
		case 0:
			head := pt.inq[0]
			copy(pt.inq, pt.inq[1:])
			pt.inq[len(pt.inq)-1] = atm.Message{}
			pt.inq = pt.inq[:len(pt.inq)-1]
			pt.xbarItem.Send(p, head)
		case 1:
			if len(pt.inq) >= pt.fab.cfg.IngressLimit {
				pt.inDrops.Inc()
				pt.fab.trace.Emit(obs.EvDrop, pt.nm, m.VCI, "ingress-overflow")
				m.W.Release()
				continue
			}
			pt.inq = append(pt.inq, m)
		}
	}
}

// runXbar crosses one message at a time at the backplane rate, looks
// its VCI up in the fabric routing table and hands it to the
// destination port's egress queue (which always accepts).
func (pt *Port) runXbar(p *occam.Proc) {
	var token struct{}
	bw := pt.fab.cfg.PortBandwidth * int64(pt.fab.cfg.XbarSpeedup)
	for {
		pt.xbarReq.Send(p, token)
		m := pt.xbarItem.Recv(p)
		n := cells(m.Size)
		p.Sleep(time.Duration(int64(n) * cellWire * 8 * int64(time.Second) / bw))
		r, ok := pt.fab.routes[m.VCI]
		if !ok {
			pt.unrouted.Inc()
			pt.fab.trace.Emit(obs.EvDrop, pt.nm, m.VCI, "unrouted")
			m.W.Release()
			continue
		}
		r.out.egIn.Send(p, m)
	}
}

// egAccept applies the egress-side admission pipeline to one arriving
// message: the port's shed bar first (the overload controller stops a
// stream before it consumes fault RNG or queue space), then the fault
// hook, then the cell bound. It returns with the message either queued
// (possibly twice, for an injected duplicate) or released.
func (pt *Port) egAccept(p *occam.Proc, m atm.Message) {
	if pt.shed[m.VCI] {
		pt.shedDrops.Inc()
		pt.fab.trace.Emit(obs.EvDrop, pt.nm, m.VCI, "degrade-shed")
		m.W.Release()
		return
	}
	dup := false
	if pt.fault != nil {
		act := pt.fault.OnMessage(p.Now(), m.VCI, m.Size)
		if act.Drop {
			reason := act.Reason
			if reason == "" {
				reason = "injected-loss"
			}
			pt.faultDrop.Inc()
			pt.fab.trace.Emit(obs.EvFault, pt.nm, m.VCI, reason)
			m.W.Release()
			return
		}
		if act.Corrupt {
			m.Corrupt = true
			pt.faultCorr.Inc()
			pt.fab.trace.Emit(obs.EvFault, pt.nm, m.VCI, "injected-corruption")
		}
		if act.Delay > 0 {
			m.FaultDelay += act.Delay
			pt.faultDel.Inc()
		}
		dup = act.Duplicate
	}
	n := cells(m.Size)
	if pt.egCells+n > pt.fab.cfg.EgressCellLimit {
		pt.egDrops.Inc()
		pt.fab.trace.Emit(obs.EvDrop, pt.nm, m.VCI, "egress-overflow")
		m.W.Release()
		return
	}
	pt.egq = append(pt.egq, m)
	pt.egCells += n
	if dup && pt.egCells+n <= pt.fab.cfg.EgressCellLimit {
		// The duplicate is a second full message with its own wire
		// reference, under the same cell bound.
		m.W.Retain(1)
		pt.egq = append(pt.egq, m)
		pt.egCells += n
		pt.faultDup.Inc()
		pt.fab.trace.Emit(obs.EvFault, pt.nm, m.VCI, "injected-duplicate")
	}
}

// runEgress owns the bounded egress queue: it always accepts from the
// crossbars and feeds the transmitter one batch (cell train) at a
// time.
func (pt *Port) runEgress(p *occam.Proc) {
	var (
		m   atm.Message
		req struct{}
	)
	txReady := occam.NewCond(occam.Recv(pt.txReq, &req))
	guards := []occam.Guard{txReady, occam.Recv(pt.egIn, &m)}
	for {
		txReady.Set(len(pt.egq) > 0)
		switch p.Alt(guards...) {
		case 0:
			// Slice a cell train off the head of the queue: at least one
			// message, then as many more as fit in BatchCells. The batch
			// buffer is reused — the transmitter finishes with it before
			// its next request.
			pt.batch = pt.batch[:0]
			got := 0
			for len(pt.egq) > 0 {
				n := cells(pt.egq[0].Size)
				if got > 0 && got+n > pt.fab.cfg.BatchCells {
					break
				}
				got += n
				pt.batch = append(pt.batch, pt.egq[0])
				copy(pt.egq, pt.egq[1:])
				pt.egq[len(pt.egq)-1] = atm.Message{}
				pt.egq = pt.egq[:len(pt.egq)-1]
			}
			pt.egCells -= got
			pt.txItem.Send(p, pt.batch)
		case 1:
			pt.egAccept(p, m)
		}
	}
}

// runTx transmits cell trains at the port line rate and delivers to
// the attached host. One sleep covers the whole train — the batching
// that keeps a congested port at one scheduler wake-up per train.
func (pt *Port) runTx(p *occam.Proc) {
	var token struct{}
	cfg := pt.fab.cfg
	for {
		pt.txReq.Send(p, token)
		batch := pt.txItem.Recv(p)
		if pt.fault != nil {
			if until := pt.fault.StallUntil(p.Now()); until > p.Now() {
				// The port transmitter is wedged: queued cells wait out
				// the outage on this port alone.
				pt.faultStal.Inc()
				pt.fab.trace.Emit(obs.EvFault, pt.nm, 0, "port-stall")
				p.SleepUntil(until)
			}
		}
		var (
			totalCells int
			maxDelay   time.Duration
		)
		for i := range batch {
			totalCells += cells(batch[i].Size)
			if batch[i].FaultDelay > maxDelay {
				maxDelay = batch[i].FaultDelay
			}
		}
		tx := time.Duration(int64(totalCells) * cellWire * 8 * int64(time.Second) / cfg.PortBandwidth)
		p.Sleep(tx + cfg.Propagation + maxDelay)
		for i := range batch {
			m := batch[i]
			pt.forwarded.Inc()
			pt.bytes.Add(uint64(m.Size))
			pt.cellsTx.Add(uint64(cells(m.Size)))
			pt.fold(m)
			pt.host.Deliver(p, m)
			batch[i] = atm.Message{}
		}
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// vciDigest is one stream's running delivery digest at one port.
type vciDigest struct {
	digest uint64
	count  uint64
}

// fold mixes one delivered message into its stream's digest.
func (pt *Port) fold(m atm.Message) {
	d, ok := pt.perVCI[m.VCI]
	if !ok {
		d = &vciDigest{digest: fnvOffset}
		pt.perVCI[m.VCI] = d
	}
	h := d.digest
	if m.Corrupt {
		h ^= 1
		h *= fnvPrime
	}
	h ^= uint64(m.ChunkIndex)<<16 | uint64(m.ChunkTotal)
	h *= fnvPrime
	for _, b := range m.W.Bytes() {
		h ^= uint64(b)
		h *= fnvPrime
	}
	d.digest = h
	d.count++
	pt.delivered++
}

// --- degrade.Target: per-port overload levers ---

// DegradeName implements degrade.Target.
func (pt *Port) DegradeName() string { return pt.nm }

// DegradeStreams implements degrade.Target: the VCIs currently routed
// to this port, in VCI order for deterministic controller decisions.
// Every fabric stream is incoming from the port's point of view — it
// is traffic about to be delivered to the attached box.
func (pt *Port) DegradeStreams() []degrade.StreamInfo {
	ids := make([]uint32, 0, 8)
	for vci, r := range pt.fab.routes {
		if r.out == pt {
			ids = append(ids, vci)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]degrade.StreamInfo, 0, len(ids))
	for _, vci := range ids {
		r := pt.fab.routes[vci]
		out = append(out, degrade.StreamInfo{
			ID: vci, Video: r.video, Incoming: true, Opened: r.opened,
		})
	}
	return out
}

// DegradeVideoBuffers implements degrade.Target: a port has no
// decoupling buffers; its pressure signal is the egress queue gauge
// named in the controller's Ports config.
func (pt *Port) DegradeVideoBuffers() []string { return nil }

// DegradeAudioBuffers implements degrade.Target. Always empty: port
// congestion is relieved by shedding video (principle 2), so a port
// controller never has audio pressure and never sheds audio.
func (pt *Port) DegradeAudioBuffers() []string { return nil }

// DegradeShed implements degrade.Target: bar the VCI at this port's
// egress. The source box keeps transmitting (it is not this port's to
// command — principle 8 is local adaptation), the crossbar keeps
// switching, and the cells die here, on the congested port alone.
func (pt *Port) DegradeShed(p *occam.Proc, id uint32) { pt.shed[id] = true }

// DegradeRestore implements degrade.Target.
func (pt *Port) DegradeRestore(p *occam.Proc, id uint32) { delete(pt.shed, id) }

// DegradeRepositoryOrder implements degrade.Target.
func (pt *Port) DegradeRepositoryOrder() bool { return false }
