// Package fabric is the scale-out ATM switching fabric: an N-port
// cell switch connecting arbitrarily many Pandora boxes, where the
// single shared `internal/atm` link set of the small simulations
// becomes a real contended switch. The paper's boxes hung off
// 20 Mbit/s-per-link ATM switches and the whole design (principles
// 1–8) assumes many boxes contending for shared capacity; the fabric
// is where that contention lives.
//
// Topology: each attached host owns one Port. A message sent by the
// host enters its port's bounded *ingress* queue, crosses the
// crossbar (paced at a configurable speed-up of the port rate, with
// per-VCI routing looked up at crossing time), and lands in the
// destination port's bounded *egress* queue, which a batching
// transmitter drains onto the destination host at the port line rate.
// All queues are drop-tail: upstream never blocks, congestion shows
// up as queue depth and then drops — exactly the atm.Link contract,
// but per port, so a slow or faulted output degrades only its own
// port (principle 5 across the fabric).
//
// The hot path is cell-aware but not cell-granular: a message's 48-byte
// payload cells are accounted (queue bounds and transmission times are
// in cells, including the 5-byte header tax) while the unit moved is
// still one wire descriptor, and the egress transmitter drains whole
// *batches* of queued messages per timer event so a deep backlog costs
// one scheduler wake-up per cell train, not per segment.
//
// Engine: the fabric is *passive* — it owns no processes except one
// transmitter per port. Each port's crossbar shard is a self-
// perpetuating occam.Timer chain: ingress admission runs inline in the
// sending host's process, the crossing-end callback routes the message
// (dense per-VCI table, no allocation) and applies the destination
// port's admission pipeline, and only delivery — which must be able to
// block on host backpressure — happens in the port's transmitter
// process, woken by an occam.Signal when an arrival starts a new cell
// train. Per message the fabric costs two timer events (one crossing,
// amortised share of one train) instead of the eight-plus park/wake
// handshakes of a process-per-stage pipeline, and the ports' shards
// are independent: port A's backlog never wakes port B's code.
//
// Ownership: a message's wire reference rides the descriptor through
// both queues; every drop point (ingress overflow, unrouted VCI, shed
// VCI, injected fault, egress overflow) releases it, and delivery
// transfers it to the receiving host, which releases after its single
// copy-in. The fabric never touches payload bytes except to fold
// delivered bytes into the per-port delivery digest.
//
// Per-port observability (fabric_port_* counters, queue-depth gauges)
// registers into internal/obs; each port implements degrade.Target so
// one overload controller per port sheds the port's own video streams
// oldest-first without disturbing any other port.
package fabric

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/atm"
	"repro/internal/degrade"
	"repro/internal/obs"
	"repro/internal/occam"
)

// ATM cell geometry: 48 payload bytes carried in 53 wire bytes.
const (
	cellPayload = 48
	cellWire    = 53
)

// cells returns the number of ATM cells a message of size bytes
// occupies.
func cells(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + cellPayload - 1) / cellPayload
}

// Config parameterises a Fabric. Zero values select defaults.
type Config struct {
	// PortBandwidth is each port's egress line rate in bits per second
	// (default 100 Mbit/s, the Medusa-era upgrade; the paper's original
	// switches ran 20 Mbit/s per link).
	PortBandwidth int64
	// Propagation is the egress propagation delay per cell train.
	Propagation time.Duration
	// IngressLimit bounds a port's ingress queue in messages
	// (default 64).
	IngressLimit int
	// EgressCellLimit bounds a port's egress queue in cells
	// (default 8192 ≈ 384 KB of payload).
	EgressCellLimit int
	// BatchCells is the egress transmitter's maximum cell train per
	// timer event (default 256 cells ≈ 12 KB). Larger trains cost
	// fewer scheduler wake-ups under backlog but coarsen delivery
	// timing by one train's transmission time.
	BatchCells int
	// XbarSpeedup is the crossbar's service rate as a multiple of
	// PortBandwidth (default 8): the shared backplane is faster than
	// any one port, so sustained congestion collects at egress queues,
	// as in a real output-queued switch.
	XbarSpeedup int
}

func (c Config) withDefaults() Config {
	if c.PortBandwidth <= 0 {
		c.PortBandwidth = 100_000_000
	}
	if c.IngressLimit <= 0 {
		c.IngressLimit = 64
	}
	if c.EgressCellLimit <= 0 {
		c.EgressCellLimit = 8192
	}
	if c.BatchCells <= 0 {
		c.BatchCells = 256
	}
	if c.XbarSpeedup <= 0 {
		c.XbarSpeedup = 8
	}
	return c
}

// route is one VCI's entry in the fabric routing table.
type route struct {
	out    *Port
	video  bool
	opened occam.Time
}

// routeTabMax bounds the dense routing table: VCIs below this live in
// a slice indexed directly by VCI (the allocation-free per-cell
// lookup); pathological VCIs above it fall back to the map.
const routeTabMax = 1 << 20

// Fabric is an N-port cell-switched ATM fabric on one runtime.
type Fabric struct {
	rt       *occam.Runtime
	nm       string
	cfg      Config
	ports    []*Port
	routes   map[uint32]*route // full table: iteration + high-VCI fallback
	routeTab []*route          // dense by VCI: the per-cell fast path
	reg      *obs.Registry
	trace    *obs.Tracer
}

// New returns an empty fabric named name. Attach ports, install
// routes, then drive the runtime.
func New(rt *occam.Runtime, name string, cfg Config) *Fabric {
	return &Fabric{
		rt:     rt,
		nm:     name,
		cfg:    cfg.withDefaults(),
		routes: make(map[uint32]*route),
	}
}

// Name returns the fabric's name.
func (f *Fabric) Name() string { return f.nm }

// Observe attaches an observability registry: every port (existing and
// future) registers its counters and queue-depth gauges, and routing
// changes and drops are traced.
func (f *Fabric) Observe(reg *obs.Registry) {
	f.reg = reg
	f.trace = reg.Tracer()
	for _, pt := range f.ports {
		pt.observe(reg)
	}
}

// Attach creates the next port, connects h to it (the port becomes the
// host's outgoing transport; deliveries arrive on the host's Rx), and
// returns it.
func (f *Fabric) Attach(h *atm.Host) *Port {
	id := len(f.ports)
	pt := &Port{
		fab:       f,
		id:        id,
		nm:        fmt.Sprintf("%s.p%02d", f.nm, id),
		host:      h,
		shed:      make(map[uint32]bool),
		perVCI:    make(map[uint32]*vciDigest),
		inByVCI:   make(map[uint32]uint64),
		forwarded: obs.NewCounter(),
		bytes:     obs.NewCounter(),
		cellsTx:   obs.NewCounter(),
		inDrops:   obs.NewCounter(),
		egDrops:   obs.NewCounter(),
		unrouted:  obs.NewCounter(),
		shedDrops: obs.NewCounter(),
		faultDrop: obs.NewCounter(),
		faultCorr: obs.NewCounter(),
		faultDup:  obs.NewCounter(),
		faultDel:  obs.NewCounter(),
		faultStal: obs.NewCounter(),
	}
	pt.crossTimer = occam.NewTimer(f.rt, pt.crossDone)
	pt.txWake = occam.NewTimer(f.rt, func(s occam.Sched) { s.Raise(pt.txSig) })
	pt.txSig = occam.NewSignal(f.rt, pt.nm+".txwake")
	f.ports = append(f.ports, pt)
	if f.reg != nil {
		pt.observe(f.reg)
	}
	h.SetTransport(pt)
	f.rt.Go(pt.nm+".tx", nil, occam.High, pt.runTx)
	return pt
}

// Port returns port i.
func (f *Fabric) Port(i int) *Port { return f.ports[i] }

// Ports returns the ports in attach order (already deterministic).
func (f *Fabric) Ports() []*Port { return append([]*Port(nil), f.ports...) }

// Route installs VCI vci toward port to. The video flag and open time
// feed the per-port overload controllers' shed ranking (video before
// audio, oldest first). Installing a VCI that is already routed to a
// *different* port is a programming error, exactly as on atm links;
// re-installing the same mapping is an idempotent no-op. The table is
// consulted per message at crossbar time, so an installation takes
// effect between segments without disturbing any other VCI
// (principle 6).
func (f *Fabric) Route(now occam.Time, vci uint32, to *Port, video bool) {
	if old, ok := f.routes[vci]; ok {
		if old.out != to {
			panic(fmt.Sprintf("fabric: %s: VCI %d already routed to %s (conflicting route to %s)",
				f.nm, vci, old.out.nm, to.nm))
		}
		return
	}
	r := &route{out: to, video: video, opened: now}
	f.routes[vci] = r
	if vci < routeTabMax {
		if int(vci) >= len(f.routeTab) {
			tab := make([]*route, vci+1, (vci+1)*2)
			copy(tab, f.routeTab)
			f.routeTab = tab
		}
		f.routeTab[vci] = r
	}
	f.trace.Emit(obs.EvStreamOpen, f.nm, vci, "routed to "+to.nm)
}

// Unroute removes a VCI. Messages already crossing for it are dropped
// at the crossbar ("unrouted", as on a torn-down circuit); every other
// VCI is untouched (principle 6).
func (f *Fabric) Unroute(vci uint32) {
	r, ok := f.routes[vci]
	if !ok {
		return
	}
	delete(f.routes, vci)
	if int(vci) < len(f.routeTab) {
		f.routeTab[vci] = nil
	}
	delete(r.out.shed, vci)
	f.trace.Emit(obs.EvStreamClose, f.nm, vci, "unrouted from "+r.out.nm)
}

// Reroute retargets an existing VCI onto a different port — the
// mid-stream rewiring a distribution-tree repair performs when an
// orphaned subtree is re-parented. Messages already crossing resolve
// the route at crossing end, so the switch applies cleanly between
// messages (principle 6); there is no conflicting-route panic because
// replacing the target is exactly the point. A VCI not currently
// routed is simply installed.
func (f *Fabric) Reroute(now occam.Time, vci uint32, to *Port, video bool) {
	f.Unroute(vci)
	f.Route(now, vci, to, video)
}

// lookup is the per-cell route lookup: a slice index for every VCI the
// dense table covers, the map only for the pathological remainder.
func (f *Fabric) lookup(vci uint32) *route {
	if int(vci) < len(f.routeTab) {
		return f.routeTab[vci]
	}
	if vci < routeTabMax {
		return nil
	}
	return f.routes[vci]
}

// EnableDegradation starts one overload controller per port
// (principle 8: each port adapts to its own conditions; there is no
// fabric-wide coordinator). Each controller watches only its own
// port's egress queue gauge and sheds only streams routed to that
// port, so a congested port degrades without disturbing any other
// (principle 5). Returns the controllers keyed by port name.
func (f *Fabric) EnableDegradation(cfg degrade.Config, reg *obs.Registry) map[string]*degrade.Controller {
	out := make(map[string]*degrade.Controller, len(f.ports))
	for _, pt := range f.ports {
		pcfg := cfg
		pcfg.Ports = []string{pt.nm}
		out[pt.nm] = degrade.New(f.rt, pt, pcfg, reg)
	}
	return out
}

// PortStats is one port's traffic history.
type PortStats struct {
	Forwarded    uint64 // messages delivered to the host
	Bytes        uint64 // payload bytes delivered
	Cells        uint64 // cells transmitted
	IngressDrops uint64 // ingress queue overflow
	EgressDrops  uint64 // egress queue overflow
	Unrouted     uint64 // dropped at the crossbar: no route
	ShedDrops    uint64 // dropped by the port's overload controller
	FaultDrops   uint64
	FaultCorrupt uint64
	FaultDups    uint64
	FaultDelays  uint64
	FaultStalls  uint64
}

// Stats sums every port's counters.
func (f *Fabric) Stats() PortStats {
	var t PortStats
	for _, pt := range f.ports {
		s := pt.Stats()
		t.Forwarded += s.Forwarded
		t.Bytes += s.Bytes
		t.Cells += s.Cells
		t.IngressDrops += s.IngressDrops
		t.EgressDrops += s.EgressDrops
		t.Unrouted += s.Unrouted
		t.ShedDrops += s.ShedDrops
		t.FaultDrops += s.FaultDrops
		t.FaultCorrupt += s.FaultCorrupt
		t.FaultDups += s.FaultDups
		t.FaultDelays += s.FaultDelays
		t.FaultStalls += s.FaultStalls
	}
	return t
}

// Port is one fabric port: the attachment point of one host, with its
// own bounded ingress and egress queues, crossbar timer chain, and
// batching egress transmitter process, plus optional fault hook and
// overload controller.
//
// Queue/engine state is touched from two contexts — attached
// processes (Send, runTx, the degrade controller's gauge reads) and
// crossing-end timer callbacks — which the occam runtime serialises;
// see the occam scheduler-context rules.
type Port struct {
	fab  *Fabric
	id   int
	nm   string
	host *atm.Host

	// Ingress shard: the queue of messages waiting for the crossbar,
	// plus the one message in flight across it. crossTimer fires at the
	// in-flight message's crossing end; the chain re-arms itself while
	// the queue is non-empty.
	inq        []atm.Message
	crossing   atm.Message
	crossBusy  bool
	crossTimer *occam.Timer

	// Egress shard: the bounded cell queue, the train being
	// transmitted, and the transmitter process. txBusy covers the whole
	// train lifecycle (pacing + delivery); txWake fires at train end
	// and raises txSig to hand the sliced train to runTx for delivery.
	egq     []atm.Message
	egCells int
	batch   []atm.Message // current cell train (reused)
	txBusy  bool
	txWake  *occam.Timer
	txSig   *occam.Signal

	shed  map[uint32]bool
	fault atm.FaultHook

	// inByVCI counts messages the attached host offered at this port's
	// ingress, per VCI — the per-hop copy accounting: the number of
	// distinct VCIs a box's port carries inbound-to-fabric is exactly
	// how many copies that box fans out, so an interior tree box's
	// bound (≤ K) is checkable hop by hop.
	inByVCI map[uint32]uint64

	// perVCI folds each stream's delivered (corrupt flag, chunk ids,
	// payload bytes) in delivery order — the per-port evidence the
	// isolation experiments compare across runs. The digest is kept per
	// stream because the cross-stream interleave at a port is timing,
	// not data: a busy receiving box legitimately shifts when its own
	// transmissions land elsewhere, without changing any byte of any
	// stream.
	perVCI    map[uint32]*vciDigest
	delivered uint64

	forwarded *obs.Counter
	bytes     *obs.Counter
	cellsTx   *obs.Counter
	inDrops   *obs.Counter
	egDrops   *obs.Counter
	unrouted  *obs.Counter
	shedDrops *obs.Counter
	faultDrop *obs.Counter
	faultCorr *obs.Counter
	faultDup  *obs.Counter
	faultDel  *obs.Counter
	faultStal *obs.Counter
}

// Name returns the port name (the obs "port" label value).
func (pt *Port) Name() string { return pt.nm }

// HostName returns the attached host's name.
func (pt *Port) HostName() string { return pt.host.Name() }

// Stats returns a copy of the port's counters.
func (pt *Port) Stats() PortStats {
	return PortStats{
		Forwarded:    pt.forwarded.Value(),
		Bytes:        pt.bytes.Value(),
		Cells:        pt.cellsTx.Value(),
		IngressDrops: pt.inDrops.Value(),
		EgressDrops:  pt.egDrops.Value(),
		Unrouted:     pt.unrouted.Value(),
		ShedDrops:    pt.shedDrops.Value(),
		FaultDrops:   pt.faultDrop.Value(),
		FaultCorrupt: pt.faultCorr.Value(),
		FaultDups:    pt.faultDup.Value(),
		FaultDelays:  pt.faultDel.Value(),
		FaultStalls:  pt.faultStal.Value(),
	}
}

// DeliveryDigest returns an FNV-1a digest over everything the port has
// delivered, plus the delivery count. Each stream is digested in its
// own delivery order and the per-stream digests are combined in VCI
// order, so the digest pins every delivered byte of every stream while
// staying indifferent to how the streams happened to interleave. Two
// runs in which this port's streams each saw identical traffic produce
// identical digests regardless of what happened on other ports.
func (pt *Port) DeliveryDigest() (digest uint64, delivered uint64) {
	vcis := make([]uint32, 0, len(pt.perVCI))
	for vci := range pt.perVCI {
		vcis = append(vcis, vci)
	}
	sort.Slice(vcis, func(i, j int) bool { return vcis[i] < vcis[j] })
	h := uint64(fnvOffset)
	for _, vci := range vcis {
		d := pt.perVCI[vci]
		h ^= uint64(vci)
		h *= fnvPrime
		h ^= d.digest
		h *= fnvPrime
		h ^= d.count
		h *= fnvPrime
	}
	return h, pt.delivered
}

// IngressCopies returns how many messages the attached host offered
// at this port's ingress, per VCI — the per-hop copy evidence: one
// entry per copy the box fans out, with counts near the stream's
// segment total.
func (pt *Port) IngressCopies() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(pt.inByVCI))
	for vci, n := range pt.inByVCI {
		out[vci] = n
	}
	return out
}

// StreamDigests returns each delivered stream's (digest, count) at
// this port — DeliveryDigest broken out per VCI.
func (pt *Port) StreamDigests() map[uint32][2]uint64 {
	out := make(map[uint32][2]uint64, len(pt.perVCI))
	for vci, d := range pt.perVCI {
		out[vci] = [2]uint64{d.digest, d.count}
	}
	return out
}

// SetFault attaches a fault process to the port's egress (nil
// detaches): every message routed *to* this port consults the hook on
// egress arrival, and the transmitter consults StallUntil before each
// cell train — so an injected fault, like real port trouble, stays on
// its own port.
func (pt *Port) SetFault(h atm.FaultHook) { pt.fault = h }

// observe registers the port's instruments under the obs "port" label.
func (pt *Port) observe(reg *obs.Registry) {
	lb := obs.L("port", pt.nm)
	reg.RegisterCounter("fabric_port_forwarded_total", pt.forwarded, lb)
	reg.RegisterCounter("fabric_port_bytes_total", pt.bytes, lb)
	reg.RegisterCounter("fabric_port_cells_total", pt.cellsTx, lb)
	reg.RegisterCounter("fabric_port_ingress_drops_total", pt.inDrops, lb)
	reg.RegisterCounter("fabric_port_egress_drops_total", pt.egDrops, lb)
	reg.RegisterCounter("fabric_port_unrouted_total", pt.unrouted, lb)
	reg.RegisterCounter("fabric_port_shed_drops_total", pt.shedDrops, lb)
	reg.RegisterCounter("fabric_port_fault_drops_total", pt.faultDrop, lb)
	reg.RegisterCounter("fabric_port_fault_corruptions_total", pt.faultCorr, lb)
	reg.RegisterCounter("fabric_port_fault_duplicates_total", pt.faultDup, lb)
	reg.RegisterCounter("fabric_port_fault_delays_total", pt.faultDel, lb)
	reg.RegisterCounter("fabric_port_fault_stalls_total", pt.faultStal, lb)
	reg.GaugeFunc("fabric_port_ingress_depth", func() float64 { return float64(len(pt.inq)) }, lb)
	reg.GaugeFunc("fabric_port_ingress_limit", func() float64 { return float64(pt.fab.cfg.IngressLimit) }, lb)
	reg.GaugeFunc("fabric_port_queue_depth", func() float64 { return float64(pt.egCells) }, lb)
	reg.GaugeFunc("fabric_port_queue_limit", func() float64 { return float64(pt.fab.cfg.EgressCellLimit) }, lb)
}

// TransportName implements atm.Transport.
func (pt *Port) TransportName() string { return "fabric:" + pt.nm }

// crossDur returns how long m occupies this port's crossbar shard.
func (pt *Port) crossDur(m atm.Message) time.Duration {
	bw := pt.fab.cfg.PortBandwidth * int64(pt.fab.cfg.XbarSpeedup)
	return time.Duration(int64(cells(m.Size)) * cellWire * 8 * int64(time.Second) / bw)
}

// Send implements atm.Transport: ingress admission, run inline in the
// sending host's process. If the crossbar shard is idle (which implies
// the ingress queue is empty) the message starts crossing immediately;
// otherwise it waits in the bounded queue, drop-tail on overflow. The
// sender never blocks on fabric congestion.
func (pt *Port) Send(p *occam.Proc, m atm.Message) error {
	pt.inByVCI[m.VCI]++
	if pt.crossBusy {
		if len(pt.inq) >= pt.fab.cfg.IngressLimit {
			pt.inDrops.Inc()
			pt.fab.trace.EmitAt(p.Now(), obs.EvDrop, pt.nm, m.VCI, "ingress-overflow")
			m.W.Release()
			return nil
		}
		pt.inq = append(pt.inq, m)
		return nil
	}
	pt.crossBusy = true
	pt.crossing = m
	pt.crossTimer.Schedule(p.Now() + occam.Time(pt.crossDur(m)))
	return nil
}

// crossDone is the crossing-end timer callback (scheduler context): it
// routes the message that just finished crossing — the VCI is looked
// up at crossing *end*, so a mid-stream reroute or teardown applies
// per message — hands it to the destination port's egress, and starts
// the next crossing if the ingress queue is non-empty.
func (pt *Port) crossDone(s occam.Sched) {
	m := pt.crossing
	pt.crossing = atm.Message{}
	if r := pt.fab.lookup(m.VCI); r == nil {
		pt.unrouted.Inc()
		pt.fab.trace.EmitAt(s.Now(), obs.EvDrop, pt.nm, m.VCI, "unrouted")
		m.W.Release()
	} else {
		r.out.egArrive(s, m)
	}
	if len(pt.inq) > 0 {
		next := pt.inq[0]
		copy(pt.inq, pt.inq[1:])
		pt.inq[len(pt.inq)-1] = atm.Message{}
		pt.inq = pt.inq[:len(pt.inq)-1]
		pt.crossing = next
		s.Schedule(pt.crossTimer, s.Now()+occam.Time(pt.crossDur(next)))
	} else {
		pt.crossBusy = false
	}
}

// egArrive applies the egress-side admission pipeline to one message
// arriving off the crossbar (scheduler context): the port's shed bar
// first (the overload controller stops a stream before it consumes
// fault RNG or queue space), then the fault hook, then the cell bound.
// The message ends up either queued (possibly twice, for an injected
// duplicate) or released. If the transmitter is idle, the arrival
// starts a new cell train immediately.
func (pt *Port) egArrive(s occam.Sched, m atm.Message) {
	now := s.Now()
	if pt.shed[m.VCI] {
		pt.shedDrops.Inc()
		pt.fab.trace.EmitAt(now, obs.EvDrop, pt.nm, m.VCI, "degrade-shed")
		m.W.Release()
		return
	}
	dup := false
	if pt.fault != nil {
		act := pt.fault.OnMessage(now, m.VCI, m.Size)
		if act.Drop {
			reason := act.Reason
			if reason == "" {
				reason = "injected-loss"
			}
			pt.faultDrop.Inc()
			pt.fab.trace.EmitAt(now, obs.EvFault, pt.nm, m.VCI, reason)
			m.W.Release()
			return
		}
		if act.Corrupt {
			m.Corrupt = true
			pt.faultCorr.Inc()
			pt.fab.trace.EmitAt(now, obs.EvFault, pt.nm, m.VCI, "injected-corruption")
		}
		if act.Delay > 0 {
			m.FaultDelay += act.Delay
			pt.faultDel.Inc()
		}
		dup = act.Duplicate
	}
	n := cells(m.Size)
	if pt.egCells+n > pt.fab.cfg.EgressCellLimit {
		pt.egDrops.Inc()
		pt.fab.trace.EmitAt(now, obs.EvDrop, pt.nm, m.VCI, "egress-overflow")
		m.W.Release()
		return
	}
	pt.egq = append(pt.egq, m)
	pt.egCells += n
	if dup && pt.egCells+n <= pt.fab.cfg.EgressCellLimit {
		// The duplicate is a second full message with its own wire
		// reference, under the same cell bound.
		m.W.Retain(1)
		pt.egq = append(pt.egq, m)
		pt.egCells += n
		pt.faultDup.Inc()
		pt.fab.trace.EmitAt(now, obs.EvFault, pt.nm, m.VCI, "injected-duplicate")
	}
	if !pt.txBusy && len(pt.egq) > 0 {
		// Idle transmitter: this arrival starts a cell train now. Slice
		// it, pace it, and wake runTx at train end to deliver.
		pt.txBusy = true
		pt.slice()
		s.Schedule(pt.txWake, pt.trainEnd(now))
	}
}

// slice cuts the next cell train off the head of the egress queue into
// pt.batch: at least one message, then as many more as fit in
// BatchCells. The batch buffer is reused train to train.
func (pt *Port) slice() {
	pt.batch = pt.batch[:0]
	got := 0
	for len(pt.egq) > 0 {
		n := cells(pt.egq[0].Size)
		if got > 0 && got+n > pt.fab.cfg.BatchCells {
			break
		}
		got += n
		pt.batch = append(pt.batch, pt.egq[0])
		copy(pt.egq, pt.egq[1:])
		pt.egq[len(pt.egq)-1] = atm.Message{}
		pt.egq = pt.egq[:len(pt.egq)-1]
	}
	pt.egCells -= got
}

// trainEnd returns when the train in pt.batch, started at now,
// finishes transmitting: the port stall window (if the fault hook has
// the transmitter wedged, queued cells wait out the outage on this
// port alone), then one line-rate transmission covering the whole
// train, plus propagation and the largest injected per-message delay.
func (pt *Port) trainEnd(now occam.Time) occam.Time {
	cfg := pt.fab.cfg
	if pt.fault != nil {
		if until := pt.fault.StallUntil(now); until > now {
			pt.faultStal.Inc()
			pt.fab.trace.EmitAt(now, obs.EvFault, pt.nm, 0, "port-stall")
			now = until
		}
	}
	var (
		totalCells int
		maxDelay   time.Duration
	)
	for i := range pt.batch {
		totalCells += cells(pt.batch[i].Size)
		if pt.batch[i].FaultDelay > maxDelay {
			maxDelay = pt.batch[i].FaultDelay
		}
	}
	tx := time.Duration(int64(totalCells) * cellWire * 8 * int64(time.Second) / cfg.PortBandwidth)
	return now + occam.Time(tx+cfg.Propagation+maxDelay)
}

// runTx is the port's one process: it delivers finished cell trains to
// the attached host — the only fabric step that may block (host
// backpressure) — and paces follow-on trains while backlog remains.
// It sleeps on txSig whenever the port goes idle; egArrive slices the
// train that wakes it.
func (pt *Port) runTx(p *occam.Proc) {
	for {
		pt.txSig.Wait(p)
		for {
			for i := range pt.batch {
				m := pt.batch[i]
				pt.forwarded.Inc()
				pt.bytes.Add(uint64(m.Size))
				pt.cellsTx.Add(uint64(cells(m.Size)))
				pt.fold(m)
				pt.host.Deliver(p, m)
				pt.batch[i] = atm.Message{}
			}
			if len(pt.egq) == 0 {
				pt.txBusy = false
				break
			}
			// Backlog: slice the next train at delivery-complete time
			// and sleep out its transmission.
			now := p.Now()
			pt.slice()
			p.SleepUntil(pt.trainEnd(now))
		}
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// vciDigest is one stream's running delivery digest at one port.
type vciDigest struct {
	digest uint64
	count  uint64
}

// fold mixes one delivered message into its stream's digest.
func (pt *Port) fold(m atm.Message) {
	d, ok := pt.perVCI[m.VCI]
	if !ok {
		d = &vciDigest{digest: fnvOffset}
		pt.perVCI[m.VCI] = d
	}
	h := d.digest
	if m.Corrupt {
		h ^= 1
		h *= fnvPrime
	}
	h ^= uint64(m.ChunkIndex)<<16 | uint64(m.ChunkTotal)
	h *= fnvPrime
	for _, b := range m.W.Bytes() {
		h ^= uint64(b)
		h *= fnvPrime
	}
	d.digest = h
	d.count++
	pt.delivered++
}

// --- degrade.Target: per-port overload levers ---

// DegradeName implements degrade.Target.
func (pt *Port) DegradeName() string { return pt.nm }

// DegradeStreams implements degrade.Target: the VCIs currently routed
// to this port, in VCI order for deterministic controller decisions.
// Every fabric stream is incoming from the port's point of view — it
// is traffic about to be delivered to the attached box.
func (pt *Port) DegradeStreams() []degrade.StreamInfo {
	ids := make([]uint32, 0, 8)
	for vci, r := range pt.fab.routes {
		if r.out == pt {
			ids = append(ids, vci)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]degrade.StreamInfo, 0, len(ids))
	for _, vci := range ids {
		r := pt.fab.routes[vci]
		out = append(out, degrade.StreamInfo{
			ID: vci, Video: r.video, Incoming: true, Opened: r.opened,
		})
	}
	return out
}

// DegradeVideoBuffers implements degrade.Target: a port has no
// decoupling buffers; its pressure signal is the egress queue gauge
// named in the controller's Ports config.
func (pt *Port) DegradeVideoBuffers() []string { return nil }

// DegradeAudioBuffers implements degrade.Target. Always empty: port
// congestion is relieved by shedding video (principle 2), so a port
// controller never has audio pressure and never sheds audio.
func (pt *Port) DegradeAudioBuffers() []string { return nil }

// DegradeShed implements degrade.Target: bar the VCI at this port's
// egress. The source box keeps transmitting (it is not this port's to
// command — principle 8 is local adaptation), the crossbar keeps
// switching, and the cells die here, on the congested port alone.
func (pt *Port) DegradeShed(p *occam.Proc, id uint32) { pt.shed[id] = true }

// DegradeRestore implements degrade.Target.
func (pt *Port) DegradeRestore(p *occam.Proc, id uint32) { delete(pt.shed, id) }

// DegradeRepositoryOrder implements degrade.Target.
func (pt *Port) DegradeRepositoryOrder() bool { return false }
