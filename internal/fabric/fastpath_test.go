package fabric

import (
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/occam"
)

// TestFabricConcurrentRerouteFaults stresses the sharded fast path
// with everything that can change under a live cell stream: mid-stream
// VCI reroutes and teardowns, per-port fault hooks (burst loss,
// jitter, duplicates, a stall window) and shed/restore flips — while
// eight senders keep the crossbar busy. It exists to run under
// `go test -race ./internal/fabric/...`: the runtime serialises user
// procs, and this test is the proof that the shard state (ingress
// queues, crossing timers, egress trains, route table) stays inside
// that discipline under churn.
func TestFabricConcurrentRerouteFaults(t *testing.T) {
	r := newRig(t, 8, Config{EgressCellLimit: 256, BatchCells: 32})

	// Two faulted ports: one noisy (loss/jitter/dup), one with a stall
	// window mid-run.
	r.fab.Port(6).SetFault(faultinject.NewLink(faultinject.LinkConfig{
		BurstEnter: 0.02, Corrupt: 0.01, Duplicate: 0.05,
		JitterMean: 100 * time.Microsecond, JitterStddev: 200 * time.Microsecond,
		Seed: 7,
	}))
	r.fab.Port(7).SetFault(faultinject.NewLink(faultinject.LinkConfig{
		Stalls: []faultinject.Window{{From: 100 * time.Millisecond, To: 160 * time.Millisecond}},
		Seed:   8,
	}))

	// Six senders: VCIs 100..105, initially fanned over ports 1..6.
	for i := 0; i < 6; i++ {
		r.fab.Route(0, uint32(100+i), r.fab.Port(1+i%6), i%2 == 0)
		r.send(t, i, uint32(100+i), 300, time.Millisecond)
	}
	// The churn proc: every 10 ms reroute one live VCI to the next
	// port, tear another down and re-open it elsewhere, and flip a shed
	// bar on the noisy port.
	r.rt.Go("churn", nil, occam.Low, func(p *occam.Proc) {
		for k := 0; k < 25; k++ {
			p.Sleep(10 * time.Millisecond)
			vci := uint32(100 + k%6)
			r.fab.Unroute(vci)
			r.fab.Route(p.Now(), vci, r.fab.Port(1+(k+3)%7), k%2 == 0)
			vci2 := uint32(100 + (k+1)%6)
			r.fab.Unroute(vci2)
			r.fab.Route(p.Now(), vci2, r.fab.Port(1+k%7), false)
			pt := r.fab.Port(6)
			if k%2 == 0 {
				pt.DegradeShed(p, vci)
			} else {
				pt.DegradeRestore(p, vci)
			}
		}
	})
	if err := r.rt.RunUntil(occam.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	r.rt.Shutdown()

	var delivered int
	for _, counts := range r.got {
		for _, n := range counts {
			delivered += n
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered through the churned fabric")
	}
	var agg PortStats
	for _, pt := range r.fab.Ports() {
		s := pt.Stats()
		agg.FaultDrops += s.FaultDrops
		agg.FaultDups += s.FaultDups
		agg.ShedDrops += s.ShedDrops
		agg.Unrouted += s.Unrouted
	}
	if agg.FaultDrops == 0 || agg.FaultDups == 0 {
		t.Errorf("fault hook never fired: %+v", agg)
	}
	if agg.ShedDrops == 0 {
		t.Errorf("shed bar never dropped: %+v", agg)
	}
	r.checkNoWireLeak(t)
}

// TestFabricCellPoolNoLeak is the refcount-discipline audit, modeled
// on WirePool.Leaked(): after traffic that exercises every release
// path — ingress overflow, unrouted drops, shed drops, fault drops,
// injected duplicates (the one path that *retains*), egress overflow
// and ordinary delivery — every storage record the pool ever handed
// out must be back on the free list.
func TestFabricCellPoolNoLeak(t *testing.T) {
	r := newRig(t, 4, Config{IngressLimit: 4, EgressCellLimit: 32, BatchCells: 8})
	r.fab.Port(3).SetFault(faultinject.NewLink(faultinject.LinkConfig{
		BurstEnter: 0.05, Duplicate: 0.10,
		Stalls: []faultinject.Window{{From: 50 * time.Millisecond, To: 120 * time.Millisecond}},
		Seed:   11,
	}))
	r.fab.Route(0, 40, r.fab.Port(3), true)
	r.fab.Route(0, 41, r.fab.Port(3), false)
	// VCI 42 is never routed: every cell is an unrouted drop.
	r.send(t, 0, 40, 200, 500*time.Microsecond)
	r.send(t, 1, 41, 200, 500*time.Microsecond)
	r.send(t, 2, 42, 100, time.Millisecond)
	// Shed VCI 40 halfway through.
	r.rt.Go("shed", nil, occam.Low, func(p *occam.Proc) {
		p.Sleep(60 * time.Millisecond)
		r.fab.Port(3).DegradeShed(p, 40)
	})
	// Run far past the last send and the stall window so every queue
	// drains; anything still checked out of the pool is a leak.
	if err := r.rt.RunUntil(occam.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	r.rt.Shutdown()
	if n := r.pool.Leaked(); n != 0 {
		t.Fatalf("cell pool leak: %d wire storage records still checked out", n)
	}
	s := r.fab.Port(3).Stats()
	if s.FaultDrops == 0 || s.FaultDups == 0 || s.ShedDrops == 0 || s.FaultStalls == 0 {
		t.Errorf("fault paths not all exercised: %+v", s)
	}
	var unrouted uint64
	for _, pt := range r.fab.Ports() {
		unrouted += pt.Stats().Unrouted
	}
	if unrouted == 0 {
		t.Error("unrouted path not exercised")
	}
}
