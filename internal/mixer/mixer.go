// Package mixer implements Pandora's destination-side audio mixing
// (paper §2.0, §3.7.2, §3.8): any number of incoming audio streams
// are mixed by software in real time, each arriving through its own
// clawback buffer; "a 2ms block is read from the output end of each
// buffer every 2ms by the audio mixing code".
//
// Stream lifecycle is fully adaptive (principle 8): "the audio code
// does not have to be informed of the creation or deletion of
// streams; it just adapts to the incoming data". A block arriving for
// an unknown stream creates its clawback buffer; a buffer found empty
// at mixing time is deactivated and removed.
//
// Error recovery follows §3.8: segments carry sequence numbers, so
// the destination detects missing segments as soon as a later one
// arrives; for audio we "replay the last 2ms block, and try to ensure
// that it does not happen frequently" — concealment is bounded so
// repeated loss degrades to silence rather than a garbled loop.
package mixer

import (
	"fmt"
	"sort"

	"repro/internal/clawback"
	"repro/internal/mulaw"
	"repro/internal/obs"
	"repro/internal/segment"
)

// DefaultMaxConcealBlocks bounds how many replayed blocks one
// sequence gap may insert ("Replaying the last 2ms block occasionally
// is perfectly acceptable... replaying 2ms blocks frequently gives a
// garbled effect").
const DefaultMaxConcealBlocks = 4

// Config parameterises a Mixer. Zero values select defaults.
type Config struct {
	// Clawback is the per-stream buffer configuration; its Pool field
	// is overridden by the mixer's shared pool.
	Clawback clawback.Config
	// PoolBlocks is the shared clawback pool size (default 4 s).
	PoolBlocks int
	// MaxConcealBlocks bounds loss concealment per sequence gap.
	MaxConcealBlocks int
	// Obs, if non-nil, registers per-stream and pool instruments
	// (labelled with Name) and traces stream lifecycle and drops.
	Obs *obs.Registry
	// Name identifies this mixer in metrics and traces (usually the
	// box name; default "mixer").
	Name string
}

// StreamStats reports one stream's reception history. The counters
// live in the observability registry when one is attached; StreamStats
// is reconstructed from them on demand.
type StreamStats struct {
	Segments       uint64 // segments delivered
	Blocks         uint64 // blocks delivered
	LostSegments   uint64 // detected by sequence-number gaps
	Concealed      uint64 // blocks filled by replaying the last block
	LateDuplicates uint64 // late or duplicate segments thrown away (§3.8)
	Reactivations  uint64 // times the stream was re-created after idle
	// Digest is an FNV-1a hash over every delivered segment's sequence
	// number and sample bytes, in arrival order — the stream's delivery
	// set as one comparable word. Two runs delivered byte-identical
	// audio for this stream iff their digests and Segments counts match
	// (the scenario layer's "survivors byte-identical" assertion).
	Digest   uint64
	Clawback clawback.Stats
}

// streamCounters are one stream's registry instruments.
type streamCounters struct {
	segments      *obs.Counter
	blocks        *obs.Counter
	lost          *obs.Counter
	concealed     *obs.Counter
	lateDups      *obs.Counter
	reactivations *obs.Counter
}

// stream is one incoming audio stream's destination state. lastBlock
// is an owned copy of the most recent block — concealment must not
// alias wire storage that may be recycled before the replay plays.
type stream struct {
	buf       *clawback.Buffer
	nextSeq   uint32
	seenAny   bool
	lastBlock [segment.BlockSamples]byte
	haveLast  bool
	active    bool
	digest    uint64
	c         streamCounters
}

// Mixer mixes any number of incoming audio streams into one outgoing
// 2 ms block per tick. Not safe for concurrent use (it lives inside
// the audio transputer's block handler process).
type Mixer struct {
	cfg     Config
	pool    *clawback.Pool
	streams map[uint32]*stream
	ticks   uint64

	// shed holds streams suspended by the overload controller
	// (internal/degrade): their deliveries are discarded until restored.
	shed      map[uint32]bool
	shedDrops *obs.Counter

	// Per-tick scratch, reused: the returned block is valid until the
	// next Tick.
	out []byte
	ids []uint32

	// OnPlayout, if set, is called for every block played with the
	// stream id, the block's source timestamp and the playout time
	// (both nanoseconds of stream time) — the end-to-end latency
	// instrument for experiment E3.
	OnPlayout func(stream uint32, stamp, now int64)
}

// New returns a mixer with the given configuration.
func New(cfg Config) *Mixer {
	if cfg.MaxConcealBlocks <= 0 {
		cfg.MaxConcealBlocks = DefaultMaxConcealBlocks
	}
	if cfg.Name == "" {
		cfg.Name = "mixer"
	}
	m := &Mixer{
		cfg:     cfg,
		pool:    clawback.NewPool(cfg.PoolBlocks),
		streams: make(map[uint32]*stream),
		shed:    make(map[uint32]bool),
		out:     make([]byte, segment.BlockSamples),
	}
	lb := obs.L("box", cfg.Name)
	m.shedDrops = cfg.Obs.Counter("mixer_shed_drops_total", lb)
	cfg.Obs.GaugeFunc("clawback_pool_used", func() float64 { return float64(m.pool.Used()) }, lb)
	cfg.Obs.GaugeFunc("clawback_pool_capacity", func() float64 { return float64(m.pool.Capacity()) }, lb)
	cfg.Obs.CounterFunc("clawback_pool_exhausted_total", func() uint64 { return m.pool.Exhausted }, lb)
	cfg.Obs.GaugeFunc("mixer_active_streams", func() float64 { return float64(m.ActiveStreams()) }, lb)
	cfg.Obs.CounterFunc("mixer_ticks_total", func() uint64 { return m.ticks }, lb)
	return m
}

// Pool returns the shared clawback pool (for reports).
func (m *Mixer) Pool() *clawback.Pool { return m.pool }

// ActiveStreams returns the number of streams currently mixing.
func (m *Mixer) ActiveStreams() int {
	n := 0
	for _, s := range m.streams {
		if s.active {
			n++
		}
	}
	return n
}

// Stats returns the reception statistics for a stream, which persist
// across deactivations.
func (m *Mixer) Stats(id uint32) StreamStats {
	s, ok := m.streams[id]
	if !ok {
		return StreamStats{}
	}
	return StreamStats{
		Segments:       s.c.segments.Value(),
		Blocks:         s.c.blocks.Value(),
		LostSegments:   s.c.lost.Value(),
		Concealed:      s.c.concealed.Value(),
		LateDuplicates: s.c.lateDups.Value(),
		Reactivations:  s.c.reactivations.Value(),
		Digest:         s.digest,
		Clawback:       s.buf.Stats(),
	}
}

// newStream creates destination state for stream id, registering its
// instruments and its clawback buffer's.
func (m *Mixer) newStream(id uint32) *stream {
	cfg := m.cfg.Clawback
	cfg.Pool = m.pool
	cfg.Obs = m.cfg.Obs
	cfg.Owner = fmt.Sprintf("%s/%d", m.cfg.Name, id)
	reg := m.cfg.Obs
	lbs := []obs.Label{obs.L("box", m.cfg.Name), obs.L("stream", fmt.Sprint(id))}
	return &stream{
		buf:    clawback.New(cfg),
		active: true,
		digest: fnvOffset,
		c: streamCounters{
			segments:      reg.Counter("mixer_segments_total", lbs...),
			blocks:        reg.Counter("mixer_blocks_total", lbs...),
			lost:          reg.Counter("mixer_lost_segments_total", lbs...),
			concealed:     reg.Counter("mixer_concealed_total", lbs...),
			lateDups:      reg.Counter("mixer_late_duplicates_total", lbs...),
			reactivations: reg.Counter("mixer_reactivations_total", lbs...),
		},
	}
}

func (m *Mixer) source() string { return m.cfg.Name + ".mixer" }

// Deliver feeds one arriving audio segment for stream id into its
// clawback buffer, creating or reactivating the stream as needed and
// concealing any sequence gap. It reads headers and sample blocks in
// place from the wire and consumes one wire reference: queued blocks
// alias the wire under their own references (one Retain per item);
// whatever is not queued costs nothing and the wire is released.
func (m *Mixer) Deliver(id uint32, w segment.Wire) {
	tr := m.cfg.Obs.Tracer()
	if m.shed[id] {
		// The overload controller shed this stream: discard the
		// segment (releasing its wire) until DegradeRestore.
		m.shedDrops.Inc()
		tr.Emit(obs.EvDrop, m.source(), id, "degrade-shed")
		w.Release()
		return
	}
	s, ok := m.streams[id]
	if !ok {
		s = m.newStream(id)
		m.streams[id] = s
		tr.Emit(obs.EvStreamOpen, m.source(), id, "stream created")
	} else if !s.active {
		// "If a block arrives for a stream that does not have a
		// buffer, a new clawback buffer will be inserted, and mixing
		// will resume."
		s.active = true
		s.c.reactivations.Inc()
		tr.Emit(obs.EvStreamOpen, m.source(), id, "stream reactivated")
	}
	s.c.segments.Inc()

	seq := w.Seq()
	blocks := w.AudioBlocks()
	base := int64(segment.TimestampTime(w.Timestamp()))

	// Sequence-gap detection and bounded concealment (§3.8).
	if s.seenAny && seq != s.nextSeq {
		// Signed 32-bit difference so sequence wraparound and late
		// duplicates both classify correctly.
		gap := int(int32(seq - s.nextSeq)) // whole missing segments
		if gap > 0 {
			s.c.lost.Add(uint64(gap))
			conceal := gap * blocks
			if conceal > m.cfg.MaxConcealBlocks {
				conceal = m.cfg.MaxConcealBlocks
			}
			if conceal > 0 && s.haveLast {
				// One owned copy per gap episode, shared by every
				// replayed block queued for it.
				replay := append([]byte(nil), s.lastBlock[:]...)
				for i := 0; i < conceal; i++ {
					stamp := base - int64(conceal-i)*int64(segment.BlockDuration)
					if s.buf.PushItem(clawback.Item{Data: replay, Stamp: stamp}) != clawback.DropNone {
						break
					}
					s.c.concealed.Inc()
				}
			}
		} else {
			// A negative gap is a late duplicate or reordering: the
			// general rule applies — "the current segment is thrown
			// away" (§3.8). Queueing its blocks would play duplicated
			// audio, so the payload is discarded; the stream still
			// resynchronises to the duplicate's sequence number.
			s.c.lateDups.Inc()
			tr.Emit(obs.EvDrop, m.source(), id, "late-duplicate")
			s.nextSeq = seq + 1
			w.Release()
			return
		}
	}
	s.nextSeq = seq + 1
	s.seenAny = true

	s.digest = fnvFold(s.digest, byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24))
	for i := 0; i < blocks; i++ {
		blk := w.AudioBlock(i)
		s.digest = fnvFold(s.digest, blk...)
		w.Retain(1) // the queued item's reference; dropped items release it
		s.buf.PushItem(clawback.Item{
			Data:  blk,
			Stamp: base + int64(i)*int64(segment.BlockDuration),
			W:     w,
		})
	}
	if blocks > 0 {
		copy(s.lastBlock[:], w.AudioBlock(blocks-1))
		s.haveLast = true
	}
	s.c.blocks.Add(uint64(blocks))
	w.Release()
}

// Tick produces the next mixed 2 ms block of µ-law samples at stream
// time now (nanoseconds). Streams whose buffers are empty contribute
// silence and are deactivated; with no active streams the returned
// block is pure silence.
//
// mixed reports how many streams contributed audio — the mixing work
// done this tick, which the audio board accounts CPU time for.
//
// The returned block is scratch storage reused by the next Tick;
// callers must finish with it (play it, copy it) before then.
func (m *Mixer) Tick(now int64) (block []byte, mixed int) {
	m.ticks++
	var sum [segment.BlockSamples]int32
	// Iterate deterministically: map order must not leak into audio.
	for _, id := range m.orderedIDs() {
		s := m.streams[id]
		if !s.active {
			continue
		}
		it, ok := s.buf.PopItem()
		if !ok {
			// "The time saved when a clawback buffer is found to be
			// empty is used to deactivate the stream."
			s.active = false
			s.buf.Drain()
			m.cfg.Obs.Tracer().Emit(obs.EvStreamClose, m.source(), id, "stream deactivated")
			continue
		}
		for i := 0; i < segment.BlockSamples; i++ {
			sum[i] += int32(mulaw.Decode(it.Data[i]))
		}
		if m.OnPlayout != nil {
			m.OnPlayout(id, it.Stamp, now)
		}
		it.W.Release() // the sample data has been mixed out
		mixed++
	}
	out := m.out
	for i := range out {
		v := sum[i]
		switch {
		case v > 32767:
			v = 32767
		case v < -32768:
			v = -32768
		}
		out[i] = mulaw.Encode(int16(v))
	}
	return out, mixed
}

// SetShed suspends (or, with shed=false, resumes) mixing of stream id
// on the overload controller's orders. Shedding drains the stream's
// clawback buffer — releasing its queued wire references back to the
// pool — and deactivates it; subsequent deliveries are discarded and
// counted on mixer_shed_drops_total. Restoring simply lifts the bar:
// the next delivery reactivates the stream through the normal adaptive
// path (principle 8).
func (m *Mixer) SetShed(id uint32, shed bool) {
	if !shed {
		delete(m.shed, id)
		return
	}
	if m.shed[id] {
		return
	}
	m.shed[id] = true
	if s, ok := m.streams[id]; ok && s.active {
		s.active = false
		s.buf.Drain()
		m.cfg.Obs.Tracer().Emit(obs.EvStreamClose, m.source(), id, "stream shed")
	}
}

// Ticks returns how many mixing ticks have run.
func (m *Mixer) Ticks() uint64 { return m.ticks }

// FNV-1a, folded inline so the delivery digest costs no allocation on
// the per-segment path.
const fnvOffset = 14695981039346656037

func fnvFold(h uint64, bs ...byte) uint64 {
	for _, b := range bs {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// orderedIDs returns the stream ids in ascending order for
// deterministic mixing, reusing the mixer's scratch slice.
func (m *Mixer) orderedIDs() []uint32 {
	ids := m.ids[:0]
	for id := range m.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m.ids = ids
	return ids
}
