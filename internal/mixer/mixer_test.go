package mixer

import (
	"testing"

	"repro/internal/clawback"
	"repro/internal/mulaw"
	"repro/internal/segment"
)

// testPool backs the wires tests feed to Deliver; pooled storage means
// the tests also exercise the retain-per-queued-block discipline (a
// refcount bug would recycle storage under a queued block and corrupt
// the mixed audio).
var testPool = segment.NewWirePool()

// seg builds an audio wire of nblocks constant-amplitude blocks.
func seg(seq uint32, amp int16, nblocks int) segment.Wire {
	blocks := make([][]byte, nblocks)
	for i := range blocks {
		b := make([]byte, segment.BlockSamples)
		for j := range b {
			b[j] = mulaw.Encode(amp)
		}
		blocks[i] = b
	}
	return testPool.Encode(segment.NewAudio(seq, 0, blocks))
}

func TestSilenceWithNoStreams(t *testing.T) {
	m := New(Config{})
	blk, mixed := m.Tick(0)
	if mixed != 0 {
		t.Fatalf("mixed %d streams", mixed)
	}
	if mulaw.Energy(blk) != 0 {
		t.Fatal("no-stream tick is not silent")
	}
}

func TestSingleStreamPassesThrough(t *testing.T) {
	m := New(Config{})
	m.Deliver(1, seg(0, 8000, 2))
	blk, mixed := m.Tick(0)
	if mixed != 1 {
		t.Fatalf("mixed = %d", mixed)
	}
	got := mulaw.Decode(blk[0])
	want := mulaw.Decode(mulaw.Encode(8000))
	if got < want-want/8 || got > want+want/8 {
		t.Fatalf("mixed sample %d, want ≈%d", got, want)
	}
}

func TestTwoStreamsSum(t *testing.T) {
	m := New(Config{})
	m.Deliver(1, seg(0, 5000, 2))
	m.Deliver(2, seg(0, 3000, 2))
	blk, mixed := m.Tick(0)
	if mixed != 2 {
		t.Fatalf("mixed = %d", mixed)
	}
	got := int32(mulaw.Decode(blk[0]))
	if got < 7000 || got > 9000 {
		t.Fatalf("sum = %d, want ≈8000", got)
	}
}

func TestManyStreamsNoLimit(t *testing.T) {
	// "No limit is placed on the number of incoming streams that can
	// be mixed."
	m := New(Config{})
	for id := uint32(0); id < 40; id++ {
		m.Deliver(id, seg(0, 100, 2))
	}
	_, mixed := m.Tick(0)
	if mixed != 40 {
		t.Fatalf("mixed %d of 40 streams", mixed)
	}
}

func TestMixSaturatesInsteadOfWrapping(t *testing.T) {
	m := New(Config{})
	for id := uint32(0); id < 4; id++ {
		m.Deliver(id, seg(0, 20000, 2))
	}
	blk, _ := m.Tick(0)
	got := int32(mulaw.Decode(blk[0]))
	if got < 30000 {
		t.Fatalf("saturating mix gave %d, want near +32124", got)
	}
}

func TestEmptyBufferDeactivatesStream(t *testing.T) {
	m := New(Config{})
	m.Deliver(1, seg(0, 100, 1))
	m.Tick(0) // consumes the only block
	if m.ActiveStreams() != 1 {
		t.Fatal("stream deactivated too early")
	}
	m.Tick(0) // empty pop: deactivate
	if m.ActiveStreams() != 0 {
		t.Fatal("stream not deactivated on empty buffer")
	}
	// Arrival re-creates the buffer and mixing resumes.
	m.Deliver(1, seg(1, 100, 1))
	if m.ActiveStreams() != 1 {
		t.Fatal("stream not reactivated on arrival")
	}
	if m.Stats(1).Reactivations != 1 {
		t.Fatalf("Reactivations = %d", m.Stats(1).Reactivations)
	}
}

func TestDeactivationReleasesPool(t *testing.T) {
	m := New(Config{PoolBlocks: 10})
	m.Deliver(1, seg(0, 100, 2))
	m.Tick(0)
	m.Tick(0)
	m.Tick(0) // deactivate (buffer already empty)
	if m.Pool().Used() != 0 {
		t.Fatalf("pool used %d after deactivation", m.Pool().Used())
	}
}

func TestSequenceGapConcealed(t *testing.T) {
	m := New(Config{})
	m.Deliver(1, seg(0, 8000, 2))
	m.Deliver(1, seg(2, 8000, 2)) // seq 1 lost: one segment = 2 blocks
	st := m.Stats(1)
	if st.LostSegments != 1 {
		t.Fatalf("LostSegments = %d", st.LostSegments)
	}
	if st.Concealed != 2 {
		t.Fatalf("Concealed = %d, want 2 replayed blocks", st.Concealed)
	}
	// The concealed blocks replay the last block: audio continues at
	// the same amplitude with no silent gap.
	for i := 0; i < 6; i++ {
		blk, mixed := m.Tick(0)
		if mixed != 1 {
			t.Fatalf("tick %d: mixed=%d (gap audible)", i, mixed)
		}
		if e := mulaw.Energy(blk); e == 0 {
			t.Fatalf("tick %d: silence in concealed stream", i)
		}
	}
}

func TestConcealmentBounded(t *testing.T) {
	// A huge gap must not flood the buffer with replayed blocks.
	m := New(Config{MaxConcealBlocks: 4})
	m.Deliver(1, seg(0, 8000, 2))
	m.Deliver(1, seg(100, 8000, 2)) // 99 segments lost
	st := m.Stats(1)
	if st.Concealed != 4 {
		t.Fatalf("Concealed = %d, want the 4-block bound", st.Concealed)
	}
	if st.LostSegments != 99 {
		t.Fatalf("LostSegments = %d", st.LostSegments)
	}
}

func TestDuplicateOrLateSegmentResynchronises(t *testing.T) {
	m := New(Config{})
	m.Deliver(1, seg(5, 100, 2))
	m.Deliver(1, seg(3, 100, 2)) // out of order / duplicate
	if m.Stats(1).LostSegments != 0 {
		t.Fatal("negative gap counted as loss")
	}
	m.Deliver(1, seg(4, 100, 2)) // continues from the resync point
	if m.Stats(1).LostSegments != 0 {
		t.Fatalf("LostSegments = %d after resync", m.Stats(1).LostSegments)
	}
}

func TestLateDuplicatePayloadDiscarded(t *testing.T) {
	// A late duplicate must not queue its blocks — they would play
	// as repeated audio. Only the first copy's payload survives.
	m := New(Config{})
	m.Deliver(1, seg(0, 8000, 2))
	m.Deliver(1, seg(0, 8000, 2)) // exact duplicate
	st := m.Stats(1)
	if st.LateDuplicates != 1 {
		t.Fatalf("LateDuplicates = %d, want 1", st.LateDuplicates)
	}
	if st.Blocks != 2 {
		t.Fatalf("Blocks = %d: duplicate payload was queued", st.Blocks)
	}
	if st.Clawback.Accepted != 2 {
		t.Fatalf("clawback accepted %d blocks, want 2", st.Clawback.Accepted)
	}
	// The stream still resynchronises past the duplicate.
	m.Deliver(1, seg(1, 8000, 2))
	if st := m.Stats(1); st.LostSegments != 0 || st.Blocks != 4 {
		t.Fatalf("resync broken: %+v", st)
	}
}

func TestReorderedSequenceCounts(t *testing.T) {
	// Arrival order 1,3,2,2: segment 2 is first concealed as lost,
	// then both late copies are thrown away.
	m := New(Config{})
	m.Deliver(1, seg(1, 8000, 2)) // queued, nextSeq=2
	m.Deliver(1, seg(3, 8000, 2)) // gap +1: conceal 2 blocks, queue, nextSeq=4
	m.Deliver(1, seg(2, 8000, 2)) // gap -2: late, dropped, nextSeq=3
	m.Deliver(1, seg(2, 8000, 2)) // gap -1: late again, dropped
	st := m.Stats(1)
	if st.Segments != 4 {
		t.Fatalf("Segments = %d", st.Segments)
	}
	if st.Blocks != 4 {
		t.Fatalf("Blocks = %d, want only segments 1 and 3 queued", st.Blocks)
	}
	if st.LostSegments != 1 || st.Concealed != 2 {
		t.Fatalf("loss accounting: %+v", st)
	}
	if st.LateDuplicates != 2 {
		t.Fatalf("LateDuplicates = %d, want 2", st.LateDuplicates)
	}
	// 2 real + 2 concealed + 2 real blocks are buffered: six ticks of
	// audio, then the buffer runs dry.
	for i := 0; i < 6; i++ {
		if _, mixed := m.Tick(0); mixed != 1 {
			t.Fatalf("tick %d: mixed=%d", i, mixed)
		}
	}
	if _, mixed := m.Tick(0); mixed != 0 {
		t.Fatal("late duplicates queued extra audio")
	}
}

func TestDeliverReleasesWiresWhenPlayedOut(t *testing.T) {
	// Wires delivered with gaps, late duplicates and drops: once every
	// queued block has been mixed out, all pooled storage must be back
	// on the free list — no path may leak or double-release.
	pl := segment.NewWirePool()
	mk := func(seq uint32) segment.Wire {
		return pl.Encode(segment.NewAudio(seq, 0, [][]byte{
			{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		}))
	}
	m := New(Config{MaxConcealBlocks: 2})
	m.Deliver(1, mk(0))
	m.Deliver(1, mk(5)) // gap: concealment queues owned copies, not wires
	m.Deliver(1, mk(2)) // late duplicate: released without queueing
	m.Deliver(1, mk(3))
	for i := 0; i < 16; i++ {
		m.Tick(0)
	}
	if pl.FreeLen() != int(pl.News) {
		t.Fatalf("%d of %d wire records returned after playout", pl.FreeLen(), pl.News)
	}
}

func TestShedDiscardsUntilRestored(t *testing.T) {
	m := New(Config{})
	m.Deliver(1, seg(0, 8000, 2))
	if m.ActiveStreams() != 1 {
		t.Fatal("stream not active before shed")
	}
	m.SetShed(1, true)
	if m.ActiveStreams() != 0 {
		t.Fatal("shed did not deactivate the stream")
	}
	m.Deliver(1, seg(1, 8000, 2)) // discarded
	if _, mixed := m.Tick(0); mixed != 0 {
		t.Fatal("shed stream still mixing")
	}
	st := m.Stats(1)
	if st.Blocks != 2 {
		t.Fatalf("shed delivery queued blocks: %d", st.Blocks)
	}
	m.SetShed(1, false)
	m.Deliver(1, seg(2, 8000, 2)) // reactivates adaptively
	if _, mixed := m.Tick(0); mixed != 1 {
		t.Fatal("restored stream not mixing")
	}
}

func TestFaultPathsReleaseWires(t *testing.T) {
	// The injected-fault drop paths — duplicate delivery of the same
	// wire (what an atm duplicate fault produces: two references, two
	// Deliver calls), shedding with a loaded buffer, deliveries while
	// shed, and destination block-corruption drops — must all release
	// the wire references they discard. Pool accounting is the leak
	// detector: after playout every wire record is back on the free
	// list.
	pl := segment.NewWirePool()
	mk := func(seq uint32) segment.Wire {
		return pl.Encode(segment.NewAudio(seq, 0, [][]byte{
			{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		}))
	}
	fault := 0
	m := New(Config{Clawback: clawback.Config{
		// Every third block is injected corruption at the destination.
		Fault: func() bool { fault++; return fault%3 == 0 },
	}})

	// Duplicate delivery: one wire, two references, second copy is a
	// late duplicate the mixer must release.
	w := mk(0)
	w.Retain(1)
	m.Deliver(1, w)
	m.Deliver(1, w)
	m.Deliver(1, mk(1))
	m.Deliver(1, mk(2))

	// Shed with queued blocks (drained), then deliveries while shed.
	m.SetShed(1, true)
	m.Deliver(1, mk(3))
	m.Deliver(1, mk(4))
	m.SetShed(1, false)
	m.Deliver(1, mk(5))
	for i := 0; i < 16; i++ {
		m.Tick(0)
	}
	st := m.Stats(1)
	if st.LateDuplicates == 0 {
		t.Fatal("duplicate delivery not detected")
	}
	if st.Clawback.FaultDrops == 0 {
		t.Fatal("block-corruption fault never fired")
	}
	if pl.FreeLen() != int(pl.News) {
		t.Fatalf("%d of %d wire records returned after fault-path playout", pl.FreeLen(), pl.News)
	}
}

func TestStatsUnknownStream(t *testing.T) {
	m := New(Config{})
	if st := m.Stats(42); st.Segments != 0 {
		t.Fatal("stats for unknown stream not zero")
	}
}

func TestPerStreamClawbackIsolation(t *testing.T) {
	// One stream's jitter buffer state must not affect another's.
	m := New(Config{Clawback: clawback.Config{LimitBlocks: 3}})
	for i := 0; i < 10; i++ {
		m.Deliver(1, seg(uint32(i), 100, 2)) // floods stream 1 to its limit
	}
	m.Deliver(2, seg(0, 100, 2))
	s1, s2 := m.Stats(1), m.Stats(2)
	if s1.Clawback.LimitDrops == 0 {
		t.Fatal("stream 1 not limited")
	}
	if s2.Clawback.LimitDrops != 0 || s2.Clawback.Accepted != 2 {
		t.Fatalf("stream 2 affected by stream 1: %+v", s2.Clawback)
	}
}

func TestMixedCountTracksConsumption(t *testing.T) {
	m := New(Config{})
	m.Deliver(1, seg(0, 100, 3))
	m.Deliver(2, seg(0, 100, 1))
	if _, mixed := m.Tick(0); mixed != 2 {
		t.Fatal("tick 1")
	}
	if _, mixed := m.Tick(0); mixed != 1 { // stream 2 empty now
		t.Fatal("tick 2")
	}
	if m.Ticks() != 2 {
		t.Fatalf("Ticks = %d", m.Ticks())
	}
}
