package decouple

// Ring is the circular buffer at the heart of a decoupling buffer:
// a bounded FIFO whose capacity can be changed dynamically "without
// any loss of data" — shrinking below the current occupancy keeps the
// queued items and simply refuses new ones until the queue drains.
type Ring[T any] struct {
	items    []T
	head     int // index of the oldest item
	n        int // occupancy
	capacity int // current limit (may be less than len(items))

	// activity counters, reported on request ("pointer positions
	// indicating how active it is").
	pushed uint64
	popped uint64
}

// NewRing returns a ring holding at most capacity items.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("decouple: ring capacity must be positive")
	}
	return &Ring[T]{items: make([]T, capacity), capacity: capacity}
}

// Len returns the current occupancy.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current capacity limit.
func (r *Ring[T]) Cap() int { return r.capacity }

// Full reports whether the ring is at (or, after a shrink, above)
// capacity.
func (r *Ring[T]) Full() bool { return r.n >= r.capacity }

// Empty reports whether the ring holds no items.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Pushed and Popped return the lifetime activity counters.
func (r *Ring[T]) Pushed() uint64 { return r.pushed }
func (r *Ring[T]) Popped() uint64 { return r.popped }

// Push appends v and reports success; it fails when full.
func (r *Ring[T]) Push(v T) bool {
	if r.Full() {
		return false
	}
	r.items[(r.head+r.n)%len(r.items)] = v
	r.n++
	r.pushed++
	return true
}

// Pop removes and returns the oldest item.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.items[r.head]
	r.items[r.head] = zero
	r.head = (r.head + 1) % len(r.items)
	r.n--
	r.popped++
	return v, true
}

// Peek returns the oldest item without removing it.
func (r *Ring[T]) Peek() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	return r.items[r.head], true
}

// Resize changes the capacity limit without losing data: growing
// takes effect at once; shrinking below the occupancy keeps every
// queued item and refuses input until the queue drains below the new
// limit.
func (r *Ring[T]) Resize(capacity int) {
	if capacity <= 0 {
		panic("decouple: ring capacity must be positive")
	}
	if capacity > len(r.items) {
		r.grow(capacity)
	}
	r.capacity = capacity
}

// grow re-bases the circular storage into a larger slice.
func (r *Ring[T]) grow(newSize int) {
	items := make([]T, newSize)
	for i := 0; i < r.n; i++ {
		items[i] = r.items[(r.head+i)%len(r.items)]
	}
	r.items = items
	r.head = 0
}
