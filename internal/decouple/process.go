package decouple

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/occam"
)

// Command is a control message to a decoupling buffer process
// ("The decoupling buffers are attached to command and report
// channels in the same way as all other Pandora processes").
type Command struct {
	// Resize, if positive, sets a new capacity limit; the buffer
	// adjusts "without any loss of data".
	Resize int
	// Report requests a status report on the report channel.
	Report bool
}

// Report is a decoupling buffer status report: "its present length
// (indicating where any delay is being introduced), size limit and
// pointer positions (indicating how active it is)".
type Report struct {
	Name   string
	Length int
	Limit  int
	Pushed uint64
	Popped uint64
}

func (r Report) String() string {
	return fmt.Sprintf("decouple %s: %d/%d queued, %d in, %d out",
		r.Name, r.Length, r.Limit, r.Pushed, r.Popped)
}

// Process is a decoupling buffer as an Occam process network: a queue
// process holding the ring, plus an output pump that keeps one item
// offered to the consumer. With a ready channel attached (figure
// 3.6), every input gets an immediate TRUE ("more free slots") or
// FALSE ("full — do not send") reply, and after a FALSE the next
// TRUE arrives as soon as a slot frees.
type Process[T any] struct {
	name string

	In    *occam.Chan[T]
	Out   *occam.Chan[T]
	Ready *occam.Chan[bool] // nil unless ready protocol requested
	Cmd   *occam.Chan[Command]
	Rep   *occam.Chan[Report] // shared report sink, may be nil

	ring *Ring[T]
	reg  *obs.Registry

	outReq   *occam.Chan[struct{}]
	outItem  *occam.Chan[T]
	owedTrue bool // a FALSE was sent; owe a TRUE when a slot frees

	stall    func(now occam.Time) occam.Time
	stalls   *obs.Counter
	trace    *obs.Tracer
	stalledT occam.Time // end of the stall already slept out
}

// Option configures a Process.
type Option func(*options)

type options struct {
	ready bool
	reg   *obs.Registry
	stall func(now occam.Time) occam.Time
}

// WithReady attaches the ready channel of figure 3.6.
func WithReady() Option { return func(o *options) { o.ready = true } }

// WithObs registers the buffer's occupancy gauge and activity counters
// (labelled with the buffer name) on reg, and lets senders register
// their refusal counters.
func WithObs(reg *obs.Registry) Option { return func(o *options) { o.reg = reg } }

// WithStall attaches a fault-injection hook modelling a stuck consumer
// (a wedged output device): before offering each item downstream, the
// output pump asks fn for the end of any outage covering the current
// time and sleeps until then. While stalled the queue keeps filling
// normally, so upstream sees exactly the back-pressure a dead sink
// would cause. Each outage counts once on
// decouple_stalled_total{buffer=...} and emits an EvFault trace event.
// faultinject.Stalls converts outage windows into a suitable fn.
func WithStall(fn func(now occam.Time) occam.Time) Option {
	return func(o *options) { o.stall = fn }
}

// New creates a decoupling buffer of the given capacity and starts
// its processes on rt. reports may be nil if nobody collects them.
func New[T any](rt *occam.Runtime, node *occam.Node, name string, capacity int, reports *occam.Chan[Report], opts ...Option) *Process[T] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	d := &Process[T]{
		name:    name,
		In:      occam.NewChan[T](rt, name+".in"),
		Out:     occam.NewChan[T](rt, name+".out"),
		Cmd:     occam.NewChan[Command](rt, name+".cmd"),
		Rep:     reports,
		ring:    NewRing[T](capacity),
		outReq:  occam.NewChan[struct{}](rt, name+".outreq"),
		outItem: occam.NewChan[T](rt, name+".outitem"),
	}
	if o.ready {
		d.Ready = occam.NewChan[bool](rt, name+".ready")
	}
	d.reg = o.reg
	lb := obs.L("buffer", name)
	d.reg.GaugeFunc("decouple_queued", func() float64 { return float64(d.ring.Len()) }, lb)
	d.reg.GaugeFunc("decouple_limit", func() float64 { return float64(d.ring.Cap()) }, lb)
	d.reg.CounterFunc("decouple_pushed_total", d.ring.Pushed, lb)
	d.reg.CounterFunc("decouple_popped_total", d.ring.Popped, lb)
	d.trace = d.reg.Tracer()
	if o.stall != nil {
		d.stall = o.stall
		d.stalls = d.reg.Counter("decouple_stalled_total", lb)
	}
	rt.Go(name+".queue", node, occam.High, d.runQueue)
	rt.Go(name+".pump", node, occam.High, d.runPump)
	return d
}

// runQueue owns the ring: PRI ALT with commands first (principle 4),
// then the output side, then input (only when not full, so a plain
// buffer blocks its producer exactly as the paper describes).
func (d *Process[T]) runQueue(p *occam.Proc) {
	var (
		cmd Command
		req struct{}
		v   T
	)
	notEmpty := occam.NewCond(occam.Recv(d.outReq, &req))
	notFull := occam.NewCond(occam.Recv(d.In, &v))
	guards := []occam.Guard{occam.Recv(d.Cmd, &cmd), notEmpty, notFull}
	for {
		notEmpty.Set(!d.ring.Empty())
		notFull.Set(!d.ring.Full())
		switch p.Alt(guards...) {
		case 0:
			d.handleCommand(p, cmd)
		case 1:
			item, _ := d.ring.Pop()
			d.outItem.Send(p, item)
			if d.owedTrue && !d.ring.Full() {
				// The slot the upstream is waiting for.
				d.owedTrue = false
				d.Ready.Send(p, true)
			}
		case 2:
			if !d.ring.Push(v) {
				panic("decouple: push into non-full ring failed")
			}
			if d.Ready != nil {
				// "the decoupling buffer will send an immediate reply
				// after every input indicating whether or not it has
				// more free buffers".
				if d.ring.Full() {
					d.owedTrue = true
					d.Ready.Send(p, false)
				} else {
					d.Ready.Send(p, true)
				}
			}
		}
	}
}

// runPump keeps one item offered to the consumer so that output can
// proceed the instant the consumer is ready (Occam has no output
// guards; this is the standard idiom).
func (d *Process[T]) runPump(p *occam.Proc) {
	var token struct{}
	for {
		d.outReq.Send(p, token)
		item := d.outItem.Recv(p)
		if d.stall != nil {
			if until := d.stall(p.Now()); until > p.Now() {
				if until > d.stalledT {
					// Count each outage once, not once per queued item.
					d.stalledT = until
					d.stalls.Inc()
					d.trace.Emit(obs.EvFault, "decouple."+d.name, 0, "sink stalled")
				}
				p.SleepUntil(until)
			}
		}
		d.Out.Send(p, item)
	}
}

// Len returns the queue's current occupancy. The occam runtime runs
// exactly one process at a time, so the live value is safe to read
// from any process — the degrade controller's pressure probe.
func (d *Process[T]) Len() int { return d.ring.Len() }

// Limit returns the queue's current capacity limit.
func (d *Process[T]) Limit() int { return d.ring.Cap() }

func (d *Process[T]) handleCommand(p *occam.Proc, cmd Command) {
	if cmd.Resize > 0 {
		wasFull := d.ring.Full()
		d.ring.Resize(cmd.Resize)
		if d.owedTrue && wasFull && !d.ring.Full() {
			d.owedTrue = false
			d.Ready.Send(p, true)
		}
	}
	if cmd.Report && d.Rep != nil {
		d.Rep.Send(p, Report{
			Name:   d.name,
			Length: d.ring.Len(),
			Limit:  d.ring.Cap(),
			Pushed: d.ring.Pushed(),
			Popped: d.ring.Popped(),
		})
	}
}

// Sender is the upstream side of the ready protocol: "After a FALSE
// reply, the input process will not send any more data... but will
// listen on the ready channel in addition to its other inputs."
type Sender[T any] struct {
	buf     *Process[T]
	canSend bool
	refused *obs.Counter
	trace   *obs.Tracer

	// ready is the cached ReadyGuard condition: hot loops hoist the
	// guard out of their alternation loop, so the condition must track
	// canSend from Deliver/Update rather than being rebuilt per call.
	ready    *occam.Cond
	readyDst *bool
}

// setCanSend records the buffer's latest reply and keeps the hoisted
// ReadyGuard condition in sync.
func (s *Sender[T]) setCanSend(v bool) {
	s.canSend = v
	if s.ready != nil {
		s.ready.Set(!v)
	}
}

// NewSender returns a ready-protocol client for buf, which must have
// been created WithReady. Senders of the same buffer share one
// refusal counter (decouple_refused_total{buffer=...}).
func NewSender[T any](buf *Process[T]) *Sender[T] {
	if buf.Ready == nil {
		panic("decouple: NewSender on buffer without ready channel")
	}
	return &Sender[T]{
		buf:     buf,
		canSend: true,
		refused: buf.reg.Counter("decouple_refused_total", obs.L("buffer", buf.name)),
		trace:   buf.reg.Tracer(),
	}
}

// CanSend reports whether the last reply permitted more data.
func (s *Sender[T]) CanSend() bool { return s.canSend }

// Dropped returns how many items Deliver refused.
func (s *Sender[T]) Dropped() uint64 { return s.refused.Value() }

// Deliver sends v if the buffer last said READY and reads the
// immediate reply; otherwise it counts a drop and returns false —
// the upstream "can then choose to throw away the data rather than
// block waiting for the buffer to become free".
func (s *Sender[T]) Deliver(p *occam.Proc, v T) bool {
	if !s.canSend {
		s.refused.Inc()
		s.trace.Emit(obs.EvDrop, "decouple."+s.buf.name, 0, "ready-refusal")
		return false
	}
	s.buf.In.Send(p, v)
	s.setCanSend(s.buf.Ready.Recv(p))
	return true
}

// ReadyGuard returns a guard on the ready channel for inclusion in
// the upstream process's alternation while blocked by a FALSE reply.
// After the guard fires, call Update with the received value. The
// guard is reusable: it may be built once, kept in a hoisted guard
// slice, and its condition follows the sender's state.
func (s *Sender[T]) ReadyGuard(dst *bool) occam.Guard {
	if s.ready == nil || s.readyDst != dst {
		s.ready = occam.NewCond(occam.Recv(s.buf.Ready, dst))
		s.readyDst = dst
	}
	s.ready.Set(!s.canSend)
	return s.ready
}

// Update records a ready value received via ReadyGuard.
func (s *Sender[T]) Update(ready bool) { s.setCanSend(ready) }
