package decouple

import (
	"testing"
	"time"

	"repro/internal/occam"
)

func TestProcessPassesDataThrough(t *testing.T) {
	rt := occam.NewRuntime()
	d := New[int](rt, nil, "buf", 4, nil)
	var got []int
	rt.Go("producer", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 10; i++ {
			d.In.Send(p, i)
		}
	})
	rt.Go("consumer", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, d.Out.Recv(p))
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if len(got) != 10 {
		t.Fatalf("consumer got %d items", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestProcessDecouplesBurst(t *testing.T) {
	// The producer can race ahead of a slow consumer by the buffer
	// depth without blocking — the whole point of decoupling.
	rt := occam.NewRuntime()
	d := New[int](rt, nil, "buf", 8, nil)
	var producerDone occam.Time
	rt.Go("producer", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 8; i++ {
			d.In.Send(p, i)
		}
		producerDone = p.Now()
	})
	rt.Go("consumer", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 8; i++ {
			p.Sleep(10 * time.Millisecond)
			d.Out.Recv(p)
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if producerDone > occam.Time(time.Millisecond) {
		t.Fatalf("producer blocked until %v despite free buffer space", producerDone)
	}
}

func TestProcessBlocksProducerWhenFull(t *testing.T) {
	// Without a ready channel, a full buffer blocks its producer
	// "until an item has been read from the buffer".
	rt := occam.NewRuntime()
	d := New[int](rt, nil, "buf", 2, nil)
	var sent int
	rt.Go("producer", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 10; i++ {
			d.In.Send(p, i)
			sent++
		}
	})
	if err := rt.RunUntil(occam.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Ring capacity (2) + one item in the pump + one accepted in
	// flight: the producer must be well short of 10.
	if sent > 4 {
		t.Fatalf("producer sent %d items with no consumer", sent)
	}
	rt.Shutdown()
}

func TestReadyProtocolImmediateReply(t *testing.T) {
	// Figure 3.6: every input gets an immediate TRUE/FALSE; after a
	// FALSE the producer stops sending and later gets a TRUE.
	rt := occam.NewRuntime()
	d := New[int](rt, nil, "buf", 2, nil, WithReady())
	var replies []bool
	var falseAt, trueAgainAt occam.Time
	rt.Go("producer", nil, occam.Low, func(p *occam.Proc) {
		s := NewSender(d)
		for i := 0; ; i++ {
			if !s.CanSend() {
				falseAt = p.Now()
				break
			}
			s.Deliver(p, i)
			replies = append(replies, s.CanSend())
		}
		// Now wait for the TRUE.
		var ready bool
		if p.Alt(s.ReadyGuard(&ready)) != 0 {
			t.Error("unexpected guard")
		}
		s.Update(ready)
		trueAgainAt = p.Now()
		if !s.CanSend() {
			t.Error("ready reply was not TRUE")
		}
	})
	rt.Go("consumer", nil, occam.Low, func(p *occam.Proc) {
		p.Sleep(50 * time.Millisecond)
		d.Out.Recv(p)
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	// Capacity 2 ring: replies TRUE after the first push, FALSE after
	// the second... but the pump immediately drains one slot, so we
	// see TRUEs until the ring is truly full with the pump holding an
	// item: 3 accepted items, last reply FALSE.
	if len(replies) == 0 || replies[len(replies)-1] {
		t.Fatalf("replies %v, want final FALSE", replies)
	}
	if falseAt != 0 {
		t.Fatalf("producer blocked until %v before FALSE", falseAt)
	}
	// The TRUE arrives when the consumer frees a slot at 50ms.
	if trueAgainAt != occam.Time(50*time.Millisecond) {
		t.Fatalf("TRUE at %v, want 50ms", trueAgainAt)
	}
}

func TestReadySenderDropsInsteadOfBlocking(t *testing.T) {
	// Principle 5: with the buffer full, Deliver refuses immediately.
	rt := occam.NewRuntime()
	d := New[int](rt, nil, "buf", 1, nil, WithReady())
	var delivered, dropped int
	rt.Go("producer", nil, occam.Low, func(p *occam.Proc) {
		s := NewSender(d)
		for i := 0; i < 20; i++ {
			if s.Deliver(p, i) {
				delivered++
			} else {
				dropped++
			}
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if dropped == 0 {
		t.Fatal("nothing dropped with no consumer")
	}
	if delivered+dropped != 20 {
		t.Fatalf("delivered=%d dropped=%d", delivered, dropped)
	}
	if delivered > 3 {
		t.Fatalf("delivered %d into capacity-1 buffer with no consumer", delivered)
	}
}

func TestResizeCommandWithoutLoss(t *testing.T) {
	rt := occam.NewRuntime()
	d := New[int](rt, nil, "buf", 8, nil)
	var got []int
	rt.Go("driver", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 6; i++ {
			d.In.Send(p, i)
		}
		d.Cmd.Send(p, Command{Resize: 2}) // shrink below occupancy
		for i := 0; i < 6; i++ {
			got = append(got, d.Out.Recv(p))
		}
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if len(got) != 6 {
		t.Fatalf("got %d items after shrink, want all 6", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("data reordered: %v", got)
		}
	}
}

func TestReportCommand(t *testing.T) {
	rt := occam.NewRuntime()
	reports := occam.NewChan[Report](rt, "reports")
	d := New[int](rt, nil, "audio-buf", 4, reports)
	var rep Report
	rt.Go("driver", nil, occam.Low, func(p *occam.Proc) {
		d.In.Send(p, 1)
		d.In.Send(p, 2)
		d.In.Send(p, 3)
		d.Cmd.Send(p, Command{Report: true})
		rep = reports.Recv(p)
	})
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if rep.Name != "audio-buf" {
		t.Fatalf("report name %q", rep.Name)
	}
	if rep.Limit != 4 {
		t.Fatalf("report limit %d", rep.Limit)
	}
	// 3 pushed; the pump holds one, so length is 2 and popped 1.
	if rep.Pushed != 3 || rep.Length+int(rep.Popped) != 3 {
		t.Fatalf("report %+v inconsistent", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestCommandPriorityOverData(t *testing.T) {
	// Principle 4: a command is handled "as soon as the process has
	// finished dealing with any current segment" even under a data
	// flood.
	rt := occam.NewRuntime()
	node := occam.NewNode(rt, "cpu")
	reports := occam.NewChan[Report](rt, "reports")
	d := New[int](rt, node, "buf", 4, reports)
	var cmdServed occam.Time
	rt.Go("flood", node, occam.Low, func(p *occam.Proc) {
		for i := 0; ; i++ {
			p.Consume(10 * time.Microsecond)
			d.In.Send(p, i)
		}
	})
	rt.Go("drain", node, occam.Low, func(p *occam.Proc) {
		for {
			d.Out.Recv(p)
			p.Consume(10 * time.Microsecond)
		}
	})
	rt.Go("commander", nil, occam.Low, func(p *occam.Proc) {
		p.Sleep(time.Millisecond)
		d.Cmd.Send(p, Command{Report: true})
		reports.Recv(p)
		cmdServed = p.Now()
	})
	if err := rt.RunUntil(occam.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if cmdServed == 0 || cmdServed > occam.Time(2*time.Millisecond) {
		t.Fatalf("command served at %v under data flood", cmdServed)
	}
}

func TestSenderPanicsWithoutReady(t *testing.T) {
	rt := occam.NewRuntime()
	d := New[int](rt, nil, "buf", 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("NewSender accepted buffer without ready channel")
		}
	}()
	NewSender(d)
}
