package decouple

import (
	"testing"
	"testing/quick"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !r.Full() {
		t.Fatal("ring not full after capacity pushes")
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: ok=%v v=%d", i, ok, v)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[int](3)
	for cycle := 0; cycle < 10; cycle++ {
		for i := 0; i < 3; i++ {
			if !r.Push(cycle*3 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != cycle*3+i {
				t.Fatalf("cycle %d pop %d: v=%d", cycle, i, v)
			}
		}
	}
}

func TestRingPeek(t *testing.T) {
	r := NewRing[string](2)
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	r.Push("a")
	r.Push("b")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q", v)
	}
	if r.Len() != 2 {
		t.Fatal("peek consumed an item")
	}
}

func TestRingResizeGrow(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Push(2)
	r.Resize(4)
	if r.Full() {
		t.Fatal("still full after grow")
	}
	r.Push(3)
	r.Push(4)
	for want := 1; want <= 4; want++ {
		if v, _ := r.Pop(); v != want {
			t.Fatalf("pop %d after grow", v)
		}
	}
}

func TestRingResizeShrinkKeepsData(t *testing.T) {
	// "the buffer will adjust to this size without any loss of data."
	r := NewRing[int](5)
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	r.Resize(2)
	if !r.Full() {
		t.Fatal("shrunk ring not reporting full")
	}
	if r.Push(99) {
		t.Fatal("push accepted while above shrunk capacity")
	}
	// Every original item survives.
	for i := 0; i < 5; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: ok=%v v=%d", i, ok, v)
		}
	}
	// And the new capacity applies once drained.
	if !r.Push(7) || !r.Push(8) || r.Push(9) {
		t.Fatal("shrunk capacity not enforced after drain")
	}
}

func TestRingGrowPreservesWrappedOrder(t *testing.T) {
	r := NewRing[int](3)
	r.Push(0)
	r.Push(1)
	r.Pop()
	r.Push(2)
	r.Push(3) // storage now wrapped
	r.Resize(6)
	r.Push(4)
	for want := 1; want <= 4; want++ {
		if v, _ := r.Pop(); v != want {
			t.Fatalf("pop %d, want %d", v, want)
		}
	}
}

func TestRingActivityCounters(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Push(2)
	r.Pop()
	if r.Pushed() != 2 || r.Popped() != 1 {
		t.Fatalf("pushed=%d popped=%d", r.Pushed(), r.Popped())
	}
}

func TestRingInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero capacity")
		}
	}()
	NewRing[int](0)
}

func TestQuickRingMatchesSlice(t *testing.T) {
	// Model check: the ring behaves exactly like a bounded slice
	// queue under arbitrary push/pop/resize sequences.
	type op struct {
		Kind byte
		Arg  uint8
	}
	f := func(ops []op) bool {
		r := NewRing[int](4)
		capacity := 4
		var model []int
		next := 0
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // push
				ok := r.Push(next)
				wantOK := len(model) < capacity
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // pop
				v, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // resize
				capacity = int(o.Arg%8) + 1
				r.Resize(capacity)
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
