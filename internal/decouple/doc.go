// Package decouple implements the decoupling buffers of paper §3.7.1:
// circular FIFO queues of segment references inserted between
// processes or hardware units that do not run synchronously, so that
// "the poor performance of one output device does not affect streams
// to other output devices" (principle 5).
//
// A buffer is an Occam process network (Process): a queue process
// owning the Ring plus an output pump that keeps one item offered to
// the consumer. Buffers respond to commands (resize "without any loss
// of data", report) and generate Reports carrying their length, limit
// and pointer positions. An optional ready channel (WithReady, figure
// 3.6) gives upstream an immediate TRUE/FALSE after every input so it
// can throw data away instead of blocking; Sender is the client side
// of that protocol, counting refusals on
// decouple_refused_total{buffer=...}.
//
// Observability (WithObs) registers the live occupancy and limit as
// decouple_queued/decouple_limit gauges and the lifetime activity as
// decouple_pushed_total/decouple_popped_total counters — the depth
// signals the overload controller in internal/degrade watches.
// Fault injection (WithStall) simulates a stuck sink channel: the
// output pump sleeps out configured outage windows while the queue
// fills, counted on decouple_stalled_total.
package decouple
