package video

import "repro/internal/segment"

// Assembly (§3.6): "We do not display any part of a video frame until
// all of the segments have been received, otherwise the effect of a
// tear can be seen when part of the image is moving parallel to a
// segment boundary."

// AssemblyStats reports a per-stream assembler's history.
type AssemblyStats struct {
	Complete   uint64 // frames delivered whole
	Abandoned  uint64 // frames dropped because a newer frame arrived
	Duplicates uint64 // repeated segment numbers discarded
}

// Assembler collects the rectangular segments of one stream's frames
// and releases each frame only when complete.
type Assembler struct {
	width, height int
	current       uint32 // frame number being assembled
	started       bool
	have          map[uint32]bool
	needed        uint32
	img           *Frame
	stats         AssemblyStats
}

// NewAssembler returns an assembler for a stream whose frames are
// width×height.
func NewAssembler(width, height int) *Assembler {
	return &Assembler{width: width, height: height}
}

// Stats returns the assembly counters.
func (a *Assembler) Stats() AssemblyStats { return a.stats }

// Add offers one decoded video segment with its pixel data. When the
// segment completes a frame, the whole frame is returned; otherwise
// nil. A segment of a newer frame abandons the one in progress
// (late segments of old frames are discarded — the general §3.8 rule,
// the current segment is thrown away).
func (a *Assembler) Add(hdr *segment.Video, pixels *Frame) *Frame {
	if !a.started || hdr.FrameNumber != a.current {
		if a.started && int32(hdr.FrameNumber-a.current) < 0 {
			// A late segment of an older frame.
			a.stats.Duplicates++
			return nil
		}
		if a.started && len(a.have) > 0 {
			a.stats.Abandoned++
		}
		a.current = hdr.FrameNumber
		a.started = true
		a.have = make(map[uint32]bool)
		a.needed = hdr.NumSegments
		a.img = NewFrame(a.width, a.height)
	}
	if a.have[hdr.SegmentNum] {
		a.stats.Duplicates++
		return nil
	}
	a.have[hdr.SegmentNum] = true
	a.img.Blit(pixels, int(hdr.XOffset), int(hdr.YOffset))
	if uint32(len(a.have)) == a.needed {
		img := a.img
		a.have = make(map[uint32]bool)
		a.img = nil
		a.started = false
		a.stats.Complete++
		return img
	}
	return nil
}

// InProgress reports whether a partial frame is waiting for segments.
func (a *Assembler) InProgress() bool { return a.started && len(a.have) > 0 }
