package video

import (
	"time"

	"repro/internal/occam"
)

// Scan models the raster position of a continuously writing camera or
// continuously reading display controller: line L is touched once per
// frame period, in order. Both tear-avoidance decisions in the paper
// — timing framestore reads against the camera (§3.6) and timing
// display-buffer copies against the scan, "copying frames both in
// front of and behind the scan if necessary" — reduce to the same
// question: when can I touch this row range without colliding with
// the raster?
type Scan struct {
	Lines  int
	Period time.Duration // one full frame scan
}

// LineAt returns which line the raster is on at time t.
func (s Scan) LineAt(t occam.Time) int {
	if s.Lines <= 0 || s.Period <= 0 {
		return 0
	}
	inFrame := int64(t) % int64(s.Period)
	return int(inFrame * int64(s.Lines) / int64(s.Period))
}

// lineTime returns when the raster next reaches the given line at or
// after t.
func (s Scan) lineTime(t occam.Time, line int) occam.Time {
	perLine := int64(s.Period) / int64(s.Lines)
	frameStart := int64(t) - int64(t)%int64(s.Period)
	at := frameStart + int64(line)*perLine
	if occam.Time(at) < t {
		at += int64(s.Period)
	}
	return occam.Time(at)
}

// SafeReadStart returns the earliest time ≥ now at which rows
// [r.Y, r.Y+r.H) can be accessed for d without the raster entering
// them: either entirely behind the scan (raster already past the
// rectangle and won't wrap back during the access) or in front of it
// (access completes before the raster arrives).
//
// A rectangle covering (nearly) every line has no safe window — the
// hardware read blocks of §3.6 were sub-rectangles for exactly this
// reason; callers must split tall accesses into bands. After a
// bounded search SafeReadStart gives up and returns now (the caller
// accepted the tear risk by asking).
func (s Scan) SafeReadStart(now occam.Time, r Rect, d time.Duration) occam.Time {
	if s.Lines <= 0 || s.Period <= 0 {
		return now
	}
	perLine := int64(s.Period) / int64(s.Lines)
	attempts := 0
	for t := now; ; {
		if attempts++; attempts > 16 {
			return now
		}
		cur := s.LineAt(t)
		switch {
		case cur >= r.Y+r.H:
			// Behind the scan: safe if we finish before the raster
			// wraps around to the rectangle top.
			wrap := s.lineTime(t, 0).Add(time.Duration(int64(r.Y) * perLine))
			if t.Add(d) <= wrap {
				return t
			}
			// Wait for the wrap to pass the rectangle instead.
			t = s.lineTime(t, r.Y+r.H)
		case cur < r.Y:
			// In front of the scan: safe if we finish before the
			// raster reaches the rectangle top.
			arrive := s.lineTime(t, r.Y)
			if t.Add(d) <= arrive {
				return t
			}
			t = s.lineTime(t, r.Y+r.H)
		default:
			// The raster is inside the rectangle: wait for it to
			// leave.
			t = s.lineTime(t, r.Y+r.H)
		}
	}
}

// Collides reports whether the raster enters rows [r.Y, r.Y+r.H)
// during [t, t+d) — the condition that would produce a visible tear.
func (s Scan) Collides(t occam.Time, r Rect, d time.Duration) bool {
	if s.Lines <= 0 || s.Period <= 0 {
		return false
	}
	// Walk the raster over the interval at line granularity.
	perLine := int64(s.Period) / int64(s.Lines)
	for at := int64(t); at < int64(t.Add(d)); at += perLine {
		l := s.LineAt(occam.Time(at))
		if l >= r.Y && l < r.Y+r.H {
			return true
		}
	}
	return false
}
