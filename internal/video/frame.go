// Package video implements Pandora's video path (paper §3.3, §3.6):
// a framestore written continuously by the camera and read in
// carefully-timed rectangles; streams at fractional frame rates;
// frames split into rectangular segments and slices pushed through a
// pipelined DPCM/sub-sampling compression engine; a per-stream
// last-line cache for the vertical interpolator; and whole-frame
// assembly at the display so no tear is ever visible.
package video

import "fmt"

// Rect is a rectangle within the camera field, in pixels.
type Rect struct {
	X, Y, W, H int
}

// Contains reports whether the row range [y0, y1) intersects r.
func (r Rect) intersectsRows(y0, y1 int) bool {
	return y0 < r.Y+r.H && y1 > r.Y
}

func (r Rect) String() string {
	return fmt.Sprintf("%dx%d+%d+%d", r.W, r.H, r.X, r.Y)
}

// Frame is an 8-bit greyscale image.
type Frame struct {
	W, H int
	Pix  []byte // row-major, len = W*H
}

// NewFrame returns a zeroed frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y).
func (f *Frame) At(x, y int) byte { return f.Pix[y*f.W+x] }

// Set writes the pixel at (x, y).
func (f *Frame) Set(x, y int, v byte) { f.Pix[y*f.W+x] = v }

// Row returns row y (aliasing Pix).
func (f *Frame) Row(y int) []byte { return f.Pix[y*f.W : (y+1)*f.W] }

// Reuse resizes the frame in place, keeping its pixel storage where
// capacity allows. Pixel contents are unspecified afterwards — for
// scratch frames whose every pixel the caller overwrites.
func (f *Frame) Reuse(w, h int) {
	n := w * h
	if cap(f.Pix) < n {
		f.Pix = make([]byte, n)
	}
	f.Pix = f.Pix[:n]
	f.W, f.H = w, h
}

// SubImage copies rectangle r out of the frame.
func (f *Frame) SubImage(r Rect) *Frame {
	out := NewFrame(r.W, r.H)
	f.subImageInto(out, r)
	return out
}

func (f *Frame) subImageInto(out *Frame, r Rect) {
	for y := 0; y < r.H; y++ {
		copy(out.Row(y), f.Pix[(r.Y+y)*f.W+r.X:(r.Y+y)*f.W+r.X+r.W])
	}
}

// Blit copies src into the frame with its top-left corner at (x, y).
func (f *Frame) Blit(src *Frame, x, y int) {
	for row := 0; row < src.H; row++ {
		copy(f.Pix[(y+row)*f.W+x:(y+row)*f.W+x+src.W], src.Row(row))
	}
}

// Equal reports whether two frames hold identical pixels.
func (f *Frame) Equal(g *Frame) bool {
	if f.W != g.W || f.H != g.H {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != g.Pix[i] {
			return false
		}
	}
	return true
}

// MeanAbsDiff returns the mean absolute pixel difference between two
// equally sized frames — the distortion measure for the lossy codec.
func (f *Frame) MeanAbsDiff(g *Frame) float64 {
	if f.W != g.W || f.H != g.H {
		panic("video: MeanAbsDiff on mismatched frames")
	}
	var sum int64
	for i := range f.Pix {
		d := int(f.Pix[i]) - int(g.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += int64(d)
	}
	return float64(sum) / float64(len(f.Pix))
}

// Framestore is the capture board's frame store: the camera writes
// scan lines continuously on one port while capture streams read
// rectangles on the other (§3.6). WriteLines and ReadRect model the
// two ports; tear-safe timing is the caller's job, via Scan.
type Framestore struct {
	frame    *Frame
	writes   uint64
	lastLine int
}

// NewFramestore returns a store of the given dimensions.
func NewFramestore(w, h int) *Framestore {
	return &Framestore{frame: NewFrame(w, h)}
}

// Width and Height return the store dimensions.
func (fs *Framestore) Width() int  { return fs.frame.W }
func (fs *Framestore) Height() int { return fs.frame.H }

// WriteLines stores camera rows [y0, y1) from src (the camera port).
func (fs *Framestore) WriteLines(src *Frame, y0, y1 int) {
	for y := y0; y < y1 && y < fs.frame.H; y++ {
		copy(fs.frame.Row(y), src.Row(y))
		fs.lastLine = y
	}
	fs.writes++
}

// ReadRect copies rectangle r out of the store (the capture port).
func (fs *Framestore) ReadRect(r Rect) *Frame {
	return fs.frame.SubImage(r)
}

// ReadRectInto is ReadRect into a reused scratch frame — the capture
// board's read path, which reads a band per segment and never keeps
// it.
func (fs *Framestore) ReadRectInto(dst *Frame, r Rect) {
	dst.Reuse(r.W, r.H)
	fs.frame.subImageInto(dst, r)
}
