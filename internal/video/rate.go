package video

import (
	"fmt"
	"time"
)

// FullRate is the camera frame rate: 25 Hz (§3.6).
const FullRate = 25

// FramePeriod is the camera frame interval: 40 ms.
const FramePeriod = time.Second / FullRate

// Rate is a stream frame rate expressed as a fraction of the full
// 25 Hz rate: "For example, 2/5 gives an average of 10 frames per
// second."
type Rate struct {
	Num, Den int
}

// FPS returns the average frames per second the rate yields.
func (r Rate) FPS() float64 {
	if r.Den == 0 {
		return 0
	}
	return FullRate * float64(r.Num) / float64(r.Den)
}

func (r Rate) String() string { return fmt.Sprintf("%d/%d", r.Num, r.Den) }

// Valid reports whether the rate is a proper fraction ≤ 1.
func (r Rate) Valid() bool {
	return r.Num > 0 && r.Den > 0 && r.Num <= r.Den
}

// Take reports whether camera frame number n (0-based) should be
// captured for this stream. The selection is the evenest possible
// spread (Bresenham): exactly Num frames of every Den are taken.
func (r Rate) Take(n int) bool {
	if !r.Valid() || n < 0 {
		return false
	}
	return (n+1)*r.Num/r.Den > n*r.Num/r.Den
}
