package video

import (
	"errors"
	"fmt"
)

// The compression engine of §3.6: "Each line of video data has a one
// byte compression header added, which is used by the compression
// hardware to determine what sub-sampling and DPCM coding should be
// applied." The scheme here packs 4-bit quantised DPCM deltas, two
// pixels per byte, with optional 2:1 horizontal sub-sampling —
// parameters ride in the per-line header exactly as on the hardware,
// so "compression schemes and parameters can be changed from one
// segment to the next".

// LineParams is the one-byte compression header of one video line.
type LineParams struct {
	// Subsample selects 2:1 horizontal sub-sampling.
	Subsample bool
	// Shift is the DPCM quantiser shift (0 = finest, 3 = coarsest).
	Shift uint8
	// Raw disables DPCM: the line is carried verbatim (used for the
	// dummy flush lines, which must not disturb decoder state).
	Raw bool
}

// headerByte encodes the params.
func (lp LineParams) headerByte() byte {
	b := lp.Shift & 0x03
	if lp.Subsample {
		b |= 0x04
	}
	if lp.Raw {
		b |= 0x08
	}
	return b
}

func paramsFromHeader(b byte) LineParams {
	return LineParams{
		Shift:     b & 0x03,
		Subsample: b&0x04 != 0,
		Raw:       b&0x08 != 0,
	}
}

// CompressLine encodes one line of pixels with the given parameters,
// returning header byte + packed deltas. The reconstruction the
// decoder will produce is also returned, since DPCM prediction must
// run against reconstructed values at both ends.
//
// CompressLine allocates fresh slices on every call; the per-line hot
// paths (capture boards, slicers) use a Codec, which reuses storage.
func CompressLine(line []byte, lp LineParams) (wire []byte, recon []byte) {
	src := line
	if lp.Subsample {
		src = subsampleInto(nil, line)
	}
	reconSub := make([]byte, len(src))
	wire = compressTo(make([]byte, 0, 1+len(src)), reconSub, src, lp)
	return wire, expandInto(nil, reconSub, lp.Subsample, len(line))
}

// subsampleInto writes line's 2:1 horizontal sub-sampling over dst's
// storage (grown as needed) and returns it.
func subsampleInto(dst, line []byte) []byte {
	n := (len(line) + 1) / 2
	dst = growBytes(dst, n)
	for i := 0; i < n; i++ {
		dst[i] = line[2*i]
	}
	return dst
}

// compressTo appends src's header byte + packed deltas to wire and
// writes the decoder's reconstruction of src into recon (len(src)
// bytes, pre-sized by the caller).
func compressTo(wire, recon, src []byte, lp LineParams) []byte {
	wire = append(wire, lp.headerByte())
	if lp.Raw {
		copy(recon, src)
		return append(wire, src...)
	}
	pred := 128
	var hi byte
	for i, px := range src {
		delta := int(px) - pred
		q := delta >> lp.Shift
		if q > 7 {
			q = 7
		}
		if q < -8 {
			q = -8
		}
		nib := byte(q & 0x0F)
		if i%2 == 0 {
			hi = nib << 4
			if i == len(src)-1 {
				wire = append(wire, hi)
			}
		} else {
			wire = append(wire, hi|nib)
		}
		pred += q << lp.Shift
		if pred > 255 {
			pred = 255
		}
		if pred < 0 {
			pred = 0
		}
		recon[i] = byte(pred)
	}
	return wire
}

// growBytes returns b resized to n bytes, reusing its storage where
// capacity allows. Contents are unspecified.
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// expandInto undoes horizontal sub-sampling by linear interpolation,
// writing over out's storage (grown as needed).
func expandInto(out, sub []byte, subsampled bool, width int) []byte {
	if !subsampled {
		out = growBytes(out, len(sub))
		copy(out, sub)
		return out
	}
	out = growBytes(out, width)
	for i := 0; i < width; i++ {
		j := i / 2
		if i%2 == 0 || j+1 >= len(sub) {
			out[i] = sub[j]
		} else {
			out[i] = byte((int(sub[j]) + int(sub[j+1])) / 2)
		}
	}
	return out
}

// Decompression errors.
var (
	ErrLineTooShort = errors.New("video: compressed line truncated")
)

// DecompressLine decodes one compressed line back to width pixels.
// Allocates per call; hot paths use Codec.DecompressLine.
func DecompressLine(wire []byte, width int) ([]byte, error) {
	var c Codec
	line, err := c.DecompressLine(wire, width)
	if err != nil {
		return nil, err
	}
	return line, nil
}

// Codec holds the reusable line buffers of one compression or
// decompression pipeline — the per-line scratch the hardware would
// keep in registers. Not safe for concurrent use; one Codec per
// process.
//
// Ownership: CompressLine results stay valid until the Reset that
// recycles them (each call hands out a distinct buffer, so a whole
// frame of lines can be held at once, e.g. until packing).
// DecompressLine results are valid only until the next call — callers
// copy out immediately, as the display path does anyway.
type Codec struct {
	sub   []byte   // sub-sampling scratch
	recon []byte   // reconstruction scratch (compress)
	line  []byte   // decompressed line (decompress)
	wires [][]byte // compressed-line buffers handed out since Reset
	n     int
}

// Reset recycles every buffer handed out by CompressLine since the
// last Reset. Call once per frame/segment, after the compressed lines
// have been packed or sent.
func (c *Codec) Reset() { c.n = 0 }

// CompressLine is CompressLine with reused storage, for callers that
// do not need the reconstruction. The returned wire is valid until
// Reset.
func (c *Codec) CompressLine(line []byte, lp LineParams) []byte {
	src := line
	if lp.Subsample {
		c.sub = subsampleInto(c.sub, line)
		src = c.sub
	}
	c.recon = growBytes(c.recon, len(src))
	if c.n == len(c.wires) {
		c.wires = append(c.wires, nil)
	}
	w := compressTo(c.wires[c.n][:0], c.recon, src, lp)
	c.wires[c.n] = w
	c.n++
	return w
}

// DecompressLine decodes one compressed line back to width pixels.
// The returned line is valid until the next call.
func (c *Codec) DecompressLine(wire []byte, width int) ([]byte, error) {
	if len(wire) < 1 {
		return nil, ErrLineTooShort
	}
	lp := paramsFromHeader(wire[0])
	body := wire[1:]
	subWidth := width
	if lp.Subsample {
		subWidth = (width + 1) / 2
	}
	if lp.Raw {
		if len(body) < subWidth {
			return nil, ErrLineTooShort
		}
		c.line = expandInto(c.line, body[:subWidth], lp.Subsample, width)
		return c.line, nil
	}
	if len(body) < (subWidth+1)/2 {
		return nil, ErrLineTooShort
	}
	c.sub = growBytes(c.sub, subWidth)
	sub := c.sub
	pred := 128
	for i := 0; i < subWidth; i++ {
		nib := body[i/2]
		if i%2 == 0 {
			nib >>= 4
		}
		q := int(int8(nib<<4) >> 4) // sign-extend the 4-bit delta
		pred += q << lp.Shift
		if pred > 255 {
			pred = 255
		}
		if pred < 0 {
			pred = 0
		}
		sub[i] = byte(pred)
	}
	c.line = expandInto(c.line, sub, lp.Subsample, width)
	return c.line, nil
}

// CompressedLineSize returns the wire size of one line.
func CompressedLineSize(width int, lp LineParams) int {
	sub := width
	if lp.Subsample {
		sub = (width + 1) / 2
	}
	if lp.Raw {
		return 1 + sub
	}
	return 1 + (sub+1)/2
}

// Interpolator is the decompression hardware's vertical interpolator
// plus the software last-line cache of §3.6: "Maintain a software
// cache of the last line processed on each stream, and reload the
// interpolation hardware whenever we interleave segments."
//
// The hardware holds the last line of exactly one stream; decoding a
// segment from a different stream requires reloading from the cache.
// Reloads are counted so experiments can show the cost of
// interleaving.
type Interpolator struct {
	cache      map[uint32][]byte // per-stream last line
	loaded     uint32            // stream whose line is in "hardware"
	hasLoaded  bool
	reloads    uint64
	interleave uint64
}

// NewInterpolator returns an interpolator with an empty cache.
func NewInterpolator() *Interpolator {
	return &Interpolator{cache: make(map[uint32][]byte)}
}

// Reloads returns how many cache→hardware reloads interleaving has
// forced.
func (ip *Interpolator) Reloads() uint64 { return ip.reloads }

// Begin prepares to decode a segment of the given stream, reloading
// the hardware from the software cache when the stream changes.
// It returns the previous line to interpolate against (nil at the
// top of a stream or after a discontinuity).
func (ip *Interpolator) Begin(stream uint32) []byte {
	if !ip.hasLoaded || ip.loaded != stream {
		if ip.hasLoaded {
			ip.interleave++
		}
		ip.loaded = stream
		ip.hasLoaded = true
		if prev, ok := ip.cache[stream]; ok {
			ip.reloads++
			return prev
		}
		return nil
	}
	return ip.cache[stream]
}

// Advance records that line is now the last processed line of the
// loaded stream.
func (ip *Interpolator) Advance(stream uint32, line []byte) {
	if !ip.hasLoaded || ip.loaded != stream {
		panic(fmt.Sprintf("video: Advance for stream %d without Begin", stream))
	}
	ip.cache[stream] = append(ip.cache[stream][:0], line...)
}

// Forget drops a stream's cached line (stream closed).
func (ip *Interpolator) Forget(stream uint32) {
	delete(ip.cache, stream)
	if ip.hasLoaded && ip.loaded == stream {
		ip.hasLoaded = false
	}
}

// InterpolateVertical reconstructs a skipped line as the average of
// its neighbours — the "interpolate... vertically" capability whose
// first line needs the previous segment's last line.
func InterpolateVertical(prev, next []byte) []byte {
	if prev == nil {
		return append([]byte(nil), next...)
	}
	out := make([]byte, len(next))
	for i := range out {
		out[i] = byte((int(prev[i]) + int(next[i])) / 2)
	}
	return out
}
