package video

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/occam"
	"repro/internal/segment"
)

func gradient(w, h, seed int) *Frame {
	f := NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, byte((x+y*2+seed)&0xFF))
		}
	}
	return f
}

func TestFrameBasics(t *testing.T) {
	f := NewFrame(8, 4)
	f.Set(3, 2, 77)
	if f.At(3, 2) != 77 {
		t.Fatal("Set/At broken")
	}
	if len(f.Row(2)) != 8 || f.Row(2)[3] != 77 {
		t.Fatal("Row broken")
	}
	sub := f.SubImage(Rect{X: 2, Y: 2, W: 4, H: 2})
	if sub.At(1, 0) != 77 {
		t.Fatal("SubImage offset wrong")
	}
	g := NewFrame(8, 4)
	g.Blit(sub, 2, 2)
	if g.At(3, 2) != 77 {
		t.Fatal("Blit offset wrong")
	}
	if !f.Equal(f) || f.Equal(NewFrame(8, 4)) {
		t.Fatal("Equal broken")
	}
	if f.MeanAbsDiff(f) != 0 {
		t.Fatal("MeanAbsDiff(self) != 0")
	}
}

func TestFramestorePorts(t *testing.T) {
	fs := NewFramestore(16, 8)
	src := gradient(16, 8, 0)
	fs.WriteLines(src, 0, 8)
	got := fs.ReadRect(Rect{X: 4, Y: 2, W: 8, H: 4})
	want := src.SubImage(Rect{X: 4, Y: 2, W: 8, H: 4})
	if !got.Equal(want) {
		t.Fatal("ReadRect mismatch")
	}
	// Partial write only touches given rows.
	src2 := gradient(16, 8, 99)
	fs.WriteLines(src2, 0, 4)
	if fs.ReadRect(Rect{W: 16, H: 1}).Row(0)[0] != src2.Row(0)[0] {
		t.Fatal("partial write missed row 0")
	}
	if fs.ReadRect(Rect{Y: 7, W: 16, H: 1}).Row(0)[0] != src.Row(7)[0] {
		t.Fatal("partial write touched row 7")
	}
}

func TestRateFractions(t *testing.T) {
	// "2/5 gives an average of 10 frames per second."
	r := Rate{Num: 2, Den: 5}
	if r.FPS() != 10 {
		t.Fatalf("FPS = %v", r.FPS())
	}
	taken := 0
	for n := 0; n < 100; n++ {
		if r.Take(n) {
			taken++
		}
	}
	if taken != 40 {
		t.Fatalf("2/5 took %d of 100 frames, want 40", taken)
	}
	// Full rate takes everything.
	full := Rate{Num: 1, Den: 1}
	for n := 0; n < 10; n++ {
		if !full.Take(n) {
			t.Fatal("1/1 skipped a frame")
		}
	}
	if (Rate{}).Take(3) || (Rate{Num: 3, Den: 2}).Valid() {
		t.Fatal("invalid rates accepted")
	}
}

func TestRateSpreadIsEven(t *testing.T) {
	// Bresenham selection: never two gaps of wildly different length
	// for 1/3 (the gaps are exactly 3).
	r := Rate{Num: 1, Den: 3}
	var last, count int
	for n := 0; n < 99; n++ {
		if r.Take(n) {
			if count > 0 && n-last != 3 {
				t.Fatalf("1/3 gap of %d at frame %d", n-last, n)
			}
			last = n
			count++
		}
	}
	if count != 33 {
		t.Fatalf("1/3 took %d of 99", count)
	}
}

func TestQuickRateTakesExactFraction(t *testing.T) {
	f := func(num, den uint8) bool {
		n := int(num%10) + 1
		d := int(den%10) + 1
		if n > d {
			n, d = d, n
		}
		r := Rate{Num: n, Den: d}
		taken := 0
		for i := 0; i < 10*d; i++ {
			if r.Take(i) {
				taken++
			}
		}
		return taken == 10*n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressLineRoundTripLossBounded(t *testing.T) {
	line := gradient(64, 1, 5).Row(0)
	for _, lp := range []LineParams{
		{},
		{Shift: 1},
		{Shift: 3},
		{Subsample: true},
		{Subsample: true, Shift: 2},
	} {
		wire, recon := CompressLine(line, lp)
		got, err := DecompressLine(wire, 64)
		if err != nil {
			t.Fatalf("%+v: %v", lp, err)
		}
		// Decoder must match the encoder's reconstruction exactly.
		for i := range got {
			if got[i] != recon[i] {
				t.Fatalf("%+v: decoder diverges from encoder recon at %d", lp, i)
			}
		}
		if len(wire) != CompressedLineSize(64, lp) {
			t.Fatalf("%+v: wire %d bytes, want %d", lp, len(wire), CompressedLineSize(64, lp))
		}
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	lp := LineParams{Shift: 1}
	if CompressedLineSize(64, lp) >= 64 {
		t.Fatal("DPCM line not smaller than raw")
	}
	if s := CompressedLineSize(64, LineParams{Subsample: true}); s >= 36 {
		t.Fatalf("subsampled line %d bytes", s)
	}
}

func TestRawLineExact(t *testing.T) {
	line := gradient(32, 1, 9).Row(0)
	wire, _ := CompressLine(line, LineParams{Raw: true})
	got, err := DecompressLine(wire, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range line {
		if got[i] != line[i] {
			t.Fatal("raw line not exact")
		}
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := DecompressLine(nil, 8); err == nil {
		t.Fatal("nil wire accepted")
	}
	if _, err := DecompressLine([]byte{0}, 8); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestDPCMTracksSmoothContent(t *testing.T) {
	// A smooth gradient must survive fine-shift DPCM with small error.
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(100 + i)
	}
	wire, _ := CompressLine(line, LineParams{})
	got, _ := DecompressLine(wire, 64)
	for i := 8; i < len(line); i++ { // allow leading convergence from pred=128
		d := int(got[i]) - int(line[i])
		if d < -8 || d > 8 {
			t.Fatalf("pixel %d error %d", i, d)
		}
	}
}

func TestSliceSegmentStructure(t *testing.T) {
	img := gradient(32, 10, 1)
	hdr := segment.NewVideo(0, 0, 1, 1, 0, 0, 0, 32, 0, 10, nil)
	descs, total := SliceSegment(hdr, img, LineParams{}, 4)
	if descs[0].Kind != SliceHead || descs[0].Header != hdr {
		t.Fatal("no head description")
	}
	var dataSlices, lines int
	for _, d := range descs {
		if d.Kind == SliceData {
			dataSlices++
			lines += d.Lines
		}
	}
	if dataSlices != 3 || lines != 10 { // 4+4+2
		t.Fatalf("dataSlices=%d lines=%d", dataSlices, lines)
	}
	if descs[len(descs)-2].Kind != SliceTail {
		t.Fatal("no tail before dummy")
	}
	if descs[len(descs)-1].Kind != SliceDummy {
		t.Fatal("no dummy flush")
	}
	if total <= 0 {
		t.Fatal("zero compressed size")
	}
}

func TestHoldbackBufferModelsPipeline(t *testing.T) {
	// The tail of segment 1 must not be released until segment 2's
	// first data slice pushes segment 1's last slice through.
	var hb HoldbackBuffer
	img := gradient(16, 4, 2)
	hdr1 := segment.NewVideo(0, 0, 1, 1, 0, 0, 0, 16, 0, 4, nil)
	descs1, _ := SliceSegment(hdr1, img, LineParams{}, 4)
	for _, d := range descs1 {
		hb.Put(d)
	}
	var got []SliceKind
	for {
		d, ok := hb.Take()
		if !ok {
			break
		}
		got = append(got, d.Kind)
	}
	// Head flows freely; the single data slice is held; the dummy
	// pushed the data slice out, so we see head+data, but tail waits
	// behind... tail follows data in held. Check the invariant
	// directly: the buffer still holds something (the pipeline is
	// never empty between segments).
	if hb.Held() == 0 {
		t.Fatal("pipeline model empty after one segment")
	}
	// A second segment's slices push the rest through.
	hdr2 := segment.NewVideo(1, 0, 2, 1, 0, 0, 0, 16, 0, 4, nil)
	descs2, _ := SliceSegment(hdr2, img, LineParams{}, 4)
	for _, d := range descs2 {
		hb.Put(d)
	}
	for {
		d, ok := hb.Take()
		if !ok {
			break
		}
		got = append(got, d.Kind)
	}
	// Everything from segment 1 must have emerged by now.
	var tails int
	for _, k := range got {
		if k == SliceTail {
			tails++
		}
	}
	if tails < 1 {
		t.Fatalf("segment 1 tail never emerged: %v", got)
	}
}

func TestInterpolatorReloadOnInterleave(t *testing.T) {
	ip := NewInterpolator()
	lineA := []byte{1, 2, 3}
	lineB := []byte{9, 8, 7}
	if prev := ip.Begin(1); prev != nil {
		t.Fatal("fresh stream has a previous line")
	}
	ip.Advance(1, lineA)
	// Same stream continues: no reload.
	if prev := ip.Begin(1); prev == nil || prev[0] != 1 {
		t.Fatal("continuation lost the last line")
	}
	reloadsBefore := ip.Reloads()
	// Interleave stream 2, then return to stream 1: reload required.
	ip.Begin(2)
	ip.Advance(2, lineB)
	prev := ip.Begin(1)
	if prev == nil || prev[0] != 1 {
		t.Fatal("stream 1 cache lost across interleave")
	}
	if ip.Reloads() <= reloadsBefore {
		t.Fatal("interleave did not count a reload")
	}
	ip.Forget(1)
	if prev := ip.Begin(1); prev != nil {
		t.Fatal("Forget did not clear the cache")
	}
}

func TestInterleavedDecodeMatchesSequential(t *testing.T) {
	// Decoding two streams' segments interleaved must give the same
	// pixels as decoding them back to back — the whole point of the
	// line cache (§3.6 choice 3).
	imgA := gradient(16, 8, 3)
	imgB := gradient(16, 8, 200)
	hdrA := segment.NewVideo(0, 0, 1, 1, 0, 0, 0, 16, 0, 8, nil)
	hdrB := segment.NewVideo(0, 0, 1, 1, 0, 0, 0, 16, 0, 8, nil)
	slicesA, _ := SliceSegment(hdrA, imgA, LineParams{}, 4)
	slicesB, _ := SliceSegment(hdrB, imgB, LineParams{}, 4)

	seq := NewInterpolator()
	seqA, err := ReassembleSegment(seq, 1, slicesA, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := ReassembleSegment(seq, 2, slicesB, 16, 8)
	if err != nil {
		t.Fatal(err)
	}

	inter := NewInterpolator()
	// Interleave at segment granularity with fresh assemblies.
	intA, _ := ReassembleSegment(inter, 1, slicesA[:3], 16, 8)
	_ = intA
	// Decode B fully in between.
	intB, err := ReassembleSegment(inter, 2, slicesB, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	intA2, err := ReassembleSegment(inter, 1, slicesA, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !intB.Equal(seqB) {
		t.Fatal("stream B decode differs when interleaved")
	}
	if !intA2.Equal(seqA) {
		t.Fatal("stream A decode differs when interleaved")
	}
}

func TestScanSafeReadNeverCollides(t *testing.T) {
	scan := Scan{Lines: 100, Period: 40 * time.Millisecond}
	rect := Rect{Y: 30, H: 20, W: 64, X: 0}
	readTime := 5 * time.Millisecond
	for _, start := range []time.Duration{0, 3 * time.Millisecond, 12 * time.Millisecond, 13 * time.Millisecond, 39 * time.Millisecond} {
		now := occam.Time(start)
		at := scan.SafeReadStart(now, rect, readTime)
		if at < now {
			t.Fatalf("SafeReadStart went backwards: %v < %v", at, now)
		}
		if scan.Collides(at, rect, readTime) {
			t.Fatalf("collision at %v (from %v): scan line %d..", at, now, scan.LineAt(at))
		}
		if at.Sub(now) > 2*scan.Period {
			t.Fatalf("waited %v for a safe window", at.Sub(now))
		}
	}
}

func TestScanCollides(t *testing.T) {
	scan := Scan{Lines: 100, Period: 40 * time.Millisecond}
	rect := Rect{Y: 0, H: 100, W: 1}
	// Reading the whole frame while the scan runs must collide.
	if !scan.Collides(0, rect, 10*time.Millisecond) {
		t.Fatal("full-frame read during scan did not collide")
	}
	small := Rect{Y: 90, H: 5, W: 1}
	// Scan is at line 0 at t=0; a fast read of the bottom is safe.
	if scan.Collides(0, small, time.Millisecond) {
		t.Fatal("bottom read collided with scan at the top")
	}
}

func TestAssemblerCompleteFrame(t *testing.T) {
	a := NewAssembler(32, 8)
	full := gradient(32, 8, 7)
	top := full.SubImage(Rect{X: 0, Y: 0, W: 32, H: 4})
	bottom := full.SubImage(Rect{X: 0, Y: 4, W: 32, H: 4})
	h1 := segment.NewVideo(0, 0, 1, 2, 0, 0, 0, 32, 0, 4, nil)
	h2 := segment.NewVideo(1, 0, 1, 2, 1, 0, 4, 32, 4, 4, nil)
	if img := a.Add(h1, top); img != nil {
		t.Fatal("partial frame displayed — visible tear")
	}
	if a.InProgress() != true {
		t.Fatal("assembly not in progress")
	}
	img := a.Add(h2, bottom)
	if img == nil {
		t.Fatal("complete frame not released")
	}
	if !img.Equal(full) {
		t.Fatal("assembled frame wrong")
	}
	if a.Stats().Complete != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestAssemblerAbandonsOnNewerFrame(t *testing.T) {
	a := NewAssembler(32, 8)
	piece := gradient(32, 4, 0)
	h1 := segment.NewVideo(0, 0, 1, 2, 0, 0, 0, 32, 0, 4, nil)
	a.Add(h1, piece)
	// Frame 2 arrives before frame 1 completed.
	h2 := segment.NewVideo(2, 0, 2, 2, 0, 0, 0, 32, 0, 4, nil)
	a.Add(h2, piece)
	if a.Stats().Abandoned != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
	// A late segment of old frame 1 is discarded.
	h1b := segment.NewVideo(1, 0, 1, 2, 1, 0, 4, 32, 4, 4, nil)
	if img := a.Add(h1b, piece); img != nil {
		t.Fatal("stale segment completed a frame")
	}
	if a.Stats().Duplicates != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestAssemblerDuplicateSegment(t *testing.T) {
	a := NewAssembler(32, 8)
	piece := gradient(32, 4, 0)
	h := segment.NewVideo(0, 0, 1, 2, 0, 0, 0, 32, 0, 4, nil)
	a.Add(h, piece)
	if img := a.Add(h, piece); img != nil {
		t.Fatal("duplicate completed frame")
	}
	if a.Stats().Duplicates != 1 {
		t.Fatal("duplicate not counted")
	}
}

func TestRectString(t *testing.T) {
	if (Rect{X: 1, Y: 2, W: 3, H: 4}).String() != "3x4+1+2" {
		t.Fatal("Rect.String broken")
	}
	if (Rate{Num: 2, Den: 5}).String() != "2/5" {
		t.Fatal("Rate.String broken")
	}
	for _, k := range []SliceKind{SliceHead, SliceData, SliceTail, SliceDummy, SliceKind(9)} {
		if k.String() == "" {
			t.Fatal("SliceKind.String broken")
		}
	}
}
