package video

import (
	"repro/internal/occam"
	"repro/internal/segment"
)

// Slicing (§3.6): "Each segment of video data is reduced further into
// several slices of a few lines each for transmission through the
// compression subsystem... A header slice description precedes the
// first slice of a segment... When the last slice has been sent, a
// tail marker is sent over the link."

// DefaultSliceLines is the slice height ("a few lines each").
const DefaultSliceLines = 4

// DummyFlushLines is how many raw dummy lines follow each segment to
// flush the compression pipeline ("we send a few dummy lines after
// each video segment").
const DummyFlushLines = 2

// SliceKind distinguishes descriptions on the capture→server link.
type SliceKind int

const (
	// SliceHead precedes the first slice and carries the full segment
	// header, the compression algorithm and the stream number.
	SliceHead SliceKind = iota
	// SliceData describes one slice of compressed lines in the fifo.
	SliceData
	// SliceTail marks the end of a segment's slices.
	SliceTail
	// SliceDummy describes pipeline-flushing dummy lines that the
	// server "must not attempt to read... until some other data has
	// pushed them through".
	SliceDummy
)

func (k SliceKind) String() string {
	switch k {
	case SliceHead:
		return "head"
	case SliceData:
		return "data"
	case SliceTail:
		return "tail"
	case SliceDummy:
		return "dummy"
	}
	return "?"
}

// SliceDesc is one slice description sent over the transputer link,
// modelling the data that is in transit through the fifos and
// compression hardware.
type SliceDesc struct {
	Kind   SliceKind
	Stream uint32
	// Header is the full segment header (SliceHead only).
	Header *segment.Video
	// Lines and Bytes describe the compressed slice (SliceData/Dummy):
	// "a small description containing the number of lines and their
	// length after compression".
	Lines int
	Bytes int
	// Data carries the compressed lines through the simulated fifo.
	Data [][]byte
}

// SliceSegment cuts a captured rectangle into compressed slices plus
// head/tail/dummy descriptions ready for the link, and returns the
// total compressed byte count.
func SliceSegment(hdr *segment.Video, img *Frame, lp LineParams, sliceLines int) ([]SliceDesc, int) {
	if sliceLines <= 0 {
		sliceLines = DefaultSliceLines
	}
	descs := []SliceDesc{{Kind: SliceHead, Stream: hdr.Seq, Header: hdr}}
	total := 0
	for y := 0; y < img.H; y += sliceLines {
		end := y + sliceLines
		if end > img.H {
			end = img.H
		}
		d := SliceDesc{Kind: SliceData, Lines: end - y}
		for row := y; row < end; row++ {
			wire, _ := CompressLine(img.Row(row), lp)
			d.Data = append(d.Data, wire)
			d.Bytes += len(wire)
		}
		total += d.Bytes
		descs = append(descs, d)
	}
	descs = append(descs, SliceDesc{Kind: SliceTail})
	// Dummy flush lines: raw so they cannot disturb DPCM state.
	dummy := SliceDesc{Kind: SliceDummy, Lines: DummyFlushLines}
	blank := make([]byte, img.W)
	for i := 0; i < DummyFlushLines; i++ {
		wire, _ := CompressLine(blank, LineParams{Raw: true})
		dummy.Data = append(dummy.Data, wire)
		dummy.Bytes += len(wire)
	}
	descs = append(descs, dummy)
	return descs, total
}

// HoldbackBuffer is the special buffer on the capture→server link
// (§3.6): "It is designed to always hold back one slice description
// at all times, with any tail or head descriptions that follow, until
// another slice description is read. In this way, the buffer chain
// models the slice of data that will always be held in the
// compression pipeline, but still allows for several slices to be in
// transit when necessary."
//
// Concretely: head/tail/dummy descriptions are control — they flow
// only while a data slice is held behind them; a data slice is
// released only when the *next* data slice arrives (the new slice
// pushes the old one out of the pipeline).
type HoldbackBuffer struct {
	held     []SliceDesc // the retained data slice + trailing control
	out      []SliceDesc // ready for the server
	heldData bool
}

// Put offers one slice description to the buffer.
func (hb *HoldbackBuffer) Put(d SliceDesc) {
	if d.Kind == SliceData || d.Kind == SliceDummy {
		// A new slice entering the pipeline pushes the held one out.
		if hb.heldData {
			hb.out = append(hb.out, hb.held...)
			hb.held = hb.held[:0]
		}
		hb.held = append(hb.held, d)
		hb.heldData = true
		return
	}
	if hb.heldData {
		// Control descriptions queue behind the held slice.
		hb.held = append(hb.held, d)
	} else {
		hb.out = append(hb.out, d)
	}
}

// Take removes the next description available to the server, if any.
func (hb *HoldbackBuffer) Take() (SliceDesc, bool) {
	if len(hb.out) == 0 {
		return SliceDesc{}, false
	}
	d := hb.out[0]
	hb.out = hb.out[1:]
	return d, true
}

// Held returns how many descriptions are retained, modelling the
// pipeline occupancy.
func (hb *HoldbackBuffer) Held() int { return len(hb.held) }

// ReassembleSegment decodes a sequence of data slices back into a
// frame of the given geometry, using the interpolator's per-stream
// line cache for vertical continuity across segments.
func ReassembleSegment(ip *Interpolator, stream uint32, descs []SliceDesc, width, height int) (*Frame, error) {
	img := NewFrame(width, height)
	prev := ip.Begin(stream)
	_ = prev // vertical continuity: available to interpolation modes
	y := 0
	for _, d := range descs {
		if d.Kind != SliceData {
			continue
		}
		for _, wire := range d.Data {
			if y >= height {
				break
			}
			line, err := DecompressLine(wire, width)
			if err != nil {
				return nil, err
			}
			copy(img.Row(y), line)
			ip.Advance(stream, line)
			y++
		}
	}
	return img, nil
}

// CaptureTiming computes when a rectangle may safely be read from the
// framestore: "The reading of the blocks is carefully timed so that
// the data from the camera being written continuously on a second
// port does not update any part of a block while it is being read."
// See Scan.SafeReadStart.
type CaptureTiming struct {
	Scan Scan
	// ReadTime is how long reading one rectangle takes.
	ReadTime func(r Rect) occam.Time
}
