package box

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/allocator"
	"repro/internal/atm"
	"repro/internal/decouple"
	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/segment"
)

// The server board (§3.4/§3.5, figure 3.3): input device handlers
// fill shared buffers and send their indices to the switch, which
// consults per-stream tables and forwards descriptors into the
// decoupling buffers of each requested output device. The buffers sit
// *downstream* of the switch "so that the poor performance of one
// output device does not affect streams to other output devices"
// (principle 5), and the switch "simply omits to send ... any more
// segments" to a full one, counting and reporting the drops.

// outIndex maps Output → decoupling buffer slot; OutNetwork expands
// to two buffers (figure 3.7: audio split from video "so that it can
// be given priority", principle 2).
const (
	bufSpeaker = iota
	bufNetAudio
	bufNetVideo
	bufDisplay
	numOutBufs
)

// slotName names a decoupling buffer slot for metrics and traces.
func slotName(slot int) string {
	switch slot {
	case bufSpeaker:
		return "speaker"
	case bufNetAudio:
		return "net-audio"
	case bufNetVideo:
		return "net-video"
	case bufDisplay:
		return "display"
	}
	return "?"
}

func (b *Box) startServer() {
	rt, name := b.rt, b.cfg.Name
	mk := func(slot int, nm string, capacity int) {
		b.outBufs[slot] = decouple.New[*allocator.Buffer](
			rt, b.serverNode, name+"."+nm, capacity, nil,
			decouple.WithReady(), decouple.WithObs(b.cfg.Obs))
	}
	mk(bufSpeaker, "spkbuf", switchBufferSegments)
	mk(bufNetAudio, "netAbuf", netAudioBufferSegments)
	mk(bufNetVideo, "netVbuf", netVideoBufferSegments)
	mk(bufDisplay, "dispbuf", switchBufferSegments)

	rt.Go(name+".switch", b.serverNode, occam.High, b.runSwitch)
	rt.Go(name+".audioIn", b.serverNode, occam.High, b.runAudioIn)
	rt.Go(name+".netIn", b.serverNode, occam.High, b.runNetIn)
	rt.Go(name+".captureIn", b.serverNode, occam.High, b.runCaptureIn)
	rt.Go(name+".audioOut", b.serverNode, occam.High, b.runAudioOut)
	rt.Go(name+".netOut", b.serverNode, occam.High, b.runNetOut)
	rt.Go(name+".displayOut", b.serverNode, occam.High, b.runDisplayOut)
}

// bufSlotsFor returns which decoupling buffers serve a route output.
// With the A2 ablation everything network-bound shares the video
// buffer, losing audio its separate queue.
func (b *Box) bufSlotsFor(o Output, payload any) []int {
	switch o {
	case OutSpeaker:
		return []int{bufSpeaker}
	case OutDisplay:
		return []int{bufDisplay}
	case OutNetwork:
		if b.cfg.SharedNetBuffer {
			return []int{bufNetVideo}
		}
		if _, isAudio := payload.(*segment.Audio); isAudio {
			return []int{bufNetAudio}
		}
		return []int{bufNetVideo}
	}
	return nil
}

// runSwitch is the server data switch: PRI ALT with commands first
// (principle 4), then ready-channel updates, then data.
func (b *Box) runSwitch(p *occam.Proc) {
	rep := newReporter(b.cfg.Name+".switch", b.Reports)
	routes := make(map[uint32]*Route)
	senders := make([]*decouple.Sender[*allocator.Buffer], numOutBufs)
	for i := range senders {
		senders[i] = decouple.NewSender(b.outBufs[i])
	}
	// Principle-3 state per output buffer: how many of the oldest
	// streams are currently being degraded, and when the last forced
	// (buffer-full) drop happened.
	degrade := make([]int, numOutBufs)
	lastForced := make([]occam.Time, numOutBufs)

	for {
		var (
			cmd   SwitchCommand
			buf   *allocator.Buffer
			ready [numOutBufs]bool
		)
		guards := []occam.Guard{occam.Recv(b.switchCmd, &cmd)}
		for i, s := range senders {
			guards = append(guards, s.ReadyGuard(&ready[i]))
		}
		guards = append(guards, occam.Recv(b.toSwitch, &buf))

		switch idx := p.Alt(guards...); {
		case idx == 0:
			b.handleSwitchCommand(p, rep, routes, cmd)
		case idx <= numOutBufs:
			senders[idx-1].Update(ready[idx-1])
		default:
			r := routes[buf.Stream]
			if r == nil {
				b.swStats.NoRoute++
				b.pool.Release(p, buf)
				continue
			}
			size := payloadSize(buf.Payload)
			p.Consume(serverSwitchCost + time.Duration(size)*serverCopyPerKB/1024)

			// Expand outputs to buffer slots.
			var slots []int
			for _, o := range r.Outputs {
				slots = append(slots, b.bufSlotsFor(o, buf.Payload)...)
			}
			if len(slots) == 0 {
				b.pool.Release(p, buf)
				continue
			}
			b.swStats.Switched++
			// One reference per destination (§3.4).
			b.pool.Retain(p, buf, len(slots)-1)
			for _, slot := range slots {
				// Principle 3: under pressure, the oldest streams
				// degrade first.
				if degrade[slot] > 0 && b.isAmongOldest(routes, r, slot, degrade[slot]) {
					// Principle 3 in action: the oldest stream degrades
					// to protect the younger ones.
					b.swStats.AgeDrops[slot]++
					b.swStats.PerStreamDrops[buf.Stream]++
					b.pool.Release(p, buf)
					b.trace.Emit(obs.EvDrop, b.cfg.Name+".switch", buf.Stream,
						"age-degrade "+slotName(slot))
					continue
				}
				if !senders[slot].Deliver(p, buf) {
					// Buffer full: "the switch simply omits to send it
					// any more segments... records how many segments
					// have been dropped in this way, and periodically
					// sends reports while the condition persists."
					b.swStats.FullDrops[slot]++
					b.swStats.PerStreamDrops[buf.Stream]++
					b.pool.Release(p, buf)
					rep.Report(p, fmt.Sprintf("full-%d", slot),
						"output %d full: dropping (total %d)", slot, b.swStats.FullDrops[slot])
					if degrade[slot] < b.streamsFor(routes, slot)-1 {
						degrade[slot]++
						b.trace.Emit(obs.EvOverload, b.cfg.Name+".switch", buf.Stream,
							fmt.Sprintf("output %s full, degrading %d oldest", slotName(slot), degrade[slot]))
					}
					lastForced[slot] = p.Now()
				}
			}
			// Relax degradation when no forced drop for a while
			// (principle 8: adapt to local conditions).
			for slot := range degrade {
				if degrade[slot] > 0 && p.Now().Sub(lastForced[slot]) > 500*time.Millisecond {
					degrade[slot]--
					lastForced[slot] = p.Now()
					if degrade[slot] == 0 {
						b.trace.Emit(obs.EvRecover, b.cfg.Name+".switch", 0,
							"output "+slotName(slot)+" recovered")
					}
				}
			}
		}
	}
}

func (b *Box) handleSwitchCommand(p *occam.Proc, rep *Reporter, routes map[uint32]*Route, cmd SwitchCommand) {
	switch {
	case cmd.Set != nil:
		r := *cmd.Set
		routes[r.Stream] = &r
		b.trace.Emit(obs.EvReconfig, b.cfg.Name+".switch", r.Stream,
			fmt.Sprintf("route set: %v", r.Outputs))
	case cmd.HasClose:
		delete(routes, cmd.Close)
		b.trace.Emit(obs.EvReconfig, b.cfg.Name+".switch", cmd.Close, "route closed")
	case cmd.ReportReq:
		rep.Report(p, "status", "routes=%d switched=%d noroute=%d",
			len(routes), b.swStats.Switched, b.swStats.NoRoute)
	}
}

// streamsFor counts streams routed to a buffer slot.
func (b *Box) streamsFor(routes map[uint32]*Route, slot int) int {
	n := 0
	for _, r := range routes {
		for _, o := range r.Outputs {
			if slotMatches(o, slot) {
				n++
			}
		}
	}
	return n
}

// isAmongOldest reports whether r is within the k oldest streams
// routed to slot.
func (b *Box) isAmongOldest(routes map[uint32]*Route, r *Route, slot, k int) bool {
	var opened []occam.Time
	for _, o := range routes {
		for _, out := range o.Outputs {
			if slotMatches(out, slot) {
				opened = append(opened, o.Opened)
				break
			}
		}
	}
	if len(opened) <= 1 {
		return false
	}
	sort.Slice(opened, func(i, j int) bool { return opened[i] < opened[j] })
	if k > len(opened)-1 {
		k = len(opened) - 1
	}
	cutoff := opened[k-1]
	return r.Opened <= cutoff
}

func slotMatches(o Output, slot int) bool {
	switch o {
	case OutSpeaker:
		return slot == bufSpeaker
	case OutNetwork:
		return slot == bufNetAudio || slot == bufNetVideo
	case OutDisplay:
		return slot == bufDisplay
	}
	return false
}

func payloadSize(payload any) int {
	switch s := payload.(type) {
	case *segment.Audio:
		return s.WireSize()
	case *segment.Video:
		return s.WireSize()
	}
	return 0
}

// runAudioIn receives mic segments from the audio board link, fills
// buffers obtained in advance from the allocator, and launches their
// indices into the switch.
func (b *Box) runAudioIn(p *occam.Proc) {
	for {
		buf := b.pool.Get(p) // "obtain empty buffers ... in advance"
		msg := b.audioToServer.Recv(p)
		size := msg.Seg.WireSize()
		p.Consume(time.Duration(size) * serverCopyPerKB / 1024)
		buf.Payload = msg.Seg
		buf.Stream = msg.Stream
		b.toSwitch.Send(p, buf)
	}
}

// runNetIn receives network messages; the VCI is the local stream
// number (§3.4).
func (b *Box) runNetIn(p *occam.Proc) {
	reasm := make(map[uint32]*chunkedVideo)
	for {
		buf := b.pool.Get(p)
		var m atm.Message
		for {
			m = b.host.Rx.Recv(p)
			if payload, done := reassemble(reasm, m); done {
				m.Payload = payload
				break
			}
		}
		p.Consume(time.Duration(m.Size) * serverCopyPerKB / 1024)
		buf.Payload = m.Payload
		buf.Stream = m.VCI
		b.toSwitch.Send(p, buf)
	}
}

// runCaptureIn receives compressed video segments from the capture
// board fifo.
func (b *Box) runCaptureIn(p *occam.Proc) {
	for {
		buf := b.pool.Get(p)
		msg := b.captureToServer.Recv(p)
		p.Consume(time.Duration(msg.Seg.WireSize()) * serverCopyPerKB / 1024)
		buf.Payload = msg.Seg
		buf.Stream = msg.Stream
		b.toSwitch.Send(p, buf)
	}
}

// runAudioOut moves speaker-bound segments over the link to the
// audio board.
func (b *Box) runAudioOut(p *occam.Proc) {
	out := b.outBufs[bufSpeaker].Out
	for {
		buf := out.Recv(p)
		seg := buf.Payload.(*segment.Audio)
		size := seg.WireSize() + segment.StreamNumberSize
		p.Consume(time.Duration(size) * serverCopyPerKB / 1024)
		b.serverToAudio.Send(p, audioMsg{Stream: buf.Stream, Seg: seg}, size)
		b.pool.Release(p, buf)
	}
}

// runDisplayOut moves display-bound video over the fifo to the mixer
// board.
func (b *Box) runDisplayOut(p *occam.Proc) {
	out := b.outBufs[bufDisplay].Out
	for {
		buf := out.Recv(p)
		seg := buf.Payload.(*segment.Video)
		size := seg.WireSize()
		p.Consume(time.Duration(size) * serverCopyPerKB / 1024)
		b.serverToMixer.Send(p, videoMsg{Stream: buf.Stream, Seg: seg}, size)
		b.pool.Release(p, buf)
	}
}

// netTransmit occupies the network output process for a message's
// transmission time at the interface bandwidth.
func (b *Box) netTransmit(p *occam.Proc, size int) {
	p.Sleep(time.Duration(int64(size) * 8 * int64(time.Second) / b.cfg.NetInterfaceBits))
}

// netChunkSize is the A4 interleaving granularity.
const netChunkSize = 1024

// videoChunk is one piece of a chunked video segment (A4 ablation).
type videoChunk struct {
	Seg   *segment.Video
	Index int
	Total int
}

type chunkedVideo struct {
	got, total int
	seg        *segment.Video
}

// reassemble merges chunked video; whole messages pass through.
func reassemble(m map[uint32]*chunkedVideo, msg atm.Message) (any, bool) {
	ch, isChunk := msg.Payload.(videoChunk)
	if !isChunk {
		return msg.Payload, true
	}
	st, ok := m[msg.VCI]
	if !ok || st.seg != ch.Seg {
		st = &chunkedVideo{total: ch.Total, seg: ch.Seg}
		m[msg.VCI] = st
	}
	st.got++
	if st.got >= st.total {
		delete(m, msg.VCI)
		return st.seg, true
	}
	return nil, false
}

// runNetOut is the network output process. Audio takes priority over
// video (principle 2, figure 3.7): the audio decoupling buffer is
// always polled first. Without InterleaveNetwork, a whole video
// segment is one network message, so "video segments can hold up
// following audio segments" (§4.2) on the shared first link.
func (b *Box) runNetOut(p *occam.Proc) {
	rep := newReporter(b.cfg.Name+".netOut", b.Reports)
	audioOut := b.outBufs[bufNetAudio].Out
	videoOut := b.outBufs[bufNetVideo].Out
	for {
		var buf *allocator.Buffer
		p.Alt(
			occam.Recv(audioOut, &buf), // principle 2: audio first
			occam.Recv(videoOut, &buf),
		)
		vcis, ok := b.netVCI[buf.Stream]
		if !ok {
			vcis = []uint32{buf.Stream}
		}
		// Splitting to several network destinations sends one copy per
		// VCI; a slow destination only affects its own circuit
		// (principle 5 — drops happen inside the network, never here).
		for _, vci := range vcis {
			switch seg := buf.Payload.(type) {
			case *segment.Audio:
				b.netTransmit(p, seg.WireSize())
				err := b.host.Send(p, atm.Message{VCI: vci, Size: seg.WireSize(), Payload: seg})
				if err != nil {
					rep.Report(p, "nocircuit", "audio stream %d: %v", buf.Stream, err)
				}
			case *segment.Video:
				if b.cfg.InterleaveNetwork {
					b.sendChunked(p, rep, vci, seg)
				} else {
					// Non-interleaved: the interface is occupied for
					// the whole video segment, holding up any audio
					// waiting in its buffer (§4.2).
					b.netTransmit(p, seg.WireSize())
					err := b.host.Send(p, atm.Message{VCI: vci, Size: seg.WireSize(), Payload: seg})
					if err != nil {
						rep.Report(p, "nocircuit", "video stream %d: %v", buf.Stream, err)
					}
				}
			}
		}
		b.pool.Release(p, buf)
	}
}

// sendChunked splits a video segment into cell-train chunks and lets
// waiting audio through between chunks (A4: interleaved transmission).
func (b *Box) sendChunked(p *occam.Proc, rep *Reporter, vci uint32, seg *segment.Video) {
	total := (seg.WireSize() + netChunkSize - 1) / netChunkSize
	audioOut := b.outBufs[bufNetAudio].Out
	for i := 0; i < total; i++ {
		// Drain any waiting audio first (principle 2 at chunk
		// granularity).
		for {
			var abuf *allocator.Buffer
			if p.Alt(occam.Recv(audioOut, &abuf), occam.Skip()) == 1 {
				break
			}
			aseg := abuf.Payload.(*segment.Audio)
			avcis, ok := b.netVCI[abuf.Stream]
			if !ok {
				avcis = []uint32{abuf.Stream}
			}
			for _, avci := range avcis {
				b.netTransmit(p, aseg.WireSize())
				if err := b.host.Send(p, atm.Message{VCI: avci, Size: aseg.WireSize(), Payload: aseg}); err != nil {
					rep.Report(p, "nocircuit", "audio stream %d: %v", abuf.Stream, err)
				}
			}
			b.pool.Release(p, abuf)
		}
		size := netChunkSize
		if i == total-1 {
			size = seg.WireSize() - (total-1)*netChunkSize
		}
		b.netTransmit(p, size)
		err := b.host.Send(p, atm.Message{
			VCI: vci, Size: size,
			Payload: videoChunk{Seg: seg, Index: i, Total: total},
		})
		if err != nil {
			rep.Report(p, "nocircuit", "video chunk: %v", err)
			return
		}
	}
}
