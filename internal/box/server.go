package box

import (
	"fmt"
	"time"

	"repro/internal/allocator"
	"repro/internal/atm"
	"repro/internal/decouple"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/segment"
)

// The server board (§3.4/§3.5, figure 3.3): input device handlers
// fill shared buffers and send their indices to the switch, which
// consults per-stream tables and forwards descriptors into the
// decoupling buffers of each requested output device. The buffers sit
// *downstream* of the switch "so that the poor performance of one
// output device does not affect streams to other output devices"
// (principle 5), and the switch "simply omits to send ... any more
// segments" to a full one, counting and reporting the drops.

// outIndex maps Output → decoupling buffer slot; OutNetwork expands
// to two buffers (figure 3.7: audio split from video "so that it can
// be given priority", principle 2).
const (
	bufSpeaker = iota
	bufNetAudio
	bufNetVideo
	bufDisplay
	numOutBufs
)

// slotName names a decoupling buffer slot for metrics and traces.
func slotName(slot int) string {
	switch slot {
	case bufSpeaker:
		return "speaker"
	case bufNetAudio:
		return "net-audio"
	case bufNetVideo:
		return "net-video"
	case bufDisplay:
		return "display"
	}
	return "?"
}

func (b *Box) startServer() {
	rt, name := b.rt, b.cfg.Name
	mk := func(slot int, nm string, capacity int) {
		opts := []decouple.Option{decouple.WithReady(), decouple.WithObs(b.cfg.Obs)}
		if ws := b.cfg.SinkStalls[slotName(slot)]; len(ws) > 0 {
			opts = append(opts, decouple.WithStall(faultinject.Stalls(ws)))
		}
		b.outBufs[slot] = decouple.New[*allocator.Buffer](
			rt, b.serverNode, name+"."+nm, capacity, nil, opts...)
	}
	mk(bufSpeaker, "spkbuf", switchBufferSegments)
	mk(bufNetAudio, "netAbuf", netAudioBufferSegments)
	mk(bufNetVideo, "netVbuf", netVideoBufferSegments)
	mk(bufDisplay, "dispbuf", switchBufferSegments)

	rt.Go(name+".switch", b.serverNode, occam.High, b.runSwitch)
	rt.Go(name+".audioIn", b.serverNode, occam.High, b.runAudioIn)
	rt.Go(name+".netIn", b.serverNode, occam.High, b.runNetIn)
	rt.Go(name+".captureIn", b.serverNode, occam.High, b.runCaptureIn)
	rt.Go(name+".audioOut", b.serverNode, occam.High, b.runAudioOut)
	rt.Go(name+".netOut", b.serverNode, occam.High, b.runNetOut)
	rt.Go(name+".displayOut", b.serverNode, occam.High, b.runDisplayOut)
}

// appendBufSlots appends the decoupling buffer slots serving a route
// output, picked by the wire's in-place type field. With the A2
// ablation everything network-bound shares the video buffer, losing
// audio its separate queue.
func (b *Box) appendBufSlots(slots []int, o Output, w segment.Wire) []int {
	switch o {
	case OutSpeaker:
		return append(slots, bufSpeaker)
	case OutDisplay:
		return append(slots, bufDisplay)
	case OutNetwork:
		if b.cfg.SharedNetBuffer || w.Type() == segment.TypeVideo {
			return append(slots, bufNetVideo)
		}
		return append(slots, bufNetAudio)
	}
	return slots
}

// runSwitch is the server data switch: PRI ALT with commands first
// (principle 4), then ready-channel updates, then data.
func (b *Box) runSwitch(p *occam.Proc) {
	rep := newReporter(b.cfg.Name+".switch", b.Reports)
	routes := make(map[uint32]*Route)
	shed := make(map[uint32]bool) // overload-controller suspensions
	senders := make([]*decouple.Sender[*allocator.Buffer], numOutBufs)
	for i := range senders {
		senders[i] = decouple.NewSender(b.outBufs[i])
	}
	// Principle-3 state per output buffer: how many of the oldest
	// streams are currently being degraded, and when the last forced
	// (buffer-full) drop happened.
	degrade := make([]int, numOutBufs)
	lastForced := make([]occam.Time, numOutBufs)

	// The guard slice is built once and reused: the sender ready
	// guards track their own conditions across iterations.
	var (
		cmd   SwitchCommand
		buf   *allocator.Buffer
		ready [numOutBufs]bool
	)
	guards := make([]occam.Guard, 0, numOutBufs+2)
	guards = append(guards, occam.Recv(b.switchCmd, &cmd))
	for i, s := range senders {
		guards = append(guards, s.ReadyGuard(&ready[i]))
	}
	guards = append(guards, occam.Recv(b.toSwitch, &buf))
	slots := make([]int, 0, numOutBufs)

	for {
		switch idx := p.Alt(guards...); {
		case idx == 0:
			b.handleSwitchCommand(p, rep, routes, shed, cmd)
		case idx <= numOutBufs:
			senders[idx-1].Update(ready[idx-1])
		default:
			r := routes[buf.Stream]
			if r == nil {
				b.swStats.NoRoute++
				b.pool.Release(p, buf)
				continue
			}
			if shed[buf.Stream] {
				// The overload controller suspended this stream: stop
				// its data at the earliest shared point, before any
				// copying or buffering.
				b.swStats.ShedDrops++
				b.swStats.PerStreamDrops[buf.Stream]++
				b.pool.Release(p, buf)
				b.trace.Emit(obs.EvDrop, b.cfg.Name+".switch", buf.Stream, "degrade-shed")
				continue
			}
			size := buf.Payload.Len()
			p.Consume(serverSwitchCost + time.Duration(size)*serverCopyPerKB/1024)

			// Expand outputs to buffer slots.
			slots = slots[:0]
			for _, o := range r.Outputs {
				slots = b.appendBufSlots(slots, o, buf.Payload)
			}
			if len(slots) == 0 {
				b.pool.Release(p, buf)
				continue
			}
			b.swStats.Switched++
			// One reference per destination (§3.4).
			b.pool.Retain(p, buf, len(slots)-1)
			for _, slot := range slots {
				// Principle 3: under pressure, the oldest streams
				// degrade first.
				if degrade[slot] > 0 && b.isAmongOldest(routes, r, slot, degrade[slot]) {
					// Principle 3 in action: the oldest stream degrades
					// to protect the younger ones.
					b.swStats.AgeDrops[slot]++
					b.swStats.PerStreamDrops[buf.Stream]++
					b.pool.Release(p, buf)
					b.trace.Emit(obs.EvDrop, b.cfg.Name+".switch", buf.Stream,
						"age-degrade "+slotName(slot))
					continue
				}
				if !senders[slot].Deliver(p, buf) {
					// Buffer full: "the switch simply omits to send it
					// any more segments... records how many segments
					// have been dropped in this way, and periodically
					// sends reports while the condition persists."
					b.swStats.FullDrops[slot]++
					b.swStats.PerStreamDrops[buf.Stream]++
					b.pool.Release(p, buf)
					rep.Report(p, fmt.Sprintf("full-%d", slot),
						"output %d full: dropping (total %d)", slot, b.swStats.FullDrops[slot])
					if degrade[slot] < b.streamsFor(routes, slot)-1 {
						degrade[slot]++
						b.trace.Emit(obs.EvOverload, b.cfg.Name+".switch", buf.Stream,
							fmt.Sprintf("output %s full, degrading %d oldest", slotName(slot), degrade[slot]))
					}
					lastForced[slot] = p.Now()
				}
			}
			// Relax degradation when no forced drop for a while
			// (principle 8: adapt to local conditions).
			for slot := range degrade {
				if degrade[slot] > 0 && p.Now().Sub(lastForced[slot]) > 500*time.Millisecond {
					degrade[slot]--
					lastForced[slot] = p.Now()
					if degrade[slot] == 0 {
						b.trace.Emit(obs.EvRecover, b.cfg.Name+".switch", 0,
							"output "+slotName(slot)+" recovered")
					}
				}
			}
		}
	}
}

func (b *Box) handleSwitchCommand(p *occam.Proc, rep *Reporter, routes map[uint32]*Route, shed map[uint32]bool, cmd SwitchCommand) {
	switch {
	case cmd.Set != nil:
		r := *cmd.Set
		routes[r.Stream] = &r
		b.trace.Emit(obs.EvReconfig, b.cfg.Name+".switch", r.Stream,
			fmt.Sprintf("route set: %v", r.Outputs))
	case cmd.HasClose:
		delete(routes, cmd.Close)
		delete(shed, cmd.Close)
		b.trace.Emit(obs.EvReconfig, b.cfg.Name+".switch", cmd.Close, "route closed")
	case cmd.HasShed:
		shed[cmd.Shed] = true
		b.trace.Emit(obs.EvReconfig, b.cfg.Name+".switch", cmd.Shed, "stream shed")
	case cmd.HasRestore:
		delete(shed, cmd.Restore)
		b.trace.Emit(obs.EvReconfig, b.cfg.Name+".switch", cmd.Restore, "stream restored")
	case cmd.ReportReq:
		rep.Report(p, "status", "routes=%d switched=%d noroute=%d",
			len(routes), b.swStats.Switched, b.swStats.NoRoute)
	}
}

// streamsFor counts streams routed to a buffer slot.
func (b *Box) streamsFor(routes map[uint32]*Route, slot int) int {
	n := 0
	for _, r := range routes {
		for _, o := range r.Outputs {
			if slotMatches(o, slot) {
				n++
			}
		}
	}
	return n
}

// isAmongOldest reports whether r is within the k oldest streams
// routed to slot. The open-time list is gathered into a reused
// scratch slice and insertion-sorted (a handful of streams at most) —
// this runs per switched segment under degrade pressure.
func (b *Box) isAmongOldest(routes map[uint32]*Route, r *Route, slot, k int) bool {
	opened := b.openedScratch[:0]
	for _, o := range routes {
		for _, out := range o.Outputs {
			if slotMatches(out, slot) {
				opened = append(opened, o.Opened)
				break
			}
		}
	}
	b.openedScratch = opened[:0]
	if len(opened) <= 1 {
		return false
	}
	for i := 1; i < len(opened); i++ {
		for j := i; j > 0 && opened[j-1] > opened[j]; j-- {
			opened[j-1], opened[j] = opened[j], opened[j-1]
		}
	}
	if k > len(opened)-1 {
		k = len(opened) - 1
	}
	cutoff := opened[k-1]
	return r.Opened <= cutoff
}

func slotMatches(o Output, slot int) bool {
	switch o {
	case OutSpeaker:
		return slot == bufSpeaker
	case OutNetwork:
		return slot == bufNetAudio || slot == bufNetVideo
	case OutDisplay:
		return slot == bufDisplay
	}
	return false
}

// runAudioIn receives mic segments from the audio board link, fills
// buffers obtained in advance from the allocator, and launches their
// indices into the switch. Copying the wire into the buffer is the
// data path's first copy (§3.4: "once into memory").
func (b *Box) runAudioIn(p *occam.Proc) {
	var buf *allocator.Buffer
	for {
		if buf == nil {
			buf = b.pool.Get(p) // "obtain empty buffers ... in advance"
		}
		msg := b.audioToServer.Recv(p)
		if b.boardDown(p, "server") {
			msg.W.Release() // the pre-fetched buffer waits for recovery
			continue
		}
		size := msg.W.Len()
		p.Consume(time.Duration(size) * serverCopyPerKB / 1024)
		buf.SetPayload(msg.W.Bytes())
		msg.W.Release()
		buf.Stream = msg.Stream
		b.toSwitch.Send(p, buf)
		buf = nil
	}
}

// runNetIn receives network messages; the VCI is the local stream
// number (§3.4).
func (b *Box) runNetIn(p *occam.Proc) {
	reasm := make(map[uint32]*chunkedVideo)
	// corruptSeg marks a VCI whose pending segment took a corrupted
	// chunk; the whole reassembled segment is then discarded ("the
	// current segment is thrown away", §3.8).
	corruptSeg := make(map[uint32]bool)
	var buf *allocator.Buffer
	for {
		if buf == nil {
			buf = b.pool.Get(p)
		}
		var (
			m atm.Message
			w segment.Wire
		)
		for {
			m = b.host.Rx.Recv(p)
			if b.boardDown(p, "server") {
				m.W.Release()
				continue
			}
			if m.Corrupt {
				corruptSeg[m.VCI] = true
			}
			var done bool
			if w, done = reassemble(reasm, m); done {
				break
			}
		}
		if corruptSeg[m.VCI] {
			delete(corruptSeg, m.VCI)
			b.swStats.CorruptDrops++
			b.swStats.PerStreamDrops[m.VCI]++
			b.trace.Emit(obs.EvDrop, b.cfg.Name+".netIn", m.VCI, "corrupt-discard")
			w.Release()
			continue
		}
		p.Consume(time.Duration(m.Size) * serverCopyPerKB / 1024)
		buf.SetPayload(w.Bytes())
		w.Release()
		buf.Stream = m.VCI
		b.toSwitch.Send(p, buf)
		buf = nil
	}
}

// runCaptureIn receives compressed video segments from the capture
// board fifo.
func (b *Box) runCaptureIn(p *occam.Proc) {
	var buf *allocator.Buffer
	for {
		if buf == nil {
			buf = b.pool.Get(p)
		}
		msg := b.captureToServer.Recv(p)
		if b.boardDown(p, "server") {
			msg.W.Release()
			continue
		}
		p.Consume(time.Duration(msg.W.Len()) * serverCopyPerKB / 1024)
		buf.SetPayload(msg.W.Bytes())
		msg.W.Release()
		buf.Stream = msg.Stream
		b.toSwitch.Send(p, buf)
		buf = nil
	}
}

// runAudioOut moves speaker-bound segments over the link to the audio
// board: the copy out of the server buffer into a pooled wire is this
// output device's single copy (§3.4: "once out for each output
// device"), after which the buffer index is free to recycle.
func (b *Box) runAudioOut(p *occam.Proc) {
	out := b.outBufs[bufSpeaker].Out
	for {
		buf := out.Recv(p)
		size := buf.Payload.Len() + segment.StreamNumberSize
		p.Consume(time.Duration(size) * serverCopyPerKB / 1024)
		w := b.wires.Copy(buf.Payload.Bytes())
		b.serverToAudio.Send(p, wireMsg{Stream: buf.Stream, W: w}, size)
		b.pool.Release(p, buf)
	}
}

// runDisplayOut moves display-bound video over the fifo to the mixer
// board (copy out at the display device, as in runAudioOut).
func (b *Box) runDisplayOut(p *occam.Proc) {
	out := b.outBufs[bufDisplay].Out
	for {
		buf := out.Recv(p)
		size := buf.Payload.Len()
		p.Consume(time.Duration(size) * serverCopyPerKB / 1024)
		w := b.wires.Copy(buf.Payload.Bytes())
		b.serverToMixer.Send(p, wireMsg{Stream: buf.Stream, W: w}, size)
		b.pool.Release(p, buf)
	}
}

// netTransmit occupies the network output process for a message's
// transmission time at the interface bandwidth.
func (b *Box) netTransmit(p *occam.Proc, size int) {
	p.Sleep(time.Duration(int64(size) * 8 * int64(time.Second) / b.cfg.NetInterfaceBits))
}

// netChunkSize is the A4 interleaving granularity.
const netChunkSize = 1024

// chunkedVideo is the per-VCI reassembly state for interleaved video
// (A4 ablation). Every chunk of a segment carries a reference to the
// same wire, so reassembly keeps the first chunk's reference and
// releases the rest.
type chunkedVideo struct {
	got, total int
	seq        uint32
	w          segment.Wire
}

// reassemble merges chunked video; whole messages pass through. It
// consumes every message's wire reference: the returned wire carries
// exactly one, duplicates and superseded partials are released.
func reassemble(m map[uint32]*chunkedVideo, msg atm.Message) (segment.Wire, bool) {
	if msg.ChunkTotal <= 1 {
		return msg.W, true
	}
	seq := msg.W.Seq()
	st, ok := m[msg.VCI]
	if !ok || st.seq != seq || st.total != msg.ChunkTotal {
		if ok {
			st.w.Release() // abandon the stale partial segment
		}
		st = &chunkedVideo{total: msg.ChunkTotal, seq: seq, w: msg.W}
		m[msg.VCI] = st
	} else {
		msg.W.Release() // the partial already holds this segment's wire
	}
	st.got++
	if st.got >= st.total {
		delete(m, msg.VCI)
		return st.w, true
	}
	return segment.Wire{}, false
}

// runNetOut is the network output process. Audio takes priority over
// video (principle 2, figure 3.7): the audio decoupling buffer is
// always polled first. Without InterleaveNetwork, a whole video
// segment is one network message, so "video segments can hold up
// following audio segments" (§4.2) on the shared first link.
func (b *Box) runNetOut(p *occam.Proc) {
	rep := newReporter(b.cfg.Name+".netOut", b.Reports)
	audioOut := b.outBufs[bufNetAudio].Out
	videoOut := b.outBufs[bufNetVideo].Out
	var buf *allocator.Buffer
	guards := []occam.Guard{
		occam.Recv(audioOut, &buf), // principle 2: audio first
		occam.Recv(videoOut, &buf),
	}
	for {
		p.Alt(guards...)
		vcis, ok := b.netVCI[buf.Stream]
		if !ok {
			vcis = []uint32{buf.Stream}
		}
		if len(vcis) == 0 {
			// A reparented or subtree-shed relay with nothing downstream:
			// an explicitly empty fan-out means send nowhere (distinct
			// from the never-routed VCI-identity default above).
			b.pool.Release(p, buf)
			continue
		}
		// Splitting to several network destinations sends one descriptor
		// per VCI; a slow destination only affects its own circuit
		// (principle 5 — drops happen inside the network, never here).
		isVideo := buf.Payload.Type() == segment.TypeVideo
		if isVideo && b.cfg.InterleaveNetwork {
			for _, vci := range vcis {
				b.sendChunked(p, rep, vci, b.wires.Copy(buf.Payload.Bytes()))
			}
		} else {
			// Copy out of the server buffer once (the network
			// interface's single copy, §3.4); every VCI then shares the
			// wire under its own reference. Non-interleaved video
			// occupies the interface for the whole segment, holding up
			// any audio waiting in its buffer (§4.2).
			w := b.wires.Copy(buf.Payload.Bytes())
			w.Retain(len(vcis) - 1)
			for _, vci := range vcis {
				b.netTransmit(p, w.Len())
				err := b.host.Send(p, atm.Message{VCI: vci, Size: w.Len(), W: w})
				if err != nil {
					w.Release() // the circuit never took the reference
					if isVideo {
						rep.Report(p, "nocircuit", "video stream %d: %v", buf.Stream, err)
					} else {
						rep.Report(p, "nocircuit", "audio stream %d: %v", buf.Stream, err)
					}
				}
			}
		}
		b.pool.Release(p, buf)
	}
}

// sendChunked splits a video segment into cell-train chunks and lets
// waiting audio through between chunks (A4: interleaved transmission).
// It consumes the wire reference it is given: each chunk message
// carries its own reference to the same wire.
func (b *Box) sendChunked(p *occam.Proc, rep *Reporter, vci uint32, w segment.Wire) {
	total := (w.Len() + netChunkSize - 1) / netChunkSize
	w.Retain(total - 1)
	audioOut := b.outBufs[bufNetAudio].Out
	for i := 0; i < total; i++ {
		// Drain any waiting audio first (principle 2 at chunk
		// granularity).
		for {
			var abuf *allocator.Buffer
			if p.Alt(occam.Recv(audioOut, &abuf), occam.Skip()) == 1 {
				break
			}
			avcis, ok := b.netVCI[abuf.Stream]
			if !ok {
				avcis = []uint32{abuf.Stream}
			}
			if len(avcis) == 0 {
				b.pool.Release(p, abuf)
				continue
			}
			aw := b.wires.Copy(abuf.Payload.Bytes())
			aw.Retain(len(avcis) - 1)
			for _, avci := range avcis {
				b.netTransmit(p, aw.Len())
				if err := b.host.Send(p, atm.Message{VCI: avci, Size: aw.Len(), W: aw}); err != nil {
					aw.Release()
					rep.Report(p, "nocircuit", "audio stream %d: %v", abuf.Stream, err)
				}
			}
			b.pool.Release(p, abuf)
		}
		size := netChunkSize
		if i == total-1 {
			size = w.Len() - (total-1)*netChunkSize
		}
		b.netTransmit(p, size)
		err := b.host.Send(p, atm.Message{
			VCI: vci, Size: size, W: w,
			ChunkIndex: i, ChunkTotal: total,
		})
		if err != nil {
			rep.Report(p, "nocircuit", "video chunk: %v", err)
			for j := i; j < total; j++ {
				w.Release() // the unsent chunks' references
			}
			return
		}
	}
}
