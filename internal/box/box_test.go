package box

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/occam"
	"repro/internal/video"
	"repro/internal/workload"
)

// twoBoxes builds a, b and a direct 100 Mbit/s ATM path a→b for the
// given VCIs.
func twoBoxes(rt *occam.Runtime, cfgA, cfgB Config, vcis ...uint32) (*Box, *Box, *atm.Network) {
	net := atm.New(rt)
	cfgA.Name, cfgB.Name = "a", "b"
	a := New(rt, net, cfgA)
	b := New(rt, net, cfgB)
	l := net.AddLink("ab", atm.LinkConfig{Bandwidth: 100_000_000, Propagation: 100 * time.Microsecond})
	for _, vci := range vcis {
		net.OpenCircuit(vci, a.Host(), b.Host(), l)
	}
	return a, b, net
}

func run(t *testing.T, rt *occam.Runtime, d time.Duration) {
	t.Helper()
	if err := rt.RunUntil(occam.Time(d)); err != nil {
		t.Fatal(err)
	}
}

func TestAudioCallEndToEnd(t *testing.T) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	a, b, _ := twoBoxes(rt,
		Config{Mic: workload.NewTone(400, 12000)},
		Config{}, 100)

	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100}})
		b.SetRoute(p, Route{Stream: 100, Outputs: []Output{OutSpeaker}})
		a.StartMic(p, 1)
	})
	run(t, rt, 2*time.Second)

	st := b.Mixer().Stats(100)
	if st.Segments < 400 {
		t.Fatalf("b received %d segments in 2s, want ≈500", st.Segments)
	}
	if st.LostSegments > 0 {
		t.Fatalf("%d segments lost on a clean path", st.LostSegments)
	}
	// After warm-up the stream plays continuously: silence insertions
	// only while the clawback buffer first fills.
	if silences := st.Clawback.SilenceInserted; silences > 20 {
		t.Fatalf("%d silence insertions on a clean path", silences)
	}
	if a.AudioStats().MicDrops != 0 {
		t.Fatalf("mic dropped %d segments unloaded", a.AudioStats().MicDrops)
	}
}

func TestOneWayLatencyNear8ms(t *testing.T) {
	// §4.2: "the best one-way trip time from microphone input of one
	// box to speaker output of another box over the network was 8ms."
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	a, b, _ := twoBoxes(rt,
		Config{Mic: workload.NewTone(400, 12000)},
		Config{}, 100)
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100}})
		b.SetRoute(p, Route{Stream: 100, Outputs: []Output{OutSpeaker}})
		a.StartMic(p, 1)
	})
	run(t, rt, 3*time.Second)

	lat := b.PlayoutLatency(100)
	if lat.Count() == 0 {
		t.Fatal("no playout latency samples")
	}
	if min := lat.Min(); min < 4*time.Millisecond || min > 12*time.Millisecond {
		t.Fatalf("best one-way latency %v, want ≈8ms", min)
	}
	if mean := lat.Mean(); mean > 16*time.Millisecond {
		t.Fatalf("mean one-way latency %v on a quiet path", mean)
	}
}

func TestLocalLoopback(t *testing.T) {
	// Mic routed to the local speaker through the server only.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	bx := New(rt, net, Config{Name: "solo", Mic: workload.NewTone(300, 9000)})
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		bx.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutSpeaker}})
		bx.StartMic(p, 1)
	})
	run(t, rt, time.Second)
	if st := bx.Mixer().Stats(1); st.Segments < 200 {
		t.Fatalf("loopback delivered %d segments", st.Segments)
	}
}

func TestSplitStreamToTwoBoxes(t *testing.T) {
	// Tannoy (§4.1): one mic stream to two destinations. Principle 6:
	// both copies play, independently.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	a := New(rt, net, Config{Name: "a", Mic: workload.NewTone(500, 10000)})
	b := New(rt, net, Config{Name: "b"})
	c := New(rt, net, Config{Name: "c"})
	lb := net.AddLink("ab", atm.LinkConfig{Bandwidth: 100_000_000})
	lc := net.AddLink("ac", atm.LinkConfig{Bandwidth: 100_000_000})
	net.OpenCircuit(100, a.Host(), b.Host(), lb)
	net.OpenCircuit(200, a.Host(), c.Host(), lc)
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100, 200}})
		b.SetRoute(p, Route{Stream: 100, Outputs: []Output{OutSpeaker}})
		c.SetRoute(p, Route{Stream: 200, Outputs: []Output{OutSpeaker}})
		a.StartMic(p, 1)
	})
	run(t, rt, time.Second)
	if st := b.Mixer().Stats(100); st.Segments < 200 {
		t.Fatalf("b got %d segments", st.Segments)
	}
	if st := c.Mixer().Stats(200); st.Segments < 200 {
		t.Fatalf("c got %d segments", st.Segments)
	}
}

func TestVideoCallEndToEnd(t *testing.T) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	a, b, _ := twoBoxes(rt, Config{}, Config{}, 300)
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		a.SetRoute(p, Route{Stream: 2, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{300}})
		b.SetRoute(p, Route{Stream: 300, Outputs: []Output{OutDisplay}})
		a.StartCamera(p, CameraStream{
			Stream: 2,
			Rect:   video.Rect{X: 0, Y: 0, W: 128, H: 64},
			Rate:   video.Rate{Num: 2, Den: 5}, // 10 fps
		})
	})
	run(t, rt, 2*time.Second)
	st := b.DisplayStats()
	// 10 fps for 2 s ≈ 20 frames (minus pipeline fill).
	if st.Frames < 15 || st.Frames > 21 {
		t.Fatalf("displayed %d frames, want ≈20", st.Frames)
	}
	if st.DecodeErrs != 0 {
		t.Fatalf("%d decode errors", st.DecodeErrs)
	}
	if st.FrameLat.Max() > 120*time.Millisecond {
		t.Fatalf("frame latency up to %v", st.FrameLat.Max())
	}
}

func TestLocalVideoDisplay(t *testing.T) {
	// Camera to own display ("local video").
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	bx := New(rt, net, Config{Name: "solo"})
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		bx.SetRoute(p, Route{Stream: 2, Outputs: []Output{OutDisplay}})
		bx.StartCamera(p, CameraStream{
			Stream: 2,
			Rect:   video.Rect{W: 128, H: 64},
			Rate:   video.Rate{Num: 1, Den: 1}, // full 25 fps
		})
	})
	run(t, rt, time.Second)
	if f := bx.DisplayStats().Frames; f < 20 {
		t.Fatalf("local display got %d frames in 1s at 25fps", f)
	}
}

func TestReconfigurationContinuity(t *testing.T) {
	// Principle 6: adding a second destination mid-stream must not
	// interrupt the first copy.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	a := New(rt, net, Config{Name: "a", Mic: workload.NewTone(500, 10000)})
	b := New(rt, net, Config{Name: "b"})
	c := New(rt, net, Config{Name: "c"})
	lb := net.AddLink("ab", atm.LinkConfig{Bandwidth: 100_000_000})
	lc := net.AddLink("ac", atm.LinkConfig{Bandwidth: 100_000_000})
	net.OpenCircuit(100, a.Host(), b.Host(), lb)
	net.OpenCircuit(200, a.Host(), c.Host(), lc)
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100}})
		b.SetRoute(p, Route{Stream: 100, Outputs: []Output{OutSpeaker}})
		c.SetRoute(p, Route{Stream: 200, Outputs: []Output{OutSpeaker}})
		a.StartMic(p, 1)
		p.Sleep(500 * time.Millisecond)
		// Add destination c without disturbing b: replace the route.
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100, 200}, Opened: occam.Time(1)})
		p.Sleep(500 * time.Millisecond)
		// Remove c again.
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100}, Opened: occam.Time(1)})
	})
	run(t, rt, 1500*time.Millisecond)
	st := b.Mixer().Stats(100)
	if st.LostSegments != 0 {
		t.Fatalf("reconfiguration lost %d segments at b", st.LostSegments)
	}
	if c.Mixer().Stats(200).Segments == 0 {
		t.Fatal("second destination never received data")
	}
}

func TestDynamicSegmentSizeChange(t *testing.T) {
	// §3.2: blocks per segment can change dynamically, 1–12.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	a, b, _ := twoBoxes(rt, Config{Mic: workload.NewTone(400, 10000)}, Config{}, 100)
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100}})
		b.SetRoute(p, Route{Stream: 100, Outputs: []Output{OutSpeaker}})
		a.StartMic(p, 1)
		p.Sleep(300 * time.Millisecond)
		a.SetBlocksPerSegment(p, 12) // 24 ms batching
		p.Sleep(300 * time.Millisecond)
		a.SetBlocksPerSegment(p, 1) // 2 ms minimum latency
	})
	run(t, rt, time.Second)
	st := b.Mixer().Stats(100)
	if st.Blocks < 400 {
		t.Fatalf("only %d blocks delivered across size changes", st.Blocks)
	}
	// "Incoming segments of any mixture of sizes are accepted."
	if st.LostSegments != 0 {
		t.Fatalf("segment size changes lost %d segments", st.LostSegments)
	}
}

func TestMutingActsOnEcho(t *testing.T) {
	// A loud incoming stream at the speaker must mute the outgoing
	// mic within the reaction margin.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	a, b, _ := twoBoxes(rt,
		Config{Mic: workload.NewTone(400, 20000)},
		Config{
			Mic:      workload.NewTone(400, 20000),
			Features: Features{Muting: true, JitterCorrection: true},
		}, 100)
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100}})
		b.SetRoute(p, Route{Stream: 100, Outputs: []Output{OutSpeaker}})
		a.StartMic(p, 1)
		b.SetRoute(p, Route{Stream: 2, Outputs: []Output{OutSpeaker}}) // b's own mic looped locally
		b.StartMic(p, 2)
	})
	run(t, rt, time.Second)
	if b.Muter().Crossings() == 0 {
		t.Fatal("loud speaker output never crossed the muting threshold")
	}
	if b.Muter().MutedBlocks() == 0 {
		t.Fatal("mic blocks never muted")
	}
}

func TestCommandsServedUnderDataLoad(t *testing.T) {
	// Principle 4: a switch report request completes promptly while
	// audio and video streams flood the server.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	a, b, _ := twoBoxes(rt, Config{Mic: workload.NewTone(400, 10000)}, Config{}, 100, 300)
	var served occam.Time
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		a.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{100}})
		a.SetRoute(p, Route{Stream: 2, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{300}})
		b.SetRoute(p, Route{Stream: 100, Outputs: []Output{OutSpeaker}})
		b.SetRoute(p, Route{Stream: 300, Outputs: []Output{OutDisplay}})
		a.StartMic(p, 1)
		a.StartCamera(p, CameraStream{Stream: 2, Rect: video.Rect{W: 128, H: 64}, Rate: video.Rate{Num: 1, Den: 1}})
		p.Sleep(500 * time.Millisecond)
		before := p.Now()
		a.RequestSwitchReport(p)
		served = p.Now() - before
	})
	run(t, rt, time.Second)
	if served > occam.Time(5*time.Millisecond) {
		t.Fatalf("switch command took %v under load", served)
	}
	if a.Log.Count("a.switch") == 0 {
		t.Fatal("switch report never reached the host log")
	}
}

func TestMixerPoolSharedAcrossIncomingStreams(t *testing.T) {
	// Several incoming streams mix simultaneously at one box.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	dst := New(rt, net, Config{Name: "dst"})
	var srcs []*Box
	for i := 0; i < 3; i++ {
		src := New(rt, net, Config{
			Name: string(rune('p' + i)),
			Mic:  workload.NewTone(300+100*i, 8000),
		})
		l := net.AddLink(string(rune('p'+i))+"-dst", atm.LinkConfig{Bandwidth: 100_000_000})
		net.OpenCircuit(uint32(100+i), src.Host(), dst.Host(), l)
		srcs = append(srcs, src)
	}
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		for i, src := range srcs {
			vci := uint32(100 + i)
			src.SetRoute(p, Route{Stream: 1, Outputs: []Output{OutNetwork}, NetVCIs: []uint32{vci}})
			dst.SetRoute(p, Route{Stream: vci, Outputs: []Output{OutSpeaker}})
			src.StartMic(p, 1)
		}
	})
	run(t, rt, time.Second)
	for i := 0; i < 3; i++ {
		if st := dst.Mixer().Stats(uint32(100 + i)); st.Segments < 200 {
			t.Fatalf("stream %d delivered %d segments", 100+i, st.Segments)
		}
	}
	if dst.AudioStats().LateTicks > 0 {
		t.Fatalf("3 plain streams overloaded the audio board (%d late ticks)", dst.AudioStats().LateTicks)
	}
}
