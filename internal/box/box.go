// Package box assembles the Pandora's Box of paper §1 and §3: five
// transputer boards — capture, mixer (display), audio, server and
// network — as an Occam process network on the virtual-time runtime,
// connected by 20 Mbit/s links and 100 Mbit/s fifos, with the server
// switching segment buffers between input and output device handlers
// under the eight design principles.
//
// A Box is controlled the way the host workstation controlled the
// real one: commands set up per-stream routes and start sources, and
// "the data will then flow indefinitely without any further
// interaction with the host" (§1.2). Reports from every process are
// multiplexed to a host log.
//
// Ownership: each box owns one segment.WirePool. Sources (mic,
// camera) encode into it; the server switch Retains once per extra
// output before fanning a wire out; every sink (speaker mixer,
// display, network transmit) Releases the reference it was handed.
// Wires arriving from the network belong to the sender's pool — the
// receiving board copies the bytes into its own pool and Releases the
// incoming reference, so no wire outlives its box and the data is
// copied "once into memory, and once out for each output device"
// (§3.4).
package box

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/allocator"
	"repro/internal/atm"
	"repro/internal/decouple"
	"repro/internal/degrade"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/mixer"
	"repro/internal/muting"
	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/segment"
	"repro/internal/video"
	"repro/internal/workload"
)

// Output identifies an output device handler on the server board.
type Output int

const (
	// OutSpeaker routes a stream to the audio board for mixing.
	OutSpeaker Output = iota
	// OutNetwork routes a stream to the ATM network output.
	OutNetwork
	// OutDisplay routes a stream to the mixer board for display.
	OutDisplay
	numOutputs
)

func (o Output) String() string {
	switch o {
	case OutSpeaker:
		return "speaker"
	case OutNetwork:
		return "network"
	case OutDisplay:
		return "display"
	}
	return "?"
}

// Route is one stream's entry in the switch's private tables: which
// outputs receive its segments and, for the network, the outgoing
// VCI. "The tables are updated without disturbing the flows of data
// when commands are received" (principle 6).
type Route struct {
	Stream  uint32
	Outputs []Output
	// NetVCIs are the outgoing VCIs for OutNetwork — one per network
	// destination; splitting a stream to several boxes lists several
	// (the tannoy configuration, §4.1).
	NetVCIs []uint32
	Opened  occam.Time // for principle 3: oldest degrade first
	// Video marks the stream for the overload controller's
	// video-before-audio ordering. Routes with an OutDisplay output
	// are video regardless; outgoing camera routes (OutNetwork only)
	// must set it.
	Video bool
	// Relay marks an interior distribution-tree route: the stream both
	// plays locally and fans copies to downstream boxes. The overload
	// controller sheds such a stream per-subtree — the forwarded
	// copies stop, the local playout survives.
	Relay bool
}

// SwitchCommand updates the switch tables or requests a report.
// Shed/Restore suspend and resume a stream without touching its route
// (the overload controller's lever: data stops, state stays).
type SwitchCommand struct {
	Set        *Route
	Close      uint32
	HasClose   bool
	Shed       uint32
	HasShed    bool
	Restore    uint32
	HasRestore bool
	ReportReq  bool
}

// Features toggles the optional audio-board work of §4.2, which costs
// CPU: "only three if we have jitter correction, muting, an outgoing
// stream and the interface code running at the same time".
type Features struct {
	JitterCorrection bool
	Muting           bool
	Interface        bool
}

// Config parameterises a Box. Zero values select paper defaults.
type Config struct {
	Name string
	// BlocksPerSegment sets outgoing audio batching (default 2 = 4 ms,
	// principle 7; dynamically alterable by command).
	BlocksPerSegment int
	// Mic is the microphone source (default silence).
	Mic workload.AudioSource
	// CameraW/H size the camera field (default 128×64).
	CameraW, CameraH int
	// PoolBuffers sizes the server's segment buffer pool.
	PoolBuffers int
	// Features enables the optional audio-board work.
	Features Features
	// MutingConfig overrides muting defaults when Features.Muting.
	MutingConfig muting.Config
	// ClawbackTarget overrides the clawback lower target in blocks.
	ClawbackTarget int
	// InterleaveNetwork enables the A4 ablation: video segments are
	// chunked at the network output so audio can interleave between
	// chunks (the paper's code did NOT do this — "segment
	// transmissions are not interleaved", §4.2).
	InterleaveNetwork bool
	// RepositoryPriority reverses principle 1 for repository boxes
	// (incoming recorded streams take precedence — see §2.1).
	RepositoryPriority bool
	// SharedNetBuffer is the A2 ablation: audio and video share one
	// decoupling buffer before the network output instead of the
	// split of figure 3.7, so audio loses its priority (principle 2).
	SharedNetBuffer bool
	// NetInterfaceBits is the network interface bandwidth in bits per
	// second. "The first limit that tends to be exceeded in normal
	// operation is the bandwidth of the interface to the network"
	// (§3.7.1): the network output process is occupied for the
	// transmission time of each segment, and without InterleaveNetwork
	// a large video segment holds up following audio (§4.2).
	NetInterfaceBits int64
	// Obs, if non-nil, registers every board's counters and gauges
	// (labelled with the box name) and traces lifecycle, drop and
	// overload events. core.System sets it automatically.
	Obs *obs.Registry
	// BoardFaults, if non-nil, injects board crash windows: while a
	// board ("server", "audio", "display") is down, its input handlers
	// discard arriving data — counted on fault_crash_drops_total — and
	// recover cleanly when the window ends (§3.8: failures must not
	// propagate).
	BoardFaults *faultinject.Boards
	// SinkStalls injects output-device stalls, keyed by decoupling
	// buffer slot name ("speaker", "net-audio", "net-video",
	// "display"): while a window is open the slot's consumer freezes
	// and the buffer absorbs (then sheds) the backlog — the decoupling
	// failure mode of §3.7.1.
	SinkStalls map[string][]faultinject.Window
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "pandora"
	}
	if c.BlocksPerSegment <= 0 {
		c.BlocksPerSegment = segment.DefaultBlocksPerSegment
	}
	if c.Mic == nil {
		c.Mic = workload.Silence{}
	}
	if c.CameraW <= 0 {
		c.CameraW = 128
	}
	if c.CameraH <= 0 {
		c.CameraH = 64
	}
	if c.PoolBuffers <= 0 {
		c.PoolBuffers = 64
	}
	if c.NetInterfaceBits <= 0 {
		c.NetInterfaceBits = 100_000_000
	}
	return c
}

// wireMsg carries one encoded segment plus its stream number over
// inter-board links ("streams within pandora pass the stream number in
// an extra field preceding the segment header"). The wire is passed by
// reference: links move the descriptor, never the sample bytes.
type wireMsg struct {
	Stream uint32
	W      segment.Wire
}

// audioCmd controls the audio board's outgoing side.
type audioCmd struct {
	StartMic  *uint32
	StopMic   bool
	SetBlocks int // new blocks-per-segment, 0 = unchanged
}

// captureCmd controls the capture board.
type captureCmd struct {
	Start   *CameraStream
	Stop    uint32
	HasStop bool
}

// CameraStream describes one outgoing video stream (§3.6): an
// arbitrary rectangle of the camera field at a fractional frame rate,
// split into SegsPerFrame rectangular segments.
type CameraStream struct {
	Stream       uint32
	Rect         video.Rect
	Rate         video.Rate
	SegsPerFrame int
}

// Box is one simulated Pandora's Box.
type Box struct {
	cfg Config
	rt  *occam.Runtime

	// Transputers (figure 1.2).
	audioNode, serverNode, captureNode, mixerNode *occam.Node

	host *atm.Host

	// Reports multiplexed to the host (§1.2).
	Reports *occam.Chan[Report]
	Log     *HostLog

	// Server board.
	pool      *allocator.Pool
	toSwitch  *occam.Chan[*allocator.Buffer]
	switchCmd *occam.Chan[SwitchCommand]
	outBufs   [numOutputs + 1]*decouple.Process[*allocator.Buffer]
	swStats   SwitchStats
	netVCI    map[uint32][]uint32 // stream → outgoing VCIs
	// shedNet parks a relay stream's forwarded fan-out while the
	// overload controller has it shed: the subtree's copies stop, the
	// local playout keeps running (the per-subtree shed target).
	shedNet map[uint32][]uint32
	// copiesHi is the high-water mark of outgoing copies any single
	// stream fanned to — the per-hop copy invariant's witness.
	copiesHi int

	// streamDir mirrors the routes the host has installed, as the
	// overload controller's view: media class, direction and age of
	// every stream (the switch's own table is private to its process).
	streamDir map[uint32]routeInfo

	// openedScratch is isAmongOldest's reused open-time list.
	openedScratch []occam.Time

	// Injected board-crash accounting (nil maps when no BoardFaults).
	crashDrops  map[string]*obs.Counter
	crashTraced map[string]bool // trace once per outage, not per segment

	// wires recycles the box's wire storage: sources encode into it,
	// output handlers copy out of server buffers into it, and sinks
	// release back to it. One pool per box — the runtime serialises all
	// process code, so the boards can share it without locking.
	wires *segment.WirePool

	// Links between boards (figure 1.3).
	audioToServer   *occam.Link[wireMsg]
	serverToAudio   *occam.Link[wireMsg]
	captureToServer *occam.Link[wireMsg]
	serverToMixer   *occam.Link[wireMsg]

	// Audio board.
	audioCmds *occam.Chan[audioCmd]
	mix       *mixer.Mixer
	muter     *muting.Muter
	micOutBuf *decouple.Process[wireMsg]
	audioStat AudioStats

	// Capture board.
	captureCmds *occam.Chan[captureCmd]
	camera      *workload.Camera
	framestore  *video.Framestore

	// Mixer (display) board.
	interp      *video.Interpolator
	displayStat DisplayStats

	// Instruments.
	playout     map[uint32]*metrics.Tracker
	playoutHist *obs.Histogram
	trace       *obs.Tracer
}

// SwitchStats counts the server switch's work.
type SwitchStats struct {
	Switched       uint64
	NoRoute        uint64
	FullDrops      [numOutputs + 1]uint64 // per output, buffer-full drops
	AgeDrops       [numOutputs + 1]uint64 // principle-3 proactive drops
	ShedDrops      uint64                 // overload-controller sheds
	CorruptDrops   uint64                 // injected-corruption discards at net input
	PerStreamDrops map[uint32]uint64
}

// routeInfo is the overload controller's per-stream summary.
type routeInfo struct {
	video    bool
	incoming bool // delivered locally, no network output
	relay    bool // interior tree node: local playout + forwarded copies
	opened   occam.Time
}

// AudioStats counts the audio board's work.
type AudioStats struct {
	TicksRun  uint64
	LateTicks uint64 // ticks that overran their 2 ms budget
	MicBlocks uint64
	MicSegs   uint64
	MicDrops  uint64 // dropped at the audio board's decoupling buffer
}

// DisplayStats counts the mixer board's work.
type DisplayStats struct {
	Segments   uint64
	Frames     uint64
	DecodeErrs uint64
	FrameLat   *metrics.Tracker
}

// New builds a box, registers it as host cfg.Name on net, and starts
// every board process. The caller drives the runtime.
func New(rt *occam.Runtime, net *atm.Network, cfg Config) *Box {
	cfg = cfg.withDefaults()
	b := &Box{
		cfg:         cfg,
		rt:          rt,
		audioNode:   occam.NewNode(rt, cfg.Name+".audioT"),
		serverNode:  occam.NewNode(rt, cfg.Name+".serverT"),
		captureNode: occam.NewNode(rt, cfg.Name+".captureT"),
		mixerNode:   occam.NewNode(rt, cfg.Name+".mixerT"),
		host:        net.AddHost(cfg.Name),
		Reports:     occam.NewChan[Report](rt, cfg.Name+".reports"),
		toSwitch:    occam.NewChan[*allocator.Buffer](rt, cfg.Name+".toswitch"),
		switchCmd:   occam.NewChan[SwitchCommand](rt, cfg.Name+".switchcmd"),
		netVCI:      make(map[uint32][]uint32),
		shedNet:     make(map[uint32][]uint32),
		streamDir:   make(map[uint32]routeInfo),
		crashTraced: make(map[string]bool),
		audioCmds:   occam.NewChan[audioCmd](rt, cfg.Name+".audiocmd"),
		captureCmds: occam.NewChan[captureCmd](rt, cfg.Name+".capturecmd"),
		camera:      workload.NewCamera(cfg.CameraW, cfg.CameraH),
		framestore:  video.NewFramestore(cfg.CameraW, cfg.CameraH),
		interp:      video.NewInterpolator(),
		playout:     make(map[uint32]*metrics.Tracker),
		wires:       segment.NewWirePool(),
	}
	b.swStats.PerStreamDrops = make(map[uint32]uint64)
	b.displayStat.FrameLat = metrics.NewTracker(cfg.Name + ".frameLat")
	b.Log = NewHostLog(rt, b.Reports)
	b.pool = allocator.New(rt, b.serverNode, cfg.PoolBuffers, nil)
	b.pool.Observe(cfg.Obs, cfg.Name)
	b.trace = cfg.Obs.Tracer()
	b.observe()

	// Inter-board links (figure 1.2/1.3 bandwidths).
	b.audioToServer = occam.NewLink[wireMsg](rt, cfg.Name+".a2s", audioLinkBandwidth)
	b.serverToAudio = occam.NewLink[wireMsg](rt, cfg.Name+".s2a", audioLinkBandwidth)
	b.captureToServer = occam.NewLink[wireMsg](rt, cfg.Name+".c2s", fifoBandwidth)
	b.serverToMixer = occam.NewLink[wireMsg](rt, cfg.Name+".s2m", fifoBandwidth)

	// Clawback configuration for the destination mixer.
	mcfg := mixer.Config{Obs: cfg.Obs, Name: cfg.Name}
	if cfg.ClawbackTarget > 0 {
		mcfg.Clawback.TargetBlocks = cfg.ClawbackTarget
	}
	b.mix = mixer.New(mcfg)
	b.mix.OnPlayout = b.recordPlayout
	b.muter = muting.New(cfg.MutingConfig)

	b.startServer()
	b.startAudio()
	b.startCapture()
	b.startDisplay()
	return b
}

// observe registers the board counters on the box's registry (no-op
// when none is configured). The counters themselves stay plain struct
// fields on the hot paths; the registry reads them through callbacks.
func (b *Box) observe() {
	reg := b.cfg.Obs
	lb := obs.L("box", b.cfg.Name)

	// Server board: the switch.
	reg.CounterFunc("switch_switched_total", func() uint64 { return b.swStats.Switched }, lb)
	reg.CounterFunc("switch_noroute_total", func() uint64 { return b.swStats.NoRoute }, lb)
	for slot := 0; slot < numOutBufs; slot++ {
		slot := slot
		slb := []obs.Label{lb, obs.L("output", slotName(slot))}
		reg.CounterFunc("switch_full_drops_total", func() uint64 { return b.swStats.FullDrops[slot] }, slb...)
		reg.CounterFunc("switch_age_drops_total", func() uint64 { return b.swStats.AgeDrops[slot] }, slb...)
	}

	// Audio board.
	reg.CounterFunc("audio_ticks_total", func() uint64 { return b.audioStat.TicksRun }, lb)
	reg.CounterFunc("audio_late_ticks_total", func() uint64 { return b.audioStat.LateTicks }, lb)
	reg.CounterFunc("audio_mic_blocks_total", func() uint64 { return b.audioStat.MicBlocks }, lb)
	reg.CounterFunc("audio_mic_segments_total", func() uint64 { return b.audioStat.MicSegs }, lb)
	reg.CounterFunc("audio_mic_drops_total", func() uint64 { return b.audioStat.MicDrops }, lb)
	b.playoutHist = reg.Histogram("audio_playout_latency_ms", nil, lb)

	reg.GaugeFunc("net_copies_max", func() float64 { return float64(b.copiesHi) }, lb)
	reg.CounterFunc("switch_shed_drops_total", func() uint64 { return b.swStats.ShedDrops }, lb)
	reg.CounterFunc("server_corrupt_drops_total", func() uint64 { return b.swStats.CorruptDrops }, lb)

	// Mixer (display) board.
	reg.CounterFunc("display_segments_total", func() uint64 { return b.displayStat.Segments }, lb)
	reg.CounterFunc("display_frames_total", func() uint64 { return b.displayStat.Frames }, lb)
	reg.CounterFunc("display_decode_errors_total", func() uint64 { return b.displayStat.DecodeErrs }, lb)

	// Board-crash fault accounting, only when faults are configured so
	// clean runs keep a clean namespace.
	if b.cfg.BoardFaults != nil {
		b.crashDrops = make(map[string]*obs.Counter)
		for _, board := range []string{"server", "audio", "display"} {
			b.crashDrops[board] = reg.Counter("fault_crash_drops_total", lb, obs.L("board", board))
		}
	}
}

// boardDown reports whether an injected crash window covers board now,
// counting each discarded arrival and tracing once per outage.
func (b *Box) boardDown(p *occam.Proc, board string) bool {
	if b.cfg.BoardFaults == nil {
		return false
	}
	if !b.cfg.BoardFaults.Down(board, p.Now()) {
		b.crashTraced[board] = false
		return false
	}
	b.crashDrops[board].Inc()
	if !b.crashTraced[board] {
		b.crashTraced[board] = true
		b.trace.Emit(obs.EvFault, b.cfg.Name+"."+board, 0, "board crashed: discarding input")
	}
	return true
}

// Host returns the box's network endpoint.
func (b *Box) Host() *atm.Host { return b.host }

// Mixer returns the destination audio mixer (for stream statistics).
func (b *Box) Mixer() *mixer.Mixer { return b.mix }

// Muter returns the audio board's muting state machine.
func (b *Box) Muter() *muting.Muter { return b.muter }

// SwitchStats returns a copy of the switch counters.
func (b *Box) SwitchStats() SwitchStats { return b.swStats }

// AudioStats returns a copy of the audio board counters.
func (b *Box) AudioStats() AudioStats { return b.audioStat }

// DisplayStats returns the display counters.
func (b *Box) DisplayStats() DisplayStats { return b.displayStat }

// PlayoutLatency returns the tracker of capture→playout latencies for
// a stream arriving at this box's speaker.
func (b *Box) PlayoutLatency(stream uint32) *metrics.Tracker {
	t, ok := b.playout[stream]
	if !ok {
		t = metrics.NewTracker(fmt.Sprintf("%s.playout.%d", b.cfg.Name, stream))
		b.playout[stream] = t
	}
	return t
}

func (b *Box) recordPlayout(stream uint32, stamp, now int64) {
	if stamp <= 0 {
		return // concealment replays carry synthetic stamps near zero early on
	}
	// The paper's one-way figure runs microphone input to speaker
	// output: add the codec output fifo ("2ms in the buffering from
	// the codec", §4.2) after the mixing pop.
	lat := time.Duration(now-stamp) + segment.BlockDuration
	b.PlayoutLatency(stream).Add(lat)
	b.playoutHist.Observe(float64(lat) / float64(time.Millisecond))
}

// --- Control interface (host commands, §1.2) ---

// SetRoute installs or replaces a stream's route in the switch.
func (b *Box) SetRoute(p *occam.Proc, r Route) {
	if r.Opened == 0 {
		r.Opened = p.Now()
	}
	if len(r.NetVCIs) > 0 {
		b.netVCI[r.Stream] = append([]uint32(nil), r.NetVCIs...)
		delete(b.shedNet, r.Stream) // a new fan-out supersedes a parked one
		if len(r.NetVCIs) > b.copiesHi {
			b.copiesHi = len(r.NetVCIs)
		}
	}
	info := routeInfo{video: r.Video, incoming: true, relay: r.Relay, opened: r.Opened}
	for _, o := range r.Outputs {
		if o == OutNetwork {
			info.incoming = false
		}
		if o == OutDisplay {
			info.video = true
		}
	}
	b.streamDir[r.Stream] = info
	b.switchCmd.Send(p, SwitchCommand{Set: &r})
}

// CloseRoute removes a stream's route. Other streams are undisturbed
// (principle 6).
func (b *Box) CloseRoute(p *occam.Proc, stream uint32) {
	delete(b.streamDir, stream)
	delete(b.shedNet, stream)
	b.switchCmd.Send(p, SwitchCommand{Close: stream, HasClose: true})
}

// SetNetCopies replaces a stream's outgoing fan-out list without
// touching its switch route — the tree planner's lever for mid-stream
// reparenting (principle 6: the change applies between segments). An
// empty list stops the stream's forwarded copies entirely; it does NOT
// fall back to the VCI-identity default the way a never-routed stream
// does.
func (b *Box) SetNetCopies(p *occam.Proc, stream uint32, vcis []uint32) {
	b.netVCI[stream] = append([]uint32{}, vcis...)
	delete(b.shedNet, stream)
	if len(vcis) > b.copiesHi {
		b.copiesHi = len(vcis)
	}
}

// MaxNetCopies returns the most outgoing copies any single stream ever
// fanned to at this box — the witness for the per-hop copy invariant
// (an interior tree box carries at most K copies).
func (b *Box) MaxNetCopies() int { return b.copiesHi }

// StartMic begins the outgoing microphone stream with the given
// stream number. Its route must be installed with SetRoute.
func (b *Box) StartMic(p *occam.Proc, stream uint32) {
	b.audioCmds.Send(p, audioCmd{StartMic: &stream})
}

// StopMic stops the outgoing microphone stream.
func (b *Box) StopMic(p *occam.Proc) {
	b.audioCmds.Send(p, audioCmd{StopMic: true})
}

// SetBlocksPerSegment alters the outgoing audio batching dynamically
// ("can alter this dynamically if the recipient cannot handle the
// arrival rate... or if we want a particularly low latency", §3.2).
func (b *Box) SetBlocksPerSegment(p *occam.Proc, n int) {
	b.audioCmds.Send(p, audioCmd{SetBlocks: n})
}

// StartCamera begins an outgoing video stream.
func (b *Box) StartCamera(p *occam.Proc, cs CameraStream) {
	b.captureCmds.Send(p, captureCmd{Start: &cs})
}

// StopCamera stops an outgoing video stream.
func (b *Box) StopCamera(p *occam.Proc, stream uint32) {
	b.captureCmds.Send(p, captureCmd{Stop: stream, HasStop: true})
}

// RequestSwitchReport asks the switch for a status report on the
// box's report channel.
func (b *Box) RequestSwitchReport(p *occam.Proc) {
	b.switchCmd.Send(p, SwitchCommand{ReportReq: true})
}

// WirePoolStats exposes the box's wire pool allocation counters.
func (b *Box) WirePoolStats() (gets, news uint64, free int) {
	return b.wires.Gets, b.wires.News, b.wires.FreeLen()
}

// WirePoolLeaked returns the number of the box's pooled wires still
// checked out — zero once every sink has drained and released.
func (b *Box) WirePoolLeaked() int { return b.wires.Leaked() }

// --- degrade.Target: the overload controller's levers ---

// DegradeName implements degrade.Target.
func (b *Box) DegradeName() string { return b.cfg.Name }

// DegradeStreams implements degrade.Target from the stream directory,
// in stream-id order for deterministic controller decisions.
func (b *Box) DegradeStreams() []degrade.StreamInfo {
	ids := make([]uint32, 0, len(b.streamDir))
	for id := range b.streamDir {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]degrade.StreamInfo, 0, len(ids))
	for _, id := range ids {
		ri := b.streamDir[id]
		out = append(out, degrade.StreamInfo{
			ID: id, Video: ri.video, Incoming: ri.incoming, Opened: ri.opened,
		})
	}
	return out
}

// DegradeVideoBuffers and DegradeAudioBuffers name this box's
// decoupling buffers by media class (the obs "buffer" label values).
func (b *Box) DegradeVideoBuffers() []string {
	return []string{b.cfg.Name + ".netVbuf", b.cfg.Name + ".dispbuf"}
}

// DegradeAudioBuffers implements degrade.Target.
func (b *Box) DegradeAudioBuffers() []string {
	return []string{b.cfg.Name + ".netAbuf", b.cfg.Name + ".spkbuf"}
}

// DegradeShed suspends a stream at the switch; incoming audio is also
// barred at the mixer so its clawback buffer drains instead of
// starving into concealment noise.
func (b *Box) DegradeShed(p *occam.Proc, id uint32) {
	if ri, ok := b.streamDir[id]; ok && ri.relay {
		// Per-subtree shed: an overloaded interior tree box stops its
		// forwarded copies (its downstream subtree degrades) but keeps
		// its own playout — shedding at the switch would kill both.
		if _, parked := b.shedNet[id]; !parked {
			b.shedNet[id] = b.netVCI[id]
			b.netVCI[id] = []uint32{}
			b.trace.Emit(obs.EvReconfig, b.cfg.Name+".switch", id, "subtree shed")
		}
		return
	}
	b.switchCmd.Send(p, SwitchCommand{Shed: id, HasShed: true})
	if ri, ok := b.streamDir[id]; ok && ri.incoming && !ri.video {
		b.mix.SetShed(id, true)
	}
}

// DegradeRestore resumes a shed stream.
func (b *Box) DegradeRestore(p *occam.Proc, id uint32) {
	if parked, ok := b.shedNet[id]; ok {
		b.netVCI[id] = parked
		delete(b.shedNet, id)
		b.trace.Emit(obs.EvReconfig, b.cfg.Name+".switch", id, "subtree restored")
		return
	}
	b.switchCmd.Send(p, SwitchCommand{Restore: id, HasRestore: true})
	b.mix.SetShed(id, false)
}

// DegradeRepositoryOrder implements degrade.Target.
func (b *Box) DegradeRepositoryOrder() bool { return b.cfg.RepositoryPriority }
