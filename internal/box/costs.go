package box

import "time"

// Calibrated CPU cost constants.
//
// The paper reports capacities, not per-operation costs (§4.2): the
// T425 audio transputer "can mix five audio streams in the
// straightforward case, but only three if we have jitter correction,
// muting, an outgoing stream and the interface code running at the
// same time". These constants are chosen so the simulated audio board
// reproduces exactly those capacities within its 2 ms tick budget:
//
//	plain:  tickBase + n·mixCost ≤ 2 ms
//	        5 streams: 150 + 5·320 = 1750 µs ≤ 2000   (fits)
//	        6 streams: 150 + 6·320 = 2070 µs > 2000   (overload)
//
//	loaded: tickBase + muteCost + outgoingCost + interfaceCost
//	        + n·(mixCost + clawCost) ≤ 2 ms
//	        3 streams: 150+150+200+250 + 3·380 = 1890 µs ≤ 2000
//	        4 streams: 150+150+200+250 + 4·380 = 2270 µs > 2000
//
// Experiment E1 verifies this calibration stays consistent.
const (
	// audioTickBase is the block handler's fixed per-tick work
	// (codec fifo service, scheduling).
	audioTickBase = 150 * time.Microsecond
	// audioMixCost is the per-stream cost of mixing one 2 ms block.
	audioMixCost = 320 * time.Microsecond
	// audioClawCost is the per-stream overhead of jitter correction
	// (clawback buffer bookkeeping).
	audioClawCost = 60 * time.Microsecond
	// audioMuteCost is the muting detector + table lookup per tick.
	audioMuteCost = 150 * time.Microsecond
	// audioOutgoingCost is the per-tick cost of producing the
	// outgoing stream (reading the codec fifo, scaling, batching).
	audioOutgoingCost = 200 * time.Microsecond
	// audioInterfaceCost is the interface code's per-tick share.
	audioInterfaceCost = 250 * time.Microsecond

	// serverSwitchCost is the server's per-segment switching work
	// (table lookup and one descriptor send per destination). The
	// server copies data "once into memory, and once out for each
	// output device"; the block moves are accounted per byte.
	serverSwitchCost = 10 * time.Microsecond
	// serverCopyPerKB approximates the single block-move instruction
	// cost per kilobyte in or out of segment buffer memory.
	serverCopyPerKB = 15 * time.Microsecond

	// captureSliceCost is the per-slice cost of feeding the
	// compression pipeline.
	captureSliceCost = 30 * time.Microsecond
	// displaySegmentCost is the mixer board's per-segment cost of
	// decompression management and assembly.
	displaySegmentCost = 60 * time.Microsecond
)

// Fixed structural constants of the box (§1.2, §3.5, §3.6).
const (
	// audioLinkBandwidth is the audio↔server transputer link:
	// "The 20Mbit/s link to the server transputer".
	audioLinkBandwidth = 20_000_000
	// fifoBandwidth is the video fifo path: "Video 100 Mbit/s Fifo".
	fifoBandwidth = 100_000_000

	// switchBufferSegments sizes the decoupling buffers downstream of
	// the switch.
	switchBufferSegments = 16
	// netVideoBufferSegments bounds the video buffer before the
	// network output: "We limit the size of this buffer so that the
	// video delays do not become aggravating to the user".
	netVideoBufferSegments = 8
	// netAudioBufferSegments is the separate audio buffer of figure
	// 3.7, "so that it can be given priority".
	netAudioBufferSegments = 32
)
