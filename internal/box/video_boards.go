package box

import (
	"encoding/binary"
	"time"

	"repro/internal/occam"
	"repro/internal/segment"
	"repro/internal/video"
)

// The capture board (§3.6): the camera writes the framestore
// continuously; for each open stream, rectangles are read at the
// stream's fractional frame rate, timed against the camera scan so a
// block is never read while being written, compressed line by line
// and despatched as one or more Pandora segments per frame, "each of
// which is despatched as soon as the data is ready, reducing
// latencies and buffering requirements".
//
// The mixer (display) board: video data is assembled per frame; "We
// do not display any part of a video frame until all of the segments
// have been received", and the copy to the display buffer is timed
// against the display scan.

func (b *Box) startCapture() {
	b.rt.Go(b.cfg.Name+".capture", b.captureNode, occam.High, b.runCapture)
}

func (b *Box) startDisplay() {
	b.rt.Go(b.cfg.Name+".display", b.mixerNode, occam.High, b.runDisplay)
}

// packLines serialises compressed lines (2-byte length prefix each)
// into a video segment's Data, appending to dst (pass a reused
// scratch slice on hot paths).
func packLines(dst []byte, lines [][]byte) []byte {
	for _, l := range lines {
		var hdr [2]byte
		binary.BigEndian.PutUint16(hdr[:], uint16(len(l)))
		dst = append(dst, hdr[:]...)
		dst = append(dst, l...)
	}
	return dst
}

// unpackLines reverses packLines, appending the line views (aliasing
// data) to dst.
func unpackLines(dst [][]byte, data []byte) ([][]byte, bool) {
	for len(data) > 0 {
		if len(data) < 2 {
			return dst, false
		}
		n := int(binary.BigEndian.Uint16(data))
		data = data[2:]
		if len(data) < n {
			return dst, false
		}
		dst = append(dst, data[:n])
		data = data[n:]
	}
	return dst, true
}

// runCapture drives the camera at 25 Hz and produces segments for
// every open stream.
func (b *Box) runCapture(p *occam.Proc) {
	scan := video.Scan{Lines: b.cfg.CameraH, Period: video.FramePeriod}
	streams := make(map[uint32]*CameraStream)
	frameSeq := make(map[uint32]uint32)
	segSeq := make(map[uint32]uint32)
	lp := video.LineParams{Shift: 1}
	// Per-board scratch, reused every band: the framestore read
	// rectangle, the line codec, the compressed-line list, and the
	// packed segment data (copied on into the wire by Encode).
	var (
		rect   video.Frame
		codec  video.Codec
		lines  [][]byte
		packed []byte
	)

	for frame := 0; ; frame++ {
		p.SleepUntil(occam.Time(int64(frame) * int64(video.FramePeriod)))
		// Commands between frames (principles 4 and 6).
		for {
			var cmd captureCmd
			if p.Alt(occam.Recv(b.captureCmds, &cmd), occam.Skip()) == 1 {
				break
			}
			switch {
			case cmd.Start != nil:
				cs := *cmd.Start
				if cs.SegsPerFrame <= 0 {
					cs.SegsPerFrame = 2
				}
				streams[cs.Stream] = &cs
			case cmd.HasStop:
				delete(streams, cmd.Stop)
			}
		}
		// The camera updates the framestore.
		img := b.camera.NextFrame()
		b.framestore.WriteLines(img, 0, b.cfg.CameraH)

		for _, id := range orderedStreamIDs(streams) {
			cs := streams[id]
			if !cs.Rate.Take(frame) {
				continue
			}
			// Split the rectangle into SegsPerFrame row bands, each a
			// Pandora segment despatched as soon as it is compressed.
			// Each band's framestore read is timed against the camera
			// scan separately — this is why the hardware read blocks,
			// not whole frames (§3.6).
			rows := cs.Rect.H / cs.SegsPerFrame
			if rows == 0 {
				rows = cs.Rect.H
			}
			nsegs := (cs.Rect.H + rows - 1) / rows
			for s := 0; s < nsegs; s++ {
				y0 := s * rows
				y1 := y0 + rows
				if y1 > cs.Rect.H {
					y1 = cs.Rect.H
				}
				band := video.Rect{X: cs.Rect.X, Y: cs.Rect.Y + y0, W: cs.Rect.W, H: y1 - y0}
				readTime := time.Duration(band.W*band.H) * 20 * time.Nanosecond
				p.SleepUntil(scan.SafeReadStart(p.Now(), band, readTime))
				b.framestore.ReadRectInto(&rect, band)
				lines = lines[:0]
				codec.Reset()
				for y := 0; y < y1-y0; y++ {
					lines = append(lines, codec.CompressLine(rect.Row(y), lp))
					p.Consume(captureSliceCost / video.DefaultSliceLines)
				}
				packed = packLines(packed[:0], lines)
				seg := segment.NewVideo(
					segSeq[id], p.Now(),
					frameSeq[id], uint32(nsegs), uint32(s),
					uint32(cs.Rect.X), uint32(cs.Rect.Y+y0),
					uint32(cs.Rect.W), uint32(y0), uint32(y1-y0),
					packed)
				seg.Compression = segment.CompressionDPCM
				seg.Args = []uint32{uint32(lp.Shift)}
				seg.Length = uint32(seg.WireSize())
				segSeq[id]++
				// Encode once at the source (§3.4); the wire moves by
				// reference from here to the display's copy-out.
				w := b.wires.Encode(seg)
				b.captureToServer.Send(p, wireMsg{Stream: id, W: w}, w.Len())
			}
			frameSeq[id]++
		}
	}
}

func orderedStreamIDs(m map[uint32]*CameraStream) []uint32 {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort, tiny n
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

// runDisplay decompresses arriving video segments (reloading the
// interpolator's per-stream line cache on interleaving), assembles
// whole frames, and copies each completed frame to the display at a
// scan-safe moment.
func (b *Box) runDisplay(p *occam.Proc) {
	rep := newReporter(b.cfg.Name+".display", b.Reports)
	scan := video.Scan{Lines: b.cfg.CameraH, Period: video.FramePeriod}
	assemblers := make(map[uint32]*video.Assembler)
	var seg segment.Video // reused header view into each wire
	// Per-board scratch, reused every segment: the line views into the
	// wire, the codec, and the decoded image (blitted into the
	// assembler's own frame by Add).
	var (
		lines [][]byte
		codec video.Codec
		img   video.Frame
	)
	for {
		msg := b.serverToMixer.Recv(p)
		if b.boardDown(p, "display") {
			msg.W.Release()
			continue
		}
		b.displayStat.Segments++
		p.Consume(displaySegmentCost)

		// Decode the header in place; seg.Data aliases the wire until
		// the Release at the end of this iteration.
		err := msg.W.DecodeVideoInto(&seg)
		var ok bool
		lines, ok = unpackLines(lines[:0], seg.Data)
		if err != nil || !ok || len(lines) != int(seg.NumLines) {
			b.displayStat.DecodeErrs++
			rep.Report(p, "corrupt", "stream %d: corrupt segment discarded", msg.Stream)
			msg.W.Release()
			continue // "the current segment is thrown away" (§3.8)
		}
		// Decompress with the per-stream last-line continuity (§3.6).
		b.interp.Begin(msg.Stream)
		img.Reuse(int(seg.Width), int(seg.NumLines))
		bad := false
		for i, wire := range lines {
			line, err := codec.DecompressLine(wire, int(seg.Width))
			if err != nil {
				bad = true
				break
			}
			copy(img.Row(i), line)
			b.interp.Advance(msg.Stream, line)
		}
		if bad {
			b.displayStat.DecodeErrs++
			msg.W.Release()
			continue
		}

		a, ok := assemblers[msg.Stream]
		if !ok {
			a = video.NewAssembler(b.cfg.CameraW, b.cfg.CameraH)
			assemblers[msg.Stream] = a
		}
		frame := a.Add(&seg, &img)
		msg.W.Release() // img and the assembler hold their own copies
		if frame == nil {
			continue
		}
		// Whole frame ready: copy to the display buffer in two halves,
		// each at a scan-safe time ("care being taken to avoid the
		// scan of the display controller... copying frames both in
		// front of and behind the scan if necessary").
		half := b.cfg.CameraH / 2
		copyTime := time.Duration(b.cfg.CameraW*half) * 10 * time.Nanosecond
		top := video.Rect{Y: 0, H: half, W: b.cfg.CameraW}
		bottom := video.Rect{Y: half, H: b.cfg.CameraH - half, W: b.cfg.CameraW}
		p.SleepUntil(scan.SafeReadStart(p.Now(), top, copyTime))
		p.SleepUntil(scan.SafeReadStart(p.Now(), bottom, copyTime))
		b.displayStat.Frames++
		b.displayStat.FrameLat.Add(p.Now().Sub(segment.TimestampTime(seg.Timestamp)))
	}
}
