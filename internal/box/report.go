package box

import (
	"fmt"
	"time"

	"repro/internal/occam"
)

// Reports (§1.2): "Reports are collected from all main processes, and
// multiplexed together. They are usually in the form of text messages
// generated when Pandora is overloaded, when some error has been
// detected, when a command has requested some information, or on
// occasion just to say that everything is all right. Reports are sent
// to the host computer for display or logging."

// Report is one multiplexed report line.
type Report struct {
	At      occam.Time
	Process string
	Text    string
}

func (r Report) String() string {
	return fmt.Sprintf("[%8.3fms] %-20s %s", r.At.Millis(), r.Process, r.Text)
}

// reportMinPeriod rate-limits repeats: "send messages on the report
// channel as soon as possible subject to a minimum period between
// reports for any particular sort of error".
const reportMinPeriod = 100 * time.Millisecond

// Reporter is one process's handle on the box's multiplexed report
// stream, with per-kind rate limiting.
type Reporter struct {
	process string
	sink    *occam.Chan[Report]
	last    map[string]occam.Time
}

func newReporter(process string, sink *occam.Chan[Report]) *Reporter {
	return &Reporter{process: process, sink: sink, last: make(map[string]occam.Time)}
}

// Report emits a report of the given kind, suppressing repeats of the
// same kind within the minimum period. Delivery uses TrySend so a
// slow host log can never stall a time-critical process.
func (r *Reporter) Report(p *occam.Proc, kind, format string, args ...any) {
	now := p.Now()
	if t, ok := r.last[kind]; ok && now.Sub(t) < reportMinPeriod {
		return
	}
	r.last[kind] = now
	r.sink.TrySend(p, Report{At: now, Process: r.process, Text: fmt.Sprintf(format, args...)})
}

// HostLog is the host-side collector: it drains the box's report
// channel continuously and keeps the log in memory, like the log file
// on the workstation (§3.8).
type HostLog struct {
	lines []Report
}

// NewHostLog starts a collector process draining reports.
func NewHostLog(rt *occam.Runtime, reports *occam.Chan[Report]) *HostLog {
	l := &HostLog{}
	rt.Go("host.log", nil, occam.High, func(p *occam.Proc) {
		for {
			l.lines = append(l.lines, reports.Recv(p))
		}
	})
	return l
}

// Lines returns the collected log.
func (l *HostLog) Lines() []Report { return l.lines }

// Count returns how many lines mention the given process name.
func (l *HostLog) Count(process string) int {
	n := 0
	for _, r := range l.lines {
		if r.Process == process {
			n++
		}
	}
	return n
}
