package box

import (
	"time"

	"repro/internal/decouple"
	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/segment"
	"repro/internal/workload"
)

// The audio board (§3.5, figure 3.5): the codec produces a 16-byte
// block every 2 ms; the block handler batches blocks into Pandora
// segments and orders the server writer to transmit them, "a separate
// process to allow some concurrency in case the Server is busy". The
// incoming direction runs per-stream clawback buffers feeding the
// mixing code, which reads one block from each every 2 ms.
//
// Priorities implement principle 1 on this box: the outgoing side
// (micReader, serverWriter) runs at High priority on the audio
// transputer, the incoming mixing at Low, so under CPU overload
// "incoming data streams [are] degraded before outgoing data
// streams". A repository box reverses this (§2.1).

func (b *Box) startAudio() {
	rt, name := b.rt, b.cfg.Name
	b.micOutBuf = decouple.New[wireMsg](rt, b.audioNode, name+".micbuf", 8, nil,
		decouple.WithReady(), decouple.WithObs(b.cfg.Obs))

	outPri, inPri := occam.High, occam.Low
	if b.cfg.RepositoryPriority {
		outPri, inPri = occam.Low, occam.High
	}
	rt.Go(name+".micReader", b.audioNode, outPri, b.runMicReader)
	rt.Go(name+".serverWriter", b.audioNode, outPri, b.runServerWriter)
	rt.Go(name+".audioRx", b.audioNode, occam.High, b.runAudioRx)
	rt.Go(name+".blockHandler", b.audioNode, inPri, b.runBlockHandler)
}

// runMicReader is the outgoing side of the block handler: every 2 ms
// it takes the codec block, applies muting, and batches blocks into
// segments for the server writer. Segments are stamped "as close as
// possible to the data source" (§3.2).
func (b *Box) runMicReader(p *occam.Proc) {
	sender := decouple.NewSender(b.micOutBuf)
	// The accumulating segment is built in place: blocks are filled
	// directly into the tail of a reused sample buffer (for sources
	// implementing workload.BlockFiller) and the Audio header is reset
	// around it per segment. WirePool.Encode copies the bytes out, so
	// both are recycled immediately after the single encode.
	filler, _ := b.cfg.Mic.(workload.BlockFiller)
	var (
		stream  uint32
		active  bool
		adata   []byte // accumulated samples of the segment being built
		nblocks int
		aseg    segment.Audio
		stampAt occam.Time
		seq     uint32
		perSeg  = b.cfg.BlocksPerSegment
	)
	// The guard slice is hoisted: Recv overwrites cmd/ready wholesale
	// on every fire, so the variables can be reused across iterations.
	var (
		cmd    audioCmd
		ready  bool
		guards = []occam.Guard{
			occam.Recv(b.audioCmds, &cmd),
			sender.ReadyGuard(&ready),
			occam.Skip(),
		}
	)
	for n := int64(0); ; n++ {
		p.SleepUntil(occam.Time(n * int64(segment.BlockDuration)))
		// Commands are taken between blocks (principle 4): "A command
		// will be received as soon as the process has finished
		// dealing with any current segment."
		for {
			which := p.Alt(guards...)
			if which == 2 {
				break
			}
			if which == 1 {
				sender.Update(ready)
				continue
			}
			switch {
			case cmd.StartMic != nil:
				stream, active, seq = *cmd.StartMic, true, 0
				nblocks = 0
				b.trace.Emit(obs.EvStreamOpen, b.cfg.Name+".mic", stream, "mic started")
			case cmd.StopMic:
				active = false
				b.trace.Emit(obs.EvStreamClose, b.cfg.Name+".mic", stream, "mic stopped")
			}
			if cmd.SetBlocks > 0 && cmd.SetBlocks <= segment.MaxBlocksPerSegment {
				perSeg = cmd.SetBlocks
				nblocks = 0
				b.trace.Emit(obs.EvReconfig, b.cfg.Name+".mic", stream,
					"blocks-per-segment changed")
			}
		}
		if !active {
			continue
		}
		p.Consume(audioOutgoingCost)
		if nblocks == 0 {
			// Stamp at the first sample's entry to the codec — the
			// start of this block's 2 ms sampling window — so
			// measured latency is mouth-to-ear like the paper's 8 ms
			// figure (§4.2). The codec samples on its own hardware
			// clock, so the window start is the nominal tick, not the
			// (contention-dependent) instant this process got
			// scheduled; stamping nominally also charges any software
			// delay at the source to the measured latency instead of
			// hiding it.
			stampAt = occam.Time((n - 1) * int64(segment.BlockDuration))
			adata = adata[:0]
		}
		var blk []byte
		if filler != nil {
			if cap(adata) < len(adata)+segment.BlockSamples {
				adata = append(adata, make([]byte, segment.BlockSamples)...)
			} else {
				adata = adata[:len(adata)+segment.BlockSamples]
			}
			blk = adata[len(adata)-segment.BlockSamples:]
			filler.FillBlock(blk)
		} else {
			blk = b.cfg.Mic.NextBlock()
		}
		if b.cfg.Features.Muting {
			b.muter.ApplyMic(int64(p.Now()), blk)
		}
		if filler == nil {
			adata = append(adata, blk...)
		}
		nblocks++
		b.audioStat.MicBlocks++
		if nblocks >= perSeg {
			// The single encode at the capture source (§3.4): from here
			// to the output device only the wire descriptor moves.
			w := b.wires.Encode(aseg.Reset(seq, stampAt, adata))
			seq++
			nblocks = 0
			if !sender.Deliver(p, wireMsg{Stream: stream, W: w}) {
				// Back pressure reached the source: throw away data
				// here, closest to the codec (§3.7.1).
				w.Release()
				b.audioStat.MicDrops++
				b.trace.Emit(obs.EvDrop, b.cfg.Name+".mic", stream, "mic-backpressure")
			} else {
				b.audioStat.MicSegs++
			}
		}
	}
}

// runServerWriter drains the audio board's decoupling buffer over the
// 20 Mbit/s link to the server.
func (b *Box) runServerWriter(p *occam.Proc) {
	for {
		msg := b.micOutBuf.Out.Recv(p)
		b.audioToServer.Send(p, msg, msg.W.Len()+segment.StreamNumberSize)
	}
}

// runAudioRx receives speaker-bound segments from the server link and
// feeds the per-stream clawback buffers. Input runs "without data
// loss as far as the decoupling buffers" — any dropping is the
// clawback buffers' decision.
func (b *Box) runAudioRx(p *occam.Proc) {
	for {
		msg := b.serverToAudio.Recv(p)
		if b.boardDown(p, "audio") {
			msg.W.Release()
			continue
		}
		b.mix.Deliver(msg.Stream, msg.W)
	}
}

// runBlockHandler is the incoming side: every 2 ms it mixes one block
// from each active stream's clawback buffer and plays it to the
// codec, observing the output for the muting detector. CPU cost is
// accounted per the §4.2 calibration; ticks that overrun the 2 ms
// budget are the measure of audio-board overload (experiment E1).
func (b *Box) runBlockHandler(p *occam.Proc) {
	for n := int64(1); ; n++ {
		deadline := occam.Time(n * int64(segment.BlockDuration))
		p.SleepUntil(deadline)
		start := p.Now()
		if start > deadline+occam.Time(segment.BlockDuration) {
			// We are more than a whole block late: account the
			// missed ticks rather than replaying them all. This is
			// principle 1's overload signal on the audio board.
			missed := int64(start-deadline) / int64(segment.BlockDuration)
			n += missed
			b.audioStat.LateTicks += uint64(missed)
			b.trace.Emit(obs.EvOverload, b.cfg.Name+".audio", 0, "mixing tick overran")
		}
		blk, mixed := b.mix.Tick(int64(p.Now()))
		cost := audioTickBase + time.Duration(mixed)*audioMixCost
		if b.cfg.Features.JitterCorrection {
			cost += time.Duration(mixed) * audioClawCost
		}
		if b.cfg.Features.Muting {
			cost += audioMuteCost
			b.muter.ObserveSpeaker(int64(p.Now()), blk)
		}
		if b.cfg.Features.Interface {
			cost += audioInterfaceCost
		}
		// Consume in slice-sized chunks: the transputer's high
		// priority processes preempt low priority ones, so a long
		// mixing pass must not block the outgoing side for its whole
		// duration.
		for cost > 0 {
			c := cost
			if c > 400*time.Microsecond {
				c = 400 * time.Microsecond
			}
			p.Consume(c)
			cost -= c
		}
		b.audioStat.TicksRun++
		if p.Now() > deadline.Add(segment.BlockDuration) {
			b.audioStat.LateTicks++
		}
	}
}
