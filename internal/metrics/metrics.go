// Package metrics provides the measurement instruments used by the
// experiments: latency/jitter trackers, time-series recorders for
// figure-style output, and audio quality accounting that maps the
// paper's qualitative loss statements (§3.8) onto measurable event
// rates.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Tracker accumulates duration samples and reports order statistics.
type Tracker struct {
	name    string
	samples []time.Duration
	sorted  bool
}

// NewTracker returns an empty tracker.
func NewTracker(name string) *Tracker { return &Tracker{name: name} }

// Add records one sample.
func (t *Tracker) Add(d time.Duration) {
	t.samples = append(t.samples, d)
	t.sorted = false
}

// Count returns the number of samples.
func (t *Tracker) Count() int { return len(t.samples) }

// Min returns the smallest sample (0 if empty).
func (t *Tracker) Min() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	t.sortSamples()
	return t.samples[0]
}

// Max returns the largest sample (0 if empty).
func (t *Tracker) Max() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	t.sortSamples()
	return t.samples[len(t.samples)-1]
}

// Mean returns the average sample (0 if empty).
func (t *Tracker) Mean() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range t.samples {
		sum += s
	}
	return sum / time.Duration(len(t.samples))
}

// Percentile returns the p'th percentile (0 ≤ p ≤ 100) by the
// nearest-rank method.
func (t *Tracker) Percentile(p float64) time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	t.sortSamples()
	rank := int(p / 100 * float64(len(t.samples)-1))
	if rank < 0 {
		rank = 0
	}
	if rank >= len(t.samples) {
		rank = len(t.samples) - 1
	}
	return t.samples[rank]
}

// Jitter returns max − min: the peak-to-peak delay variation, the
// quantity the clawback buffer has to absorb.
func (t *Tracker) Jitter() time.Duration { return t.Max() - t.Min() }

func (t *Tracker) sortSamples() {
	if !t.sorted {
		sort.Slice(t.samples, func(i, j int) bool { return t.samples[i] < t.samples[j] })
		t.sorted = true
	}
}

// String summarises the tracker in a table-row-friendly form.
func (t *Tracker) String() string {
	return fmt.Sprintf("%s: n=%d min=%v mean=%v p99=%v max=%v",
		t.name, t.Count(), t.Min(), t.Mean(), t.Percentile(99), t.Max())
}

// Point is one (time, value) sample of a series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series records a named time series — the data behind the
// figure-style outputs (clawback delay vs time, muting factor vs
// time).
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// At returns the value in force at time at (the most recent sample
// not after it); ok is false before the first sample.
func (s *Series) At(at time.Duration) (float64, bool) {
	v, ok := 0.0, false
	for _, p := range s.Points {
		if p.At > at {
			break
		}
		v, ok = p.Value, true
	}
	return v, ok
}

// Downsample returns at most n points, evenly spaced, always
// including the first and last — enough to print a recognisable
// figure as text.
func (s *Series) Downsample(n int) []Point {
	if n <= 0 || len(s.Points) <= n {
		return s.Points
	}
	out := make([]Point, 0, n)
	step := float64(len(s.Points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, s.Points[int(float64(i)*step)])
	}
	return out
}

// AudioQuality accumulates the §3.8 event classes for one stream and
// scores them against the paper's audibility statements.
type AudioQuality struct {
	Blocks         uint64 // blocks played
	SilentInserts  uint64 // 2 ms silences (clawback underruns)
	DroppedBlocks  uint64 // blocks lost or discarded
	ReplayedBlocks uint64 // concealment replays
	ConsecutiveBad uint64 // worst run of bad (silent/replayed) blocks
	currentBadRun  uint64
}

// Good records n good blocks.
func (q *AudioQuality) Good(n uint64) {
	q.Blocks += n
	q.currentBadRun = 0
}

// Bad records one degraded block of the given kind.
func (q *AudioQuality) Bad(silent, dropped, replayed bool) {
	q.Blocks++
	if silent {
		q.SilentInserts++
	}
	if dropped {
		q.DroppedBlocks++
	}
	if replayed {
		q.ReplayedBlocks++
	}
	q.currentBadRun++
	if q.currentBadRun > q.ConsecutiveBad {
		q.ConsecutiveBad = q.currentBadRun
	}
}

// Verdict classifies the stream against the paper's observations:
// occasional 2 ms drops are "rarely noticeable in speech"; repeated
// drops sound "gravelly"; frequent replays sound "garbled".
type Verdict string

// Verdicts, ordered from best to worst.
const (
	Clean      Verdict = "clean"
	Occasional Verdict = "occasional"
	Gravelly   Verdict = "gravelly"
	Garbled    Verdict = "garbled"
)

// Verdict scores the accumulated events.
func (q *AudioQuality) Verdict() Verdict {
	if q.Blocks == 0 {
		return Clean
	}
	bad := q.SilentInserts + q.DroppedBlocks + q.ReplayedBlocks
	rate := float64(bad) / float64(q.Blocks)
	switch {
	case rate == 0:
		return Clean
	case rate < 0.01 && q.ConsecutiveBad <= 2:
		return Occasional
	case rate < 0.10:
		return Gravelly
	default:
		return Garbled
	}
}
