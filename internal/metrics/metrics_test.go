package metrics

import (
	"testing"
	"time"
)

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker("lat")
	if tr.Min() != 0 || tr.Max() != 0 || tr.Mean() != 0 || tr.Percentile(50) != 0 {
		t.Fatal("empty tracker not zero")
	}
	for _, d := range []time.Duration{3, 1, 4, 1, 5} {
		tr.Add(d * time.Millisecond)
	}
	if tr.Count() != 5 {
		t.Fatalf("Count = %d", tr.Count())
	}
	if tr.Min() != time.Millisecond || tr.Max() != 5*time.Millisecond {
		t.Fatalf("min=%v max=%v", tr.Min(), tr.Max())
	}
	if tr.Mean() != 2800*time.Microsecond {
		t.Fatalf("mean=%v", tr.Mean())
	}
	if tr.Jitter() != 4*time.Millisecond {
		t.Fatalf("jitter=%v", tr.Jitter())
	}
	if tr.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTrackerPercentiles(t *testing.T) {
	tr := NewTracker("p")
	for i := 1; i <= 100; i++ {
		tr.Add(time.Duration(i) * time.Millisecond)
	}
	if p := tr.Percentile(0); p != time.Millisecond {
		t.Fatalf("p0=%v", p)
	}
	if p := tr.Percentile(100); p != 100*time.Millisecond {
		t.Fatalf("p100=%v", p)
	}
	p50 := tr.Percentile(50)
	if p50 < 49*time.Millisecond || p50 > 51*time.Millisecond {
		t.Fatalf("p50=%v", p50)
	}
}

func TestTrackerAddAfterSortStaysCorrect(t *testing.T) {
	tr := NewTracker("x")
	tr.Add(5 * time.Millisecond)
	_ = tr.Max() // forces sort
	tr.Add(time.Millisecond)
	if tr.Min() != time.Millisecond {
		t.Fatal("sample added after sort was lost")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("delay")
	if _, ok := s.At(0); ok {
		t.Fatal("empty series has a value")
	}
	s.Add(0, 20)
	s.Add(10*time.Second, 10)
	s.Add(20*time.Second, 4)
	if v, ok := s.At(5 * time.Second); !ok || v != 20 {
		t.Fatalf("At(5s) = %v,%v", v, ok)
	}
	if v, _ := s.At(10 * time.Second); v != 10 {
		t.Fatalf("At(10s) = %v", v)
	}
	if v, _ := s.At(time.Hour); v != 4 {
		t.Fatalf("At(1h) = %v", v)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("d")
	for i := 0; i < 1000; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	pts := s.Downsample(11)
	if len(pts) != 11 {
		t.Fatalf("downsample to %d points", len(pts))
	}
	if pts[0].Value != 0 || pts[10].Value != 999 {
		t.Fatalf("endpoints %v %v", pts[0], pts[10])
	}
	if got := s.Downsample(2000); len(got) != 1000 {
		t.Fatal("oversized downsample changed data")
	}
	if got := s.Downsample(0); len(got) != 1000 {
		t.Fatal("zero downsample changed data")
	}
}

func TestAudioQualityVerdicts(t *testing.T) {
	var clean AudioQuality
	clean.Good(10000)
	if v := clean.Verdict(); v != Clean {
		t.Fatalf("clean verdict %v", v)
	}

	var occ AudioQuality
	occ.Good(9999)
	occ.Bad(false, true, false)
	if v := occ.Verdict(); v != Occasional {
		t.Fatalf("occasional verdict %v", v)
	}

	var grav AudioQuality
	for i := 0; i < 100; i++ {
		grav.Good(30)
		grav.Bad(false, true, false)
	}
	if v := grav.Verdict(); v != Gravelly {
		t.Fatalf("gravelly verdict %v (rate ~3%%)", v)
	}

	var garb AudioQuality
	for i := 0; i < 100; i++ {
		garb.Good(2)
		garb.Bad(false, false, true)
		garb.Bad(false, false, true)
	}
	if v := garb.Verdict(); v != Garbled {
		t.Fatalf("garbled verdict %v", v)
	}
}

func TestAudioQualityBadRuns(t *testing.T) {
	var q AudioQuality
	q.Good(5000)
	q.Bad(true, false, false)
	q.Bad(true, false, false)
	q.Bad(true, false, false)
	q.Good(5000)
	if q.ConsecutiveBad != 3 {
		t.Fatalf("ConsecutiveBad = %d", q.ConsecutiveBad)
	}
	// A long bad run pushes an otherwise-low rate past Occasional.
	if q.Verdict() == Occasional {
		t.Fatal("3-block run rated occasional")
	}
}

func TestAudioQualityEmpty(t *testing.T) {
	var q AudioQuality
	if q.Verdict() != Clean {
		t.Fatal("empty quality not clean")
	}
}
