package obs

import (
	"strings"
	"testing"

	"repro/internal/occam"
)

// fakeClock is a settable Clock.
type fakeClock struct{ t occam.Time }

func (c *fakeClock) Now() occam.Time { return c.t }

func TestCounterGaugeRegistration(t *testing.T) {
	clk := &fakeClock{}
	r := New(clk)

	c := r.Counter("widgets_total", L("box", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	// Same name+labels yields the same counter.
	if c2 := r.Counter("widgets_total", L("box", "a")); c2 != c {
		t.Fatalf("re-registration returned a different counter")
	}
	// Different labels yield a different one.
	if c3 := r.Counter("widgets_total", L("box", "b")); c3 == c {
		t.Fatalf("different labels returned the same counter")
	}

	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}

	depth := 7
	r.GaugeFunc("live_depth", func() float64 { return float64(depth) })
	var raw uint64 = 9
	r.CounterFunc("raw_total", func() uint64 { return raw })

	clk.t = occam.Time(1e9)
	s := r.Snapshot()
	if s.At != occam.Time(1e9) {
		t.Fatalf("snapshot At = %v, want t+1s", s.At)
	}
	if sm, ok := s.Get("live_depth"); !ok || sm.Value != 7 {
		t.Fatalf("live_depth = %+v ok=%v, want 7", sm, ok)
	}
	if sm, ok := s.Get("raw_total"); !ok || sm.Value != 9 {
		t.Fatalf("raw_total = %+v ok=%v, want 9", sm, ok)
	}
	if got := s.Total("widgets_total"); got != 5 {
		t.Fatalf("family total = %g, want 5", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("unregistered counter does not count")
	}
	g := r.Gauge("g")
	g.Set(2)
	h := r.Histogram("h", nil)
	h.Observe(1)
	r.CounterFunc("cf", func() uint64 { return 0 })
	r.GaugeFunc("gf", func() float64 { return 0 })
	r.RegisterCounter("rc", c)
	if n := len(r.Snapshot().Samples); n != 0 {
		t.Fatalf("nil registry snapshot has %d samples", n)
	}
	r.Tracer().Emit(EvDrop, "nowhere", 0, "nothing")
	if r.Tracer().Total() != 0 {
		t.Fatalf("nil tracer recorded an event")
	}
	if r.Now() != 0 {
		t.Fatalf("nil registry Now != 0")
	}
}

func TestRegisterExistingCounter(t *testing.T) {
	r := New(&fakeClock{})
	c := NewCounter()
	c.Add(3)
	r.RegisterCounter("pre_total", c, L("k", "v"))
	if sm, ok := r.Snapshot().Get("pre_total", L("k", "v")); !ok || sm.Value != 3 {
		t.Fatalf("adopted counter sample = %+v ok=%v, want 3", sm, ok)
	}
	// Idempotent: a second registration keeps the first handle.
	r.RegisterCounter("pre_total", NewCounter(), L("k", "v"))
	c.Inc()
	if sm, _ := r.Snapshot().Get("pre_total", L("k", "v")); sm.Value != 4 {
		t.Fatalf("second registration replaced the counter: %+v", sm)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Fatalf("count=%d sum=%g, want 3/55.5", h.Count(), h.Sum())
	}
	if h.counts[0] != 1 || h.counts[1] != 1 || h.counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want [1 1 1]", h.counts)
	}

	r := New(&fakeClock{})
	rh := r.Histogram("lat_ms", []float64{1, 10}, L("box", "a"))
	rh.Observe(5)
	sm, ok := r.Snapshot().Get("lat_ms", L("box", "a"))
	if !ok || sm.Count != 1 || sm.Sum != 5 {
		t.Fatalf("histogram sample = %+v ok=%v", sm, ok)
	}
}

func TestDelta(t *testing.T) {
	clk := &fakeClock{}
	r := New(clk)
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{10})

	c.Add(5)
	g.Set(1)
	h.Observe(3)
	prev := r.Snapshot()

	clk.t = occam.Time(2e9)
	c.Add(7)
	g.Set(9)
	h.Observe(4)
	d := r.Snapshot().Delta(prev)

	if d.Since != prev.At || d.At != occam.Time(2e9) {
		t.Fatalf("delta window = %v..%v", d.Since, d.At)
	}
	if sm, _ := d.Get("c_total"); sm.Value != 7 {
		t.Fatalf("counter delta = %g, want 7", sm.Value)
	}
	if sm, _ := d.Get("g"); sm.Value != 9 {
		t.Fatalf("gauge in delta = %g, want current 9", sm.Value)
	}
	if sm, _ := d.Get("h"); sm.Count != 1 || sm.Sum != 4 {
		t.Fatalf("histogram delta = %+v, want count 1 sum 4", sm)
	}
}

func TestExporters(t *testing.T) {
	clk := &fakeClock{t: occam.Time(1e9)}
	r := New(clk)
	r.Counter("a_total", L("link", "l0")).Add(2)
	r.Gauge("depth").Set(3)
	r.Histogram("lat_ms", []float64{1, 10}).Observe(5)

	table := r.Snapshot().Table()
	for _, want := range []string{"snapshot at t+1s", `a_total{link="l0"}`, "counter", "2", "depth", "gauge", "n=1"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	prom := r.Snapshot().Prometheus()
	for _, want := range []string{
		"# TYPE a_total counter",
		`a_total{link="l0"} 2`,
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{le="1"} 0`,
		`lat_ms_bucket{le="10"} 1`,
		`lat_ms_bucket{le="+Inf"} 1`,
		"lat_ms_sum 5",
		"lat_ms_count 1",
		"pandora_virtual_time_seconds 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom)
		}
	}
}

func TestTracerRing(t *testing.T) {
	clk := &fakeClock{}
	r := New(clk, WithTraceCapacity(4))
	tr := r.Tracer()
	for i := 0; i < 6; i++ {
		clk.t = occam.Time(i) * occam.Time(occam.Millisecond)
		tr.Emit(EvDrop, "src", uint32(i), "r")
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(ev))
	}
	if ev[0].Stream != 2 || ev[3].Stream != 5 {
		t.Fatalf("ring window = [%d..%d], want [2..5]", ev[0].Stream, ev[3].Stream)
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
	if !strings.Contains(ev[3].String(), "drop") {
		t.Fatalf("event String lacks kind: %q", ev[3].String())
	}
}
