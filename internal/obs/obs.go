// Package obs is the unified observability layer: a registry of named
// counters, gauges and histograms stamped with *virtual* time
// (occam.Time), plus a bounded ring-buffer event tracer (see trace.go).
//
// It generalises the paper's per-process drop counters and rate-limited
// host-log reports (§3.8) into one cross-cutting substrate: every
// data-path package (atm links, clawback buffers, the mixer, the
// decoupling buffers, the allocator and the box boards) registers its
// counters here once, and a whole running simulation can be snapshotted,
// diffed and exported at any instant of virtual time.
//
// Design constraints, in order:
//
//   - Hot paths pay one pointer-chase and one integer add. An instrument
//     is a plain struct field registered once; there are no locks and no
//     atomics because the occam scheduler runs exactly one process at a
//     time (package occam's defining property).
//   - Instrumented code must not care whether anyone is watching: every
//     constructor and Emit is safe on a nil *Registry / *Tracer and
//     simply hands back an unregistered (but fully functional)
//     instrument, so unit tests of one package need no registry.
//   - Existing accessor APIs (atm.LinkStats, clawback.Stats,
//     mixer.StreamStats, ...) keep working; they are reconstructed from
//     the registered instruments.
//
// Snapshots can be rendered as a human table (Table) or as
// Prometheus-style text lines (Prometheus).
package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/occam"
)

// Clock supplies virtual time for snapshot and event stamps.
// *occam.Runtime satisfies it.
type Clock interface {
	Now() occam.Time
}

// Label is one key=value dimension of an instrument, e.g.
// {Key: "link", Value: "alice-bob.0"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies an instrument.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "?"
}

// Counter is a monotonically increasing count. The zero value is ready
// to use; an unregistered counter still counts.
type Counter struct {
	v uint64
}

// NewCounter returns an unregistered counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous value. The zero value is ready to use.
type Gauge struct {
	v float64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by d (may be negative).
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// DefaultLatencyBucketsMs are histogram bounds suited to the paper's
// millisecond-scale latencies (the headline mic→speaker figure is 8 ms).
var DefaultLatencyBucketsMs = []float64{2, 4, 6, 8, 10, 15, 20, 30, 50, 100, 200, 500}

// Histogram accumulates observations into fixed buckets. Bounds are
// upper-inclusive; one implicit overflow bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is overflow
	sum    float64
	n      uint64
}

// NewHistogram returns an unregistered histogram with the given bucket
// upper bounds (nil selects DefaultLatencyBucketsMs). Bounds must be
// sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBucketsMs
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observation (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// entry is one registered instrument.
type entry struct {
	name   string
	labels []Label
	kind   Kind

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// Registry holds every registered instrument plus the event tracer.
// All methods are nil-receiver safe: with a nil registry they return
// working, unregistered instruments, so instrumented packages never
// need to branch on "is observability enabled".
type Registry struct {
	clock   Clock
	entries []*entry
	byKey   map[string]*entry
	tracer  *Tracer
}

// Option configures a Registry.
type Option func(*Registry)

// WithTraceCapacity sets the event ring size (default DefaultTraceCap).
func WithTraceCapacity(n int) Option {
	return func(r *Registry) { r.tracer = newTracer(r.clock, n) }
}

// New returns an empty registry stamping snapshots and events with
// clock's virtual time.
func New(clock Clock, opts ...Option) *Registry {
	r := &Registry{
		clock:  clock,
		byKey:  make(map[string]*entry),
		tracer: newTracer(clock, DefaultTraceCap),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Now returns the registry clock's current virtual time (0 with a nil
// registry or clock).
func (r *Registry) Now() occam.Time {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock.Now()
}

// Tracer returns the event tracer (nil with a nil registry, which is
// itself safe to Emit on).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register adds e unless the key already exists, in which case the
// existing entry is returned (registration is idempotent: two callers
// naming the same instrument share it).
func (r *Registry) register(e *entry) *entry {
	k := key(e.name, e.labels)
	if prev, ok := r.byKey[k]; ok {
		if prev.kind != e.kind {
			panic(fmt.Sprintf("obs: %s re-registered as %v, was %v", k, e.kind, prev.kind))
		}
		return prev
	}
	r.byKey[k] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns the counter registered under name+labels, creating
// it if needed. On a nil registry it returns a fresh unregistered
// counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return NewCounter()
	}
	e := r.register(&entry{name: name, labels: labels, kind: KindCounter, counter: NewCounter()})
	if e.counter == nil {
		panic(fmt.Sprintf("obs: %s registered as a func-backed counter", key(name, labels)))
	}
	return e.counter
}

// RegisterCounter registers an existing counter handle (idempotent;
// no-op on a nil registry). Used by packages that create their
// instruments before a registry is attached.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&entry{name: name, labels: labels, kind: KindCounter, counter: c})
}

// CounterFunc registers a read-callback counter over an existing plain
// struct field — the cheapest possible bridging for hot-path stats
// that are already maintained elsewhere. No-op on a nil registry.
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&entry{name: name, labels: labels, kind: KindCounter, counterFn: fn})
}

// Gauge returns the gauge registered under name+labels, creating it if
// needed. On a nil registry it returns a fresh unregistered gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return NewGauge()
	}
	e := r.register(&entry{name: name, labels: labels, kind: KindGauge, gauge: NewGauge()})
	if e.gauge == nil {
		panic(fmt.Sprintf("obs: %s registered as a func-backed gauge", key(name, labels)))
	}
	return e.gauge
}

// GaugeFunc registers a read-callback gauge (e.g. a live queue depth).
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&entry{name: name, labels: labels, kind: KindGauge, gaugeFn: fn})
}

// Histogram returns the histogram registered under name+labels,
// creating it with the given bounds if needed (nil bounds select
// DefaultLatencyBucketsMs). On a nil registry it returns a fresh
// unregistered histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	e := r.register(&entry{name: name, labels: labels, kind: KindHistogram, hist: NewHistogram(bounds)})
	return e.hist
}

// Value reads one registered counter's or gauge's current value
// without building a full Snapshot — cheap enough for control loops
// that poll a handful of instruments every few milliseconds (the
// degrade controller's pressure probes). Func-backed instruments
// invoke their callback. It returns false for an unknown instrument,
// a histogram, or a nil registry.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	e, ok := r.byKey[key(name, labels)]
	if !ok {
		return 0, false
	}
	return e.sampleValue()
}

func (e *entry) sampleValue() (float64, bool) {
	switch e.kind {
	case KindCounter:
		if e.counterFn != nil {
			return float64(e.counterFn()), true
		}
		return float64(e.counter.Value()), true
	case KindGauge:
		if e.gaugeFn != nil {
			return e.gaugeFn(), true
		}
		return e.gauge.Value(), true
	}
	return 0, false
}

// Probe is a pre-keyed Value: the instrument key is built once and the
// registry entry cached on first successful read, so polling it every
// few milliseconds costs no allocation. An instrument registered after
// the probe was made is picked up on the next read (entries are never
// replaced, so the cache cannot go stale). The zero Probe (and any
// probe from a nil registry) always reads false.
type Probe struct {
	r *Registry
	k string
	e *entry
}

// Probe returns a probe for the named counter or gauge.
func (r *Registry) Probe(name string, labels ...Label) *Probe {
	if r == nil {
		return &Probe{}
	}
	return &Probe{r: r, k: key(name, labels)}
}

// Value reads the probed instrument, resolving it if needed.
func (p *Probe) Value() (float64, bool) {
	if p.e == nil {
		if p.r == nil {
			return 0, false
		}
		e, ok := p.r.byKey[p.k]
		if !ok {
			return 0, false
		}
		p.e = e
	}
	return p.e.sampleValue()
}

// Sample is one instrument's state at snapshot time.
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind

	// Value is the counter count or gauge level.
	Value float64

	// Histogram state (KindHistogram only). Buckets[i] counts
	// observations ≤ Bounds[i]; the final extra element is overflow.
	Count   uint64
	Sum     float64
	Bounds  []float64
	Buckets []uint64
}

// labelString renders {k="v",...} or "" without labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ID renders the sample's full identity, e.g. `x_total{link="a-b.0"}`.
func (s Sample) ID() string { return s.Name + labelString(s.Labels) }

// Snapshot is the state of every registered instrument at one instant
// of virtual time.
type Snapshot struct {
	// At is when the snapshot was taken; Since is non-zero for deltas.
	At, Since occam.Time
	Samples   []Sample
}

// Snapshot reads every instrument. Safe to call whenever no simulation
// process is mid-step (between RunFor calls, or from a control
// process). A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{At: r.Now(), Samples: make([]Sample, 0, len(r.entries))}
	for _, e := range r.entries {
		sm := Sample{Name: e.name, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			if e.counterFn != nil {
				sm.Value = float64(e.counterFn())
			} else {
				sm.Value = float64(e.counter.Value())
			}
		case KindGauge:
			if e.gaugeFn != nil {
				sm.Value = e.gaugeFn()
			} else {
				sm.Value = e.gauge.Value()
			}
		case KindHistogram:
			sm.Count = e.hist.n
			sm.Sum = e.hist.sum
			sm.Bounds = e.hist.bounds
			sm.Buckets = append([]uint64(nil), e.hist.counts...)
		}
		s.Samples = append(s.Samples, sm)
	}
	sort.Slice(s.Samples, func(i, j int) bool { return s.Samples[i].ID() < s.Samples[j].ID() })
	return s
}

// Get returns the sample with the exact name and labels.
func (s Snapshot) Get(name string, labels ...Label) (Sample, bool) {
	want := key(name, labels)
	for _, sm := range s.Samples {
		if key(sm.Name, sm.Labels) == want {
			return sm, true
		}
	}
	return Sample{}, false
}

// Family returns every sample of the named family (all label sets).
func (s Snapshot) Family(name string) []Sample {
	var out []Sample
	for _, sm := range s.Samples {
		if sm.Name == name {
			out = append(out, sm)
		}
	}
	return out
}

// Total sums a family's counter/gauge values across label sets.
func (s Snapshot) Total(name string) float64 {
	var sum float64
	for _, sm := range s.Family(name) {
		sum += sm.Value
	}
	return sum
}

// Delta returns a snapshot whose counters and histogram counts are the
// increase since prev (missing-in-prev samples keep their full value);
// gauges keep their current level. Since is set to prev.At.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	prevBy := make(map[string]Sample, len(prev.Samples))
	for _, sm := range prev.Samples {
		prevBy[key(sm.Name, sm.Labels)] = sm
	}
	d := Snapshot{At: s.At, Since: prev.At, Samples: make([]Sample, 0, len(s.Samples))}
	for _, sm := range s.Samples {
		p, ok := prevBy[key(sm.Name, sm.Labels)]
		if ok {
			switch sm.Kind {
			case KindCounter:
				sm.Value -= p.Value
			case KindHistogram:
				sm.Count -= p.Count
				sm.Sum -= p.Sum
				buckets := append([]uint64(nil), sm.Buckets...)
				for i := range buckets {
					if i < len(p.Buckets) {
						buckets[i] -= p.Buckets[i]
					}
				}
				sm.Buckets = buckets
			}
		}
		d.Samples = append(d.Samples, sm)
	}
	return d
}

// Table renders the snapshot as a human-readable aligned table.
func (s Snapshot) Table() string {
	var b strings.Builder
	if s.Since != 0 {
		fmt.Fprintf(&b, "# delta %v .. %v\n", s.Since, s.At)
	} else {
		fmt.Fprintf(&b, "# snapshot at %v\n", s.At)
	}
	width := 0
	for _, sm := range s.Samples {
		if n := len(sm.ID()); n > width {
			width = n
		}
	}
	for _, sm := range s.Samples {
		switch sm.Kind {
		case KindHistogram:
			fmt.Fprintf(&b, "%-*s  %-9s n=%d sum=%.2f mean=%.2f\n",
				width, sm.ID(), sm.Kind, sm.Count, sm.Sum, safeMean(sm.Sum, sm.Count))
		case KindGauge:
			fmt.Fprintf(&b, "%-*s  %-9s %g\n", width, sm.ID(), sm.Kind, sm.Value)
		default:
			fmt.Fprintf(&b, "%-*s  %-9s %.0f\n", width, sm.ID(), sm.Kind, sm.Value)
		}
	}
	return b.String()
}

func safeMean(sum float64, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Prometheus renders the snapshot in the Prometheus text exposition
// style (TYPE comments plus one line per sample; histograms expand to
// cumulative _bucket/_sum/_count lines). Virtual time is exported as
// the pandora_virtual_time_seconds gauge rather than per-line
// timestamps, which scrapers would misread as wall time.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE pandora_virtual_time_seconds gauge\n")
	fmt.Fprintf(&b, "pandora_virtual_time_seconds %g\n", s.At.Seconds())
	lastName := ""
	for _, sm := range s.Samples {
		if sm.Name != lastName {
			fmt.Fprintf(&b, "# TYPE %s %s\n", sm.Name, sm.Kind)
			lastName = sm.Name
		}
		switch sm.Kind {
		case KindHistogram:
			var cum uint64
			for i, bound := range sm.Bounds {
				cum += sm.Buckets[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", sm.Name, leLabel(sm.Labels, fmt.Sprintf("%g", bound)), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", sm.Name, leLabel(sm.Labels, "+Inf"), sm.Count)
			fmt.Fprintf(&b, "%s_sum%s %g\n", sm.Name, labelString(sm.Labels), sm.Sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", sm.Name, labelString(sm.Labels), sm.Count)
		default:
			fmt.Fprintf(&b, "%s%s %g\n", sm.Name, labelString(sm.Labels), sm.Value)
		}
	}
	return b.String()
}

func leLabel(labels []Label, le string) string {
	all := append(append([]Label(nil), labels...), L("le", le))
	return labelString(all)
}
