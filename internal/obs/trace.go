package obs

import (
	"fmt"

	"repro/internal/occam"
)

// The event tracer: a bounded ring buffer of data-path events stamped
// with virtual time. Where the registry answers "how many", the trace
// answers "when and in what order" — the paper's host-log report lines
// (§3.8), but structured, bounded, and cheap enough to leave on.

// EventKind classifies a trace event.
type EventKind uint8

// Event kinds.
const (
	// EvStreamOpen: a stream was created or reactivated somewhere on
	// the data path (mixer stream activation, route installed, mic or
	// camera started).
	EvStreamOpen EventKind = iota
	// EvStreamClose: the reverse.
	EvStreamClose
	// EvDrop: data was discarded; Detail carries the reason (the
	// clawback DropReason, "queue", "loss", "late-duplicate", ...).
	EvDrop
	// EvOverload: a resource entered an overloaded state (output
	// buffer full, allocator starved, audio tick overran).
	EvOverload
	// EvRecover: an overloaded resource relaxed back to normal.
	EvRecover
	// EvReconfig: a control-plane change (route table update,
	// blocks-per-segment change, resize).
	EvReconfig
	// EvFault: an injected fault fired (faultinject burst loss,
	// corruption, duplication, link stall, board crash). Distinct from
	// EvDrop so replayed fault schedules can be audited apart from the
	// system's own reactions to them.
	EvFault
	// EvRepair: a distribution tree was repaired around a failed
	// interior box — its orphaned children were re-parented onto
	// surviving boxes mid-stream. Distinct from EvReconfig so tree
	// repairs can be audited apart from routine route updates.
	EvRepair
)

func (k EventKind) String() string {
	switch k {
	case EvStreamOpen:
		return "stream-open"
	case EvStreamClose:
		return "stream-close"
	case EvDrop:
		return "drop"
	case EvOverload:
		return "overload"
	case EvRecover:
		return "recover"
	case EvReconfig:
		return "reconfig"
	case EvFault:
		return "fault"
	case EvRepair:
		return "repair"
	}
	return "?"
}

// Event is one traced occurrence.
type Event struct {
	At     occam.Time
	Kind   EventKind
	Source string // emitting component, e.g. "atm.alice-bob.0" or "alice.switch"
	Stream uint32 // stream number / VCI, 0 when not applicable
	Detail string // reason or free-form note
}

func (e Event) String() string {
	s := fmt.Sprintf("[%10.3fms] %-12s %-24s", e.At.Millis(), e.Kind, e.Source)
	if e.Stream != 0 {
		s += fmt.Sprintf(" stream=%-6d", e.Stream)
	} else {
		s += "              "
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// DefaultTraceCap bounds the event ring: old events are overwritten,
// so a long simulation keeps its most recent history.
const DefaultTraceCap = 4096

// Tracer is the bounded event ring. Emit is nil-receiver safe, so
// instrumented code traces unconditionally.
type Tracer struct {
	clock Clock
	buf   []Event
	next  int
	n     int
	total uint64
}

func newTracer(clock Clock, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{clock: clock, buf: make([]Event, capacity)}
}

// Emit records one event stamped with the current virtual time.
func (t *Tracer) Emit(kind EventKind, source string, stream uint32, detail string) {
	if t == nil {
		return
	}
	var at occam.Time
	if t.clock != nil {
		at = t.clock.Now()
	}
	t.EmitAt(at, kind, source, stream, detail)
}

// EmitAt records one event stamped with the given time. It is for
// callers already inside the scheduler (occam.Timer callbacks), where
// Emit's clock read would deadlock on the runtime lock; they pass
// their Sched.Now instead.
func (t *Tracer) EmitAt(at occam.Time, kind EventKind, source string, stream uint32, detail string) {
	if t == nil {
		return
	}
	t.buf[t.next] = Event{At: at, Kind: kind, Source: source, Stream: stream, Detail: detail}
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.total++
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Total returns how many events were ever emitted (including ones the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}
