package balancer

import (
	"testing"
	"time"

	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/fabric"
)

func TestScoreWeights(t *testing.T) {
	cfg := Config{}.withDefaults()
	if got := cfg.Score(Sample{}); got != 0 {
		t.Fatalf("idle sample scored %v, want 0", got)
	}
	// Queue pressure dominates: a full egress queue outweighs every
	// secondary signal at its default weight.
	hot := cfg.Score(Sample{Queue: 1.0})
	warm := cfg.Score(Sample{Ingress: 1.0, Sheds: 4, Copies: 16, Placements: 16})
	if hot <= warm/2 {
		t.Fatalf("full queue scored %v vs %v for all secondary signals", hot, warm)
	}
	// Monotone in each input.
	base := Sample{Queue: 0.5, Ingress: 0.5, Sheds: 1, Faults: 0, Copies: 2, Placements: 2}
	b := cfg.Score(base)
	for name, s := range map[string]Sample{
		"queue":      {Queue: 0.6, Ingress: 0.5, Sheds: 1, Copies: 2, Placements: 2},
		"ingress":    {Queue: 0.5, Ingress: 0.6, Sheds: 1, Copies: 2, Placements: 2},
		"sheds":      {Queue: 0.5, Ingress: 0.5, Sheds: 2, Copies: 2, Placements: 2},
		"faults":     {Queue: 0.5, Ingress: 0.5, Sheds: 1, Faults: 1, Copies: 2, Placements: 2},
		"copies":     {Queue: 0.5, Ingress: 0.5, Sheds: 1, Copies: 4, Placements: 2},
		"placements": {Queue: 0.5, Ingress: 0.5, Sheds: 1, Copies: 2, Placements: 4},
	} {
		if got := cfg.Score(s); got <= b {
			t.Errorf("raising %s did not raise the score: %v <= %v", name, got, b)
		}
	}
	// Secondary terms saturate at their clamps.
	if cfg.Score(Sample{Sheds: 100}) != cfg.Score(Sample{Sheds: 4}) {
		t.Errorf("sheds term did not saturate")
	}
	if cfg.Score(Sample{Copies: 100}) != cfg.Score(Sample{Copies: 16}) {
		t.Errorf("copies term did not saturate")
	}
}

func TestHysteresisBand(t *testing.T) {
	cfg := Config{Hysteresis: 0.1}.withDefaults()
	eff := 0.5
	// Jitter inside the band is ignored in both directions.
	for _, raw := range []float64{0.45, 0.55, 0.5, 0.41, 0.59} {
		if got := cfg.applyHysteresis(eff, raw); got != eff {
			t.Fatalf("raw %v inside band moved eff to %v", raw, got)
		}
	}
	// Moves beyond the band are adopted.
	if got := cfg.applyHysteresis(eff, 0.75); got != 0.75 {
		t.Fatalf("raw 0.75 outside band gave %v", got)
	}
	if got := cfg.applyHysteresis(eff, 0.2); got != 0.2 {
		t.Fatalf("raw 0.2 outside band gave %v", got)
	}
	// From zero, the first real load reading is adopted.
	if got := cfg.applyHysteresis(0, 0.9); got != 0.9 {
		t.Fatalf("cold start gave %v", got)
	}
}

// balSys builds a small fabric system for control-plane tests.
func balSys(t *testing.T, names ...string) *core.System {
	t.Helper()
	s := core.NewSystem()
	for _, n := range names {
		s.AddBox(box.Config{Name: n})
	}
	s.AddFabric("fab", fabric.Config{})
	for _, n := range names {
		s.AttachFabric("fab", n)
	}
	return s
}

func TestAdmissionBudget(t *testing.T) {
	s := balSys(t, "a", "b")
	defer s.Shutdown()
	b := New(s, Config{Budget: 2})
	if !b.AdmitCall() || !b.AdmitCall() {
		t.Fatal("calls within budget rejected")
	}
	if b.AdmitCall() {
		t.Fatal("call beyond budget admitted")
	}
	if got := b.Rejected(); got != 1 {
		t.Fatalf("Rejected() = %d, want 1", got)
	}
	b.ReleaseCall()
	if !b.AdmitCall() {
		t.Fatal("call after release rejected")
	}
	if got, want := b.Admitted(), uint64(3); got != want {
		t.Fatalf("Admitted() = %d, want %d", got, want)
	}
}

func TestAdmissionUnlimitedAndReleaseFloor(t *testing.T) {
	s := balSys(t, "a", "b")
	defer s.Shutdown()
	b := New(s, Config{}) // Budget 0: no admission control
	b.ReleaseCall()       // spurious release must not underflow
	for i := 0; i < 100; i++ {
		if !b.AdmitCall() {
			t.Fatalf("unlimited budget rejected call %d", i)
		}
	}
	if b.Rejected() != 0 {
		t.Fatalf("unlimited budget rejected %d", b.Rejected())
	}
}

func TestRankBoxesStableOnTies(t *testing.T) {
	s := balSys(t, "n0", "n1", "n2")
	defer s.Shutdown()
	b := New(s, Config{})
	// All scores equal (zero): ranking must preserve input order, so
	// placement degenerates to first-fit on an idle system.
	got := b.RankBoxes([]string{"n2", "n0", "n1"})
	if got[0] != "n2" || got[1] != "n0" || got[2] != "n1" {
		t.Fatalf("tied ranking reordered: %v", got)
	}
	// A loaded first candidate sinks below idle ones.
	b.boards["n2"].eff = 1.5
	got = b.RankBoxes([]string{"n2", "n0", "n1"})
	if got[0] != "n0" || got[2] != "n2" {
		t.Fatalf("loaded box not demoted: %v", got)
	}
}

func TestRankBoxesCountsPlacements(t *testing.T) {
	s := balSys(t, "a", "b")
	defer s.Shutdown()
	b := New(s, Config{})
	b.RankBoxes([]string{"a", "b"})
	b.RankBoxes([]string{"a", "b"})
	if got := b.Placements("a"); got != 2 {
		t.Fatalf("Placements(a) = %d, want 2", got)
	}
	if got := b.Placements("b"); got != 0 {
		t.Fatalf("Placements(b) = %d, want 0", got)
	}
}

func TestPlaceCallPicksLeastLoadedReachable(t *testing.T) {
	s := balSys(t, "a", "b", "c")
	defer s.Shutdown()
	b := New(s, Config{})
	b.boards["b"].eff = 2.0
	callee, ok := b.PlaceCall("a")
	if !ok || callee != "c" {
		t.Fatalf("PlaceCall(a) = %q, %v; want c", callee, ok)
	}
	// No candidates: a lone box has no one to call.
	lone := core.NewSystem()
	defer lone.Shutdown()
	lone.AddBox(box.Config{Name: "solo"})
	lb := New(lone, Config{})
	if _, ok := lb.PlaceCall("solo"); ok {
		t.Fatal("PlaceCall found a callee for a lone box")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Interval != 40*time.Millisecond || cfg.Hysteresis != 0.10 ||
		cfg.MigrateHighWater != 0.85 || cfg.Cooldown != 2*time.Second {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

// A balancer on a pairwise-linked system — no fabric, so no port
// probes exist — must sample as idle rather than dereference a nil
// probe (the pandora-sim -balance-without--fabric path).
func TestTickWithoutFabric(t *testing.T) {
	s := core.NewSystem()
	s.AddBox(box.Config{Name: "a"})
	s.AddBox(box.Config{Name: "b"})
	defer s.Shutdown()
	b := New(s, Config{Budget: 1})
	b.Start()
	s.RunFor(200 * time.Millisecond)
	for _, sc := range b.Scores() {
		if sc.Eff != 0 || sc.Queue != 0 {
			t.Fatalf("idle fabric-less box %s scored %+v, want zeros", sc.Name, sc)
		}
	}
	if !b.AdmitCall() || b.AdmitCall() {
		t.Fatal("admission budget ignored without a fabric")
	}
}
