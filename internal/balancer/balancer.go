// Package balancer is the placement control plane above core: one
// process that keeps a scoreboard of per-box/per-port health sampled
// from the obs registry (fabric queue depths, shed and fault
// counters, degradation state, the box's net-copy watermark and the
// wire's per-VCI ingress copies), ranks boxes with a weighted load
// score under hysteresis, and acts on the ranking three ways:
//
//   - placement: it installs itself as core's Placer, so tree
//     attachment, late-join pulls and RepairTree adopter scans pick
//     the least-loaded eligible box instead of the first fit, and
//     `call A ?` timeline events pick the least-loaded callee;
//   - admission: new calls are admitted against a concurrency budget
//     and rejected outright when it is exhausted — rejecting a call
//     that cannot be served well comes before degrading ones that are
//     being served (principle 1's ordering: reject > shed-video >
//     shed-audio);
//   - migration: when a relay box's fabric egress queue stays above
//     the migrate high-water mark, its forwarded subtrees are
//     re-homed onto less-loaded boxes mid-stream via core.RepairTree
//     — a repair minus the fault, applied between segments
//     (principle 6) over the fabric's existing VCI route updates.
//
// Determinism: the balancer samples only on its own virtual-time
// ticks, never reads the wall clock, and iterates boxes in sorted
// name order; ranking is a stable sort on the banded score, so score
// ties preserve placement order and a fully idle system places
// exactly like first-fit. Replays with the same seed are therefore
// byte-identical.
//
// Ownership: the balancer never touches segment wires. It reads
// gauges, installs placement rankings, and drives route changes only
// through core's control API (RepairTree); every wire it causes to
// move is moved — and refcounted — by core, fabric and box under
// their own ownership rules.
package balancer

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/occam"
)

// Config parameterises a Balancer. Zero values select defaults.
type Config struct {
	// Interval is the scoreboard sampling / migration-decision period
	// (default 40 ms).
	Interval time.Duration
	// Budget bounds concurrently admitted calls; further calls are
	// rejected until one closes. 0 means no admission control.
	Budget int
	// Hysteresis is the score band: a box's effective score follows
	// its raw score only when the raw score moves further than this
	// from the last adopted value (default 0.10), so rankings do not
	// flap with queue jitter.
	Hysteresis float64
	// MigrateHighWater is the fabric egress-queue occupancy ratio at
	// or above which a relay box's subtrees are migrated away
	// (default 0.85).
	MigrateHighWater float64
	// Cooldown is the minimum spacing between migrations (default
	// 2 s) — one route reshape at a time, settle, then look again.
	Cooldown time.Duration
	// MaxMigrations bounds migrations per run (0 = unlimited).
	MaxMigrations int

	// Score weights; zero selects the default. The formula is
	//
	//	score = WQueue·queue + WIngress·ingress
	//	      + WSheds·min(1, sheds/4) + WFaults·min(1, faults)
	//	      + WCopies·min(1, copies/16) + WPlace·min(1, placements/16)
	//
	// with queue/ingress the port occupancy ratios. Defaults: 1.0,
	// 0.5, 0.5, 0.25, 0.25, 0.125 — queue pressure dominates, the
	// rest break ties toward quiet, rarely-chosen boxes.
	WQueue, WIngress, WSheds, WFaults, WCopies, WPlace float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 40 * time.Millisecond
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.10
	}
	if c.MigrateHighWater <= 0 {
		c.MigrateHighWater = 0.85
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.WQueue == 0 {
		c.WQueue = 1.0
	}
	if c.WIngress == 0 {
		c.WIngress = 0.5
	}
	if c.WSheds == 0 {
		c.WSheds = 0.5
	}
	if c.WFaults == 0 {
		c.WFaults = 0.25
	}
	if c.WCopies == 0 {
		c.WCopies = 0.25
	}
	if c.WPlace == 0 {
		c.WPlace = 0.125
	}
	return c
}

// Sample is one box's scoreboard reading at one tick.
type Sample struct {
	// Queue and Ingress are the box's fabric-port egress and ingress
	// queue occupancy ratios (0 for boxes not on a fabric).
	Queue, Ingress float64
	// Sheds counts degradation activity: active shed streams at the
	// box and its port, plus 1 if the port shed cells since the last
	// tick.
	Sheds float64
	// Faults is 1 if the port dropped cells to injected faults since
	// the last tick.
	Faults float64
	// Copies is the forwarded-copy watermark: the larger of the box's
	// MaxNetCopies and the port's biggest per-VCI ingress copy count.
	Copies float64
	// Placements counts how often the balancer has placed load here.
	Placements float64
}

// Score folds a sample into the weighted raw load score.
func (c Config) Score(s Sample) float64 {
	return c.WQueue*s.Queue + c.WIngress*s.Ingress +
		c.WSheds*clamp01(s.Sheds/4) + c.WFaults*clamp01(s.Faults) +
		c.WCopies*clamp01(s.Copies/16) + c.WPlace*clamp01(s.Placements/16)
}

// applyHysteresis returns the next effective score: raw is adopted
// only when it moved out of the band around the previous value.
func (c Config) applyHysteresis(eff, raw float64) float64 {
	if raw > eff+c.Hysteresis || raw < eff-c.Hysteresis {
		return raw
	}
	return eff
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Migration is one logged mid-stream migration decision.
type Migration struct {
	At     occam.Time
	Box    string  // the hot box load was moved away from
	Stream uint32  // source-local stream id of the reshaped tree
	Moved  int     // subtrees re-homed
	Queue  float64 // the egress occupancy ratio that triggered it
}

func (m Migration) String() string {
	return fmt.Sprintf("[%10.3fms] migrate %d subtree(s) of stream %d off %s (queue=%.2f)",
		m.At.Millis(), m.Moved, m.Stream, m.Box, m.Queue)
}

// board is one box's scoreboard slot.
type board struct {
	name string
	bx   *box.Box
	pt   *fabric.Port

	qd, ql, id, il        *obs.Probe // port egress/ingress depth+limit gauges
	shed, fault           *obs.Probe // port shed/fault drop counters
	boxActive, portActive *obs.Probe // degrade_active_sheds at box and port

	prevShed, prevFault float64
	lastQueue           float64 // most recent raw egress ratio (migration trigger)
	raw, eff            float64
	placements          uint64
}

// Balancer is the control plane. It is driven entirely by the
// virtual-time runtime (its own tick process plus core's placement
// callbacks), so no locking is needed.
type Balancer struct {
	sys *core.System
	cfg Config
	reg *obs.Registry

	names  []string
	boards map[string]*board

	admitted int
	accepted uint64
	rejected uint64
	placed   uint64
	managed  []*core.Stream
	migs     []Migration
	migFrom  map[string]int
	lastMig  occam.Time
	everMig  bool
}

// New builds a Balancer over sys's current boxes, installs it as the
// system's Placer, and registers its own obs instruments
// (balancer_score per box, balancer_rejected_total,
// balancer_migrations_total, balancer_placements_total). Call Start
// to begin sampling; placement ranking works immediately (all scores
// zero until the first tick, so early placements equal first-fit).
func New(sys *core.System, cfg Config) *Balancer {
	b := &Balancer{
		sys:     sys,
		cfg:     cfg.withDefaults(),
		reg:     sys.Obs,
		names:   sys.BoxNames(),
		boards:  make(map[string]*board),
		migFrom: make(map[string]int),
	}
	for _, name := range b.names {
		bd := &board{name: name, bx: sys.Box(name)}
		bd.boxActive = b.reg.Probe("degrade_active_sheds", obs.L("box", name))
		if pt := sys.FabricPort(name); pt != nil {
			bd.pt = pt
			lb := obs.L("port", pt.Name())
			bd.qd = b.reg.Probe("fabric_port_queue_depth", lb)
			bd.ql = b.reg.Probe("fabric_port_queue_limit", lb)
			bd.id = b.reg.Probe("fabric_port_ingress_depth", lb)
			bd.il = b.reg.Probe("fabric_port_ingress_limit", lb)
			bd.shed = b.reg.Probe("fabric_port_shed_drops_total", lb)
			bd.fault = b.reg.Probe("fabric_port_fault_drops_total", lb)
			bd.portActive = b.reg.Probe("degrade_active_sheds", obs.L("box", pt.Name()))
		}
		b.boards[name] = bd
		func(bd *board) {
			b.reg.GaugeFunc("balancer_score", func() float64 { return bd.eff }, obs.L("box", bd.name))
		}(bd)
	}
	b.reg.CounterFunc("balancer_rejected_total", func() uint64 { return b.rejected })
	b.reg.CounterFunc("balancer_admitted_total", func() uint64 { return b.accepted })
	b.reg.CounterFunc("balancer_placements_total", func() uint64 { return b.placed })
	b.reg.CounterFunc("balancer_migrations_total", func() uint64 { return uint64(len(b.migs)) })
	sys.SetPlacer(b)
	return b
}

// Start launches the sampling/migration tick process.
func (b *Balancer) Start() {
	b.sys.RT.Go("balancer", nil, occam.High, b.run)
}

func (b *Balancer) run(p *occam.Proc) {
	for {
		p.Sleep(b.cfg.Interval)
		b.tick()
		b.maybeMigrate(p)
	}
}

// tick samples every board in sorted name order and updates the
// banded effective scores.
func (b *Balancer) tick() {
	for _, name := range b.names {
		bd := b.boards[name]
		s := bd.sampleNow()
		bd.lastQueue = s.Queue
		bd.raw = b.cfg.Score(s)
		bd.eff = b.cfg.applyHysteresis(bd.eff, bd.raw)
	}
}

// sampleNow reads one box's probes and counter deltas.
func (bd *board) sampleNow() Sample {
	var s Sample
	s.Queue = ratio(bd.qd, bd.ql)
	s.Ingress = ratio(bd.id, bd.il)
	s.Sheds = val(bd.boxActive) + val(bd.portActive)
	if shed := val(bd.shed); shed > bd.prevShed {
		s.Sheds++
		bd.prevShed = shed
	}
	if fault := val(bd.fault); fault > bd.prevFault {
		s.Faults = 1
		bd.prevFault = fault
	}
	copies := 0
	if bd.bx != nil {
		copies = bd.bx.MaxNetCopies()
	}
	if bd.pt != nil {
		for _, c := range bd.pt.IngressCopies() {
			if int(c) > copies {
				copies = int(c)
			}
		}
	}
	s.Copies = float64(copies)
	s.Placements = float64(bd.placements)
	return s
}

// ratio and val tolerate nil probes: boxes meshed over pairwise links
// have no fabric port, so the port instruments simply read as idle.
func ratio(q, lim *obs.Probe) float64 {
	if q == nil || lim == nil {
		return 0
	}
	qv, ok := q.Value()
	if !ok {
		return 0
	}
	lv, ok := lim.Value()
	if !ok || lv <= 0 {
		return 0
	}
	return qv / lv
}

func val(p *obs.Probe) float64 {
	if p == nil {
		return 0
	}
	v, _ := p.Value()
	return v
}

// RankBoxes implements core.Placer: a stable sort of the candidates
// by effective score, least loaded first, so score ties keep
// placement order (first-fit). The winner's placement count rises —
// the WPlace term that spreads otherwise-identical boxes.
func (b *Balancer) RankBoxes(cands []string) []string {
	ranked := append([]string(nil), cands...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return b.effOf(ranked[i]) < b.effOf(ranked[j])
	})
	if bd := b.boards[ranked[0]]; bd != nil {
		bd.placements++
		b.placed++
	}
	return ranked
}

func (b *Balancer) effOf(name string) float64 {
	if bd := b.boards[name]; bd != nil {
		return bd.eff
	}
	return 0
}

// PlaceCall picks the least-loaded box (other than from) reachable in
// both directions — the callee for a `call FROM ?` timeline event.
func (b *Balancer) PlaceCall(from string) (string, bool) {
	var cands []string
	for _, n := range b.names {
		if n == from {
			continue
		}
		if b.sys.Connectable(from, n) && b.sys.Connectable(n, from) {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	return b.RankBoxes(cands)[0], true
}

// AdmitCall decides one new call (or conference, or stream-opening
// timeline op) against the budget: reject before degrade. Admitted
// calls hold a budget slot until ReleaseCall.
func (b *Balancer) AdmitCall() bool {
	if b.cfg.Budget > 0 && b.admitted >= b.cfg.Budget {
		b.rejected++
		return false
	}
	b.admitted++
	b.accepted++
	return true
}

// ReleaseCall returns one admitted call's budget slot.
func (b *Balancer) ReleaseCall() {
	if b.admitted > 0 {
		b.admitted--
	}
}

// Manage registers an open tree stream as a migration candidate.
func (b *Balancer) Manage(st *core.Stream) {
	if st != nil && st.Tree != nil {
		b.managed = append(b.managed, st)
	}
}

// maybeMigrate performs at most one migration per tick: the first box
// in sorted order whose egress occupancy sits at or above the
// high-water mark, and that relays a managed stream, has that
// stream's subtrees re-homed via core.RepairTree. The cooldown (and
// MaxMigrations cap) keeps reshapes apart so the fabric settles
// between them — no ping-pong.
func (b *Balancer) maybeMigrate(p *occam.Proc) {
	if b.cfg.MaxMigrations > 0 && len(b.migs) >= b.cfg.MaxMigrations {
		return
	}
	now := p.Now()
	if b.everMig && now.Sub(b.lastMig) < b.cfg.Cooldown {
		return
	}
	for _, name := range b.names {
		bd := b.boards[name]
		if bd.lastQueue < b.cfg.MigrateHighWater {
			continue
		}
		for _, st := range b.managed {
			if st.Tree.Relays(name) == 0 {
				continue
			}
			moved := b.sys.RepairTree(p, st, name)
			if moved == 0 {
				continue
			}
			b.migs = append(b.migs, Migration{
				At: now, Box: name, Stream: st.Local, Moved: moved, Queue: bd.lastQueue,
			})
			b.migFrom[name]++
			b.lastMig, b.everMig = now, true
			b.reg.Tracer().Emit(obs.EvRepair, "balancer", st.Local,
				fmt.Sprintf("migrated %d subtree(s) off hot %s (queue=%.2f)", moved, name, bd.lastQueue))
			return
		}
	}
}

// Rejected returns how many calls admission refused.
func (b *Balancer) Rejected() uint64 { return b.rejected }

// Admitted returns how many calls admission accepted (cumulative).
func (b *Balancer) Admitted() uint64 { return b.accepted }

// Migrations returns the migration log.
func (b *Balancer) Migrations() []Migration { return append([]Migration(nil), b.migs...) }

// MigrationsFrom returns how many migrations moved load off box.
func (b *Balancer) MigrationsFrom(box string) int { return b.migFrom[box] }

// Placements returns how often the balancer placed load on box.
func (b *Balancer) Placements(box string) uint64 {
	if bd := b.boards[box]; bd != nil {
		return bd.placements
	}
	return 0
}

// BoxScore is one scoreboard row for reports.
type BoxScore struct {
	Name       string
	Eff, Raw   float64
	Queue      float64
	Placements uint64
}

// Scores returns the scoreboard in sorted name order.
func (b *Balancer) Scores() []BoxScore {
	out := make([]BoxScore, 0, len(b.names))
	for _, name := range b.names {
		bd := b.boards[name]
		out = append(out, BoxScore{
			Name: name, Eff: bd.eff, Raw: bd.raw,
			Queue: bd.lastQueue, Placements: bd.placements,
		})
	}
	return out
}
