// Package scenario is the declarative workload layer: one Scenario
// value — built in Go or parsed from the small line-based text format
// (see Parse) — describes a whole run: the boxes and their board
// features, the link and fabric topology, background feed and
// cross-traffic generators, the call graph over virtual time, a fault
// phase in the faultinject.ParseSpec grammar verbatim, an overload
// degradation phase, and the assertions that make the run a test
// (byte-identical delivery sets, shed-order policy, obs gauge and
// wire-pool leak bounds). The Runner executes a spec on core.System;
// the experiment suite, pandora-sim -scenario and pandora-node all
// drive it from the same spec type, so a workload is written once as
// data instead of once per binary as wiring.
//
// Ownership: scenario never touches segment wires. Its generator
// processes (feeds, cross traffic) encode from their own pools and
// hand references to the network exactly as a box does; everything
// else is plumbing calls into core and read-only sampling of obs
// counters and mixer digests after the run, so the wire refcount
// rules of internal/segment are unaffected by running a workload
// through this package instead of by hand.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
)

// Mic describes a box's microphone source: "tone" with A=frequency,
// B=amplitude, or "speech" with A=seed, B=amplitude.
type Mic struct {
	Kind string
	A, B uint64
}

// Box declares one Pandora box.
type Box struct {
	Name             string
	Mic              *Mic
	CameraW, CameraH int
	Blocks           int   // blocks per audio segment (0 = default 2)
	NetIfBits        int64 // network interface rate limit, bits/s
	Interleave       bool  // interleave audio between video cell bursts
	SharedNet        bool  // ablation: one shared net buffer
	Jitter           bool  // jitter-correction feature
	Muting           bool  // echo-muting feature
	Interface        bool  // host-interface feature
	// Crashes are board crash-and-restart windows for this box,
	// keyed by board name ("server", "audio", "display").
	Crashes map[string][]faultinject.Window
	// SinkStalls are stuck-output windows applied to the box's
	// net-audio and net-video decoupling buffers.
	SinkStalls []faultinject.Window
}

// Hop is one link of a (possibly multi-hop) path.
type Hop struct {
	Bandwidth   int64
	Propagation time.Duration
	QueueLimit  int
	Loss        float64
	Seed        uint64
}

// Link joins two boxes with a symmetric chain of hops.
type Link struct {
	From, To string
	Hops     []Hop
}

// Fabric declares a switching fabric and the nodes attached to it.
type Fabric struct {
	Name            string
	PortBandwidth   int64
	Propagation     time.Duration
	IngressLimit    int
	EgressCellLimit int
	BatchCells      int
	Speedup         int
	Attach          []string
}

// Feed is a raw generator host pushing N tone streams of 2-block
// segments every 4 ms into a box on VCIs Base..Base+N-1 (the
// mixing-load generator of E1/E10).
type Feed struct {
	Box  string
	N    int
	Base uint32
}

// Cross is a cross-traffic generator hammering one hop of a path with
// random-size messages (the SuperJanet middle hop of E16).
type Cross struct {
	From, To   string // the path whose hop carries the cross traffic
	Hop        int
	VCI        uint32
	Seed       uint64
	Gap        time.Duration // max random inter-message gap
	SizeMin    int
	SizeJitter int // message size = SizeMin + rand(SizeJitter)
}

// Event is one timeline entry. At orders the timeline and sets the
// gap slept before the command is issued: the control process sleeps
// At minus the previous event's At after the previous command
// completes (commands themselves consume virtual time for their
// circuit-setup round trips), exactly like a hand-written control
// process with p.Sleep between commands.
// Ops: "audio" (one-way stream From→To...), "video" (with Rect/Rate),
// "tree" (audio distributed over replication trees: interior boxes
// re-split locally, at most K copies each, striped over Trees trees),
// "call" (audio both ways between From and To[0]), "conference" (full
// mesh over From+To), "split"/"drop" (add/remove destination To[0] of
// stream Ref), "pull" (late joiners To... graft onto tree stream Ref),
// "repair" (re-home the orphaned subtrees of interior box To[0] of
// tree stream Ref), "close" (tear down stream Ref), "netsend" (raw
// route: Stream at From onto VCI toward To[0], mic started, no speaker
// route at the far end).
type Event struct {
	At         time.Duration
	Op         string
	From       string
	To         []string
	X, Y, W, H int // video rect
	RateNum    int // video frame rate numerator
	RateDen    int
	Segs       int    // video segments per frame (0 = default)
	Stream     uint32 // netsend: source stream number
	VCI        uint32 // netsend: circuit id
	K          int    // tree: per-box fanout bound (0 = flat)
	Trees      int    // tree: number of interior-disjoint trees (0 = 1)
	Ref        string // name for later split/drop/close/assert reference
}

// Degrade enables the per-box (and per-fabric-port) overload
// controllers.
type Degrade struct {
	ShedEvery time.Duration
	Hold      time.Duration
}

// Balance enables the balancer control plane (internal/balancer):
// load-scored placement for tree attach/pull/repair and `call A ?`
// events, call admission against Budget, and mid-stream migration off
// hot fabric ports. Zero fields select the balancer's defaults.
type Balance struct {
	Budget        int           // concurrent admitted calls (0 = unlimited)
	Interval      time.Duration // scoreboard sampling tick
	Migrate       float64       // egress occupancy ratio that triggers migration
	Cooldown      time.Duration // minimum spacing between migrations
	MaxMigrations int           // migration cap per run (0 = unlimited)
}

// Assert is one post-run check. Kinds and their Arg/Value use:
//
//	no-audio-shed                no controller ever shed audio
//	video-shed [min]             ≥min video sheds happened (default 1)
//	shed-order-oldest-first CTRL controller CTRL shed strictly oldest-first
//	survivors-identical          re-run with faults stripped; every stream
//	                             not touching a crashed box delivered a
//	                             byte-identical set (mixer digests match)
//	wires-drain                  every box wire pool has free == allocations
//	gauge-zero NAME              every sample of obs gauge NAME is 0
//	gauge-max NAME MAX           every sample of obs gauge NAME ≤ MAX
//	min-segments REF MIN         every destination of REF played ≥MIN segments
//	max-lost REF MAX             every destination of REF lost ≤MAX segments
//	max-silence-pct REF MAX      silence fill ≤MAX% of blocks at every dest
//	faults-fired                 at least one injected fault actually fired
//	circuits SRC [N]             record SRC's open circuit count (and, with
//	                             N, require it to be exactly N)
//	copies-max BOX N             BOX never fanned more than N outgoing
//	                             copies of any single stream (the per-hop
//	                             copy invariant of the distribution trees)
//	rejected N                   the balancer's admission control rejected
//	                             exactly N calls (requires a balance block)
//	migrations BOX N             exactly N balancer migrations moved load
//	                             off BOX (requires a balance block)
//	spread REF N                 tree stream REF ends the run fed by ≥N
//	                             distinct boxes (source included) — the
//	                             placement spread witness
type Assert struct {
	Kind     string
	Arg      string
	Value    float64
	HasValue bool
}

// Scenario is one complete declarative workload.
type Scenario struct {
	Name     string
	Seed     uint64
	Duration time.Duration
	Boxes    []Box
	Links    []Link
	Fabrics  []Fabric
	Feeds    []Feed
	Cross    []Cross
	Events   []Event
	// Faults is a fault phase in the faultinject.ParseSpec grammar,
	// verbatim; Seed is its master seed. Link faults go to every link
	// and fabric port (subject to target=), sink stalls and board
	// crashes to the first box, exactly as pandora-sim -faults does.
	Faults  string
	Degrade *Degrade
	Balance *Balance
	Asserts []Assert
}

var assertKinds = map[string]struct{}{
	"no-audio-shed": {}, "video-shed": {}, "shed-order-oldest-first": {},
	"survivors-identical": {}, "wires-drain": {}, "gauge-zero": {},
	"gauge-max": {}, "min-segments": {}, "max-lost": {},
	"max-silence-pct": {}, "faults-fired": {}, "circuits": {},
	"copies-max": {}, "rejected": {}, "migrations": {}, "spread": {},
}

// Validate checks internal consistency: names resolve, events refer to
// streams opened earlier, the fault phase parses, times fit the
// duration.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("scenario %s: duration must be positive", sc.Name)
	}
	boxes := map[string]bool{}
	for _, b := range sc.Boxes {
		if b.Name == "" {
			return fmt.Errorf("scenario %s: box with empty name", sc.Name)
		}
		if boxes[b.Name] {
			return fmt.Errorf("scenario %s: duplicate box %q", sc.Name, b.Name)
		}
		if b.Mic != nil && b.Mic.Kind != "tone" && b.Mic.Kind != "speech" {
			return fmt.Errorf("scenario %s: box %s: unknown mic kind %q", sc.Name, b.Name, b.Mic.Kind)
		}
		boxes[b.Name] = true
	}
	need := func(where, name string) error {
		if !boxes[name] {
			return fmt.Errorf("scenario %s: %s refers to unknown box %q", sc.Name, where, name)
		}
		return nil
	}
	for _, l := range sc.Links {
		if err := need("link", l.From); err != nil {
			return err
		}
		if err := need("link", l.To); err != nil {
			return err
		}
		if len(l.Hops) == 0 {
			return fmt.Errorf("scenario %s: link %s %s has no hops", sc.Name, l.From, l.To)
		}
	}
	fabs := map[string]bool{}
	for _, f := range sc.Fabrics {
		if fabs[f.Name] {
			return fmt.Errorf("scenario %s: duplicate fabric %q", sc.Name, f.Name)
		}
		fabs[f.Name] = true
		for _, n := range f.Attach {
			if err := need("fabric "+f.Name, n); err != nil {
				return err
			}
		}
	}
	for _, f := range sc.Feeds {
		if err := need("feed", f.Box); err != nil {
			return err
		}
		if f.N <= 0 {
			return fmt.Errorf("scenario %s: feed into %s needs n ≥ 1", sc.Name, f.Box)
		}
	}
	for _, c := range sc.Cross {
		if err := need("cross", c.From); err != nil {
			return err
		}
		if err := need("cross", c.To); err != nil {
			return err
		}
	}
	refs := map[string]bool{}
	for i, ev := range sc.Events {
		where := fmt.Sprintf("event %d (%s at %s)", i+1, ev.Op, ev.At)
		if ev.At < 0 || ev.At > sc.Duration {
			return fmt.Errorf("scenario %s: %s outside the run", sc.Name, where)
		}
		switch ev.Op {
		case "audio", "video", "netsend", "tree":
			if err := need(where, ev.From); err != nil {
				return err
			}
			if len(ev.To) == 0 {
				return fmt.Errorf("scenario %s: %s has no destination", sc.Name, where)
			}
			for _, d := range ev.To {
				if err := need(where, d); err != nil {
					return err
				}
			}
			if ev.Op == "video" && (ev.W <= 0 || ev.H <= 0 || ev.RateNum <= 0 || ev.RateDen <= 0) {
				return fmt.Errorf("scenario %s: %s needs rect=X,Y,W,H and rate=N/D", sc.Name, where)
			}
			if ev.Op == "netsend" && (ev.Stream == 0 || ev.VCI == 0) {
				return fmt.Errorf("scenario %s: %s needs stream= and vci=", sc.Name, where)
			}
			if ev.Op == "tree" && (ev.K < 0 || ev.Trees < 0) {
				return fmt.Errorf("scenario %s: %s wants k ≥ 0 and trees ≥ 0", sc.Name, where)
			}
		case "call":
			if len(ev.To) != 1 {
				return fmt.Errorf("scenario %s: %s wants exactly one peer", sc.Name, where)
			}
			if err := need(where, ev.From); err != nil {
				return err
			}
			if ev.To[0] == "?" {
				// Balancer-placed callee: the control plane picks the
				// least-loaded reachable box at event time.
				if sc.Balance == nil {
					return fmt.Errorf("scenario %s: %s: placed call (peer ?) needs a balance block", sc.Name, where)
				}
			} else if err := need(where, ev.To[0]); err != nil {
				return err
			}
		case "conference":
			members := append([]string{ev.From}, ev.To...)
			if len(members) < 2 {
				return fmt.Errorf("scenario %s: %s wants at least two members", sc.Name, where)
			}
			for _, m := range members {
				if err := need(where, m); err != nil {
					return err
				}
			}
		case "split", "drop", "repair":
			if !refs[ev.Ref] {
				return fmt.Errorf("scenario %s: %s refers to unopened stream %q", sc.Name, where, ev.Ref)
			}
			if len(ev.To) != 1 {
				return fmt.Errorf("scenario %s: %s wants exactly one destination", sc.Name, where)
			}
			if err := need(where, ev.To[0]); err != nil {
				return err
			}
		case "pull":
			if !refs[ev.Ref] {
				return fmt.Errorf("scenario %s: %s refers to unopened stream %q", sc.Name, where, ev.Ref)
			}
			if len(ev.To) == 0 {
				return fmt.Errorf("scenario %s: %s has no destination", sc.Name, where)
			}
			for _, d := range ev.To {
				if err := need(where, d); err != nil {
					return err
				}
			}
		case "close":
			if !refs[ev.Ref] {
				return fmt.Errorf("scenario %s: %s refers to unopened stream %q", sc.Name, where, ev.Ref)
			}
		default:
			return fmt.Errorf("scenario %s: %s: unknown op", sc.Name, where)
		}
		if ev.Ref != "" && (ev.Op == "audio" || ev.Op == "video" || ev.Op == "tree" || ev.Op == "call" || ev.Op == "conference") {
			if refs[ev.Ref] {
				return fmt.Errorf("scenario %s: duplicate stream ref %q", sc.Name, ev.Ref)
			}
			refs[ev.Ref] = true
			// call and conference name their member streams REF[i], the
			// names later split/drop/close events use.
			if ev.Op == "call" || ev.Op == "conference" {
				for i := 0; i <= len(ev.To); i++ {
					refs[fmt.Sprintf("%s[%d]", ev.Ref, i)] = true
				}
			}
		}
	}
	if _, err := faultinject.ParseSpec(sc.Faults, sc.Seed); err != nil {
		return fmt.Errorf("scenario %s: faults: %w", sc.Name, err)
	}
	for _, a := range sc.Asserts {
		if _, ok := assertKinds[a.Kind]; !ok {
			return fmt.Errorf("scenario %s: unknown assert kind %q", sc.Name, a.Kind)
		}
		if (a.Kind == "rejected" || a.Kind == "migrations") && sc.Balance == nil {
			return fmt.Errorf("scenario %s: assert %s needs a balance block", sc.Name, a.Kind)
		}
	}
	return nil
}

// Format renders the scenario in the text grammar such that
// Parse(Format(sc)) reproduces sc.
func (sc *Scenario) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s\n", sc.Name)
	if sc.Seed != 0 {
		fmt.Fprintf(&sb, "seed %d\n", sc.Seed)
	}
	fmt.Fprintf(&sb, "duration %s\n", sc.Duration)
	for _, b := range sc.Boxes {
		sb.WriteString("box " + b.Name)
		if b.Mic != nil {
			fmt.Fprintf(&sb, " mic=%s:%d:%d", b.Mic.Kind, b.Mic.A, b.Mic.B)
		}
		if b.CameraW > 0 || b.CameraH > 0 {
			fmt.Fprintf(&sb, " camera=%dx%d", b.CameraW, b.CameraH)
		}
		if b.Blocks > 0 {
			fmt.Fprintf(&sb, " blocks=%d", b.Blocks)
		}
		if b.NetIfBits > 0 {
			fmt.Fprintf(&sb, " netif=%s", fmtBits(b.NetIfBits))
		}
		if b.Interleave {
			sb.WriteString(" interleave")
		}
		if b.SharedNet {
			sb.WriteString(" sharednet")
		}
		if b.Jitter {
			sb.WriteString(" jitter")
		}
		if b.Muting {
			sb.WriteString(" muting")
		}
		if b.Interface {
			sb.WriteString(" interface")
		}
		boards := make([]string, 0, len(b.Crashes))
		for board := range b.Crashes {
			boards = append(boards, board)
		}
		sort.Strings(boards)
		for _, board := range boards {
			for _, w := range b.Crashes[board] {
				fmt.Fprintf(&sb, " crash=%s:%s-%s", board, w.From, w.To)
			}
		}
		for _, w := range b.SinkStalls {
			fmt.Fprintf(&sb, " sinkstall=%s-%s", w.From, w.To)
		}
		sb.WriteString("\n")
	}
	for _, l := range sc.Links {
		fmt.Fprintf(&sb, "link %s %s ", l.From, l.To)
		for i, h := range l.Hops {
			if i > 0 {
				sb.WriteString(" / ")
			}
			sb.WriteString("bw=" + fmtBits(h.Bandwidth))
			if h.Propagation > 0 {
				fmt.Fprintf(&sb, " prop=%s", h.Propagation)
			}
			if h.QueueLimit > 0 {
				fmt.Fprintf(&sb, " queue=%d", h.QueueLimit)
			}
			if h.Loss > 0 {
				fmt.Fprintf(&sb, " loss=%s", fmtFloat(h.Loss))
			}
			if h.Seed != 0 {
				fmt.Fprintf(&sb, " lseed=%d", h.Seed)
			}
		}
		sb.WriteString("\n")
	}
	for _, f := range sc.Fabrics {
		sb.WriteString("fabric " + f.Name)
		if f.PortBandwidth > 0 {
			fmt.Fprintf(&sb, " portbw=%s", fmtBits(f.PortBandwidth))
		}
		if f.Propagation > 0 {
			fmt.Fprintf(&sb, " prop=%s", f.Propagation)
		}
		if f.IngressLimit > 0 {
			fmt.Fprintf(&sb, " ingress=%d", f.IngressLimit)
		}
		if f.EgressCellLimit > 0 {
			fmt.Fprintf(&sb, " egress=%d", f.EgressCellLimit)
		}
		if f.BatchCells > 0 {
			fmt.Fprintf(&sb, " batch=%d", f.BatchCells)
		}
		if f.Speedup > 0 {
			fmt.Fprintf(&sb, " speedup=%d", f.Speedup)
		}
		sb.WriteString("\n")
		if len(f.Attach) > 0 {
			fmt.Fprintf(&sb, "attach %s %s\n", f.Name, strings.Join(f.Attach, " "))
		}
	}
	for _, f := range sc.Feeds {
		fmt.Fprintf(&sb, "feed %s n=%d base=%d\n", f.Box, f.N, f.Base)
	}
	for _, c := range sc.Cross {
		fmt.Fprintf(&sb, "cross %s %s hop=%d vci=%d seed=%d gap=%s size=%d+%d\n",
			c.From, c.To, c.Hop, c.VCI, c.Seed, c.Gap, c.SizeMin, c.SizeJitter)
	}
	for _, ev := range sc.Events {
		fmt.Fprintf(&sb, "at %s %s", ev.At, ev.Op)
		switch ev.Op {
		case "audio", "video", "netsend", "tree":
			fmt.Fprintf(&sb, " %s -> %s", ev.From, strings.Join(ev.To, ","))
			if ev.Op == "video" {
				fmt.Fprintf(&sb, " rect=%d,%d,%d,%d rate=%d/%d", ev.X, ev.Y, ev.W, ev.H, ev.RateNum, ev.RateDen)
				if ev.Segs > 0 {
					fmt.Fprintf(&sb, " segs=%d", ev.Segs)
				}
			}
			if ev.Op == "netsend" {
				fmt.Fprintf(&sb, " stream=%d vci=%d", ev.Stream, ev.VCI)
			}
			if ev.Op == "tree" {
				if ev.K > 0 {
					fmt.Fprintf(&sb, " k=%d", ev.K)
				}
				if ev.Trees > 0 {
					fmt.Fprintf(&sb, " trees=%d", ev.Trees)
				}
			}
		case "call":
			fmt.Fprintf(&sb, " %s %s", ev.From, ev.To[0])
		case "conference":
			fmt.Fprintf(&sb, " %s %s", ev.From, strings.Join(ev.To, " "))
		case "split", "drop", "repair":
			fmt.Fprintf(&sb, " %s %s", ev.Ref, ev.To[0])
		case "pull":
			fmt.Fprintf(&sb, " %s %s", ev.Ref, strings.Join(ev.To, ","))
		case "close":
			fmt.Fprintf(&sb, " %s", ev.Ref)
		}
		if ev.Ref != "" && (ev.Op == "audio" || ev.Op == "video" || ev.Op == "tree" || ev.Op == "call" || ev.Op == "conference") {
			fmt.Fprintf(&sb, " as %s", ev.Ref)
		}
		sb.WriteString("\n")
	}
	if sc.Faults != "" {
		fmt.Fprintf(&sb, "faults %s\n", sc.Faults)
	}
	if sc.Degrade != nil {
		fmt.Fprintf(&sb, "degrade shed=%s hold=%s\n", sc.Degrade.ShedEvery, sc.Degrade.Hold)
	}
	if b := sc.Balance; b != nil {
		sb.WriteString("balance")
		if b.Budget > 0 {
			fmt.Fprintf(&sb, " budget=%d", b.Budget)
		}
		if b.Interval > 0 {
			fmt.Fprintf(&sb, " interval=%s", b.Interval)
		}
		if b.Migrate > 0 {
			fmt.Fprintf(&sb, " migrate=%s", fmtFloat(b.Migrate))
		}
		if b.Cooldown > 0 {
			fmt.Fprintf(&sb, " cooldown=%s", b.Cooldown)
		}
		if b.MaxMigrations > 0 {
			fmt.Fprintf(&sb, " maxmig=%d", b.MaxMigrations)
		}
		sb.WriteString("\n")
	}
	for _, a := range sc.Asserts {
		sb.WriteString("assert " + a.Kind)
		if a.Arg != "" {
			sb.WriteString(" " + a.Arg)
		}
		if a.HasValue {
			sb.WriteString(" " + fmtFloat(a.Value))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// fmtBits renders a bit rate with the largest exact suffix, so parsed
// and printed forms agree ("100M", "64k", "2500k").
func fmtBits(v int64) string {
	switch {
	case v != 0 && v%1_000_000 == 0:
		return fmt.Sprintf("%dM", v/1_000_000)
	case v != 0 && v%1000 == 0:
		return fmt.Sprintf("%dk", v/1000)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func fmtFloat(v float64) string {
	return strings.TrimPrefix(fmt.Sprintf("%v", v), "+")
}
