package scenario

import (
	"strings"
	"testing"
)

// mustPass executes the spec and fails the test on error or any
// failed assertion line.
func mustPass(t *testing.T, text string) *Summary {
	t.Helper()
	sum, err := Execute(MustParse(text))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !sum.Pass {
		t.Fatalf("scenario failed:\n%s", sum)
	}
	return sum
}

// TestCloseMidRun closes a ref'd call in the middle of the run: the
// stream's wires must drain back to the pool and the remainder of the
// timeline must keep running.
func TestCloseMidRun(t *testing.T) {
	mustPass(t, `scenario close-mid
duration 3s
box a mic=tone:400:8000
box b
link a b bw=100M
at 100ms call a b as c
at 1s close c
assert wires-drain
`)
}

// TestCrossTrafficNoGap pins that a cross directive without a gap=
// clause is legal and the background traffic it generates still lets
// every wire drain.
func TestCrossTrafficNoGap(t *testing.T) {
	mustPass(t, `scenario cross-nogap
duration 1s
box a mic=tone:400:8000
box b
link a b bw=100M
cross a b hop=0 vci=99 seed=1 size=100+5
assert wires-drain
`)
}

// TestTreeScenarioExecutes drives the tree op end to end over a
// fabric: with k=2 the source sends exactly one copy, the first
// interior box at most two, and every viewer hears the stream.
func TestTreeScenarioExecutes(t *testing.T) {
	mustPass(t, `scenario tree-exec
duration 1s
box s mic=tone:400:8000
box v1
box v2
box v3
box v4
fabric fab portbw=155M
attach fab s v1 v2 v3 v4
at 0s tree s -> v1,v2,v3,v4 k=2 as t
assert copies-max s 1
assert copies-max v1 2
assert min-segments t 50
assert max-lost t 0
assert wires-drain
`)
}

// TestTreePullLateJoin grafts a late viewer onto a running tree via
// the pull op: the joiner pulls one copy from an existing member, so
// the source's per-hop copy count stays at one.
func TestTreePullLateJoin(t *testing.T) {
	mustPass(t, `scenario tree-pull
duration 1s
box s mic=tone:400:8000
box v1
box v2
fabric fab portbw=155M
attach fab s v1 v2
at 0s tree s -> v1 k=4 as t
at 200ms pull t v2
assert copies-max s 1
assert min-segments t 30
assert wires-drain
`)
}

// TestTreeRepairScenario crashes an interior box mid-stream and
// repairs the tree around it. With k=2 the placement is
// s -> v1 -> {v2, v3}, v2 -> v4; crashing v2 orphans v4, the repair
// re-homes it, and the boxes that never sat under v2 must deliver
// byte-identically with the fault-free twin.
func TestTreeRepairScenario(t *testing.T) {
	sum, err := Execute(MustParse(`scenario tree-repair
duration 2s
box s mic=tone:400:8000
box v1
box v2 crash=server:800ms-1600ms
box v3
box v4
fabric fab portbw=155M
attach fab s v1 v2 v3 v4
at 0s tree s -> v1,v2,v3,v4 k=2 as t
at 1s repair t v2
assert survivors-identical
assert faults-fired
assert copies-max s 1
`))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !sum.Pass {
		t.Fatalf("scenario failed:\n%s", sum)
	}
	// v1 and v3 never flow through v2; v2 is crashed and v4 once sat
	// under it, so exactly two deliveries are compared.
	var line string
	for _, l := range sum.Lines {
		if strings.Contains(l, "survivors-identical") {
			line = l
		}
	}
	if !strings.Contains(line, "2/2 surviving deliveries") {
		t.Fatalf("expected 2/2 surviving deliveries, got: %s", line)
	}
}
