package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// representative covers every directive and clause the grammar has:
// multi-hop links, fabrics, feeds, cross traffic, every event op,
// crash and stall windows, faults, degradation and assertions.
const representative = `
# exercising the whole grammar
scenario rep
seed 42
duration 10s
box a mic=tone:400:10000 camera=256x128 blocks=3 netif=3500k interleave jitter muting interface
box b mic=speech:7:12000 sharednet crash=audio:1s-1600ms crash=server:2s-2200ms sinkstall=3s-3300ms
box c
box d
link a b bw=100M prop=50us queue=8 loss=0.002 lseed=9 / bw=8M prop=3ms / bw=64k
link c d bw=2500k
fabric fab portbw=155M prop=2us ingress=64 egress=4096 batch=4 speedup=2
attach fab a b c d
feed a n=6 base=100
cross a b hop=1 vci=9000 seed=7 gap=12ms size=2000+4000
at 0s audio a -> b,c as main
at 100ms video a -> b rect=0,64,256,64 rate=2/5 segs=2 as vid
at 200ms call c d as cd
at 300ms conference a b c d as conf
at 1s split main d
at 2s drop main d
at 3s close vid
at 400ms tree a -> b,c,d k=2 trees=2 as t1
at 450ms pull t1 d
at 470ms repair t1 b
at 500ms netsend a -> b stream=7 vci=2000
faults burst=0.002/3,dup=0.002,jitter=300us/600us,target=fab.p00
degrade shed=150ms hold=800ms
assert no-audio-shed
assert video-shed 2
assert shed-order-oldest-first fab.p00
assert survivors-identical
assert wires-drain
assert gauge-zero degrade_pressure_audio
assert gauge-max degrade_pressure_video 3
assert min-segments main 200
assert max-lost main 0
assert max-silence-pct main 5
assert faults-fired
assert circuits a 3
assert copies-max a 2
`

// roundTrip checks Parse ∘ Format is the identity on the parsed form
// and that Format is a fixed point.
func roundTrip(t *testing.T, name, text string) {
	t.Helper()
	sc, err := Parse(text)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	printed := sc.Format()
	sc2, err := Parse(printed)
	if err != nil {
		t.Fatalf("%s: reparse of Format output: %v\n%s", name, err, printed)
	}
	if !reflect.DeepEqual(sc, sc2) {
		t.Fatalf("%s: parse(format(sc)) differs from sc\nformatted:\n%s", name, printed)
	}
	if printed2 := sc2.Format(); printed2 != printed {
		t.Fatalf("%s: Format not a fixed point:\n%s\nvs\n%s", name, printed, printed2)
	}
}

func TestRoundTripRepresentative(t *testing.T) {
	roundTrip(t, "representative", representative)
}

// suiteFiles returns the shipped scenario suite files.
func suiteFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("../../scenarios/*.scn")
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario suite files found: %v", err)
	}
	return files
}

func TestRoundTripSuites(t *testing.T) {
	for _, f := range suiteFiles(t) {
		text, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, filepath.Base(f), string(text))
	}
}

// TestSuitesMatchGolden executes every shipped suite and compares its
// assertion summary byte-for-byte against the checked-in golden file —
// the same diff the CI scenario-smoke job performs via pandora-sim.
func TestSuitesMatchGolden(t *testing.T) {
	for _, f := range suiteFiles(t) {
		base := strings.TrimSuffix(filepath.Base(f), ".scn")
		t.Run(base, func(t *testing.T) {
			if (base == "soak" || base == "flashcrowd") && testing.Short() {
				t.Skip("long suite")
			}
			sc, err := Load(f)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := Execute(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !sum.Pass {
				t.Errorf("suite failed:\n%s", sum)
			}
			golden, err := os.ReadFile("../../scenarios/golden/" + base + ".txt")
			if err != nil {
				t.Fatal(err)
			}
			if sum.String() != string(golden) {
				t.Errorf("summary differs from golden file:\n got:\n%s\nwant:\n%s", sum, golden)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"scenario x\nduration 1s\nbogus y", `line 3 ("bogus y")`},
		{"scenario x\nduration 1s\nbox a\nlink a b bw=1M", "unknown box"},
		{"scenario x\nduration 1s\nbox a\nbox b\nlink a b bw=nope", "bit rate"},
		{"scenario x\nduration 1s\nbox a\nat 0s close main", `unopened stream "main"`},
		{"scenario x\nduration 1s\nbox a\nbox b\nat 2s call a b", "outside the run"},
		{"scenario x\nduration 1s\nbox a\nfaults burst=oops", "faultinject: token"},
		{"scenario x\nduration 1s\nbox a\nbox b\nat 0s pull main b", `unopened stream "main"`},
		{"scenario x\nduration 1s\nbox a\nbox b\nat 0s repair main b", `unopened stream "main"`},
		{"scenario x\nduration 1s\nbox a\nbox b\nat 0s tree a -> b k=-1", "non-negative"},
		{"scenario x\nduration 1s\nbox a\nbox b\nat 0s tree a -> b trees=0", "positive"},
		{"scenario x\nduration 1s\nassert made-up-kind", "unknown assert kind"},
		{"duration 1s", "missing name"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.text, err, c.want)
		}
	}
}

// TestRunnerTimelineDeltas pins the timeline semantics the refactored
// experiments depend on: event times are offsets between command
// issues, so a command's own virtual-time cost pushes later events
// back rather than eating their gaps.
func TestRunnerTimelineDeltas(t *testing.T) {
	sc := MustParse(`
scenario deltas
duration 2s
box a mic=tone:400:8000
box b
link a b bw=100M
at 0s audio a -> b as first
at 100ms audio b -> a as second
`)
	r, err := NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start(nil)
	if err := r.RunFor(sc.Duration); err != nil {
		t.Fatal(err)
	}
	if r.Streams["first"] == nil || r.Streams["second"] == nil {
		t.Fatalf("streams not recorded: %v", r.Streams)
	}
	m := r.Sys.Box("b").Mixer().Stats(r.Streams["first"].VCIs["b"])
	if m.Segments == 0 {
		t.Fatal("no audio delivered")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("no-such-file.scn"); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestExecuteSummaryDeterministic(t *testing.T) {
	text := `
scenario det
duration 1s
box a mic=tone:400:8000
box b
link a b bw=100M
at 0s audio a -> b as main
assert min-segments main 100
assert wires-drain
`
	run := func() string {
		sum, err := Execute(MustParse(text))
		if err != nil {
			t.Fatal(err)
		}
		return sum.String()
	}
	first := run()
	if !strings.Contains(first, "det: PASS") {
		t.Fatalf("expected PASS:\n%s", first)
	}
	if second := run(); second != first {
		t.Fatalf("two runs differ:\n%s\nvs\n%s", first, second)
	}
}
