package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Summary is the deterministic result of a scenario's assertion phase:
// one line per assert, in spec order, plus a PASS/FAIL verdict. Two
// runs of the same spec render byte-identical summaries — the property
// the CI scenario-smoke job diffs against its golden files.
type Summary struct {
	Name  string
	Lines []string
	Pass  bool
}

// String renders the summary.
func (s *Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s: %d asserts\n", s.Name, len(s.Lines))
	for _, l := range s.Lines {
		sb.WriteString("  " + l + "\n")
	}
	verdict := "PASS"
	if !s.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "scenario %s: %s\n", s.Name, verdict)
	return sb.String()
}

// Evaluate runs every assertion against the finished run. It may run
// the scenario's fault-free twin (for survivors-identical) — an
// entire second system — so call it once, after RunFor has covered
// the full duration.
func (r *Runner) Evaluate() (*Summary, error) {
	sum := &Summary{Name: r.Spec.Name, Pass: true}
	var clean *Runner
	for _, a := range r.Spec.Asserts {
		if a.Kind != "survivors-identical" || clean != nil {
			continue
		}
		c, err := r.cleanTwin()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: fault-free twin: %w", r.Spec.Name, err)
		}
		clean = c
		defer clean.Close()
	}
	for _, a := range r.Spec.Asserts {
		ok, detail := r.check(a, clean)
		status := "ok"
		if !ok {
			status, sum.Pass = "FAIL", false
		}
		label := a.Kind
		if a.Arg != "" {
			label += " " + a.Arg
		}
		sum.Lines = append(sum.Lines, fmt.Sprintf("%-4s %s: %s", status, label, detail))
	}
	return sum, nil
}

// cleanTwin re-runs the scenario with every fault stripped: no link
// faults, no board crashes, no sink stalls. Everything else — seeds,
// timeline, degradation — is identical.
func (r *Runner) cleanTwin() (*Runner, error) {
	sc := *r.Spec
	sc.Faults = ""
	sc.Boxes = make([]Box, len(r.Spec.Boxes))
	copy(sc.Boxes, r.Spec.Boxes)
	for i := range sc.Boxes {
		sc.Boxes[i].Crashes = nil
		sc.Boxes[i].SinkStalls = nil
	}
	sc.Asserts = nil
	c, err := NewRunner(&sc)
	if err != nil {
		return nil, err
	}
	if err := c.Run(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// deliveredThroughCrash reports whether dst's copy of st ever flowed
// through a crashed box: dst sat (or once sat, before a repair
// re-homed it) in a subtree rooted at a crashed interior node. Such
// destinations lost cells while the interior box was down, so
// survivors-identical excludes them along with the crashed boxes
// themselves.
func (r *Runner) deliveredThroughCrash(st *core.Stream, dst string, crashed map[string]bool) bool {
	if st.Tree == nil {
		return false
	}
	for box := range crashed {
		if st.Tree.EverUnder(dst, box) {
			return true
		}
	}
	return false
}

// crashedBoxes is the set of boxes with any board-crash window — the
// boxes survivors-identical excludes.
func (r *Runner) crashedBoxes() map[string]bool {
	out := map[string]bool{}
	for i, b := range r.Spec.Boxes {
		if len(b.Crashes) > 0 || (i == 0 && len(r.FaultSpec.Crashes) > 0) {
			out[b.Name] = true
		}
	}
	return out
}

// streamRefs returns the named streams in deterministic (sorted ref)
// order.
func (r *Runner) streamRefs() []string {
	refs := make([]string, 0, len(r.Streams))
	for ref := range r.Streams {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	return refs
}

func (r *Runner) check(a Assert, clean *Runner) (bool, string) {
	switch a.Kind {
	case "no-audio-shed":
		n := 0
		for _, name := range r.ctrlNames() {
			for _, act := range r.Ctrls[name].Actions() {
				if !act.Restore && !act.Video {
					n++
				}
			}
		}
		return n == 0, fmt.Sprintf("%d audio sheds", n)
	case "video-shed":
		min := 1
		if a.HasValue {
			min = int(a.Value)
		}
		n := 0
		for _, name := range r.ctrlNames() {
			for _, act := range r.Ctrls[name].Actions() {
				if !act.Restore && act.Video {
					n++
				}
			}
		}
		return n >= min, fmt.Sprintf("%d video sheds (want ≥ %d)", n, min)
	case "shed-order-oldest-first":
		c, ok := r.Ctrls[a.Arg]
		if !ok {
			return false, fmt.Sprintf("no controller %q", a.Arg)
		}
		var order []uint32
		ascending := true
		for _, act := range c.Actions() {
			if act.Restore {
				break
			}
			if n := len(order); n > 0 && order[n-1] >= act.Stream {
				ascending = false
			}
			order = append(order, act.Stream)
		}
		return ascending && len(order) > 0, fmt.Sprintf("initial shed ladder %v", order)
	case "survivors-identical":
		crashed := r.crashedBoxes()
		checked, mismatched := 0, 0
		for _, ref := range r.streamRefs() {
			st := r.Streams[ref]
			if st.Video || crashed[st.From] {
				continue
			}
			cst := clean.Streams[ref]
			dsts := make([]string, 0, len(st.VCIs))
			for dst := range st.VCIs {
				dsts = append(dsts, dst)
			}
			sort.Strings(dsts)
			for _, dst := range dsts {
				if crashed[dst] || r.deliveredThroughCrash(st, dst, crashed) {
					continue
				}
				checked++
				m := r.Sys.Box(dst).Mixer().Stats(st.VCIs[dst])
				cm := clean.Sys.Box(dst).Mixer().Stats(cst.VCIs[dst])
				if m.Digest != cm.Digest || m.Segments != cm.Segments {
					mismatched++
				}
			}
		}
		return mismatched == 0 && checked > 0,
			fmt.Sprintf("%d/%d surviving deliveries byte-identical with the fault-free twin", checked-mismatched, checked)
	case "wires-drain":
		leaks := 0
		var total uint64
		for _, b := range r.Spec.Boxes {
			_, news, _ := r.Sys.Box(b.Name).WirePoolStats()
			total += news
			if r.Sys.Box(b.Name).WirePoolLeaked() != 0 {
				leaks++
			}
		}
		return leaks == 0, fmt.Sprintf("%d pools, %d wire allocations, %d pools leaking", len(r.Spec.Boxes), total, leaks)
	case "gauge-zero", "gauge-max":
		limit := 0.0
		if a.Kind == "gauge-max" {
			limit = a.Value
		}
		samples := r.Sys.Obs.Snapshot().Family(a.Arg)
		if len(samples) == 0 {
			return false, fmt.Sprintf("no gauge %q registered", a.Arg)
		}
		max := 0.0
		for _, s := range samples {
			if s.Value > max {
				max = s.Value
			}
		}
		return max <= limit, fmt.Sprintf("max %g over %d samples (limit %g)", max, len(samples), limit)
	case "min-segments", "max-lost", "max-silence-pct":
		st, ok := r.Streams[a.Arg]
		if !ok {
			return false, fmt.Sprintf("no stream %q", a.Arg)
		}
		dsts := make([]string, 0, len(st.VCIs))
		for dst := range st.VCIs {
			dsts = append(dsts, dst)
		}
		sort.Strings(dsts)
		ok2 := true
		var parts []string
		var minSegs, maxLost uint64
		maxPct := 0.0
		for i, dst := range dsts {
			m := r.Sys.Box(dst).Mixer().Stats(st.VCIs[dst])
			switch a.Kind {
			case "min-segments":
				if float64(m.Segments) < a.Value {
					ok2 = false
				}
				if i == 0 || m.Segments < minSegs {
					minSegs = m.Segments
				}
				parts = append(parts, fmt.Sprintf("%s=%d", dst, m.Segments))
			case "max-lost":
				if float64(m.LostSegments) > a.Value {
					ok2 = false
				}
				if m.LostSegments > maxLost {
					maxLost = m.LostSegments
				}
				parts = append(parts, fmt.Sprintf("%s=%d", dst, m.LostSegments))
			case "max-silence-pct":
				pct := 0.0
				if m.Blocks > 0 {
					pct = 100 * float64(m.Clawback.SilenceInserted) / float64(m.Blocks)
				}
				if pct > a.Value {
					ok2 = false
				}
				if pct > maxPct {
					maxPct = pct
				}
				parts = append(parts, fmt.Sprintf("%s=%.2f%%", dst, pct))
			}
		}
		// Beyond a handful of destinations the per-box list stops being
		// readable (a 1000-viewer tree would print 1000 numbers):
		// summarise with the count and the binding extreme instead.
		if len(dsts) > 8 {
			switch a.Kind {
			case "min-segments":
				parts = []string{fmt.Sprintf("%d dests, min=%d", len(dsts), minSegs)}
			case "max-lost":
				parts = []string{fmt.Sprintf("%d dests, max=%d", len(dsts), maxLost)}
			case "max-silence-pct":
				parts = []string{fmt.Sprintf("%d dests, max=%.2f%%", len(dsts), maxPct)}
			}
		}
		return ok2, fmt.Sprintf("%s (limit %g)", strings.Join(parts, " "), a.Value)
	case "copies-max":
		peak := r.Sys.Box(a.Arg).MaxNetCopies()
		return peak <= int(a.Value), fmt.Sprintf("peak %d copies per hop at %s (limit %d)", peak, a.Arg, int(a.Value))
	case "faults-fired":
		var total uint64
		for _, l := range r.Sys.Net.Links() {
			fs := l.FaultStats()
			total += fs.Drops + fs.Corruptions + fs.Duplicates + fs.Delays + fs.Stalls
		}
		for _, f := range r.Spec.Fabrics {
			for _, n := range f.Attach {
				ps := r.Sys.FabricPort(n).Stats()
				total += ps.FaultDrops + ps.FaultCorrupt + ps.FaultDups + ps.FaultDelays + ps.FaultStalls
			}
		}
		// Board crashes count too: a crash window inside the run is a
		// fired fault even when no link fault is configured.
		crashes := 0
		for box := range r.crashedBoxes() {
			_ = box
			crashes++
		}
		return total > 0 || crashes > 0, fmt.Sprintf("%d link faults, %d crashed boxes", total, crashes)
	case "circuits":
		n := 0
		for _, ref := range r.streamRefs() {
			if st := r.Streams[ref]; st.From == a.Arg {
				n += len(st.VCIs)
			}
		}
		if a.HasValue {
			return n == int(a.Value), fmt.Sprintf("%d circuits open from %s (want %d)", n, a.Arg, int(a.Value))
		}
		return true, fmt.Sprintf("%d circuits open from %s", n, a.Arg)
	case "rejected":
		var n uint64
		if r.Bal != nil {
			n = r.Bal.Rejected()
		}
		return n == uint64(a.Value), fmt.Sprintf("%d calls rejected by admission (want %d)", n, uint64(a.Value))
	case "migrations":
		n := 0
		if r.Bal != nil {
			n = r.Bal.MigrationsFrom(a.Arg)
		}
		return n == int(a.Value), fmt.Sprintf("%d migrations off %s (want %d)", n, a.Arg, int(a.Value))
	case "spread":
		st, ok := r.Streams[a.Arg]
		if !ok || st.Tree == nil {
			return false, fmt.Sprintf("no tree stream %q", a.Arg)
		}
		n := st.Tree.FeederBoxes()
		return n >= int(a.Value), fmt.Sprintf("%d distinct feeder boxes for %s (want ≥ %d)", n, a.Arg, int(a.Value))
	}
	return false, "unknown assert"
}

// ctrlNames returns controller names in deterministic order.
func (r *Runner) ctrlNames() []string {
	names := make([]string, 0, len(r.Ctrls))
	for name := range r.Ctrls {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
