package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioParse feeds arbitrary text to the parser. Any input the
// parser accepts must round-trip: Format's output re-parses to a
// deeply equal scenario and Format is a fixed point. Run longer with:
//
//	go test -fuzz=FuzzScenarioParse -fuzztime=30s ./internal/scenario
func FuzzScenarioParse(f *testing.F) {
	f.Add(representative)
	files, _ := filepath.Glob("../../scenarios/*.scn")
	for _, file := range files {
		if text, err := os.ReadFile(file); err == nil {
			f.Add(string(text))
		}
	}
	f.Add("scenario x\nduration 1s\nbox a\n")
	f.Add("scenario x\nduration 1s\nbox a mic=tone:1:2 crash=audio:1s-2s\n")
	f.Fuzz(func(t *testing.T, text string) {
		sc, err := Parse(text)
		if err != nil {
			return // rejected input is fine; it must just not panic
		}
		printed := sc.Format()
		sc2, err := Parse(printed)
		if err != nil {
			t.Fatalf("Format output rejected: %v\ninput: %q\nformatted:\n%s", err, text, printed)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Fatalf("round trip changed the scenario\ninput: %q\nformatted:\n%s", text, printed)
		}
		if printed2 := sc2.Format(); printed2 != printed {
			t.Fatalf("Format not a fixed point\nfirst:\n%s\nsecond:\n%s", printed, printed2)
		}
	})
}
