package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/atm"
	"repro/internal/balancer"
	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/degrade"
	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/occam"
	"repro/internal/segment"
	"repro/internal/video"
	"repro/internal/workload"
)

// Runner executes one scenario on a fresh core.System. Build order is
// fixed — boxes, links, fabrics, feeds, cross traffic, faults,
// degradation, then one control process playing the event timeline —
// so that two runs of the same spec are byte-identical, and a spec
// that reproduces a hand-wired experiment reproduces its schedule
// exactly.
type Runner struct {
	Spec *Scenario
	Sys  *core.System
	// Streams holds every stream a timeline event named with "as";
	// conference and call members land under "REF[i]".
	Streams map[string]*core.Stream
	// Ctrls are the degradation controllers by box or fabric-port name
	// (nil when the spec has no degrade phase).
	Ctrls map[string]*degrade.Controller
	// Bal is the balancer control plane (nil without a balance block).
	// It is installed as the system's Placer before the timeline runs,
	// so every tree attach/pull/repair is load-ranked, and the timeline
	// consults it for call admission and `call A ?` placement.
	Bal *balancer.Balancer
	// FaultSpec is the parsed fault phase.
	FaultSpec faultinject.Spec

	started  bool
	admitted map[string]bool // refs of admitted (budget-holding) calls
}

// NewRunner validates the spec and prepares a runner.
func NewRunner(sc *Scenario) (*Runner, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	fs, err := faultinject.ParseSpec(sc.Faults, sc.Seed)
	if err != nil {
		return nil, err
	}
	return &Runner{Spec: sc, FaultSpec: fs, Streams: make(map[string]*core.Stream)}, nil
}

// Start builds the system and spawns every process, including the
// timeline, without advancing virtual time. then, when non-nil, runs
// inside the timeline control process after the last event — the hook
// measurement probes use to share the timeline's schedule.
func (r *Runner) Start(then func(p *occam.Proc)) {
	if r.started {
		panic("scenario: Start called twice")
	}
	r.started = true
	sc := r.Spec
	s := core.NewSystem()
	r.Sys = s

	for i, bs := range sc.Boxes {
		cfg := box.Config{
			Name:              bs.Name,
			BlocksPerSegment:  bs.Blocks,
			CameraW:           bs.CameraW,
			CameraH:           bs.CameraH,
			NetInterfaceBits:  bs.NetIfBits,
			InterleaveNetwork: bs.Interleave,
			SharedNetBuffer:   bs.SharedNet,
			Features: box.Features{
				JitterCorrection: bs.Jitter,
				Muting:           bs.Muting,
				Interface:        bs.Interface,
			},
		}
		if bs.Mic != nil {
			switch bs.Mic.Kind {
			case "tone":
				cfg.Mic = workload.NewTone(int(bs.Mic.A), int32(bs.Mic.B))
			case "speech":
				cfg.Mic = workload.NewSpeech(bs.Mic.A, int32(bs.Mic.B))
			}
		}
		crashes := bs.Crashes
		stalls := bs.SinkStalls
		if i == 0 {
			// The spec-level fault phase targets the first box, exactly
			// as pandora-sim -faults does.
			if crashes == nil && len(r.FaultSpec.Crashes) > 0 {
				crashes = r.FaultSpec.Crashes
			}
			if len(stalls) == 0 {
				stalls = r.FaultSpec.SinkStalls
			}
		}
		if len(crashes) > 0 {
			b := faultinject.NewBoards()
			boards := make([]string, 0, len(crashes))
			for board := range crashes {
				boards = append(boards, board)
			}
			sort.Strings(boards)
			for _, board := range boards {
				for _, w := range crashes[board] {
					b.Crash(board, w.From, w.To)
				}
			}
			cfg.BoardFaults = b
		}
		if len(stalls) > 0 {
			cfg.SinkStalls = map[string][]faultinject.Window{
				"net-video": stalls,
				"net-audio": stalls,
			}
		}
		s.AddBox(cfg)
	}

	for _, l := range sc.Links {
		cfgs := make([]atm.LinkConfig, len(l.Hops))
		for i, h := range l.Hops {
			cfgs[i] = atm.LinkConfig{
				Bandwidth:   h.Bandwidth,
				Propagation: h.Propagation,
				QueueLimit:  h.QueueLimit,
				LossRate:    h.Loss,
				Seed:        h.Seed,
			}
		}
		s.ConnectPath(l.From, l.To, cfgs)
	}

	for _, f := range sc.Fabrics {
		s.AddFabric(f.Name, fabric.Config{
			PortBandwidth:   f.PortBandwidth,
			Propagation:     f.Propagation,
			IngressLimit:    f.IngressLimit,
			EgressCellLimit: f.EgressCellLimit,
			BatchCells:      f.BatchCells,
			XbarSpeedup:     f.Speedup,
		})
		for _, n := range f.Attach {
			s.AttachFabric(f.Name, n)
		}
	}

	for i, fd := range sc.Feeds {
		r.startFeed(hostName("gen", i), fd)
	}
	for i, c := range sc.Cross {
		r.startCross(hostName("cross", i), hostName("crossSink", i), c)
	}

	if r.FaultSpec.Active() {
		s.InjectLinkFaults(r.FaultSpec)
	}
	if sc.Degrade != nil {
		r.Ctrls = s.EnableDegradation(degrade.Config{
			ShedEvery: sc.Degrade.ShedEvery,
			Hold:      sc.Degrade.Hold,
		})
	}
	if sc.Balance != nil {
		r.Bal = balancer.New(s, balancer.Config{
			Budget:           sc.Balance.Budget,
			Interval:         sc.Balance.Interval,
			MigrateHighWater: sc.Balance.Migrate,
			Cooldown:         sc.Balance.Cooldown,
			MaxMigrations:    sc.Balance.MaxMigrations,
		})
		r.Bal.Start()
		r.admitted = make(map[string]bool)
	}

	events := make([]Event, len(sc.Events))
	copy(events, sc.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	if len(events) > 0 || then != nil {
		s.Control(func(p *occam.Proc) {
			// Event times are offsets between command issues, not absolute
			// deadlines: the timeline sleeps the delta from the previous
			// event's time, so each command starts its gap after the
			// previous command completed — command calls themselves consume
			// virtual time (circuit setup round trips), and this is exactly
			// how a hand-written control process with p.Sleep between
			// commands behaves.
			var prev time.Duration
			for _, ev := range events {
				if d := ev.At - prev; d > 0 {
					p.Sleep(d)
				}
				prev = ev.At
				r.apply(p, ev)
			}
			if then != nil {
				then(p)
			}
		})
	}
}

// hostName keeps the first generator's historical name ("gen",
// "cross") and numbers the rest, so single-generator specs reproduce
// the hand-wired experiments' process names exactly.
func hostName(base string, i int) string {
	if i == 0 {
		return base
	}
	return fmt.Sprintf("%s%d", base, i+1)
}

// startFeed replicates the experiment suite's feedStreams generator: a
// host pushing N tone streams of 2-block segments every 4 ms.
func (r *Runner) startFeed(name string, fd Feed) {
	s := r.Sys
	gen := s.Net.AddHost(name)
	dst := s.Box(fd.Box)
	l := s.Net.AddLink(name+"-feed", atm.LinkConfig{Bandwidth: 100_000_000})
	n, base := fd.N, fd.Base
	for i := 0; i < n; i++ {
		s.Net.OpenCircuit(base+uint32(i), gen, dst.Host(), l)
	}
	s.Control(func(p *occam.Proc) {
		for i := 0; i < n; i++ {
			dst.SetRoute(p, box.Route{Stream: base + uint32(i), Outputs: []box.Output{box.OutSpeaker}})
		}
		tone := workload.NewTone(400, 8000)
		pool := segment.NewWirePool()
		seqs := make([]uint32, n)
		var (
			aseg  segment.Audio
			adata = make([]byte, 2*segment.BlockSamples)
		)
		for tick := 0; ; tick++ {
			p.SleepUntil(occam.Time(int64(tick) * int64(2*segment.BlockDuration)))
			for i := 0; i < n; i++ {
				tone.FillBlock(adata[:segment.BlockSamples])
				tone.FillBlock(adata[segment.BlockSamples:])
				w := pool.Encode(aseg.Reset(seqs[i], p.Now(), adata))
				seqs[i]++
				if gen.Send(p, atm.Message{VCI: base + uint32(i), Size: w.Len(), W: w}) != nil {
					w.Release()
				}
			}
		}
	})
}

// startCross replicates E16's cross-traffic pair: a drain host and a
// transmitter hammering one hop of an existing path.
func (r *Runner) startCross(txName, sinkName string, c Cross) {
	s := r.Sys
	hop := s.Path(c.From, c.To)[c.Hop]
	tx := s.Net.AddHost(txName)
	sink := s.Net.AddHost(sinkName)
	s.Net.OpenCircuit(c.VCI, tx, sink, hop)
	s.RT.Go(sinkName+".drain", nil, occam.High, func(p *occam.Proc) {
		for {
			sink.Rx.Recv(p)
		}
	})
	vci, seed, gap, szMin, szJit := c.VCI, c.Seed, c.Gap, c.SizeMin, c.SizeJitter
	if gap <= 0 {
		gap = 10 * time.Millisecond // default inter-message gap when the spec omits gap=
	}
	s.RT.Go(txName+".tx", nil, occam.Low, func(p *occam.Proc) {
		rng := workload.NewRNG(seed)
		for {
			p.Sleep(time.Duration(rng.Intn(int(gap))))
			size := szMin
			if szJit > 0 {
				size += rng.Intn(szJit)
			}
			tx.Send(p, atm.Message{VCI: vci, Size: size})
		}
	})
}

// apply executes one timeline event inside the control process.
func (r *Runner) apply(p *occam.Proc, ev Event) {
	s := r.Sys
	switch ev.Op {
	case "audio":
		st := s.SendAudio(p, ev.From, ev.To...)
		if ev.Ref != "" {
			r.Streams[ev.Ref] = st
		}
	case "video":
		st := s.SendVideo(p, ev.From, box.CameraStream{
			Rect:         video.Rect{X: ev.X, Y: ev.Y, W: ev.W, H: ev.H},
			Rate:         video.Rate{Num: ev.RateNum, Den: ev.RateDen},
			SegsPerFrame: ev.Segs,
		}, ev.To...)
		if ev.Ref != "" {
			r.Streams[ev.Ref] = st
		}
	case "tree":
		st := s.SendAudioTree(p, core.TreeConfig{Fanout: ev.K, Trees: ev.Trees}, ev.From, ev.To...)
		if ev.Ref != "" {
			r.Streams[ev.Ref] = st
		}
		if r.Bal != nil {
			r.Bal.Manage(st)
		}
	case "pull":
		if st, ok := r.Streams[ev.Ref]; ok {
			s.Pull(p, st, ev.To...)
		}
	case "repair":
		if st, ok := r.Streams[ev.Ref]; ok {
			s.RepairTree(p, st, ev.To[0])
		}
	case "call":
		// Admission gate: reject before degrade — a call the budget
		// cannot hold is refused outright instead of being served badly.
		if r.Bal != nil && !r.Bal.AdmitCall() {
			break
		}
		callee := ev.To[0]
		if callee == "?" {
			// Balancer-placed callee: the least-loaded reachable box.
			picked, ok := r.Bal.PlaceCall(ev.From)
			if !ok {
				r.Bal.ReleaseCall()
				break
			}
			callee = picked
		}
		ab, ba := s.AudioCall(p, ev.From, callee)
		if ev.Ref != "" {
			r.Streams[ev.Ref+"[0]"] = ab
			r.Streams[ev.Ref+"[1]"] = ba
			if r.Bal != nil {
				r.admitted[ev.Ref] = true
			}
		}
	case "conference":
		if r.Bal != nil && !r.Bal.AdmitCall() {
			break
		}
		members := append([]string{ev.From}, ev.To...)
		sts := s.Conference(p, members...)
		if ev.Ref != "" {
			for i, st := range sts {
				r.Streams[fmt.Sprintf("%s[%d]", ev.Ref, i)] = st
			}
			if r.Bal != nil {
				r.admitted[ev.Ref] = true
			}
		}
	case "split":
		if st, ok := r.Streams[ev.Ref]; ok {
			s.AddAudioDestination(p, st, ev.To[0])
		}
	case "drop":
		if st, ok := r.Streams[ev.Ref]; ok {
			s.RemoveDestination(p, st, ev.To[0])
		}
	case "close":
		if r.Bal != nil && r.admitted[ev.Ref] {
			r.Bal.ReleaseCall()
			delete(r.admitted, ev.Ref)
		}
		if st, ok := r.Streams[ev.Ref]; ok {
			s.Close(p, st)
			break
		}
		// A call or conference ref names a bundle of streams stored as
		// ref[0..n-1]: close every member.
		for i := 0; ; i++ {
			st, ok := r.Streams[fmt.Sprintf("%s[%d]", ev.Ref, i)]
			if !ok {
				break
			}
			s.Close(p, st)
		}
	case "netsend":
		// Raw route: the E1 "outgoing stream" — a mic stream pushed onto
		// an explicit VCI with no speaker route installed at the far end.
		src := s.Box(ev.From)
		src.SetRoute(p, box.Route{Stream: ev.Stream, Outputs: []box.Output{box.OutNetwork}, NetVCIs: []uint32{ev.VCI}})
		s.Net.OpenCircuit(ev.VCI, src.Host(), s.Box(ev.To[0]).Host(), s.Path(ev.From, ev.To[0])...)
		src.StartMic(p, ev.Stream)
	}
}

// RunFor advances virtual time; Start must have been called.
func (r *Runner) RunFor(d time.Duration) error { return r.Sys.RunFor(d) }

// Run starts the scenario (with no probe hook) and plays it to its
// full duration.
func (r *Runner) Run() error {
	r.Start(nil)
	return r.RunFor(r.Spec.Duration)
}

// Close shuts the system down.
func (r *Runner) Close() {
	if r.Sys != nil {
		r.Sys.Shutdown()
	}
}

// Execute is the one-call form used by binaries: validate, run to
// completion, evaluate assertions, return the summary.
func Execute(sc *Scenario) (*Summary, error) {
	r, err := NewRunner(sc)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		return nil, err
	}
	return r.Evaluate()
}
