package scenario

import "testing"

func TestReviewCloseBaseRef(t *testing.T) {
	sc := MustParse(`scenario x
duration 3s
box A mic=tone:400:8000
box B
link A B bw=100M
at 100ms call A B as c
at 1s close c
`)
	if _, err := Execute(sc); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

func TestReviewCrossNoGap(t *testing.T) {
	sc := MustParse(`scenario y
duration 1s
box A mic=tone:400:8000
box B
link A B bw=100M
cross A B hop=0 vci=99 seed=1 size=100+5
`)
	if _, err := Execute(sc); err != nil {
		t.Fatalf("execute: %v", err)
	}
}
