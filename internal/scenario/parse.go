package scenario

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinject"
)

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Parse(string(text))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Parse reads the scenario text grammar. One directive per line; blank
// lines and #-comments are skipped. Errors name the line. The grammar
// (square brackets optional, UPPERCASE a value):
//
//	scenario NAME
//	seed N
//	duration DUR
//	box NAME [mic=KIND:A:B] [camera=WxH] [blocks=N] [netif=BITS]
//	         [interleave] [sharednet] [jitter] [muting] [interface]
//	         [crash=BOARD:FROM-TO]... [sinkstall=FROM-TO]...
//	link A B bw=BITS [prop=DUR] [queue=N] [loss=P] [lseed=N] [/ HOP]...
//	fabric NAME [portbw=BITS] [prop=DUR] [ingress=N] [egress=N] [batch=N] [speedup=N]
//	attach FABRIC NODE...
//	feed BOX n=N base=VCI
//	cross A B hop=I vci=N seed=N gap=DUR size=MIN+JITTER
//	at DUR audio FROM -> TO[,TO...] [as REF]
//	at DUR video FROM -> TO[,TO...] rect=X,Y,W,H rate=N/D [segs=K] [as REF]
//	at DUR tree FROM -> TO[,TO...] [k=K] [trees=T] [as REF]
//	at DUR call A B [as REF]        (B may be ? — balancer-placed callee)
//	at DUR conference M1 M2... [as REF]
//	at DUR split REF DST
//	at DUR drop REF DST
//	at DUR pull REF DST[,DST...]
//	at DUR repair REF BOX
//	at DUR close REF
//	at DUR netsend FROM -> TO stream=N vci=N
//	faults FAULTSPEC            (faultinject.ParseSpec grammar, verbatim)
//	degrade shed=DUR hold=DUR
//	balance [budget=N] [interval=DUR] [migrate=F] [cooldown=DUR] [maxmig=N]
//	assert KIND [ARG] [VALUE]
//
// BITS accepts a plain count or a k/M suffix ("64k", "100M").
func Parse(text string) (*Scenario, error) {
	sc := &Scenario{}
	for no, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := sc.parseLine(fields, line); err != nil {
			return nil, fmt.Errorf("scenario line %d (%q): %w", no+1, strings.TrimSpace(line), err)
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// MustParse is Parse for compiled-in specs; it panics on error.
func MustParse(text string) *Scenario {
	sc, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return sc
}

func (sc *Scenario) parseLine(fields []string, line string) error {
	switch fields[0] {
	case "scenario":
		if len(fields) != 2 {
			return fmt.Errorf("want: scenario NAME")
		}
		sc.Name = fields[1]
	case "seed":
		if len(fields) != 2 {
			return fmt.Errorf("want: seed N")
		}
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("seed %q is not an unsigned integer", fields[1])
		}
		sc.Seed = n
	case "duration":
		if len(fields) != 2 {
			return fmt.Errorf("want: duration DUR")
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return fmt.Errorf("duration %q is not a duration", fields[1])
		}
		sc.Duration = d
	case "box":
		return sc.parseBox(fields)
	case "link":
		return sc.parseLink(fields)
	case "fabric":
		return sc.parseFabric(fields)
	case "attach":
		if len(fields) < 3 {
			return fmt.Errorf("want: attach FABRIC NODE...")
		}
		for i := range sc.Fabrics {
			if sc.Fabrics[i].Name == fields[1] {
				sc.Fabrics[i].Attach = append(sc.Fabrics[i].Attach, fields[2:]...)
				return nil
			}
		}
		return fmt.Errorf("attach before fabric %q", fields[1])
	case "feed":
		return sc.parseFeed(fields)
	case "cross":
		return sc.parseCross(fields)
	case "at":
		return sc.parseEvent(fields)
	case "faults":
		// Verbatim faultinject grammar: everything after the keyword.
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "faults"))
		if rest == "" {
			return fmt.Errorf("want: faults FAULTSPEC")
		}
		sc.Faults = rest
	case "degrade":
		d := &Degrade{}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return fmt.Errorf("degrade wants shed=DUR hold=DUR, got %q", f)
			}
			dur, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("degrade %s: %q is not a duration", key, val)
			}
			switch key {
			case "shed":
				d.ShedEvery = dur
			case "hold":
				d.Hold = dur
			default:
				return fmt.Errorf("degrade: unknown key %q", key)
			}
		}
		sc.Degrade = d
	case "balance":
		b := &Balance{}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return fmt.Errorf("balance clause %q wants key=value", f)
			}
			switch key {
			case "budget", "maxmig":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return fmt.Errorf("balance %s wants a non-negative integer, got %q", key, val)
				}
				if key == "budget" {
					b.Budget = n
				} else {
					b.MaxMigrations = n
				}
			case "interval", "cooldown":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return fmt.Errorf("balance %s: %q is not a duration", key, val)
				}
				if key == "interval" {
					b.Interval = d
				} else {
					b.Cooldown = d
				}
			case "migrate":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil || math.IsNaN(v) || v < 0 || v > 1 {
					return fmt.Errorf("balance migrate wants a ratio in [0,1], got %q", val)
				}
				b.Migrate = v
			default:
				return fmt.Errorf("balance: unknown key %q", key)
			}
		}
		sc.Balance = b
	case "assert":
		if len(fields) < 2 {
			return fmt.Errorf("want: assert KIND [ARG] [VALUE]")
		}
		a := Assert{Kind: fields[1]}
		rest := fields[2:]
		// A trailing number is the value; anything before it the arg.
		if len(rest) > 0 {
			if v, err := strconv.ParseFloat(rest[len(rest)-1], 64); err == nil && !math.IsNaN(v) {
				a.Value, a.HasValue = v, true
				rest = rest[:len(rest)-1]
			}
		}
		if len(rest) > 1 {
			return fmt.Errorf("assert %s: too many arguments", a.Kind)
		}
		if len(rest) == 1 {
			a.Arg = rest[0]
		}
		sc.Asserts = append(sc.Asserts, a)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

func (sc *Scenario) parseBox(fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("want: box NAME [clauses]")
	}
	b := Box{Name: fields[1]}
	for _, f := range fields[2:] {
		key, val, hasVal := strings.Cut(f, "=")
		switch key {
		case "interleave":
			b.Interleave = true
		case "sharednet":
			b.SharedNet = true
		case "jitter":
			b.Jitter = true
		case "muting":
			b.Muting = true
		case "interface":
			b.Interface = true
		case "mic":
			parts := strings.Split(val, ":")
			if len(parts) != 3 {
				return fmt.Errorf("mic wants KIND:A:B, got %q", val)
			}
			a, err1 := strconv.ParseUint(parts[1], 10, 64)
			amp, err2 := strconv.ParseUint(parts[2], 10, 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("mic %q: A and B must be unsigned integers", val)
			}
			b.Mic = &Mic{Kind: parts[0], A: a, B: amp}
		case "camera":
			w, h, ok := strings.Cut(val, "x")
			wi, err1 := strconv.Atoi(w)
			hi, err2 := strconv.Atoi(h)
			if !ok || err1 != nil || err2 != nil || wi < 1 || hi < 1 {
				return fmt.Errorf("camera wants WxH, got %q", val)
			}
			b.CameraW, b.CameraH = wi, hi
		case "blocks":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("blocks wants a positive integer, got %q", val)
			}
			b.Blocks = n
		case "netif":
			bits, err := parseBits(val)
			if err != nil {
				return err
			}
			b.NetIfBits = bits
		case "crash":
			board, win, ok := strings.Cut(val, ":")
			if !ok || board == "" {
				return fmt.Errorf("crash wants BOARD:FROM-TO, got %q", val)
			}
			w, err := faultinject.ParseWindow(win)
			if err != nil {
				return err
			}
			if b.Crashes == nil {
				b.Crashes = make(map[string][]faultinject.Window)
			}
			b.Crashes[board] = append(b.Crashes[board], w)
		case "sinkstall":
			w, err := faultinject.ParseWindow(val)
			if err != nil {
				return err
			}
			b.SinkStalls = append(b.SinkStalls, w)
		default:
			if !hasVal {
				return fmt.Errorf("unknown box flag %q", f)
			}
			return fmt.Errorf("unknown box clause %q", key)
		}
	}
	sc.Boxes = append(sc.Boxes, b)
	return nil
}

func (sc *Scenario) parseLink(fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("want: link A B bw=BITS [clauses] [/ HOP]...")
	}
	l := Link{From: fields[1], To: fields[2]}
	hop := Hop{}
	flush := func() error {
		if hop.Bandwidth <= 0 {
			return fmt.Errorf("link %s %s: hop needs bw=", l.From, l.To)
		}
		l.Hops = append(l.Hops, hop)
		hop = Hop{}
		return nil
	}
	for _, f := range fields[3:] {
		if f == "/" {
			if err := flush(); err != nil {
				return err
			}
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("link clause %q wants key=value", f)
		}
		switch key {
		case "bw":
			bits, err := parseBits(val)
			if err != nil {
				return err
			}
			hop.Bandwidth = bits
		case "prop":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("prop wants a non-negative duration, got %q", val)
			}
			hop.Propagation = d
		case "queue":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("queue wants a non-negative integer, got %q", val)
			}
			hop.QueueLimit = n
		case "loss":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
				return fmt.Errorf("loss wants a probability, got %q", val)
			}
			hop.Loss = p
		case "lseed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("lseed wants an unsigned integer, got %q", val)
			}
			hop.Seed = n
		default:
			return fmt.Errorf("unknown link clause %q", key)
		}
	}
	if err := flush(); err != nil {
		return err
	}
	sc.Links = append(sc.Links, l)
	return nil
}

func (sc *Scenario) parseFabric(fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("want: fabric NAME [clauses]")
	}
	f := Fabric{Name: fields[1]}
	for _, c := range fields[2:] {
		key, val, ok := strings.Cut(c, "=")
		if !ok {
			return fmt.Errorf("fabric clause %q wants key=value", c)
		}
		switch key {
		case "portbw":
			bits, err := parseBits(val)
			if err != nil {
				return err
			}
			f.PortBandwidth = bits
		case "prop":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("prop wants a non-negative duration, got %q", val)
			}
			f.Propagation = d
		case "ingress", "egress", "batch", "speedup":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("%s wants a positive integer, got %q", key, val)
			}
			switch key {
			case "ingress":
				f.IngressLimit = n
			case "egress":
				f.EgressCellLimit = n
			case "batch":
				f.BatchCells = n
			case "speedup":
				f.Speedup = n
			}
		default:
			return fmt.Errorf("unknown fabric clause %q", key)
		}
	}
	sc.Fabrics = append(sc.Fabrics, f)
	return nil
}

func (sc *Scenario) parseFeed(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("want: feed BOX n=N base=VCI")
	}
	fd := Feed{Box: fields[1]}
	for _, f := range fields[2:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("feed clause %q wants key=value", f)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("feed %s wants a non-negative integer, got %q", key, val)
		}
		switch key {
		case "n":
			fd.N = n
		case "base":
			fd.Base = uint32(n)
		default:
			return fmt.Errorf("unknown feed clause %q", key)
		}
	}
	sc.Feeds = append(sc.Feeds, fd)
	return nil
}

func (sc *Scenario) parseCross(fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("want: cross A B hop=I vci=N seed=N gap=DUR size=MIN+JITTER")
	}
	c := Cross{From: fields[1], To: fields[2]}
	for _, f := range fields[3:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("cross clause %q wants key=value", f)
		}
		switch key {
		case "hop":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("hop wants a non-negative integer, got %q", val)
			}
			c.Hop = n
		case "vci":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return fmt.Errorf("vci wants an unsigned integer, got %q", val)
			}
			c.VCI = uint32(n)
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("seed wants an unsigned integer, got %q", val)
			}
			c.Seed = n
		case "gap":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("gap %q is not a duration", val)
			}
			c.Gap = d
		case "size":
			mn, jt, ok := strings.Cut(val, "+")
			a, err1 := strconv.Atoi(mn)
			b, err2 := strconv.Atoi(jt)
			if !ok || err1 != nil || err2 != nil {
				return fmt.Errorf("size wants MIN+JITTER, got %q", val)
			}
			c.SizeMin, c.SizeJitter = a, b
		default:
			return fmt.Errorf("unknown cross clause %q", key)
		}
	}
	sc.Cross = append(sc.Cross, c)
	return nil
}

func (sc *Scenario) parseEvent(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("want: at DUR OP ...")
	}
	at, err := time.ParseDuration(fields[1])
	if err != nil {
		return fmt.Errorf("event time %q is not a duration", fields[1])
	}
	ev := Event{At: at, Op: fields[2]}
	rest := fields[3:]
	// Trailing "as REF".
	if n := len(rest); n >= 2 && rest[n-2] == "as" {
		ev.Ref = rest[n-1]
		rest = rest[:n-2]
	}
	switch ev.Op {
	case "audio", "video", "netsend", "tree":
		if len(rest) < 3 || rest[1] != "->" {
			return fmt.Errorf("%s wants: FROM -> TO[,TO...]", ev.Op)
		}
		ev.From = rest[0]
		ev.To = strings.Split(rest[2], ",")
		for _, f := range rest[3:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return fmt.Errorf("%s clause %q wants key=value", ev.Op, f)
			}
			switch key {
			case "rect":
				var vals [4]int
				parts := strings.Split(val, ",")
				if len(parts) != 4 {
					return fmt.Errorf("rect wants X,Y,W,H, got %q", val)
				}
				for i, p := range parts {
					vals[i], err = strconv.Atoi(p)
					if err != nil {
						return fmt.Errorf("rect %q: %q is not an integer", val, p)
					}
				}
				ev.X, ev.Y, ev.W, ev.H = vals[0], vals[1], vals[2], vals[3]
			case "rate":
				n, d, ok := strings.Cut(val, "/")
				num, err1 := strconv.Atoi(n)
				den, err2 := strconv.Atoi(d)
				if !ok || err1 != nil || err2 != nil {
					return fmt.Errorf("rate wants N/D, got %q", val)
				}
				ev.RateNum, ev.RateDen = num, den
			case "segs":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return fmt.Errorf("segs wants a positive integer, got %q", val)
				}
				ev.Segs = n
			case "stream":
				n, err := strconv.ParseUint(val, 10, 32)
				if err != nil {
					return fmt.Errorf("stream wants an unsigned integer, got %q", val)
				}
				ev.Stream = uint32(n)
			case "vci":
				n, err := strconv.ParseUint(val, 10, 32)
				if err != nil {
					return fmt.Errorf("vci wants an unsigned integer, got %q", val)
				}
				ev.VCI = uint32(n)
			case "k":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return fmt.Errorf("k wants a non-negative integer, got %q", val)
				}
				ev.K = n
			case "trees":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return fmt.Errorf("trees wants a positive integer, got %q", val)
				}
				ev.Trees = n
			default:
				return fmt.Errorf("unknown %s clause %q", ev.Op, key)
			}
		}
	case "call":
		if len(rest) != 2 {
			return fmt.Errorf("call wants: A B")
		}
		ev.From, ev.To = rest[0], []string{rest[1]}
	case "conference":
		if len(rest) < 2 {
			return fmt.Errorf("conference wants at least two members")
		}
		ev.From, ev.To = rest[0], rest[1:]
	case "split", "drop", "repair":
		if len(rest) != 2 {
			return fmt.Errorf("%s wants: REF DST", ev.Op)
		}
		ev.Ref, ev.To = rest[0], []string{rest[1]}
	case "pull":
		if len(rest) != 2 {
			return fmt.Errorf("pull wants: REF DST[,DST...]")
		}
		ev.Ref, ev.To = rest[0], strings.Split(rest[1], ",")
	case "close":
		if len(rest) != 1 {
			return fmt.Errorf("close wants: REF")
		}
		ev.Ref = rest[0]
	default:
		return fmt.Errorf("unknown event op %q", ev.Op)
	}
	sc.Events = append(sc.Events, ev)
	return nil
}

// parseBits parses a bit rate with an optional k/M suffix.
func parseBits(v string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(v, "M"):
		mult, v = 1_000_000, strings.TrimSuffix(v, "M")
	case strings.HasSuffix(v, "k"):
		mult, v = 1000, strings.TrimSuffix(v, "k")
	}
	n, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(n) || n < 0 || n*float64(mult) > 1e15 {
		return 0, fmt.Errorf("bit rate wants [FLOAT][k|M] within 1e15, got %q", v)
	}
	return int64(n * float64(mult)), nil
}
