package allocator

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/occam"
	"repro/internal/segment"
)

func run(t *testing.T, rt *occam.Runtime, d time.Duration) {
	t.Helper()
	if err := rt.RunUntil(occam.Time(d)); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
}

// testWireBytes returns the encoded form of a small audio segment.
func testWireBytes(seq uint32) []byte {
	blk := make([]byte, segment.BlockSamples)
	for i := range blk {
		blk[i] = byte(seq) + byte(i)
	}
	return segment.NewAudio(seq, 0, [][]byte{blk}).Encode(nil)
}

func TestGetGrantsDistinctBuffers(t *testing.T) {
	rt := occam.NewRuntime()
	pl := New(rt, nil, 4, nil)
	var got []*Buffer
	rt.Go("user", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, pl.Get(p))
		}
	})
	run(t, rt, time.Second)
	if len(got) != 4 {
		t.Fatalf("got %d buffers", len(got))
	}
	seen := map[int]bool{}
	for _, b := range got {
		if seen[b.Index] {
			t.Fatalf("buffer %d granted twice", b.Index)
		}
		seen[b.Index] = true
	}
}

func TestGetBlocksWhenExhaustedUntilRelease(t *testing.T) {
	rt := occam.NewRuntime()
	pl := New(rt, nil, 2, nil)
	var grantedAt occam.Time
	rt.Go("hog", nil, occam.Low, func(p *occam.Proc) {
		a := pl.Get(p)
		pl.Get(p)
		p.Sleep(30 * time.Millisecond)
		pl.Release(p, a)
	})
	rt.Go("waiter", nil, occam.Low, func(p *occam.Proc) {
		p.Sleep(time.Millisecond) // let the hog drain the pool
		pl.Get(p)
		grantedAt = p.Now()
	})
	run(t, rt, time.Second)
	if grantedAt != occam.Time(30*time.Millisecond) {
		t.Fatalf("blocked Get granted at %v, want 30ms", grantedAt)
	}
	if pl.Starvations() == 0 {
		t.Fatal("starvation not recorded")
	}
}

func TestReleaseRecyclesBuffer(t *testing.T) {
	rt := occam.NewRuntime()
	pl := New(rt, nil, 1, nil)
	indices := map[int]int{}
	rt.Go("user", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < 5; i++ {
			b := pl.Get(p)
			indices[b.Index]++
			pl.Release(p, b)
		}
	})
	run(t, rt, time.Second)
	if indices[0] != 5 {
		t.Fatalf("buffer reuse pattern %v, want index 0 five times", indices)
	}
}

func TestRetainDelaysRecycling(t *testing.T) {
	// A buffer sent to two destinations must survive until both
	// release it.
	rt := occam.NewRuntime()
	pl := New(rt, nil, 1, nil)
	var secondGetAt occam.Time
	rt.Go("splitter", nil, occam.Low, func(p *occam.Proc) {
		b := pl.Get(p)
		pl.Retain(p, b, 1) // now two references
		// Destination 1 finishes immediately.
		pl.Release(p, b)
		// Destination 2 finishes at 10ms.
		p.Sleep(10 * time.Millisecond)
		pl.Release(p, b)
	})
	rt.Go("other", nil, occam.Low, func(p *occam.Proc) {
		p.Sleep(time.Millisecond)
		pl.Get(p) // must wait for destination 2's release
		secondGetAt = p.Now()
	})
	run(t, rt, time.Second)
	if secondGetAt != occam.Time(10*time.Millisecond) {
		t.Fatalf("buffer recycled at %v, want 10ms (after both releases)", secondGetAt)
	}
}

func TestRetainZeroIsNoop(t *testing.T) {
	rt := occam.NewRuntime()
	pl := New(rt, nil, 1, nil)
	rt.Go("user", nil, occam.Low, func(p *occam.Proc) {
		b := pl.Get(p)
		pl.Retain(p, b, 0)
		pl.Release(p, b)
		pl.Get(p) // immediately available again
	})
	run(t, rt, time.Second)
}

func TestGrantedBufferIsClean(t *testing.T) {
	rt := occam.NewRuntime()
	pl := New(rt, nil, 1, nil)
	var clean bool
	rt.Go("user", nil, occam.Low, func(p *occam.Proc) {
		b := pl.Get(p)
		b.SetPayload(testWireBytes(3))
		b.Stream = 7
		pl.Release(p, b)
		b2 := pl.Get(p)
		clean = b2.Payload.IsZero() && b2.Stream == 0
	})
	run(t, rt, time.Second)
	if !clean {
		t.Fatal("recycled buffer not cleaned")
	}
}

func TestStarvationReport(t *testing.T) {
	rt := occam.NewRuntime()
	reports := occam.NewChan[Report](rt, "reports")
	pl := New(rt, nil, 1, reports)
	var starved bool
	rt.Go("collector", nil, occam.High, func(p *occam.Proc) {
		for {
			r := reports.Recv(p)
			if r.Starved {
				starved = true
			}
		}
	})
	rt.Go("user", nil, occam.Low, func(p *occam.Proc) {
		pl.Get(p)
	})
	run(t, rt, time.Second)
	if !starved {
		t.Fatal("no starvation report when pool drained")
	}
}

func TestStatusReport(t *testing.T) {
	rt := occam.NewRuntime()
	reports := occam.NewChan[Report](rt, "reports")
	pl := New(rt, nil, 3, reports)
	var rep Report
	rt.Go("user", nil, occam.Low, func(p *occam.Proc) {
		pl.Get(p)
		pl.RequestReport(p)
		rep = reports.Recv(p)
	})
	run(t, rt, time.Second)
	if rep.Free != 2 || rep.Total != 3 || rep.Starved {
		t.Fatalf("report %+v", rep)
	}
	if rep.String() == "" || (Report{Starved: true}).String() == "" {
		t.Fatal("empty report strings")
	}
}

func TestRetainThenMultiReleaseOrdering(t *testing.T) {
	// The §3.4 protocol under wire payloads: a buffer fanned out to
	// three holders survives the first two releases with its payload
	// intact, recycles on the third, and only then is re-granted.
	rt := occam.NewRuntime()
	pl := New(rt, nil, 1, nil)
	want := testWireBytes(9)
	var intact [2]bool
	var regrantAt occam.Time
	rt.Go("fanout", nil, occam.Low, func(p *occam.Proc) {
		b := pl.Get(p)
		b.SetPayload(want)
		pl.Retain(p, b, 2) // three references in total
		pl.Release(p, b)   // holder 1 done at t=0
		intact[0] = bytes.Equal(b.Payload.Bytes(), want)
		p.Sleep(5 * time.Millisecond)
		pl.Release(p, b) // holder 2 done at 5ms
		intact[1] = bytes.Equal(b.Payload.Bytes(), want)
		p.Sleep(5 * time.Millisecond)
		pl.Release(p, b) // holder 3 done at 10ms: buffer recycles
	})
	rt.Go("waiter", nil, occam.Low, func(p *occam.Proc) {
		p.Sleep(time.Millisecond)
		pl.Get(p)
		regrantAt = p.Now()
	})
	run(t, rt, time.Second)
	if !intact[0] || !intact[1] {
		t.Fatal("payload corrupted while references remained")
	}
	if regrantAt != occam.Time(10*time.Millisecond) {
		t.Fatalf("buffer re-granted at %v, want 10ms (after the final release)", regrantAt)
	}
}

func TestReleaseAfterStarvationRecovers(t *testing.T) {
	// Drain the pool, queue several blocked requesters, then release:
	// every blocked Get must eventually be served and the starvation
	// counter records the episode.
	rt := occam.NewRuntime()
	pl := New(rt, nil, 2, nil)
	served := 0
	rt.Go("hog", nil, occam.Low, func(p *occam.Proc) {
		a := pl.Get(p)
		b := pl.Get(p)
		p.Sleep(20 * time.Millisecond)
		pl.Release(p, a)
		p.Sleep(20 * time.Millisecond)
		pl.Release(p, b)
	})
	for i := 0; i < 3; i++ {
		rt.Go("blocked", nil, occam.Low, func(p *occam.Proc) {
			p.Sleep(time.Millisecond)
			b := pl.Get(p)
			served++
			pl.Release(p, b)
		})
	}
	run(t, rt, time.Second)
	if served != 3 {
		t.Fatalf("%d blocked requesters served after starvation, want 3", served)
	}
	if pl.Starvations() == 0 {
		t.Fatal("starvation episode not counted")
	}
}

func TestOverReleasePanics(t *testing.T) {
	// Releasing more references than were taken is a protocol bug the
	// allocator refuses to mask. applyRefChange is exercised directly:
	// a panic inside a process goroutine would kill the test binary.
	rt := occam.NewRuntime()
	pl := New(rt, nil, 1, nil)
	rt.Go("user", nil, occam.Low, func(p *occam.Proc) {
		b := pl.Get(p)
		pl.Release(p, b)
	})
	run(t, rt, time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	pl.applyRefChange(refChange{Index: 0, Delta: -1})
}

func TestSizeAndInvalidPool(t *testing.T) {
	rt := occam.NewRuntime()
	pl := New(rt, nil, 5, nil)
	if pl.Size() != 5 {
		t.Fatalf("Size = %d", pl.Size())
	}
	rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size pool accepted")
		}
	}()
	New(occam.NewRuntime(), nil, 0, nil)
}
