// Package allocator implements the server transputer's segment buffer
// allocator of paper §3.4 (figure 3.4): a shared pool of segment
// buffers whose reference counts track how many processes hold each
// buffer. Input handlers obtain empty buffers in advance, fill them,
// and pass buffer *indices* through the rest of the system — data is
// copied "once into memory, and once out for each output device".
//
// The allocator is an Occam process. Its defining behaviour, straight
// from the paper: "If there are no buffers available, then the
// allocator will not listen for any requests, and the requesting
// processes will be descheduled by the usual channel synchronisation
// mechanism until the allocator is ready to receive again. The
// allocator reports this (serious) fault on its report channel so
// that it can be logged."
//
// Reference-count protocol (§3.4): a process must inform the
// allocator when it finishes with a buffer without passing it on
// (decrement) and when it sends a descriptor to more than one other
// process (increment). Passing to exactly one process needs no
// traffic.
package allocator

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/segment"
)

// Buffer is one shared segment buffer.
type Buffer struct {
	// Index is the buffer's identity within the pool — what actually
	// travels between processes on the transputer.
	Index int
	// Payload is an in-place wire view over the buffer's own storage;
	// set it with SetPayload. Processes holding the buffer read header
	// fields and sample data directly from this view — the buffer IS
	// the segment's memory while it is in the server, and the pool's
	// reference counts govern when that memory is reused.
	Payload segment.Wire
	// Stream is the Pandora stream number the segment belongs to
	// ("streams within pandora pass the stream number in an extra
	// field preceding the segment header").
	Stream uint32

	// storage is the buffer's backing memory, reused across grants.
	storage []byte
}

// SetPayload copies the wire bytes of src into the buffer's storage —
// the single copy "into memory" an input handler performs (§3.4) —
// and points Payload at the in-place view. The source wire may be
// released afterwards.
func (b *Buffer) SetPayload(src []byte) {
	if cap(b.storage) < len(src) {
		b.storage = make([]byte, len(src))
	}
	b.storage = b.storage[:len(src)]
	copy(b.storage, src)
	b.Payload = segment.WireOver(b.storage)
}

// Report is an allocator fault or status report.
type Report struct {
	Starved bool // a request arrived while no buffers were free
	Free    int
	Total   int
}

func (r Report) String() string {
	if r.Starved {
		return fmt.Sprintf("allocator: STARVED (%d/%d free)", r.Free, r.Total)
	}
	return fmt.Sprintf("allocator: %d/%d free", r.Free, r.Total)
}

// refChange adjusts a buffer's reference count by Delta.
type refChange struct {
	Index int
	Delta int
}

// waiter is one process blocked in Get while the pool is dry: the
// signal it sleeps on, and the slot the granting Release fills before
// raising it. Waiter records are recycled through a free list.
type waiter struct {
	sig *occam.Signal
	buf *Buffer
}

// Pool is the allocator handle. Create with New, then call
// Get/Retain/Release from Occam processes.
//
// The allocator is passive: grants and reference-count changes are
// zero-virtual-time bookkeeping, so they run inline in the calling
// process instead of rendezvousing with an allocator process. The
// paper's defining starvation behaviour is kept exactly — "If there
// are no buffers available ... the requesting processes will be
// descheduled" — by parking requesters on signals in FIFO order; the
// Release that frees a buffer grants it to the longest-waiting
// requester and wakes it. Only the report protocol (command/report
// channels, like all other Pandora processes) keeps a process.
type Pool struct {
	rt      *occam.Runtime
	bufs    []*Buffer
	refs    []int
	free    []int
	cmd     *occam.Chan[struct{}] // report request
	reports *occam.Chan[Report]

	// waiters are processes descheduled in Get, FIFO. waiterFree
	// recycles waiter records (and their signals).
	waiters    []*waiter
	waiterFree []*waiter

	wasStarved  bool
	starvations uint64
	grants      uint64
	trace       *obs.Tracer
	source      string
}

// New creates a pool of n buffers and starts the report process on
// node. reports may be nil.
func New(rt *occam.Runtime, node *occam.Node, n int, reports *occam.Chan[Report]) *Pool {
	if n <= 0 {
		panic("allocator: pool size must be positive")
	}
	pl := &Pool{
		rt:      rt,
		bufs:    make([]*Buffer, n),
		refs:    make([]int, n),
		free:    make([]int, 0, n),
		cmd:     occam.NewChan[struct{}](rt, "alloc.cmd"),
		reports: reports,
	}
	for i := n - 1; i >= 0; i-- {
		pl.bufs[i] = &Buffer{Index: i}
		pl.free = append(pl.free, i)
	}
	rt.Go("allocator", node, occam.High, pl.run)
	return pl
}

// Observe registers the pool's counters and free-buffer gauge on reg,
// labelled with owner (the box name), and traces starvation episodes.
func (pl *Pool) Observe(reg *obs.Registry, owner string) {
	lb := obs.L("box", owner)
	reg.CounterFunc("allocator_grants_total", func() uint64 { return pl.grants }, lb)
	reg.CounterFunc("allocator_starvations_total", func() uint64 { return pl.starvations }, lb)
	reg.GaugeFunc("allocator_free", func() float64 { return float64(len(pl.free)) }, lb)
	reg.GaugeFunc("allocator_total", func() float64 { return float64(len(pl.bufs)) }, lb)
	pl.trace = reg.Tracer()
	pl.source = owner + ".allocator"
}

// run is the report process: the allocator's command/report channel
// attachment, kept as a process so a report request never blocks the
// requester on the report collector.
func (pl *Pool) run(p *occam.Proc) {
	for {
		pl.cmd.Recv(p)
		if pl.reports != nil {
			pl.reports.Send(p, Report{Free: len(pl.free), Total: len(pl.bufs)})
		}
	}
}

// grant pops a free buffer for the requester (bookkeeping only — the
// caller hands it over) and logs the starvation fault when the pool
// runs dry, exactly as the paper requires.
func (pl *Pool) grant(p *occam.Proc) *Buffer {
	idx := pl.free[len(pl.free)-1]
	pl.free = pl.free[:len(pl.free)-1]
	pl.refs[idx] = 1
	pl.grants++
	buf := pl.bufs[idx]
	buf.Payload = segment.Wire{}
	buf.Stream = 0
	if len(pl.free) == 0 && !pl.wasStarved {
		// The next request will block: log the (serious) fault.
		pl.wasStarved = true
		pl.starvations++
		pl.trace.Emit(obs.EvOverload, pl.source, 0, "buffer pool exhausted")
		if pl.reports != nil {
			pl.reports.TrySend(p, Report{Starved: true, Free: 0, Total: len(pl.bufs)})
		}
	}
	return buf
}

func (pl *Pool) applyRefChange(ch refChange) {
	if ch.Index < 0 || ch.Index >= len(pl.refs) {
		panic(fmt.Sprintf("allocator: ref change for bad index %d", ch.Index))
	}
	pl.refs[ch.Index] += ch.Delta
	switch {
	case pl.refs[ch.Index] < 0:
		panic(fmt.Sprintf("allocator: buffer %d reference count went negative", ch.Index))
	case pl.refs[ch.Index] == 0:
		pl.free = append(pl.free, ch.Index)
	}
}

// Get obtains an empty buffer. While none are free the requesting
// process is descheduled ("by the usual channel synchronisation
// mechanism") until a Release frees one; blocked requesters are served
// oldest first.
func (pl *Pool) Get(p *occam.Proc) *Buffer {
	if len(pl.free) > 0 && len(pl.waiters) == 0 {
		return pl.grant(p)
	}
	var w *waiter
	if n := len(pl.waiterFree); n > 0 {
		w = pl.waiterFree[n-1]
		pl.waiterFree = pl.waiterFree[:n-1]
	} else {
		w = &waiter{sig: occam.NewSignal(pl.rt, "alloc.wait")}
	}
	pl.waiters = append(pl.waiters, w)
	w.sig.Wait(p)
	buf := w.buf
	w.buf = nil
	pl.waiterFree = append(pl.waiterFree, w)
	return buf
}

// wakeWaiter hands a newly freed buffer to the longest-waiting
// requester. The grant bookkeeping runs here, in the releasing
// process, so the freed buffer cannot be stolen before the woken
// requester runs.
func (pl *Pool) wakeWaiter(p *occam.Proc) {
	w := pl.waiters[0]
	copy(pl.waiters, pl.waiters[1:])
	pl.waiters[len(pl.waiters)-1] = nil
	pl.waiters = pl.waiters[:len(pl.waiters)-1]
	w.buf = pl.grant(p)
	w.sig.Raise()
}

// Retain adds extra references before a buffer descriptor is sent to
// more than one downstream process ("to increment the reference
// count").
func (pl *Pool) Retain(p *occam.Proc, b *Buffer, extra int) {
	if extra <= 0 {
		return
	}
	pl.applyRefChange(refChange{Index: b.Index, Delta: extra})
}

// Release drops one reference when a process has finished with a
// buffer without passing it on. At zero references the buffer returns
// to the free list — or goes straight to a starved requester.
func (pl *Pool) Release(p *occam.Proc, b *Buffer) {
	pl.applyRefChange(refChange{Index: b.Index, Delta: -1})
	if len(pl.free) > 0 {
		if pl.wasStarved {
			pl.wasStarved = false
			pl.trace.Emit(obs.EvRecover, pl.source, 0, "buffers free again")
		}
		if len(pl.waiters) > 0 {
			pl.wakeWaiter(p)
		}
	}
}

// RequestReport asks the allocator to emit a status report.
func (pl *Pool) RequestReport(p *occam.Proc) {
	pl.cmd.Send(p, struct{}{})
}

// Size returns the pool size.
func (pl *Pool) Size() int { return len(pl.bufs) }

// Starvations returns how many times the pool ran dry.
func (pl *Pool) Starvations() uint64 { return pl.starvations }
