// Package allocator implements the server transputer's segment buffer
// allocator of paper §3.4 (figure 3.4): a shared pool of segment
// buffers whose reference counts track how many processes hold each
// buffer. Input handlers obtain empty buffers in advance, fill them,
// and pass buffer *indices* through the rest of the system — data is
// copied "once into memory, and once out for each output device".
//
// The allocator is an Occam process. Its defining behaviour, straight
// from the paper: "If there are no buffers available, then the
// allocator will not listen for any requests, and the requesting
// processes will be descheduled by the usual channel synchronisation
// mechanism until the allocator is ready to receive again. The
// allocator reports this (serious) fault on its report channel so
// that it can be logged."
//
// Reference-count protocol (§3.4): a process must inform the
// allocator when it finishes with a buffer without passing it on
// (decrement) and when it sends a descriptor to more than one other
// process (increment). Passing to exactly one process needs no
// traffic.
package allocator

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/occam"
	"repro/internal/segment"
)

// Buffer is one shared segment buffer.
type Buffer struct {
	// Index is the buffer's identity within the pool — what actually
	// travels between processes on the transputer.
	Index int
	// Payload is an in-place wire view over the buffer's own storage;
	// set it with SetPayload. Processes holding the buffer read header
	// fields and sample data directly from this view — the buffer IS
	// the segment's memory while it is in the server, and the pool's
	// reference counts govern when that memory is reused.
	Payload segment.Wire
	// Stream is the Pandora stream number the segment belongs to
	// ("streams within pandora pass the stream number in an extra
	// field preceding the segment header").
	Stream uint32

	// storage is the buffer's backing memory, reused across grants.
	storage []byte
}

// SetPayload copies the wire bytes of src into the buffer's storage —
// the single copy "into memory" an input handler performs (§3.4) —
// and points Payload at the in-place view. The source wire may be
// released afterwards.
func (b *Buffer) SetPayload(src []byte) {
	if cap(b.storage) < len(src) {
		b.storage = make([]byte, len(src))
	}
	b.storage = b.storage[:len(src)]
	copy(b.storage, src)
	b.Payload = segment.WireOver(b.storage)
}

// Report is an allocator fault or status report.
type Report struct {
	Starved bool // a request arrived while no buffers were free
	Free    int
	Total   int
}

func (r Report) String() string {
	if r.Starved {
		return fmt.Sprintf("allocator: STARVED (%d/%d free)", r.Free, r.Total)
	}
	return fmt.Sprintf("allocator: %d/%d free", r.Free, r.Total)
}

// refChange adjusts a buffer's reference count by Delta.
type refChange struct {
	Index int
	Delta int
}

// Pool is the allocator process handle. Create with New, then call
// Get/Retain/Release from Occam processes.
type Pool struct {
	rt      *occam.Runtime
	bufs    []*Buffer
	refs    []int
	free    []int
	req     *occam.Chan[*occam.Chan[*Buffer]]
	rel     *occam.Chan[refChange]
	cmd     *occam.Chan[struct{}] // report request
	reports *occam.Chan[Report]

	// replyFree recycles Get reply channels. A channel leaves the list
	// for the whole request/grant exchange and returns once the grant
	// is received, so no two concurrent Gets share one. User code is
	// serialised by the runtime, so the list needs no locking.
	replyFree []*occam.Chan[*Buffer]

	starvations uint64
	grants      uint64
	trace       *obs.Tracer
	source      string
}

// New creates a pool of n buffers and starts the allocator process on
// node. reports may be nil.
func New(rt *occam.Runtime, node *occam.Node, n int, reports *occam.Chan[Report]) *Pool {
	if n <= 0 {
		panic("allocator: pool size must be positive")
	}
	pl := &Pool{
		rt:      rt,
		bufs:    make([]*Buffer, n),
		refs:    make([]int, n),
		free:    make([]int, 0, n),
		req:     occam.NewChan[*occam.Chan[*Buffer]](rt, "alloc.req"),
		rel:     occam.NewChan[refChange](rt, "alloc.rel"),
		cmd:     occam.NewChan[struct{}](rt, "alloc.cmd"),
		reports: reports,
	}
	for i := n - 1; i >= 0; i-- {
		pl.bufs[i] = &Buffer{Index: i}
		pl.free = append(pl.free, i)
	}
	rt.Go("allocator", node, occam.High, pl.run)
	return pl
}

// Observe registers the pool's counters and free-buffer gauge on reg,
// labelled with owner (the box name), and traces starvation episodes.
func (pl *Pool) Observe(reg *obs.Registry, owner string) {
	lb := obs.L("box", owner)
	reg.CounterFunc("allocator_grants_total", func() uint64 { return pl.grants }, lb)
	reg.CounterFunc("allocator_starvations_total", func() uint64 { return pl.starvations }, lb)
	reg.GaugeFunc("allocator_free", func() float64 { return float64(len(pl.free)) }, lb)
	reg.GaugeFunc("allocator_total", func() float64 { return float64(len(pl.bufs)) }, lb)
	pl.trace = reg.Tracer()
	pl.source = owner + ".allocator"
}

// run is the allocator process: reference-count changes are always
// served; requests only when buffers are free.
func (pl *Pool) run(p *occam.Proc) {
	wasStarved := false
	var (
		ch     refChange
		reply  *occam.Chan[*Buffer]
		report struct{}
	)
	// "If there are no buffers available, then the allocator will not
	// listen for any requests": the request guard's condition tracks
	// the free list. Guards are hoisted out of the loop and reused.
	haveFree := occam.NewCond(occam.Recv(pl.req, &reply))
	guards := []occam.Guard{
		occam.Recv(pl.rel, &ch),
		occam.Recv(pl.cmd, &report),
		haveFree,
	}
	for {
		haveFree.Set(len(pl.free) > 0)
		switch p.Alt(guards...) {
		case 0:
			pl.applyRefChange(ch)
			if wasStarved && len(pl.free) > 0 {
				wasStarved = false
				pl.trace.Emit(obs.EvRecover, pl.source, 0, "buffers free again")
			}
		case 1:
			if pl.reports != nil {
				pl.reports.Send(p, Report{Free: len(pl.free), Total: len(pl.bufs)})
			}
		case 2:
			idx := pl.free[len(pl.free)-1]
			pl.free = pl.free[:len(pl.free)-1]
			pl.refs[idx] = 1
			pl.grants++
			buf := pl.bufs[idx]
			buf.Payload = segment.Wire{}
			buf.Stream = 0
			reply.Send(p, buf)
			if len(pl.free) == 0 && !wasStarved {
				// The next request will block: log the fault.
				wasStarved = true
				pl.starvations++
				pl.trace.Emit(obs.EvOverload, pl.source, 0, "buffer pool exhausted")
				if pl.reports != nil {
					pl.reports.TrySend(p, Report{Starved: true, Free: 0, Total: len(pl.bufs)})
				}
			}
		}
	}
}

func (pl *Pool) applyRefChange(ch refChange) {
	if ch.Index < 0 || ch.Index >= len(pl.refs) {
		panic(fmt.Sprintf("allocator: ref change for bad index %d", ch.Index))
	}
	pl.refs[ch.Index] += ch.Delta
	switch {
	case pl.refs[ch.Index] < 0:
		panic(fmt.Sprintf("allocator: buffer %d reference count went negative", ch.Index))
	case pl.refs[ch.Index] == 0:
		pl.free = append(pl.free, ch.Index)
	}
}

// Get obtains an empty buffer, blocking while none are free. Reply
// channels are recycled on a free list rather than allocated per call.
func (pl *Pool) Get(p *occam.Proc) *Buffer {
	var reply *occam.Chan[*Buffer]
	if n := len(pl.replyFree); n > 0 {
		reply = pl.replyFree[n-1]
		pl.replyFree = pl.replyFree[:n-1]
	} else {
		reply = occam.NewChan[*Buffer](pl.rt, "alloc.reply")
	}
	pl.req.Send(p, reply)
	buf := reply.Recv(p)
	pl.replyFree = append(pl.replyFree, reply)
	return buf
}

// Retain adds extra references before a buffer descriptor is sent to
// more than one downstream process ("to increment the reference
// count").
func (pl *Pool) Retain(p *occam.Proc, b *Buffer, extra int) {
	if extra <= 0 {
		return
	}
	pl.rel.Send(p, refChange{Index: b.Index, Delta: extra})
}

// Release drops one reference when a process has finished with a
// buffer without passing it on. At zero references the buffer returns
// to the free list.
func (pl *Pool) Release(p *occam.Proc, b *Buffer) {
	pl.rel.Send(p, refChange{Index: b.Index, Delta: -1})
}

// RequestReport asks the allocator to emit a status report.
func (pl *Pool) RequestReport(p *occam.Proc) {
	pl.cmd.Send(p, struct{}{})
}

// Size returns the pool size.
func (pl *Pool) Size() int { return len(pl.bufs) }

// Starvations returns how many times the pool ran dry.
func (pl *Pool) Starvations() uint64 { return pl.starvations }
