// Package faultinject is the deterministic fault layer: seedable
// processes that inject the failures the paper's environment suffered
// — ATM cell loss in bursts, payload corruption, duplicate delivery,
// link jitter and stalls, stuck sink channels, and board
// crash-and-restart — so the overload and recovery machinery
// (internal/degrade, the clawback buffers, the switch's shed paths)
// can be provoked on demand and regression-tested.
//
// The package makes *decisions only*: a fault process answers "drop
// this message?", "is this board down now?"; the component hosting the
// hook (an atm.Link, a box board, a decoupling buffer) owns the
// counters and trace events, so every injected fault is visible in the
// obs registry without this package importing any of them. Decisions
// are pure functions of a seed and the (virtual-time-deterministic)
// call sequence, so the same seed always reproduces the same fault
// schedule — the property the replay tests assert.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/atm"
	"repro/internal/occam"
	"repro/internal/workload"
)

// Window is one outage interval in virtual time since the start of
// the run: [From, To).
type Window struct {
	From, To time.Duration
}

// Contains reports whether now falls inside the window.
func (w Window) Contains(now occam.Time) bool {
	t := time.Duration(now)
	return t >= w.From && t < w.To
}

// LinkConfig parameterises one link's fault process. The zero value
// injects nothing.
type LinkConfig struct {
	// BurstEnter is the per-message probability of entering a loss
	// burst; while in a burst every message is dropped (Gilbert-style
	// correlated cell loss, the pattern a congested ATM switch
	// produces).
	BurstEnter float64
	// BurstLen is the mean burst length in messages (default 4 when
	// BurstEnter is set).
	BurstLen int
	// Corrupt is the per-message probability of flagging the payload
	// corrupt; the receiver discards the segment (§3.8).
	Corrupt float64
	// Duplicate is the per-message probability of enqueuing a second
	// copy (a misbehaving switch fabric).
	Duplicate float64
	// JitterMean/JitterStddev shape extra per-message delay; negative
	// samples clamp to zero, so a zero mean with a positive stddev
	// gives a half-normal jitter tail.
	JitterMean   time.Duration
	JitterStddev time.Duration
	// Stalls are explicit transmitter outage windows.
	Stalls []Window
	// StallEvery/StallFor add a periodic outage: the first StallFor of
	// every StallEvery period, indefinitely.
	StallEvery time.Duration
	StallFor   time.Duration
	// Seed seeds the decision process (0 is remapped by workload.RNG).
	Seed uint64
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.BurstEnter > 0 && c.BurstLen <= 0 {
		c.BurstLen = 4
	}
	return c
}

// active reports whether the config injects anything at all.
func (c LinkConfig) active() bool {
	return c.BurstEnter > 0 || c.Corrupt > 0 || c.Duplicate > 0 ||
		c.JitterMean > 0 || c.JitterStddev > 0 ||
		len(c.Stalls) > 0 || (c.StallEvery > 0 && c.StallFor > 0)
}

// Link is a per-link fault process implementing atm.FaultHook. One
// Link must serve exactly one atm link: the burst state and RNG
// sequence are per-instance.
type Link struct {
	cfg       LinkConfig
	rng       *workload.RNG
	burstLeft int
}

// NewLink returns a fault process for one link.
func NewLink(cfg LinkConfig) *Link {
	cfg = cfg.withDefaults()
	return &Link{cfg: cfg, rng: workload.NewRNG(cfg.Seed)}
}

// OnMessage decides this message's fate. The RNG is consumed in a
// fixed order (burst, corrupt, duplicate, jitter), so the schedule
// depends only on the seed and the message sequence.
func (l *Link) OnMessage(now occam.Time, vci uint32, size int) atm.FaultAction {
	var act atm.FaultAction
	if l.burstLeft > 0 {
		l.burstLeft--
		act.Drop, act.Reason = true, "burst-loss"
		return act
	}
	if l.cfg.BurstEnter > 0 && l.rng.Bool(l.cfg.BurstEnter) {
		// Mean-BurstLen geometric-ish burst: this message plus up to
		// 2·mean−2 more.
		l.burstLeft = l.rng.Intn(2*l.cfg.BurstLen - 1)
		act.Drop, act.Reason = true, "burst-loss"
		return act
	}
	if l.cfg.Corrupt > 0 && l.rng.Bool(l.cfg.Corrupt) {
		act.Corrupt = true
	}
	if l.cfg.Duplicate > 0 && l.rng.Bool(l.cfg.Duplicate) {
		act.Duplicate = true
	}
	if l.cfg.JitterMean > 0 || l.cfg.JitterStddev > 0 {
		d := l.rng.Norm(float64(l.cfg.JitterMean), float64(l.cfg.JitterStddev))
		if d > 0 {
			act.Delay = time.Duration(d)
		}
	}
	return act
}

// StallUntil returns the end of the outage covering now, or zero.
func (l *Link) StallUntil(now occam.Time) occam.Time {
	for _, w := range l.cfg.Stalls {
		if w.Contains(now) {
			return occam.Time(w.To)
		}
	}
	if l.cfg.StallEvery > 0 && l.cfg.StallFor > 0 {
		phase := time.Duration(int64(now) % int64(l.cfg.StallEvery))
		if phase < l.cfg.StallFor {
			return now.Add(l.cfg.StallFor - phase)
		}
	}
	return 0
}

// Boards is a crash-and-restart schedule for a box's transputer
// boards: while a board is down its input processes discard everything
// they receive (the data path keeps draining so a restart finds clean
// channels, as the real box's watchdog restart did). Nil-receiver
// safe, so boxes consult it unconditionally.
type Boards struct {
	windows map[string][]Window
}

// NewBoards returns an empty crash schedule.
func NewBoards() *Boards { return &Boards{windows: make(map[string][]Window)} }

// Crash schedules an outage for the named board ("server", "audio",
// "display") and returns the receiver for chaining.
func (b *Boards) Crash(board string, from, to time.Duration) *Boards {
	b.windows[board] = append(b.windows[board], Window{From: from, To: to})
	return b
}

// Down reports whether the named board is crashed at now.
func (b *Boards) Down(board string, now occam.Time) bool {
	if b == nil {
		return false
	}
	for _, w := range b.windows[board] {
		if w.Contains(now) {
			return true
		}
	}
	return false
}

// Stalls converts outage windows into the stall callback a decoupling
// buffer takes via decouple.WithStall: a stuck sink channel (a wedged
// output device) that resumes when the window closes.
func Stalls(windows []Window) func(now occam.Time) occam.Time {
	ws := append([]Window(nil), windows...)
	return func(now occam.Time) occam.Time {
		for _, w := range ws {
			if w.Contains(now) {
				return occam.Time(w.To)
			}
		}
		return 0
	}
}

// BlockCorruption is a destination-side corruption process for
// clawback buffers (clawback.Config.Fault): each arriving block is
// independently discarded with the given rate.
type BlockCorruption struct {
	rng  *workload.RNG
	rate float64
}

// NewBlockCorruption returns a block-corruption process.
func NewBlockCorruption(rate float64, seed uint64) *BlockCorruption {
	return &BlockCorruption{rng: workload.NewRNG(seed), rate: rate}
}

// Hit reports whether the current block is corrupted.
func (c *BlockCorruption) Hit() bool { return c.rng.Bool(c.rate) }

// Spec is a parsed pandora-sim -faults specification: which canned
// faults to inject, all derived deterministically from one seed.
type Spec struct {
	// Link is the per-link fault template; LinkFault derives one
	// seeded instance per link name.
	Link LinkConfig
	// SinkStalls are outage windows for every box's net-video
	// decoupling buffer (a stuck sink channel).
	SinkStalls []Window
	// Crashes maps board name to outage windows, applied to the first
	// box (alphabetically) of the simulation.
	Crashes map[string][]Window
	// Target, when non-empty, restricts link faults to links and fabric
	// ports whose name starts with it ("a-b" hits one link pair,
	// "fab.p03" one port, "fab." a whole fabric). Empty targets
	// everything, as before.
	Target string
	// Seed is the spec's master seed.
	Seed uint64
}

// Active reports whether the spec injects anything.
func (s Spec) Active() bool {
	return s.Link.active() || len(s.SinkStalls) > 0 || len(s.Crashes) > 0
}

// LinkFault returns a fault process for the named link, or nil when
// the spec has no link faults. The per-link seed folds the link name
// into the master seed so parallel links get independent — but still
// reproducible — schedules.
func (s Spec) LinkFault(name string) *Link {
	if !s.Link.active() {
		return nil
	}
	if s.Target != "" && !strings.HasPrefix(name, s.Target) {
		return nil
	}
	cfg := s.Link
	cfg.Seed = DeriveSeed(s.Seed, name)
	return NewLink(cfg)
}

// Boards returns the spec's crash schedule, or nil when none.
func (s Spec) Boards() *Boards {
	if len(s.Crashes) == 0 {
		return nil
	}
	b := NewBoards()
	for board, ws := range s.Crashes {
		for _, w := range ws {
			b.Crash(board, w.From, w.To)
		}
	}
	return b
}

// DeriveSeed folds a name into a master seed (FNV-1a), giving each
// named component an independent deterministic RNG stream.
func DeriveSeed(seed uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h ^ seed
}

// ParseSpec parses a comma-separated fault list (the pandora-sim
// -faults flag and the scenario-file "faults" directive): any of
// "loss", "corrupt", "dup", "jitter", "stall" (periodic link
// outages), "sink" (stuck net-video sink windows) and "crash"
// (server-board crash-and-restart), or "all", plus "target=<prefix>"
// to confine the link faults to links or fabric ports whose name
// starts with the prefix. The canned parameters are chosen to visibly
// stress a few-second conference run without silencing it.
//
// Each canned word also has a parameterised form, so a scenario file
// can state exact rates instead of the canned ones:
//
//	burst=P[/L]      loss-burst entry probability P, mean length L
//	corrupt=P        per-message corruption probability
//	dup=P            per-message duplication probability
//	jitter=M[/S]     extra delay, mean M and stddev S (durations)
//	stall=E/F        periodic outage: the first F of every E
//	stallwin=F-T     one explicit outage window (repeatable)
//	sink=F-T         one sink-stall window (repeatable)
//	crash=B:F-T      one crash window for board B (repeatable)
//	seed=N           override the master seed
//
// Parse errors name the offending token and its position in the list.
func ParseSpec(list string, seed uint64) (Spec, error) {
	s := Spec{Seed: seed}
	if strings.TrimSpace(list) == "" {
		return s, nil
	}
	offset := 0
	for i, raw := range strings.Split(list, ",") {
		tok := strings.TrimSpace(raw)
		if err := s.applyToken(tok); err != nil {
			return Spec{}, fmt.Errorf("faultinject: token %d (%q) at char %d: %w",
				i+1, tok, offset+countLeadingSpace(raw), err)
		}
		offset += len(raw) + 1 // the comma
	}
	return s, nil
}

func countLeadingSpace(s string) int { return len(s) - len(strings.TrimLeft(s, " \t")) }

// applyToken folds one grammar token into the spec.
func (s *Spec) applyToken(tok string) error {
	if key, val, ok := strings.Cut(tok, "="); ok {
		return s.applyParam(key, val)
	}
	switch tok {
	case "loss":
		s.Link.BurstEnter, s.Link.BurstLen = 0.01, 4
	case "corrupt":
		s.Link.Corrupt = 0.01
	case "dup":
		s.Link.Duplicate = 0.005
	case "jitter":
		s.Link.JitterMean, s.Link.JitterStddev = time.Millisecond, 2*time.Millisecond
	case "stall":
		s.Link.StallEvery, s.Link.StallFor = time.Second, 150*time.Millisecond
	case "sink":
		s.SinkStalls = []Window{
			{From: time.Second, To: 1200 * time.Millisecond},
			{From: 3 * time.Second, To: 3200 * time.Millisecond},
		}
	case "crash":
		s.crash("server", Window{From: 1500 * time.Millisecond, To: 2 * time.Second})
	case "all":
		s.Link.BurstEnter, s.Link.BurstLen = 0.01, 4
		s.Link.Corrupt = 0.01
		s.Link.Duplicate = 0.005
		s.Link.JitterMean, s.Link.JitterStddev = time.Millisecond, 2*time.Millisecond
	case "":
	default:
		return fmt.Errorf("unknown fault %q (want loss, corrupt, dup, jitter, stall, sink, crash or all)", tok)
	}
	return nil
}

// applyParam folds one key=value token into the spec.
func (s *Spec) applyParam(key, val string) error {
	switch key {
	case "target":
		s.Target = val
		return nil
	case "seed":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("seed wants an unsigned integer, got %q", val)
		}
		s.Seed = n
		return nil
	case "burst":
		p, l, split := strings.Cut(val, "/")
		prob, err := parseProb(p)
		if err != nil {
			return err
		}
		s.Link.BurstEnter = prob
		if split {
			n, err := strconv.Atoi(l)
			if err != nil || n < 1 {
				return fmt.Errorf("burst length wants a positive integer, got %q", l)
			}
			s.Link.BurstLen = n
		}
		return nil
	case "corrupt":
		prob, err := parseProb(val)
		if err != nil {
			return err
		}
		s.Link.Corrupt = prob
		return nil
	case "dup":
		prob, err := parseProb(val)
		if err != nil {
			return err
		}
		s.Link.Duplicate = prob
		return nil
	case "jitter":
		m, sd, split := strings.Cut(val, "/")
		mean, err := time.ParseDuration(m)
		if err != nil {
			return fmt.Errorf("jitter mean: %q is not a duration", m)
		}
		s.Link.JitterMean = mean
		if split {
			stddev, err := time.ParseDuration(sd)
			if err != nil {
				return fmt.Errorf("jitter stddev: %q is not a duration", sd)
			}
			s.Link.JitterStddev = stddev
		}
		return nil
	case "stall":
		e, f, split := strings.Cut(val, "/")
		if !split {
			return fmt.Errorf("stall wants EVERY/FOR durations, got %q", val)
		}
		every, err := time.ParseDuration(e)
		if err != nil {
			return fmt.Errorf("stall period: %q is not a duration", e)
		}
		dur, err := time.ParseDuration(f)
		if err != nil {
			return fmt.Errorf("stall length: %q is not a duration", f)
		}
		s.Link.StallEvery, s.Link.StallFor = every, dur
		return nil
	case "stallwin":
		w, err := ParseWindow(val)
		if err != nil {
			return err
		}
		s.Link.Stalls = append(s.Link.Stalls, w)
		return nil
	case "sink":
		w, err := ParseWindow(val)
		if err != nil {
			return err
		}
		s.SinkStalls = append(s.SinkStalls, w)
		return nil
	case "crash":
		board, win, split := strings.Cut(val, ":")
		if !split || board == "" {
			return fmt.Errorf("crash wants BOARD:FROM-TO, got %q", val)
		}
		w, err := ParseWindow(win)
		if err != nil {
			return err
		}
		s.crash(board, w)
		return nil
	default:
		return fmt.Errorf("unknown fault parameter %q (want burst, corrupt, dup, jitter, stall, stallwin, sink, crash, target or seed)", key)
	}
}

func (s *Spec) crash(board string, w Window) {
	if s.Crashes == nil {
		s.Crashes = make(map[string][]Window)
	}
	s.Crashes[board] = append(s.Crashes[board], w)
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability wants a number in [0,1], got %q", v)
	}
	return p, nil
}

// ParseWindow parses "FROM-TO" into a Window of two durations with
// From < To.
func ParseWindow(v string) (Window, error) {
	f, t, ok := strings.Cut(v, "-")
	if !ok {
		return Window{}, fmt.Errorf("window wants FROM-TO durations, got %q", v)
	}
	from, err := time.ParseDuration(f)
	if err != nil {
		return Window{}, fmt.Errorf("window start: %q is not a duration", f)
	}
	to, err := time.ParseDuration(t)
	if err != nil {
		return Window{}, fmt.Errorf("window end: %q is not a duration", t)
	}
	if to <= from {
		return Window{}, fmt.Errorf("window %q ends before it starts", v)
	}
	return Window{From: from, To: to}, nil
}

// FormatSpec renders a spec back into the ParseSpec grammar, always in
// the parameterised forms, such that ParseSpec(FormatSpec(s), s.Seed)
// reproduces s (for specs whose Link.Seed is zero — the template seed
// is never used; LinkFault derives per-link seeds from Spec.Seed).
func FormatSpec(s Spec) string {
	var toks []string
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	win := func(w Window) string { return w.From.String() + "-" + w.To.String() }
	l := s.Link
	if l.BurstEnter > 0 {
		tok := "burst=" + num(l.BurstEnter)
		if l.BurstLen > 0 {
			tok += "/" + strconv.Itoa(l.BurstLen)
		}
		toks = append(toks, tok)
	}
	if l.Corrupt > 0 {
		toks = append(toks, "corrupt="+num(l.Corrupt))
	}
	if l.Duplicate > 0 {
		toks = append(toks, "dup="+num(l.Duplicate))
	}
	if l.JitterMean > 0 || l.JitterStddev > 0 {
		toks = append(toks, "jitter="+l.JitterMean.String()+"/"+l.JitterStddev.String())
	}
	if l.StallEvery > 0 && l.StallFor > 0 {
		toks = append(toks, "stall="+l.StallEvery.String()+"/"+l.StallFor.String())
	}
	for _, w := range l.Stalls {
		toks = append(toks, "stallwin="+win(w))
	}
	for _, w := range s.SinkStalls {
		toks = append(toks, "sink="+win(w))
	}
	boards := make([]string, 0, len(s.Crashes))
	for b := range s.Crashes {
		boards = append(boards, b)
	}
	sort.Strings(boards)
	for _, b := range boards {
		for _, w := range s.Crashes[b] {
			toks = append(toks, "crash="+b+":"+win(w))
		}
	}
	if s.Target != "" {
		toks = append(toks, "target="+s.Target)
	}
	return strings.Join(toks, ",")
}
