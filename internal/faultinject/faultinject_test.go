package faultinject

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/occam"
)

func schedule(seed uint64, n int) []atm.FaultAction {
	l := NewLink(LinkConfig{
		BurstEnter:   0.05,
		BurstLen:     3,
		Corrupt:      0.05,
		Duplicate:    0.05,
		JitterMean:   time.Millisecond,
		JitterStddev: time.Millisecond,
		Seed:         seed,
	})
	out := make([]atm.FaultAction, n)
	for i := range out {
		out[i] = l.OnMessage(occam.Time(i)*occam.Time(time.Millisecond), 1000, 1024)
	}
	return out
}

// The defining property: the same seed replays the exact same fault
// schedule, a different seed gives a different one.
func TestLinkScheduleDeterministic(t *testing.T) {
	a, b := schedule(7, 2000), schedule(7, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := schedule(8, 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 2000-message schedules")
	}
}

func TestBurstsAreBursts(t *testing.T) {
	l := NewLink(LinkConfig{BurstEnter: 0.01, BurstLen: 4, Seed: 3})
	drops, runs, inRun := 0, 0, false
	for i := 0; i < 20000; i++ {
		act := l.OnMessage(0, 1, 512)
		if act.Drop {
			drops++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if drops == 0 || runs == 0 {
		t.Fatalf("no bursts fired: drops=%d runs=%d", drops, runs)
	}
	if mean := float64(drops) / float64(runs); mean < 2 {
		t.Fatalf("bursts too short to be correlated loss: mean run %.2f", mean)
	}
}

func TestStallUntil(t *testing.T) {
	l := NewLink(LinkConfig{
		Stalls:     []Window{{From: 10 * time.Millisecond, To: 20 * time.Millisecond}},
		StallEvery: time.Second,
		StallFor:   100 * time.Millisecond,
	})
	at := func(d time.Duration) occam.Time { return occam.Time(d) }
	if got := l.StallUntil(at(15 * time.Millisecond)); got != at(20*time.Millisecond) {
		t.Fatalf("window stall: got %v", got)
	}
	if got := l.StallUntil(at(1030 * time.Millisecond)); got != at(1100*time.Millisecond) {
		t.Fatalf("periodic stall: got %v", got)
	}
	if got := l.StallUntil(at(500 * time.Millisecond)); got != 0 {
		t.Fatalf("no stall expected mid-period: got %v", got)
	}
}

func TestBoardsDown(t *testing.T) {
	var nilBoards *Boards
	if nilBoards.Down("server", 0) {
		t.Fatal("nil Boards must report up")
	}
	b := NewBoards().Crash("server", time.Second, 2*time.Second)
	if b.Down("server", occam.Time(999*time.Millisecond)) {
		t.Fatal("down before window")
	}
	if !b.Down("server", occam.Time(1500*time.Millisecond)) {
		t.Fatal("up inside window")
	}
	if b.Down("audio", occam.Time(1500*time.Millisecond)) {
		t.Fatal("wrong board down")
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("loss,jitter,crash", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Active() || s.Link.BurstEnter == 0 || s.Link.JitterStddev == 0 || s.Boards() == nil {
		t.Fatalf("spec not assembled: %+v", s)
	}
	if s.LinkFault("a-b.0") == nil {
		t.Fatal("link fault missing")
	}
	if DeriveSeed(42, "a-b.0") == DeriveSeed(42, "b-a.0") {
		t.Fatal("per-link seeds collide")
	}
	if _, err := ParseSpec("bogus", 1); err == nil {
		t.Fatal("unknown token accepted")
	}
	if s, err := ParseSpec("", 1); err != nil || s.Active() {
		t.Fatal("empty spec must be inactive")
	}
}
