package mulaw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSilenceCode(t *testing.T) {
	if Encode(0) != Silence {
		t.Fatalf("Encode(0) = %#x, want %#x", Encode(0), Silence)
	}
	if Decode(Silence) != 0 {
		t.Fatalf("Decode(Silence) = %d, want 0", Decode(Silence))
	}
}

func TestKnownValues(t *testing.T) {
	// Reference points of G.711 µ-law.
	cases := []struct {
		linear int16
		code   byte
	}{
		{0, 0xFF},
		{8, 0xFE},
		{-8, 0x7E},
		{32124, 0x80},  // max magnitude positive
		{-32124, 0x00}, // max magnitude negative
	}
	for _, c := range cases {
		if got := Encode(c.linear); got != c.code {
			t.Errorf("Encode(%d) = %#02x, want %#02x", c.linear, got, c.code)
		}
		if got := Decode(c.code); got != c.linear {
			t.Errorf("Decode(%#02x) = %d, want %d", c.code, got, c.linear)
		}
	}
}

func TestRoundTripMonotone(t *testing.T) {
	// Decode(Encode(x)) must be close to x (µ-law quantisation error
	// is bounded by half the step size, which grows with amplitude).
	for x := -32768; x <= 32767; x += 7 {
		y := int32(Decode(Encode(int16(x))))
		err := math.Abs(float64(y - int32(x)))
		mag := math.Abs(float64(x))
		bound := 4 + mag/16 // generous step-size bound
		if err > bound {
			t.Fatalf("round trip of %d gave %d (err %.0f > bound %.0f)", x, y, err, bound)
		}
	}
}

func TestEncodeIdempotentOnDecoded(t *testing.T) {
	// Every µ-law code must survive decode→encode exactly, except
	// negative zero (0x7F), which canonicalises to positive zero.
	for i := 0; i < 256; i++ {
		b := byte(i)
		got := Encode(Decode(b))
		if b == 0x7F {
			if got != Silence {
				t.Fatalf("negative zero re-encoded to %#02x, want %#02x", got, Silence)
			}
			continue
		}
		if got != b {
			t.Fatalf("Encode(Decode(%#02x)) = %#02x", b, got)
		}
	}
}

func TestQuickSignPreserved(t *testing.T) {
	f := func(x int16) bool {
		y := Decode(Encode(x))
		switch {
		case x > 3:
			return y > 0
		case x < -3:
			return y < 0
		default:
			return true // tiny values may round to zero
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMonotoneNonDecreasing(t *testing.T) {
	f := func(a, b int16) bool {
		if a > b {
			a, b = b, a
		}
		return Decode(Encode(a)) <= Decode(Encode(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceHelpers(t *testing.T) {
	src := []int16{0, 100, -100, 5000, -5000}
	enc := make([]byte, len(src))
	if n := EncodeSlice(enc, src); n != len(src) {
		t.Fatalf("EncodeSlice n=%d", n)
	}
	dec := make([]int16, len(src))
	if n := DecodeSlice(dec, enc); n != len(src) {
		t.Fatalf("DecodeSlice n=%d", n)
	}
	for i := range src {
		if Decode(Encode(src[i])) != dec[i] {
			t.Fatalf("slice round trip differs at %d", i)
		}
	}
}

func TestScaleTableUnity(t *testing.T) {
	unity := NewScaleTable(1.0)
	for i := 0; i < 256; i++ {
		if byte(i) == 0x7F {
			continue // negative zero canonicalises to 0xFF
		}
		if unity[i] != byte(i) {
			t.Fatalf("unity table changes %#02x to %#02x", i, unity[i])
		}
	}
}

func TestScaleTableHalves(t *testing.T) {
	half := NewScaleTable(0.5)
	for _, x := range []int16{1000, 4000, -2000, 16000} {
		in := Encode(x)
		out := Decode(half[in])
		want := float64(Decode(in)) / 2
		if math.Abs(float64(out)-want) > math.Abs(want)/8+8 {
			t.Fatalf("half-scale of %d gave %d, want ~%.0f", Decode(in), out, want)
		}
	}
}

func TestScaleTableApply(t *testing.T) {
	mute := NewScaleTable(0.2)
	buf := []byte{Encode(10000), Encode(-10000)}
	mute.Apply(buf)
	if v := Decode(buf[0]); v < 1500 || v > 2500 {
		t.Fatalf("0.2 scale of 10000 gave %d", v)
	}
	if v := Decode(buf[1]); v > -1500 || v < -2500 {
		t.Fatalf("0.2 scale of -10000 gave %d", v)
	}
}

func TestScaleTableZeroSilences(t *testing.T) {
	zero := NewScaleTable(0)
	for i := 0; i < 256; i++ {
		if Decode(zero[i]) != 0 {
			t.Fatalf("zero table leaves %#02x audible", i)
		}
	}
}

func TestPeak(t *testing.T) {
	buf := []byte{Encode(100), Encode(-8000), Encode(300)}
	p := Peak(buf)
	want := Decode(Encode(-8000))
	if p != -int32(want) {
		t.Fatalf("Peak = %d, want %d", p, -want)
	}
	if Peak(nil) != 0 {
		t.Fatal("Peak(nil) != 0")
	}
}

func TestEnergy(t *testing.T) {
	silent := []byte{Silence, Silence}
	if Energy(silent) != 0 {
		t.Fatal("silence has energy")
	}
	loud := []byte{Encode(20000), Encode(-20000)}
	if Energy(loud) <= Energy([]byte{Encode(100), Encode(-100)}) {
		t.Fatal("louder signal has less energy")
	}
	if Energy(nil) != 0 {
		t.Fatal("Energy(nil) != 0")
	}
}
