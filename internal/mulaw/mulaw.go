// Package mulaw implements the 8-bit µ-law audio codec used by the
// Pandora audio board (paper §3.2: "Audio is sampled by a standard
// 8-bit µ-law codec at 125µs intervals") and the scaling lookup
// tables used by the muting function (§4.3: "The muting is performed
// by lookup tables that directly scale the 8-bit µ-law samples").
//
// The encoding is G.711 µ-law: a 14-bit linear sample is compressed
// to sign + 3-bit exponent + 4-bit mantissa, bit-inverted on the wire.
package mulaw

// Bias is the µ-law encoding bias (G.711).
const Bias = 0x84

// clip is the largest linear magnitude representable after biasing.
const clip = 32635

// Silence is the µ-law code for a zero-amplitude sample.
const Silence = 0xFF

// decodeTable maps every µ-law byte to its linear value.
var decodeTable [256]int16

func init() {
	for i := 0; i < 256; i++ {
		decodeTable[i] = decode(byte(i))
	}
}

// Encode compresses a 16-bit linear PCM sample to one µ-law byte.
func Encode(sample int16) byte {
	s := int32(sample)
	sign := byte(0)
	if s < 0 {
		s = -s
		sign = 0x80
	}
	if s > clip {
		s = clip
	}
	s += Bias
	exp := 7
	for mask := int32(0x4000); exp > 0 && s&mask == 0; exp-- {
		mask >>= 1
	}
	mantissa := byte((s >> (uint(exp) + 3)) & 0x0F)
	return ^(sign | byte(exp)<<4 | mantissa)
}

// Decode expands one µ-law byte to a 16-bit linear PCM sample.
func Decode(b byte) int16 { return decodeTable[b] }

func decode(b byte) int16 {
	b = ^b
	sign := b & 0x80
	exp := (b >> 4) & 0x07
	mantissa := b & 0x0F
	s := (int32(mantissa)<<3 + Bias) << exp
	s -= Bias
	if sign != 0 {
		s = -s
	}
	return int16(s)
}

// EncodeSlice encodes linear samples into dst, which must be at least
// len(src) long, and returns the number of bytes written.
func EncodeSlice(dst []byte, src []int16) int {
	for i, s := range src {
		dst[i] = Encode(s)
	}
	return len(src)
}

// DecodeSlice decodes µ-law bytes into dst, which must be at least
// len(src) long, and returns the number of samples written.
func DecodeSlice(dst []int16, src []byte) int {
	for i, b := range src {
		dst[i] = decodeTable[b]
	}
	return len(src)
}

// ScaleTable is a 256-entry lookup table that scales µ-law samples by
// a fixed factor without leaving the µ-law domain — the mechanism the
// audio transputer uses to apply muting "as they are copied from the
// codec fifo to the server link" (§4.3).
type ScaleTable [256]byte

// NewScaleTable builds the lookup table for the given gain factor
// (1.0 = unity, 0.5 and 0.2 are the paper's muting stages).
func NewScaleTable(factor float64) *ScaleTable {
	var t ScaleTable
	for i := 0; i < 256; i++ {
		scaled := float64(decodeTable[i]) * factor
		switch {
		case scaled > 32767:
			scaled = 32767
		case scaled < -32768:
			scaled = -32768
		}
		t[i] = Encode(int16(scaled))
	}
	return &t
}

// Apply scales every sample in buf in place.
func (t *ScaleTable) Apply(buf []byte) {
	for i, b := range buf {
		buf[i] = t[b]
	}
}

// Peak returns the largest linear magnitude in a µ-law buffer, used by
// the muting threshold detector.
func Peak(buf []byte) int32 {
	var peak int32
	for _, b := range buf {
		v := int32(decodeTable[b])
		if v < 0 {
			v = -v
		}
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Energy returns the mean squared linear amplitude of a µ-law buffer,
// a crude loudness measure used by quality metrics.
func Energy(buf []byte) float64 {
	if len(buf) == 0 {
		return 0
	}
	var sum float64
	for _, b := range buf {
		v := float64(decodeTable[b])
		sum += v * v
	}
	return sum / float64(len(buf))
}
