package clawback

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/segment"
)

func block(v byte) []byte {
	b := make([]byte, segment.BlockSamples)
	for i := range b {
		b[i] = v
	}
	return b
}

func TestEmptyPopInsertsSilence(t *testing.T) {
	b := New(Config{})
	blk, ok := b.Pop()
	if ok || blk != nil {
		t.Fatal("empty buffer returned a block")
	}
	if b.Stats().SilenceInserted != 1 {
		t.Fatalf("SilenceInserted = %d", b.Stats().SilenceInserted)
	}
}

func TestFIFOOrder(t *testing.T) {
	b := New(Config{})
	for i := 0; i < 5; i++ {
		if r := b.Push(block(byte(i))); r != DropNone {
			t.Fatalf("push %d dropped: %v", i, r)
		}
	}
	for i := 0; i < 5; i++ {
		blk, ok := b.Pop()
		if !ok || blk[0] != byte(i) {
			t.Fatalf("pop %d: ok=%v v=%d", i, ok, blk[0])
		}
	}
}

func TestBufferRidesHigherAfterUnderrun(t *testing.T) {
	// "When the samples do eventually arrive, the buffer will fill to
	// one block more than it would have done."
	b := New(Config{})
	b.Push(block(1))
	b.Pop()
	b.Pop() // underrun: silence inserted
	// The late block and its successors now queue one deeper.
	b.Push(block(2))
	b.Push(block(3))
	if b.Len() != 2 {
		t.Fatalf("Len = %d after recovery, want 2", b.Len())
	}
}

func TestNoClawAtOrBelowTarget(t *testing.T) {
	// Steady occupancy at the target must never trigger clawback.
	b := New(Config{TargetBlocks: 2, ClawCount: 10})
	b.Push(block(0))
	b.Push(block(0))
	for i := 0; i < 1000; i++ {
		if r := b.Push(block(0)); r != DropNone {
			t.Fatalf("iteration %d dropped: %v", i, r)
		}
		b.Pop()
	}
	if b.Stats().ClawDrops != 0 {
		t.Fatalf("ClawDrops = %d at target occupancy", b.Stats().ClawDrops)
	}
}

func TestClawRateOneIn4096(t *testing.T) {
	// Occupancy pinned above target: exactly one drop per
	// ClawCount+1 arrivals — the paper's "2ms every 8s, or 1 in 4000".
	b := New(Config{})
	for i := 0; i < 10; i++ {
		b.Push(block(0)) // 20 ms of jitter correction
	}
	// Measure the steady inter-drop interval (the fill itself counts
	// toward the first window, so skip to the second drop).
	var dropAt []int
	for i := 0; len(dropAt) < 2; i++ {
		before := b.Stats().ClawDrops
		b.Push(block(0))
		b.Pop()
		if b.Stats().ClawDrops != before {
			dropAt = append(dropAt, i)
		}
		if i > 3*DefaultClawCount {
			t.Fatal("no two claw drops within three windows")
		}
	}
	if gap := dropAt[1] - dropAt[0]; gap != DefaultClawCount+1 {
		t.Fatalf("inter-drop gap %d pushes, want %d", gap, DefaultClawCount+1)
	}
}

func TestClawAdaptation20msTo4ms(t *testing.T) {
	// E5 in miniature: a buffer holding 20 ms of correction returns
	// to the 4 ms target at 2 ms per 8.192 s — about one minute.
	b := New(Config{})
	for i := 0; i < 10; i++ {
		b.Push(block(0))
	}
	ticks := 0
	for b.Len() > DefaultTargetBlocks {
		b.Push(block(0))
		b.Pop()
		ticks++
		if ticks > 50*60*500 {
			t.Fatal("did not adapt within 50 minutes")
		}
	}
	elapsed := time.Duration(ticks) * segment.BlockDuration
	// 8 claw drops needed (10 -> 2 blocks); ~8 × 8.192 s ≈ 65.5 s.
	if elapsed < 55*time.Second || elapsed > 75*time.Second {
		t.Fatalf("adaptation took %v, want ≈ 65s", elapsed)
	}
}

func TestClawCounterResetsBelowTarget(t *testing.T) {
	// A buffer that regularly returns to its target must not
	// accumulate above-target counts across excursions ("If this
	// correction were faster... unnecessary degradation").
	b := New(Config{TargetBlocks: 2, ClawCount: 100})
	b.Push(block(0))
	b.Push(block(0))
	for cycle := 0; cycle < 50; cycle++ {
		// Excursion: 60 above-target arrivals, below ClawCount.
		b.Push(block(0)) // occupancy 3
		for i := 0; i < 60; i++ {
			b.Push(block(0))
			b.Pop()
		}
		b.Pop() // back to target
		// A quiet arrival at target resets the window.
		b.Push(block(0))
		b.Pop()
	}
	if d := b.Stats().ClawDrops; d != 0 {
		t.Fatalf("ClawDrops = %d across resetting excursions", d)
	}
}

func TestClockDriftAbsorbed(t *testing.T) {
	// E6 in miniature: source clock 1 in 10⁵ fast means one surplus
	// block per 100000. The 1-in-4096 claw rate exceeds the drift, so
	// occupancy stays bounded near the target.
	b := New(Config{})
	b.Push(block(0))
	b.Push(block(0))
	maxLen := 0
	for i := 1; i <= 1_000_000; i++ {
		b.Push(block(0))
		if i%100_000 != 0 { // drift: skip one pop per 100k
			b.Pop()
		}
		if b.Len() > maxLen {
			maxLen = b.Len()
		}
	}
	if maxLen > DefaultTargetBlocks+3 {
		t.Fatalf("drift let occupancy reach %d blocks", maxLen)
	}
	if b.Len() > DefaultTargetBlocks+2 {
		t.Fatalf("final occupancy %d, want near target", b.Len())
	}
}

func TestLimitDrops(t *testing.T) {
	b := New(Config{LimitBlocks: 5})
	for i := 0; i < 5; i++ {
		if r := b.Push(block(0)); r != DropNone {
			t.Fatalf("push %d: %v", i, r)
		}
	}
	if r := b.Push(block(0)); r != DropLimit {
		t.Fatalf("over-limit push: %v", r)
	}
	if b.Stats().LimitDrops != 1 {
		t.Fatalf("LimitDrops = %d", b.Stats().LimitDrops)
	}
}

func TestDefaultLimitIs120ms(t *testing.T) {
	b := New(Config{})
	for b.Push(block(0)) == DropNone {
	}
	if b.Occupancy() != 120*time.Millisecond {
		t.Fatalf("limit occupancy %v, want 120ms", b.Occupancy())
	}
}

func TestPoolSharedBetweenStreams(t *testing.T) {
	pool := NewPool(10)
	a := New(Config{Pool: pool})
	b := New(Config{Pool: pool})
	for i := 0; i < 6; i++ {
		if r := a.Push(block(0)); r != DropNone {
			t.Fatalf("a push %d: %v", i, r)
		}
	}
	for i := 0; i < 4; i++ {
		if r := b.Push(block(0)); r != DropNone {
			t.Fatalf("b push %d: %v", i, r)
		}
	}
	if r := b.Push(block(0)); r != DropPool {
		t.Fatalf("pool-exhausted push: %v", r)
	}
	if pool.Exhausted != 1 || pool.Used() != 10 {
		t.Fatalf("pool state used=%d exhausted=%d", pool.Used(), pool.Exhausted)
	}
	// Draining one stream frees capacity for the other.
	a.Drain()
	if pool.Used() != 4 {
		t.Fatalf("pool used %d after drain, want 4", pool.Used())
	}
	if r := b.Push(block(0)); r != DropNone {
		t.Fatalf("push after drain: %v", r)
	}
}

func TestPoolReleasedOnPop(t *testing.T) {
	pool := NewPool(4)
	b := New(Config{Pool: pool})
	for i := 0; i < 4; i++ {
		b.Push(block(0))
	}
	b.Pop()
	if pool.Used() != 3 {
		t.Fatalf("pool used %d after pop", pool.Used())
	}
}

func TestMultiRateDropFrequency(t *testing.T) {
	// "if the minimum contents were 10ms, we would be removing a 2ms
	// block every 2000 blocks, or 4 seconds. If the minimum contents
	// were 50ms, then we would remove a 2ms block every 400 blocks."
	cases := []struct {
		blocks int // steady occupancy
		period int // pushes between drops
	}{
		{5, 2000},
		{25, 400},
	}
	for _, c := range cases {
		b := New(Config{MultiRate: true, LimitBlocks: 100})
		for i := 0; i < c.blocks; i++ {
			b.Push(block(0))
		}
		// The fill passes through low occupancies, poisoning the
		// first observation window; measure once drops are flowing.
		budget := int(DefaultLevel/blockSeconds) + 10*c.period
		var drops []int
		for i := 0; len(drops) < 4 && i < budget; i++ {
			before := b.Stats().ClawDrops
			b.Push(block(0))
			if b.Stats().ClawDrops != before {
				drops = append(drops, i)
			}
			b.Pop()
			// Replenish so occupancy stays put after a drop.
			if b.Len() < c.blocks {
				b.Push(block(0))
			}
		}
		if len(drops) < 4 {
			t.Fatalf("occupancy %d: fewer than 4 drops observed", c.blocks)
		}
		period := drops[3] - drops[2]
		// The mixer's pops interleave with arrivals, so the observed
		// minimum sits within one block of the nominal occupancy; the
		// period lands between level/(N·bs) and level/((N-1)·bs).
		lo, hi := c.period*3/4, c.period*13/10
		if period < lo || period > hi {
			t.Fatalf("occupancy %d blocks: drop period %d pushes, want ≈%d (accept %d..%d)",
				c.blocks, period, c.period, lo, hi)
		}
	}
}

func TestMultiRateExponentialDecayHalfLife(t *testing.T) {
	// "The time to halve the delay when the jitter source is removed
	// is roughly 0.7 times the level... about 14 seconds."
	b := New(Config{MultiRate: true})
	for i := 0; i < 50; i++ { // 100 ms of correction
		b.Push(block(0))
	}
	// The fill passes through low occupancies, so the first window's
	// minimum is small; run until the first drop locks the window on
	// the high occupancy, then measure the steady decay.
	for b.Stats().ClawDrops == 0 {
		b.Push(block(0))
		b.Pop()
	}
	start := b.Len()
	ticks := 0
	for b.Len() > start/2 {
		b.Push(block(0))
		b.Pop()
		ticks++
		if ticks > 500*60 {
			t.Fatal("no halving within a minute")
		}
	}
	elapsed := time.Duration(ticks) * segment.BlockDuration
	if elapsed < 9*time.Second || elapsed > 20*time.Second {
		t.Fatalf("half-life %v, want ≈14s", elapsed)
	}
}

func TestMultiRateRecoversAfterEmpty(t *testing.T) {
	// After the buffer empties (running minimum 0), the observation
	// window must eventually reset so clawback resumes.
	b := New(Config{MultiRate: true, Level: 2})
	b.Pop() // minimum touches zero
	for i := 0; i < 25; i++ {
		b.Push(block(0)) // 50 ms of correction
	}
	dropped := false
	for i := 0; i < 3000; i++ { // window at level 2 = 1000 blocks
		if r := b.Push(block(0)); r == DropClaw {
			dropped = true
			break
		}
		b.Pop()
	}
	if !dropped {
		t.Fatal("multi-rate clawback never resumed after an empty event")
	}
}

func TestDropReasonString(t *testing.T) {
	for r, want := range map[DropReason]string{
		DropNone: "accepted", DropClaw: "clawback",
		DropLimit: "limit", DropPool: "pool", DropReason(9): "unknown",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestQuickOccupancyNeverExceedsLimit(t *testing.T) {
	f := func(ops []bool, limit uint8) bool {
		l := int(limit%20) + 1
		b := New(Config{LimitBlocks: l})
		for _, push := range ops {
			if push {
				b.Push(block(0))
			} else {
				b.Pop()
			}
			if b.Len() > l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStatsConservation(t *testing.T) {
	// Accepted = Popped + Len: no block is lost or duplicated.
	f := func(ops []byte) bool {
		pool := NewPool(50)
		b := New(Config{Pool: pool, LimitBlocks: 30})
		for _, op := range ops {
			if op%3 == 0 {
				b.Pop()
			} else {
				b.Push(block(op))
			}
		}
		s := b.Stats()
		if s.Accepted != s.Popped+uint64(b.Len()) {
			return false
		}
		if s.Pushed != s.Accepted+s.ClawDrops+s.LimitDrops+s.PoolDrops {
			return false
		}
		return pool.Used() == b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
