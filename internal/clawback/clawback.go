// Package clawback implements the clawback buffers of paper §3.7.2:
// per-stream jitter buffers placed as close to the destination as
// possible, which grow on demand to absorb jitter and then *claw
// back* the added delay at a slow, safe rate once conditions improve
// — all from purely local observation (principle 8), with a single
// parameter (principle 7), no synchronised clocks, and no end-to-end
// cooperation.
//
// Mechanism, exactly as the paper describes:
//
//   - The mixer takes one 2 ms block from the buffer every 2 ms. An
//     empty buffer contributes 2 ms of silence, after which the buffer
//     rides one block higher — jitter absorbed.
//   - Every time a block is added, the occupancy is checked against a
//     lower target (default 4 ms). Above target, a counter increments;
//     when it exceeds ClawCount (4096 ≈ 8 s) the incoming block is
//     dropped — the Clawback Rate of 1 block per 8 s, or 1 in 4000,
//     which also covers quartz clock drift of 1 in 10⁵.
//   - Blocks arriving when the buffer is at its limit (120 ms) or when
//     the shared pool (4 s across all streams) is exhausted are
//     dropped and the condition reported.
//
// The multi-rate variant removes a block whenever
// (minimum occupancy in seconds) × (blocks since last reset) exceeds a
// level expressed in block·seconds (20 for Pandora's environment),
// giving exponential decay of the jitter-correction delay with
// half-life ≈ 0.7 × level.
package clawback

import (
	"time"

	"repro/internal/obs"
	"repro/internal/segment"
)

// Defaults from the paper.
const (
	// DefaultTargetBlocks is the lower target: 4 ms = 2 blocks.
	DefaultTargetBlocks = 2
	// DefaultClawCount is the above-target count that triggers a
	// drop: 4096 blocks ≈ 8 s.
	DefaultClawCount = 4096
	// DefaultLimitBlocks caps one stream's buffering at 120 ms.
	DefaultLimitBlocks = 60
	// DefaultPoolBlocks is the shared pool: 4 s of 2 ms blocks.
	DefaultPoolBlocks = 2000
	// DefaultLevel is the multi-rate level in block·seconds.
	DefaultLevel = 20.0
)

// blockSeconds is the audio time one queued block represents.
const blockSeconds = float64(segment.BlockDuration) / float64(time.Second)

// DropReason classifies why Push rejected a block.
type DropReason int

const (
	// DropNone: the block was accepted.
	DropNone DropReason = iota
	// DropClaw: the clawback mechanism removed it to reduce delay.
	DropClaw
	// DropLimit: the per-stream limit (120 ms) was exceeded.
	DropLimit
	// DropPool: the shared pool was exhausted.
	DropPool
	// DropFault: an injected fault (faultinject block corruption)
	// discarded the block at the destination.
	DropFault
)

func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "accepted"
	case DropClaw:
		return "clawback"
	case DropLimit:
		return "limit"
	case DropPool:
		return "pool"
	case DropFault:
		return "fault"
	}
	return "unknown"
}

// Pool is the shared memory pool for all clawback buffers at one
// destination ("we have a total of four seconds of clawback buffering
// shared between all active streams").
type Pool struct {
	capacity int
	used     int
	// Exhausted counts arrivals refused because the pool was full.
	Exhausted uint64
}

// NewPool returns a pool holding capacity blocks; capacity <= 0 gives
// the paper's 4 s default.
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultPoolBlocks
	}
	return &Pool{capacity: capacity}
}

// Used returns the number of blocks currently held across all buffers.
func (p *Pool) Used() int { return p.used }

// Capacity returns the pool size in blocks.
func (p *Pool) Capacity() int { return p.capacity }

func (p *Pool) take() bool {
	if p.used >= p.capacity {
		p.Exhausted++
		return false
	}
	p.used++
	return true
}

func (p *Pool) give() { p.used-- }

// Config parameterises a Buffer. The zero value selects the paper's
// defaults for every field.
type Config struct {
	// TargetBlocks is the lower occupancy target in blocks (default 2
	// = 4 ms).
	TargetBlocks int
	// ClawCount is the consecutive above-target count that triggers a
	// clawback drop (default 4096 ≈ 8 s).
	ClawCount int
	// LimitBlocks is the per-stream cap (default 60 = 120 ms).
	LimitBlocks int
	// Pool, if non-nil, bounds total memory across buffers.
	Pool *Pool
	// MultiRate selects the multi-rate clawback (§3.7.2 last part).
	MultiRate bool
	// Level is the multi-rate product threshold in block·seconds
	// (default 20).
	Level float64
	// NoReset is the A3 ablation: the above-target counter never
	// resets when the buffer returns to its target, so the "faster"
	// correction the paper warns about fires during occasional short
	// intervals of low jitter and degrades the stream unnecessarily.
	NoReset bool
	// Fault, if non-nil, is a fault-injection hook consulted on every
	// arriving block; returning true discards the block as injected
	// corruption at the destination codec (DropFault).
	// faultinject.BlockCorruption's Hit method is a suitable value.
	Fault func() bool
	// Obs, if non-nil, registers the buffer's counters (labelled with
	// Owner) and traces drops. A nil registry costs nothing.
	Obs *obs.Registry
	// Owner identifies this buffer in metrics and traces, e.g.
	// "bob/1001" for stream 1001 arriving at box bob.
	Owner string
}

func (c Config) withDefaults() Config {
	if c.TargetBlocks <= 0 {
		c.TargetBlocks = DefaultTargetBlocks
	}
	if c.ClawCount <= 0 {
		c.ClawCount = DefaultClawCount
	}
	if c.LimitBlocks <= 0 {
		c.LimitBlocks = DefaultLimitBlocks
	}
	if c.Level <= 0 {
		c.Level = DefaultLevel
	}
	return c
}

// Stats reports the counters the buffer accumulates ("the process
// reports this condition so that the cause can be investigated").
// The counters live in the observability registry when one is
// attached; Stats is reconstructed from them on demand.
type Stats struct {
	Pushed          uint64 // blocks offered
	Accepted        uint64 // blocks queued
	Popped          uint64 // blocks taken by the mixer
	SilenceInserted uint64 // empty pops (2 ms of zero samples each)
	ClawDrops       uint64 // blocks removed by the clawback mechanism
	LimitDrops      uint64 // blocks over the per-stream limit
	PoolDrops       uint64 // blocks refused by the shared pool
	FaultDrops      uint64 // blocks discarded by an injected fault
}

// Item is one queued 2 ms block plus the source timestamp it was
// captured at (nanoseconds of stream time), which rides along so the
// destination can measure end-to-end delay.
type Item struct {
	Data  []byte
	Stamp int64
	// W, if non-zero, is the wire whose storage Data aliases: the
	// queue holds one reference per item instead of copying the
	// samples. PushItem releases it when a block is dropped; consumers
	// release it after using a popped item; Drain releases the queue's
	// remaining references.
	W segment.Wire
}

// Buffer is one stream's clawback buffer. It is a plain data
// structure driven by the destination's 2 ms mixing tick: Push on
// block arrival, Pop every 2 ms. Not safe for concurrent use (in
// Pandora each buffer lives inside one Occam process).
type Buffer struct {
	cfg   Config
	queue []Item

	aboveTarget int // consecutive above-target arrivals (single-rate)

	minBlocks  int // minimum occupancy since last reset (multi-rate)
	sinceReset int // blocks accepted since last reset (multi-rate)

	pushed   *obs.Counter
	accepted *obs.Counter
	popped   *obs.Counter
	silence  *obs.Counter
	claw     *obs.Counter
	limit    *obs.Counter
	pool     *obs.Counter
	fault    *obs.Counter
	trace    *obs.Tracer
	source   string
}

// New returns a buffer with the given configuration.
func New(cfg Config) *Buffer {
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	owner := cfg.Owner
	if owner == "" {
		owner = "clawback"
	}
	lb := obs.L("stream", owner)
	return &Buffer{
		cfg:      cfg,
		pushed:   reg.Counter("clawback_pushed_total", lb),
		accepted: reg.Counter("clawback_accepted_total", lb),
		popped:   reg.Counter("clawback_popped_total", lb),
		silence:  reg.Counter("clawback_silence_total", lb),
		claw:     reg.Counter("clawback_claw_drops_total", lb),
		limit:    reg.Counter("clawback_limit_drops_total", lb),
		pool:     reg.Counter("clawback_pool_drops_total", lb),
		fault:    reg.Counter("clawback_fault_drops_total", lb),
		trace:    reg.Tracer(),
		source:   "clawback." + owner,
	}
}

// Config returns the effective configuration.
func (b *Buffer) Config() Config { return b.cfg }

// Stats returns a copy of the accumulated counters.
func (b *Buffer) Stats() Stats {
	return Stats{
		Pushed:          b.pushed.Value(),
		Accepted:        b.accepted.Value(),
		Popped:          b.popped.Value(),
		SilenceInserted: b.silence.Value(),
		ClawDrops:       b.claw.Value(),
		LimitDrops:      b.limit.Value(),
		PoolDrops:       b.pool.Value(),
		FaultDrops:      b.fault.Value(),
	}
}

// Len returns the current occupancy in blocks.
func (b *Buffer) Len() int { return len(b.queue) }

// Occupancy returns the current occupancy as audio time — the jitter
// correction delay this stream is experiencing.
func (b *Buffer) Occupancy() time.Duration {
	return time.Duration(len(b.queue)) * segment.BlockDuration
}

// Push offers an arriving 2 ms block to the buffer. It returns the
// reason the block was dropped, or DropNone if it was queued.
func (b *Buffer) Push(blk []byte) DropReason { return b.PushItem(Item{Data: blk}) }

// PushItem offers an arriving block with its source timestamp.
func (b *Buffer) PushItem(it Item) DropReason {
	b.pushed.Inc()
	if b.cfg.Fault != nil && b.cfg.Fault() {
		// Injected corruption at the destination: the block is thrown
		// away before it can influence the clawback state (§3.8).
		b.fault.Inc()
		b.trace.Emit(obs.EvFault, b.source, 0, DropFault.String())
		it.W.Release()
		return DropFault
	}
	if len(b.queue) >= b.cfg.LimitBlocks {
		// "we throw away samples if the buffer is above its limit
		// when they arrive."
		b.limit.Inc()
		b.trace.Emit(obs.EvDrop, b.source, 0, DropLimit.String())
		it.W.Release()
		return DropLimit
	}
	if b.cfg.MultiRate {
		if b.pushMultiRate() {
			b.claw.Inc()
			b.trace.Emit(obs.EvDrop, b.source, 0, DropClaw.String())
			it.W.Release()
			return DropClaw
		}
	} else {
		if b.pushSingleRate() {
			b.claw.Inc()
			b.trace.Emit(obs.EvDrop, b.source, 0, DropClaw.String())
			it.W.Release()
			return DropClaw
		}
	}
	if b.cfg.Pool != nil && !b.cfg.Pool.take() {
		b.pool.Inc()
		b.trace.Emit(obs.EvDrop, b.source, 0, DropPool.String())
		it.W.Release()
		return DropPool
	}
	b.queue = append(b.queue, it)
	b.accepted.Inc()
	return DropNone
}

// pushSingleRate runs the fixed-rate clawback check and reports
// whether the incoming block should be dropped.
func (b *Buffer) pushSingleRate() bool {
	if len(b.queue) > b.cfg.TargetBlocks {
		b.aboveTarget++
		if b.aboveTarget > b.cfg.ClawCount {
			b.aboveTarget = 0
			return true
		}
	} else if !b.cfg.NoReset {
		// The buffer has come close to its target: the delay is not
		// excessive, so restart the observation window.
		b.aboveTarget = 0
	}
	return false
}

// pushMultiRate runs the product check: remove a block and reset the
// counts whenever (minimum contents) × (blocks since last reset)
// exceeds the configured level in block·seconds. The minimum is
// sampled at block arrival, before the incoming block is queued.
//
// One refinement over the paper's sketch: if the running minimum
// touches zero (the buffer emptied — maximum jitter), the product can
// never reach the level and the counts would otherwise never reset,
// leaving the mechanism dead after conditions improve. We therefore
// restart the observation window, without removing a block, after
// level/blockSeconds arrivals — the instant at which even a 1-block
// minimum would have triggered a removal. The cost is an onset lag of
// at most one window after a deep jitter event before the exponential
// decay locks on; the steady-state decay itself matches the paper
// (half-life ≈ 0.7 × level).
func (b *Buffer) pushMultiRate() bool {
	if len(b.queue) < b.minBlocks {
		b.minBlocks = len(b.queue)
	}
	b.sinceReset++
	product := float64(b.minBlocks) * blockSeconds * float64(b.sinceReset)
	if product >= b.cfg.Level {
		b.sinceReset = 0
		b.minBlocks = len(b.queue)
		return true
	}
	if float64(b.sinceReset) >= b.cfg.Level/blockSeconds {
		b.sinceReset = 0
		b.minBlocks = len(b.queue)
	}
	return false
}

// Pop takes the next 2 ms block for mixing. ok is false when the
// buffer is empty, in which case the mixer contributes silence and
// the stream gains one block of jitter protection.
func (b *Buffer) Pop() (blk []byte, ok bool) {
	it, ok := b.PopItem()
	return it.Data, ok
}

// PopItem takes the next block with its source timestamp.
func (b *Buffer) PopItem() (it Item, ok bool) {
	if len(b.queue) == 0 {
		b.silence.Inc()
		return Item{}, false
	}
	it = b.queue[0]
	b.queue[0] = Item{}
	b.queue = b.queue[1:]
	if b.cfg.Pool != nil {
		b.cfg.Pool.give()
	}
	b.popped.Inc()
	return it, true
}

// Drain releases every queued block back to the pool (stream
// deactivation: "the time saved when a clawback buffer is found to be
// empty is used to deactivate the stream, removing the clawback
// buffer altogether").
func (b *Buffer) Drain() {
	for i := range b.queue {
		b.queue[i].W.Release()
		if b.cfg.Pool != nil {
			b.cfg.Pool.give()
		}
	}
	b.queue = nil
}
