package baseline

import (
	"testing"
	"time"

	"repro/internal/clawback"
	"repro/internal/segment"
	"repro/internal/workload"
)

func blk(stamp int64) clawback.Item {
	return clawback.Item{Data: make([]byte, segment.BlockSamples), Stamp: stamp}
}

// playScenario drives a buffer with arrivals whose delay follows the
// given jitter function, one block per 2 ms of virtual time, and
// returns (glitch events, mean occupancy after warmup).
func playScenario(b Buffer, ticks int, jitter func(i int) time.Duration) (glitches uint64, meanOcc float64) {
	const step = int64(segment.BlockDuration)
	type pending struct {
		at int64
		it clawback.Item
	}
	var queue []pending
	var occSum, occN float64
	silentBefore := silenceCount(b)
	for i := 0; i < ticks; i++ {
		now := int64(i) * step
		// A block captured `jitter` ago arrives now.
		queue = append(queue, pending{at: now + int64(jitter(i)), it: blk(now)})
		for len(queue) > 0 && queue[0].at <= now {
			b.Push(queue[0].it)
			queue = queue[1:]
		}
		b.Pop()
		if i > ticks/4 {
			occSum += float64(b.Len())
			occN++
		}
	}
	return silenceCount(b) - silentBefore + dumpCount(b), occSum / occN
}

func silenceCount(b Buffer) uint64 {
	switch x := b.(type) {
	case *ElasticDump:
		return x.Silence
	case *ClockAdjust:
		return x.Silence
	case *Naylor:
		return x.Silence
	case Clawback:
		return x.Stats().SilenceInserted
	}
	return 0
}

func dumpCount(b Buffer) uint64 {
	if e, ok := b.(*ElasticDump); ok {
		return e.Dropped
	}
	return 0
}

func steadyJitter(rng *workload.RNG, base time.Duration) func(int) time.Duration {
	return func(int) time.Duration {
		return base + time.Duration(rng.Intn(int(2*time.Millisecond)))
	}
}

func TestElasticDumpDumps(t *testing.T) {
	e := NewElasticDump(2, 10)
	for i := 0; i < 15; i++ {
		e.Push(blk(int64(i)))
	}
	if e.Dumps != 1 {
		t.Fatalf("%d dumps, want 1 at the threshold", e.Dumps)
	}
	// The dump fires at the 10th push (down to 2), then 5 more queue.
	if e.Len() != 7 {
		t.Fatalf("occupancy %d after dump + 5 pushes, want 7", e.Len())
	}
	if e.Dropped != 8 {
		t.Fatalf("dump dropped %d blocks, want 8", e.Dropped)
	}
}

func TestElasticDumpFIFO(t *testing.T) {
	e := NewElasticDump(2, 100)
	for i := 0; i < 5; i++ {
		e.Push(blk(int64(i + 1)))
	}
	for i := 0; i < 5; i++ {
		it, ok := e.Pop()
		if !ok || it.Stamp != int64(i+1) {
			t.Fatalf("pop %d: %v %v", i, it.Stamp, ok)
		}
	}
	if _, ok := e.Pop(); ok {
		t.Fatal("pop from empty")
	}
	if e.Silence != 1 {
		t.Fatal("silence not counted")
	}
}

func TestClockAdjustSkipsWhenHigh(t *testing.T) {
	c := NewClockAdjust(2, 6, 4)
	for i := 0; i < 30; i++ {
		c.Push(blk(int64(i + 1)))
	}
	for i := 0; i < 20; i++ {
		c.Pop()
	}
	if c.Skipped == 0 {
		t.Fatal("fast clock never skipped")
	}
	if c.Len() > 12 {
		t.Fatalf("occupancy %d not being worked down", c.Len())
	}
}

func TestClockAdjustStretchesWhenLow(t *testing.T) {
	c := NewClockAdjust(3, 8, 2)
	c.Push(blk(1))
	c.Push(blk(2))
	var pops int
	for i := 0; i < 6; i++ {
		if _, ok := c.Pop(); ok {
			pops++
		}
		c.Push(blk(int64(10 + i))) // keep exactly ~2 queued
		c.Push(blk(int64(20 + i)))
		for c.Len() > 2 {
			c.queue = c.queue[1:]
		}
	}
	if c.Stretched == 0 {
		t.Fatal("slow clock never stretched")
	}
	if pops != 6 {
		t.Fatalf("pops = %d", pops)
	}
}

func TestNaylorTracksDelayPercentile(t *testing.T) {
	now := int64(0)
	n := NewNaylor(100, 95, func() int64 { return now })
	// Feed arrivals with 10 ms spread: target should settle ≈5 blocks.
	rng := workload.NewRNG(5)
	for i := 0; i < 500; i++ {
		now = int64(i) * int64(segment.BlockDuration)
		delay := int64(rng.Intn(int(10 * time.Millisecond)))
		n.Push(clawback.Item{Data: nil, Stamp: now - delay})
		n.Pop()
	}
	tgt := n.targetBlocks()
	if tgt < 3 || tgt > 7 {
		t.Fatalf("target %d blocks for 10ms spread, want ≈5", tgt)
	}
}

func TestAllBuffersSurviveSteadyJitter(t *testing.T) {
	mk := map[string]func() Buffer{
		"clawback": func() Buffer { return Clawback{clawback.New(clawback.Config{})} },
		"elastic":  func() Buffer { return NewElasticDump(2, 10) },
		"clock":    func() Buffer { return NewClockAdjust(2, 8, 8) },
		"naylor": func() Buffer {
			var now int64
			n := NewNaylor(100, 95, func() int64 { return now })
			_ = now
			return n
		},
	}
	for name, f := range mk {
		b := f()
		glitches, occ := playScenario(b, 5000, steadyJitter(workload.NewRNG(1), 2*time.Millisecond))
		// 10 s of 2 ms jitter: every scheme must mostly play clean.
		if glitches > 300 {
			t.Fatalf("%s: %d glitch events under steady 2ms jitter", name, glitches)
		}
		if occ > 30 {
			t.Fatalf("%s: mean occupancy %.1f blocks", name, occ)
		}
	}
}

func TestClawbackBeatsElasticAfterBurst(t *testing.T) {
	// E14's core shape: after a 20 ms jitter burst subsides, the
	// clawback buffer works its delay back down smoothly; the elastic
	// buffer either keeps the delay (if under threshold) or dumps (a
	// glitch). Clawback's post-burst glitches stay near zero.
	burst := func(i int) time.Duration {
		if i >= 1000 && i < 1500 {
			return 20 * time.Millisecond
		}
		return 2 * time.Millisecond
	}
	cb := Clawback{clawback.New(clawback.Config{})}
	cbGlitches, _ := playScenario(cb, 40000, burst)

	el := NewElasticDump(2, 8) // threshold below the burst: dumps fire
	playScenario(el, 40000, burst)

	if cb.Stats().ClawDrops == 0 {
		t.Fatal("clawback never clawed the burst delay back")
	}
	if cbGlitches > uint64(1020) { // the burst gap itself inserts silence
		t.Fatalf("clawback glitches %d", cbGlitches)
	}
	if el.Dumps == 0 {
		t.Fatal("elastic buffer never dumped — scenario too gentle")
	}
	// The elastic dump threw away a burst of contiguous audio;
	// clawback drops were spread one block every 8 s.
	if el.Dropped < 5 {
		t.Fatalf("elastic dropped only %d blocks", el.Dropped)
	}
}

func TestClockAdjustKeepsBufferOccupied(t *testing.T) {
	// "buffers could remain occupied when not strictly necessary":
	// after a burst fills it, the clock-adjust scheme with a wide
	// dead band holds more delay than clawback does long after.
	burst := func(i int) time.Duration {
		if i >= 1000 && i < 1500 {
			return 20 * time.Millisecond
		}
		return 2 * time.Millisecond
	}
	ca := NewClockAdjust(2, 12, 8) // dead band up to 24 ms
	_, caOcc := playScenario(ca, 40000, burst)
	cb := Clawback{clawback.New(clawback.Config{})}
	_, cbOcc := playScenario(cb, 40000, burst)
	if caOcc <= cbOcc {
		t.Fatalf("clock-adjust occupancy %.1f not above clawback %.1f", caOcc, cbOcc)
	}
}
