// Package baseline implements the jitter-handling schemes the paper
// positions clawback buffers against (§3.7.2, §5.1), behind a common
// interface so experiment E14 can drive all of them with identical
// arrival sequences:
//
//   - ElasticDump — the elastic buffer with a dump threshold: "some
//     systems dump data from their buffers when some critical amount
//     is reached" [Swinehart83, Want88]. Cheap, but each dump is a
//     large audible glitch, and the delay stays high until one fires.
//   - ClockAdjust — receiver clock adjustment [Want88, Ades86]: the
//     consumer speeds up or slows down its clock to track occupancy.
//     "Such adjustments would not scale well to multi-way audio, and
//     buffers could remain occupied when not strictly necessary."
//   - Naylor — destination buffering driven by an analysis of recent
//     packet delay times [Naylor82]: the target delay is a percentile
//     of a sliding delay window. Adapts both ways, but needs
//     timestamps and carefully selected parameters, and reacts to the
//     estimator, not to real underruns.
//
// The clawback buffer itself (internal/clawback) also satisfies
// Buffer.
package baseline

import (
	"sort"

	"repro/internal/clawback"
	"repro/internal/segment"
)

// Buffer is the common jitter-buffer interface driven by E14.
type Buffer interface {
	// Push offers one 2 ms block with its source timestamp.
	Push(it clawback.Item) clawback.DropReason
	// Pop takes the next block at each 2 ms playout tick.
	Pop() (clawback.Item, bool)
	// Len returns the occupancy in blocks.
	Len() int
}

// Clawback adapts clawback.Buffer to Buffer.
type Clawback struct{ *clawback.Buffer }

// Push implements Buffer.
func (c Clawback) Push(it clawback.Item) clawback.DropReason { return c.PushItem(it) }

// Pop implements Buffer.
func (c Clawback) Pop() (clawback.Item, bool) { return c.PopItem() }

var _ Buffer = Clawback{}

// ElasticDump is the dump-at-threshold elastic buffer.
type ElasticDump struct {
	queue   []clawback.Item
	Target  int // post-dump occupancy in blocks
	Dump    int // occupancy that triggers a dump
	Dumps   uint64
	Dropped uint64
	Silence uint64
}

// NewElasticDump returns an elastic buffer dumping from dump blocks
// down to target blocks.
func NewElasticDump(target, dump int) *ElasticDump {
	if target <= 0 {
		target = 2
	}
	if dump <= target {
		dump = target + 8
	}
	return &ElasticDump{Target: target, Dump: dump}
}

// Push implements Buffer.
func (e *ElasticDump) Push(it clawback.Item) clawback.DropReason {
	e.queue = append(e.queue, it)
	if len(e.queue) >= e.Dump {
		// Dump: discard everything above the target in one glitch.
		n := len(e.queue) - e.Target
		e.queue = append([]clawback.Item(nil), e.queue[n:]...)
		e.Dumps++
		e.Dropped += uint64(n)
		return clawback.DropLimit
	}
	return clawback.DropNone
}

// Pop implements Buffer.
func (e *ElasticDump) Pop() (clawback.Item, bool) {
	if len(e.queue) == 0 {
		e.Silence++
		return clawback.Item{}, false
	}
	it := e.queue[0]
	e.queue = e.queue[1:]
	return it, true
}

// Len implements Buffer.
func (e *ElasticDump) Len() int { return len(e.queue) }

// ClockAdjust models receiver clock adjustment: occupancy above the
// high mark makes the consumer clock run fast (consume an extra block
// every Period pops — audible pitch/time distortion, counted in
// Skipped); below the low mark it runs slow (repeat a block every
// Period pops, counted in Stretched).
type ClockAdjust struct {
	queue     []clawback.Item
	High, Low int
	Period    int // pops between adjustments while out of band
	count     int
	Skipped   uint64
	Stretched uint64
	Silence   uint64
	last      clawback.Item
	hasLast   bool
}

// NewClockAdjust returns a clock-adjusting buffer holding occupancy
// between low and high blocks.
func NewClockAdjust(low, high, period int) *ClockAdjust {
	if low <= 0 {
		low = 1
	}
	if high <= low {
		high = low + 4
	}
	if period <= 0 {
		period = 8
	}
	return &ClockAdjust{High: high, Low: low, Period: period}
}

// Push implements Buffer.
func (c *ClockAdjust) Push(it clawback.Item) clawback.DropReason {
	c.queue = append(c.queue, it)
	return clawback.DropNone
}

// Pop implements Buffer.
func (c *ClockAdjust) Pop() (clawback.Item, bool) {
	if len(c.queue) == 0 {
		c.Silence++
		return clawback.Item{}, false
	}
	c.count++
	if c.count >= c.Period {
		c.count = 0
		switch {
		case len(c.queue) > c.High:
			// Fast clock: consume two, play one.
			c.queue = c.queue[1:]
			c.Skipped++
		case len(c.queue) < c.Low && c.hasLast:
			// Slow clock: replay the previous block.
			c.Stretched++
			return c.last, true
		}
	}
	if len(c.queue) == 0 {
		c.Silence++
		return clawback.Item{}, false
	}
	it := c.queue[0]
	c.queue = c.queue[1:]
	c.last, c.hasLast = it, true
	return it, true
}

// Len implements Buffer.
func (c *ClockAdjust) Len() int { return len(c.queue) }

// Naylor is the delay-analysis adaptive buffer: it tracks the delay
// of the last Window arrivals (arrival time − source timestamp,
// which assumes usable end-to-end timestamps) and sets its target
// occupancy from the Percentile of that window. Occupancy is steered
// toward the target by dropping (above) or holding playout (below).
type Naylor struct {
	queue      []clawback.Item
	Window     int
	Percentile float64
	delays     []int64
	Now        func() int64 // arrival clock (virtual ns)
	Dropped    uint64
	Silence    uint64
}

// NewNaylor returns a delay-analysis buffer over a window of n
// arrivals at percentile pct (0–100).
func NewNaylor(n int, pct float64, now func() int64) *Naylor {
	if n <= 0 {
		n = 200
	}
	if pct <= 0 || pct > 100 {
		pct = 95
	}
	return &Naylor{Window: n, Percentile: pct, Now: now}
}

// targetBlocks converts the delay estimate into occupancy blocks.
func (n *Naylor) targetBlocks() int {
	if len(n.delays) < 8 {
		return 2
	}
	sorted := append([]int64(nil), n.delays...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p := sorted[int(n.Percentile/100*float64(len(sorted)-1))]
	minD := sorted[0]
	// Buffer enough to cover the delay spread at the percentile.
	blocks := int((p-minD)/int64(segment.BlockDuration)) + 1
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// Push implements Buffer.
func (n *Naylor) Push(it clawback.Item) clawback.DropReason {
	if n.Now != nil && it.Stamp > 0 {
		d := n.Now() - it.Stamp
		n.delays = append(n.delays, d)
		if len(n.delays) > n.Window {
			n.delays = n.delays[1:]
		}
	}
	if len(n.queue) > n.targetBlocks()+2 {
		n.Dropped++
		return clawback.DropLimit
	}
	n.queue = append(n.queue, it)
	return clawback.DropNone
}

// Pop implements Buffer.
func (n *Naylor) Pop() (clawback.Item, bool) {
	if len(n.queue) == 0 {
		n.Silence++
		return clawback.Item{}, false
	}
	it := n.queue[0]
	n.queue = n.queue[1:]
	return it, true
}

// Len implements Buffer.
func (n *Naylor) Len() int { return len(n.queue) }
