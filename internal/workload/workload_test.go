package workload

import (
	"testing"

	"repro/internal/mulaw"
	"repro/internal/segment"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collide immediately")
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zeros")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn never produced %d", v)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if hits < 28000 || hits > 32000 {
		t.Fatalf("Bool(0.3) hit %d of 100000", hits)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(5.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 4.8 || mean > 5.2 {
		t.Fatalf("Exp mean %v, want ≈5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(17)
	var sum, sq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sq += (v - 10) * (v - 10)
	}
	mean := sum / n
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("Norm mean %v", mean)
	}
	variance := sq / n
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("Norm variance %v, want ≈4", variance)
	}
}

func TestToneBlockShape(t *testing.T) {
	tone := NewTone(400, 10000)
	b := tone.NextBlock()
	if len(b) != segment.BlockSamples {
		t.Fatalf("block of %d samples", len(b))
	}
	// A 400 Hz tone at amplitude 10000 must actually oscillate.
	var peak int32
	for i := 0; i < 50; i++ {
		if p := mulaw.Peak(tone.NextBlock()); p > peak {
			peak = p
		}
	}
	if peak < 8000 || peak > 12000 {
		t.Fatalf("tone peak %d, want ≈10000", peak)
	}
}

func TestToneIsPeriodic(t *testing.T) {
	// 1000 Hz at 8 kHz: period 8 samples — two blocks a period apart
	// are identical.
	a := NewTone(1000, 10000)
	b := NewTone(1000, 10000)
	b.NextBlock() // offset by exactly one block = 2 periods
	first := a.NextBlock()
	_ = first
	blkA := a.NextBlock()
	blkB := b.NextBlock()
	for i := range blkA {
		if blkA[i] != blkB[i] {
			t.Fatal("tone not periodic")
		}
	}
}

func TestSpeechAlternates(t *testing.T) {
	s := NewSpeech(3, 12000)
	talkBlocks, silentBlocks := 0, 0
	transitions := 0
	prev := s.Talking()
	for i := 0; i < 100000; i++ { // 200 s of speech
		b := s.NextBlock()
		if s.Talking() {
			talkBlocks++
		} else {
			silentBlocks++
			if mulaw.Energy(b) != 0 {
				t.Fatal("silent period has energy")
			}
		}
		if s.Talking() != prev {
			transitions++
			prev = s.Talking()
		}
	}
	if talkBlocks == 0 || silentBlocks == 0 {
		t.Fatalf("talk=%d silent=%d: no alternation", talkBlocks, silentBlocks)
	}
	if transitions < 20 {
		t.Fatalf("only %d transitions in 200s", transitions)
	}
	// Mean spurt 1.2s vs silence 1.8s: roughly 40% talk.
	frac := float64(talkBlocks) / float64(talkBlocks+silentBlocks)
	if frac < 0.25 || frac > 0.55 {
		t.Fatalf("talk fraction %v", frac)
	}
}

func TestSilenceSource(t *testing.T) {
	var s Silence
	if mulaw.Energy(s.NextBlock()) != 0 {
		t.Fatal("Silence source not silent")
	}
}

func TestRampDeterministic(t *testing.T) {
	a, b := &Ramp{}, &Ramp{}
	for i := 0; i < 10; i++ {
		ba, bb := a.NextBlock(), b.NextBlock()
		for j := range ba {
			if ba[j] != bb[j] {
				t.Fatal("ramp not deterministic")
			}
		}
	}
}
