// Package workload provides deterministic signal and traffic
// generators for the experiments: audio sources (tones, speech-like
// burst processes), video traffic, and the random processes used for
// jitter and loss injection. Everything is seeded and reproducible —
// the experiments must produce identical numbers on every run.
//
// Ownership: workload never holds segment wires. Sources fill
// caller-owned sample buffers (an AudioSource writes into the block
// the audio board hands it; a Camera paints the box's framestore);
// encoding those samples into a pooled segment.Wire — and every
// Retain/Release thereafter — is the caller's business.
package workload

import "math"

// RNG is a small, fast, deterministic generator (xorshift64*),
// independent of math/rand so results never change under us.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Norm returns an approximately normal value with the given mean and
// standard deviation (sum of uniforms, adequate for jitter shaping).
func (r *RNG) Norm(mean, stddev float64) float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return mean + (s-6)*stddev
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = 0.999999999
	}
	return mean * -math.Log(1-u)
}
