package workload

import "repro/internal/video"

// Camera generates deterministic synthetic camera frames: a smooth
// gradient with a bright moving block, enough structure to exercise
// the DPCM codec, sub-sampling and tear detection.
type Camera struct {
	w, h  int
	frame int
}

// NewCamera returns a camera of the given dimensions.
func NewCamera(w, h int) *Camera { return &Camera{w: w, h: h} }

// NextFrame produces the next frame.
func (c *Camera) NextFrame() *video.Frame {
	f := c.FrameAt(c.frame)
	c.frame++
	return f
}

// FrameAt produces frame number n deterministically.
func (c *Camera) FrameAt(n int) *video.Frame {
	f := video.NewFrame(c.w, c.h)
	for y := 0; y < c.h; y++ {
		for x := 0; x < c.w; x++ {
			f.Set(x, y, byte((x*2+y+n*3)&0xFF))
		}
	}
	// A bright block moving one pixel per frame — motion parallel to
	// segment boundaries, the §3.6 tear-revealing case.
	bs := c.w / 8
	bx := (n * 1) % (c.w - bs)
	by := c.h / 3
	for y := by; y < by+bs && y < c.h; y++ {
		for x := bx; x < bx+bs; x++ {
			f.Set(x, y, 250)
		}
	}
	return f
}
