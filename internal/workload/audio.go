package workload

import (
	"math"
	"repro/internal/mulaw"
	"repro/internal/segment"
)

// sineTable holds one cycle of a unit sine wave, 256 steps, scaled to
// 1<<14.
var sineTable [256]int32

func init() {
	for i := range sineTable {
		sineTable[i] = int32(math.Round(16384 * math.Sin(2*math.Pi*float64(i)/256)))
	}
}

// AudioSource produces successive 2 ms blocks of µ-law samples.
type AudioSource interface {
	// NextBlock returns the next 16-sample µ-law block. The returned
	// slice is freshly allocated.
	NextBlock() []byte
}

// BlockFiller is the allocation-free variant of AudioSource: the
// source writes the next block into caller-owned storage. All the
// built-in sources implement it; hot paths type-assert once and fall
// back to NextBlock for sources that don't.
type BlockFiller interface {
	// FillBlock overwrites dst (BlockSamples bytes) with the next
	// 16-sample µ-law block.
	FillBlock(dst []byte)
}

// Tone is a steady sine tone, useful for loss-audibility experiments
// ("undetectable except during solo violin pieces").
type Tone struct {
	amplitude int32
	phase     uint32
	step      uint32 // phase step per sample, 8.8 fixed point of table index
}

// NewTone returns a tone source at the given frequency (Hz) and
// linear amplitude.
func NewTone(freqHz int, amplitude int32) *Tone {
	// Phase advances freq/8000 cycles per sample; table has 256
	// entries; use 24.8 fixed point.
	return &Tone{
		amplitude: amplitude,
		step:      uint32(freqHz * 256 * 256 / segment.SampleRate),
	}
}

// NextBlock returns the next 2 ms of the tone.
func (t *Tone) NextBlock() []byte {
	b := make([]byte, segment.BlockSamples)
	t.FillBlock(b)
	return b
}

// FillBlock writes the next 2 ms of the tone into dst.
func (t *Tone) FillBlock(dst []byte) {
	for i := range dst {
		idx := (t.phase >> 8) & 0xFF
		v := sineTable[idx] * t.amplitude / 16384
		dst[i] = mulaw.Encode(int16(clamp(v)))
		t.phase += t.step
	}
}

// Speech is a speech-like source: alternating talk spurts and
// silences with exponentially distributed durations (the classic
// on/off model), carrying a modulated tone during spurts. It drives
// the muting and mixing experiments.
type Speech struct {
	rng        *RNG
	tone       *Tone
	talking    bool
	blocksLeft int
	meanTalk   float64 // blocks
	meanSilent float64 // blocks
}

// NewSpeech returns a speech-like source. Mean talk spurt 1.2 s and
// mean silence 1.8 s, in 2 ms blocks.
func NewSpeech(seed uint64, amplitude int32) *Speech {
	return &Speech{
		rng:        NewRNG(seed),
		tone:       NewTone(200, amplitude),
		meanTalk:   600,
		meanSilent: 900,
	}
}

// NextBlock returns the next 2 ms of speech-like audio.
func (s *Speech) NextBlock() []byte {
	b := make([]byte, segment.BlockSamples)
	s.FillBlock(b)
	return b
}

// FillBlock writes the next 2 ms of speech-like audio into dst.
func (s *Speech) FillBlock(dst []byte) {
	if s.blocksLeft <= 0 {
		s.talking = !s.talking
		mean := s.meanSilent
		if s.talking {
			mean = s.meanTalk
		}
		s.blocksLeft = int(s.rng.Exp(mean)) + 1
	}
	s.blocksLeft--
	if !s.talking {
		for i := range dst {
			dst[i] = mulaw.Silence
		}
		return
	}
	s.tone.FillBlock(dst)
}

// Talking reports whether the source is inside a talk spurt.
func (s *Speech) Talking() bool { return s.talking }

// Silence is an always-quiet source.
type Silence struct{}

// NextBlock returns 2 ms of silence.
func (Silence) NextBlock() []byte {
	b := make([]byte, segment.BlockSamples)
	Silence{}.FillBlock(b)
	return b
}

// FillBlock writes 2 ms of silence into dst.
func (Silence) FillBlock(dst []byte) {
	for i := range dst {
		dst[i] = mulaw.Silence
	}
}

// Ramp is a deterministic sawtooth marking each sample with its
// index, so tests can verify ordering and loss precisely.
type Ramp struct{ n uint32 }

// NextBlock returns the next 16 samples of the ramp.
func (r *Ramp) NextBlock() []byte {
	b := make([]byte, segment.BlockSamples)
	r.FillBlock(b)
	return b
}

// FillBlock writes the next 16 samples of the ramp into dst.
func (r *Ramp) FillBlock(dst []byte) {
	for i := range dst {
		dst[i] = mulaw.Encode(int16(r.n % 8000))
		r.n++
	}
}

func clamp(v int32) int32 {
	switch {
	case v > 32767:
		return 32767
	case v < -32768:
		return -32768
	}
	return v
}
