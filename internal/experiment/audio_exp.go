package experiment

import (
	"fmt"
	"time"

	"repro/internal/occam"
	"repro/internal/segment"
	"repro/internal/workload"
)

// E1 reproduces the §4.2 mixing-capacity claim: "The T425 transputer
// used on the audio board can mix five audio streams in the
// straightforward case, but only three if we have jitter correction,
// muting, an outgoing stream and the interface code running at the
// same time."
func E1() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Audio board mixing capacity",
		Paper:  "5 streams plain; 3 with jitter correction + muting + outgoing + interface (§4.2)",
		Header: []string{"config", "streams", "late ticks", "verdict"},
	}
	capacity := func(loaded bool) (last int) {
		for n := 1; n <= 8; n++ {
			late := e1LateFraction(n, loaded)
			name := "plain"
			if loaded {
				name = "loaded"
			}
			verdict := "keeps up"
			if late > 0.01 {
				verdict = "OVERLOADED"
			}
			t.Add(name, fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", late*100), verdict)
			if late <= 0.01 {
				last = n
			} else {
				break
			}
		}
		return last
	}
	plain := capacity(false)
	loaded := capacity(true)
	t.Remark("measured capacity: %d plain (paper: 5), %d loaded (paper: 3)", plain, loaded)
	return t
}

func e1LateFraction(n int, loaded bool) float64 {
	extras, events := "", ""
	if loaded {
		// The outgoing stream of the §4.2 loaded case rides on netsend.
		extras = " mic=tone:300:8000 jitter muting interface"
		events = "at 0s netsend dst -> sink stream=1 vci=2000\n"
	}
	r := runScenario(fmt.Sprintf(`
scenario e1
duration 2s
box dst%s
box sink
link dst sink bw=100M
feed dst n=%d base=100
%s`, extras, n, events))
	defer r.Close()
	st := r.Sys.Box("dst").AudioStats()
	if st.TicksRun == 0 {
		return 1
	}
	return float64(st.LateTicks) / float64(st.TicksRun+st.LateTicks)
}

// E2 reproduces the link-capacity claim: "The 20Mbit/s link to the
// server transputer is not a limiting factor; it would be capable of
// taking 100 audio streams if we could process them."
func E2() *Table {
	t := &Table{
		ID:     "E2",
		Title:  "20 Mbit/s server link audio capacity",
		Paper:  "capable of taking 100 audio streams (§4.2)",
		Header: []string{"streams", "offered", "delivered", "link util", "keeps up"},
	}
	for _, n := range []int{25, 50, 100, 150} {
		offered, delivered, util := e2LinkRun(n)
		ok := "yes"
		if delivered < offered {
			ok = "NO"
		}
		t.Add(fmt.Sprintf("%d", n), fmt.Sprintf("%d", offered),
			fmt.Sprintf("%d", delivered), fmt.Sprintf("%.0f%%", util*100), ok)
	}
	t.Remark("one 4ms audio segment is %d bytes on the link; capacity ≈ %d streams",
		segment.AudioHeaderSize+32+segment.StreamNumberSize,
		20_000_000*4/((segment.AudioHeaderSize+32+segment.StreamNumberSize)*8*1000))
	return t
}

func e2LinkRun(n int) (offered, delivered int, utilisation float64) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	link := occam.NewLink[audioSegMsg](rt, "a2s", 20_000_000)
	const rounds = 250 // 1 s of 4 ms segments
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		tone := workload.NewTone(400, 8000)
		pool := segment.NewWirePool()
		var (
			aseg  segment.Audio
			adata = make([]byte, 2*segment.BlockSamples)
		)
		for tick := 0; tick < rounds; tick++ {
			p.SleepUntil(occam.Time(int64(tick) * int64(4*time.Millisecond)))
			for i := 0; i < n; i++ {
				tone.FillBlock(adata[:segment.BlockSamples])
				tone.FillBlock(adata[segment.BlockSamples:])
				w := pool.Encode(aseg.Reset(uint32(tick), p.Now(), adata))
				link.Send(p, audioSegMsg{uint32(i), w}, w.Len()+segment.StreamNumberSize)
			}
		}
	})
	got := 0
	rt.Go("rx", nil, occam.High, func(p *occam.Proc) {
		for {
			msg := link.Recv(p)
			msg.W.Release()
			got++
		}
	})
	// Allow one second plus slack: a backlogged link won't finish.
	if err := rt.RunUntil(occam.Time(1020 * time.Millisecond)); err != nil {
		panic(err)
	}
	util := float64(link.BytesSent()*8) / (20_000_000 * 1.02)
	return rounds * n, got, util
}

type audioSegMsg struct {
	Stream uint32
	W      segment.Wire
}

// E3 reproduces the best one-way latency: "the best one-way trip time
// from microphone input of one box to speaker output of another box
// over the network was 8ms. 4ms of this can be accounted for in the
// buffering to the codec, and 2ms in the buffering from the codec."
func E3() *Table {
	t := &Table{
		ID:     "E3",
		Title:  "One-way mic→speaker latency",
		Paper:  "best 8 ms (4 ms to-codec buffering + 2 ms from-codec) (§4.2)",
		Header: []string{"metric", "measured", "paper"},
	}
	r := runScenario(`
scenario e3
duration 5s
box a mic=tone:400:10000
box b
link a b bw=100M prop=50us
at 0s audio a -> b as main
`)
	defer r.Close()
	st := r.Streams["main"]
	lat := r.Sys.Box("b").PlayoutLatency(st.VCIs["b"])
	t.Add("best", fmt.Sprintf("%.2fms", float64(lat.Min())/1e6), "8ms")
	t.Add("mean", fmt.Sprintf("%.2fms", float64(lat.Mean())/1e6), "-")
	t.Add("p99", fmt.Sprintf("%.2fms", float64(lat.Percentile(99))/1e6), "-")
	t.Remark("segment fill (up to 4ms) + link/switch + network + clawback + 2ms codec output fifo")
	return t
}

// E4 reproduces the video-induced audio jitter: "Thus video segments
// can hold up following audio segments, introducing up to 20ms of
// jitter in a stream" — and A4, the interleaved-transmission fix the
// paper did not implement.
func E4() *Table {
	t := &Table{
		ID:     "E4/A4",
		Title:  "Audio jitter from non-interleaved video segments",
		Paper:  "video can hold up audio, adding up to 20 ms of jitter (§4.2)",
		Header: []string{"config", "audio jitter", "mean latency"},
	}
	for _, mode := range []struct {
		name       string
		video      bool
		interleave bool
	}{
		{"audio only", false, false},
		{"audio + video (non-interleaved)", true, false},
		{"audio + video (A4: interleaved)", true, true},
	} {
		jit, mean := e4Run(mode.video, mode.interleave)
		t.Add(mode.name, fmt.Sprintf("%.2fms", float64(jit)/1e6), fmt.Sprintf("%.2fms", float64(mean)/1e6))
	}
	return t
}

func e4Run(withVideo, interleave bool) (jitter, mean time.Duration) {
	flags, vid := "", ""
	if interleave {
		flags = " interleave"
	}
	if withVideo {
		// segs=1: one big segment per frame, maximum hold-up.
		vid = "at 0s video a -> b rect=0,0,256,128 rate=1/5 segs=1\n"
	}
	// netif=7M: a slow enough interface that one video segment ≈ 15-20 ms.
	r := runScenario(fmt.Sprintf(`
scenario e4
duration 4s
box a mic=tone:400:10000 camera=256x128 netif=7M%s
box b camera=256x128
link a b bw=100M
at 0s audio a -> b as main
%s`, flags, vid))
	defer r.Close()
	lat := r.Sys.Box("b").PlayoutLatency(r.Streams["main"].VCIs["b"])
	return lat.Jitter(), lat.Mean()
}

// E17 reproduces the context-switch claim: "The context switching
// rate is probably around 5kHz, and is not a problem for the
// transputer" (switches cost <1 µs, §3.1).
func E17() *Table {
	t := &Table{
		ID:     "E17",
		Title:  "Context switch rate during one audio call",
		Paper:  "≈5 kHz context switches; <1 µs each is negligible (§4.2, §3.1)",
		Header: []string{"metric", "value"},
	}
	r := startScenario(`
scenario e17
duration 2s
box a mic=tone:400:10000
box b
link a b bw=100M
at 0s call a b
`, nil)
	before := r.Sys.RT.Switches()
	if err := r.RunFor(2 * time.Second); err != nil {
		panic(err)
	}
	perSec := float64(r.Sys.RT.Switches()-before) / 2
	r.Close()
	t.Add("switches/second (whole 2-box system)", fmt.Sprintf("%.0f", perSec))
	t.Add("switch budget at 1µs each", fmt.Sprintf("%.2f%% of one CPU", perSec*1e-6*100))
	return t
}

// E18 sweeps blocks-per-segment (§3.2): "We usually run with 2 blocks
// per segment (principle 7), but can alter this dynamically...
// (perhaps using 12 blocks = 24ms) or if we want a particularly low
// latency (1 block = 2ms)."
func E18() *Table {
	t := &Table{
		ID:     "E18",
		Title:  "Segment size vs latency and header overhead",
		Paper:  "1 block = lowest latency; 2 blocks usual; 12 blocks = 24 ms batching (§3.2)",
		Header: []string{"blocks/seg", "span", "best latency", "mean latency", "header overhead"},
	}
	for _, n := range []int{1, 2, 6, 12} {
		best, mean := e18Run(n)
		overhead := float64(segment.AudioHeaderSize) / float64(segment.AudioHeaderSize+n*segment.BlockSamples)
		t.Add(fmt.Sprintf("%d", n),
			(time.Duration(n) * segment.BlockDuration).String(),
			fmt.Sprintf("%.2fms", float64(best)/1e6),
			fmt.Sprintf("%.2fms", float64(mean)/1e6),
			fmt.Sprintf("%.0f%%", overhead*100))
	}
	return t
}

func e18Run(blocksPerSeg int) (best, mean time.Duration) {
	r := runScenario(fmt.Sprintf(`
scenario e18
duration 3s
box a mic=tone:400:10000 blocks=%d
box b
link a b bw=100M
at 0s audio a -> b as main
`, blocksPerSeg))
	defer r.Close()
	lat := r.Sys.Box("b").PlayoutLatency(r.Streams["main"].VCIs["b"])
	return lat.Min(), lat.Mean()
}

// E9 reproduces the §3.8 loss-audibility ladder by sweeping network
// loss rates and scoring the §3.8 event classes.
func E9() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Loss concealment quality vs loss rate",
		Paper:  "occasional 2ms drops rarely noticeable; repeated drops 'gravelly'; frequent replays 'garbled' (§3.8)",
		Header: []string{"loss rate", "lost segs", "concealed", "silences", "quality"},
	}
	for _, loss := range []float64{0, 0.001, 0.01, 0.08} {
		st := e9Run(loss)
		bad := st.concealed + st.silence
		rate := float64(bad) / float64(st.blocks+1)
		verdict := "clean"
		switch {
		case rate == 0 && st.lost == 0:
			verdict = "clean"
		case rate < 0.01:
			verdict = "occasional"
		case rate < 0.10:
			verdict = "gravelly"
		default:
			verdict = "garbled"
		}
		t.Add(fmt.Sprintf("%.1f%%", loss*100),
			fmt.Sprintf("%d", st.lost), fmt.Sprintf("%d", st.concealed),
			fmt.Sprintf("%d", st.silence), verdict)
	}
	return t
}

type e9Stats struct {
	blocks, lost, concealed, silence uint64
}

func e9Run(loss float64) e9Stats {
	r := runScenario(fmt.Sprintf(`
scenario e9
duration 10s
box a mic=tone:400:10000
box b
link a b bw=100M loss=%g lseed=42
at 0s audio a -> b as main
`, loss))
	defer r.Close()
	st := r.Streams["main"]
	m := r.Sys.Box("b").Mixer().Stats(st.VCIs["b"])
	return e9Stats{
		blocks:    m.Blocks,
		lost:      m.LostSegments,
		concealed: m.Concealed,
		silence:   m.Clawback.SilenceInserted,
	}
}
