package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/balancer"
	"repro/internal/core"
)

// BalanceResult is E24's machine-readable outcome, asserted by the
// tests: the balancer control plane placing, admitting, and migrating
// under load while the data plane stays byte-deterministic.
type BalanceResult struct {
	Boxes   int // every box including sources
	Viewers int // tree members
	// Admission: the budget holds two concurrent calls; the timeline
	// offers four, so exactly two must be refused outright — reject
	// before degrade.
	Budget   int
	Admitted uint64
	Rejected uint64
	// Migration: the video flood congests the relay's port and the
	// balancer re-homes its tree children mid-stream, before any
	// degrade shed and before the crash window opens.
	Migrations  int
	MigratedOff string
	MigrationOk bool // exactly one, off the hot box, in both twins
	AudioSheds  int  // must stay zero: only video is ever shed
	VideoSheds  int
	// Repair: with the balancer active, RepairTree's adopter scan is
	// load-driven. First-fit would re-adopt the hot box (it has spare
	// fanout and sits first in placement order); the balancer must not.
	FirstFitPick   string
	RepairAdopters []string
	AdoptersCool   bool // no adopter is the hot box
	Rehomed        int
	Spread         int // distinct feeder boxes after repair
	// Byte-identity between the faulted run and its fault-free twin,
	// over every delivery that never crossed the crashed box.
	Excluded    int
	Survivors   int
	Identical   bool
	AssertsPass bool
	Fingerprint string
}

// e24Run is one faulted-or-clean balancer churn run.
type e24Run struct {
	names   []string
	members []string
	st      *core.Stream
	// digests/segs are keyed "ref→dst": tree deliveries plus both legs
	// of every admitted call.
	digests map[string]uint64
	segs    map[string]uint64

	rejected   uint64
	admitted   uint64
	migrations []balancer.Migration
	audioSheds int
	videoSheds int
	adopters   []string // parent of each member re-homed by the repair
	rehomed    int
	hotRelays  int // hot box's children after migration (0 = fully drained)
	spread     int
	asserts    bool
	sumText    string
}

const (
	e24Hot   = "n00" // tree root relay the video flood congests
	e24Crash = "n01" // interior box whose server board crashes
)

// e24Spec builds the scenario text. One fabric with deliberately tight
// ports (2 Mbit/s, 512-cell egress queues): audio is comfortable, but
// the full-rate video aimed at the root relay saturates its port and
// gives the balancer something to migrate away from. The degrade layer
// runs too, tuned slower than the balancer, so the control-plane
// ordering is observable: reject (admission) before migrate before
// shed-video, and audio is never shed at all.
func e24Spec(seed uint64, faulted bool) (string, []string, []string) {
	var members []string
	for i := 0; i < 10; i++ {
		members = append(members, fmt.Sprintf("n%02d", i))
	}
	calls := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6"}

	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario e24\nseed %d\nduration 3s\n", seed)
	sb.WriteString("box src mic=speech:1:12000\n")
	sb.WriteString("box vsrc camera=128x128\n")
	for _, n := range members {
		attrs := ""
		if n == e24Hot {
			// The flood target needs a display sized for the video frames.
			attrs = " camera=128x128"
		}
		if faulted && n == e24Crash {
			// Kill the server board mid-stream: the box keeps its local
			// playout hardware but stops relaying to its subtree.
			attrs += " crash=server:1400ms-2200ms"
		}
		fmt.Fprintf(&sb, "box %s%s\n", n, attrs)
	}
	for i, c := range calls {
		fmt.Fprintf(&sb, "box %s mic=speech:%d:12000\n", c, i+2)
	}
	sb.WriteString("fabric fab portbw=1M egress=512\n")
	sb.WriteString("attach fab src vsrc " + strings.Join(members, " ") + " " + strings.Join(calls, " ") + "\n")
	sb.WriteString("degrade shed=200ms hold=600ms\n")
	sb.WriteString("balance budget=2 interval=20ms migrate=0.4 cooldown=5s maxmig=1\n")
	fmt.Fprintf(&sb, "at 0s tree src -> %s k=3 trees=1 as t\n", strings.Join(members, ","))
	// Four calls against a budget of two: k1 and k2 are admitted (k2's
	// callee is balancer-placed), k3 and k4 are refused outright.
	sb.WriteString("at 200ms call c0 c1 as k1\n")
	sb.WriteString("at 300ms call c2 ? as k2\n")
	sb.WriteString("at 400ms call c3 c4 as k3\n")
	sb.WriteString("at 500ms call c5 c6 as k4\n")
	// The flood: a full-rate video aimed at the root relay congests its
	// egress port in both twins; the balancer migrates the relay's tree
	// children off it well before the degrade ladder sheds the video.
	sb.WriteString("at 700ms video vsrc -> n00 rect=0,0,128,128 rate=1/1 as v\n")
	// The repair fires while the crashed box is down — in the clean
	// twin too, so both runs converge on the identical topology.
	fmt.Fprintf(&sb, "at 1600ms repair t %s\n", e24Crash)
	sb.WriteString("assert survivors-identical\n")
	sb.WriteString("assert rejected 2\n")
	fmt.Fprintf(&sb, "assert migrations %s 1\n", e24Hot)
	sb.WriteString("assert spread t 4\n")
	sb.WriteString("assert copies-max src 2\n")
	sb.WriteString("assert no-audio-shed\n")
	sb.WriteString("assert min-segments t 50\n")
	names := append([]string{"src", "vsrc"}, append(append([]string{}, members...), calls...)...)
	return sb.String(), names, members
}

func e24Churn(seed uint64, faulted bool) *e24Run {
	spec, names, members := e24Spec(seed, faulted)
	r := &e24Run{
		names:   names,
		members: members,
		digests: make(map[string]uint64),
		segs:    make(map[string]uint64),
	}
	run := runScenario(spec)
	defer run.Close()
	sum, err := run.Evaluate()
	if err != nil {
		panic(err)
	}
	r.asserts = sum.Pass
	r.sumText = sum.String()
	r.st = run.Streams["t"]

	// Deliveries: every named audio stream, keyed ref→dst.
	refs := make([]string, 0, len(run.Streams))
	for ref := range run.Streams {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	for _, ref := range refs {
		st := run.Streams[ref]
		if st.Video {
			continue
		}
		for dst, vci := range st.VCIs {
			m := run.Sys.Box(dst).Mixer().Stats(vci)
			key := ref + "→" + dst
			r.digests[key] = m.Digest
			r.segs[key] = m.Segments
		}
	}

	bal := run.Bal
	r.rejected = bal.Rejected()
	r.admitted = bal.Admitted()
	r.migrations = bal.Migrations()
	plan := r.st.Tree
	r.hotRelays = plan.Relays(e24Hot)
	r.spread = plan.FeederBoxes()
	for _, m := range plan.RehomedFrom(e24Crash) {
		r.adopters = append(r.adopters, plan.Parent(m))
	}
	r.rehomed = len(plan.RehomedFrom(e24Crash))
	ctrls := make([]string, 0, len(run.Ctrls))
	for name := range run.Ctrls {
		ctrls = append(ctrls, name)
	}
	sort.Strings(ctrls)
	for _, name := range ctrls {
		for _, act := range run.Ctrls[name].Actions() {
			if act.Restore {
				continue
			}
			if act.Video {
				r.videoSheds++
			} else {
				r.audioSheds++
			}
		}
	}
	return r
}

// E24 runs the balancer control-plane experiment at the default seed.
func E24() (*Table, *BalanceResult) { return E24Balance(42) }

// E24Balance drives the balancer control plane through churn: a
// ten-viewer replication tree, four calls against an admission budget
// of two, a video flood that congests the root relay's fabric port,
// and a mid-stream server-board crash. The balancer must reject the
// over-budget calls outright, migrate the hot relay's tree children
// off it between segments (before the degrade ladder touches the
// video, and with audio never shed at all), and steer the post-crash
// RepairTree adopters away from the still-hot box that plain first-fit
// would have picked. Every delivery that never crossed the crashed box
// stays byte-identical with the fault-free twin.
func E24Balance(seed uint64) (*Table, *BalanceResult) {
	t := &Table{
		ID:     "E24",
		Title:  "Balancer control plane: placement, admission, migration under churn",
		Paper:  "reconfiguration applies between segments; overload is refused, not served badly (§4.1 principle 6, §4.4)",
		Header: []string{"measure", "value"},
	}
	clean := e24Churn(seed, false)
	fl := e24Churn(seed, true)
	plan := fl.st.Tree

	res := &BalanceResult{
		Boxes:        len(fl.names),
		Viewers:      len(fl.members),
		Budget:       2,
		Admitted:     fl.admitted,
		Rejected:     fl.rejected,
		Migrations:   len(fl.migrations),
		AudioSheds:   fl.audioSheds,
		VideoSheds:   fl.videoSheds,
		FirstFitPick: e24Hot,
		Rehomed:      fl.rehomed,
		Spread:       fl.spread,
		AssertsPass:  fl.asserts && clean.asserts,
	}
	if len(fl.migrations) > 0 {
		res.MigratedOff = fl.migrations[0].Box
	}
	res.MigrationOk = len(fl.migrations) == 1 && res.MigratedOff == e24Hot &&
		len(clean.migrations) == 1 && clean.migrations[0].Box == e24Hot
	// The repair's adopters: first-fit would pick the hot box (it has
	// spare fanout after the migration and sits first in placement
	// order); the balancer must route every orphan elsewhere.
	res.RepairAdopters = append([]string{}, fl.adopters...)
	res.AdoptersCool = fl.hotRelays == 0 && len(fl.adopters) > 0
	for _, a := range fl.adopters {
		if a == e24Hot {
			res.AdoptersCool = false
		}
	}
	// Byte-identity over every delivery that never crossed the crashed
	// box: the crashed box's own playout and its one-time subtree are
	// excluded, everything else — tree members and call legs — must
	// match the fault-free twin exactly.
	res.Identical = true
	keys := make([]string, 0, len(fl.digests))
	for k := range fl.digests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst := k[strings.LastIndex(k, "→")+len("→"):]
		if dst == e24Crash || plan.EverUnder(dst, e24Crash) {
			res.Excluded++
			continue
		}
		res.Survivors++
		if fl.digests[k] != clean.digests[k] || fl.segs[k] != clean.segs[k] {
			res.Identical = false
		}
	}
	res.Fingerprint = balanceFingerprint(fl)

	t.Add("admission", fmt.Sprintf("budget %d: %d admitted, %d rejected outright", res.Budget, res.Admitted, res.Rejected))
	t.Add("migration", fmt.Sprintf("%d off %s mid-stream (queue %.0f%% at trigger)", res.Migrations, res.MigratedOff, migQueuePct(fl)))
	t.Add("shed ordering", fmt.Sprintf("%d video sheds, %d audio sheds (reject > migrate > shed-video > shed-audio)", res.VideoSheds, res.AudioSheds))
	t.Add("repair adopters", fmt.Sprintf("%v avoid hot %s (first-fit would re-adopt it)", res.RepairAdopters, e24Hot))
	t.Add("feeder spread", fmt.Sprintf("%d distinct boxes feed the tree after repair", res.Spread))
	t.Add("surviving deliveries byte-identical", fmt.Sprintf("%v (%d checked; %d excluded as ever-under %s)",
		res.Identical, res.Survivors, res.Excluded, e24Crash))
	t.Remark("the control plane sheds load by moving and refusing work; the data plane never pays for it in audio bytes")
	return t, res
}

func migQueuePct(r *e24Run) float64 {
	if len(r.migrations) == 0 {
		return 0
	}
	return 100 * r.migrations[0].Queue
}

// balanceFingerprint renders a finished run as one deterministic string.
func balanceFingerprint(r *e24Run) string {
	var sb strings.Builder
	keys := make([]string, 0, len(r.digests))
	for k := range r.digests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s: segs=%d digest=%016x\n", k, r.segs[k], r.digests[k])
	}
	fmt.Fprintf(&sb, "rejected=%d admitted=%d\n", r.rejected, r.admitted)
	for _, m := range r.migrations {
		fmt.Fprintf(&sb, "migration %s\n", m)
	}
	sb.WriteString(r.sumText)
	return sb.String()
}
