package experiment

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/clawback"
	"repro/internal/metrics"
	"repro/internal/segment"
	"repro/internal/workload"
)

const blockNS = int64(segment.BlockDuration)

// driveBuffer plays `secs` seconds of 2 ms ticks into buf: each tick
// one block arrives delayed by jitter(i) and one block is popped.
// occupancy(i) is sampled into the series every second.
func driveBuffer(buf baseline.Buffer, secs int, jitter func(i int) time.Duration, series *metrics.Series) {
	type pending struct {
		at int64
		it clawback.Item
	}
	var queue []pending
	ticks := secs * 500
	for i := 0; i < ticks; i++ {
		now := int64(i) * blockNS
		queue = append(queue, pending{at: now + int64(jitter(i)), it: clawback.Item{Stamp: now}})
		for len(queue) > 0 && queue[0].at <= now {
			buf.Push(queue[0].it)
			queue = queue[1:]
		}
		buf.Pop()
		if series != nil && i%500 == 0 {
			series.Add(time.Duration(now), float64(buf.Len())*2) // ms of correction
		}
	}
}

// E5 reproduces the clawback adaptation claim (§3.7.2): "It will take
// about one minute to adjust to the change from 20ms jitter
// correction to 4ms." The output is the figure-style series of
// jitter-correction delay vs time.
func E5() (*Table, *metrics.Series) {
	t := &Table{
		ID:     "E5",
		Title:  "Clawback adaptation after a jitter episode",
		Paper:  "20 ms → 4 ms at 2 ms per 8 s ≈ one minute (§3.7.2)",
		Header: []string{"time", "jitter correction"},
	}
	series := metrics.NewSeries("clawback delay (ms)")
	buf := baseline.Clawback{Buffer: clawback.New(clawback.Config{})}
	// 30 s of 20 ms jitter, then quiet for 100 s.
	jitter := func(i int) time.Duration {
		if i < 30*500 {
			return time.Duration(workload.NewRNG(uint64(i)).Intn(int(20 * time.Millisecond)))
		}
		return time.Millisecond
	}
	driveBuffer(buf, 130, jitter, series)
	var adaptedAt time.Duration = -1
	for _, p := range series.Points {
		if p.At > 30*time.Second && p.Value <= 4 && adaptedAt < 0 {
			adaptedAt = p.At
		}
	}
	for _, p := range series.Downsample(14) {
		t.Add(p.At.String(), fmt.Sprintf("%.0fms", p.Value))
	}
	if adaptedAt > 0 {
		t.Remark("reached the 4 ms target %v after the jitter stopped (paper: ≈1 minute)", adaptedAt-30*time.Second)
	}
	return t, series
}

// E6 reproduces the clock-drift claim: "our clocks are controlled by
// quartz oscillators with a 1 in 10⁵ drift rate, our 1 in 4000
// clawback rate is sufficient."
func E6() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "Clock drift absorbed by the clawback rate",
		Paper:  "1/4000 clawback rate covers 1/10⁵ quartz drift (§3.7.2)",
		Header: []string{"drift", "minutes", "max occupancy", "claw drops", "silences"},
	}
	for _, drift := range []float64{1e-5, 1e-4} {
		buf := clawback.New(clawback.Config{})
		maxOcc := 0
		// Source fast by `drift`: one extra block every 1/drift blocks.
		extraEvery := int(1 / drift)
		const minutes = 10
		for i := 0; i < minutes*60*500; i++ {
			buf.PushItem(clawback.Item{Stamp: int64(i)})
			if i%extraEvery == 0 {
				buf.PushItem(clawback.Item{Stamp: int64(i)})
			}
			buf.Pop()
			if buf.Len() > maxOcc {
				maxOcc = buf.Len()
			}
		}
		st := buf.Stats()
		t.Add(fmt.Sprintf("%.0e", drift),
			fmt.Sprintf("%d", minutes),
			fmt.Sprintf("%d blocks (%.0fms)", maxOcc, float64(maxOcc)*2),
			fmt.Sprintf("%d", st.ClawDrops),
			fmt.Sprintf("%d", st.SilenceInserted))
	}
	t.Remark("the 1/4096 claw rate exceeds both drifts, so occupancy stays near the target")
	return t
}

// E7 reproduces the multi-rate clawback numbers (§3.7.2): 20
// block·seconds ⇒ drop every 4 s at 10 ms minimum contents, every
// 0.8 s at 50 ms, and halving time ≈ 0.7 × level ≈ 14 s.
func E7() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Multi-rate clawback",
		Paper:  "20 block·s: 10 ms min → drop/4 s; 50 ms → drop/0.8 s; half-life ≈ 14 s (§3.7.2)",
		Header: []string{"steady contents", "measured drop period", "paper"},
	}
	for _, c := range []struct {
		blocks int
		paper  string
	}{{5, "4s"}, {25, "0.8s"}} {
		period := e7DropPeriod(c.blocks)
		t.Add(fmt.Sprintf("%dms", c.blocks*2), period.String(), c.paper)
	}
	half := e7HalfLife()
	t.Add("half-life from 100ms", half.String(), "≈14s")
	return t
}

func e7DropPeriod(blocks int) time.Duration {
	b := clawback.New(clawback.Config{MultiRate: true, LimitBlocks: 100})
	for i := 0; i < blocks; i++ {
		b.Push(nil)
	}
	var drops []int
	budget := int(clawback.DefaultLevel/0.002) + 10*int(clawback.DefaultLevel/(float64(blocks)*0.002))
	for i := 0; len(drops) < 4 && i < budget; i++ {
		before := b.Stats().ClawDrops
		b.Push(nil)
		if b.Stats().ClawDrops != before {
			drops = append(drops, i)
		}
		b.Pop()
		if b.Len() < blocks {
			b.Push(nil)
		}
	}
	if len(drops) < 4 {
		return 0
	}
	return time.Duration(drops[3]-drops[2]) * segment.BlockDuration
}

func e7HalfLife() time.Duration {
	b := clawback.New(clawback.Config{MultiRate: true, LimitBlocks: 100})
	for i := 0; i < 50; i++ {
		b.Push(nil)
	}
	for b.Stats().ClawDrops == 0 { // let the window lock on
		b.Push(nil)
		b.Pop()
	}
	start := b.Len()
	ticks := 0
	for b.Len() > start/2 {
		b.Push(nil)
		b.Pop()
		ticks++
	}
	return time.Duration(ticks) * segment.BlockDuration
}

// E14 compares the clawback buffer against the §5.1 alternatives
// under the same burst-jitter scenario.
func E14() *Table {
	t := &Table{
		ID:     "E14",
		Title:  "Clawback vs elastic-dump vs clock-adjust vs Naylor",
		Paper:  "clawback: one parameter, destination-only, no timestamps; alternatives glitch or hold delay (§3.7.2, §5.1)",
		Header: []string{"scheme", "glitch blocks", "distortions", "mean delay after burst", "needs timestamps"},
	}
	burst := func(i int) time.Duration {
		switch {
		case i >= 20*500 && i < 40*500:
			return time.Duration(workload.NewRNG(uint64(i)).Intn(int(20 * time.Millisecond)))
		default:
			return time.Duration(workload.NewRNG(uint64(i)).Intn(int(2 * time.Millisecond)))
		}
	}
	type result struct {
		name                 string
		glitches, distortion uint64
		delay                float64
		needsTS              string
	}
	var now int64
	runOne := func(name string, buf baseline.Buffer, needsTS string) result {
		series := metrics.NewSeries(name)
		driveBuffer(buf, 120, burst, series)
		var sum float64
		var n int
		for _, p := range series.Points {
			if p.At > 60*time.Second {
				sum += p.Value
				n++
			}
		}
		r := result{name: name, delay: sum / float64(n), needsTS: needsTS}
		switch x := buf.(type) {
		case baseline.Clawback:
			r.glitches = x.Stats().SilenceInserted
		case *baseline.ElasticDump:
			r.glitches = x.Silence + x.Dropped
		case *baseline.ClockAdjust:
			r.glitches = x.Silence
			r.distortion = x.Skipped + x.Stretched
		case *baseline.Naylor:
			r.glitches = x.Silence + x.Dropped
		}
		return r
	}
	results := []result{
		runOne("clawback", baseline.Clawback{Buffer: clawback.New(clawback.Config{})}, "no"),
		runOne("elastic dump", baseline.NewElasticDump(2, 12), "no"),
		runOne("clock adjust", baseline.NewClockAdjust(2, 12, 8), "no"),
		runOne("naylor delay-analysis", baseline.NewNaylor(200, 95, func() int64 { return now }), "YES"),
	}
	for _, r := range results {
		t.Add(r.name, fmt.Sprintf("%d", r.glitches), fmt.Sprintf("%d", r.distortion),
			fmt.Sprintf("%.1fms", r.delay), r.needsTS)
	}
	return t
}

// E19 reproduces the buffering limits (§3.7.2): a 4 s shared pool and
// a ~120 ms per-stream cap, with above-limit arrivals dropped and the
// condition reported.
func E19() *Table {
	t := &Table{
		ID:     "E19",
		Title:  "Clawback pool and per-stream limits",
		Paper:  "4 s shared pool; no point buffering more than ≈120 ms per stream (§3.7.2)",
		Header: []string{"scenario", "limit drops", "pool drops", "max occupancy"},
	}
	// Per-stream cap: one stream with absurd jitter.
	b := clawback.New(clawback.Config{})
	for i := 0; i < 200; i++ {
		b.Push(nil)
	}
	t.Add("one stream, 400 ms burst", fmt.Sprintf("%d", b.Stats().LimitDrops), "0",
		b.Occupancy().String())
	// Shared pool: 40 streams × 100 ms wants 4000 blocks > 2000 pool.
	pool := clawback.NewPool(0)
	var limitDrops, poolDrops uint64
	maxUsed := 0
	for i := 0; i < 40; i++ {
		s := clawback.New(clawback.Config{Pool: pool})
		for j := 0; j < 55; j++ {
			s.Push(nil)
		}
		limitDrops += s.Stats().LimitDrops
		poolDrops += s.Stats().PoolDrops
		if pool.Used() > maxUsed {
			maxUsed = pool.Used()
		}
	}
	t.Add("40 streams × 110 ms burst", fmt.Sprintf("%d", limitDrops),
		fmt.Sprintf("%d", poolDrops),
		fmt.Sprintf("%d of %d pool blocks", maxUsed, pool.Capacity()))
	return t
}

// E16 reproduces the SuperJanet trial (§3.7.2): "Unmodified Pandora's
// Boxes communicated audio and video successfully under the high
// jitter conditions of a connection from Cambridge to London
// involving several networks and protocol conversions."
func E16() *Table {
	t := &Table{
		ID:     "E16",
		Title:  "SuperJanet: unmodified boxes over a high-jitter multi-network path",
		Paper:  "audio and video communicated successfully under high jitter (§3.7.2)",
		Header: []string{"metric", "value"},
	}
	// Three networks with protocol conversions: middling bandwidths,
	// real propagation, small queues — and heavy cross traffic on the
	// middle hop.
	r := runScenario(`
scenario e16
duration 30s
box cam mic=tone:400:10000
box lon
link cam lon bw=100M prop=200us / bw=8M prop=3ms queue=32 / bw=100M prop=200us
cross cam lon hop=1 vci=9000 seed=7 gap=12ms size=2000+4000
at 0s audio cam -> lon as main
`)
	defer r.Close()
	st := r.Streams["main"]
	m := r.Sys.Box("lon").Mixer().Stats(st.VCIs["lon"])
	lat := r.Sys.Box("lon").PlayoutLatency(st.VCIs["lon"])
	t.Add("segments delivered", fmt.Sprintf("%d", m.Segments))
	t.Add("segments lost in the network", fmt.Sprintf("%d", m.LostSegments))
	t.Add("silence insertions", fmt.Sprintf("%d (%s of playback)", m.Clawback.SilenceInserted,
		pct(m.Clawback.SilenceInserted, m.Blocks)))
	t.Add("claw drops (delay recovered)", fmt.Sprintf("%d", m.Clawback.ClawDrops))
	t.Add("one-way latency p99", fmt.Sprintf("%.1fms", float64(lat.Percentile(99))/1e6))
	t.Add("jitter absorbed", fmt.Sprintf("%.1fms", float64(lat.Jitter())/1e6))
	t.Remark("the stream keeps playing: losses and silences stay a small fraction of blocks")
	return t
}

// A3 demonstrates the danger the paper calls out: a clawback counter
// that never resets "would be applied during occasional short
// intervals of low jitter, and lead to unnecessary degradation of the
// audio stream when the jitter increased again."
func A3() *Table {
	t := &Table{
		ID:     "A3",
		Title:  "Clawback counter: reset-below-target vs never-reset",
		Paper:  "faster correction risks degrading during brief quiet intervals (§3.7.2)",
		Header: []string{"variant", "claw drops", "silences after drops"},
	}
	// Alternating jitter: 6 s of 12 ms jitter, 3 s quiet, repeated.
	jitter := func(i int) time.Duration {
		if (i/500)%9 < 6 {
			return time.Duration(workload.NewRNG(uint64(i)).Intn(int(12 * time.Millisecond)))
		}
		return 500 * time.Microsecond
	}
	for _, v := range []struct {
		name    string
		noReset bool
	}{{"paper (reset below target)", false}, {"ablated (never reset)", true}} {
		buf := baseline.Clawback{Buffer: clawback.New(clawback.Config{NoReset: v.noReset, ClawCount: 512})}
		driveBuffer(buf, 180, jitter, nil)
		st := buf.Stats()
		t.Add(v.name, fmt.Sprintf("%d", st.ClawDrops), fmt.Sprintf("%d", st.SilenceInserted))
	}
	t.Remark("the ablated variant claws during quiet gaps, then underruns when jitter returns")
	return t
}
