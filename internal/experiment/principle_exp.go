package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/decouple"
	"repro/internal/metrics"
	"repro/internal/mulaw"
	"repro/internal/muting"
	"repro/internal/occam"
	"repro/internal/repository"
	"repro/internal/scenario"
	"repro/internal/segment"
	"repro/internal/workload"
)

// E8 regenerates figure 4.1: the muting factor timeline around a
// threshold crossing, at 2 ms block granularity.
func E8() (*Table, *metrics.Series) {
	t := &Table{
		ID:     "E8",
		Title:  "Muting function (figure 4.1)",
		Paper:  "20% for 22ms after the last crossing, then 50% for 22ms, then 100%; ≥4ms reaction margin",
		Header: []string{"time since crossing", "factor"},
	}
	m := muting.New(muting.Config{})
	series := metrics.NewSeries("mute factor")
	loud := make([]byte, segment.BlockSamples)
	for i := range loud {
		loud[i] = mulaw.Encode(20000)
	}
	// Speech burst: crossings from 10 ms to 30 ms.
	for i := 0; i < 60; i++ {
		now := int64(i) * int64(segment.BlockDuration)
		if i >= 5 && i < 15 {
			m.ObserveSpeaker(now, loud)
		}
		series.Add(time.Duration(now), m.FactorAt(now))
	}
	last := int64(14) * int64(segment.BlockDuration) // last crossing
	for _, at := range []int64{0, 2, 10, 20, 21, 22, 30, 43, 44, 60} {
		now := last + at*int64(time.Millisecond)
		t.Add(fmt.Sprintf("%dms", at), fmt.Sprintf("%.0f%%", m.FactorAt(now)*100))
	}
	t.Remark("figure: %s", sparkline(series, 30))
	return t, series
}

// sparkline renders a tiny text plot of a series.
func sparkline(s *metrics.Series, n int) string {
	pts := s.Downsample(n)
	if len(pts) == 0 {
		return ""
	}
	min, max := pts[0].Value, pts[0].Value
	for _, p := range pts {
		if p.Value < min {
			min = p.Value
		}
		if p.Value > max {
			max = p.Value
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, p := range pts {
		idx := 0
		if max > min {
			idx = int((p.Value - min) / (max - min) * float64(len(levels)-1))
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}

// E10 reproduces the overload-priority principles 1–3 (§2.1).
func E10() *Table {
	t := &Table{
		ID:     "E10",
		Title:  "Degradation order under overload (principles 1–3)",
		Paper:  "incoming before outgoing; video before audio; oldest streams first (§2.1)",
		Header: []string{"principle", "observation", "holds"},
	}

	// P1: CPU overload on the audio board — incoming mixing degrades,
	// the outgoing mic stream does not. The feed (6 streams) is over
	// the loaded capacity of 3.
	{
		r := runScenario(`
scenario e10p1
duration 3s
box dst mic=tone:300:9000 jitter muting interface
box sink
link dst sink bw=100M
feed dst n=6 base=100
at 0s audio dst -> sink as out
`)
		st := r.Streams["out"]
		a := r.Sys.Box("dst").AudioStats()
		incomingDegraded := a.LateTicks > 0
		outgoingClean := a.MicDrops == 0 && r.Sys.Box("sink").Mixer().Stats(st.VCIs["sink"]).Segments > 500
		t.Add("P1 outgoing priority",
			fmt.Sprintf("late mix ticks=%d, mic drops=%d", a.LateTicks, a.MicDrops),
			yes(incomingDegraded && outgoingClean))
		r.Close()
	}

	// P2: a constricted network output loses video, not audio
	// (netif=2500k: interface too slow for the video).
	{
		r := runScenario(`
scenario e10p2
duration 4s
box a mic=tone:300:9000 camera=256x128 netif=2500k
box b camera=256x128
link a b bw=100M
at 0s audio a -> b as main
at 0s video a -> b rect=0,0,256,128 rate=1/1
`)
		st := r.Streams["main"]
		sw := r.Sys.Box("a").SwitchStats()
		audioLost := r.Sys.Box("b").Mixer().Stats(st.VCIs["b"]).LostSegments
		videoDropped := sw.FullDrops[2] + sw.AgeDrops[2] // bufNetVideo slot
		t.Add("P2 audio priority",
			fmt.Sprintf("video drops=%d, audio lost=%d", videoDropped, audioLost),
			yes(videoDropped > 20 && audioLost < videoDropped/10))
		r.Close()
	}

	// P3: with the video buffer overloaded by two equal streams, the
	// older stream degrades first.
	{
		r := runScenario(`
scenario e10p3
duration 5s
box a camera=256x128 netif=3M
box b camera=256x128
link a b bw=100M
at 0s video a -> b rect=0,0,256,64 rate=1/1 as old
at 500ms video a -> b rect=0,64,256,64 rate=1/1 as new
`)
		sw := r.Sys.Box("a").SwitchStats()
		oldDrops := sw.PerStreamDrops[r.Streams["old"].Local]
		newDrops := sw.PerStreamDrops[r.Streams["new"].Local]
		t.Add("P3 new-stream priority",
			fmt.Sprintf("old stream drops=%d, new stream drops=%d", oldDrops, newDrops),
			yes(oldDrops > 2*newDrops))
		r.Close()
	}
	return t
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// E11 reproduces principle 5: a slow destination of a split stream
// does not affect the other copies.
func E11() *Table {
	t := &Table{
		ID:     "E11",
		Title:  "Upstream independence of split streams (principle 5)",
		Paper:  "downstream bottlenecks must not affect streams split off earlier (§2.2)",
		Header: []string{"destination", "path", "segments", "lost"},
	}
	// The 64 kbit/s queue=4 path to slow is hopeless by design.
	r := runScenario(`
scenario e11
duration 5s
box src mic=tone:440:9000
box fast
box slow
link src fast bw=100M
link src slow bw=64k queue=4
at 0s audio src -> fast,slow as main
`)
	defer r.Close()
	st := r.Streams["main"]
	fast := r.Sys.Box("fast").Mixer().Stats(st.VCIs["fast"])
	slow := r.Sys.Box("slow").Mixer().Stats(st.VCIs["slow"])
	t.Add("fast", "100 Mbit/s", fmt.Sprintf("%d", fast.Segments), fmt.Sprintf("%d", fast.LostSegments))
	t.Add("slow", "64 kbit/s", fmt.Sprintf("%d", slow.Segments), fmt.Sprintf("%d", slow.LostSegments))
	t.Remark("fast copy complete (%s loss) while the slow path sheds most segments", pct(fast.LostSegments, fast.Segments+fast.LostSegments))
	return t
}

// E12 reproduces principle 6: reconfiguration leaves flowing copies
// undisturbed.
func E12() *Table {
	t := &Table{
		ID:     "E12",
		Title:  "Continuity during reconfiguration (principle 6)",
		Paper:  "splitting or closing one destination must not affect the other copies (§2.2)",
		Header: []string{"phase", "kept copy lost segments"},
	}
	r := startScenario(`
scenario e12
duration 3s
box src mic=tone:440:9000
box keep
box extra
link src keep bw=100M
link src extra bw=100M
at 0s audio src -> keep as main
at 1s split main extra
at 2s drop main extra
`, nil)
	defer r.Close()
	check := func(phase string, d time.Duration) {
		if err := r.RunFor(d); err != nil {
			panic(err)
		}
		st := r.Streams["main"]
		t.Add(phase, fmt.Sprintf("%d", r.Sys.Box("keep").Mixer().Stats(st.VCIs["keep"]).LostSegments))
	}
	check("single destination", time.Second)
	check("after split to second destination", time.Second)
	check("after closing second destination", time.Second)
	return t
}

// E13 reproduces principle 4: command latency stays bounded under
// full data load.
func E13() *Table {
	t := &Table{
		ID:     "E13",
		Title:  "Command transport under stream overload (principle 4)",
		Paper:  "stream processing must never prevent command execution (§2.1)",
		Header: []string{"load", "command round trip"},
	}
	for _, loaded := range []bool{false, true} {
		events := ""
		if loaded {
			events = "at 0s audio a -> b\nat 0s video a -> b rect=0,0,256,128 rate=1/1\n"
		}
		var rtt time.Duration
		var r *scenario.Runner
		r = startScenario(fmt.Sprintf(`
scenario e13
duration 1500ms
box a mic=tone:300:9000 camera=256x128
box b camera=256x128
link a b bw=6M
%s`, events), func(p *occam.Proc) {
			if loaded {
				p.Sleep(time.Second)
			}
			before := p.Now()
			r.Sys.Box("a").RequestSwitchReport(p)
			// The report lands in the log; the switch handled the
			// command synchronously before continuing with data.
			rtt = time.Duration(p.Now() - before)
		})
		if err := r.RunFor(1500 * time.Millisecond); err != nil {
			panic(err)
		}
		name := "idle"
		if loaded {
			name = "audio + full-rate video over a congested link"
		}
		t.Add(name, rtt.String())
		r.Close()
	}
	return t
}

// E15 reproduces the repository re-segmentation (§3.2).
func E15() *Table {
	t := &Table{
		ID:     "E15",
		Title:  "Repository re-segmentation: 2 ms blocks → 40 ms segments",
		Paper:  "40ms segments of 320 bytes + 36 byte header cut header overhead ≈5× (§3.2)",
		Header: []string{"form", "segments", "bytes", "header overhead"},
	}
	var segs []*segment.Audio
	tone := workload.NewTone(440, 9000)
	for i := 0; i < 500; i++ { // 2 s of live 2-block segments
		segs = append(segs, segment.NewAudio(uint32(i), occam.Time(i*4_000_000), [][]byte{tone.NextBlock(), tone.NextBlock()}))
	}
	rec := &repository.Recording{Stream: 1, Segments: segs}
	merged := rec.Resegment()
	t.Add("live (2 blocks/seg)", fmt.Sprintf("%d", len(rec.Segments)),
		fmt.Sprintf("%d", rec.StoredBytes()), fmt.Sprintf("%.0f%%", rec.HeaderOverhead()*100))
	t.Add("merged (20 blocks/seg)", fmt.Sprintf("%d", len(merged.Segments)),
		fmt.Sprintf("%d", merged.StoredBytes()), fmt.Sprintf("%.0f%%", merged.HeaderOverhead()*100))
	t.Remark("storage shrinks %.1fx; audio identical (%d blocks both)",
		float64(rec.StoredBytes())/float64(merged.StoredBytes()), merged.Blocks())
	return t
}

// E20 demonstrates the ready-channel protocol of figure 3.6: the
// immediate TRUE/FALSE reply lets upstream drop instead of block, and
// avoids the ambiguous plain-acknowledgement race.
func E20() *Table {
	t := &Table{
		ID:     "E20",
		Title:  "Ready-channel protocol (figure 3.6)",
		Paper:  "immediate reply after every input; after FALSE the producer drops instead of blocking (§3.7.1)",
		Header: []string{"producer strategy", "items offered", "delivered", "dropped", "producer blocked"},
	}
	for _, ready := range []bool{true, false} {
		offered, delivered, dropped, blocked := e20Run(ready)
		name := "ready protocol (drop when full)"
		if !ready {
			name = "plain buffer (block when full)"
		}
		t.Add(name, fmt.Sprintf("%d", offered), fmt.Sprintf("%d", delivered),
			fmt.Sprintf("%d", dropped), blocked.String())
	}
	t.Remark("with the ready channel the producer never blocks, so other streams it serves stay live (principle 5)")
	return t
}

func e20Run(ready bool) (offered, delivered int, dropped uint64, blocked time.Duration) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	var opts []decouple.Option
	if ready {
		opts = append(opts, decouple.WithReady())
	}
	d := decouple.New[int](rt, nil, "buf", 4, nil, opts...)
	var sender *decouple.Sender[int]
	if ready {
		sender = decouple.NewSender(d)
	}
	const n = 500
	rt.Go("producer", nil, occam.Low, func(p *occam.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(2 * time.Millisecond)
			offered++
			if ready {
				var rdy bool
				// Drain any pending TRUE first.
				if p.Alt(sender.ReadyGuard(&rdy), occam.Skip()) == 0 {
					sender.Update(rdy)
				}
				sender.Deliver(p, i)
			} else {
				before := p.Now()
				d.In.Send(p, i)
				blocked += time.Duration(p.Now() - before)
			}
		}
	})
	got := 0
	rt.Go("slowConsumer", nil, occam.Low, func(p *occam.Proc) {
		for {
			d.Out.Recv(p)
			got++
			p.Sleep(10 * time.Millisecond) // 5x slower than the producer
		}
	})
	if err := rt.RunUntil(occam.Time(20 * time.Second)); err != nil {
		panic(err)
	}
	if ready {
		dropped = sender.Dropped()
	}
	return offered, got, dropped, blocked
}

// A1 compares the paper's buffer placement (downstream of the switch,
// per output) with a single shared buffer upstream of the switch: the
// upstream variant head-of-line blocks every output behind the
// slowest one.
func A1() *Table {
	t := &Table{
		ID:     "A1",
		Title:  "Decoupling buffers downstream vs upstream of the switch",
		Paper:  "buffers are placed downstream of the switch so one slow output cannot affect the others (§3.7.1)",
		Header: []string{"placement", "fast output throughput", "slow output throughput"},
	}
	for _, downstream := range []bool{true, false} {
		fast, slow := a1Run(downstream)
		name := "downstream per-output (paper)"
		if !downstream {
			name = "one shared upstream buffer"
		}
		t.Add(name, fmt.Sprintf("%d items", fast), fmt.Sprintf("%d items", slow))
	}
	t.Remark("with the shared upstream queue the fast output is dragged down to the slow one's rate")
	return t
}

func a1Run(downstream bool) (fastN, slowN int) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	type item struct {
		dst int
	}
	fastOut := occam.NewChan[item](rt, "fast")
	slowOut := occam.NewChan[item](rt, "slow")

	if downstream {
		// Paper: switch first, then one buffer per output with ready
		// protocol.
		bufF := decouple.New[item](rt, nil, "bf", 8, nil, decouple.WithReady())
		bufS := decouple.New[item](rt, nil, "bs", 8, nil, decouple.WithReady())
		rt.Go("switch", nil, occam.High, func(p *occam.Proc) {
			sf, ss := decouple.NewSender(bufF), decouple.NewSender(bufS)
			for i := 0; ; i++ {
				p.Sleep(time.Millisecond)
				it := item{dst: i % 2}
				var rdy bool
				if p.Alt(sf.ReadyGuard(&rdy), occam.Skip()) == 0 {
					sf.Update(rdy)
				}
				if p.Alt(ss.ReadyGuard(&rdy), occam.Skip()) == 0 {
					ss.Update(rdy)
				}
				if it.dst == 0 {
					sf.Deliver(p, it)
				} else {
					ss.Deliver(p, it)
				}
			}
		})
		rt.Go("fwdF", nil, occam.High, func(p *occam.Proc) {
			for {
				fastOut.Send(p, bufF.Out.Recv(p))
			}
		})
		rt.Go("fwdS", nil, occam.High, func(p *occam.Proc) {
			for {
				slowOut.Send(p, bufS.Out.Recv(p))
			}
		})
	} else {
		// Ablation: one shared buffer before the switch; the switch
		// blocks sending to the slow output.
		shared := decouple.New[item](rt, nil, "shared", 8, nil)
		rt.Go("producer", nil, occam.High, func(p *occam.Proc) {
			for i := 0; ; i++ {
				p.Sleep(time.Millisecond)
				shared.In.Send(p, item{dst: i % 2})
			}
		})
		rt.Go("switch", nil, occam.High, func(p *occam.Proc) {
			for {
				it := shared.Out.Recv(p)
				if it.dst == 0 {
					fastOut.Send(p, it) // blocks when fast consumer busy
				} else {
					slowOut.Send(p, it) // blocks for ages: head-of-line
				}
			}
		})
	}
	rt.Go("fastConsumer", nil, occam.Low, func(p *occam.Proc) {
		for {
			fastOut.Recv(p)
			fastN++
			p.Sleep(2 * time.Millisecond)
		}
	})
	rt.Go("slowConsumer", nil, occam.Low, func(p *occam.Proc) {
		for {
			slowOut.Recv(p)
			slowN++
			p.Sleep(50 * time.Millisecond)
		}
	})
	if err := rt.RunUntil(occam.Time(5 * time.Second)); err != nil {
		panic(err)
	}
	return fastN, slowN
}

// A2 compares the split audio/video network buffers of figure 3.7
// against one shared buffer: sharing costs audio its priority.
func A2() *Table {
	t := &Table{
		ID:     "A2",
		Title:  "Split audio/video network buffers vs shared (figure 3.7)",
		Paper:  "audio is buffered separately so that it can be given priority (principle 2)",
		Header: []string{"buffers", "audio jitter", "audio silences", "audio lost"},
	}
	for _, shared := range []bool{false, true} {
		jit, silences, lost := a2Run(shared)
		name := "split (paper)"
		if shared {
			name = "shared (ablated)"
		}
		t.Add(name, fmt.Sprintf("%.1fms", float64(jit)/1e6),
			fmt.Sprintf("%d", silences), fmt.Sprintf("%d", lost))
	}
	return t
}

func a2Run(shared bool) (jitter time.Duration, silences, lost uint64) {
	flags := ""
	if shared {
		flags = " sharednet"
	}
	r := runScenario(fmt.Sprintf(`
scenario a2
duration 5s
box a mic=tone:400:10000 camera=256x128 netif=3500k%s
box b camera=256x128
link a b bw=100M
at 0s audio a -> b as main
at 0s video a -> b rect=0,0,256,128 rate=1/1
`, flags))
	defer r.Close()
	st := r.Streams["main"]
	m := r.Sys.Box("b").Mixer().Stats(st.VCIs["b"])
	return r.Sys.Box("b").PlayoutLatency(st.VCIs["b"]).Jitter(), m.Clawback.SilenceInserted, m.LostSegments
}
