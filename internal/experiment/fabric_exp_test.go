package experiment

import "testing"

// TestE22FabricIsolation asserts the documented acceptance criteria:
// no audio shed anywhere, video shed oldest-first on the congested
// port, every uncongested port's delivery byte-identical to the
// fault-free run, and the aggregate throughput loss bounded by the
// congested port's share.
func TestE22FabricIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	_, r := E22()
	if r.AudioShed != 0 {
		t.Fatalf("audio shed %d times — principle 2 violated at the fabric", r.AudioShed)
	}
	if r.VideoShed < 2 {
		t.Fatalf("only %d video sheds — the congested port never engaged", r.VideoShed)
	}
	if !r.OldestFirst {
		t.Fatalf("shed order %v did not take the oldest video stream first", r.ShedOrder)
	}
	if r.CleanSheds != 0 {
		t.Fatalf("%d sheds in the fault-free run — congestion is not fault-driven", r.CleanSheds)
	}
	if !r.PortIsolated {
		t.Fatal("a fault on one port changed delivery on an uncongested port — principle 5 violated")
	}
	if r.InjectedFaults == 0 {
		t.Fatal("no injected faults fired on the congested port")
	}
	// The congested port carries about a third of the fabric's bytes;
	// even losing half of them must keep the aggregate above 75%.
	if 4*r.ForwardedBytes < 3*r.CleanBytes {
		t.Fatalf("aggregate delivery collapsed: %d of %d fault-free bytes",
			r.ForwardedBytes, r.CleanBytes)
	}
}

// TestE22DeterministicReplay: the whole faulted fabric run derives
// from the seed, so a replay is byte-identical and a different seed
// is not.
func TestE22DeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	_, r1 := E22Fabric(777)
	_, r2 := E22Fabric(777)
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatalf("same seed, different runs:\n--- run 1\n%s--- run 2\n%s", r1.Fingerprint, r2.Fingerprint)
	}
	_, r3 := E22Fabric(778)
	if r3.Fingerprint == r1.Fingerprint {
		t.Fatal("different seeds produced identical fault schedules")
	}
}
