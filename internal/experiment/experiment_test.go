package experiment

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// These tests assert the *shape* of every experiment: who wins, by
// roughly what factor, where the paper's crossovers fall.

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.Fields(s)[0])
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return n
}

func TestE1CapacitiesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := E1()
	// The remark carries the measured capacities.
	remark := tab.Remarks[len(tab.Remarks)-1]
	if !strings.Contains(remark, "5 plain") || !strings.Contains(remark, "3 loaded") {
		t.Fatalf("capacities drifted from the paper: %s", remark)
	}
}

func TestE2HundredStreamsFit(t *testing.T) {
	tab := E2()
	for _, row := range tab.Rows {
		n := atoi(t, row[0])
		keeps := row[4]
		if n <= 100 && keeps != "yes" {
			t.Fatalf("%d streams did not fit the 20Mbit/s link", n)
		}
		if n >= 150 && keeps != "NO" {
			t.Fatalf("%d streams fit — link model too generous", n)
		}
	}
}

func TestE3LatencyNear8ms(t *testing.T) {
	tab := E3()
	best := tab.Rows[0][1]
	v, err := strconv.ParseFloat(strings.TrimSuffix(best, "ms"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 5 || v > 11 {
		t.Fatalf("best latency %vms, paper 8ms", v)
	}
}

func TestE4VideoJitterShape(t *testing.T) {
	tab := E4()
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		return v
	}
	quiet := parse(cell(tab, 0, 1))
	nonInter := parse(cell(tab, 1, 1))
	inter := parse(cell(tab, 2, 1))
	if quiet > 3 {
		t.Fatalf("audio-only jitter %vms", quiet)
	}
	if nonInter < 8 || nonInter > 30 {
		t.Fatalf("non-interleaved jitter %vms, paper: up to 20ms", nonInter)
	}
	if inter > nonInter/2 {
		t.Fatalf("interleaving did not help: %vms vs %vms", inter, nonInter)
	}
}

func TestE5AdaptsInAboutAMinute(t *testing.T) {
	tab, _ := E5()
	remark := tab.Remarks[0]
	if !strings.Contains(remark, "reached the 4 ms target") {
		t.Fatalf("no adaptation: %s", remark)
	}
	// Extract the duration between "target " and " after".
	var dur string
	if i := strings.Index(remark, "target "); i >= 0 {
		rest := remark[i+len("target "):]
		dur = strings.Fields(rest)[0]
	}
	d, err := parseDur(dur)
	if err != nil {
		t.Fatalf("bad remark %q: %v", remark, err)
	}
	if d.Seconds() < 40 || d.Seconds() > 90 {
		t.Fatalf("adaptation took %v, paper: about one minute", d)
	}
}

func parseDur(s string) (d durWrap, err error) {
	v, err := strconvParseDuration(s)
	return durWrap(v), err
}

type durWrap int64

func (d durWrap) Seconds() float64 { return float64(d) / 1e9 }

func strconvParseDuration(s string) (int64, error) {
	// small wrapper to avoid importing time twice in tests
	dd, err := parseGoDuration(s)
	return int64(dd), err
}

func TestE6DriftBounded(t *testing.T) {
	tab := E6()
	for _, row := range tab.Rows {
		if !strings.Contains(row[2], "blocks") {
			t.Fatalf("bad row %v", row)
		}
		n := atoi(t, row[2])
		if n > 8 {
			t.Fatalf("drift %s let occupancy reach %d blocks", row[0], n)
		}
	}
}

func TestE7MultiRateNumbers(t *testing.T) {
	tab := E7()
	p10, err := parseGoDuration(cell(tab, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	p50, err := parseGoDuration(cell(tab, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p10.Seconds() < 3 || p10.Seconds() > 5.5 {
		t.Fatalf("10ms drop period %v, paper 4s", p10)
	}
	if p50.Seconds() < 0.6 || p50.Seconds() > 1.1 {
		t.Fatalf("50ms drop period %v, paper 0.8s", p50)
	}
	half, err := parseGoDuration(cell(tab, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if half.Seconds() < 9 || half.Seconds() > 20 {
		t.Fatalf("half-life %v, paper ≈14s", half)
	}
}

func TestE8MutingStages(t *testing.T) {
	tab, _ := E8()
	want := map[string]string{
		"2ms":  "20%",
		"20ms": "20%",
		"30ms": "50%",
		"43ms": "50%",
		"44ms": "100%",
		"60ms": "100%",
	}
	for _, row := range tab.Rows {
		if w, ok := want[row[0]]; ok && row[1] != w {
			t.Fatalf("factor at %s = %s, want %s", row[0], row[1], w)
		}
	}
}

func TestE9QualityLadder(t *testing.T) {
	tab := E9()
	if v := cell(tab, 0, 4); v != "clean" {
		t.Fatalf("no loss rated %q", v)
	}
	if v := cell(tab, 3, 4); v != "gravelly" && v != "garbled" {
		t.Fatalf("8%% loss rated %q", v)
	}
}

func TestE10AllPrinciplesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := E10()
	for _, row := range tab.Rows {
		if row[2] != "yes" {
			t.Fatalf("%s failed: %s", row[0], row[1])
		}
	}
}

func TestE11FastCopyUnaffected(t *testing.T) {
	tab := E11()
	fastLost := atoi(t, cell(tab, 0, 3))
	slowLost := atoi(t, cell(tab, 1, 3))
	if fastLost != 0 {
		t.Fatalf("fast copy lost %d segments", fastLost)
	}
	if slowLost == 0 {
		t.Fatal("slow path lost nothing — scenario too gentle")
	}
}

func TestE12NoLossAcrossReconfiguration(t *testing.T) {
	tab := E12()
	for _, row := range tab.Rows {
		if atoi(t, row[1]) != 0 {
			t.Fatalf("%s: kept copy lost segments", row[0])
		}
	}
}

func TestE13CommandLatencyBounded(t *testing.T) {
	tab := E13()
	for _, row := range tab.Rows {
		d, err := parseGoDuration(row[1])
		if err != nil {
			t.Fatal(err)
		}
		if d.Seconds() > 0.01 {
			t.Fatalf("command latency %v under %q", d, row[0])
		}
	}
}

func TestE14ClawbackWins(t *testing.T) {
	tab := E14()
	// Post-burst delay: clawback must be lowest or tied-lowest.
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		return v
	}
	cb := parse(cell(tab, 0, 3))
	for i := 1; i < len(tab.Rows); i++ {
		if parse(cell(tab, i, 3)) < cb-1 {
			t.Fatalf("%s holds less post-burst delay than clawback", cell(tab, i, 0))
		}
	}
	// Clock adjust must show distortions; clawback none.
	if atoi(t, cell(tab, 2, 2)) == 0 {
		t.Fatal("clock adjust showed no distortion")
	}
	if atoi(t, cell(tab, 0, 2)) != 0 {
		t.Fatal("clawback distorted audio")
	}
}

func TestE15OverheadDrops(t *testing.T) {
	tab := E15()
	live := cell(tab, 0, 3)
	merged := cell(tab, 1, 3)
	if live != "53%" && live != "52%" {
		t.Fatalf("live overhead %s", live)
	}
	if merged != "10%" {
		t.Fatalf("merged overhead %s, want 10%%", merged)
	}
}

func TestE16SuperJanetSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := E16()
	// Silences must be a small fraction.
	var silRow string
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "silence") {
			silRow = row[1]
		}
	}
	if !strings.Contains(silRow, "%") {
		t.Fatalf("bad silence row %q", silRow)
	}
	pctStr := silRow[strings.Index(silRow, "(")+1 : strings.Index(silRow, "%")]
	v, err := strconv.ParseFloat(pctStr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v > 5 {
		t.Fatalf("%.1f%% of playback was silence — the call failed", v)
	}
}

func TestE17SwitchRateReasonable(t *testing.T) {
	tab := E17()
	rate, err := strconv.ParseFloat(cell(tab, 0, 1), 64)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 1000 || rate > 100_000 {
		t.Fatalf("switch rate %.0f/s, paper ≈5kHz per transputer", rate)
	}
}

func TestE18LatencyGrowsWithSegmentSize(t *testing.T) {
	tab := E18()
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		return v
	}
	prev := -1.0
	for _, row := range tab.Rows {
		mean := parse(row[3])
		if mean < prev {
			t.Fatalf("mean latency not monotone in segment size: %v", tab.Rows)
		}
		prev = mean
	}
	// 12-block batching adds ≈20ms over 1-block.
	if d := parse(cell(tab, 3, 3)) - parse(cell(tab, 0, 3)); d < 10 || d > 30 {
		t.Fatalf("1→12 block latency delta %vms, want ≈20ms", d)
	}
}

func TestE19Limits(t *testing.T) {
	tab := E19()
	if atoi(t, cell(tab, 0, 1)) != 140 { // 200 - 60
		t.Fatalf("per-stream cap dropped %s, want 140", cell(tab, 0, 1))
	}
	if atoi(t, cell(tab, 1, 2)) == 0 {
		t.Fatal("shared pool never exhausted")
	}
}

func TestE20ReadyNeverBlocks(t *testing.T) {
	tab := E20()
	// Row 0 = ready protocol: blocked 0s, drops > 0.
	if cell(tab, 0, 4) != "0s" {
		t.Fatalf("ready producer blocked %s", cell(tab, 0, 4))
	}
	if atoi(t, cell(tab, 0, 3)) == 0 {
		t.Fatal("ready producer never dropped despite slow consumer")
	}
	// Row 1 = plain buffer: blocked for a long time, no drops.
	d, err := parseGoDuration(cell(tab, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Seconds() < 0.5 {
		t.Fatalf("plain producer blocked only %v", d)
	}
}

func TestA1HeadOfLineBlocking(t *testing.T) {
	tab := A1()
	downFast := atoi(t, cell(tab, 0, 1))
	upFast := atoi(t, cell(tab, 1, 1))
	if downFast < 3*upFast {
		t.Fatalf("downstream placement fast=%d vs upstream fast=%d: no head-of-line effect", downFast, upFast)
	}
}

func TestA2SplitBuffersProtectAudio(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := A2()
	split := atoi(t, cell(tab, 0, 2))
	shared := atoi(t, cell(tab, 1, 2))
	if shared <= split {
		t.Fatalf("shared buffer (%d silences) not worse than split (%d)", shared, split)
	}
}

func TestA3NeverResetDegrades(t *testing.T) {
	tab := A3()
	paper := atoi(t, cell(tab, 0, 1))
	ablated := atoi(t, cell(tab, 1, 1))
	if ablated <= paper {
		t.Fatalf("never-reset clawed %d vs paper %d: ablation shows no cost", ablated, paper)
	}
}

func TestTablesRender(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Paper: "p", Header: []string{"a", "b"}}
	tab.Add("1", "2")
	tab.Remark("note %d", 3)
	out := tab.String()
	for _, want := range []string{"X — t", "paper: p", "1", "note 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if ms(1.5) != "1.50ms" || pct(1, 4) != "25.00%" || pct(0, 0) != "0%" {
		t.Fatal("format helpers broken")
	}
}

// parseGoDuration parses a time.Duration string.
func parseGoDuration(s string) (time.Duration, error) { return time.ParseDuration(s) }
