package experiment

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/atm/udptrans"
	"repro/internal/fabric"
	"repro/internal/occam"
	"repro/internal/segment"
	"repro/internal/workload"
)

// The micro workloads isolate the two fast paths the end-to-end
// experiments exercise in aggregate: the fabric's sharded crossbar and
// the udptrans sendmmsg batcher. BenchmarkFabricCrossbar and
// BenchmarkUDPTransBatch run them per-iteration; pandora-bench
// -bench-json runs them at a fixed count and records per-op figures in
// BENCH_e2e.json alongside the experiments.

// MicroFabricCrossbar drives iters two-block audio segments from three
// source ports through the sharded crossbar to a fourth port, one
// segment per 20 µs of virtual time, and returns the number delivered.
// Steady state must allocate nothing on the cell path: the wire pool,
// the dense route table, the per-port batch buffer and the in-place
// segment reset cover the whole journey.
func MicroFabricCrossbar(iters int) (delivered uint64) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	fab := fabric.New(rt, "micro", fabric.Config{})
	hosts := make([]*atm.Host, 4)
	for i := range hosts {
		hosts[i] = net.AddHost(fmt.Sprintf("m%d", i))
		fab.Attach(hosts[i])
	}
	sink := hosts[3]
	rt.Go("drain", nil, occam.High, func(p *occam.Proc) {
		for {
			m := sink.Rx.Recv(p)
			m.W.Release()
			delivered++
		}
	})
	for vci := uint32(1); vci <= 3; vci++ {
		fab.Route(0, vci, fab.Port(3), false)
	}
	pool := segment.NewWirePool()
	const pace = 20 * time.Microsecond
	rt.Go("tx", nil, occam.Low, func(p *occam.Proc) {
		tone := workload.NewTone(400, 8000)
		var (
			aseg  segment.Audio
			adata = make([]byte, 2*segment.BlockSamples)
		)
		for i := 0; i < iters; i++ {
			p.SleepUntil(occam.Time(int64(i) * int64(pace)))
			tone.FillBlock(adata[:segment.BlockSamples])
			tone.FillBlock(adata[segment.BlockSamples:])
			w := pool.Encode(aseg.Reset(uint32(i), p.Now(), adata))
			if hosts[i%3].Send(p, atm.Message{VCI: uint32(1 + i%3), Size: w.Len(), W: w}) != nil {
				w.Release()
			}
		}
	})
	if err := rt.RunUntil(occam.Time(time.Duration(iters)*pace + 50*time.Millisecond)); err != nil {
		panic(err)
	}
	return delivered
}

// MicroUDPTransBatch pushes iters datagrams (one reused two-block
// audio segment each) through a sendmmsg Batcher over a loopback
// socket pair and returns the datagram and syscall-batch counts. The
// encode appends into the batch arena, so steady state is one syscall
// per DefaultBatch datagrams and zero heap traffic.
func MicroUDPTransBatch(iters int) (datagrams, batches uint64, err error) {
	rx, err := udptrans.Listen("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer rx.Close()
	t, err := udptrans.Dial(rx.Addr())
	if err != nil {
		return 0, 0, err
	}
	defer t.Close()
	b := udptrans.NewBatcher(t, udptrans.DefaultBatch)
	pool := segment.NewWirePool()
	var aseg segment.Audio
	w := pool.Encode(aseg.Reset(0, 0, make([]byte, 2*segment.BlockSamples)))
	defer w.Release()
	m := atm.Message{VCI: 7, Size: w.Len(), W: w}
	for i := 0; i < iters; i++ {
		if err := b.Add(m); err != nil {
			return 0, 0, err
		}
	}
	if err := b.Flush(); err != nil {
		return 0, 0, err
	}
	batches, datagrams = b.Stats()
	return datagrams, batches, nil
}
