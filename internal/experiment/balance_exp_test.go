package experiment

import "testing"

// TestE24BalancerControlPlane asserts the full acceptance surface:
// admission refuses exactly the over-budget calls, the hot relay is
// migrated off mid-stream in both twins, audio is never shed, the
// post-crash repair adopters avoid the hot box first-fit would pick,
// and every surviving delivery is byte-identical with the fault-free
// twin.
func TestE24BalancerControlPlane(t *testing.T) {
	_, res := E24()
	if !res.AssertsPass {
		t.Error("scenario asserts failed in at least one twin")
	}
	if res.Admitted != 2 || res.Rejected != 2 {
		t.Errorf("admission: %d admitted, %d rejected; want 2/2", res.Admitted, res.Rejected)
	}
	if !res.MigrationOk || res.Migrations != 1 || res.MigratedOff != e24Hot {
		t.Errorf("migration: %d off %q (both twins ok=%v); want exactly 1 off %s in both",
			res.Migrations, res.MigratedOff, res.MigrationOk, e24Hot)
	}
	if res.AudioSheds != 0 {
		t.Errorf("%d audio sheds; audio must never be shed", res.AudioSheds)
	}
	if res.VideoSheds == 0 {
		t.Error("no video sheds: the degrade ladder never engaged, so the shed-ordering claim is vacuous")
	}
	if !res.AdoptersCool {
		t.Errorf("repair adopters %v re-adopted hot %s (or the hot box was not drained/nothing re-homed)",
			res.RepairAdopters, e24Hot)
	}
	if res.Rehomed == 0 {
		t.Error("the repair re-homed nothing")
	}
	if res.Spread < 4 {
		t.Errorf("feeder spread %d; want ≥ 4", res.Spread)
	}
	if !res.Identical || res.Survivors == 0 {
		t.Errorf("byte-identity: identical=%v over %d survivors (%d excluded)",
			res.Identical, res.Survivors, res.Excluded)
	}
}

// TestE24DeterministicReplay runs the faulted churn twice at the same
// seed: the balancer's sampling, placement, admission and migration
// decisions must replay to the byte.
func TestE24DeterministicReplay(t *testing.T) {
	a := e24Churn(7, true)
	b := e24Churn(7, true)
	if a.sumText != b.sumText {
		t.Errorf("assert summaries diverged:\n%s\nvs\n%s", a.sumText, b.sumText)
	}
	fa, fb := balanceFingerprint(a), balanceFingerprint(b)
	if fa == "" {
		t.Fatal("empty fingerprint")
	}
	if fa != fb {
		t.Errorf("replay diverged:\n%s\nvs\n%s", fa, fb)
	}
	if len(a.migrations) != 1 {
		t.Errorf("seed 7: %d migrations, want 1", len(a.migrations))
	}
}

// TestE24ScoreboardChurnRace drives the whole churn — scoreboard ticks,
// placement callbacks from tree attach and repair, admission from the
// timeline, and the mid-stream migration — under the race detector
// when CI runs `go test -race`. The balancer is lock-free by design
// (every update runs inside the virtual-time runtime), so this is the
// test that proves the serialization actually holds.
func TestE24ScoreboardChurnRace(t *testing.T) {
	r := e24Churn(11, true)
	if len(r.migrations) != 1 {
		t.Errorf("seed 11: %d migrations, want 1", len(r.migrations))
	}
	if !r.asserts {
		t.Errorf("seed 11 asserts failed:\n%s", r.sumText)
	}
}
