package experiment

import "testing"

// TestE23ReplicationTree asserts the documented acceptance criteria:
// the source sends one copy per tree however many viewers, no box ever
// forwards more than the fanout (checked at the planner, the box layer
// and the fabric wire), the interior crash is repaired mid-stream, and
// every viewer whose path never crossed the crashed box delivers
// byte-identically with the fault-free twin.
func TestE23ReplicationTree(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	_, r := E23()
	if r.Viewers < 100 {
		t.Fatalf("only %d viewers — the tannoy must span 100+", r.Viewers)
	}
	if r.SourceCopies != r.Trees {
		t.Fatalf("source sends %d copies for %d trees — origin-pull violated", r.SourceCopies, r.Trees)
	}
	if r.MaxInterior > r.Fanout || r.BoxCopiesMax > r.Fanout {
		t.Fatalf("copy bound broken: planner max %d, box watermark %d, k=%d",
			r.MaxInterior, r.BoxCopiesMax, r.Fanout)
	}
	if !r.PerHopOK {
		t.Fatal("a fabric port ingressed more distinct tree VCIs than the per-hop bound")
	}
	if r.Repairs != 1 || r.Rehomed == 0 {
		t.Fatalf("repair did not engage: %d repairs, %d subtrees re-homed", r.Repairs, r.Rehomed)
	}
	if r.Excluded == 0 || r.Excluded >= r.Viewers/2 {
		t.Fatalf("%d of %d viewers excluded — the crash should cost one subtree, not a tree",
			r.Excluded, r.Viewers)
	}
	if !r.Identical {
		t.Fatalf("a surviving viewer diverged from the fault-free twin (%d survivors)", r.Survivors)
	}
	if !r.AssertsPass {
		t.Fatal("scenario copies-max asserts failed")
	}
	if r.Depth < 3 {
		t.Fatalf("depth %d — 102 viewers at fanout 4 must relay through interior boxes", r.Depth)
	}
}

// TestE23DeterministicReplay: the whole faulted run derives from the
// seed, so a replay is byte-identical.
func TestE23DeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	_, r1 := E23Tree(99)
	_, r2 := E23Tree(99)
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatalf("same seed, different runs:\n--- run 1\n%s--- run 2\n%s", r1.Fingerprint, r2.Fingerprint)
	}
}
