package experiment

import "testing"

// TestE21OverloadPolicy asserts the documented acceptance criteria:
// zero audio shed, video shed oldest-first, faults visible in
// counters, wire allocations bounded by recycling.
func TestE21OverloadPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	_, r := E21()
	if r.AudioShed != 0 {
		t.Fatalf("audio shed %d times — principle 2 violated", r.AudioShed)
	}
	if r.VideoShed < 2 {
		t.Fatalf("only %d video sheds — overload never engaged", r.VideoShed)
	}
	if !r.OldestFirst {
		t.Fatalf("shed order %v did not take the oldest stream first", r.ShedOrder)
	}
	if r.Restores == 0 {
		t.Fatal("controller never restored after recovery")
	}
	if r.InjectedFaults == 0 {
		t.Fatal("no injected faults fired")
	}
	if r.SilencePct > 10 {
		t.Fatalf("%.1f%% of audio was silence — call quality destroyed", r.SilencePct)
	}
	if r.WireNews > 512 {
		t.Fatalf("%d wire allocations — recycling (or a leak fix) regressed", r.WireNews)
	}
}

// TestE21DeterministicReplay: the fault schedule and every reaction to
// it derive from the seed, so a replay is byte-identical and a
// different seed is not.
func TestE21DeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	_, r1 := E21Overload(777)
	_, r2 := E21Overload(777)
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatalf("same seed, different runs:\n--- run 1\n%s--- run 2\n%s", r1.Fingerprint, r2.Fingerprint)
	}
	_, r3 := E21Overload(778)
	if r3.Fingerprint == r1.Fingerprint {
		t.Fatal("different seeds produced identical fault schedules")
	}
}
