package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/degrade"
	"repro/internal/fabric"
)

// FabricResult is E22's machine-readable outcome, asserted by the
// tests.
type FabricResult struct {
	Boxes     int
	AudioShed int      // audio sheds anywhere in the faulted run (must be 0)
	VideoShed int      // video sheds on the congested port
	Restores  int      // restores on the congested port
	ShedOrder []uint32 // VCIs shed on the congested port before the first restore
	// OldestFirst reports the initial shed ladder took the
	// longest-routed video stream first (principle 3 at the fabric).
	OldestFirst bool
	// PortIsolated reports every uncongested port delivered a
	// byte-identical sequence in the faulted and fault-free runs
	// (principle 5 across the fabric).
	PortIsolated bool
	CleanSheds   int // sheds in the fault-free run (must be 0)
	// ForwardedBytes / CleanBytes are the fabric's aggregate delivered
	// payload in the faulted and fault-free runs.
	ForwardedBytes uint64
	CleanBytes     uint64
	InjectedFaults uint64
	// Fingerprint renders every port's counters and delivery digest
	// plus the congested port's controller log: two runs with the same
	// seed must produce byte-identical fingerprints.
	Fingerprint string
}

// e22Run is one 16-box fabric conference. Three staggered video bands
// all aim at the last box, and when faulted is set the fault schedule
// (burst loss, jitter, two stall outages) targets that box's fabric
// port alone.
type e22Run struct {
	names    []string
	congPort string
	vids     []*core.Stream
	digests  map[string]uint64 // port name → delivery digest
	counts   map[string]uint64 // port name → deliveries
	acts     []degrade.Action  // congested port's controller log
	allActs  map[string][]degrade.Action
	stats    fabric.PortStats
	congFlt  fabric.PortStats
}

const e22Boxes = 16

func e22Conference(seed uint64, faulted bool) *e22Run {
	r := &e22Run{
		digests: make(map[string]uint64),
		counts:  make(map[string]uint64),
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario e22\nseed %d\nduration 5s\n", seed)
	for i := 0; i < e22Boxes; i++ {
		name := fmt.Sprintf("n%02d", i)
		r.names = append(r.names, name)
		cam := ""
		if i < 3 || i == e22Boxes-1 {
			// Video sources, and the sink whose display assembles the
			// three 256-wide bands.
			cam = " camera=256x192"
		}
		fmt.Fprintf(&sb, "box %s mic=speech:%d:12000 jitter%s\n", name, i+1, cam)
	}
	// A deliberately small egress bound: two virtual-second outages on
	// one port are enough to drive its queue past the controller's high
	// water without troubling the other fifteen.
	sb.WriteString("fabric fab egress=4096\n")
	sb.WriteString("attach fab " + strings.Join(r.names, " ") + "\n")
	sink := r.names[e22Boxes-1]
	// Ports are numbered in attach order, so the sink's is the last.
	r.congPort = fmt.Sprintf("fab.p%02d", e22Boxes-1)
	if faulted {
		fmt.Fprintf(&sb, "faults burst=0.005/4,jitter=200us/400us,stallwin=1s-1600ms,stallwin=3s-3600ms,target=%s\n", r.congPort)
	}
	sb.WriteString("degrade shed=120ms hold=600ms\n")
	sb.WriteString("at 0s conference " + strings.Join(r.names, " ") + "\n")
	// Three full-rate video bands from three different boxes, opened
	// 200 ms apart so ages differ, all converging on the last box's
	// port — the port the fault schedule then congests.
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&sb, "at %dms video %s -> %s rect=0,%d,256,64 rate=1/1 as v%d\n",
			i*200, r.names[i], sink, i*64, i)
	}
	run := runScenario(sb.String())
	defer run.Close()
	s, ctrls := run.Sys, run.Ctrls
	fab := s.Fabric("fab")
	for i := 0; i < 3; i++ {
		r.vids = append(r.vids, run.Streams[fmt.Sprintf("v%d", i)])
	}

	for _, n := range r.names {
		pt := s.FabricPort(n)
		d, c := pt.DeliveryDigest()
		r.digests[pt.Name()] = d
		r.counts[pt.Name()] = c
	}
	r.acts = ctrls[r.congPort].Actions()
	r.allActs = make(map[string][]degrade.Action)
	for _, n := range r.names {
		pt := s.FabricPort(n).Name()
		if acts := ctrls[pt].Actions(); len(acts) > 0 {
			r.allActs[pt] = acts
		}
		if acts := ctrls[n].Actions(); len(acts) > 0 {
			r.allActs[n] = acts
		}
	}
	r.stats = fab.Stats()
	r.congFlt = s.FabricPort(sink).Stats()
	return r
}

// E22 runs the fabric experiment at the default seed.
func E22() (*Table, *FabricResult) { return E22Fabric(42) }

// E22Fabric meshes a 16-box audio conference through the switching
// fabric, aims three staggered video bands at one box, and injects a
// fault schedule (burst loss, jitter, two stall outages) on that box's
// port alone — then repeats the identical run fault-free. The faulted
// port's controller sheds its video oldest-first and never audio,
// while every other port's delivered byte sequence is identical
// between the two runs: a slow output degrades only its own port,
// across the whole fabric (principle 5).
func E22Fabric(seed uint64) (*Table, *FabricResult) {
	t := &Table{
		ID:     "E22",
		Title:  "Per-port degradation across the switching fabric",
		Paper:  "a slow output degrades only its own port; video before audio, oldest first (§2.1, principle 5)",
		Header: []string{"measure", "value"},
	}
	clean := e22Conference(seed, false)
	fl := e22Conference(seed, true)

	res := &FabricResult{Boxes: e22Boxes}
	for _, acts := range clean.allActs {
		res.CleanSheds += len(acts)
	}
	for port, acts := range fl.allActs {
		for _, act := range acts {
			switch {
			case act.Restore:
				if port == fl.congPort {
					res.Restores++
				}
			case act.Video:
				if port == fl.congPort {
					res.VideoShed++
				}
			default:
				res.AudioShed++
			}
		}
	}
	res.OldestFirst = true
	for _, act := range fl.acts {
		if act.Restore {
			break
		}
		if n := len(res.ShedOrder); n > 0 && res.ShedOrder[n-1] >= act.Stream {
			// VCIs are allocated in open order, so oldest-first means
			// strictly ascending VCIs in the initial ladder.
			res.OldestFirst = false
		}
		res.ShedOrder = append(res.ShedOrder, act.Stream)
	}
	sinkName := fl.names[e22Boxes-1]
	if len(res.ShedOrder) == 0 || res.ShedOrder[0] != fl.vids[0].VCIs[sinkName] {
		res.OldestFirst = false
	}

	res.PortIsolated = true
	for port, d := range fl.digests {
		if port == fl.congPort {
			continue
		}
		if clean.digests[port] != d || clean.counts[port] != fl.counts[port] {
			res.PortIsolated = false
		}
	}
	res.ForwardedBytes = fl.stats.Bytes
	res.CleanBytes = clean.stats.Bytes
	cf := fl.congFlt
	res.InjectedFaults = cf.FaultDrops + cf.FaultCorrupt + cf.FaultDups + cf.FaultDelays + cf.FaultStalls
	res.Fingerprint = fabricFingerprint(fl)

	t.Add("boxes on the fabric", fmt.Sprintf("%d (%d audio streams, 3 video bands)",
		e22Boxes, e22Boxes*(e22Boxes-1)))
	t.Add("congested port", fmt.Sprintf("%s (faults: %d drops, %d delays, %d stalls)",
		fl.congPort, cf.FaultDrops, cf.FaultDelays, cf.FaultStalls))
	t.Add("video shed on congested port", fmt.Sprintf("%d (order %v, restores %d)",
		res.VideoShed, res.ShedOrder, res.Restores))
	t.Add("audio shed anywhere", fmt.Sprintf("%d", res.AudioShed))
	t.Add("uncongested ports byte-identical", fmt.Sprintf("%v (%d ports)",
		res.PortIsolated, e22Boxes-1))
	t.Add("aggregate delivered", fmt.Sprintf("%.2f MB of %.2f MB fault-free (%.1f%%)",
		float64(res.ForwardedBytes)/1e6, float64(res.CleanBytes)/1e6,
		100*float64(res.ForwardedBytes)/float64(res.CleanBytes)))
	t.Remark("faulting one fabric port sheds that port's video oldest-first and leaves the other fifteen ports' delivery byte-identical")
	return t, res
}

// fabricFingerprint renders a finished faulted run as one
// deterministic string.
func fabricFingerprint(r *e22Run) string {
	var sb strings.Builder
	ports := make([]string, 0, len(r.digests))
	for port := range r.digests {
		ports = append(ports, port)
	}
	sort.Strings(ports)
	for _, port := range ports {
		fmt.Fprintf(&sb, "port %s: delivered=%d digest=%016x\n",
			port, r.counts[port], r.digests[port])
	}
	cf := r.congFlt
	fmt.Fprintf(&sb, "congested %s: shed=%d egdrop=%d fault(drop=%d corrupt=%d dup=%d delay=%d stall=%d)\n",
		r.congPort, cf.ShedDrops, cf.EgressDrops,
		cf.FaultDrops, cf.FaultCorrupt, cf.FaultDups, cf.FaultDelays, cf.FaultStalls)
	targets := make([]string, 0, len(r.allActs))
	for name := range r.allActs {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	for _, name := range targets {
		for _, act := range r.allActs[name] {
			fmt.Fprintf(&sb, "%s: %s\n", name, act.String())
		}
	}
	return sb.String()
}
