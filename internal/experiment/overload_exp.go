package experiment

import (
	"fmt"
	"strings"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/degrade"
	"repro/internal/obs"
)

// OverloadResult is E21's machine-readable outcome, used by the tests
// and by scripts/fault_smoke.go.
type OverloadResult struct {
	AudioShed int      // controller sheds of audio streams (must be 0)
	VideoShed int      // controller sheds of video streams
	Restores  int      // controller restores after recovery
	ShedOrder []uint32 // stream ids in shed order, before the first restore
	// OldestFirst reports that the initial shed sequence took the
	// longest-open video stream first (principle 3).
	OldestFirst bool
	AudioLost   uint64  // audio segments lost end to end
	SilencePct  float64 // % of played audio blocks that were silence fills
	// InjectedFaults totals every link-level fault that fired (loss,
	// corruption, duplication, delay, stall).
	InjectedFaults uint64
	// WireNews is the total wire-buffer allocations across both boxes;
	// recycling bounds it regardless of how many segments flow.
	WireNews uint64
	// Fingerprint renders every fault and degradation counter plus the
	// controller action log: two runs with the same seed must produce
	// byte-identical fingerprints.
	Fingerprint string
}

// E21 runs the overload experiment at the default seed.
func E21() (*Table, *OverloadResult) { return E21Overload(42) }

// E21Overload overloads one box's network interface with three
// staggered video streams plus audio, under injected link faults, with
// the degradation controller enabled — the full §2.1 policy on
// display: video is shed before audio, oldest stream first, and every
// injected fault and shed is visible as an obs counter.
func E21Overload(seed uint64) (*Table, *OverloadResult) {
	t := &Table{
		ID:     "E21",
		Title:  "Overload degradation under injected faults",
		Paper:  "video degrades before audio; the oldest streams degrade first; boxes adapt locally (§2.1)",
		Header: []string{"measure", "value"},
	}
	// netif=3500k is the first limit exceeded in normal operation
	// (§3.7.1): an interface too slow for three full-rate video bands.
	// Deterministic link faults — burst loss, light duplication, jitter
	// — ride on the spec's seed, and the three video bands open 400 ms
	// apart so ages differ and "oldest first" is observable.
	r := runScenario(fmt.Sprintf(`
scenario e21
seed %d
duration 6s
box a mic=tone:400:10000 camera=256x192 netif=3500k
box b camera=256x192
link a b bw=100M
faults burst=0.002/3,dup=0.002,jitter=300us/600us
degrade shed=150ms hold=800ms
at 0s audio a -> b as audio
at 0s video a -> b rect=0,0,256,64 rate=1/1 as v0
at 400ms video a -> b rect=0,64,256,64 rate=1/1 as v1
at 800ms video a -> b rect=0,128,256,64 rate=1/1 as v2
`, seed))
	defer r.Close()
	s, ctrls := r.Sys, r.Ctrls
	audio := r.Streams["audio"]
	vids := []*core.Stream{r.Streams["v0"], r.Streams["v1"], r.Streams["v2"]}

	res := &OverloadResult{}

	// Controller decisions (only box "a" is under pressure, but count
	// every box — audio sheds anywhere would break principle 2).
	var aActs []degrade.Action
	for _, name := range []string{"a", "b"} {
		for _, act := range ctrls[name].Actions() {
			switch {
			case act.Restore:
				res.Restores++
			case act.Video:
				res.VideoShed++
			default:
				res.AudioShed++
			}
		}
	}
	aActs = ctrls["a"].Actions()
	res.OldestFirst = true
	for _, act := range aActs {
		if act.Restore {
			break
		}
		if n := len(res.ShedOrder); n > 0 && res.ShedOrder[n-1] >= act.Stream {
			// Stream ids are allocated in open order, so oldest-first
			// means strictly ascending ids in the initial sequence.
			res.OldestFirst = false
		}
		res.ShedOrder = append(res.ShedOrder, act.Stream)
	}
	if len(res.ShedOrder) == 0 || (len(vids) > 0 && res.ShedOrder[0] != vids[0].Local) {
		res.OldestFirst = false
	}

	// Audio quality at the destination.
	m := s.Box("b").Mixer().Stats(audio.VCIs["b"])
	res.AudioLost = m.LostSegments
	if m.Blocks > 0 {
		res.SilencePct = 100 * float64(m.Clawback.SilenceInserted) / float64(m.Blocks)
	}

	// Every injected fault, straight off the link counters.
	var fs atm.FaultStats
	for _, l := range s.Net.Links() {
		st := l.FaultStats()
		fs.Drops += st.Drops
		fs.Corruptions += st.Corruptions
		fs.Duplicates += st.Duplicates
		fs.Delays += st.Delays
		fs.Stalls += st.Stalls
	}
	res.InjectedFaults = fs.Drops + fs.Corruptions + fs.Duplicates + fs.Delays + fs.Stalls

	aGets, aNews, _ := s.Box("a").WirePoolStats()
	bGets, bNews, _ := s.Box("b").WirePoolStats()
	res.WireNews = aNews + bNews
	res.Fingerprint = overloadFingerprint(s, ctrls)

	swA := s.Box("a").SwitchStats()
	t.Add("audio segments played", fmt.Sprintf("%d (lost %d, silence %.2f%%)",
		m.Segments, res.AudioLost, res.SilencePct))
	t.Add("audio streams shed", fmt.Sprintf("%d", res.AudioShed))
	t.Add("video streams shed", fmt.Sprintf("%d (order %v)", res.VideoShed, res.ShedOrder))
	t.Add("restores after recovery", fmt.Sprintf("%d", res.Restores))
	t.Add("segments stopped at the switch", fmt.Sprintf("%d", swA.ShedDrops))
	t.Add("injected link faults", fmt.Sprintf("%d (loss %d, dup %d, delay %d)",
		res.InjectedFaults, fs.Drops, fs.Duplicates, fs.Delays))
	t.Add("wire allocations", fmt.Sprintf("%d (of %d uses)", res.WireNews, aGets+bGets))
	t.Remark("audio survives untouched while the overload controller sheds video, oldest stream first")
	return t, res
}

// overloadFingerprint renders the fault and degradation state of a
// finished run as one deterministic string.
func overloadFingerprint(s *core.System, ctrls map[string]*degrade.Controller) string {
	var sb strings.Builder
	for _, l := range s.Net.Links() { // already sorted by name
		st := l.FaultStats()
		fmt.Fprintf(&sb, "link %s: drop=%d corrupt=%d dup=%d delay=%d stall=%d\n",
			l.Name(), st.Drops, st.Corruptions, st.Duplicates, st.Delays, st.Stalls)
	}
	for _, name := range []string{"a", "b"} {
		lb := obs.L("box", name)
		shed, _ := s.Obs.Value("switch_shed_drops_total", lb)
		corrupt, _ := s.Obs.Value("server_corrupt_drops_total", lb)
		fmt.Fprintf(&sb, "box %s: shed_drops=%.0f corrupt_drops=%.0f\n", name, shed, corrupt)
		for _, act := range ctrls[name].Actions() {
			fmt.Fprintf(&sb, "  %s\n", act.String())
		}
	}
	return sb.String()
}
