// Package experiment regenerates every quantitative claim and figure
// of the paper's evaluation (§3.7.2, §4) plus the ablations listed in
// DESIGN.md. Each experiment is a pure function of its parameters on
// the deterministic virtual-time substrate, so every run prints the
// same numbers. cmd/pandora-bench prints all of them; bench_test.go
// wraps each in a testing.B benchmark.
//
// Ownership: experiments observe, they do not hold. Any code here
// that sees a segment.Wire (delivery digests, fingerprints) reads its
// bytes during the delivery callback and keeps no reference — the
// wire's refcount is exactly as it would be in an uninstrumented run,
// which is what lets the leak checks in the package tests assert that
// every pool drains back to full.
package experiment

import (
	"fmt"
	"strings"

	"repro/internal/occam"
	"repro/internal/scenario"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Paper   string // the paper's claim, quoted or paraphrased
	Header  []string
	Rows    [][]string
	Remarks []string
}

// Add appends a row of cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Remark appends a free-form note under the table.
func (t *Table) Remark(format string, args ...any) {
	t.Remarks = append(t.Remarks, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&sb, "  paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		sb.WriteString("  ")
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, r := range t.Remarks {
		fmt.Fprintf(&sb, "  note: %s\n", r)
	}
	return sb.String()
}

// startScenario compiles an embedded scenario spec and spawns its
// system without advancing time; then, when non-nil, runs in the
// timeline control process after the last event (measurement probes).
// Specs here are compiled-in constants, so errors panic.
func startScenario(text string, then func(p *occam.Proc)) *scenario.Runner {
	r, err := scenario.NewRunner(scenario.MustParse(text))
	if err != nil {
		panic(err)
	}
	r.Start(then)
	return r
}

// runScenario plays one embedded spec to its full duration.
func runScenario(text string) *scenario.Runner {
	r := startScenario(text, nil)
	if err := r.RunFor(r.Spec.Duration); err != nil {
		panic(err)
	}
	return r
}

func ms(v float64) string { return fmt.Sprintf("%.2fms", v) }

func pct(num, den uint64) string {
	if den == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}
