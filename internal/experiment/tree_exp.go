package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// TreeResult is E23's machine-readable outcome, asserted by the tests.
type TreeResult struct {
	Boxes   int // every box including the source
	Viewers int // tree members
	Trees   int // interior-disjoint trees (T)
	Fanout  int // per-box copy bound (K)
	Depth   int // longest source→leaf hop count after the repair
	// SourceCopies is the origin-pull headline: copies the source
	// sends, one per tree, however many viewers.
	SourceCopies int
	// MaxInterior is the planner's copy high-water; BoxCopiesMax is the
	// box layer's own watermark of the same invariant. Both ≤ Fanout.
	MaxInterior  int
	BoxCopiesMax int
	// PerHopOK reports every fabric port ingressed at most the bound
	// number of distinct tree VCIs over the whole run — the per-hop
	// copy invariant measured at the wire, not the planner.
	PerHopOK bool
	Repairs  uint64 // RepairTree invocations
	Rehomed  int    // orphan subtrees re-parented by the repair
	// Excluded viewers once sat under the crashed interior box;
	// Survivors did not, and every one of them must deliver a
	// byte-identical sequence in the faulted and fault-free runs.
	Excluded  int
	Survivors int
	Identical bool
	// AssertsPass is the scenario layer's own copies-max verdict.
	AssertsPass bool
	Fingerprint string
}

// e23Run is one faulted-or-clean replication-tree tannoy: one source
// speaking to 102 viewers split over two fabrics joined by two bridge
// links, distributed over two fanout-4 trees.
type e23Run struct {
	names   []string // every box, source first
	members []string // tree members in open order
	st      *core.Stream
	digests map[string]uint64 // viewer → mixer digest
	segs    map[string]uint64 // viewer → delivered segments
	ingress map[string]int    // box → distinct tree VCIs its port ingressed
	// boxCopies is the box layer's high-water of simultaneous forwarded
	// copies, max over every box in the run.
	boxCopies int
	asserts   bool
	sumText   string
}

const (
	e23PerFabric = 51    // viewers per fabric
	e23Crash     = "a02" // the interior box the fault schedule kills
)

// e23Spec builds the scenario text. The member order interleaves the
// early bridge-side boxes (a00, a01, b00, b01) first so each tree
// crosses the inter-fabric bridge exactly once, near its root.
func e23Spec(seed uint64, faulted bool) (string, []string, []string) {
	var aSide, bSide []string
	for i := 0; i < e23PerFabric; i++ {
		aSide = append(aSide, fmt.Sprintf("a%02d", i))
		bSide = append(bSide, fmt.Sprintf("b%02d", i))
	}
	members := []string{aSide[0], aSide[1], bSide[0], bSide[1]}
	members = append(members, aSide[2:]...)
	members = append(members, bSide[2:]...)

	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario e23\nseed %d\nduration 3s\n", seed)
	sb.WriteString("box src mic=speech:1:12000\n")
	for _, n := range append(append([]string{}, aSide...), bSide...) {
		crash := ""
		if faulted && n == e23Crash {
			// Kill the server board mid-stream: the box keeps its local
			// playout hardware but stops relaying to its subtree.
			crash = " crash=server:900ms-1800ms"
		}
		fmt.Fprintf(&sb, "box %s%s\n", n, crash)
	}
	// Two bridge links, one per tree: each tree's fabB root pulls its
	// single cross-fabric copy over its own link.
	sb.WriteString("link a00 b00 bw=155M\nlink a01 b01 bw=155M\n")
	sb.WriteString("fabric fabA portbw=155M\nfabric fabB portbw=155M\n")
	sb.WriteString("attach fabA src " + strings.Join(aSide, " ") + "\n")
	sb.WriteString("attach fabB " + strings.Join(bSide, " ") + "\n")
	fmt.Fprintf(&sb, "at 0s tree src -> %s k=4 trees=2 as t\n", strings.Join(members, ","))
	// The repair fires while the crashed box is down — in the clean
	// twin too, so both runs converge on the identical topology.
	fmt.Fprintf(&sb, "at 1200ms repair t %s\n", e23Crash)
	sb.WriteString("assert copies-max src 2\n")
	fmt.Fprintf(&sb, "assert copies-max a00 4\nassert copies-max %s 4\n", e23Crash)
	sb.WriteString("assert min-segments t 100\n")
	names := append([]string{"src"}, append(aSide, bSide...)...)
	return sb.String(), names, members
}

func e23Tannoy(seed uint64, faulted bool) *e23Run {
	spec, names, members := e23Spec(seed, faulted)
	r := &e23Run{
		names:   names,
		members: members,
		digests: make(map[string]uint64),
		segs:    make(map[string]uint64),
		ingress: make(map[string]int),
	}
	run := runScenario(spec)
	defer run.Close()
	sum, err := run.Evaluate()
	if err != nil {
		panic(err)
	}
	r.asserts = sum.Pass
	r.sumText = sum.String()
	r.st = run.Streams["t"]
	treeVCI := map[uint32]bool{r.st.Local: true}
	for _, vci := range r.st.VCIs {
		treeVCI[vci] = true
	}
	for _, n := range r.members {
		m := run.Sys.Box(n).Mixer().Stats(r.st.VCIs[n])
		r.digests[n] = m.Digest
		r.segs[n] = m.Segments
	}
	for _, n := range r.names {
		distinct := 0
		for vci := range run.Sys.FabricPort(n).IngressCopies() {
			if treeVCI[vci] {
				distinct++
			}
		}
		r.ingress[n] = distinct
		if c := run.Sys.Box(n).MaxNetCopies(); c > r.boxCopies {
			r.boxCopies = c
		}
	}
	return r
}

// E23 runs the replication-tree experiment at the default seed.
func E23() (*Table, *TreeResult) { return E23Tree(42) }

// E23Tree distributes a 1-source tannoy to 102 viewers across two
// switching fabrics through two fanout-4 replication trees: the source
// sends two copies total, every interior box at most four, and the
// cross-fabric bridges carry one copy per tree. An interior box's
// server board is then crashed mid-stream and the tree repaired around
// it by re-routing the orphans' VCIs between segments; every viewer
// whose path never crossed the crashed box delivers byte-identically
// with the fault-free twin.
func E23Tree(seed uint64) (*Table, *TreeResult) {
	t := &Table{
		ID:     "E23",
		Title:  "Replication trees: origin-pull fan-out with mid-stream repair",
		Paper:  "one copy per hop however many viewers; reconfiguration applies between segments (§4.1, principle 6)",
		Header: []string{"measure", "value"},
	}
	clean := e23Tannoy(seed, false)
	fl := e23Tannoy(seed, true)
	plan := fl.st.Tree
	cfg := plan.Config()

	res := &TreeResult{
		Boxes:        len(fl.names),
		Viewers:      len(fl.members),
		Trees:        cfg.Trees,
		Fanout:       cfg.Fanout,
		Depth:        plan.Depth(),
		SourceCopies: plan.SourceCopies(),
		MaxInterior:  plan.MaxInteriorCopies(),
		Repairs:      plan.Repairs(),
		AssertsPass:  fl.asserts && clean.asserts,
	}
	res.PerHopOK = true
	for _, n := range fl.names {
		if c := fl.ingress[n]; n == "src" {
			if c > res.SourceCopies {
				res.PerHopOK = false
			}
		} else if c > cfg.Fanout {
			res.PerHopOK = false
		}
	}
	res.Identical = true
	for _, n := range fl.members {
		if plan.EverUnder(n, e23Crash) || n == e23Crash {
			res.Excluded++
			continue
		}
		res.Survivors++
		if fl.digests[n] != clean.digests[n] || fl.segs[n] != clean.segs[n] {
			res.Identical = false
		}
	}
	res.Rehomed = len(plan.RehomedFrom(e23Crash))
	res.BoxCopiesMax = fl.boxCopies
	res.Fingerprint = treeFingerprint(fl)

	t.Add("viewers", fmt.Sprintf("%d over %d fabrics (2 bridge links)", res.Viewers, 2))
	t.Add("trees", fmt.Sprintf("%d × fanout %d, depth %d", res.Trees, res.Fanout, res.Depth))
	t.Add("source copies per segment", fmt.Sprintf("%d (flat tannoy would send %d)", res.SourceCopies, res.Viewers))
	t.Add("per-hop copy bound at the wire", fmt.Sprintf("held=%v (max interior %d ≤ k=%d)", res.PerHopOK, res.MaxInterior, res.Fanout))
	t.Add("interior crash repaired", fmt.Sprintf("%s: %d subtrees re-homed mid-stream (%d repair)", e23Crash, res.Rehomed, res.Repairs))
	t.Add("surviving deliveries byte-identical", fmt.Sprintf("%v (%d of %d viewers; %d excluded as ever-under %s)",
		res.Identical, res.Survivors, res.Viewers, res.Excluded, e23Crash))
	t.Remark("two trees replace 102 source circuits with 2, and a mid-stream interior failure costs only its own subtrees")
	return t, res
}

// treeFingerprint renders a finished run as one deterministic string.
func treeFingerprint(r *e23Run) string {
	var sb strings.Builder
	members := append([]string{}, r.members...)
	sort.Strings(members)
	for _, n := range members {
		fmt.Fprintf(&sb, "%s: segs=%d digest=%016x ingress=%d\n", n, r.segs[n], r.digests[n], r.ingress[n])
	}
	sb.WriteString(r.sumText)
	return sb.String()
}
