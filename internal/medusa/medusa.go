// Package medusa implements the paper's future-work system (§5.2):
// "One approach explodes Pandora by having the camera, microphone,
// speaker and display as independent units linked only by the LAN."
//
// Each peripheral is a self-contained unit with its own network
// connection — no box, no server transputer. The Pandora principles
// carry over unchanged, exactly as the paper predicts ("the
// principles employed in Pandora will still be applicable"): segments
// keep their format, the speaker unit runs the same per-stream
// clawback buffers and mixing code, and streams adapt locally with no
// central coordination. The paper reports that upgrading boxes to
// faster links needed no retuning (principle 8); the tests verify the
// same units work across very different link speeds.
package medusa

import (
	"time"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/mixer"
	"repro/internal/occam"
	"repro/internal/segment"
	"repro/internal/video"
	"repro/internal/workload"
)

// MicUnit is a microphone directly on the network: it digitises,
// batches 2 ms blocks into Pandora segments and transmits them on its
// circuits. Several destinations receive independent copies
// (principle 5 holds in the network, not the unit).
type MicUnit struct {
	host   *atm.Host
	source workload.AudioSource
	vcis   []uint32
	ctl    *occam.Chan[micCtl]
	pool   *segment.WirePool
	segs   uint64
}

type micCtl struct {
	vcis      []uint32
	blocksPer int
}

// NewMicUnit creates a microphone unit named name on net.
func NewMicUnit(rt *occam.Runtime, net *atm.Network, name string, source workload.AudioSource) *MicUnit {
	m := &MicUnit{
		host:   net.AddHost(name),
		source: source,
		ctl:    occam.NewChan[micCtl](rt, name+".ctl"),
		pool:   segment.NewWirePool(),
	}
	rt.Go(name+".mic", nil, occam.High, m.run)
	return m
}

// Host returns the unit's network endpoint.
func (m *MicUnit) Host() *atm.Host { return m.host }

// Segments returns how many segments have been transmitted.
func (m *MicUnit) Segments() uint64 { return m.segs }

// Start begins transmission on the given VCIs (circuits must exist).
func (m *MicUnit) Start(p *occam.Proc, vcis ...uint32) {
	m.ctl.Send(p, micCtl{vcis: vcis, blocksPer: segment.DefaultBlocksPerSegment})
}

// Stop ends transmission.
func (m *MicUnit) Stop(p *occam.Proc) { m.ctl.Send(p, micCtl{}) }

func (m *MicUnit) run(p *occam.Proc) {
	filler, _ := m.source.(workload.BlockFiller)
	var (
		adata   []byte // accumulated samples of the segment being built
		nblocks int
		aseg    segment.Audio
		stamp   occam.Time
		seq     uint32
		perSeg  = segment.DefaultBlocksPerSegment
	)
	for n := int64(0); ; n++ {
		p.SleepUntil(occam.Time(n * int64(segment.BlockDuration)))
		for {
			var c micCtl
			if p.Alt(occam.Recv(m.ctl, &c), occam.Skip()) == 1 {
				break
			}
			m.vcis = c.vcis
			if c.blocksPer > 0 {
				perSeg = c.blocksPer
			}
			seq, nblocks = 0, 0
		}
		if len(m.vcis) == 0 {
			continue
		}
		if nblocks == 0 {
			stamp = p.Now() - occam.Time(segment.BlockDuration)
			adata = adata[:0]
		}
		if filler != nil {
			if cap(adata) < len(adata)+segment.BlockSamples {
				adata = append(adata, make([]byte, segment.BlockSamples)...)
			} else {
				adata = adata[:len(adata)+segment.BlockSamples]
			}
			filler.FillBlock(adata[len(adata)-segment.BlockSamples:])
		} else {
			adata = append(adata, m.source.NextBlock()...)
		}
		nblocks++
		if nblocks >= perSeg {
			// Encode once; every destination circuit shares the wire
			// under its own reference.
			w := m.pool.Encode(aseg.Reset(seq, stamp, adata))
			seq++
			nblocks = 0
			w.Retain(len(m.vcis) - 1)
			for _, vci := range m.vcis {
				if m.host.Send(p, atm.Message{VCI: vci, Size: w.Len(), W: w}) != nil {
					w.Release() // no circuit took the reference
				}
			}
			m.segs++
		}
	}
}

// SpeakerUnit is a loudspeaker directly on the network: arriving
// streams run through the same destination machinery as a box —
// per-stream clawback buffers, automatic stream lifecycle, mixing
// every 2 ms (principle 8: it adapts to whatever arrives, with no
// knowledge of the sources).
type SpeakerUnit struct {
	host *atm.Host
	mix  *mixer.Mixer
	lat  map[uint32]*metrics.Tracker
}

// NewSpeakerUnit creates a speaker unit named name on net.
func NewSpeakerUnit(rt *occam.Runtime, net *atm.Network, name string) *SpeakerUnit {
	s := &SpeakerUnit{
		host: net.AddHost(name),
		mix:  mixer.New(mixer.Config{}),
		lat:  make(map[uint32]*metrics.Tracker),
	}
	s.mix.OnPlayout = func(stream uint32, stamp, now int64) {
		if stamp <= 0 {
			return
		}
		t, ok := s.lat[stream]
		if !ok {
			t = metrics.NewTracker(name)
			s.lat[stream] = t
		}
		t.Add(time.Duration(now-stamp) + segment.BlockDuration)
	}
	rt.Go(name+".rx", nil, occam.High, s.runRx)
	rt.Go(name+".tick", nil, occam.Low, s.runTick)
	return s
}

// Host returns the unit's network endpoint.
func (s *SpeakerUnit) Host() *atm.Host { return s.host }

// Mixer exposes the destination mixer for statistics.
func (s *SpeakerUnit) Mixer() *mixer.Mixer { return s.mix }

// Latency returns the playout latency tracker for a stream.
func (s *SpeakerUnit) Latency(vci uint32) *metrics.Tracker {
	t, ok := s.lat[vci]
	if !ok {
		t = metrics.NewTracker("empty")
	}
	return t
}

func (s *SpeakerUnit) runRx(p *occam.Proc) {
	for {
		msg := s.host.Rx.Recv(p)
		if !msg.W.IsZero() && (msg.W.Type() == segment.TypeAudio || msg.W.Type() == segment.TypeTest) {
			s.mix.Deliver(msg.VCI, msg.W) // Deliver consumes the reference
		} else {
			msg.W.Release()
		}
	}
}

func (s *SpeakerUnit) runTick(p *occam.Proc) {
	for n := int64(1); ; n++ {
		p.SleepUntil(occam.Time(n * int64(segment.BlockDuration)))
		s.mix.Tick(int64(p.Now()))
	}
}

// CameraUnit is a camera directly on the network, producing DPCM
// compressed video segments at a fractional frame rate.
type CameraUnit struct {
	host   *atm.Host
	camera *workload.Camera
	w, h   int
	rate   video.Rate
	vcis   []uint32
	ctl    *occam.Chan[[]uint32]
	pool   *segment.WirePool
	frames uint64
}

// NewCameraUnit creates a camera unit named name on net.
func NewCameraUnit(rt *occam.Runtime, net *atm.Network, name string, w, h int, rate video.Rate) *CameraUnit {
	c := &CameraUnit{
		host:   net.AddHost(name),
		camera: workload.NewCamera(w, h),
		w:      w,
		h:      h,
		rate:   rate,
		ctl:    occam.NewChan[[]uint32](rt, name+".ctl"),
		pool:   segment.NewWirePool(),
	}
	rt.Go(name+".camera", nil, occam.High, c.run)
	return c
}

// Host returns the unit's network endpoint.
func (c *CameraUnit) Host() *atm.Host { return c.host }

// Frames returns how many frames have been transmitted.
func (c *CameraUnit) Frames() uint64 { return c.frames }

// Start begins transmission on the given VCIs.
func (c *CameraUnit) Start(p *occam.Proc, vcis ...uint32) { c.ctl.Send(p, vcis) }

func (c *CameraUnit) run(p *occam.Proc) {
	lp := video.LineParams{Shift: 1}
	var seq, frameNo uint32
	var codec video.Codec
	var data []byte // packed segment scratch, copied on by Encode
	for frame := 0; ; frame++ {
		p.SleepUntil(occam.Time(int64(frame) * int64(video.FramePeriod)))
		for {
			var vcis []uint32
			if p.Alt(occam.Recv(c.ctl, &vcis), occam.Skip()) == 1 {
				break
			}
			c.vcis = vcis
		}
		if len(c.vcis) == 0 || !c.rate.Take(frame) {
			continue
		}
		img := c.camera.NextFrame()
		// One segment per half frame, despatched as soon as ready.
		half := c.h / 2
		for s := 0; s < 2; s++ {
			data = data[:0]
			codec.Reset()
			for y := s * half; y < (s+1)*half; y++ {
				wire := codec.CompressLine(img.Row(y), lp)
				var hdr [2]byte
				hdr[0] = byte(len(wire) >> 8)
				hdr[1] = byte(len(wire))
				data = append(data, hdr[:]...)
				data = append(data, wire...)
			}
			seg := segment.NewVideo(seq, p.Now(), frameNo, 2, uint32(s),
				0, uint32(s*half), uint32(c.w), uint32(s*half), uint32(half), data)
			seq++
			w := c.pool.Encode(seg)
			w.Retain(len(c.vcis) - 1)
			for _, vci := range c.vcis {
				if c.host.Send(p, atm.Message{VCI: vci, Size: w.Len(), W: w}) != nil {
					w.Release() // no circuit took the reference
				}
			}
		}
		frameNo++
		c.frames++
	}
}

// DisplayUnit is a display directly on the network: it decompresses
// arriving video segments (with the per-stream line cache) and
// assembles whole frames before display, exactly as the mixer board
// does (§3.6) — "the overall architecture is very similar in terms of
// data description and buffering" (§5.2).
type DisplayUnit struct {
	host       *atm.Host
	interp     *video.Interpolator
	assemblers map[uint32]*video.Assembler
	w, h       int
	Frames     uint64
	DecodeErrs uint64
	FrameLat   *metrics.Tracker

	// Per-unit decode scratch: the line codec and the segment image
	// (blitted into the assembler's own frame by Add).
	codec   video.Codec
	scratch video.Frame
}

// NewDisplayUnit creates a display unit named name on net.
func NewDisplayUnit(rt *occam.Runtime, net *atm.Network, name string, w, h int) *DisplayUnit {
	d := &DisplayUnit{
		host:       net.AddHost(name),
		interp:     video.NewInterpolator(),
		assemblers: make(map[uint32]*video.Assembler),
		w:          w,
		h:          h,
		FrameLat:   metrics.NewTracker(name + ".frameLat"),
	}
	rt.Go(name+".display", nil, occam.High, d.run)
	return d
}

// Host returns the unit's network endpoint.
func (d *DisplayUnit) Host() *atm.Host { return d.host }

func (d *DisplayUnit) run(p *occam.Proc) {
	var seg segment.Video // reused header view into each wire
	for {
		msg := d.host.Rx.Recv(p)
		if msg.W.IsZero() || msg.W.Type() != segment.TypeVideo {
			msg.W.Release()
			continue
		}
		if err := msg.W.DecodeVideoInto(&seg); err != nil {
			d.DecodeErrs++
			msg.W.Release()
			continue
		}
		img, ok := d.decode(msg.VCI, &seg)
		if !ok {
			d.DecodeErrs++
			msg.W.Release()
			continue
		}
		a, ok := d.assemblers[msg.VCI]
		if !ok {
			a = video.NewAssembler(d.w, d.h)
			d.assemblers[msg.VCI] = a
		}
		frame := a.Add(&seg, img)
		msg.W.Release() // img and the assembler hold their own copies
		if frame != nil {
			d.Frames++
			d.FrameLat.Add(p.Now().Sub(segment.TimestampTime(seg.Timestamp)))
		}
	}
}

func (d *DisplayUnit) decode(stream uint32, seg *segment.Video) (*video.Frame, bool) {
	d.interp.Begin(stream)
	img := &d.scratch
	img.Reuse(int(seg.Width), int(seg.NumLines))
	data := seg.Data
	for y := 0; y < int(seg.NumLines); y++ {
		if len(data) < 2 {
			return nil, false
		}
		n := int(data[0])<<8 | int(data[1])
		data = data[2:]
		if len(data) < n {
			return nil, false
		}
		line, err := d.codec.DecompressLine(data[:n], int(seg.Width))
		if err != nil {
			return nil, false
		}
		copy(img.Row(y), line)
		d.interp.Advance(stream, line)
		data = data[n:]
	}
	return img, true
}
