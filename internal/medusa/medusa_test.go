package medusa

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/occam"
	"repro/internal/video"
	"repro/internal/workload"
)

func TestExplodedAudioPath(t *testing.T) {
	// Mic unit → network → speaker unit, no box in between.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	mic := NewMicUnit(rt, net, "mic", workload.NewTone(400, 10000))
	spk := NewSpeakerUnit(rt, net, "spk")
	l := net.AddLink("m-s", atm.LinkConfig{Bandwidth: 100_000_000})
	net.OpenCircuit(1, mic.Host(), spk.Host(), l)
	rt.Go("control", nil, occam.High, func(p *occam.Proc) { mic.Start(p, 1) })
	if err := rt.RunUntil(occam.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	st := spk.Mixer().Stats(1)
	if st.Segments < 450 {
		t.Fatalf("speaker received %d segments", st.Segments)
	}
	if st.LostSegments != 0 {
		t.Fatalf("%d lost on a clean path", st.LostSegments)
	}
	// The same ≈8 ms one-way figure as the box (principles carry over).
	best := spk.Latency(1).Min()
	if best < 4*time.Millisecond || best > 12*time.Millisecond {
		t.Fatalf("exploded-path latency %v", best)
	}
}

func TestExplodedTannoy(t *testing.T) {
	// One mic unit to three speaker units — split in the network.
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	mic := NewMicUnit(rt, net, "mic", workload.NewTone(500, 9000))
	var spks []*SpeakerUnit
	var vcis []uint32
	for i := 0; i < 3; i++ {
		s := NewSpeakerUnit(rt, net, string(rune('a'+i)))
		l := net.AddLink(string(rune('a'+i))+"-l", atm.LinkConfig{Bandwidth: 100_000_000})
		vci := uint32(10 + i)
		net.OpenCircuit(vci, mic.Host(), s.Host(), l)
		spks = append(spks, s)
		vcis = append(vcis, vci)
	}
	rt.Go("control", nil, occam.High, func(p *occam.Proc) { mic.Start(p, vcis...) })
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	for i, s := range spks {
		if got := s.Mixer().Stats(vcis[i]).Segments; got < 200 {
			t.Fatalf("speaker %d got %d segments", i, got)
		}
	}
}

func TestExplodedVideoPath(t *testing.T) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	cam := NewCameraUnit(rt, net, "cam", 128, 64, video.Rate{Num: 2, Den: 5})
	disp := NewDisplayUnit(rt, net, "disp", 128, 64)
	l := net.AddLink("c-d", atm.LinkConfig{Bandwidth: 100_000_000})
	net.OpenCircuit(5, cam.Host(), disp.Host(), l)
	rt.Go("control", nil, occam.High, func(p *occam.Proc) { cam.Start(p, 5) })
	if err := rt.RunUntil(occam.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if disp.Frames < 15 || disp.Frames > 21 {
		t.Fatalf("displayed %d frames at 10fps over 2s", disp.Frames)
	}
	if disp.DecodeErrs != 0 {
		t.Fatalf("%d decode errors", disp.DecodeErrs)
	}
	if disp.FrameLat.Max() > 100*time.Millisecond {
		t.Fatalf("frame latency %v", disp.FrameLat.Max())
	}
}

func TestNoRetuningAcrossLinkSpeeds(t *testing.T) {
	// §5.2: "The Pandora boxes themselves have been upgraded to
	// operate over 100Mbit/s ATM links instead of the ATM ring
	// networks, and no retuning was found to be necessary." The same
	// units work from 2 Mbit/s to 622 Mbit/s with identical defaults.
	for _, bw := range []int64{2_000_000, 25_000_000, 100_000_000, 622_000_000} {
		rt := occam.NewRuntime()
		net := atm.New(rt)
		mic := NewMicUnit(rt, net, "mic", workload.NewTone(400, 10000))
		spk := NewSpeakerUnit(rt, net, "spk")
		l := net.AddLink("m-s", atm.LinkConfig{Bandwidth: bw})
		net.OpenCircuit(1, mic.Host(), spk.Host(), l)
		rt.Go("control", nil, occam.High, func(p *occam.Proc) { mic.Start(p, 1) })
		if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		st := spk.Mixer().Stats(1)
		if st.Segments < 200 || st.LostSegments > 0 {
			t.Fatalf("bw=%d: %d segments, %d lost — retuning needed", bw, st.Segments, st.LostSegments)
		}
		rt.Shutdown()
	}
}

func TestStopSilencesMic(t *testing.T) {
	rt := occam.NewRuntime()
	defer rt.Shutdown()
	net := atm.New(rt)
	mic := NewMicUnit(rt, net, "mic", workload.NewTone(400, 10000))
	spk := NewSpeakerUnit(rt, net, "spk")
	net.OpenCircuit(1, mic.Host(), spk.Host())
	rt.Go("control", nil, occam.High, func(p *occam.Proc) {
		mic.Start(p, 1)
		p.Sleep(300 * time.Millisecond)
		mic.Stop(p)
	})
	if err := rt.RunUntil(occam.Time(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	at := mic.Segments()
	if err := rt.RunUntil(occam.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if mic.Segments() > at {
		t.Fatal("mic kept transmitting after Stop")
	}
}
