// Package degrade is the overload controller: one small process per
// box that watches the pressure signals already in the obs registry —
// decoupling-buffer depth (decouple_queued / decouple_limit) and ATM
// output-queue depth (atm_link_queue_depth / atm_link_queue_limit) —
// and applies the paper's ordered degradation policy when they stay
// high:
//
//   - video is bounded and shed before audio (principle 2): audio
//     streams are only shed under direct audio-buffer pressure, and
//     only after every video candidate is exhausted;
//   - incoming streams are shed before outgoing ones (principle 1),
//     reversed for repository boxes (§2.1), where the recorded
//     incoming stream is the one that must not be damaged;
//   - within a class, the longest-open stream is shed first
//     (principle 3), so new streams keep starting cleanly under load.
//
// A shed is delivered to the box as a switch-table suspension plus a
// mixer-side bar (Target.DegradeShed), so the data flow stops at the
// earliest point without touching the route itself; when pressure
// stays below the low-water mark for a hold period, streams are
// restored in LIFO order — the least-disruptive first (principle 8:
// local adaptation, no end-to-end cooperation). Every decision is
// counted (degrade_shed_total, degrade_restore_total) and traced
// (EvOverload / EvRecover), and kept in an action log the experiments
// assert on.
package degrade

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/occam"
)

// StreamInfo describes one candidate stream at the target box.
type StreamInfo struct {
	ID       uint32
	Video    bool
	Incoming bool // delivered locally (speaker/display) vs network-bound
	Opened   occam.Time
}

// Target is the box-side interface the controller drives. A
// *box.Box implements it; tests use fakes.
type Target interface {
	// DegradeName identifies the target in metrics and traces.
	DegradeName() string
	// DegradeStreams lists the currently routed streams.
	DegradeStreams() []StreamInfo
	// DegradeVideoBuffers and DegradeAudioBuffers name the decoupling
	// buffers (the obs "buffer" label values) whose occupancy is this
	// box's video and audio pressure.
	DegradeVideoBuffers() []string
	DegradeAudioBuffers() []string
	// DegradeShed suspends a stream; DegradeRestore resumes it.
	DegradeShed(p *occam.Proc, id uint32)
	DegradeRestore(p *occam.Proc, id uint32)
	// DegradeRepositoryOrder reverses incoming-before-outgoing
	// (repository boxes protect incoming recorded streams, §2.1).
	DegradeRepositoryOrder() bool
}

// Config parameterises a Controller. Zero values select defaults.
type Config struct {
	// Interval is the control-loop period (default 20 ms).
	Interval time.Duration
	// HighWater is the pressure ratio at or above which streams are
	// shed (default 0.75).
	HighWater float64
	// LowWater is the ratio below which restores begin (default 0.25).
	LowWater float64
	// Hold is how long pressure must stay below LowWater — and the
	// minimum spacing between restores (default 400 ms).
	Hold time.Duration
	// ShedEvery is the minimum spacing between sheds, so the ladder
	// descends one stream at a time (default 100 ms).
	ShedEvery time.Duration
	// MaxShed bounds concurrently shed streams (0 = all but none —
	// no limit).
	MaxShed int
	// Links names the atm links (the obs "link" label values) whose
	// output-queue pressure counts toward this box's video pressure —
	// congestion there is relieved by shedding video at this box.
	Links []string
	// Ports names the fabric ports (the obs "port" label values) whose
	// egress-queue pressure counts toward this target's video pressure.
	// Used by per-port fabric controllers; a port target has no audio
	// buffers, so port congestion never sheds audio (principle 2 holds
	// trivially at the fabric).
	Ports []string
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.HighWater <= 0 {
		c.HighWater = 0.75
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.25
	}
	if c.Hold <= 0 {
		c.Hold = 400 * time.Millisecond
	}
	if c.ShedEvery <= 0 {
		c.ShedEvery = 100 * time.Millisecond
	}
	return c
}

// Action is one logged controller decision.
type Action struct {
	At       occam.Time
	Restore  bool
	Stream   uint32
	Video    bool
	Incoming bool
	// VideoPressure/AudioPressure are the ratios that triggered it.
	VideoPressure, AudioPressure float64
}

func (a Action) String() string {
	return fmt.Sprintf("[%10.3fms] %s stream %d (video=%.2f audio=%.2f)",
		a.At.Millis(), a.desc(), a.Stream, a.VideoPressure, a.AudioPressure)
}

// desc is the action without timestamp, stream or pressures — the
// trace-event message (the ring records those fields itself).
func (a Action) desc() string {
	verb, class, dir := "shed", "audio", "outgoing"
	if a.Restore {
		verb = "restore"
	}
	if a.Video {
		class = "video"
	}
	if a.Incoming {
		dir = "incoming"
	}
	return verb + " " + class + " " + dir
}

// Controller is one box's overload controller process.
type Controller struct {
	target Target
	cfg    Config
	reg    *obs.Registry
	trace  *obs.Tracer

	shed  map[uint32]StreamInfo
	stack []uint32 // restore order: last shed, first restored
	log   []Action

	lastHigh    occam.Time
	lastShed    occam.Time
	lastRestore occam.Time

	shedVideo *obs.Counter
	shedAudio *obs.Counter
	restores  *obs.Counter
	ticks     *obs.Counter
	pVideo    *obs.Gauge
	pAudio    *obs.Gauge

	// Pre-keyed pressure probes, one queue/limit pair per watched
	// buffer, link and port (the name lists are fixed per target, so
	// the instrument keys are built once, not every tick).
	videoProbes []ratioProbe
	audioProbes []ratioProbe
}

// ratioProbe reads one queue/limit gauge pair as an occupancy ratio.
type ratioProbe struct {
	q, lim *obs.Probe
}

func (pr ratioProbe) ratio() float64 {
	q, ok := pr.q.Value()
	if !ok {
		return 0
	}
	lim, ok := pr.lim.Value()
	if !ok || lim <= 0 {
		return 0
	}
	return q / lim
}

// New starts a controller for target on rt. reg must be the registry
// the target's buffers and links report into — it is both the
// controller's sensor and where its own instruments register.
func New(rt *occam.Runtime, target Target, cfg Config, reg *obs.Registry) *Controller {
	cfg = cfg.withDefaults()
	lb := obs.L("box", target.DegradeName())
	c := &Controller{
		target:    target,
		cfg:       cfg,
		reg:       reg,
		trace:     reg.Tracer(),
		shed:      make(map[uint32]StreamInfo),
		shedVideo: reg.Counter("degrade_shed_total", lb, obs.L("media", "video")),
		shedAudio: reg.Counter("degrade_shed_total", lb, obs.L("media", "audio")),
		restores:  reg.Counter("degrade_restore_total", lb),
		ticks:     reg.Counter("degrade_ticks_total", lb),
		pVideo:    reg.Gauge("degrade_pressure_video", lb),
		pAudio:    reg.Gauge("degrade_pressure_audio", lb),
	}
	reg.GaugeFunc("degrade_active_sheds", func() float64 { return float64(len(c.shed)) }, lb)
	for _, name := range target.DegradeVideoBuffers() {
		blb := obs.L("buffer", name)
		c.videoProbes = append(c.videoProbes, ratioProbe{
			q:   reg.Probe("decouple_queued", blb),
			lim: reg.Probe("decouple_limit", blb),
		})
	}
	for _, link := range cfg.Links {
		llb := obs.L("link", link)
		c.videoProbes = append(c.videoProbes, ratioProbe{
			q:   reg.Probe("atm_link_queue_depth", llb),
			lim: reg.Probe("atm_link_queue_limit", llb),
		})
	}
	for _, port := range cfg.Ports {
		plb := obs.L("port", port)
		c.videoProbes = append(c.videoProbes, ratioProbe{
			q:   reg.Probe("fabric_port_queue_depth", plb),
			lim: reg.Probe("fabric_port_queue_limit", plb),
		})
	}
	for _, name := range target.DegradeAudioBuffers() {
		blb := obs.L("buffer", name)
		c.audioProbes = append(c.audioProbes, ratioProbe{
			q:   reg.Probe("decouple_queued", blb),
			lim: reg.Probe("decouple_limit", blb),
		})
	}
	rt.Go(target.DegradeName()+".degrade", nil, occam.High, c.run)
	return c
}

// Actions returns the decision log.
func (c *Controller) Actions() []Action { return append([]Action(nil), c.log...) }

// ActiveSheds returns the currently shed stream ids, most recent last.
func (c *Controller) ActiveSheds() []uint32 { return append([]uint32(nil), c.stack...) }

func (c *Controller) run(p *occam.Proc) {
	for {
		p.Sleep(c.cfg.Interval)
		c.ticks.Inc()
		video, audio := c.pressure()
		c.pVideo.Set(video)
		c.pAudio.Set(audio)
		now := p.Now()
		switch {
		case video >= c.cfg.HighWater || audio >= c.cfg.HighWater:
			c.lastHigh = now
			if now.Sub(c.lastShed) >= c.cfg.ShedEvery {
				c.shedOne(p, now, video, audio)
			}
		case video < c.cfg.LowWater && audio < c.cfg.LowWater &&
			len(c.stack) > 0 &&
			now.Sub(c.lastHigh) >= c.cfg.Hold &&
			now.Sub(c.lastRestore) >= c.cfg.Hold:
			c.restoreOne(p, now, video, audio)
		}
	}
}

// pressure reads the pre-keyed probes: each class's pressure is the
// worst ratio across its watched buffers; outbound link and port
// queues count toward video, the class whose shedding relieves them.
func (c *Controller) pressure() (video, audio float64) {
	for _, pr := range c.videoProbes {
		video = maxf(video, pr.ratio())
	}
	for _, pr := range c.audioProbes {
		audio = maxf(audio, pr.ratio())
	}
	return video, audio
}

// rank orders candidates by the paper's policy: video before audio
// always; within a class, incoming before outgoing (reversed for
// repositories); ties broken by age, oldest first.
func (c *Controller) rank(s StreamInfo) int {
	r := 0
	if !s.Video {
		r += 2
	}
	first := s.Incoming
	if c.target.DegradeRepositoryOrder() {
		first = !s.Incoming
	}
	if !first {
		r++
	}
	return r
}

// shedOne picks and sheds the single best victim, if any. Audio
// candidates are considered only under direct audio pressure, and even
// then every video stream goes first.
func (c *Controller) shedOne(p *occam.Proc, now occam.Time, video, audio float64) {
	if c.cfg.MaxShed > 0 && len(c.shed) >= c.cfg.MaxShed {
		return
	}
	var cands []StreamInfo
	for _, s := range c.target.DegradeStreams() {
		if _, already := c.shed[s.ID]; already {
			continue
		}
		if !s.Video && audio < c.cfg.HighWater {
			continue // audio is only shed under audio pressure
		}
		cands = append(cands, s)
	}
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		ri, rj := c.rank(cands[i]), c.rank(cands[j])
		if ri != rj {
			return ri < rj
		}
		if cands[i].Opened != cands[j].Opened {
			return cands[i].Opened < cands[j].Opened
		}
		return cands[i].ID < cands[j].ID
	})
	victim := cands[0]
	c.target.DegradeShed(p, victim.ID)
	c.shed[victim.ID] = victim
	c.stack = append(c.stack, victim.ID)
	c.lastShed = now
	if victim.Video {
		c.shedVideo.Inc()
	} else {
		c.shedAudio.Inc()
	}
	act := Action{At: now, Stream: victim.ID, Video: victim.Video,
		Incoming: victim.Incoming, VideoPressure: video, AudioPressure: audio}
	c.log = append(c.log, act)
	c.trace.Emit(obs.EvOverload, c.target.DegradeName()+".degrade", victim.ID, act.desc())
}

// restoreOne lifts the most recent shed (LIFO: the least-disruptive
// restore, since the youngest shed was the lowest-priority victim).
func (c *Controller) restoreOne(p *occam.Proc, now occam.Time, video, audio float64) {
	id := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	info := c.shed[id]
	delete(c.shed, id)
	c.target.DegradeRestore(p, id)
	c.lastRestore = now
	c.restores.Inc()
	act := Action{At: now, Restore: true, Stream: id, Video: info.Video,
		Incoming: info.Incoming, VideoPressure: video, AudioPressure: audio}
	c.log = append(c.log, act)
	c.trace.Emit(obs.EvRecover, c.target.DegradeName()+".degrade", id, act.desc())
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
