package degrade_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/degrade"
	"repro/internal/obs"
	"repro/internal/occam"
)

// fakeTarget implements degrade.Target with a scripted stream set and
// records the controller's shed/restore calls in order.
type fakeTarget struct {
	name     string
	repo     bool
	streams  []degrade.StreamInfo
	shed     []uint32
	restored []uint32
}

func (t *fakeTarget) DegradeName() string                  { return t.name }
func (t *fakeTarget) DegradeStreams() []degrade.StreamInfo { return t.streams }
func (t *fakeTarget) DegradeVideoBuffers() []string        { return []string{t.name + ".vbuf"} }
func (t *fakeTarget) DegradeAudioBuffers() []string        { return []string{t.name + ".abuf"} }
func (t *fakeTarget) DegradeShed(p *occam.Proc, id uint32) { t.shed = append(t.shed, id) }
func (t *fakeTarget) DegradeRestore(p *occam.Proc, id uint32) {
	t.restored = append(t.restored, id)
}
func (t *fakeTarget) DegradeRepositoryOrder() bool { return t.repo }

// pressures registers fake buffer gauges under the names the
// controller reads, backed by the returned setters.
func pressures(reg *obs.Registry, name string) (setVideo, setAudio func(float64)) {
	var vq, aq float64
	vlb := obs.L("buffer", name+".vbuf")
	alb := obs.L("buffer", name+".abuf")
	reg.GaugeFunc("decouple_queued", func() float64 { return vq }, vlb)
	reg.GaugeFunc("decouple_limit", func() float64 { return 10 }, vlb)
	reg.GaugeFunc("decouple_queued", func() float64 { return aq }, alb)
	reg.GaugeFunc("decouple_limit", func() float64 { return 10 }, alb)
	return func(v float64) { vq = v }, func(v float64) { aq = v }
}

var quickCfg = degrade.Config{
	Interval:  5 * time.Millisecond,
	ShedEvery: 10 * time.Millisecond,
	Hold:      50 * time.Millisecond,
}

// TestShedOrderAndLIFORestore drives the full ladder: under video
// pressure only the video streams shed — incoming before outgoing,
// oldest first — audio sheds only once audio pressure appears, and
// recovery restores in LIFO order.
func TestShedOrderAndLIFORestore(t *testing.T) {
	rt := occam.NewRuntime()
	reg := obs.New(rt)
	ft := &fakeTarget{name: "t", streams: []degrade.StreamInfo{
		{ID: 1, Video: true, Incoming: true, Opened: 100},
		{ID: 2, Video: true, Incoming: true, Opened: 200},
		{ID: 3, Video: true, Incoming: false, Opened: 50},
		{ID: 4, Video: false, Incoming: true, Opened: 10},
		{ID: 5, Video: false, Incoming: false, Opened: 20},
	}}
	setVideo, setAudio := pressures(reg, "t")
	c := degrade.New(rt, ft, quickCfg, reg)

	setVideo(10) // ratio 1.0: hard overload
	if err := rt.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if want := []uint32{1, 2, 3}; !reflect.DeepEqual(ft.shed, want) {
		t.Fatalf("video-pressure sheds = %v, want %v (incoming oldest first, then outgoing, never audio)", ft.shed, want)
	}

	setAudio(10) // audio overload too: now — and only now — audio sheds
	if err := rt.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if want := []uint32{1, 2, 3, 4, 5}; !reflect.DeepEqual(ft.shed, want) {
		t.Fatalf("sheds after audio pressure = %v, want %v", ft.shed, want)
	}
	if got, _ := reg.Value("degrade_shed_total", obs.L("box", "t"), obs.L("media", "video")); got != 3 {
		t.Fatalf("degrade_shed_total{media=video} = %v, want 3", got)
	}
	if got, _ := reg.Value("degrade_shed_total", obs.L("box", "t"), obs.L("media", "audio")); got != 2 {
		t.Fatalf("degrade_shed_total{media=audio} = %v, want 2", got)
	}

	setVideo(0)
	setAudio(0)
	if err := rt.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if want := []uint32{5, 4, 3, 2, 1}; !reflect.DeepEqual(ft.restored, want) {
		t.Fatalf("restores = %v, want %v (LIFO)", ft.restored, want)
	}
	if n := len(c.ActiveSheds()); n != 0 {
		t.Fatalf("ActiveSheds after recovery = %d, want 0", n)
	}
	if len(c.Actions()) != 10 {
		t.Fatalf("action log has %d entries, want 10", len(c.Actions()))
	}
}

// TestRepositoryOrderReversed: a repository box sheds outgoing before
// incoming — the recorded incoming stream is protected.
func TestRepositoryOrderReversed(t *testing.T) {
	rt := occam.NewRuntime()
	reg := obs.New(rt)
	ft := &fakeTarget{name: "t", repo: true, streams: []degrade.StreamInfo{
		{ID: 1, Video: true, Incoming: true, Opened: 5},
		{ID: 2, Video: true, Incoming: false, Opened: 10},
	}}
	setVideo, _ := pressures(reg, "t")
	degrade.New(rt, ft, quickCfg, reg)

	setVideo(10)
	if err := rt.RunFor(60 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if want := []uint32{2, 1}; !reflect.DeepEqual(ft.shed, want) {
		t.Fatalf("repository sheds = %v, want %v (outgoing first)", ft.shed, want)
	}
}

// TestLinkPressureShedsVideo: congestion on a configured outgoing link
// counts as video pressure even with empty local buffers.
func TestLinkPressureShedsVideo(t *testing.T) {
	rt := occam.NewRuntime()
	reg := obs.New(rt)
	ft := &fakeTarget{name: "t", streams: []degrade.StreamInfo{
		{ID: 7, Video: true, Incoming: false, Opened: 1},
		{ID: 8, Video: false, Incoming: false, Opened: 1},
	}}
	pressures(reg, "t") // buffers exist but stay empty
	lb := obs.L("link", "t-x.0")
	reg.GaugeFunc("atm_link_queue_depth", func() float64 { return 9 }, lb)
	reg.GaugeFunc("atm_link_queue_limit", func() float64 { return 10 }, lb)
	cfg := quickCfg
	cfg.Links = []string{"t-x.0"}
	degrade.New(rt, ft, cfg, reg)

	if err := rt.RunFor(60 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if want := []uint32{7}; !reflect.DeepEqual(ft.shed, want) {
		t.Fatalf("link-pressure sheds = %v, want %v (video only)", ft.shed, want)
	}
}

// TestMaxShedBound: the controller never sheds past MaxShed.
func TestMaxShedBound(t *testing.T) {
	rt := occam.NewRuntime()
	reg := obs.New(rt)
	ft := &fakeTarget{name: "t", streams: []degrade.StreamInfo{
		{ID: 1, Video: true, Incoming: true, Opened: 1},
		{ID: 2, Video: true, Incoming: true, Opened: 2},
		{ID: 3, Video: true, Incoming: true, Opened: 3},
	}}
	setVideo, _ := pressures(reg, "t")
	cfg := quickCfg
	cfg.MaxShed = 1
	degrade.New(rt, ft, cfg, reg)

	setVideo(10)
	if err := rt.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if want := []uint32{1}; !reflect.DeepEqual(ft.shed, want) {
		t.Fatalf("sheds with MaxShed=1 = %v, want %v", ft.shed, want)
	}
}
