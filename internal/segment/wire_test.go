package segment

import (
	"bytes"
	"testing"

	"repro/internal/occam"
)

func testBlock(fill byte) []byte {
	b := make([]byte, BlockSamples)
	for i := range b {
		b[i] = fill + byte(i)
	}
	return b
}

func testAudio() *Audio {
	return NewAudio(42, occam.Time(5_000_000), [][]byte{testBlock(1), testBlock(100)})
}

func testVideo() *Video {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 3)
	}
	v := NewVideo(9, occam.Time(2_000_000), 4, 2, 1, 0, 64, 128, 64, 1, data)
	v.Compression = CompressionDPCM
	v.Args = []uint32{7, 11}
	v.Length = uint32(v.WireSize())
	return v
}

func TestWireHeaderView(t *testing.T) {
	a := testAudio()
	pl := NewWirePool()
	w := pl.Encode(a)
	if w.IsZero() || w.Len() != a.WireSize() {
		t.Fatalf("wire len %d, want %d", w.Len(), a.WireSize())
	}
	if w.Version() != Version || w.Seq() != a.Seq || w.Timestamp() != a.Timestamp ||
		w.Type() != TypeAudio || w.Length() != a.Length {
		t.Fatalf("header view mismatch: seq=%d ts=%d type=%v len=%d",
			w.Seq(), w.Timestamp(), w.Type(), w.Length())
	}
	if w.AudioBlocks() != a.Blocks() {
		t.Fatalf("blocks %d, want %d", w.AudioBlocks(), a.Blocks())
	}
	for i := 0; i < a.Blocks(); i++ {
		if !bytes.Equal(w.AudioBlock(i), a.Block(i)) {
			t.Fatalf("block %d differs", i)
		}
	}
	if !bytes.Equal(w.AudioData(), a.Data) {
		t.Fatal("AudioData differs")
	}
}

func TestWireDecodeMatchesStructDecode(t *testing.T) {
	a := testAudio()
	pl := NewWirePool()
	w := pl.Encode(a)
	got, err := w.DecodeAudio()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != a.Seq || got.Timestamp != a.Timestamp || !bytes.Equal(got.Data, a.Data) {
		t.Fatal("decoded audio differs from original")
	}

	v := testVideo()
	wv := pl.Encode(v)
	var dec Video
	if err := wv.DecodeVideoInto(&dec); err != nil {
		t.Fatal(err)
	}
	if dec.FrameNumber != v.FrameNumber || dec.Width != v.Width ||
		dec.NumLines != v.NumLines || len(dec.Args) != len(v.Args) ||
		!bytes.Equal(dec.Data, v.Data) {
		t.Fatal("decoded video differs from original")
	}
	// The in-place decode must alias, not copy, the pixel data.
	if &dec.Data[0] != &wv.Bytes()[wv.Len()-len(v.Data)] {
		t.Fatal("DecodeVideoInto copied Data instead of aliasing the wire")
	}
}

func TestWireRefcountAndPoolReuse(t *testing.T) {
	pl := NewWirePool()
	w := pl.Encode(testAudio())
	w.Retain(2)
	if w.Refs() != 3 {
		t.Fatalf("refs %d, want 3", w.Refs())
	}
	w.Release()
	w.Release()
	if pl.FreeLen() != 0 {
		t.Fatal("storage freed while referenced")
	}
	w.Release()
	if pl.FreeLen() != 1 {
		t.Fatal("storage not returned at zero refs")
	}
	// Same storage must be reused without a fresh allocation.
	news := pl.News
	w2 := pl.Encode(testAudio())
	if pl.News != news {
		t.Fatal("pool allocated fresh storage despite a free record")
	}
	if pl.FreeLen() != 0 || w2.Refs() != 1 {
		t.Fatal("reused wire not handed out with one reference")
	}
}

func TestWireOverRelease(t *testing.T) {
	pl := NewWirePool()
	w := pl.Encode(testAudio())
	w.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	w.Release()
}

func TestWireUnmanaged(t *testing.T) {
	var zero Wire
	zero.Retain(3)
	zero.Release() // no-ops, no panic
	if !zero.IsZero() || zero.Refs() != 0 {
		t.Fatal("zero wire not inert")
	}
	w := WireOver(testAudio().Encode(nil))
	w.Retain(1)
	w.Release()
	w.Release() // unmanaged: still a no-op
}

func TestParseWireRejectsCorrupt(t *testing.T) {
	good := testAudio().Encode(nil)
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:CommonHeaderSize-1],
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte(nil), good...), 0),
		"bad version": func() []byte { b := append([]byte(nil), good...); b[3] = 9; return b }(),
		"bad type":    func() []byte { b := append([]byte(nil), good...); b[15] = 77; return b }(),
		"bad length":  func() []byte { b := append([]byte(nil), good...); b[19] ^= 1; return b }(),
	}
	for name, buf := range cases {
		if _, err := ParseWire(buf); err == nil {
			t.Errorf("%s: ParseWire accepted corrupt input", name)
		}
	}
	if _, err := ParseWire(good); err != nil {
		t.Fatalf("good wire rejected: %v", err)
	}
}

// FuzzWireRoundTrip checks that any input ParseWire accepts decodes
// cleanly and re-encodes to the identical bytes, and that corrupt
// inputs never panic. Run the smoke pass with:
//
//	go test -fuzz=FuzzWireRoundTrip -fuzztime=10s ./internal/segment
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(testAudio().Encode(nil))
	f.Add(testVideo().Encode(nil))
	f.Add([]byte{})
	f.Add(make([]byte, CommonHeaderSize))
	f.Fuzz(func(t *testing.T, buf []byte) {
		w, err := ParseWire(buf)
		if err != nil {
			return // corrupt input: rejected without panicking
		}
		_ = w.Seq()
		_ = w.Timestamp()
		_ = w.Length()
		switch w.Type() {
		case TypeAudio, TypeTest:
			a, err := w.DecodeAudio()
			if err != nil {
				t.Fatalf("validated audio wire failed to decode: %v", err)
			}
			if got := a.Encode(nil); !bytes.Equal(got, buf) {
				t.Fatal("audio re-encode differs from original bytes")
			}
			for i := 0; i < w.AudioBlocks(); i++ {
				if !bytes.Equal(w.AudioBlock(i), a.Block(i)) {
					t.Fatalf("in-place block %d differs from decoded block", i)
				}
			}
		case TypeVideo:
			var v Video
			if err := w.DecodeVideoInto(&v); err != nil {
				t.Fatalf("validated video wire failed to decode: %v", err)
			}
			if got := v.Encode(nil); !bytes.Equal(got, buf) {
				t.Fatal("video re-encode differs from original bytes")
			}
		}
	})
}
