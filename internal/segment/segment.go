// Package segment implements the Pandora segment formats of paper
// §3.2 and §3.3: self-contained units of audio or video data whose
// headers carry everything needed for delivery, synchronisation and
// error recovery.
//
// Every header field is 32 bits. The first five fields — version,
// sequence number, timestamp, type and length — form the common
// header shared by audio and video (figure 3.1/3.2). Timestamps have
// 64 µs resolution, derived from the transputer clock as close as
// possible to the data source, relative to box boot and not drift
// corrected.
//
// Within a box, segments travel preceded by an extra 32-bit stream
// number field (§3.4); on the ATM network the stream number rides in
// the VCI instead.
//
// Ownership: encoded segments move as Wire values — reference-counted
// descriptors over pooled storage (§3.4's buffer discipline applied to
// the wire format). Passing a Wire transfers exactly one reference;
// call Retain(n) before handing it to n *additional* consumers, and
// Release exactly once per reference, which returns the storage to its
// WirePool at zero. Wires from ParseWire/WireOver are unmanaged views
// over caller-owned bytes (Retain/Release are no-ops). A WirePool is
// not thread-safe: it relies on the occam scheduler running one
// process at a time, so pools are never shared across OS processes or
// real threads.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/occam"
)

// Version is the segment format version this package implements.
const Version = 1

// Type identifies the payload class of a segment.
type Type uint32

const (
	// TypeAudio segments carry µ-law sample blocks (figure 3.1).
	TypeAudio Type = 1
	// TypeVideo segments carry part of a video frame (figure 3.2).
	TypeVideo Type = 2
	// TypeTest segments come from the software test generator in the
	// server (figure 3.3 "test in").
	TypeTest Type = 3
)

func (t Type) String() string {
	switch t {
	case TypeAudio:
		return "audio"
	case TypeVideo:
		return "video"
	case TypeTest:
		return "test"
	}
	return fmt.Sprintf("type(%d)", uint32(t))
}

// Audio timing constants (§3.2).
const (
	// SampleInterval is the codec sampling period: 125 µs, 8 kHz.
	SampleInterval = 125 * time.Microsecond
	// BlockSamples is the number of samples handled as one block.
	BlockSamples = 16
	// BlockDuration is the audio represented by one block: 2 ms.
	BlockDuration = BlockSamples * SampleInterval
	// DefaultBlocksPerSegment gives the usual 4 ms segments
	// ("We usually run with 2 blocks per segment (principle 7)").
	DefaultBlocksPerSegment = 2
	// MaxBlocksPerSegment is the largest batching the paper mentions
	// for live use (12 blocks = 24 ms).
	MaxBlocksPerSegment = 12
	// RepositoryBlocksPerSegment is the off-line merged size: 40 ms
	// segments of 320 bytes plus a 36 byte header (§3.2).
	RepositoryBlocksPerSegment = 20
	// SampleRate is the codec rate in Hz.
	SampleRate = 8000
)

// Audio sample formats.
const (
	FormatMuLaw8 uint32 = 1
)

// Compression identifiers (audio compression was a header field but
// µ-law streams ran uncompressed; video used DPCM + sub-sampling).
const (
	CompressionNone uint32 = 0
	CompressionDPCM uint32 = 1
)

// Header sizes in bytes.
const (
	// CommonHeaderSize covers the five shared fields.
	CommonHeaderSize = 5 * 4
	// AudioHeaderSize is the complete audio header: the paper's
	// "36 byte header" (common + sampling rate, format, compression,
	// data length).
	AudioHeaderSize = CommonHeaderSize + 4*4
	// videoFixedHeaderSize covers the fixed video fields; the
	// compression argument block is variable (§3.3).
	videoFixedHeaderSize = CommonHeaderSize + 12*4
	// StreamNumberSize is the extra field preceding the header inside
	// a box (§3.4).
	StreamNumberSize = 4
)

// TimestampTick is the 64 µs resolution of segment timestamps.
const TimestampTick = 64 * time.Microsecond

// Timestamp converts a virtual instant to segment timestamp ticks.
func Timestamp(t occam.Time) uint32 {
	return uint32(int64(t) / int64(TimestampTick))
}

// TimestampTime converts segment timestamp ticks back to an instant
// (quantised to the 64 µs tick).
func TimestampTime(ts uint32) occam.Time {
	return occam.Time(int64(ts) * int64(TimestampTick))
}

// Common is the header shared by every segment type (figure 3.1).
type Common struct {
	Version   uint32
	Seq       uint32 // sequence number within the stream
	Timestamp uint32 // 64 µs ticks since box boot, stamped at source
	Type      Type
	Length    uint32 // total wire length of the segment in bytes
}

// Audio is a Pandora audio segment (figure 3.1): a header followed by
// whole 16-sample µ-law blocks.
type Audio struct {
	Common
	SamplingRate uint32 // Hz
	Format       uint32 // FormatMuLaw8
	Compression  uint32
	Data         []byte // µ-law samples, a multiple of BlockSamples
}

// Blocks returns the number of 2 ms blocks the segment carries.
func (a *Audio) Blocks() int { return len(a.Data) / BlockSamples }

// Block returns the i'th 16-sample block (aliasing Data).
func (a *Audio) Block(i int) []byte {
	return a.Data[i*BlockSamples : (i+1)*BlockSamples]
}

// Duration returns the span of audio the segment represents.
func (a *Audio) Duration() time.Duration {
	return time.Duration(a.Blocks()) * BlockDuration
}

// WireSize returns the encoded size in bytes (without stream number).
func (a *Audio) WireSize() int { return AudioHeaderSize + len(a.Data) }

// NewAudio assembles an audio segment from whole blocks, stamping the
// sequence number and source timestamp.
func NewAudio(seq uint32, at occam.Time, blocks [][]byte) *Audio {
	data := make([]byte, 0, len(blocks)*BlockSamples)
	for _, b := range blocks {
		if len(b) != BlockSamples {
			panic(fmt.Sprintf("segment: block of %d samples, want %d", len(b), BlockSamples))
		}
		data = append(data, b...)
	}
	a := &Audio{
		Common: Common{
			Version:   Version,
			Seq:       seq,
			Timestamp: Timestamp(at),
			Type:      TypeAudio,
		},
		SamplingRate: SampleRate,
		Format:       FormatMuLaw8,
		Compression:  CompressionNone,
		Data:         data,
	}
	a.Length = uint32(a.WireSize())
	return a
}

// Reset re-initialises a (reused) Audio segment in place around data,
// which must be whole 2 ms blocks. The segment aliases data, so the
// caller may only recycle the buffer after the segment has been
// encoded (or otherwise copied). It is NewAudio without the per-
// segment allocations, for hot capture loops that keep one Audio and
// one sample buffer and re-fill both.
func (a *Audio) Reset(seq uint32, at occam.Time, data []byte) *Audio {
	if len(data)%BlockSamples != 0 {
		panic(fmt.Sprintf("segment: %d samples, not whole blocks", len(data)))
	}
	*a = Audio{
		Common: Common{
			Version:   Version,
			Seq:       seq,
			Timestamp: Timestamp(at),
			Type:      TypeAudio,
		},
		SamplingRate: SampleRate,
		Format:       FormatMuLaw8,
		Compression:  CompressionNone,
		Data:         data,
	}
	a.Length = uint32(a.WireSize())
	return a
}

// Encode appends the wire form of the segment to dst.
func (a *Audio) Encode(dst []byte) []byte {
	dst = a.Common.encode(dst)
	dst = be32(dst, a.SamplingRate)
	dst = be32(dst, a.Format)
	dst = be32(dst, a.Compression)
	dst = be32(dst, uint32(len(a.Data)))
	return append(dst, a.Data...)
}

// Errors returned by the decoders.
var (
	ErrShort      = errors.New("segment: truncated")
	ErrBadVersion = errors.New("segment: unknown version")
	ErrBadType    = errors.New("segment: wrong segment type")
	ErrBadLength  = errors.New("segment: inconsistent length field")
	ErrRagged     = errors.New("segment: audio data not whole blocks")
)

// DecodeAudio parses an audio segment from the start of buf and
// returns it with the number of bytes consumed.
func DecodeAudio(buf []byte) (*Audio, int, error) {
	c, rest, err := decodeCommon(buf)
	if err != nil {
		return nil, 0, err
	}
	if c.Type != TypeAudio && c.Type != TypeTest {
		// Test segments from the server's software test generator
		// (figure 3.3) share the audio wire layout.
		return nil, 0, fmt.Errorf("%w: %v", ErrBadType, c.Type)
	}
	if len(rest) < 4*4 {
		return nil, 0, ErrShort
	}
	a := &Audio{Common: c}
	a.SamplingRate = binary.BigEndian.Uint32(rest[0:])
	a.Format = binary.BigEndian.Uint32(rest[4:])
	a.Compression = binary.BigEndian.Uint32(rest[8:])
	n := binary.BigEndian.Uint32(rest[12:])
	rest = rest[16:]
	if uint32(len(rest)) < n {
		return nil, 0, ErrShort
	}
	if n%BlockSamples != 0 {
		return nil, 0, ErrRagged
	}
	a.Data = append([]byte(nil), rest[:n]...)
	consumed := AudioHeaderSize + int(n)
	if a.Length != uint32(consumed) {
		return nil, 0, ErrBadLength
	}
	return a, consumed, nil
}

// Video is a Pandora video segment (figure 3.2). A frame may be split
// into several rectangular segments; the header places this one.
type Video struct {
	Common
	FrameNumber uint32
	NumSegments uint32 // segments in this frame
	SegmentNum  uint32 // index of this segment within the frame
	XOffset     uint32
	YOffset     uint32
	PixelFormat uint32
	Compression uint32
	Args        []uint32 // variable compression parameters (§3.3)
	Width       uint32   // x width in pixels
	StartLine   uint32   // start line y
	NumLines    uint32   // # lines y
	Data        []byte
}

// WireSize returns the encoded size in bytes (without stream number).
func (v *Video) WireSize() int {
	return videoFixedHeaderSize + 4*len(v.Args) + len(v.Data)
}

// NewVideo assembles a video segment header for a rectangle.
func NewVideo(seq uint32, at occam.Time, frame, numSegs, segNum uint32, x, y, w, startLine, lines uint32, data []byte) *Video {
	v := &Video{
		Common: Common{
			Version:   Version,
			Seq:       seq,
			Timestamp: Timestamp(at),
			Type:      TypeVideo,
		},
		FrameNumber: frame,
		NumSegments: numSegs,
		SegmentNum:  segNum,
		XOffset:     x,
		YOffset:     y,
		PixelFormat: 8, // 8-bit samples
		Compression: CompressionNone,
		Width:       w,
		StartLine:   startLine,
		NumLines:    lines,
		Data:        data,
	}
	v.Length = uint32(v.WireSize())
	return v
}

// Encode appends the wire form of the segment to dst.
func (v *Video) Encode(dst []byte) []byte {
	dst = v.Common.encode(dst)
	dst = be32(dst, v.FrameNumber)
	dst = be32(dst, v.NumSegments)
	dst = be32(dst, v.SegmentNum)
	dst = be32(dst, v.XOffset)
	dst = be32(dst, v.YOffset)
	dst = be32(dst, v.PixelFormat)
	dst = be32(dst, v.Compression)
	dst = be32(dst, uint32(len(v.Args)))
	for _, a := range v.Args {
		dst = be32(dst, a)
	}
	dst = be32(dst, v.Width)
	dst = be32(dst, v.StartLine)
	dst = be32(dst, v.NumLines)
	dst = be32(dst, uint32(len(v.Data)))
	return append(dst, v.Data...)
}

// DecodeVideo parses a video segment from the start of buf and
// returns it with the number of bytes consumed.
func DecodeVideo(buf []byte) (*Video, int, error) {
	c, rest, err := decodeCommon(buf)
	if err != nil {
		return nil, 0, err
	}
	if c.Type != TypeVideo {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadType, c.Type)
	}
	if len(rest) < 8*4 {
		return nil, 0, ErrShort
	}
	v := &Video{Common: c}
	v.FrameNumber = binary.BigEndian.Uint32(rest[0:])
	v.NumSegments = binary.BigEndian.Uint32(rest[4:])
	v.SegmentNum = binary.BigEndian.Uint32(rest[8:])
	v.XOffset = binary.BigEndian.Uint32(rest[12:])
	v.YOffset = binary.BigEndian.Uint32(rest[16:])
	v.PixelFormat = binary.BigEndian.Uint32(rest[20:])
	v.Compression = binary.BigEndian.Uint32(rest[24:])
	nargs := binary.BigEndian.Uint32(rest[28:])
	rest = rest[32:]
	if nargs > 64 {
		return nil, 0, fmt.Errorf("%w: %d compression args", ErrBadLength, nargs)
	}
	if uint32(len(rest)) < nargs*4+4*4 {
		return nil, 0, ErrShort
	}
	v.Args = make([]uint32, nargs)
	for i := range v.Args {
		v.Args[i] = binary.BigEndian.Uint32(rest[4*i:])
	}
	rest = rest[4*nargs:]
	v.Width = binary.BigEndian.Uint32(rest[0:])
	v.StartLine = binary.BigEndian.Uint32(rest[4:])
	v.NumLines = binary.BigEndian.Uint32(rest[8:])
	n := binary.BigEndian.Uint32(rest[12:])
	rest = rest[16:]
	if uint32(len(rest)) < n {
		return nil, 0, ErrShort
	}
	v.Data = append([]byte(nil), rest[:n]...)
	consumed := videoFixedHeaderSize + 4*int(nargs) + int(n)
	if v.Length != uint32(consumed) {
		return nil, 0, ErrBadLength
	}
	return v, consumed, nil
}

// Segment is implemented by both Audio and Video segments: the common
// header plus wire encoding.
type Segment interface {
	Head() *Common
	WireSize() int
	Encode(dst []byte) []byte
}

// Head returns the common header of an audio segment.
func (a *Audio) Head() *Common { return &a.Common }

// Head returns the common header of a video segment.
func (v *Video) Head() *Common { return &v.Common }

var (
	_ Segment = (*Audio)(nil)
	_ Segment = (*Video)(nil)
)

// Decode parses either segment type based on the common header.
func Decode(buf []byte) (Segment, int, error) {
	c, _, err := decodeCommon(buf)
	if err != nil {
		return nil, 0, err
	}
	switch c.Type {
	case TypeAudio, TypeTest:
		return DecodeAudio(buf)
	case TypeVideo:
		return DecodeVideo(buf)
	}
	return nil, 0, fmt.Errorf("%w: %v", ErrBadType, c.Type)
}

func (c *Common) encode(dst []byte) []byte {
	dst = be32(dst, c.Version)
	dst = be32(dst, c.Seq)
	dst = be32(dst, c.Timestamp)
	dst = be32(dst, uint32(c.Type))
	return be32(dst, c.Length)
}

func decodeCommon(buf []byte) (Common, []byte, error) {
	var c Common
	if len(buf) < CommonHeaderSize {
		return c, nil, ErrShort
	}
	c.Version = binary.BigEndian.Uint32(buf[0:])
	c.Seq = binary.BigEndian.Uint32(buf[4:])
	c.Timestamp = binary.BigEndian.Uint32(buf[8:])
	c.Type = Type(binary.BigEndian.Uint32(buf[12:]))
	c.Length = binary.BigEndian.Uint32(buf[16:])
	if c.Version != Version {
		return c, nil, fmt.Errorf("%w: %d", ErrBadVersion, c.Version)
	}
	return c, buf[CommonHeaderSize:], nil
}

func be32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
