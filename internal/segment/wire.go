package segment

import (
	"encoding/binary"
	"fmt"
)

// Wire is an encoded segment: the wire bytes of exactly one audio or
// video segment, usually in pooled storage, with a lazily-decoded
// header view. It is the one buffer type the whole data path moves
// (§3.4): data is copied once into a wire at its source and once out
// at each output device; every layer in between — allocator buffers,
// the server switch, decoupling buffers, ATM messages, clawback queues
// — passes the same Wire by value and reads header fields in place.
//
// A Wire from a WirePool is reference counted. The creator starts with
// one reference; passing a wire to exactly one consumer transfers that
// reference (no counter traffic); fanning out to n consumers requires
// Retain(n-1); whoever finishes with a reference calls Release. When
// the count reaches zero the storage returns to its pool, so holding a
// released Wire (or a sub-slice of its bytes) is a use-after-free.
// The runtime serialises all process code, so the counters need no
// locking. The zero Wire and wires from ParseWire/WireOver are
// unmanaged: Retain and Release are no-ops and the bytes live as long
// as the Go slice.
type Wire struct {
	b   []byte
	ctl *wireCtl
}

// wireCtl is the refcount + backing storage record shared by all
// copies of one pooled Wire.
type wireCtl struct {
	refs int
	arr  []byte // pooled storage; w.b aliases a prefix of it
	pool *WirePool
}

// IsZero reports whether the wire is the zero value (no segment).
func (w Wire) IsZero() bool { return w.b == nil }

// Len returns the encoded segment size in bytes.
func (w Wire) Len() int { return len(w.b) }

// Bytes returns the wire bytes. The slice is only valid while the
// caller holds a reference.
func (w Wire) Bytes() []byte { return w.b }

// In-place views of the common header (figure 3.1/3.2). Callers must
// hold a wire of at least CommonHeaderSize bytes — guaranteed for any
// wire from a pool Encode/Copy or a successful ParseWire.

// Version returns the format version field.
func (w Wire) Version() uint32 { return binary.BigEndian.Uint32(w.b[0:]) }

// Seq returns the stream sequence number field.
func (w Wire) Seq() uint32 { return binary.BigEndian.Uint32(w.b[4:]) }

// Timestamp returns the source timestamp field (64 µs ticks).
func (w Wire) Timestamp() uint32 { return binary.BigEndian.Uint32(w.b[8:]) }

// Type returns the segment type field.
func (w Wire) Type() Type { return Type(binary.BigEndian.Uint32(w.b[12:])) }

// Length returns the total-length header field.
func (w Wire) Length() uint32 { return binary.BigEndian.Uint32(w.b[16:]) }

// SetTimestamp re-stamps the segment in place (repository playback
// re-stamps stored segments on the way out, §2.1). The caller must
// hold the only reference.
func (w Wire) SetTimestamp(ts uint32) { binary.BigEndian.PutUint32(w.b[8:], ts) }

// Audio views, valid on wires of Type TypeAudio or TypeTest.

// AudioData returns the µ-law sample bytes in place.
func (w Wire) AudioData() []byte { return w.b[AudioHeaderSize:] }

// AudioBlocks returns the number of 2 ms blocks carried.
func (w Wire) AudioBlocks() int { return (len(w.b) - AudioHeaderSize) / BlockSamples }

// AudioBlock returns the i'th 16-sample block, aliasing the wire.
func (w Wire) AudioBlock(i int) []byte {
	off := AudioHeaderSize + i*BlockSamples
	return w.b[off : off+BlockSamples]
}

// DecodeAudio fully decodes an audio wire, copying the sample data —
// the copy-out a sink performs once (e.g. the repository at record).
func (w Wire) DecodeAudio() (*Audio, error) {
	a, _, err := DecodeAudio(w.b)
	return a, err
}

// DecodeVideoInto decodes a video wire into *v without copying pixel
// data: v.Data aliases the wire bytes and v.Args reuses its previous
// capacity. The view is only valid while the caller holds its
// reference; sinks must finish with v before releasing the wire.
func (w Wire) DecodeVideoInto(v *Video) error {
	c, rest, err := decodeCommon(w.b)
	if err != nil {
		return err
	}
	if c.Type != TypeVideo {
		return fmt.Errorf("%w: %v", ErrBadType, c.Type)
	}
	if len(rest) < 8*4 {
		return ErrShort
	}
	v.Common = c
	v.FrameNumber = binary.BigEndian.Uint32(rest[0:])
	v.NumSegments = binary.BigEndian.Uint32(rest[4:])
	v.SegmentNum = binary.BigEndian.Uint32(rest[8:])
	v.XOffset = binary.BigEndian.Uint32(rest[12:])
	v.YOffset = binary.BigEndian.Uint32(rest[16:])
	v.PixelFormat = binary.BigEndian.Uint32(rest[20:])
	v.Compression = binary.BigEndian.Uint32(rest[24:])
	nargs := binary.BigEndian.Uint32(rest[28:])
	rest = rest[32:]
	if nargs > 64 {
		return fmt.Errorf("%w: %d compression args", ErrBadLength, nargs)
	}
	if uint32(len(rest)) < nargs*4+4*4 {
		return ErrShort
	}
	v.Args = v.Args[:0]
	for i := 0; i < int(nargs); i++ {
		v.Args = append(v.Args, binary.BigEndian.Uint32(rest[4*i:]))
	}
	rest = rest[4*nargs:]
	v.Width = binary.BigEndian.Uint32(rest[0:])
	v.StartLine = binary.BigEndian.Uint32(rest[4:])
	v.NumLines = binary.BigEndian.Uint32(rest[8:])
	n := binary.BigEndian.Uint32(rest[12:])
	rest = rest[16:]
	if uint32(len(rest)) < n {
		return ErrShort
	}
	v.Data = rest[:n:n]
	if v.Length != uint32(videoFixedHeaderSize+4*int(nargs)+int(n)) {
		return ErrBadLength
	}
	return nil
}

// Retain adds n references on a pooled wire (fan-out to n+1 consumers
// total). No-op on unmanaged wires.
func (w Wire) Retain(n int) {
	if w.ctl != nil {
		w.ctl.refs += n
	}
}

// Release drops one reference; at zero the storage returns to its
// pool. Releasing more references than were taken panics — the same
// invariant the buffer allocator enforces (§3.4). No-op on unmanaged
// wires.
func (w Wire) Release() {
	c := w.ctl
	if c == nil {
		return
	}
	c.refs--
	if c.refs == 0 {
		c.pool.put(c)
		return
	}
	if c.refs < 0 {
		panic("segment: wire over-released")
	}
}

// Refs returns the current reference count (0 for unmanaged wires).
func (w Wire) Refs() int {
	if w.ctl == nil {
		return 0
	}
	return w.ctl.refs
}

// validateWire structurally checks one encoded segment without
// allocating: header sizes, version, type, data lengths and the
// total-length field must all be consistent with len(b).
func validateWire(b []byte) error {
	if len(b) < CommonHeaderSize {
		return ErrShort
	}
	if v := binary.BigEndian.Uint32(b[0:]); v != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	length := binary.BigEndian.Uint32(b[16:])
	switch Type(binary.BigEndian.Uint32(b[12:])) {
	case TypeAudio, TypeTest:
		if len(b) < AudioHeaderSize {
			return ErrShort
		}
		n := binary.BigEndian.Uint32(b[AudioHeaderSize-4:])
		if uint32(len(b)-AudioHeaderSize) < n {
			return ErrShort
		}
		if n%BlockSamples != 0 {
			return ErrRagged
		}
		if length != AudioHeaderSize+n || int(length) != len(b) {
			return ErrBadLength
		}
	case TypeVideo:
		if len(b) < videoFixedHeaderSize {
			return ErrShort
		}
		nargs := binary.BigEndian.Uint32(b[CommonHeaderSize+28:])
		if nargs > 64 {
			return fmt.Errorf("%w: %d compression args", ErrBadLength, nargs)
		}
		rest := b[CommonHeaderSize+32:]
		if uint32(len(rest)) < nargs*4+4*4 {
			return ErrShort
		}
		rest = rest[4*nargs:]
		n := binary.BigEndian.Uint32(rest[12:])
		if uint32(len(rest)-16) < n {
			return ErrShort
		}
		want := videoFixedHeaderSize + 4*nargs + n
		if length != want || int(length) != len(b) {
			return ErrBadLength
		}
	default:
		return fmt.Errorf("%w: %v", ErrBadType, Type(binary.BigEndian.Uint32(b[12:])))
	}
	return nil
}

// ParseWire validates buf as exactly one encoded segment and returns
// an unmanaged wire view over it (no copy, no pool). Corrupt input
// returns an error; a returned wire's header and data accessors are
// guaranteed in-bounds.
func ParseWire(buf []byte) (Wire, error) {
	if err := validateWire(buf); err != nil {
		return Wire{}, err
	}
	return Wire{b: buf}, nil
}

// WireOver wraps already-trusted bytes (a just-encoded segment) as an
// unmanaged wire without re-validating.
func WireOver(buf []byte) Wire { return Wire{b: buf} }

// WirePool recycles wire storage. It is the data path's analogue of
// the transputer's fixed buffer memory: at steady state a stream
// allocates nothing per segment. Pools are per-board/per-process and
// rely on the runtime's serialisation of user code — no locking.
type WirePool struct {
	free []*wireCtl

	// Gets counts wires handed out; News counts the subset that had
	// to allocate fresh storage (pool miss or growth). Ctls counts
	// distinct storage records ever created — News can exceed it when
	// a record's storage grows in place — so a drained pool has
	// exactly Ctls records on its free list.
	Gets uint64
	News uint64
	Ctls uint64
}

// NewWirePool returns an empty pool.
func NewWirePool() *WirePool { return &WirePool{} }

// get pops or allocates a ctl with at least size bytes of storage,
// holding one reference.
func (pl *WirePool) get(size int) *wireCtl {
	pl.Gets++
	var c *wireCtl
	if n := len(pl.free); n > 0 {
		c = pl.free[n-1]
		pl.free = pl.free[:n-1]
	} else {
		c = &wireCtl{pool: pl}
		pl.Ctls++
	}
	if cap(c.arr) < size {
		// Round storage up to a power-of-two size class: wire sizes
		// vary segment to segment (compressed video especially), and
		// exact-fit growth would re-allocate every time a small record
		// is popped for a larger request. With classes the pool
		// converges: each record grows O(log maxSize) times, ever.
		pl.News++
		n := 64
		for n < size {
			n <<= 1
		}
		c.arr = make([]byte, size, n)
	}
	c.arr = c.arr[:size]
	c.refs = 1
	return c
}

func (pl *WirePool) put(c *wireCtl) {
	pl.free = append(pl.free, c)
}

// Encode encodes s once into pooled storage — the single encode at a
// capture source — and returns the wire holding one reference.
func (pl *WirePool) Encode(s Segment) Wire {
	c := pl.get(s.WireSize())
	c.arr = s.Encode(c.arr[:0])
	return Wire{b: c.arr, ctl: c}
}

// Copy copies src (the bytes of an existing wire) into pooled storage
// — the one copy a device performs at a box boundary — and returns
// the new wire holding one reference.
func (pl *WirePool) Copy(src []byte) Wire {
	c := pl.get(len(src))
	copy(c.arr, src)
	return Wire{b: c.arr, ctl: c}
}

// FreeLen returns the number of idle storage records (tests).
func (pl *WirePool) FreeLen() int { return len(pl.free) }

// Leaked returns the number of storage records currently checked out:
// zero once every wire the pool ever handed out has been released.
func (pl *WirePool) Leaked() int { return int(pl.Ctls) - len(pl.free) }
