package segment

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/occam"
)

func testBlocks(n int) [][]byte {
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, BlockSamples)
		for j := range b {
			b[j] = byte(i*16 + j)
		}
		blocks[i] = b
	}
	return blocks
}

func TestAudioConstants(t *testing.T) {
	if BlockDuration != 2*time.Millisecond {
		t.Fatalf("BlockDuration = %v, want 2ms", BlockDuration)
	}
	// The repository format: 40 ms segments of 320 bytes + 36 byte
	// header (§3.2).
	if RepositoryBlocksPerSegment*BlockSamples != 320 {
		t.Fatalf("repository segment carries %d bytes, want 320",
			RepositoryBlocksPerSegment*BlockSamples)
	}
	if AudioHeaderSize != 36 {
		t.Fatalf("AudioHeaderSize = %d, want the paper's 36 bytes", AudioHeaderSize)
	}
	if time.Duration(RepositoryBlocksPerSegment)*BlockDuration != 40*time.Millisecond {
		t.Fatal("repository segment does not span 40ms")
	}
}

func TestNewAudio(t *testing.T) {
	a := NewAudio(7, occam.Time(10*time.Millisecond), testBlocks(2))
	if a.Blocks() != 2 {
		t.Fatalf("Blocks() = %d", a.Blocks())
	}
	if a.Duration() != 4*time.Millisecond {
		t.Fatalf("Duration() = %v", a.Duration())
	}
	if a.Seq != 7 || a.Type != TypeAudio || a.Version != Version {
		t.Fatalf("header %+v", a.Common)
	}
	if a.SamplingRate != 8000 || a.Format != FormatMuLaw8 {
		t.Fatalf("audio header %+v", a)
	}
	if got := a.Block(1)[0]; got != 16 {
		t.Fatalf("Block(1)[0] = %d", got)
	}
}

func TestAudioTimestampResolution(t *testing.T) {
	// 64 µs ticks (§3.2).
	a := NewAudio(0, occam.Time(128*time.Microsecond), testBlocks(1))
	if a.Timestamp != 2 {
		t.Fatalf("Timestamp = %d, want 2 ticks of 64µs", a.Timestamp)
	}
	if TimestampTime(a.Timestamp) != occam.Time(128*time.Microsecond) {
		t.Fatal("TimestampTime not inverse of Timestamp")
	}
	// Sub-tick instants quantise down.
	if Timestamp(occam.Time(63*time.Microsecond)) != 0 {
		t.Fatal("sub-tick timestamp did not quantise")
	}
}

func TestAudioEncodeDecodeRoundTrip(t *testing.T) {
	a := NewAudio(99, occam.Time(time.Second), testBlocks(12))
	wire := a.Encode(nil)
	if len(wire) != a.WireSize() {
		t.Fatalf("wire %d bytes, WireSize %d", len(wire), a.WireSize())
	}
	got, n, err := DecodeAudio(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if got.Seq != a.Seq || got.Timestamp != a.Timestamp || !bytes.Equal(got.Data, a.Data) {
		t.Fatal("round trip mismatch")
	}
}

func TestAudioDecodeErrors(t *testing.T) {
	a := NewAudio(1, 0, testBlocks(2))
	wire := a.Encode(nil)

	if _, _, err := DecodeAudio(wire[:10]); !errors.Is(err, ErrShort) {
		t.Fatalf("short common header: %v", err)
	}
	if _, _, err := DecodeAudio(wire[:CommonHeaderSize+4]); !errors.Is(err, ErrShort) {
		t.Fatalf("short audio header: %v", err)
	}
	if _, _, err := DecodeAudio(wire[:len(wire)-1]); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated data: %v", err)
	}

	bad := append([]byte(nil), wire...)
	bad[3] = 9 // version
	if _, _, err := DecodeAudio(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}

	bad = append([]byte(nil), wire...)
	bad[19] = byte(len(wire) + 8) // length field
	if _, _, err := DecodeAudio(append(bad, 0, 0, 0, 0, 0, 0, 0, 0)); !errors.Is(err, ErrBadLength) {
		t.Fatalf("bad length: %v", err)
	}

	v := NewVideo(1, 0, 0, 1, 0, 0, 0, 8, 0, 1, make([]byte, 8))
	if _, _, err := DecodeAudio(v.Encode(nil)); !errors.Is(err, ErrBadType) {
		t.Fatal("video decoded as audio")
	}
}

func TestAudioRaggedBlocksRejected(t *testing.T) {
	a := NewAudio(1, 0, testBlocks(1))
	a.Data = a.Data[:10] // not a whole block
	a.Length = uint32(a.WireSize())
	wire := a.Encode(nil)
	if _, _, err := DecodeAudio(wire); !errors.Is(err, ErrRagged) {
		t.Fatalf("ragged audio accepted: %v", err)
	}
}

func TestVideoEncodeDecodeRoundTrip(t *testing.T) {
	data := make([]byte, 64*16)
	for i := range data {
		data[i] = byte(i)
	}
	v := NewVideo(42, occam.Time(40*time.Millisecond), 3, 4, 2, 100, 50, 64, 50, 16, data)
	v.Args = []uint32{2, 7}
	v.Length = uint32(v.WireSize())
	wire := v.Encode(nil)
	if len(wire) != v.WireSize() {
		t.Fatalf("wire %d bytes, WireSize %d", len(wire), v.WireSize())
	}
	got, n, err := DecodeVideo(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if got.FrameNumber != 3 || got.NumSegments != 4 || got.SegmentNum != 2 {
		t.Fatalf("frame placement %+v", got)
	}
	if got.XOffset != 100 || got.YOffset != 50 || got.Width != 64 ||
		got.StartLine != 50 || got.NumLines != 16 {
		t.Fatalf("geometry %+v", got)
	}
	if len(got.Args) != 2 || got.Args[1] != 7 {
		t.Fatalf("args %v", got.Args)
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatal("data mismatch")
	}
}

func TestVideoVariableArgs(t *testing.T) {
	// "We have a variable number of fields after the compression type
	// field so that compression parameters for any scheme can be
	// accommodated" (§3.3).
	for _, nargs := range []int{0, 1, 5, 16} {
		v := NewVideo(1, 0, 0, 1, 0, 0, 0, 8, 0, 1, make([]byte, 8))
		v.Args = make([]uint32, nargs)
		for i := range v.Args {
			v.Args[i] = uint32(i * 3)
		}
		v.Length = uint32(v.WireSize())
		got, _, err := DecodeVideo(v.Encode(nil))
		if err != nil {
			t.Fatalf("nargs=%d: %v", nargs, err)
		}
		if len(got.Args) != nargs {
			t.Fatalf("nargs=%d decoded %d", nargs, len(got.Args))
		}
	}
}

func TestVideoDecodeErrors(t *testing.T) {
	v := NewVideo(1, 0, 0, 1, 0, 0, 0, 8, 0, 1, make([]byte, 8))
	wire := v.Encode(nil)
	if _, _, err := DecodeVideo(wire[:CommonHeaderSize+8]); !errors.Is(err, ErrShort) {
		t.Fatalf("short video header: %v", err)
	}
	a := NewAudio(1, 0, testBlocks(1))
	if _, _, err := DecodeVideo(a.Encode(nil)); !errors.Is(err, ErrBadType) {
		t.Fatal("audio decoded as video")
	}
	// Absurd argument count must be rejected, not allocated.
	bad := append([]byte(nil), wire...)
	bad[CommonHeaderSize+28] = 0xFF
	bad[CommonHeaderSize+29] = 0xFF
	bad[CommonHeaderSize+30] = 0xFF
	bad[CommonHeaderSize+31] = 0xFF
	if _, _, err := DecodeVideo(bad); err == nil {
		t.Fatal("absurd arg count accepted")
	}
}

func TestGenericDecode(t *testing.T) {
	a := NewAudio(5, 0, testBlocks(2))
	s, _, err := Decode(a.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Head().Type != TypeAudio {
		t.Fatal("generic decode misidentified audio")
	}
	v := NewVideo(1, 0, 0, 1, 0, 0, 0, 8, 0, 1, make([]byte, 8))
	s, _, err = Decode(v.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Head().Type != TypeVideo {
		t.Fatal("generic decode misidentified video")
	}
	if _, _, err := Decode(nil); !errors.Is(err, ErrShort) {
		t.Fatal("nil buffer accepted")
	}
}

func TestGenericDecodeAllTypes(t *testing.T) {
	// All three segment types of §3 must round-trip through the
	// generic decoder. Test segments (figure 3.3 "test in") share the
	// audio wire layout but carry TypeTest.
	a := NewAudio(5, occam.Time(time.Millisecond), testBlocks(3))
	tst := NewAudio(6, occam.Time(time.Millisecond), testBlocks(2))
	tst.Type = TypeTest
	v := NewVideo(7, 0, 0, 1, 0, 0, 0, 8, 0, 1, make([]byte, 8))

	for _, tc := range []struct {
		seg  Segment
		typ  Type
		seq  uint32
		wire []byte
	}{
		{a, TypeAudio, 5, a.Encode(nil)},
		{tst, TypeTest, 6, tst.Encode(nil)},
		{v, TypeVideo, 7, v.Encode(nil)},
	} {
		got, n, err := Decode(tc.wire)
		if err != nil {
			t.Fatalf("%v: %v", tc.typ, err)
		}
		if n != len(tc.wire) {
			t.Fatalf("%v: consumed %d of %d", tc.typ, n, len(tc.wire))
		}
		if got.Head().Type != tc.typ || got.Head().Seq != tc.seq {
			t.Fatalf("%v: decoded header %+v", tc.typ, got.Head())
		}
	}

	// The test segment's payload must survive the trip too.
	got, _, err := DecodeAudio(tst.Encode(nil))
	if err != nil {
		t.Fatalf("DecodeAudio rejected a test segment: %v", err)
	}
	if !bytes.Equal(got.Data, tst.Data) {
		t.Fatal("test segment data mismatch")
	}
}

func TestTypeString(t *testing.T) {
	if TypeAudio.String() != "audio" || TypeVideo.String() != "video" ||
		TypeTest.String() != "test" || Type(9).String() == "" {
		t.Fatal("Type.String broken")
	}
}

func TestQuickAudioRoundTrip(t *testing.T) {
	f := func(seq uint32, ts int64, nblocks uint8, fill byte) bool {
		n := int(nblocks%12) + 1
		blocks := make([][]byte, n)
		for i := range blocks {
			b := make([]byte, BlockSamples)
			for j := range b {
				b[j] = fill + byte(i+j)
			}
			blocks[i] = b
		}
		if ts < 0 {
			ts = -ts
		}
		a := NewAudio(seq, occam.Time(ts), blocks)
		got, _, err := DecodeAudio(a.Encode(nil))
		if err != nil {
			return false
		}
		return got.Seq == seq && bytes.Equal(got.Data, a.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackSegmentsDecode(t *testing.T) {
	// Several segments concatenated on a byte stream must parse in
	// sequence using the consumed counts.
	var wire []byte
	for i := 0; i < 5; i++ {
		wire = NewAudio(uint32(i), 0, testBlocks(i%3+1)).Encode(wire)
	}
	off, count := 0, 0
	for off < len(wire) {
		a, n, err := DecodeAudio(wire[off:])
		if err != nil {
			t.Fatal(err)
		}
		if a.Seq != uint32(count) {
			t.Fatalf("segment %d has seq %d", count, a.Seq)
		}
		off += n
		count++
	}
	if count != 5 {
		t.Fatalf("decoded %d segments", count)
	}
}
