// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment from
// internal/experiment once per iteration; the experiment's virtual
// time is fixed, so ns/op measures simulation cost while the table
// contents (printed by cmd/pandora-bench) carry the reproduced
// numbers.
package repro

import (
	"testing"

	"repro/internal/experiment"
)

func BenchmarkE1MixingCapacity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E1()
	}
}

func BenchmarkE2LinkCapacity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E2()
	}
}

func BenchmarkE3OneWayLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E3()
	}
}

func BenchmarkE4VideoJitter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E4()
	}
}

func BenchmarkE5ClawbackAdapt(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E5()
	}
}

func BenchmarkE6ClockDrift(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E6()
	}
}

func BenchmarkE7MultiRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E7()
	}
}

func BenchmarkE8Muting(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E8()
	}
}

func BenchmarkE9Concealment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E9()
	}
}

func BenchmarkE10OverloadOrder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E10()
	}
}

func BenchmarkE11SplitIndependence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E11()
	}
}

func BenchmarkE12Reconfig(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E12()
	}
}

func BenchmarkE13CommandLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E13()
	}
}

func BenchmarkE14Baselines(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E14()
	}
}

func BenchmarkE15Repository(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E15()
	}
}

func BenchmarkE16SuperJanet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E16()
	}
}

func BenchmarkE17ContextSwitch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E17()
	}
}

func BenchmarkE18SegmentSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E18()
	}
}

func BenchmarkE19PoolLimit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E19()
	}
}

func BenchmarkE20ReadyChannel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E20()
	}
}

func BenchmarkE21OverloadDegradation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E21()
	}
}

func BenchmarkE22FabricIsolation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E22()
	}
}

func BenchmarkE23ReplicationTree(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E23()
	}
}

func BenchmarkE24BalancerChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.E24()
	}
}

// BenchmarkFabricCrossbar isolates the fabric fast path: segments
// crossing the sharded crossbar into a batched egress, one per 20 µs
// of virtual time. allocs/op is the headline — the cell path must not
// allocate at steady state.
func BenchmarkFabricCrossbar(b *testing.B) {
	b.ReportAllocs()
	if got := experiment.MicroFabricCrossbar(b.N); got == 0 && b.N > 0 {
		b.Fatal("crossbar delivered nothing")
	}
}

// BenchmarkUDPTransBatch isolates the udptrans fast path: zero-alloc
// encode into the batch arena, one sendmmsg per DefaultBatch
// datagrams over a real loopback socket.
func BenchmarkUDPTransBatch(b *testing.B) {
	b.ReportAllocs()
	d, _, err := experiment.MicroUDPTransBatch(b.N)
	if err != nil {
		b.Fatal(err)
	}
	if d != uint64(b.N) {
		b.Fatalf("sent %d of %d datagrams", d, b.N)
	}
}

func BenchmarkA1BufferPlacement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.A1()
	}
}

func BenchmarkA2SplitNetBuffers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.A2()
	}
}

func BenchmarkA3ClawResetPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiment.A3()
	}
}
