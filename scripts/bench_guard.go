//go:build ignore

// bench_guard runs the E2/E3/E21–E24 benchmarks once and ratchets
// them against the committed BENCH_e2e.json baseline (the single-copy
// data path's headline numbers plus the overload, fabric-isolation,
// replication-tree and balancer-churn paths).
//
// Ratchet policy:
//
//   - allocs/op may not exceed 1.20× baseline. Allocation counts are
//     deterministic for these virtual-time simulations, so the band
//     only absorbs Go-version accounting drift, not noise.
//   - ns/op may not exceed 1.15× baseline. Wall time of a
//     deterministic simulation is stable in shape but runs on shared
//     CI hardware, so the band absorbs machine-to-machine noise; a
//     real regression (a new per-cell allocation, a lost fast path)
//     shows up far above 15%.
//   - Baselines only move by regenerating the file:
//     `go run ./cmd/pandora-bench -bench-json BENCH_e2e.json`.
//     Committing a regenerated file after an optimisation *tightens*
//     the ratchet — future regressions are measured from the better
//     number. Never hand-edit baselines upward to silence the guard;
//     if a deliberate slowdown is accepted (e.g. modelling more of the
//     paper), regenerate and say so in the commit message.
//
// Run from the repository root:
//
//	go run scripts/bench_guard.go
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

// guarded maps benchmark names to the BENCH_e2e.json experiment IDs
// holding their baselines.
var guarded = map[string]string{
	"BenchmarkE2LinkCapacity":         "E2",
	"BenchmarkE3OneWayLatency":        "E3",
	"BenchmarkE21OverloadDegradation": "E21",
	"BenchmarkE22FabricIsolation":     "E22",
	"BenchmarkE23ReplicationTree":     "E23",
	"BenchmarkE24BalancerChurn":       "E24",
}

const (
	allocLimit = 1.20 // allocs/op ratchet band
	nsLimit    = 1.15 // ns/op ratchet band
)

type benchFile struct {
	Experiments []struct {
		ID          string `json:"id"`
		NsPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp uint64 `json:"allocs_per_op"`
	} `json:"experiments"`
}

type baseline struct {
	ns     int64
	allocs uint64
}

func main() {
	raw, err := os.ReadFile("BENCH_e2e.json")
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing baseline: %v", err)
	}
	baselines := map[string]baseline{}
	for _, e := range base.Experiments {
		baselines[e.ID] = baseline{ns: e.NsPerOp, allocs: e.AllocsPerOp}
	}

	cmd := exec.Command("go", "test",
		"-bench", "BenchmarkE2LinkCapacity|BenchmarkE3OneWayLatency|BenchmarkE21OverloadDegradation|BenchmarkE22FabricIsolation|BenchmarkE23ReplicationTree|BenchmarkE24BalancerChurn",
		"-benchtime", "1x", "-benchmem", "-run", "^$", ".")
	out, err := cmd.CombinedOutput()
	fmt.Print(string(out))
	if err != nil {
		fatal("benchmarks failed: %v", err)
	}

	// e.g. "BenchmarkE2LinkCapacity  1  94400697 ns/op  10143960 B/op  316848 allocs/op"
	line := regexp.MustCompile(`(?m)^(Benchmark\w+)\S*\s+\d+\s+(\d+) ns/op\s+\d+ B/op\s+(\d+) allocs/op`)
	checked := 0
	failed := false
	check := func(name, metric string, now, want float64, limit float64) {
		ratio := now / want
		status := "ok"
		if ratio > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%s: %.0f %s vs baseline %.0f (%.2fx, limit %.2fx) %s\n",
			name, now, metric, want, ratio, limit, status)
	}
	for _, m := range line.FindAllStringSubmatch(string(out), -1) {
		id, ok := guarded[m[1]]
		if !ok {
			continue
		}
		b, ok := baselines[id]
		if !ok || b.allocs == 0 || b.ns == 0 {
			fatal("no %s baseline in BENCH_e2e.json", id)
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		allocs, _ := strconv.ParseFloat(m[3], 64)
		check(m[1], "ns/op", ns, float64(b.ns), nsLimit)
		check(m[1], "allocs/op", allocs, float64(b.allocs), allocLimit)
		checked++
	}
	if checked != len(guarded) {
		fatal("only %d of %d guarded benchmarks found in output", checked, len(guarded))
	}
	if failed {
		fatal("regression beyond the ratchet band (allocs %.0f%%, ns %.0f%%)",
			(allocLimit-1)*100, (nsLimit-1)*100)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench_guard: "+format+"\n", args...)
	os.Exit(1)
}
