//go:build ignore

// bench_guard runs the E2/E3/E21/E22 benchmarks once and fails if
// allocs/op regresses more than 20% against the committed
// BENCH_e2e.json baseline (the single-copy data path's headline
// numbers plus the overload and fabric-isolation paths). Run from
// the repository root:
//
//	go run scripts/bench_guard.go
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

// guarded maps benchmark names to the BENCH_e2e.json experiment IDs
// holding their baseline allocs/op.
var guarded = map[string]string{
	"BenchmarkE2LinkCapacity":         "E2",
	"BenchmarkE3OneWayLatency":        "E3",
	"BenchmarkE21OverloadDegradation": "E21",
	"BenchmarkE22FabricIsolation":     "E22",
}

const regressionLimit = 1.20

type benchFile struct {
	Experiments []struct {
		ID          string `json:"id"`
		AllocsPerOp uint64 `json:"allocs_per_op"`
	} `json:"experiments"`
}

func main() {
	raw, err := os.ReadFile("BENCH_e2e.json")
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing baseline: %v", err)
	}
	baseline := map[string]uint64{}
	for _, e := range base.Experiments {
		baseline[e.ID] = e.AllocsPerOp
	}

	cmd := exec.Command("go", "test",
		"-bench", "BenchmarkE2LinkCapacity|BenchmarkE3OneWayLatency|BenchmarkE21OverloadDegradation|BenchmarkE22FabricIsolation",
		"-benchtime", "1x", "-benchmem", "-run", "^$", ".")
	out, err := cmd.CombinedOutput()
	fmt.Print(string(out))
	if err != nil {
		fatal("benchmarks failed: %v", err)
	}

	// e.g. "BenchmarkE2LinkCapacity  1  94400697 ns/op  10143960 B/op  316848 allocs/op"
	line := regexp.MustCompile(`(?m)^(Benchmark\w+)\S*\s+\d+\s+\d+ ns/op\s+\d+ B/op\s+(\d+) allocs/op`)
	checked := 0
	failed := false
	for _, m := range line.FindAllStringSubmatch(string(out), -1) {
		id, ok := guarded[m[1]]
		if !ok {
			continue
		}
		now, _ := strconv.ParseUint(m[2], 10, 64)
		want, ok := baseline[id]
		if !ok || want == 0 {
			fatal("no %s baseline in BENCH_e2e.json", id)
		}
		ratio := float64(now) / float64(want)
		status := "ok"
		if ratio > regressionLimit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%s: %d allocs/op vs baseline %d (%.2fx, limit %.2fx) %s\n",
			m[1], now, want, ratio, regressionLimit, status)
		checked++
	}
	if checked != len(guarded) {
		fatal("only %d of %d guarded benchmarks found in output", checked, len(guarded))
	}
	if failed {
		fatal("allocs/op regressed beyond %.0f%%", (regressionLimit-1)*100)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench_guard: "+format+"\n", args...)
	os.Exit(1)
}
