//go:build ignore

// fault_smoke runs the E21 overload experiment (injected link faults +
// degradation controller) and fails unless the documented policy held:
// zero audio sheds, video shed oldest-first with later restores, faults
// actually fired, audio quality survived and wire recycling stayed
// bounded. Run from the repository root:
//
//	go run scripts/fault_smoke.go
package main

import (
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	tab, r := experiment.E21()
	fmt.Print(tab)

	fail := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fmt.Fprintf(os.Stderr, "fault_smoke: "+format+"\n", args...)
			fail = true
		}
	}
	check(r.AudioShed == 0, "audio shed %d times — video must degrade first", r.AudioShed)
	check(r.VideoShed >= 2, "only %d video sheds — overload never engaged", r.VideoShed)
	check(r.OldestFirst, "shed order %v is not oldest-first", r.ShedOrder)
	check(r.Restores > 0, "controller never restored after recovery")
	check(r.InjectedFaults > 0, "no injected link faults fired")
	check(r.SilencePct <= 10, "%.1f%% of audio was silence", r.SilencePct)
	check(r.WireNews <= 512, "%d wire allocations — recycling regressed", r.WireNews)

	// Determinism: a replay at a fixed seed must be byte-identical.
	_, r1 := experiment.E21Overload(9001)
	_, r2 := experiment.E21Overload(9001)
	check(r1.Fingerprint == r2.Fingerprint, "same seed produced different runs")

	if fail {
		os.Exit(1)
	}
	fmt.Println("fault_smoke: overload policy held (no audio shed, oldest video first, deterministic replay)")
}
