//go:build ignore

// doc_guard fails if any package under internal/ (or cmd/) lacks a
// package-level doc comment — the documentation layer's enforcement
// hook: every package must say which part of the paper it reproduces
// and, where segment wires cross its boundary, who owns the
// reference. Packages that sit above the wire layer and drive route
// changes (listed in ownershipRequired) must additionally spell out
// their ownership rules in the package comment, so a reader never has
// to reverse-engineer who releases what. Run from the repository
// root:
//
//	go run scripts/doc_guard.go
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// ownershipRequired lists packages whose package comment must contain
// an explicit ownership statement (a paragraph mentioning
// "Ownership"): control-plane packages that cause wires to move
// without ever holding one.
var ownershipRequired = map[string]bool{
	filepath.Join("internal", "balancer"): true,
}

func main() {
	var bad, badOwn []string
	for _, root := range []string{"internal", "cmd"} {
		dirs, err := packageDirs(root)
		if err != nil {
			fatal("walking %s: %v", root, err)
		}
		for _, dir := range dirs {
			doc, err := packageComment(dir)
			if err != nil {
				fatal("parsing %s: %v", dir, err)
			}
			if strings.TrimSpace(doc) == "" {
				bad = append(bad, dir)
				continue
			}
			if ownershipRequired[dir] && !strings.Contains(doc, "Ownership") {
				badOwn = append(badOwn, dir)
			}
		}
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "doc_guard: %d package(s) lack a package doc comment:\n", len(bad))
		for _, dir := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
	}
	if len(badOwn) > 0 {
		fmt.Fprintf(os.Stderr, "doc_guard: %d package(s) lack the required Ownership statement in their package comment:\n", len(badOwn))
		for _, dir := range badOwn {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
	}
	if len(bad) > 0 || len(badOwn) > 0 {
		os.Exit(1)
	}
	fmt.Println("doc_guard: every package has a package doc comment (and ownership rules where required)")
}

// packageDirs returns every directory under root that contains at
// least one non-test .go file.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// packageComment returns the first non-empty doc comment on any
// non-test file's package clause in dir (the standard "// Package x
// ..." position; build-tagged files like the scripts count too).
func packageComment(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				return f.Doc.Text(), nil
			}
		}
	}
	return "", nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "doc_guard: "+format+"\n", args...)
	os.Exit(1)
}
