//go:build ignore

// linkcheck verifies every relative markdown link in the repository's
// *.md files: the linked file (and, for source links, the repo path)
// must exist. External http(s) links and bare anchors are not
// checked — CI must not depend on the network. Run from the
// repository root:
//
//	go run scripts/linkcheck.go
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](dest). Images and
// reference-style definitions are rare enough here not to need
// handling.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	mds, err := filepath.Glob("*.md")
	if err != nil {
		fatal("%v", err)
	}
	if len(mds) == 0 {
		fatal("no *.md files found — run from the repository root")
	}
	broken := 0
	for _, md := range mds {
		raw, err := os.ReadFile(md)
		if err != nil {
			fatal("reading %s: %v", md, err)
		}
		for i, line := range strings.Split(string(raw), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				dest := m[1]
				if strings.HasPrefix(dest, "http://") || strings.HasPrefix(dest, "https://") ||
					strings.HasPrefix(dest, "mailto:") || strings.HasPrefix(dest, "#") {
					continue
				}
				// Strip an in-file anchor; check only the file part.
				if idx := strings.IndexByte(dest, '#'); idx >= 0 {
					dest = dest[:idx]
					if dest == "" {
						continue
					}
				}
				target := filepath.Join(filepath.Dir(md), dest)
				if _, err := os.Stat(target); err != nil {
					fmt.Fprintf(os.Stderr, "linkcheck: %s:%d: broken link %q\n", md, i+1, m[1])
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fatal("%d broken link(s)", broken)
	}
	fmt.Printf("linkcheck: %d markdown files, all relative links resolve\n", len(mds))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linkcheck: "+format+"\n", args...)
	os.Exit(1)
}
