// Package repro is a from-scratch Go reproduction of "Handling Audio
// and Video Streams in a Distributed Environment" (Jones & Hopper,
// SOSP 1993) — the Pandora networked multimedia system. See README.md
// for the architecture and DESIGN.md for the full system inventory
// and experiment index. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation.
package repro
