// Quickstart: two Pandora boxes, one audio call, and the paper's
// headline number — the ≈8 ms one-way mic→speaker latency (§4.2).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/occam"
	"repro/internal/workload"
)

func main() {
	// A system holds the virtual-time runtime, the ATM network, and
	// the boxes. Everything below runs in simulated time.
	sys := core.NewSystem()
	defer sys.Shutdown()

	// Two boxes; "alice" speaks a 400 Hz tone into her microphone.
	sys.AddBox(box.Config{Name: "alice", Mic: workload.NewTone(400, 12000)})
	sys.AddBox(box.Config{Name: "bob"})

	// A direct 100 Mbit/s ATM connection.
	sys.Connect("alice", "bob", atm.LinkConfig{
		Bandwidth:   100_000_000,
		Propagation: 100 * time.Microsecond,
	})

	// Host commands run in a control process; once the routes are
	// set, "the data will then flow indefinitely without any further
	// interaction with the host" (§1.2).
	var call *core.Stream
	sys.Control(func(p *occam.Proc) {
		call = sys.SendAudio(p, "alice", "bob")
	})

	// Ten seconds of stream time, in a few milliseconds of real time.
	if err := sys.RunFor(10 * time.Second); err != nil {
		panic(err)
	}

	stats := sys.Box("bob").Mixer().Stats(call.VCIs["bob"])
	lat := sys.Box("bob").PlayoutLatency(call.VCIs["bob"])
	fmt.Printf("bob received %d segments (%d blocks) of alice's audio\n",
		stats.Segments, stats.Blocks)
	fmt.Printf("one-way latency: best %.2f ms, mean %.2f ms  (paper: best 8 ms)\n",
		float64(lat.Min())/1e6, float64(lat.Mean())/1e6)
	fmt.Printf("lost segments: %d, silence insertions: %d\n",
		stats.LostSegments, stats.Clawback.SilenceInserted)
}
