// Videophone: a bidirectional audio+video call, then deliberate
// overload — the network interface is squeezed until video must be
// shed while audio survives, demonstrating principle 2 ("Under
// overload, video data streams should be degraded before audio data
// streams") and the audio/video buffer split of figure 3.7.
//
//	go run ./examples/videophone
package main

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/occam"
	"repro/internal/video"
	"repro/internal/workload"
)

func run(interfaceBits int64) {
	sys := core.NewSystem()
	defer sys.Shutdown()
	sys.AddBox(box.Config{
		Name: "alice", Mic: workload.NewSpeech(1, 12000),
		CameraW: 256, CameraH: 128,
		NetInterfaceBits: interfaceBits,
		Features:         box.Features{JitterCorrection: true},
	})
	sys.AddBox(box.Config{
		Name: "bob", Mic: workload.NewSpeech(2, 12000),
		CameraW: 256, CameraH: 128,
		Features: box.Features{JitterCorrection: true},
	})
	sys.Connect("alice", "bob", atm.LinkConfig{Bandwidth: 100_000_000})

	var audio *core.Stream
	sys.Control(func(p *occam.Proc) {
		audio, _ = sys.AudioCall(p, "alice", "bob")
		// Full-rate 25 fps video from alice: the demanding direction.
		sys.SendVideo(p, "alice", box.CameraStream{
			Rect: video.Rect{W: 256, H: 128},
			Rate: video.Rate{Num: 1, Den: 1},
		}, "bob")
	})
	if err := sys.RunFor(10 * time.Second); err != nil {
		panic(err)
	}

	a := sys.Box("bob").Mixer().Stats(audio.VCIs["bob"])
	d := sys.Box("bob").DisplayStats()
	sw := sys.Box("alice").SwitchStats()
	videoShed := sw.FullDrops[2] + sw.AgeDrops[2]
	fmt.Printf("  audio: %d segments delivered, %d lost\n", a.Segments, a.LostSegments)
	fmt.Printf("  video: %d frames displayed, %d segments shed at the sender's switch\n",
		d.Frames, videoShed)
}

func main() {
	fmt.Println("videophone with a comfortable 100 Mbit/s network interface:")
	run(100_000_000)
	fmt.Println()
	fmt.Println("same call with the interface squeezed to 2.5 Mbit/s (overload):")
	run(2_500_000)
	fmt.Println()
	fmt.Println("principle 2 at work: the squeezed run sheds video segments at the")
	fmt.Println("switch (bounded video buffer, figure 3.7) while audio flows on —")
	fmt.Println("\"the participants can describe the situation and work through")
	fmt.Println("possible causes\" (§4.1)")
}
