// Tannoy: one microphone split to many destinations (§4.1 "tannoy
// (multiple destinations) commands"), with one destination behind a
// hopeless link — demonstrating principle 5: the bad destination
// sheds its copy inside the network while every other copy plays
// perfectly, and the source is never blocked.
//
//	go run ./examples/tannoy
package main

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/occam"
	"repro/internal/workload"
)

func main() {
	sys := core.NewSystem()
	defer sys.Shutdown()
	sys.AddBox(box.Config{Name: "announcer", Mic: workload.NewSpeech(7, 14000)})

	dests := []string{"office1", "office2", "office3", "basement"}
	for _, d := range dests {
		sys.AddBox(box.Config{Name: d})
		cfg := atm.LinkConfig{Bandwidth: 100_000_000}
		if d == "basement" {
			// A 64 kbit/s line with a tiny queue: most segments die.
			cfg = atm.LinkConfig{Bandwidth: 64_000, QueueLimit: 4}
		}
		sys.Connect("announcer", d, cfg)
	}

	var st *core.Stream
	sys.Control(func(p *occam.Proc) {
		st = sys.SendAudio(p, "announcer", dests...)
	})
	if err := sys.RunFor(20 * time.Second); err != nil {
		panic(err)
	}

	fmt.Println("tannoy to four destinations, 20 s:")
	for _, d := range dests {
		m := sys.Box(d).Mixer().Stats(st.VCIs[d])
		fmt.Printf("  %-9s %5d segments, %5d lost\n", d, m.Segments, m.LostSegments)
	}
	mic := sys.Box("announcer").AudioStats()
	fmt.Printf("\nannouncer: %d segments produced, %d dropped at source\n",
		mic.MicSegs, mic.MicDrops)
	fmt.Println("principle 5: the basement's dead line never disturbed the offices")
}
