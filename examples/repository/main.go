// Repository: record a live stream, re-segment it off-line from 2 ms
// blocks into the 40 ms archive format (320 bytes + 36-byte header,
// §3.2), then play it back to another box — videomail, end to end
// (§4.1).
//
//	go run ./examples/repository
package main

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/occam"
	"repro/internal/workload"
)

func main() {
	sys := core.NewSystem()
	defer sys.Shutdown()
	sys.AddBox(box.Config{Name: "sender", Mic: workload.NewSpeech(3, 13000)})
	sys.AddBox(box.Config{Name: "listener"})
	sys.AddRepository("archive")
	sys.Connect("sender", "archive", atm.LinkConfig{Bandwidth: 100_000_000})
	sys.Connect("archive", "listener", atm.LinkConfig{Bandwidth: 100_000_000})

	// Record 10 seconds of the sender's microphone.
	var rec *core.Stream
	sys.Control(func(p *occam.Proc) {
		rec = sys.RecordAudio(p, "sender", "archive")
		p.Sleep(10 * time.Second)
		sys.Close(p, rec)
	})
	if err := sys.RunFor(11 * time.Second); err != nil {
		panic(err)
	}

	recording := sys.Repository("archive").Recording(rec.VCIs["archive"])
	fmt.Printf("recorded %v of audio in %d live segments (%d bytes, %.0f%% headers)\n",
		recording.Duration(), len(recording.Segments),
		recording.StoredBytes(), recording.HeaderOverhead()*100)

	// Off-line re-segmentation: "splitting out the 2ms blocks, and
	// merging them to form 40ms long segments".
	merged := recording.Resegment()
	fmt.Printf("re-segmented to %d archive segments (%d bytes, %.0f%% headers) — %.1fx smaller\n",
		len(merged.Segments), merged.StoredBytes(), merged.HeaderOverhead()*100,
		float64(recording.StoredBytes())/float64(merged.StoredBytes()))

	// Play the archive copy back to the listener.
	var vci uint32
	sys.Control(func(p *occam.Proc) {
		vci = sys.PlayTo(p, "archive", merged, "listener")
	})
	if err := sys.RunFor(11 * time.Second); err != nil {
		panic(err)
	}
	got := sys.Box("listener").Mixer().Stats(vci)
	fmt.Printf("playback: listener received %d blocks of %d (%d lost)\n",
		got.Blocks, merged.Blocks(), got.LostSegments)
	fmt.Println("\"These can be played back directly to any Pandora box\" (§3.2)")
}
