// Conference: a four-way audio conference with speech-like sources
// and echo muting — the paper's multi-way video call scenario (§4.1).
// Every box mixes the other three streams in real time, and each
// box's muting function suppresses the echo of its own loudspeaker
// (§4.3).
//
//	go run ./examples/conference
package main

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/occam"
	"repro/internal/workload"
)

func main() {
	sys := core.NewSystem()
	defer sys.Shutdown()

	members := []string{"olivetti", "camlab", "engdept", "ucl"}
	for i, name := range members {
		sys.AddBox(box.Config{
			Name: name,
			// Speech-like on/off sources so the talk spurts interleave.
			Mic: workload.NewSpeech(uint64(i+1), 14000),
			Features: box.Features{
				JitterCorrection: true,
				Muting:           true,
			},
		})
	}
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			sys.Connect(members[i], members[j], atm.LinkConfig{Bandwidth: 100_000_000})
		}
	}

	var streams []*core.Stream
	sys.Control(func(p *occam.Proc) {
		streams = sys.Conference(p, members...)
	})

	if err := sys.RunFor(30 * time.Second); err != nil {
		panic(err)
	}

	fmt.Println("four-way conference, 30 s of stream time:")
	for _, st := range streams {
		for dst, vci := range st.VCIs {
			m := sys.Box(dst).Mixer().Stats(vci)
			fmt.Printf("  %-8s → %-8s  %5d segments, %d lost\n",
				st.From, dst, m.Segments, m.LostSegments)
		}
	}
	fmt.Println()
	for _, name := range members {
		b := sys.Box(name)
		fmt.Printf("  %-8s mixing %d streams; muting crossings=%d muted blocks=%d; late ticks=%d\n",
			name, b.Mixer().ActiveStreams(), b.Muter().Crossings(),
			b.Muter().MutedBlocks(), b.AudioStats().LateTicks)
	}
	fmt.Println("\nno box is overloaded: three incoming streams is within the")
	fmt.Println("loaded audio-board capacity the paper reports (§4.2)")
}
