// Command pandora-bench regenerates every table and figure of the
// paper's evaluation (§3.7.2, §4) plus the ablations, printing each
// with the paper's claim alongside the measured values. All runs are
// deterministic. With -run, only experiments whose ID contains the
// given substring execute.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	run := flag.String("run", "", "only run experiments whose ID contains this substring")
	flag.Parse()

	type exp struct {
		id string
		fn func() *experiment.Table
	}
	experiments := []exp{
		{"E1", experiment.E1},
		{"E2", experiment.E2},
		{"E3", experiment.E3},
		{"E4", experiment.E4},
		{"E5", func() *experiment.Table { t, _ := experiment.E5(); return t }},
		{"E6", experiment.E6},
		{"E7", experiment.E7},
		{"E8", func() *experiment.Table { t, _ := experiment.E8(); return t }},
		{"E9", experiment.E9},
		{"E10", experiment.E10},
		{"E11", experiment.E11},
		{"E12", experiment.E12},
		{"E13", experiment.E13},
		{"E14", experiment.E14},
		{"E15", experiment.E15},
		{"E16", experiment.E16},
		{"E17", experiment.E17},
		{"E18", experiment.E18},
		{"E19", experiment.E19},
		{"E20", experiment.E20},
		{"A1", experiment.A1},
		{"A2", experiment.A2},
		{"A3", experiment.A3},
	}

	fmt.Println("Pandora reproduction — evaluation tables")
	fmt.Println("(Jones & Hopper, SOSP 1993; all numbers from the deterministic simulation)")
	fmt.Println()
	start := time.Now()
	ran := 0
	for _, e := range experiments {
		if *run != "" && !strings.Contains(e.id, *run) {
			continue
		}
		t0 := time.Now()
		tab := e.fn()
		fmt.Print(tab)
		fmt.Printf("  (%.2fs wall)\n\n", time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run=%q\n", *run)
		os.Exit(1)
	}
	fmt.Printf("%d experiments in %.1fs\n", ran, time.Since(start).Seconds())
}
