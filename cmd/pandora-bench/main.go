// Command pandora-bench regenerates every table and figure of the
// paper's evaluation (§3.7.2, §4) plus the ablations, printing each
// with the paper's claim alongside the measured values. All runs are
// deterministic. With -run, only experiments whose ID contains the
// given substring execute.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiment"
)

// benchRecord is one experiment's cost in BENCH_e2e.json: the wall
// time and heap traffic of one full experiment run (the same work a
// bench_test.go iteration does).
type benchRecord struct {
	ID          string `json:"id"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

// benchFile is the BENCH_e2e.json schema. Micro holds the per-op cost
// of the isolated fast-path workloads (one op = one segment through
// the crossbar, one datagram through the batcher — matching
// BenchmarkFabricCrossbar and BenchmarkUDPTransBatch). PreRefactor
// records the allocs/op of the boxed-`any` data path before the
// single-copy segment.Wire refactor, so the trajectory stays visible;
// CI compares fresh E2/E3 numbers against Experiments as the committed
// baseline.
type benchFile struct {
	Schema      string            `json:"schema"`
	Experiments []benchRecord     `json:"experiments"`
	Micro       []benchRecord     `json:"micro"`
	PreRefactor map[string]uint64 `json:"pre_refactor_allocs_per_op"`
}

// microRecords measures the fast-path micro workloads at a fixed
// iteration count, reporting per-op figures like testing.B would.
func microRecords() []benchRecord {
	type micro struct {
		id    string
		iters int
		fn    func(iters int)
	}
	micros := []micro{
		{"FabricCrossbar", 200_000, func(n int) { experiment.MicroFabricCrossbar(n) }},
		{"UDPTransBatch", 100_000, func(n int) {
			if _, _, err := experiment.MicroUDPTransBatch(n); err != nil {
				fmt.Fprintf(os.Stderr, "micro UDPTransBatch: %v\n", err)
			}
		}},
	}
	var out []benchRecord
	for _, m := range micros {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		m.fn(m.iters)
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		out = append(out, benchRecord{
			ID:          m.id,
			NsPerOp:     wall.Nanoseconds() / int64(m.iters),
			BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(m.iters),
			AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(m.iters),
		})
	}
	return out
}

func main() {
	run := flag.String("run", "", "only run experiments whose ID contains this substring")
	benchJSON := flag.String("bench-json", "", "write per-experiment ns/op, B/op, allocs/op to this file (e.g. BENCH_e2e.json)")
	flag.Parse()

	type exp struct {
		id string
		fn func() *experiment.Table
	}
	experiments := []exp{
		{"E1", experiment.E1},
		{"E2", experiment.E2},
		{"E3", experiment.E3},
		{"E4", experiment.E4},
		{"E5", func() *experiment.Table { t, _ := experiment.E5(); return t }},
		{"E6", experiment.E6},
		{"E7", experiment.E7},
		{"E8", func() *experiment.Table { t, _ := experiment.E8(); return t }},
		{"E9", experiment.E9},
		{"E10", experiment.E10},
		{"E11", experiment.E11},
		{"E12", experiment.E12},
		{"E13", experiment.E13},
		{"E14", experiment.E14},
		{"E15", experiment.E15},
		{"E16", experiment.E16},
		{"E17", experiment.E17},
		{"E18", experiment.E18},
		{"E19", experiment.E19},
		{"E20", experiment.E20},
		{"E21", func() *experiment.Table { t, _ := experiment.E21(); return t }},
		{"E22", func() *experiment.Table { t, _ := experiment.E22(); return t }},
		{"E23", func() *experiment.Table { t, _ := experiment.E23(); return t }},
		{"E24", func() *experiment.Table { t, _ := experiment.E24(); return t }},
		{"A1", experiment.A1},
		{"A2", experiment.A2},
		{"A3", experiment.A3},
	}

	fmt.Println("Pandora reproduction — evaluation tables")
	fmt.Println("(Jones & Hopper, SOSP 1993; all numbers from the deterministic simulation)")
	fmt.Println()
	start := time.Now()
	ran := 0
	var records []benchRecord
	for _, e := range experiments {
		if *run != "" && !strings.Contains(e.id, *run) {
			continue
		}
		var before, after runtime.MemStats
		if *benchJSON != "" {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		t0 := time.Now()
		tab := e.fn()
		wall := time.Since(t0)
		if *benchJSON != "" {
			runtime.ReadMemStats(&after)
			records = append(records, benchRecord{
				ID:          e.id,
				NsPerOp:     wall.Nanoseconds(),
				BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
				AllocsPerOp: after.Mallocs - before.Mallocs,
			})
		}
		fmt.Print(tab)
		fmt.Printf("  (%.2fs wall)\n\n", wall.Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run=%q\n", *run)
		os.Exit(1)
	}
	fmt.Printf("%d experiments in %.1fs\n", ran, time.Since(start).Seconds())

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, records); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			os.Exit(1)
		}
	}
}

// preRefactorAllocs are the allocs/op of BenchmarkE2LinkCapacity and
// BenchmarkE3OneWayLatency measured immediately before the single-copy
// segment.Wire refactor (boxed `any` payloads re-marshalled per hop),
// kept so BENCH_e2e.json records the trajectory.
var preRefactorAllocs = map[string]uint64{
	"E2": 1_590_988,
	"E3": 744_148,
}

func writeBenchJSON(path string, records []benchRecord) error {
	out := benchFile{
		Schema:      "pandora-bench-e2e/v1",
		Experiments: records,
		Micro:       microRecords(),
		PreRefactor: preRefactorAllocs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
