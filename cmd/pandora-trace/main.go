// Command pandora-trace dumps the figure-style time series behind the
// paper's mechanisms: the clawback buffer's jitter-correction delay
// adapting after a burst (§3.7.2), and the muting factor timeline of
// figure 4.1 — as tab-separated values ready for plotting.
//
// The events series instead dumps the obs event trace of a short
// two-box call: stream lifecycle, drops with reasons, and overload
// transitions, stamped with virtual time.
//
// Usage:
//
//	pandora-trace -series clawback > clawback.tsv
//	pandora-trace -series muting   > muting.tsv
//	pandora-trace -series events   > events.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/atm"
	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/occam"
	"repro/internal/workload"
)

func main() {
	series := flag.String("series", "clawback", "which series to dump: clawback | muting | events")
	flag.Parse()

	switch *series {
	case "clawback":
		_, s := experiment.E5()
		fmt.Println("# seconds\tjitter-correction-ms")
		for _, p := range s.Points {
			fmt.Printf("%.1f\t%.1f\n", p.At.Seconds(), p.Value)
		}
	case "muting":
		_, s := experiment.E8()
		fmt.Println("# ms\tmute-factor")
		for _, p := range s.Points {
			fmt.Printf("%.1f\t%.2f\n", p.At.Seconds()*1000, p.Value)
		}
	case "events":
		dumpEvents()
	default:
		fmt.Fprintf(os.Stderr, "unknown series %q\n", *series)
		os.Exit(1)
	}
}

// dumpEvents runs a two-box audio call over a congested link long
// enough to exercise drops and overload transitions, then prints the
// obs event ring as TSV.
func dumpEvents() {
	s := core.NewSystem()
	defer s.Shutdown()
	for i, name := range []string{"alice", "bob"} {
		s.AddBox(box.Config{
			Name:     name,
			Mic:      workload.NewSpeech(uint64(i+1), 12000),
			Features: box.Features{JitterCorrection: true},
		})
	}
	// A slow, lossy link so the trace shows drops, not just opens.
	s.Connect("alice", "bob", atm.LinkConfig{
		Bandwidth: 2_000_000,
		LossRate:  0.02,
		Seed:      7,
	})
	s.Control(func(p *occam.Proc) {
		ab, _ := s.AudioCall(p, "alice", "bob")
		p.Sleep(3 * time.Second)
		s.Close(p, ab)
	})
	if err := s.RunFor(4 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("# seconds\tkind\tsource\tstream\tdetail")
	for _, e := range s.Obs.Tracer().Events() {
		fmt.Printf("%.6f\t%s\t%s\t%d\t%s\n",
			time.Duration(e.At).Seconds(), e.Kind, e.Source, e.Stream, e.Detail)
	}
}
