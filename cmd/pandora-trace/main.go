// Command pandora-trace dumps the figure-style time series behind the
// paper's mechanisms: the clawback buffer's jitter-correction delay
// adapting after a burst (§3.7.2), and the muting factor timeline of
// figure 4.1 — as tab-separated values ready for plotting.
//
// Usage:
//
//	pandora-trace -series clawback > clawback.tsv
//	pandora-trace -series muting   > muting.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	series := flag.String("series", "clawback", "which series to dump: clawback | muting")
	flag.Parse()

	switch *series {
	case "clawback":
		_, s := experiment.E5()
		fmt.Println("# seconds\tjitter-correction-ms")
		for _, p := range s.Points {
			fmt.Printf("%.1f\t%.1f\n", p.At.Seconds(), p.Value)
		}
	case "muting":
		_, s := experiment.E8()
		fmt.Println("# ms\tmute-factor")
		for _, p := range s.Points {
			fmt.Printf("%.1f\t%.2f\n", p.At.Seconds()*1000, p.Value)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown series %q\n", *series)
		os.Exit(1)
	}
}
