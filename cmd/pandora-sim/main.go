// Command pandora-sim runs a configurable multi-box Pandora
// simulation: N boxes in a full-mesh audio conference, optionally
// with video between the first pair, over links of a chosen
// bandwidth, and prints per-box stream statistics — the quickest way
// to poke at the system's behaviour under different loads.
//
// Usage:
//
//	pandora-sim -boxes 4 -seconds 10 -bandwidth 100000000 -video
//	pandora-sim -faults loss,crash -degrade -trace 40
//	pandora-sim -boxes 8 -fabric -faults 'stall,target=fab.p01' -degrade
//	pandora-sim -boxes 6 -fabric -balance -balance-budget 1
//
// With -scenario the flags above are ignored: the named file is a
// declarative scenario spec (see internal/scenario) describing boxes,
// links, fabrics, the call timeline, fault and degradation phases, and
// assertions. The run prints each assertion's outcome and exits
// non-zero if any fails:
//
//	pandora-sim -scenario scenarios/churn.scn
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/atm"
	"repro/internal/balancer"
	"repro/internal/box"
	"repro/internal/core"
	"repro/internal/degrade"
	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/occam"
	"repro/internal/scenario"
	"repro/internal/video"
	"repro/internal/workload"
)

// runScenarioFile executes one scenario spec file and prints its
// assertion summary — the output the CI smoke job diffs against golden
// files, so it contains nothing wall-clock dependent.
func runScenarioFile(path string) int {
	sc, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	sum, err := scenario.Execute(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(sum.String())
	if !sum.Pass {
		return 1
	}
	return 0
}

func main() {
	boxes := flag.Int("boxes", 3, "number of boxes in the conference")
	seconds := flag.Int("seconds", 5, "virtual seconds to simulate")
	bandwidth := flag.Int64("bandwidth", 100_000_000, "link bandwidth, bits/s")
	loss := flag.Float64("loss", 0, "link loss rate (0..1)")
	withVideo := flag.Bool("video", false, "also send video between the first two boxes")
	muting := flag.Bool("muting", false, "enable echo muting on every box")
	stats := flag.Bool("stats", false, "print the full observability counter table")
	prom := flag.Bool("prom", false, "print counters in Prometheus text format")
	traceN := flag.Int("trace", 0, "print the last N trace events")
	faults := flag.String("faults", "", "inject faults: comma list of loss, corrupt, dup, jitter, stall, sink, crash, all; add target=<prefix> to restrict link faults to matching links or fabric ports")
	faultSeed := flag.Uint64("fault-seed", 1, "master seed for the injected fault schedules")
	degradeOn := flag.Bool("degrade", false, "run the overload degradation controller on every box (and fabric port with -fabric)")
	balanceOn := flag.Bool("balance", false, "run the balancer control plane: scoreboard sampling, load-aware placement, admission, migration; prints a post-run placement summary")
	balanceBudget := flag.Int("balance-budget", 0, "with -balance: max concurrently admitted calls (0 = unlimited)")
	fabricOn := flag.Bool("fabric", false, "mesh the conference through one cell-switched fabric instead of pairwise links")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario spec file instead of the flag-built conference")
	flag.Parse()
	if *scenarioPath != "" {
		os.Exit(runScenarioFile(*scenarioPath))
	}
	if *boxes < 2 {
		fmt.Fprintln(os.Stderr, "need at least 2 boxes")
		os.Exit(1)
	}
	spec, err := faultinject.ParseSpec(*faults, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := core.NewSystem()
	defer s.Shutdown()
	var names []string
	for i := 0; i < *boxes; i++ {
		name := fmt.Sprintf("box%d", i)
		names = append(names, name)
		cfg := box.Config{
			Name: name,
			Mic:  workload.NewSpeech(uint64(i+1), 12000),
			Features: box.Features{
				JitterCorrection: true,
				Muting:           *muting,
			},
		}
		if i == 0 {
			// Crash and sink-stall faults target the first box; link
			// faults (below) hit every link.
			cfg.BoardFaults = spec.Boards()
			if len(spec.SinkStalls) > 0 {
				cfg.SinkStalls = map[string][]faultinject.Window{
					"net-video": spec.SinkStalls,
					"net-audio": spec.SinkStalls,
				}
			}
		}
		s.AddBox(cfg)
	}
	var fab *fabric.Fabric
	if *fabricOn {
		fab = s.AddFabric("fab", fabric.Config{PortBandwidth: *bandwidth})
		for _, n := range names {
			s.AttachFabric("fab", n)
		}
	} else {
		for i := 0; i < *boxes; i++ {
			for j := i + 1; j < *boxes; j++ {
				s.Connect(names[i], names[j], atm.LinkConfig{
					Bandwidth: *bandwidth,
					LossRate:  *loss,
					Seed:      uint64(i*100 + j),
				})
			}
		}
	}

	if spec.Active() {
		s.InjectLinkFaults(spec)
	}
	var ctrls map[string]*degrade.Controller
	if *degradeOn {
		ctrls = s.EnableDegradation(degrade.Config{})
	}
	var bal *balancer.Balancer
	if *balanceOn {
		bal = balancer.New(s, balancer.Config{Budget: *balanceBudget})
		bal.Start()
	}

	var streams []*core.Stream
	s.Control(func(p *occam.Proc) {
		if bal != nil && !bal.AdmitCall() {
			fmt.Println("balancer: conference rejected by admission budget")
			return
		}
		streams = s.Conference(p, names...)
		if *withVideo {
			s.SendVideo(p, names[0], box.CameraStream{
				Rect: video.Rect{W: 128, H: 64},
				Rate: video.Rate{Num: 2, Den: 5},
			}, names[1])
		}
	})

	fmt.Printf("simulating %d boxes for %ds of stream time...\n", *boxes, *seconds)
	wall := time.Now()
	if err := s.RunFor(time.Duration(*seconds) * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("done in %.2fs wall (%.0fx faster than real time)\n\n",
		time.Since(wall).Seconds(), float64(*seconds)/time.Since(wall).Seconds())

	for _, st := range streams {
		dsts := make([]string, 0, len(st.VCIs))
		for dst := range st.VCIs {
			dsts = append(dsts, dst)
		}
		sort.Strings(dsts)
		for _, dst := range dsts {
			vci := st.VCIs[dst]
			m := s.Box(dst).Mixer().Stats(vci)
			lat := s.Box(dst).PlayoutLatency(vci)
			fmt.Printf("%s → %s: %6d segs, lost %4d, concealed %4d, silences %4d, latency mean %6.2fms p99 %6.2fms\n",
				st.From, dst, m.Segments, m.LostSegments, m.Concealed,
				m.Clawback.SilenceInserted,
				float64(lat.Mean())/1e6, float64(lat.Percentile(99))/1e6)
		}
	}
	if *withVideo {
		d := s.Box(names[1]).DisplayStats()
		fmt.Printf("video %s → %s: %d frames, %d decode errors, frame latency mean %v\n",
			names[0], names[1], d.Frames, d.DecodeErrs, d.FrameLat.Mean())
	}
	for _, n := range names {
		a := s.Box(n).AudioStats()
		if a.LateTicks > 0 || a.MicDrops > 0 {
			fmt.Printf("%s overloaded: %d late ticks, %d mic drops\n", n, a.LateTicks, a.MicDrops)
		}
	}

	if spec.Active() {
		fmt.Println()
		var total atm.FaultStats
		for _, l := range s.Net.Links() {
			fs := l.FaultStats()
			total.Drops += fs.Drops
			total.Corruptions += fs.Corruptions
			total.Duplicates += fs.Duplicates
			total.Delays += fs.Delays
			total.Stalls += fs.Stalls
		}
		if fab != nil {
			fs := fab.Stats()
			total.Drops += fs.FaultDrops
			total.Corruptions += fs.FaultCorrupt
			total.Duplicates += fs.FaultDups
			total.Delays += fs.FaultDelays
			total.Stalls += fs.FaultStalls
		}
		fmt.Printf("injected link faults: drop %d, corrupt %d, dup %d, delay %d, stall %d\n",
			total.Drops, total.Corruptions, total.Duplicates, total.Delays, total.Stalls)
		for _, n := range names {
			sw := s.Box(n).SwitchStats()
			if sw.CorruptDrops > 0 {
				fmt.Printf("%s discarded %d corrupt segments at reassembly\n", n, sw.CorruptDrops)
			}
		}
	}
	if *degradeOn {
		for _, n := range names {
			acts := ctrls[n].Actions()
			if len(acts) == 0 {
				continue
			}
			sw := s.Box(n).SwitchStats()
			fmt.Printf("\n%s degradation (%d segments stopped at the switch):\n", n, sw.ShedDrops)
			for _, act := range acts {
				fmt.Printf("  %s\n", act)
			}
		}
		if fab != nil {
			for _, pt := range fab.Ports() {
				acts := ctrls[pt.Name()].Actions()
				if len(acts) == 0 {
					continue
				}
				fmt.Printf("\n%s degradation (%d messages shed at the port):\n", pt.Name(), pt.Stats().ShedDrops)
				for _, act := range acts {
					fmt.Printf("  %s\n", act)
				}
			}
		}
	}

	if bal != nil {
		fmt.Println("\nbalancer placement summary:")
		fmt.Printf("  admission: %d admitted, %d rejected (budget %d)\n",
			bal.Admitted(), bal.Rejected(), *balanceBudget)
		for _, sc := range bal.Scores() {
			if sc.Eff == 0 && sc.Placements == 0 {
				continue
			}
			fmt.Printf("  %s: score %.3f (raw %.3f, queue %.0f%%), %d placements\n",
				sc.Name, sc.Eff, sc.Raw, 100*sc.Queue, sc.Placements)
		}
		for _, m := range bal.Migrations() {
			fmt.Printf("  %s\n", m)
		}
	}

	if *stats {
		fmt.Println()
		fmt.Print(s.Obs.Snapshot().Table())
	}
	if *prom {
		fmt.Println()
		fmt.Print(s.Obs.Snapshot().Prometheus())
	}
	if *traceN > 0 {
		evs := s.Obs.Tracer().Events()
		if dropped := s.Obs.Tracer().Total() - uint64(len(evs)); dropped > 0 {
			fmt.Printf("\n(%d older events evicted from the %d-event ring)\n",
				dropped, s.Obs.Tracer().Cap())
		}
		if len(evs) > *traceN {
			evs = evs[len(evs)-*traceN:]
		}
		fmt.Println()
		for _, e := range evs {
			fmt.Println(e)
		}
	}
}
