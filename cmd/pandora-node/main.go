// Command pandora-node runs ONE Pandora box as its own OS process,
// exchanging audio with peer nodes over UDP datagrams instead of the
// in-process simulated network — the atm.Transport seam exercised for
// real (outgoing segments leave through internal/atm/udptrans, and a
// feeder process injects received datagrams back into the box's
// virtual-time runtime between quanta).
//
// A conference of N nodes is N copies of this command, each given the
// same ordered peer list and its own index:
//
//	pandora-node -index 0 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	pandora-node -index 1 -peers 127.0.0.1:7000,127.0.0.1:7001
//
// Node i speaks on VCI 2000+i to every peer and plays every incoming
// VCI 2000+j (j ≠ i) to its speaker, so the mesh is a conference (§4.1)
// with the fabric's role played by the host network. Each process runs
// its own deterministic virtual-time runtime, paced against the wall
// clock in -quantum steps; only the arrival batches from the socket
// are nondeterministic, exactly the boundary the Receiver documents.
//
// With -scenario the node reads the same declarative spec file
// pandora-sim runs (see internal/scenario) and takes its own box
// configuration — name, mic workload, feature set, segment shape,
// interface rate — from the spec's box at -index, and the run length
// from the spec's duration. The peer topology still comes from -peers:
// the spec describes boxes and workloads once, and each OS process
// plays one of them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/atm"
	"repro/internal/atm/udptrans"
	"repro/internal/box"
	"repro/internal/occam"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// boxConfigFromSpec maps one scenario box onto a node's box.Config —
// the same field mapping the in-process scenario runner applies, minus
// the simulation-only fault hooks.
func boxConfigFromSpec(bs scenario.Box) box.Config {
	cfg := box.Config{
		Name:              bs.Name,
		BlocksPerSegment:  bs.Blocks,
		CameraW:           bs.CameraW,
		CameraH:           bs.CameraH,
		NetInterfaceBits:  bs.NetIfBits,
		InterleaveNetwork: bs.Interleave,
		SharedNetBuffer:   bs.SharedNet,
		Features: box.Features{
			JitterCorrection: bs.Jitter,
			Muting:           bs.Muting,
			Interface:        bs.Interface,
		},
	}
	if bs.Mic != nil {
		switch bs.Mic.Kind {
		case "tone":
			cfg.Mic = workload.NewTone(int(bs.Mic.A), int32(bs.Mic.B))
		case "speech":
			cfg.Mic = workload.NewSpeech(bs.Mic.A, int32(bs.Mic.B))
		}
	}
	return cfg
}

// vciBase numbers node i's outgoing audio stream vciBase+i on every
// peer, so the mesh needs no signalling: the peer list order IS the
// VCI assignment.
const vciBase = 2000

// vciMux fans one box's outgoing messages out to its peers: the VCI
// identifies the stream, the routing table lists the batched sockets
// that want it. It implements atm.Transport; the datagram is encoded
// once and handed to every peer's Batcher, then the wire reference is
// released (the single release the transport contract allows — on
// error the reference stays with the caller).
//
// Latency is bounded three ways: a Batcher flushes itself when full
// (-udp-batch datagrams), the mux flushes everything when -udp-flush
// of virtual time has passed since the last flush, and the wall-clock
// loop flushes after every RunFor quantum so nothing outlives a
// quantum.
// Socket errors are counted, not propagated: a UDP send that fails
// (say ECONNREFUSED while a peer is still starting) is a lost
// datagram, the same loss the network itself can inflict.
type vciMux struct {
	routes   map[uint32][]*udptrans.Batcher
	all      []*udptrans.Batcher // every batcher once, for FlushAll
	buf      []byte
	sent     uint64
	unrouted uint64
	sendErrs uint64

	flushEvery time.Duration // virtual time between forced flushes; 0 = only batch-full and quantum flushes
	lastFlush  time.Duration
}

func (m *vciMux) TransportName() string { return "udpmux" }

func (m *vciMux) Send(p *occam.Proc, msg atm.Message) error {
	peers := m.routes[msg.VCI]
	if len(peers) == 0 {
		m.unrouted++
		msg.W.Release()
		return nil
	}
	out, err := udptrans.Encode(m.buf[:0], msg)
	if err != nil {
		return err
	}
	m.buf = out[:0] // keep grown storage for the next message
	for _, b := range peers {
		if err := b.AddRaw(out); err != nil {
			m.sendErrs++
		}
	}
	msg.W.Release()
	m.sent++
	if m.flushEvery > 0 {
		if now := time.Duration(p.Now()); now-m.lastFlush >= m.flushEvery {
			m.lastFlush = now
			m.FlushAll()
		}
	}
	return nil
}

// FlushAll drains every peer's batch onto the wire, counting failed
// sends as datagram loss.
func (m *vciMux) FlushAll() {
	for _, b := range m.all {
		if err := b.Flush(); err != nil {
			m.sendErrs++
		}
	}
}

// Stats sums the syscall amortisation counters over every peer.
func (m *vciMux) Stats() (batches, datagrams uint64) {
	for _, b := range m.all {
		bb, dd := b.Stats()
		batches += bb
		datagrams += dd
	}
	return
}

func main() {
	index := flag.Int("index", 0, "this node's position in -peers (also its VCI: speaks on 2000+index)")
	peers := flag.String("peers", "127.0.0.1:7000,127.0.0.1:7001", "ordered comma-separated host:port list, one entry per node")
	listen := flag.String("listen", "", "UDP listen address (default: the -peers entry at -index)")
	seconds := flag.Int("seconds", 10, "conference length in seconds")
	quantum := flag.Duration("quantum", 10*time.Millisecond, "virtual-time step per socket drain (wall-clock paced)")
	seed := flag.Int64("seed", 1, "speech workload seed (offset by -index so nodes differ)")
	udpBatch := flag.Int("udp-batch", udptrans.DefaultBatch, "max datagrams coalesced into one sendmmsg batch per peer (1 = unbatched)")
	udpFlush := flag.Duration("udp-flush", 0, "flush batches after this much virtual time (0: only on full batch and each quantum)")
	scenarioPath := flag.String("scenario", "", "take this node's box config and run length from a scenario spec file (box at -index)")
	balanceOn := flag.Bool("balance", false, "apply a node-local admission budget to incoming peer streams: reject before degrade")
	balanceBudget := flag.Int("balance-budget", 0, "with -balance: max peer streams admitted to the speaker (0: take the scenario's balance budget, else unlimited)")
	flag.Parse()

	peerList := strings.Split(*peers, ",")
	if *index < 0 || *index >= len(peerList) {
		fmt.Fprintf(os.Stderr, "pandora-node: -index %d out of range for %d peers\n", *index, len(peerList))
		os.Exit(2)
	}
	var spec *scenario.Scenario
	if *scenarioPath != "" {
		sc, err := scenario.Load(*scenarioPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pandora-node:", err)
			os.Exit(1)
		}
		if *index >= len(sc.Boxes) {
			fmt.Fprintf(os.Stderr, "pandora-node: scenario %s has %d boxes, -index %d out of range\n",
				sc.Name, len(sc.Boxes), *index)
			os.Exit(2)
		}
		spec = sc
	}
	addr := *listen
	if addr == "" {
		addr = peerList[*index]
	}

	rx, err := udptrans.Listen(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora-node: listen %s: %v\n", addr, err)
		os.Exit(1)
	}
	defer rx.Close()

	out := vciBase + uint32(*index)
	mux := &vciMux{routes: make(map[uint32][]*udptrans.Batcher), flushEvery: *udpFlush}
	for j, peer := range peerList {
		if j == *index {
			continue
		}
		t, err := udptrans.Dial(peer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pandora-node: dial %s: %v\n", peer, err)
			os.Exit(1)
		}
		defer t.Close()
		b := udptrans.NewBatcher(t, *udpBatch)
		mux.routes[out] = append(mux.routes[out], b)
		mux.all = append(mux.all, b)
	}

	rt := occam.NewRuntime()
	netw := atm.New(rt)
	name := fmt.Sprintf("n%02d", *index)
	cfg := box.Config{
		Name:     name,
		Mic:      workload.NewSpeech(uint64(*seed)+uint64(*index)+1, 12000),
		Features: box.Features{JitterCorrection: true},
	}
	total := time.Duration(*seconds) * time.Second
	if spec != nil {
		cfg = boxConfigFromSpec(spec.Boxes[*index])
		name = cfg.Name
		if cfg.Mic == nil {
			cfg.Mic = workload.NewSpeech(uint64(*seed)+uint64(*index)+1, 12000)
		}
		total = spec.Duration
	}
	b := box.New(rt, netw, cfg)
	b.Host().SetTransport(mux)

	// The node-side slice of the balancer control plane: pandora-node
	// runs one box, so placement and migration live in the full
	// simulation — what a single box CAN do is admission. With -balance
	// only the first `budget` peer streams get a speaker route; the
	// rest are refused outright (their segments are dropped at the
	// switch, never mixed) instead of degrading everyone's playout.
	budget := *balanceBudget
	if budget == 0 && spec != nil && spec.Balance != nil {
		budget = spec.Balance.Budget
	}
	admitted, rejected := 0, 0

	// Routes: our mic to the network on our VCI, every peer VCI to the
	// speaker. Installed from inside virtual time, like any command.
	rt.Go(name+".control", nil, occam.High, func(p *occam.Proc) {
		b.SetRoute(p, box.Route{Stream: out, Outputs: []box.Output{box.OutNetwork}, NetVCIs: []uint32{out}})
		for j := range peerList {
			if j == *index {
				continue
			}
			if *balanceOn && budget > 0 && admitted >= budget {
				rejected++
				continue
			}
			admitted++
			b.SetRoute(p, box.Route{Stream: vciBase + uint32(j), Outputs: []box.Output{box.OutSpeaker}})
		}
		b.StartMic(p, out)
	})

	// Feeder: delivers drained datagrams into the runtime. pending is
	// filled by the wall-clock loop between RunFor quanta and consumed
	// here inside them — the two never run concurrently, so no lock.
	var pending []atm.Message
	host := b.Host()
	rt.Go(name+".netrx", nil, occam.High, func(p *occam.Proc) {
		for {
			p.Sleep(time.Millisecond)
			for _, m := range pending {
				m.Sent = p.Now()
				host.Deliver(p, m)
			}
			pending = pending[:0]
		}
	})

	start := time.Now()
	for vt := time.Duration(0); vt < total; vt += *quantum {
		pending = append(pending, rx.Drain()...)
		if err := rt.RunFor(*quantum); err != nil {
			fmt.Fprintf(os.Stderr, "pandora-node: runtime: %v\n", err)
			os.Exit(1)
		}
		mux.FlushAll()
		if ahead := vt + *quantum - time.Since(start); ahead > 0 {
			time.Sleep(ahead)
		}
	}
	rt.Shutdown()

	fmt.Printf("%s: %s conference with %d peers on %s\n", name, total, len(peerList)-1, addr)
	if *balanceOn {
		fmt.Printf("  balance: %d peer streams admitted, %d rejected (budget %d)\n",
			admitted, rejected, budget)
	}
	a := b.AudioStats()
	batches, datagrams := mux.Stats()
	fmt.Printf("  mic: %d segments sent on VCI %d (%d datagram sends, %d unrouted)\n",
		a.MicSegs, out, mux.sent, mux.unrouted)
	if batches > 0 {
		fmt.Printf("  udp: %d datagrams in %d sendmmsg batches (%.1f per syscall)\n",
			datagrams, batches, float64(datagrams)/float64(batches))
	}
	if mux.sendErrs > 0 {
		fmt.Printf("  udp: %d batches lost to socket errors\n", mux.sendErrs)
	}
	for j := range peerList {
		if j == *index {
			continue
		}
		vci := vciBase + uint32(j)
		st := b.Mixer().Stats(vci)
		lat := b.PlayoutLatency(vci)
		fmt.Printf("  VCI %d (n%02d): %d segments, %d lost, %d concealed, %d silence insertions",
			vci, j, st.Segments, st.LostSegments, st.Concealed, st.Clawback.SilenceInserted)
		if lat.Count() > 0 {
			fmt.Printf(", playout mean %s", lat.Mean())
		}
		fmt.Println()
	}
	if errs := rx.DecodeErrs(); errs != 0 {
		fmt.Printf("  %d undecodable datagrams dropped\n", errs)
	}
}
